file(REMOVE_RECURSE
  "CMakeFiles/fig6b_pagerank.dir/fig6b_pagerank.cc.o"
  "CMakeFiles/fig6b_pagerank.dir/fig6b_pagerank.cc.o.d"
  "fig6b_pagerank"
  "fig6b_pagerank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6b_pagerank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
