// Figure 1: the spectrum of synchronization techniques, trading off
// parallelism against communication. We make the figure quantitative:
// for one workload we report, per technique,
//   * a parallelism index (max vertices executing concurrently),
//   * communication volume (control messages + wire bytes),
//   * the number of shared forks (0 for token passing).
// Expected ordering (paper Figure 1):
//   parallelism:  token passing < partition-based < vertex-based
//   communication: token passing < partition-based < vertex-based

#include <algorithm>
#include <iostream>

#include "algos/coloring.h"
#include "harness/datasets.h"
#include "harness/runner.h"
#include "harness/table.h"

using namespace serigraph;

int main() {
  Graph graph = MakeUndirectedDataset(FindSpec("OR'"));
  PrintHeader(std::cout,
              "Figure 1: parallelism vs communication spectrum "
              "(coloring on OR', 16 workers)");

  TablePrinter table({"technique", "execs/superstep", "supersteps",
                      "ctrl msgs", "wire MB", "forks", "time"});
  for (SyncMode sync :
       {SyncMode::kSingleLayerToken, SyncMode::kDualLayerToken,
        SyncMode::kPartitionLocking, SyncMode::kVertexLocking}) {
    RunConfig config;
    config.sync_mode = sync;
    config.num_workers = 16;
    config.network = BenchNetwork();
    std::vector<int64_t> colors;
    RunStats stats = RunProgram(graph, GreedyColoring(), config, &colors);
    SG_CHECK(IsProperColoring(graph, colors));
    // Parallelism proxy that is independent of host core count: how much
    // work a superstep admits. Token passing gates most vertices out of
    // each superstep; locking techniques execute (almost) all of them.
    const int64_t per_superstep =
        stats.Metric("pregel.vertex_executions") /
        std::max(1, stats.supersteps);
    table.AddRow(
        {SyncModeName(sync), TablePrinter::Count(per_superstep),
         std::to_string(stats.supersteps),
         TablePrinter::Count(stats.Metric("net.control_messages")),
         std::to_string(stats.Metric("net.wire_bytes") / 1048576) + " MB",
         TablePrinter::Count(stats.Metric("sync.num_forks")),
         TablePrinter::Seconds(stats.computation_seconds)});
  }
  table.Print(std::cout);
  std::cout << "\nReading: token passing = little communication, little "
               "parallelism;\nvertex-based locking = max parallelism, max "
               "communication;\npartition-based locking sits in between and "
               "wins on time (paper Section 5.4).\n";
  return 0;
}
