// Unit tests for algorithm helpers and sequential reference oracles.

#include <gtest/gtest.h>

#include "algos/coloring.h"
#include "algos/mis.h"
#include "algos/pagerank.h"
#include "algos/sssp.h"
#include "algos/wcc.h"
#include "graph/generators.h"

namespace serigraph {
namespace {

Graph Make(const EdgeList& el) {
  auto g = Graph::FromEdgeList(el);
  EXPECT_TRUE(g.ok()) << g.status();
  return std::move(g).value();
}

TEST(SmallestFreeColorTest, Basics) {
  EXPECT_EQ(SmallestFreeColor(std::vector<int64_t>{}), 0);
  EXPECT_EQ(SmallestFreeColor(std::vector<int64_t>{0}), 1);
  EXPECT_EQ(SmallestFreeColor(std::vector<int64_t>{1, 2}), 0);
  EXPECT_EQ(SmallestFreeColor(std::vector<int64_t>{0, 1, 2}), 3);
  EXPECT_EQ(SmallestFreeColor(std::vector<int64_t>{0, 0, 2, 2}), 1);
  // Ignores kNoColor and out-of-range values.
  EXPECT_EQ(SmallestFreeColor(std::vector<int64_t>{kNoColor, 0, 100}), 1);
}

TEST(IsProperColoringTest, DetectsConflictsAndUncolored) {
  Graph g = Make(PaperExampleGraph());
  EXPECT_TRUE(IsProperColoring(g, std::vector<int64_t>{0, 1, 1, 0}));
  EXPECT_FALSE(IsProperColoring(g, std::vector<int64_t>{0, 0, 1, 1}));
  EXPECT_FALSE(IsProperColoring(g, std::vector<int64_t>{0, 1, 1, kNoColor}));
  EXPECT_FALSE(IsProperColoring(g, std::vector<int64_t>{0, 1}));  // size
}

TEST(CountColorsTest, CountsDistinctIgnoringNoColor) {
  EXPECT_EQ(CountColors(std::vector<int64_t>{0, 1, 1, 2, kNoColor}), 3);
  EXPECT_EQ(CountColors(std::vector<int64_t>{}), 0);
}

TEST(ReferenceSsspTest, PathDistances) {
  Graph g = Make(Path(5));
  auto dist = ReferenceSssp(g, 0);
  EXPECT_EQ(dist, (std::vector<int64_t>{0, 1, 2, 3, 4}));
  auto from_end = ReferenceSssp(g, 4);
  EXPECT_EQ(from_end[0], kInfiniteDistance);  // directed path
  EXPECT_EQ(from_end[4], 0);
}

TEST(ReferenceWccTest, LabelsAreComponentMinima) {
  EdgeList el{6, {{0, 1}, {1, 2}, {4, 5}}};
  Graph g = Make(el);
  auto labels = ReferenceWcc(g);
  EXPECT_EQ(labels, (std::vector<int64_t>{0, 0, 0, 3, 4, 4}));
  EXPECT_EQ(CountComponents(labels), 3);
}

TEST(ReferencePageRankTest, UniformOnRegularGraph) {
  // On a directed ring every vertex has the same rank: 1.0 fixpoint.
  Graph g = Make(Ring(10));
  auto rank = ReferencePageRank(g, 1e-10);
  for (double r : rank) EXPECT_NEAR(r, 1.0, 1e-6);
}

TEST(ReferencePageRankTest, SinksAbsorbMass) {
  // v0 -> v1: v1 gets 0.15 + 0.85 * pr(v0), v0 gets only the base.
  Graph g = Make({2, {{0, 1}}});
  auto rank = ReferencePageRank(g, 1e-10);
  EXPECT_NEAR(rank[0], 0.15, 1e-6);
  EXPECT_NEAR(rank[1], 0.15 + 0.85 * 0.15, 1e-6);
}

TEST(MaxAbsDifferenceTest, Basics) {
  std::vector<double> a{1, 2, 3};
  std::vector<double> b{1, 2.5, 2};
  EXPECT_DOUBLE_EQ(MaxAbsDifference(a, b), 1.0);
}

TEST(MisValidatorsTest, AcceptAndReject) {
  Graph g = Make(PaperExampleGraph());  // 4-cycle
  using M = MaximalIndependentSet;
  // {v0, v3} is a maximal independent set.
  EXPECT_TRUE(IsMaximalIndependentSet(
      g, std::vector<int64_t>{M::kIn, M::kOut, M::kOut, M::kIn}));
  // {v0} alone is independent but not maximal (v3 has no kIn neighbor).
  EXPECT_TRUE(IsIndependentSet(
      g, std::vector<int64_t>{M::kIn, M::kOut, M::kOut, M::kOut}));
  EXPECT_FALSE(IsMaximalIndependentSet(
      g, std::vector<int64_t>{M::kIn, M::kOut, M::kOut, M::kOut}));
  // Adjacent vertices both in: not independent.
  EXPECT_FALSE(IsIndependentSet(
      g, std::vector<int64_t>{M::kIn, M::kIn, M::kOut, M::kOut}));
  // Undecided vertex: not a complete answer.
  EXPECT_FALSE(IsIndependentSet(
      g, std::vector<int64_t>{M::kIn, M::kOut, M::kOut, M::kUndecided}));
}

TEST(RepairColoringColorsTest, ExtractsColors) {
  std::vector<RepairColoring::State> states(2);
  states[0].color = 3;
  states[1].color = 1;
  EXPECT_EQ(RepairColoringColors(states), (std::vector<int64_t>{3, 1}));
}

}  // namespace
}  // namespace serigraph
