// Partition-quality ablation: random hash partitioning (the paper's
// setup, Section 7.1) vs the LDG streaming greedy partitioner. Better
// partitions cut fewer edges, which means fewer boundary vertices, fewer
// partition forks, and fewer remote replica updates for every
// synchronization technique — the structural lever behind
// partition-based locking's costs.

#include <iostream>

#include "algos/coloring.h"
#include "graph/streaming_partitioner.h"
#include "harness/datasets.h"
#include "harness/runner.h"
#include "harness/table.h"

using namespace serigraph;

int main() {
  PrintHeader(std::cout,
              "Partitioner ablation: hash vs LDG streaming greedy "
              "(coloring, partition-based locking, 8 workers)");

  TablePrinter table({"dataset", "partitioner", "cut edges", "cut %", "forks",
                      "ctrl msgs", "time"});
  for (const char* name : {"OR'", "TW'"}) {
    Graph graph = MakeUndirectedDataset(FindSpec(name));
    for (bool ldg : {false, true}) {
      const int workers = 8;
      Partitioning partitioning;
      if (ldg) {
        StreamingPartitionOptions opts;
        opts.num_workers = workers;
        partitioning = StreamingGreedyPartition(graph, opts);
      } else {
        partitioning =
            Partitioning::Hash(graph.num_vertices(), workers, workers);
      }
      const int64_t cut = CountCutEdges(graph, partitioning);
      const int64_t forks =
          CountPartitionForks(BuildPartitionGraph(graph, partitioning));

      EngineOptions opts = ToEngineOptions([&] {
        RunConfig config;
        config.sync_mode = SyncMode::kPartitionLocking;
        config.num_workers = workers;
        config.network = BenchNetwork();
        return config;
      }());
      Engine<GreedyColoring> engine(&graph, opts);
      SG_CHECK_OK(engine.UsePartitioning(std::move(partitioning)));
      auto result = engine.Run(GreedyColoring());
      SG_CHECK_OK(result.status());
      SG_CHECK(IsProperColoring(graph, result->values));

      char pct[16];
      std::snprintf(pct, sizeof(pct), "%.1f%%",
                    100.0 * static_cast<double>(cut) /
                        static_cast<double>(graph.num_edges()));
      table.AddRow(
          {name, ldg ? "LDG streaming" : "random hash",
           TablePrinter::Count(cut), pct, TablePrinter::Count(forks),
           TablePrinter::Count(
               result->stats.Metric("net.control_messages")),
           TablePrinter::Seconds(result->stats.computation_seconds)});
    }
  }
  table.Print(std::cout);
  std::cout << "\nThe paper evaluates with hash partitioning because "
               "heavyweight partitioners are\nimpractical at its scale; LDG "
               "shows how much a one-pass streaming partitioner\nalready "
               "reduces the communication that synchronization pays for.\n";
  return 0;
}
