#ifndef SERIGRAPH_ALGOS_COLORING_H_
#define SERIGRAPH_ALGOS_COLORING_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace serigraph {

/// Color value meaning "not yet colored".
inline constexpr int64_t kNoColor = -1;

/// Returns the smallest non-negative color not present in `taken`.
/// `taken` may contain kNoColor entries and duplicates.
int64_t SmallestFreeColor(std::span<const int64_t> taken);

/// Greedy graph coloring exactly as the paper's Algorithm 1 (Section
/// 7.2.1). Correct (conflict-free) only under a serializable execution;
/// that is the point of the paper. Requires an undirected (symmetric)
/// input graph.
///
/// Superstep 0 initializes every vertex to no-color and leaves it active.
/// On its next execution a vertex picks the smallest color not used by
/// any neighbor it has heard from, broadcasts it, and halts. Vertices
/// woken by extraneous broadcasts (they already have a color) just halt
/// again — the "three iterations" the paper describes for push-based
/// Giraph async.
struct GreedyColoring {
  using VertexValue = int64_t;  // the color
  using Message = int64_t;      // a neighbor's chosen color

  VertexValue InitialValue(VertexId, const Graph&) const { return kNoColor; }

  template <typename Ctx>
  void Compute(Ctx& ctx, std::span<const Message> messages) const {
    if (ctx.superstep() == 0) {
      ctx.set_value(kNoColor);
      return;  // stay active so superstep 1 executes us
    }
    if (ctx.value() == kNoColor) {
      const int64_t color = SmallestFreeColor(messages);
      ctx.set_value(color);
      ctx.SendToAllOutNeighbors(color);
    }
    ctx.VoteToHalt();
  }
};

/// The conflict-repairing coloring variant from the paper's Section 2.1
/// motivation (Figures 2 and 3): every vertex starts with color 0 and, in
/// each superstep, re-picks the smallest color that does not conflict
/// with its latest view of its neighbors, broadcasting on every change.
/// Under BSP this oscillates forever on even cycles (all vertices flip
/// 0 <-> 1 in lockstep); under plain AP it can cycle through graph states;
/// under any serializable technique it terminates.
///
/// Unlike Algorithm 1 this variant must remember the last color heard
/// from each neighbor, so messages carry the sender.
struct RepairColoring {
  struct NeighborColor {
    VertexId sender;
    int64_t color;
  };
  struct State {
    int64_t color = 0;
    /// A vertex announces (picks and broadcasts) on its first execution —
    /// not in superstep 0, which token passing does not guarantee it runs
    /// in (paper Section 6.5).
    bool announced = false;
    /// Latest color heard per neighbor (dense small map).
    std::vector<NeighborColor> heard;
  };
  using VertexValue = State;
  using Message = NeighborColor;

  VertexValue InitialValue(VertexId, const Graph&) const { return State{}; }

  template <typename Ctx>
  void Compute(Ctx& ctx, std::span<const Message> messages) const {
    State state = ctx.value();
    for (const Message& m : messages) {
      auto it = std::find_if(
          state.heard.begin(), state.heard.end(),
          [&](const NeighborColor& nc) { return nc.sender == m.sender; });
      if (it == state.heard.end()) {
        state.heard.push_back(m);
      } else {
        it->color = m.color;
      }
    }
    bool conflict = !state.announced;
    state.announced = true;
    std::vector<int64_t> taken;
    taken.reserve(state.heard.size());
    for (const NeighborColor& nc : state.heard) {
      taken.push_back(nc.color);
      if (nc.color == state.color) conflict = true;
    }
    if (conflict) {
      state.color = SmallestFreeColor(taken);
      ctx.SendToAllOutNeighbors({ctx.id(), state.color});
    }
    ctx.set_value(std::move(state));
    ctx.VoteToHalt();
  }
};

/// True if no edge connects two vertices of the same color and every
/// vertex is colored (>= 0).
bool IsProperColoring(const Graph& graph, std::span<const int64_t> colors);

/// Number of distinct colors used.
int64_t CountColors(std::span<const int64_t> colors);

/// Extracts plain colors from RepairColoring states.
std::vector<int64_t> RepairColoringColors(
    std::span<const RepairColoring::State> states);

}  // namespace serigraph

#endif  // SERIGRAPH_ALGOS_COLORING_H_
