file(REMOVE_RECURSE
  "libserigraph_graph.a"
)
