#ifndef SERIGRAPH_OBS_REPORT_H_
#define SERIGRAPH_OBS_REPORT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/timeline.h"

namespace serigraph {

/// Minimal streaming JSON writer (objects, arrays, scalar values) used
/// for machine-readable run reports and other tool output. Produces
/// compact (non-pretty) JSON; keys and string values are escaped.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  /// Starts a key inside an object; follow with a value or Begin*().
  JsonWriter& Key(const std::string& key);
  JsonWriter& Value(int64_t value);
  JsonWriter& Value(int value) { return Value(static_cast<int64_t>(value)); }
  JsonWriter& Value(double value);
  JsonWriter& Value(bool value);
  JsonWriter& Value(const std::string& value);

  const std::string& str() const { return out_; }

 private:
  void MaybeComma();

  std::string out_;
  /// Whether a comma is needed before the next element, per nesting level.
  std::vector<bool> needs_comma_{false};
  bool after_key_ = false;
};

/// The machine-readable summary of one engine run, mirroring
/// RunStats plus the per-superstep timeline (serigraph_cli
/// --metrics-json writes exactly this).
struct RunReport {
  int supersteps = 0;
  bool converged = false;
  double computation_seconds = 0.0;
  std::map<std::string, int64_t> metrics;
  std::vector<SuperstepSample> timeline;
};

/// Serializes `report` as a JSON object:
///   {"supersteps":N,"converged":true,"computation_seconds":S,
///    "metrics":{"name":value,...},
///    "timeline":[{"superstep":0,"worker":0,"compute_us":...,...},...]}
std::string RunReportToJson(const RunReport& report);

/// Writes `content` to `path` (overwrite).
Status WriteTextFile(const std::string& path, const std::string& content);

}  // namespace serigraph

#endif  // SERIGRAPH_OBS_REPORT_H_
