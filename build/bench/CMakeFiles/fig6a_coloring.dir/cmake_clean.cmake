file(REMOVE_RECURSE
  "CMakeFiles/fig6a_coloring.dir/fig6a_coloring.cc.o"
  "CMakeFiles/fig6a_coloring.dir/fig6a_coloring.cc.o.d"
  "fig6a_coloring"
  "fig6a_coloring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6a_coloring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
