# Empty compiler generated dependencies file for serigraph_gas.
# This may be replaced when dependencies are built.
