// Figures 2 and 3: BSP and AP executions of greedy graph coloring fail to
// terminate (oscillate) on conflict-prone graphs, while every
// serializable execution terminates. We run the paper's 4-cycle plus
// larger even cycles and complete bipartite-ish graphs, and report
// terminated / cut-off per (model, technique).

#include <iostream>

#include "algos/coloring.h"
#include "graph/generators.h"
#include "harness/runner.h"
#include "harness/table.h"

using namespace serigraph;

namespace {

struct Case {
  const char* name;
  Graph graph;
};

std::vector<Case> MakeCases() {
  std::vector<Case> cases;
  auto add = [&](const char* name, EdgeList el) {
    auto g = Graph::FromEdgeList(el);
    SG_CHECK_OK(g.status());
    cases.push_back({name, g->Undirected()});
  };
  add("paper 4-cycle", PaperExampleGraph());
  add("even cycle n=64", Ring(64));
  add("complete K8", Complete(8));
  return cases;
}

}  // namespace

int main() {
  PrintHeader(std::cout, "Figures 2-3: (non-)termination of greedy coloring");
  std::cout << "Non-serializable runs cut off after 200 supersteps; BSP "
               "oscillates deterministically\n(Figure 2); AP depends on "
               "thread interleaving (Figure 3).\n\n";

  TablePrinter table(
      {"graph", "model", "technique", "outcome", "supersteps", "proper"});
  for (Case& c : MakeCases()) {
    struct Row {
      ComputationModel model;
      SyncMode sync;
    };
    const Row rows[] = {
        {ComputationModel::kBsp, SyncMode::kNone},
        {ComputationModel::kAsync, SyncMode::kNone},
        {ComputationModel::kAsync, SyncMode::kDualLayerToken},
        {ComputationModel::kAsync, SyncMode::kPartitionLocking},
        {ComputationModel::kAsync, SyncMode::kVertexLocking},
    };
    for (const Row& row : rows) {
      RunConfig config;
      config.model = row.model;
      config.sync_mode = row.sync;
      config.num_workers = 2;
      config.max_supersteps = row.sync == SyncMode::kNone ? 200 : 5000;
      std::vector<RepairColoring::State> states;
      RunStats stats =
          RunProgram(c.graph, RepairColoring(), config, &states);
      auto colors = RepairColoringColors(states);
      table.AddRow({c.name, ComputationModelName(row.model),
                    SyncModeName(row.sync),
                    stats.converged ? "terminated" : "CUT OFF (livelock)",
                    std::to_string(stats.supersteps),
                    IsProperColoring(c.graph, colors) ? "yes" : "NO"});
    }
  }
  table.Print(std::cout);
  return 0;
}
