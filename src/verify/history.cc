#include "verify/history.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <unordered_map>

#include "common/logging.h"

namespace serigraph {

HistoryRecorder::HistoryRecorder(const Graph* graph, int num_workers)
    : graph_(graph) {
  SG_CHECK(graph != nullptr);
  SG_CHECK_GT(num_workers, 0);
  const VertexId n = graph->num_vertices();
  versions_ = std::vector<std::atomic<uint64_t>>(n);
  delivered_ = std::vector<std::atomic<uint64_t>>(graph->num_edges());
  in_offsets_.assign(n + 1, 0);
  for (VertexId v = 0; v < n; ++v) {
    in_offsets_[v + 1] = in_offsets_[v] + graph->InDegree(v);
  }
  logs_.reserve(num_workers);
  for (int w = 0; w < num_workers; ++w) {
    logs_.push_back(std::make_unique<WorkerLog>());
  }
}

int64_t HistoryRecorder::InEdgeIndex(VertexId src, VertexId dst) const {
  auto in = graph_->InNeighbors(dst);
  auto it = std::lower_bound(in.begin(), in.end(), src);
  SG_CHECK(it != in.end() && *it == src);
  return in_offsets_[dst] + (it - in.begin());
}

uint64_t HistoryRecorder::OnTxnBegin(WorkerId w, VertexId v, int superstep) {
  TxnRecord rec;
  rec.vertex = v;
  rec.worker = w;
  rec.superstep = superstep;
  rec.start = clock_.fetch_add(1, std::memory_order_acq_rel);
  // Snapshot the read set: what v's replica view says about each
  // in-neighbor vs. the neighbor's primary copy right now. Under C2 no
  // neighbor is mid-execution, so this pair is well-defined.
  auto in = graph_->InNeighbors(v);
  rec.reads.reserve(in.size());
  for (VertexId u : in) {
    TxnRecord::Read read;
    read.neighbor = u;
    read.seen_version =
        delivered_[InEdgeIndex(u, v)].load(std::memory_order_acquire);
    read.current_version = versions_[u].load(std::memory_order_acquire);
    rec.reads.push_back(read);
  }
  rec.written_version = versions_[v].load(std::memory_order_acquire) + 1;
  WorkerLog& log = *logs_[w];
  uint64_t version = rec.written_version;
  {
    sy::MutexLock lock(&log.mu);
    log.open.push_back(std::move(rec));
  }
  return version;
}

void HistoryRecorder::OnTxnEnd(WorkerId w, VertexId v, bool published) {
  WorkerLog& log = *logs_[w];
  sy::MutexLock lock(&log.mu);
  auto it = std::find_if(log.open.rbegin(), log.open.rend(),
                         [v](const TxnRecord& r) { return r.vertex == v; });
  SG_CHECK(it != log.open.rend());
  TxnRecord rec = std::move(*it);
  log.open.erase(std::next(it).base());
  if (published) {
    versions_[v].store(rec.written_version, std::memory_order_release);
  } else {
    rec.written_version = 0;
  }
  rec.end = clock_.fetch_add(1, std::memory_order_acq_rel);
  log.records.push_back(std::move(rec));
}

void HistoryRecorder::OnDeliver(VertexId src, VertexId dst,
                                uint64_t version) {
  std::atomic<uint64_t>& slot = delivered_[InEdgeIndex(src, dst)];
  // Versions from one sender arrive in order, but be robust anyway.
  // mo: racy first read; the CAS below synchronizes
  uint64_t prev = slot.load(std::memory_order_relaxed);
  while (version > prev && !slot.compare_exchange_weak(
                               prev, version, std::memory_order_acq_rel)) {
  }
}

HistoryRecorder::Snapshot HistoryRecorder::TakeSnapshot() const {
  Snapshot snap;
  snap.clock = clock_.load(std::memory_order_acquire);
  snap.versions.reserve(versions_.size());
  for (const auto& v : versions_) {
    snap.versions.push_back(v.load(std::memory_order_acquire));
  }
  snap.delivered.reserve(delivered_.size());
  for (const auto& d : delivered_) {
    snap.delivered.push_back(d.load(std::memory_order_acquire));
  }
  snap.records.reserve(logs_.size());
  for (const auto& log : logs_) {
    sy::MutexLock lock(&log->mu);
    SG_CHECK(log->open.empty());  // snapshots only at global barriers
    snap.records.push_back(log->records);
  }
  return snap;
}

void HistoryRecorder::RestoreSnapshot(const Snapshot& snap) {
  SG_CHECK_EQ(snap.versions.size(), versions_.size());
  SG_CHECK_EQ(snap.delivered.size(), delivered_.size());
  SG_CHECK_EQ(snap.records.size(), logs_.size());
  clock_.store(snap.clock, std::memory_order_release);
  for (size_t i = 0; i < versions_.size(); ++i) {
    versions_[i].store(snap.versions[i], std::memory_order_release);
  }
  for (size_t i = 0; i < delivered_.size(); ++i) {
    delivered_[i].store(snap.delivered[i], std::memory_order_release);
  }
  for (size_t w = 0; w < logs_.size(); ++w) {
    sy::MutexLock lock(&logs_[w]->mu);
    logs_[w]->records = snap.records[w];
    // Transactions left open by a crashed/aborted attempt are discarded:
    // they never committed, so they are not part of the history.
    logs_[w]->open.clear();
  }
}

std::vector<TxnRecord> HistoryRecorder::TakeRecords() {
  std::vector<TxnRecord> all;
  for (auto& log : logs_) {
    sy::MutexLock lock(&log->mu);
    SG_CHECK(log->open.empty());
    all.insert(all.end(), std::make_move_iterator(log->records.begin()),
               std::make_move_iterator(log->records.end()));
    log->records.clear();
  }
  std::sort(all.begin(), all.end(),
            [](const TxnRecord& a, const TxnRecord& b) {
              return a.start < b.start;
            });
  return all;
}

namespace {

void AddViolation(HistoryCheck* check, const std::string& text) {
  if (check->violation_samples.size() < 8) {
    check->violation_samples.push_back(text);
  }
}

}  // namespace

HistoryCheck CheckHistory(const Graph& graph, std::vector<TxnRecord> records) {
  HistoryCheck check;
  check.num_transactions = static_cast<int64_t>(records.size());

  // --- Condition C1: every read fresh. -----------------------------------
  for (const TxnRecord& rec : records) {
    for (const TxnRecord::Read& read : rec.reads) {
      if (read.seen_version != read.current_version) {
        check.c1_fresh_reads = false;
        ++check.c1_violations;
        if (check.c1_violations <= 2) {
          std::ostringstream os;
          os << "C1: txn on v" << rec.vertex << " (superstep "
             << rec.superstep << ") read v" << read.neighbor << " at version "
             << read.seen_version << " but primary was at "
             << read.current_version;
          AddViolation(&check, os.str());
        }
      }
    }
  }

  // --- Condition C2: no neighboring transactions overlap. ----------------
  // Intervals per vertex, sorted by start (records are start-sorted).
  std::vector<std::vector<const TxnRecord*>> by_vertex(graph.num_vertices());
  for (const TxnRecord& rec : records) {
    by_vertex[rec.vertex].push_back(&rec);
  }
  auto overlaps = [&](VertexId a, VertexId b) -> int64_t {
    int64_t count = 0;
    const auto& ta = by_vertex[a];
    const auto& tb = by_vertex[b];
    size_t j = 0;
    for (const TxnRecord* ra : ta) {
      while (j < tb.size() && tb[j]->end < ra->start) ++j;
      for (size_t k = j; k < tb.size() && tb[k]->start < ra->end; ++k) {
        if (ra->start < tb[k]->end && tb[k]->start < ra->end) {
          ++count;
          std::ostringstream os;
          os << "C2: txns on neighbors v" << a << " [" << ra->start << ","
             << ra->end << "] and v" << b << " [" << tb[k]->start << ","
             << tb[k]->end << "] overlap";
          AddViolation(&check, os.str());
        }
      }
    }
    return count;
  };
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    for (VertexId u : graph.OutNeighbors(v)) {
      if (u <= v) continue;  // each unordered pair once
      int64_t c = overlaps(v, u);
      if (c > 0) {
        check.c2_no_neighbor_overlap = false;
        check.c2_violations += c;
      }
    }
  }

  // --- 1SR: serialization-graph acyclicity. ------------------------------
  // Writers are totally ordered per vertex by version. Dependencies:
  //   WR: writer of (u, k) -> reader that saw (u, k)
  //   RW: reader that saw (u, k) -> writer of (u, k+1)
  //   WW: writer of (u, k) -> writer of (u, k+1)
  const size_t n_txn = records.size();
  std::unordered_map<uint64_t, size_t> writer_index;  // (vertex,ver) -> txn
  auto key = [](VertexId v, uint64_t ver) {
    return static_cast<uint64_t>(v) * 1000000007ULL + ver;
  };
  for (size_t i = 0; i < n_txn; ++i) {
    if (records[i].written_version == 0) continue;  // unpublished write
    writer_index[key(records[i].vertex, records[i].written_version)] = i;
  }
  std::vector<std::vector<uint32_t>> adj(n_txn);
  std::vector<uint32_t> indegree(n_txn, 0);
  auto add_edge = [&](size_t from, size_t to) {
    if (from == to) return;
    adj[from].push_back(static_cast<uint32_t>(to));
    ++indegree[to];
  };
  for (size_t i = 0; i < n_txn; ++i) {
    const TxnRecord& rec = records[i];
    // WW chain (only for published writes).
    if (rec.written_version > 0) {
      auto next_w =
          writer_index.find(key(rec.vertex, rec.written_version + 1));
      if (next_w != writer_index.end()) add_edge(i, next_w->second);
    }
    // WR / RW edges from this txn's reads.
    for (const TxnRecord::Read& read : rec.reads) {
      if (read.seen_version > 0) {
        auto w = writer_index.find(key(read.neighbor, read.seen_version));
        if (w != writer_index.end()) add_edge(w->second, i);
      }
      auto w_next =
          writer_index.find(key(read.neighbor, read.seen_version + 1));
      if (w_next != writer_index.end()) add_edge(i, w_next->second);
    }
  }
  // Kahn's algorithm; a leftover node means a cycle.
  std::vector<uint32_t> queue;
  queue.reserve(n_txn);
  for (size_t i = 0; i < n_txn; ++i) {
    if (indegree[i] == 0) queue.push_back(static_cast<uint32_t>(i));
  }
  size_t seen = 0;
  while (seen < queue.size()) {
    uint32_t node = queue[seen++];
    for (uint32_t next : adj[node]) {
      if (--indegree[next] == 0) queue.push_back(next);
    }
  }
  if (seen != n_txn) {
    check.serializable = false;
    AddViolation(&check, "1SR: serialization graph contains a cycle (" +
                             std::to_string(n_txn - seen) +
                             " transactions involved)");
  }

  return check;
}

}  // namespace serigraph
