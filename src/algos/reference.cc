// Sequential reference implementations used as test oracles.

#include <cmath>
#include <deque>
#include <functional>
#include <numeric>
#include <unordered_set>

#include "algos/mis.h"
#include "algos/pagerank.h"
#include "algos/sssp.h"
#include "algos/wcc.h"

namespace serigraph {

std::vector<double> ReferencePageRank(const Graph& graph, double tolerance,
                                      int max_iterations) {
  const VertexId n = graph.num_vertices();
  std::vector<double> rank(n, 1.0);
  std::vector<double> next(n, 0.0);
  for (int iter = 0; iter < max_iterations; ++iter) {
    std::fill(next.begin(), next.end(), PageRank::kBase);
    for (VertexId v = 0; v < n; ++v) {
      const int64_t deg = graph.OutDegree(v);
      if (deg == 0) continue;
      const double share = PageRank::kDamping * rank[v] /
                           static_cast<double>(deg);
      for (VertexId u : graph.OutNeighbors(v)) next[u] += share;
    }
    double delta = 0.0;
    for (VertexId v = 0; v < n; ++v) {
      delta = std::max(delta, std::fabs(next[v] - rank[v]));
    }
    rank.swap(next);
    if (delta < tolerance / 10.0) break;
  }
  return rank;
}

double MaxAbsDifference(std::span<const double> a, std::span<const double> b) {
  double best = 0.0;
  const size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    best = std::max(best, std::fabs(a[i] - b[i]));
  }
  return best;
}

std::vector<int64_t> ReferenceSssp(const Graph& graph, VertexId source) {
  std::vector<int64_t> dist(graph.num_vertices(), kInfiniteDistance);
  std::deque<VertexId> queue;
  dist[source] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    VertexId v = queue.front();
    queue.pop_front();
    for (VertexId u : graph.OutNeighbors(v)) {
      if (dist[u] == kInfiniteDistance) {
        dist[u] = dist[v] + 1;
        queue.push_back(u);
      }
    }
  }
  return dist;
}

std::vector<int64_t> ReferenceWcc(const Graph& graph) {
  const VertexId n = graph.num_vertices();
  std::vector<int64_t> parent(n);
  std::iota(parent.begin(), parent.end(), 0);
  std::function<int64_t(int64_t)> find = [&](int64_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (VertexId v = 0; v < n; ++v) {
    for (VertexId u : graph.OutNeighbors(v)) {
      int64_t a = find(v);
      int64_t b = find(u);
      if (a != b) parent[std::max(a, b)] = std::min(a, b);
    }
  }
  std::vector<int64_t> label(n);
  for (VertexId v = 0; v < n; ++v) label[v] = find(v);
  return label;
}

int64_t CountComponents(std::span<const int64_t> labels) {
  std::unordered_set<int64_t> distinct(labels.begin(), labels.end());
  return static_cast<int64_t>(distinct.size());
}

bool IsIndependentSet(const Graph& graph, std::span<const int64_t> state) {
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    if (state[v] == MaximalIndependentSet::kUndecided) return false;
    if (state[v] != MaximalIndependentSet::kIn) continue;
    for (VertexId u : graph.OutNeighbors(v)) {
      if (state[u] == MaximalIndependentSet::kIn) return false;
    }
  }
  return true;
}

bool IsMaximalIndependentSet(const Graph& graph,
                             std::span<const int64_t> state) {
  if (!IsIndependentSet(graph, state)) return false;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    if (state[v] != MaximalIndependentSet::kOut) continue;
    bool has_in_neighbor = false;
    for (VertexId u : graph.OutNeighbors(v)) {
      has_in_neighbor |= state[u] == MaximalIndependentSet::kIn;
    }
    if (!has_in_neighbor) return false;
  }
  return true;
}

}  // namespace serigraph
