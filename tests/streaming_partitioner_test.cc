#include "graph/streaming_partitioner.h"

#include <gtest/gtest.h>

#include "algos/coloring.h"
#include "graph/generators.h"
#include "pregel/engine.h"

namespace serigraph {
namespace {

Graph Make(const EdgeList& el) {
  auto g = Graph::FromEdgeList(el);
  EXPECT_TRUE(g.ok()) << g.status();
  return std::move(g).value();
}

TEST(StreamingPartitionerTest, RespectsBalanceSlack) {
  Graph g = Make(PowerLawChungLu(2000, 8, 2.2, 5)).Undirected();
  StreamingPartitionOptions opts;
  opts.num_workers = 4;
  opts.partitions_per_worker = 4;
  opts.balance_slack = 1.05;
  Partitioning p = StreamingGreedyPartition(g, opts);
  EXPECT_EQ(p.num_partitions(), 16);
  const double capacity = 1.05 * 2000.0 / 16.0;
  for (int part = 0; part < 16; ++part) {
    EXPECT_LE(p.VerticesOfPartition(part).size(),
              static_cast<size_t>(capacity) + 1);
  }
}

TEST(StreamingPartitionerTest, CoversAllVertices) {
  Graph g = Make(ErdosRenyi(500, 2000, 7));
  StreamingPartitionOptions opts;
  opts.num_workers = 3;
  Partitioning p = StreamingGreedyPartition(g, opts);
  int64_t total = 0;
  for (int part = 0; part < p.num_partitions(); ++part) {
    total += static_cast<int64_t>(p.VerticesOfPartition(part).size());
  }
  EXPECT_EQ(total, 500);
}

TEST(StreamingPartitionerTest, DeterministicForSameSeed) {
  Graph g = Make(ErdosRenyi(300, 1200, 9));
  StreamingPartitionOptions opts;
  opts.num_workers = 4;
  opts.seed = 11;
  Partitioning a = StreamingGreedyPartition(g, opts);
  Partitioning b = StreamingGreedyPartition(g, opts);
  for (VertexId v = 0; v < 300; ++v) {
    EXPECT_EQ(a.PartitionOf(v), b.PartitionOf(v));
  }
}

TEST(StreamingPartitionerTest, CutsFewerEdgesThanHashOnStructuredGraph) {
  // A grid has strong locality: LDG must beat random hashing clearly.
  Graph g = Make(Grid(40, 40));
  StreamingPartitionOptions opts;
  opts.num_workers = 4;
  Partitioning ldg = StreamingGreedyPartition(g, opts);
  Partitioning hash = Partitioning::Hash(g.num_vertices(), 4, 4);
  EXPECT_LT(CountCutEdges(g, ldg), CountCutEdges(g, hash) / 2);
}

TEST(StreamingPartitionerTest, CutEdgesCountIsExact) {
  // 4 vertices in a path, split in the middle: exactly the middle edge
  // (both directions) is cut.
  Graph g = Make(Path(4)).Undirected();
  auto p = Partitioning::FromAssignment({0, 0, 1, 1}, {0, 1});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(CountCutEdges(g, *p), 2);
}

TEST(StreamingPartitionerTest, EngineRunsOnLdgPartitioning) {
  Graph g = Make(PowerLawChungLu(400, 6, 2.3, 3)).Undirected();
  StreamingPartitionOptions popts;
  popts.num_workers = 3;
  Partitioning partitioning = StreamingGreedyPartition(g, popts);

  EngineOptions opts;
  opts.sync_mode = SyncMode::kPartitionLocking;
  opts.num_workers = 3;
  Engine<GreedyColoring> engine(&g, opts);
  ASSERT_TRUE(engine.UsePartitioning(std::move(partitioning)).ok());
  auto result = engine.Run(GreedyColoring());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->stats.converged);
  EXPECT_TRUE(IsProperColoring(g, result->values));
}

}  // namespace
}  // namespace serigraph
