// Lint fixture: manual Lock() with no matching Unlock() anywhere in the
// file. Expected diagnostic: [acquire-without-release] at the Lock line.
#include "common/mutex.h"

namespace lint_fixture {

class LeakyGuard {
 public:
  void Begin() {
    mu_.Lock();  // planted violation: never released
    ++depth_;
  }

 private:
  sy::Mutex mu_;
  int depth_ = 0;
};

}  // namespace lint_fixture
