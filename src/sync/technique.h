#ifndef SERIGRAPH_SYNC_TECHNIQUE_H_
#define SERIGRAPH_SYNC_TECHNIQUE_H_

#include <functional>
#include <memory>
#include <string>

#include "common/metrics.h"
#include "common/status.h"
#include "graph/graph.h"
#include "graph/partitioning.h"
#include "net/message.h"

namespace serigraph {

/// Which synchronization technique an engine run uses (paper Sections 4-5).
enum class SyncMode {
  kNone = 0,             ///< plain BSP/AP; no serializability guarantee
  kSingleLayerToken = 1, ///< Section 4.2 (Giraphx-style, one thread/worker)
  kDualLayerToken = 2,   ///< Section 5.3 (partition aware)
  kVertexLocking = 3,    ///< Section 4.3 (Chandy-Misra, vertices eat)
  kPartitionLocking = 4, ///< Section 5.4 (Chandy-Misra, partitions eat)
  /// Proposition 1: constrained vertex-based locking for synchronous
  /// models — all vertices are philosophers and forks/tokens are
  /// exchanged only at global (sub-superstep) barriers. Requires the BSP
  /// model. The paper proves it correct but does not implement it
  /// because it multiplies BSP's barrier costs; we implement it and
  /// measure exactly that (bench/prop1_bsp_locking).
  kConstrainedBspLocking = 5,
};

const char* SyncModeName(SyncMode mode);

/// Engine-side services a technique may use, one handle per worker. The
/// engine implements this; techniques stay independent of message types.
class WorkerHandle {
 public:
  virtual ~WorkerHandle() = default;

  /// Flushes this worker's buffered data messages destined to `dst` onto
  /// the wire. Used to implement the write-all rule (condition C1): a
  /// worker flushes pending remote replica updates before handing a shared
  /// resource (fork/token) to another worker. Delivery-before-handover is
  /// guaranteed by the transport's per-(src,dst) FIFO order.
  virtual void FlushRemoteTo(WorkerId dst) = 0;

  /// Flushes buffered data messages to all workers.
  virtual void FlushAllRemote() = 0;

  /// Sends a control message (kind kControl) to worker `dst` on behalf of
  /// the technique. Tag/operands are technique-defined; the engine routes
  /// incoming control messages back to SyncTechnique::HandleControl.
  virtual void SendControl(WorkerId dst, uint32_t tag, int64_t a, int64_t b,
                           int64_t c) = 0;

  virtual WorkerId worker_id() const = 0;
};

/// A synchronization technique that enforces conditions C1 and C2
/// (Section 3.3) on top of the asynchronous (AP) engine, thereby providing
/// one-copy serializability (Theorem 1).
///
/// Threading contract:
///  * Acquire*/Release*/MayExecuteVertex/OnSuperstep* are called from
///    compute threads (Acquire* may block).
///  * HandleControl is called from the owning worker's communication
///    thread and must never block on protocol progress.
class SyncTechnique {
 public:
  /// How the engine drives the technique.
  enum class Granularity {
    kNone,          ///< no gating at all
    kVertexGate,    ///< filter vertices via MayExecuteVertex (token passing)
    kPartitionLock, ///< Acquire/ReleasePartition around partition execution
    kVertexLock,    ///< Acquire/ReleaseVertex around each vertex execution
    kBspVertexLock, ///< Proposition 1: sub-superstep polling, barrier-only
                    ///< fork exchange (synchronous models)
  };

  struct Context {
    const Graph* graph = nullptr;
    const Partitioning* partitioning = nullptr;
    const BoundaryInfo* boundaries = nullptr;
    MetricRegistry* metrics = nullptr;
    /// When set (fault-injection runs), protocol-state inconsistencies
    /// that only message loss can produce are reported here as a
    /// recoverable failure instead of crashing the process. Invoked from
    /// comm threads with no technique lock held. Null in fault-free runs,
    /// where such an inconsistency is a genuine bug and stays fatal.
    std::function<void(WorkerId, const std::string&)> on_protocol_violation;
  };

  virtual ~SyncTechnique() = default;

  /// One-time setup after the graph is partitioned ("input loading" in the
  /// paper: dependency exchange, initial fork/token placement).
  virtual Status Init(const Context& ctx) = 0;

  /// Registers worker `w`'s handle. Called once per worker before the run.
  virtual void BindWorker(WorkerId w, WorkerHandle* handle) = 0;

  virtual Granularity granularity() const = 0;

  /// Single-layer token passing cannot use multithreaded workers
  /// (Section 4.2); the engine honors this by clamping compute threads.
  virtual bool RequiresSingleComputeThread() const { return false; }

  /// kVertexGate only: may vertex `v` execute in `superstep` on worker `w`?
  virtual bool MayExecuteVertex(WorkerId w, int superstep, VertexId v) {
    (void)w;
    (void)superstep;
    (void)v;
    return true;
  }

  /// kPartitionLock only: blocks until partition `p` may execute and
  /// returns true. Returns false — with the lock NOT held — only when an
  /// Introspector abort interrupted the wait; the caller must skip the
  /// execution and must not call ReleasePartition.
  virtual bool AcquirePartition(WorkerId w, PartitionId p) {
    (void)w;
    (void)p;
    return true;
  }
  virtual void ReleasePartition(WorkerId w, PartitionId p) {
    (void)w;
    (void)p;
  }

  /// kVertexLock only: blocks until vertex `v` may execute and returns
  /// true; false under the same abort contract as AcquirePartition.
  virtual bool AcquireVertex(WorkerId w, VertexId v) {
    (void)w;
    (void)v;
    return true;
  }
  virtual void ReleaseVertex(WorkerId w, VertexId v) {
    (void)w;
    (void)v;
  }

  /// Superstep lifecycle, called from worker main loops between barriers.
  virtual void OnSuperstepStart(WorkerId w, int superstep) {
    (void)w;
    (void)superstep;
  }
  /// Called after the worker flushed and acked all remote messages for the
  /// superstep (so token handovers here satisfy C1).
  virtual void OnSuperstepEnd(WorkerId w, int superstep) {
    (void)w;
    (void)superstep;
  }

  /// A control message addressed to this technique arrived at worker `w`.
  virtual void HandleControl(WorkerId w, const WireMessage& msg) {
    (void)w;
    (void)msg;
  }

  // kBspVertexLock only (Proposition 1); called between sub-superstep
  // barriers, never concurrently with a neighbor's execution.
  /// True if `v` holds every fork and may execute this sub-superstep.
  virtual bool VertexReady(WorkerId w, VertexId v) {
    (void)w;
    (void)v;
    return true;
  }
  /// Requests the forks `v` is missing (idempotent per outstanding fork).
  virtual void RequestVertexForks(WorkerId w, VertexId v) {
    (void)w;
    (void)v;
  }
  /// Marks `v` executed: dirties its forks, serves deferred requests.
  virtual void OnVertexExecuted(WorkerId w, VertexId v) {
    (void)w;
    (void)v;
  }
  /// Called inside the sub-superstep barrier window, when no vertex is
  /// executing anywhere: the only point where queued fork/token traffic
  /// may be applied (Proposition 1 property (ii)).
  virtual void OnSubBarrier(WorkerId w) { (void)w; }
};

/// Trivial technique for SyncMode::kNone.
class NoSync final : public SyncTechnique {
 public:
  Status Init(const Context&) override { return Status::OK(); }
  void BindWorker(WorkerId, WorkerHandle*) override {}
  Granularity granularity() const override { return Granularity::kNone; }
};

/// Creates the technique for `mode`. The returned object must be
/// Init()-ed and bound to workers by the engine before use.
std::unique_ptr<SyncTechnique> MakeSyncTechnique(SyncMode mode);

}  // namespace serigraph

#endif  // SERIGRAPH_SYNC_TECHNIQUE_H_
