// TSA negative case: reading a SY_GUARDED_BY field with no lock held.
// Under Clang -Wthread-safety -Werror this must FAIL to compile
// ("reading variable 'count_' requires holding mutex 'mu_'"). Under
// GCC the annotations are no-ops, so it compiles — the harness then
// registers it as a plain-compile smoke instead.
#include "common/mutex.h"

namespace tsa_negative {

class Unguarded {
 public:
  int Peek() const {
    return count_;  // violation: mu_ not held
  }

  void Add(int d) {
    sy::MutexLock lock(&mu_);
    count_ += d;
  }

 private:
  mutable sy::Mutex mu_;
  int count_ SY_GUARDED_BY(mu_) = 0;
};

int Use() {
  Unguarded u;
  u.Add(1);
  return u.Peek();
}

}  // namespace tsa_negative
