#ifndef SERIGRAPH_ALGOS_PAGERANK_H_
#define SERIGRAPH_ALGOS_PAGERANK_H_

#include <cmath>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace serigraph {

/// PageRank in the accumulative (delta) formulation, the standard way to
/// run PageRank under asynchronous execution with vote-to-halt semantics
/// (used by the Giraph-async line of work the paper builds on).
///
/// Every vertex accumulates incoming probability mass into its value; a
/// received mass m additionally forwards 0.85 * m / out_degree to each
/// out-neighbor. A vertex's first execution seeds it with the base mass
/// 0.15.
/// A vertex halts when the mass received since its last execution is
/// below `tolerance` (the paper's user-specified threshold: it terminates
/// when every vertex changes by less than the threshold between two
/// consecutive executions). The fixpoint is the paper's expectation form
/// pr(u) = 0.15 + 0.85 * sum(pr(v)/deg+(v)).
struct PageRank {
  using VertexValue = double;
  using Message = double;

  static constexpr double kDamping = 0.85;
  static constexpr double kBase = 0.15;

  explicit PageRank(double tolerance) : tolerance(tolerance) {}

  double tolerance;

  static Message Combine(const Message& a, const Message& b) { return a + b; }

  VertexValue InitialValue(VertexId, const Graph&) const { return 0.0; }

  template <typename Ctx>
  void Compute(Ctx& ctx, std::span<const Message> messages) const {
    double received = 0.0;
    for (Message m : messages) received += m;
    // Seed the base mass on the first execution (value still exactly 0),
    // not in superstep 0: token passing cannot guarantee every vertex
    // executes in superstep 0 (paper Section 6.5).
    if (ctx.value() == 0.0) received += kBase;

    if (received > 0.0) {
      ctx.set_value(ctx.value() + received);
      if (received >= tolerance && ctx.num_out_edges() > 0) {
        ctx.SendToAllOutNeighbors(
            kDamping * received /
            static_cast<double>(ctx.num_out_edges()));
      }
    }
    ctx.VoteToHalt();
  }
};

/// Sequential reference PageRank (power iteration on the same fixpoint),
/// for test oracles. Returns expectation values like the paper.
std::vector<double> ReferencePageRank(const Graph& graph, double tolerance,
                                      int max_iterations = 1000);

/// Max |a[i] - b[i]|.
double MaxAbsDifference(std::span<const double> a, std::span<const double> b);

}  // namespace serigraph

#endif  // SERIGRAPH_ALGOS_PAGERANK_H_
