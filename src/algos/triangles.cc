#include "algos/triangles.h"

namespace serigraph {

int64_t ReferenceTriangleCount(const Graph& graph) {
  int64_t count = 0;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    auto nv = graph.OutNeighbors(v);
    for (VertexId u : nv) {
      if (u <= v) continue;
      auto nu = graph.OutNeighbors(u);
      // Count w > u adjacent to both v and u.
      for (VertexId w : nv) {
        if (w <= u) continue;
        if (std::binary_search(nu.begin(), nu.end(), w)) ++count;
      }
    }
  }
  return count;
}

}  // namespace serigraph
