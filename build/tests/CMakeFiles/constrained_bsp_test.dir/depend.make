# Empty dependencies file for constrained_bsp_test.
# This may be replaced when dependencies are built.
