# Empty dependencies file for ablation_forks.
# This may be replaced when dependencies are built.
