# Empty dependencies file for fig6b_pagerank.
# This may be replaced when dependencies are built.
