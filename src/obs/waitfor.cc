#include "obs/waitfor.h"

#include <algorithm>

#include "obs/report.h"

namespace serigraph {

std::vector<int> FindWorkerCycle(const WaitForGraph& graph) {
  if (graph.num_workers <= 0) return {};
  // Worker-level adjacency, self-loops dropped.
  std::vector<std::vector<int>> adj(graph.num_workers);
  for (const WaitForEdge& e : graph.edges) {
    if (e.from < 0 || e.to < 0 || e.from >= graph.num_workers ||
        e.to >= graph.num_workers || e.from == e.to) {
      continue;
    }
    adj[e.from].push_back(e.to);
  }
  // Iterative DFS with the classic white/grey/black coloring; a grey->grey
  // edge closes a cycle, which we read back off the DFS stack.
  enum : uint8_t { kWhite = 0, kGrey = 1, kBlack = 2 };
  std::vector<uint8_t> color(graph.num_workers, kWhite);
  std::vector<int> stack;       // current DFS path (grey vertices in order)
  struct Frame {
    int node;
    size_t next_edge;
  };
  std::vector<Frame> frames;
  for (int start = 0; start < graph.num_workers; ++start) {
    if (color[start] != kWhite) continue;
    frames.push_back({start, 0});
    color[start] = kGrey;
    stack.push_back(start);
    while (!frames.empty()) {
      Frame& frame = frames.back();
      if (frame.next_edge < adj[frame.node].size()) {
        const int next = adj[frame.node][frame.next_edge++];
        if (color[next] == kGrey) {
          // Cycle: the suffix of the DFS path from `next` onward.
          auto it = std::find(stack.begin(), stack.end(), next);
          return std::vector<int>(it, stack.end());
        }
        if (color[next] == kWhite) {
          color[next] = kGrey;
          stack.push_back(next);
          frames.push_back({next, 0});
        }
      } else {
        color[frame.node] = kBlack;
        stack.pop_back();
        frames.pop_back();
      }
    }
  }
  return {};
}

std::string WaitForEdgesJson(const WaitForGraph& graph) {
  JsonWriter json;
  json.BeginArray();
  for (const WaitForEdge& e : graph.edges) {
    json.BeginObject();
    json.Key("from").Value(static_cast<int64_t>(e.from));
    json.Key("to").Value(static_cast<int64_t>(e.to));
    json.Key("waiter").Value(e.waiter);
    json.Key("resource").Value(e.resource);
    json.Key("waited_us").Value(e.waited_us);
    json.EndObject();
  }
  json.EndArray();
  return json.str();
}

std::string WaitForGraphSummary(const WaitForGraph& graph) {
  std::string out = "wait-for graph (" +
                    std::to_string(graph.edges.size()) + " edges):";
  for (const WaitForEdge& e : graph.edges) {
    out += " w" + std::to_string(e.from) + "[" + std::to_string(e.waiter) +
           "]->w" + std::to_string(e.to) + "[" + std::to_string(e.resource) +
           "](" + std::to_string(e.waited_us) + "us)";
  }
  if (graph.edges.empty()) out += " (empty)";
  return out;
}

}  // namespace serigraph
