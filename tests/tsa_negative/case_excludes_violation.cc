// TSA negative case: calling an SY_EXCLUDES function while holding the
// excluded mutex (the self-deadlock shape SY_EXCLUDES exists to stop).
// Must FAIL under Clang -Wthread-safety -Werror ("cannot call function
// 'Reset' while mutex 'mu_' is held").
#include "common/mutex.h"

namespace tsa_negative {

class ExcludesViolation {
 public:
  void Reset() SY_EXCLUDES(mu_) {
    sy::MutexLock lock(&mu_);
    count_ = 0;
  }

  void ResetIfLarge() {
    sy::MutexLock lock(&mu_);
    if (count_ > 100) {
      Reset();  // violation: mu_ is held, Reset() acquires it again
    }
  }

 private:
  sy::Mutex mu_;
  int count_ SY_GUARDED_BY(mu_) = 0;
};

void Use() {
  ExcludesViolation e;
  e.ResetIfLarge();
}

}  // namespace tsa_negative
