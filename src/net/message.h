#ifndef SERIGRAPH_NET_MESSAGE_H_
#define SERIGRAPH_NET_MESSAGE_H_

#include <chrono>
#include <cstdint>
#include <vector>

#include "graph/types.h"

namespace serigraph {

/// Coarse category of a wire message. The transport treats all kinds
/// identically; workers dispatch on kind.
enum class MessageKind : uint8_t {
  kDataBatch = 0,   ///< batch of vertex->vertex data messages (payload)
  kControl = 1,     ///< sync-technique traffic: tokens, forks, requests
  kFlushMarker = 2, ///< sent after a flush; receiver acks when processed
  kAck = 3,         ///< acknowledgement of a flush marker
  kLoading = 4,     ///< input-loading traffic (dependency exchange)
};

/// One message on the simulated network. Control messages use the small
/// integer operand fields; data batches carry a serialized payload.
/// `bytes_on_wire` approximates the encoded size (header + payload).
struct WireMessage {
  WorkerId src = kInvalidWorker;
  WorkerId dst = kInvalidWorker;
  MessageKind kind = MessageKind::kControl;
  /// Subtype within the kind, interpreted by the receiver (e.g. which
  /// control verb: token grant, fork request, fork transfer, ...).
  uint32_t tag = 0;
  /// Small operands (philosopher ids, superstep numbers, ack ids, ...).
  int64_t a = 0;
  int64_t b = 0;
  int64_t c = 0;
  /// Causality tag: nonzero ids pair the send with the receive as a flow
  /// arrow in the Chrome trace ("ph":"s"/"f"), so a fork request/grant or
  /// vertex batch can be followed across workers. Assigned by the
  /// transport when tracing is enabled; 0 means untagged.
  uint64_t span = 0;
  /// Per-(src,dst) link sequence number, assigned by the transport on
  /// send (1-based, strictly increasing per link). The receiver drops
  /// messages whose sequence it has already delivered (duplicate
  /// tolerance) and reports gaps (message loss) to the loss callback.
  uint64_t link_seq = 0;
  std::vector<uint8_t> payload;

  /// Approximate wire size: fixed header plus payload.
  int64_t BytesOnWire() const {
    return 32 + static_cast<int64_t>(payload.size());
  }
};

/// Growable power-of-two ring buffer of WireMessages: the transport's
/// zero-delay fast-path inbox. Plain FIFO — total per-inbox arrival
/// order, which subsumes the per-(src,dst) ordering guarantee — with no
/// per-message heap node (the priority-queue path pays one) and memory
/// reused across pushes. Not thread-safe; the owner locks around it.
class MessageRing {
 public:
  bool empty() const { return count_ == 0; }
  size_t size() const { return count_; }

  void Push(WireMessage msg) {
    if (count_ == buf_.size()) Grow();
    buf_[(head_ + count_) & (buf_.size() - 1)] = std::move(msg);
    ++count_;
  }

  WireMessage Pop() {
    WireMessage msg = std::move(buf_[head_]);
    head_ = (head_ + 1) & (buf_.size() - 1);
    --count_;
    return msg;
  }

 private:
  void Grow() {
    const size_t cap = buf_.empty() ? 16 : buf_.size() * 2;
    std::vector<WireMessage> grown(cap);
    for (size_t i = 0; i < count_; ++i) {
      grown[i] = std::move(buf_[(head_ + i) & (buf_.size() - 1)]);
    }
    buf_.swap(grown);
    head_ = 0;
  }

  std::vector<WireMessage> buf_;
  size_t head_ = 0;
  size_t count_ = 0;
};

}  // namespace serigraph

#endif  // SERIGRAPH_NET_MESSAGE_H_
