// Lint fixture: explicit relaxed memory order without a `// mo:`
// justification. Expected diagnostic: [memory-order] at the bare
// fetch_add line. The annotated uses above it must NOT be flagged.
#include <atomic>

namespace lint_fixture {

class Stats {
 public:
  // mo: stat cell; no ordering role
  void Hit() { hits_.fetch_add(1, std::memory_order_relaxed); }

  void Miss() {
    misses_.fetch_add(1, std::memory_order_relaxed);  // mo: stat cell
  }

  void Evict() {
    evictions_.fetch_add(1, std::memory_order_relaxed);  // planted: bare
  }

 private:
  std::atomic<long> hits_{0};
  std::atomic<long> misses_{0};
  std::atomic<long> evictions_{0};
};

}  // namespace lint_fixture
