// Unit tests for the sharded flat message store: shard striping, BSP
// swap visibility and leftover merging, arena reuse across supersteps,
// combiner folding, batch delivery, and concurrent append (the TSan run
// exercises the shard locking for real).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include "pregel/message_store.h"

namespace serigraph {
namespace {

int64_t MinCombine(const int64_t& a, const int64_t& b) {
  return std::min(a, b);
}

std::vector<int64_t> Drain(MessageStore<int64_t>& store, int32_t li) {
  std::vector<int64_t> scratch;
  auto span = store.Consume(li, &scratch);
  return std::vector<int64_t>(span.begin(), span.end());
}

TEST(MessageStoreTest, ShardCountIsPowerOfTwoAndBounded) {
  EXPECT_EQ(PickMessageStoreShards(0), 1);
  EXPECT_EQ(PickMessageStoreShards(1), 1);
  for (int64_t n : {1, 7, 31, 32, 100, 1000, 100000}) {
    const int s = PickMessageStoreShards(n);
    EXPECT_GE(s, 1);
    EXPECT_LE(s, 16);
    EXPECT_EQ(s & (s - 1), 0) << "n=" << n << " shards=" << s;
  }
}

TEST(MessageStoreTest, EmptyOneAndManyMessageVertices) {
  for (bool bsp : {true, false}) {
    MessageStore<int64_t> store;
    store.Init(10, bsp, nullptr, /*shard_hint=*/4);
    store.Append(3, 42);
    for (int64_t i = 0; i < 100; ++i) store.Append(7, i);
    if (bsp) store.Swap();

    EXPECT_FALSE(store.HasMessages(0));
    EXPECT_TRUE(store.HasMessages(3));
    EXPECT_TRUE(store.HasMessages(7));
    EXPECT_EQ(store.pending(), 2);

    EXPECT_TRUE(Drain(store, 0).empty());
    EXPECT_EQ(Drain(store, 3), std::vector<int64_t>{42});
    std::vector<int64_t> many = Drain(store, 7);
    ASSERT_EQ(many.size(), 100u);
    // FIFO per vertex, across chunk boundaries.
    for (int64_t i = 0; i < 100; ++i) EXPECT_EQ(many[i], i);
    EXPECT_EQ(store.pending(), 0);
    EXPECT_FALSE(store.HasMessages(7));
  }
}

TEST(MessageStoreTest, ShardStripingKeepsVerticesSeparate) {
  MessageStore<int64_t> store;
  store.Init(64, /*double_buffered=*/false, nullptr, /*shard_hint=*/8);
  EXPECT_EQ(store.num_shards(), 8);
  // Vertices 0..7 map to the 8 distinct shards; 8..15 share them.
  for (int32_t li = 0; li < 16; ++li) store.Append(li, li * 10);
  for (int32_t li = 0; li < 16; ++li) {
    EXPECT_EQ(Drain(store, li), std::vector<int64_t>{li * 10}) << li;
  }
  EXPECT_TRUE(Drain(store, 16).empty());
}

TEST(MessageStoreTest, BspArrivalsInvisibleUntilSwap) {
  MessageStore<int64_t> store;
  store.Init(4, /*double_buffered=*/true, nullptr);
  store.Append(1, 5);
  EXPECT_FALSE(store.HasMessages(1));
  EXPECT_EQ(store.pending(), 0);
  store.Swap();
  EXPECT_TRUE(store.HasMessages(1));
  EXPECT_EQ(store.pending(), 1);
  // New arrivals after the swap stay invisible again.
  store.Append(2, 6);
  EXPECT_FALSE(store.HasMessages(2));
  EXPECT_EQ(Drain(store, 1), std::vector<int64_t>{5});
}

TEST(MessageStoreTest, SwapMergesUnconsumedLeftoversBeforeNewArrivals) {
  MessageStore<int64_t> store;
  store.Init(4, /*double_buffered=*/true, nullptr);
  store.Append(2, 1);
  store.Append(2, 2);
  store.Swap();
  // Not consumed: the constrained-BSP sub-superstep path leaves visible
  // messages behind for ineligible vertices.
  store.Append(2, 3);
  store.Swap();
  EXPECT_EQ(Drain(store, 2), (std::vector<int64_t>{1, 2, 3}));
}

TEST(MessageStoreTest, CombinerFoldsOnAppendAndAcrossSwapLeftovers) {
  MessageStore<int64_t> store;
  store.Init(4, /*double_buffered=*/true, &MinCombine);
  store.Append(0, 9);
  store.Append(0, 4);
  store.Append(0, 7);
  store.Swap();
  EXPECT_EQ(Drain(store, 0), std::vector<int64_t>{4});

  store.Append(1, 8);
  store.Swap();
  store.Append(1, 3);  // folds into the unconsumed leftover at the next swap
  store.Swap();
  EXPECT_EQ(Drain(store, 1), std::vector<int64_t>{3});
}

TEST(MessageStoreTest, ApDirectModeIsImmediatelyVisible) {
  MessageStore<int64_t> store;
  store.Init(8, /*double_buffered=*/false, &MinCombine);
  EXPECT_EQ(store.pending(), 0);
  store.Append(5, 20);
  store.Append(5, 10);
  EXPECT_TRUE(store.HasMessages(5));
  EXPECT_EQ(store.pending(), 1);
  EXPECT_EQ(Drain(store, 5), std::vector<int64_t>{10});
  // Consume restarts the chain; a later append re-arms pending.
  store.Append(5, 30);
  EXPECT_EQ(store.pending(), 1);
  EXPECT_EQ(Drain(store, 5), std::vector<int64_t>{30});
}

TEST(MessageStoreTest, AppendBatchMatchesIndividualAppends) {
  MessageStore<int64_t> batched, individual;
  batched.Init(32, /*double_buffered=*/true, nullptr, /*shard_hint=*/4);
  individual.Init(32, /*double_buffered=*/true, nullptr, /*shard_hint=*/4);
  std::vector<std::pair<int32_t, int64_t>> records;
  for (int i = 0; i < 200; ++i) {
    records.emplace_back(static_cast<int32_t>((i * 7) % 32), i);
  }
  for (const auto& [li, msg] : records) individual.Append(li, msg);
  batched.AppendBatch(std::span(records));
  batched.Swap();
  individual.Swap();
  for (int32_t li = 0; li < 32; ++li) {
    std::vector<int64_t> a = Drain(batched, li);
    std::vector<int64_t> b = Drain(individual, li);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b) << "li=" << li;
  }
}

TEST(MessageStoreTest, ArenaChunksPlateauAcrossSupersteps) {
  MessageStore<int64_t> store;
  store.Init(256, /*double_buffered=*/true, nullptr, /*shard_hint=*/4);
  std::vector<int64_t> scratch;
  int64_t after_first = 0;
  for (int step = 0; step < 8; ++step) {
    for (int32_t li = 0; li < 256; ++li) {
      for (int m = 0; m < 10; ++m) store.Append(li, li + m);
    }
    store.Swap();
    for (int32_t li = 0; li < 256; ++li) store.Consume(li, &scratch);
    if (step == 0) after_first = store.arena_chunks();
  }
  EXPECT_GT(after_first, 0);
  // Steady-state: identical volume per superstep allocates no new chunks.
  EXPECT_EQ(store.arena_chunks(), after_first);
}

TEST(MessageStoreTest, ForEachPendingVertexVisitsExactlyThePending) {
  for (bool bsp : {true, false}) {
    MessageStore<int64_t> store;
    store.Init(40, bsp, nullptr, /*shard_hint=*/8);
    for (int32_t li : {0, 13, 17, 39}) store.Append(li, li);
    if (bsp) store.Swap();
    std::vector<int32_t> seen;
    store.ForEachPendingVertex([&](int32_t li) { seen.push_back(li); });
    std::sort(seen.begin(), seen.end());
    EXPECT_EQ(seen, (std::vector<int32_t>{0, 13, 17, 39}));
  }
}

TEST(MessageStoreTest, VisibleCountAndWalkMatchConsume) {
  MessageStore<int64_t> store;
  store.Init(8, /*double_buffered=*/true, nullptr);
  store.Append(2, 7);
  store.Append(2, 8);
  store.Swap();
  EXPECT_EQ(store.VisibleCount(2), 2);
  std::vector<int64_t> walked;
  store.ForEachVisible(2, [&](const int64_t& m) { walked.push_back(m); });
  EXPECT_EQ(walked, (std::vector<int64_t>{7, 8}));
  EXPECT_EQ(Drain(store, 2), walked);
}

TEST(MessageStoreTest, ConcurrentAppendIsLinearizablePerVertex) {
  // 8 threads hammer 64 vertices through 4 shards; TSan validates the
  // locking, the assertions validate nothing is lost or duplicated.
  constexpr int kThreads = 8;
  constexpr int32_t kVertices = 64;
  constexpr int kPerThread = 500;
  for (bool bsp : {true, false}) {
    MessageStore<int64_t> store;
    store.Init(kVertices, bsp, nullptr, /*shard_hint=*/4);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&store, t] {
        for (int i = 0; i < kPerThread; ++i) {
          const int32_t li = static_cast<int32_t>((t * 31 + i) % kVertices);
          store.Append(li, t * 1000000 + i);
        }
      });
    }
    for (auto& th : threads) th.join();
    if (bsp) store.Swap();
    int64_t total = 0;
    std::vector<bool> seen(kThreads * 1000000 + kPerThread, false);
    for (int32_t li = 0; li < kVertices; ++li) {
      for (int64_t m : Drain(store, li)) {
        ASSERT_FALSE(seen[m]) << "duplicate message " << m;
        seen[m] = true;
        ++total;
      }
    }
    EXPECT_EQ(total, kThreads * kPerThread);
  }
}

TEST(MessageStoreTest, ConcurrentCombineKeepsChainsShort) {
  constexpr int kThreads = 8;
  MessageStore<int64_t> store;
  store.Init(16, /*double_buffered=*/false, &MinCombine, /*shard_hint=*/4);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, t] {
      for (int i = 0; i < 2000; ++i) {
        store.Append(i % 16, 100 + ((t * 7 + i) % 900));
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int32_t li = 0; li < 16; ++li) {
    EXPECT_EQ(store.VisibleCount(li), 1);
    std::vector<int64_t> v = Drain(store, li);
    ASSERT_EQ(v.size(), 1u);
    EXPECT_GE(v[0], 100);
    EXPECT_LT(v[0], 1000);
  }
  // Folding never grew the arena past one chunk per shard.
  EXPECT_LE(store.arena_chunks(), store.num_shards());
}

TEST(CombiningMapTest, FoldsDuplicatesAndDrainsInInsertionOrder) {
  CombiningMap<int64_t> map;
  auto min = [](const int64_t& a, const int64_t& b) { return std::min(a, b); };
  EXPECT_TRUE(map.Fold(10, 5, min));
  EXPECT_TRUE(map.Fold(20, 9, min));
  EXPECT_FALSE(map.Fold(10, 3, min));
  EXPECT_FALSE(map.Fold(20, 11, min));
  EXPECT_EQ(map.size(), 2u);
  std::vector<std::pair<VertexId, int64_t>> out;
  map.Drain(&out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], (std::pair<VertexId, int64_t>{10, 3}));
  EXPECT_EQ(out[1], (std::pair<VertexId, int64_t>{20, 9}));
  EXPECT_EQ(map.size(), 0u);
  // Reusable after a drain.
  EXPECT_TRUE(map.Fold(10, 1, min));
  map.Drain(&out);
  EXPECT_EQ(out[0], (std::pair<VertexId, int64_t>{10, 1}));
}

TEST(CombiningMapTest, GrowsPastInitialTable) {
  CombiningMap<int64_t> map;
  auto sum = [](const int64_t& a, const int64_t& b) { return a + b; };
  constexpr int64_t kKeys = 5000;  // > initial table of 1024
  for (int64_t round = 0; round < 2; ++round) {
    for (int64_t k = 0; k < kKeys; ++k) map.Fold(k * 3, 1, sum);
  }
  EXPECT_EQ(map.size(), static_cast<size_t>(kKeys));
  std::vector<std::pair<VertexId, int64_t>> out;
  map.Drain(&out);
  ASSERT_EQ(out.size(), static_cast<size_t>(kKeys));
  for (int64_t k = 0; k < kKeys; ++k) {
    EXPECT_EQ(out[k].first, k * 3);
    EXPECT_EQ(out[k].second, 2);
  }
}

}  // namespace
}  // namespace serigraph
