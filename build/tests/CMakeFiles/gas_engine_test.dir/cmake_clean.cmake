file(REMOVE_RECURSE
  "CMakeFiles/gas_engine_test.dir/gas_engine_test.cc.o"
  "CMakeFiles/gas_engine_test.dir/gas_engine_test.cc.o.d"
  "gas_engine_test"
  "gas_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gas_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
