#include "graph/graph.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/stats.h"

namespace serigraph {
namespace {

Graph Make(const EdgeList& el) {
  auto g = Graph::FromEdgeList(el);
  EXPECT_TRUE(g.ok()) << g.status();
  return std::move(g).value();
}

TEST(GraphTest, EmptyGraph) {
  Graph g = Make({0, {}});
  EXPECT_EQ(g.num_vertices(), 0);
  EXPECT_EQ(g.num_edges(), 0);
}

TEST(GraphTest, BasicCsrStructure) {
  Graph g = Make({4, {{0, 1}, {0, 2}, {1, 2}, {3, 0}}});
  EXPECT_EQ(g.num_edges(), 4);
  EXPECT_EQ(g.OutDegree(0), 2);
  EXPECT_EQ(g.InDegree(2), 2);
  auto n0 = g.OutNeighbors(0);
  EXPECT_EQ(std::vector<VertexId>(n0.begin(), n0.end()),
            (std::vector<VertexId>{1, 2}));
  auto in0 = g.InNeighbors(0);
  EXPECT_EQ(std::vector<VertexId>(in0.begin(), in0.end()),
            (std::vector<VertexId>{3}));
}

TEST(GraphTest, DropsSelfLoopsAndDuplicates) {
  Graph g = Make({3, {{0, 0}, {0, 1}, {0, 1}, {1, 2}, {1, 2}, {2, 2}}});
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_EQ(g.OutDegree(0), 1);
  EXPECT_EQ(g.OutDegree(2), 0);
}

TEST(GraphTest, RejectsOutOfRangeEndpoints) {
  EXPECT_FALSE(Graph::FromEdgeList({2, {{0, 2}}}).ok());
  EXPECT_FALSE(Graph::FromEdgeList({2, {{-1, 0}}}).ok());
  EXPECT_FALSE(Graph::FromEdgeList({-1, {}}).ok());
}

TEST(GraphTest, UndirectedClosureIsSymmetric) {
  Graph g = Make({5, {{0, 1}, {1, 2}, {3, 4}, {4, 0}}});
  EXPECT_FALSE(g.IsSymmetric());
  Graph u = g.Undirected();
  EXPECT_TRUE(u.IsSymmetric());
  EXPECT_EQ(u.num_edges(), 8);
  for (VertexId v = 0; v < u.num_vertices(); ++v) {
    EXPECT_EQ(u.OutDegree(v), u.InDegree(v));
  }
}

TEST(GraphTest, CloneIsDeepAndEqual) {
  Graph g = Make({10, ErdosRenyi(10, 30, 1).edges});
  Graph c = g.Clone();
  EXPECT_EQ(c.num_vertices(), g.num_vertices());
  EXPECT_EQ(c.ToEdges(), g.ToEdges());
}

TEST(GraphTest, MaxDegrees) {
  // Star: center 0 has in+out degree 2*(n-1).
  Graph g = Make(Star(11));
  EXPECT_EQ(g.MaxTotalDegree(), 20);
  EXPECT_EQ(g.MaxOutDegree(), 10);
}

TEST(GraphTest, ToEdgesRoundTrip) {
  EdgeList el = ErdosRenyi(50, 200, 3);
  Graph g = Make(el);
  EdgeList rt{50, g.ToEdges()};
  Graph g2 = Make(rt);
  EXPECT_EQ(g.ToEdges(), g2.ToEdges());
}

TEST(GraphStatsTest, CountsMatchDefinition) {
  Graph g = Make({4, {{0, 1}, {1, 0}, {1, 2}, {2, 3}}});
  GraphStats stats = ComputeGraphStats(g, /*compute_undirected=*/true);
  EXPECT_EQ(stats.num_vertices, 4);
  EXPECT_EQ(stats.num_directed_edges, 4);
  // Undirected edges: {0,1}, {1,2}, {2,3} = 3.
  EXPECT_EQ(stats.num_undirected_edges, 3);
  EXPECT_EQ(stats.max_degree, 3);  // v1: out {0,2}, in {0}
}

TEST(HumanCountTest, Formats) {
  EXPECT_EQ(HumanCount(999), "999");
  EXPECT_EQ(HumanCount(3000000), "3.0M");
  EXPECT_EQ(HumanCount(1460000000), "1.46B");
  EXPECT_EQ(HumanCount(33000), "33.0K");
}

// --- generators -------------------------------------------------------

TEST(GeneratorsTest, RingStructure) {
  Graph g = Make(Ring(10));
  EXPECT_EQ(g.num_edges(), 10);
  for (VertexId v = 0; v < 10; ++v) {
    EXPECT_EQ(g.OutDegree(v), 1);
    EXPECT_EQ(g.OutNeighbors(v)[0], (v + 1) % 10);
  }
}

TEST(GeneratorsTest, GridStructure) {
  Graph g = Make(Grid(3, 4));
  EXPECT_EQ(g.num_vertices(), 12);
  EXPECT_TRUE(g.IsSymmetric());
  // Corner vertex 0 has degree 2; interior vertex (1,1)=5 has degree 4.
  EXPECT_EQ(g.OutDegree(0), 2);
  EXPECT_EQ(g.OutDegree(5), 4);
}

TEST(GeneratorsTest, CompleteHasAllPairs) {
  Graph g = Make(Complete(6));
  EXPECT_EQ(g.num_edges(), 30);
  EXPECT_TRUE(g.IsSymmetric());
}

TEST(GeneratorsTest, PathIsChain) {
  Graph g = Make(Path(5));
  EXPECT_EQ(g.num_edges(), 4);
  EXPECT_EQ(g.OutDegree(4), 0);
}

TEST(GeneratorsTest, ErdosRenyiDeterministicBySeed) {
  EdgeList a = ErdosRenyi(100, 500, 42);
  EdgeList b = ErdosRenyi(100, 500, 42);
  EdgeList c = ErdosRenyi(100, 500, 43);
  EXPECT_EQ(a.edges, b.edges);
  EXPECT_NE(a.edges, c.edges);
}

TEST(GeneratorsTest, PowerLawHasSkewedDegrees) {
  Graph g = Make(PowerLawChungLu(2000, 10.0, 2.2, 7));
  // Max degree should be far above the mean for a power-law graph.
  EXPECT_GT(g.MaxTotalDegree(), 10 * 10);
  EXPECT_GT(g.num_edges(), 2000 * 5);
}

TEST(GeneratorsTest, RMatSizes) {
  EdgeList el = RMat(/*scale=*/8, /*edge_factor=*/8, /*seed=*/5);
  EXPECT_EQ(el.num_vertices, 256);
  EXPECT_EQ(static_cast<int64_t>(el.edges.size()), 2048);
}

TEST(GeneratorsTest, PaperExampleIsTheFourCycle) {
  Graph g = Make(PaperExampleGraph());
  EXPECT_EQ(g.num_vertices(), 4);
  EXPECT_EQ(g.num_edges(), 8);
  EXPECT_TRUE(g.IsSymmetric());
  for (VertexId v = 0; v < 4; ++v) EXPECT_EQ(g.OutDegree(v), 2);
  // v0 adjacent to v1 and v2, not v3.
  auto n = g.OutNeighbors(0);
  EXPECT_EQ(std::vector<VertexId>(n.begin(), n.end()),
            (std::vector<VertexId>{1, 2}));
}

}  // namespace
}  // namespace serigraph
