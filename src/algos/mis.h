#ifndef SERIGRAPH_ALGOS_MIS_H_
#define SERIGRAPH_ALGOS_MIS_H_

#include <span>

#include "graph/graph.h"
#include "graph/types.h"

namespace serigraph {

/// Maximal independent set by sequential-greedy rule, an additional
/// algorithm in the class the paper targets: correct only under
/// serializability. A vertex joins the set iff no already-decided
/// neighbor is in the set; under 1SR this is exactly the serial greedy
/// MIS, so the result is independent AND maximal. Under plain BSP/AP,
/// neighbors can decide concurrently and both join, breaking
/// independence. Requires an undirected (symmetric) graph.
struct MaximalIndependentSet {
  /// 0 = undecided, 1 = in the set, 2 = out of the set.
  using VertexValue = int64_t;
  using Message = int64_t;  // sender's decision (1 or 2)

  static constexpr int64_t kUndecided = 0;
  static constexpr int64_t kIn = 1;
  static constexpr int64_t kOut = 2;

  VertexValue InitialValue(VertexId, const Graph&) const { return kUndecided; }

  template <typename Ctx>
  void Compute(Ctx& ctx, std::span<const Message> messages) const {
    if (ctx.superstep() == 0) return;  // stay active; decide next superstep
    if (ctx.value() == kUndecided) {
      bool neighbor_in = false;
      for (Message m : messages) neighbor_in |= (m == kIn);
      const int64_t decision = neighbor_in ? kOut : kIn;
      ctx.set_value(decision);
      ctx.SendToAllOutNeighbors(decision);
    }
    ctx.VoteToHalt();
  }
};

/// True if `state` (values of MaximalIndependentSet) is an independent
/// set: no two adjacent vertices are kIn and nothing is undecided.
bool IsIndependentSet(const Graph& graph, std::span<const int64_t> state);

/// True if the set is also maximal: every kOut vertex has a kIn neighbor.
bool IsMaximalIndependentSet(const Graph& graph,
                             std::span<const int64_t> state);

}  // namespace serigraph

#endif  // SERIGRAPH_ALGOS_MIS_H_
