#ifndef SERIGRAPH_GRAPH_STATS_H_
#define SERIGRAPH_GRAPH_STATS_H_

#include <string>

#include "graph/graph.h"

namespace serigraph {

/// Summary statistics for a graph, the columns of the paper's Table 1.
struct GraphStats {
  VertexId num_vertices = 0;
  int64_t num_directed_edges = 0;
  /// Directed edge count of the undirected closure (the parenthesised
  /// numbers in Table 1 count each undirected edge once; we report both).
  int64_t num_undirected_edges = 0;
  /// Max (in+out) degree in the directed graph.
  int64_t max_degree = 0;
  double avg_out_degree = 0.0;
};

/// Computes statistics. If `compute_undirected` is false the undirected
/// closure is skipped (it can be expensive) and num_undirected_edges is 0.
GraphStats ComputeGraphStats(const Graph& graph,
                             bool compute_undirected = true);

/// Human-readable scaling of counts, e.g. 3.0M, 1.46B (Table 1 style).
std::string HumanCount(int64_t value);

}  // namespace serigraph

#endif  // SERIGRAPH_GRAPH_STATS_H_
