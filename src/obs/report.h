#ifndef SERIGRAPH_OBS_REPORT_H_
#define SERIGRAPH_OBS_REPORT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/introspect.h"
#include "obs/memprof.h"
#include "obs/timeline.h"

namespace serigraph {

/// Minimal streaming JSON writer (objects, arrays, scalar values) used
/// for machine-readable run reports and other tool output. Produces
/// compact (non-pretty) JSON; keys and string values are escaped.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  /// Starts a key inside an object; follow with a value or Begin*().
  JsonWriter& Key(const std::string& key);
  JsonWriter& Value(int64_t value);
  JsonWriter& Value(int value) { return Value(static_cast<int64_t>(value)); }
  JsonWriter& Value(double value);
  JsonWriter& Value(bool value);
  JsonWriter& Value(const std::string& value);
  /// Without this overload a string literal would take the pointer->bool
  /// standard conversion and serialize as `true`.
  JsonWriter& Value(const char* value) { return Value(std::string(value)); }
  /// Splices pre-serialized JSON (e.g. WaitForEdgesJson output) in value
  /// position; the caller guarantees it is well-formed.
  JsonWriter& Raw(const std::string& json);

  const std::string& str() const { return out_; }

 private:
  void MaybeComma();

  std::string out_;
  /// Whether a comma is needed before the next element, per nesting level.
  std::vector<bool> needs_comma_{false};
  bool after_key_ = false;
};

/// The machine-readable summary of one engine run, mirroring
/// RunStats plus the per-superstep timeline (serigraph_cli
/// --metrics-json writes exactly this).
struct RunReport {
  int supersteps = 0;
  bool converged = false;
  double computation_seconds = 0.0;
  std::map<std::string, int64_t> metrics;
  std::vector<SuperstepSample> timeline;
  /// Introspection digest (empty when the run had introspection off).
  std::string resource_kind;
  std::vector<ContentionEntry> contention;
  std::vector<EdgeContentionEntry> contention_edges;
  int64_t introspect_snapshots = 0;
  int64_t introspect_stalls = 0;
  int64_t introspect_deadlocks = 0;
  std::vector<std::string> introspect_incidents;
  /// Recovery digest (empty when the run had no fault plan armed and
  /// in-engine recovery off).
  int recovery_attempts = 0;
  std::vector<std::string> recovery_events;

  /// Performance-counter digest (populated only when the run had
  /// EngineOptions::perf_counters set; see docs/PROFILING.md). Keys in
  /// `perf_phases` are "<phase>.<field>" ("compute.cycles",
  /// "barrier.task_clock_ns", ...); hardware fields are absent-as-zero
  /// under the software fallback, with `perf_fallback` explaining why.
  bool perf_enabled = false;
  bool perf_hw_counters = false;
  std::string perf_fallback;
  std::map<std::string, int64_t> perf_phases;
  /// Memory digest (same gating): process peak RSS plus the
  /// per-superstep RSS/arena samples taken in the serial section.
  int64_t peak_rss_kb = 0;
  std::vector<MemSample> mem_samples;
};

/// Serializes `report` as a JSON object:
///   {"supersteps":N,"converged":true,"computation_seconds":S,
///    "metrics":{"name":value,...},
///    "timeline":[{"superstep":0,"worker":0,"compute_us":...,...},...],
///    "introspection":{...},            // only when the run recorded any
///    "fault":{...},                    // only for fault/recovery runs
///    "perf":{...},"memory":{...}}      // only for perf_counters runs
std::string RunReportToJson(const RunReport& report);

/// Renders `metrics` in the Prometheus text exposition format with
/// `# TYPE` hints. Metric names are sanitized (dots and other invalid
/// characters become underscores) and prefixed `serigraph_`. Histogram
/// families (a base name carrying all of .p50/.p95/.max/.count/.sum, the
/// MetricRegistry::Snapshot flattening) render as a `summary` with
/// quantile labels plus `_count`/`_sum` and a `_max` gauge; names in the
/// builtin gauge set (docs/METRICS.md "Type" column) render as `gauge`;
/// everything else is a `counter`.
std::string MetricsToPrometheusText(
    const std::map<std::string, int64_t>& metrics);

/// `# HELP` text for a metric's registry base name (e.g.
/// "engine.barrier_wait_us"), sourced from the docs/METRICS.md table at
/// build time (scripts/gen_metrics_help.py). Empty string when the name
/// is undocumented or the build had no Python to run the generator.
const char* MetricHelpFor(const std::string& name);

/// Marks a synthetic series name served on /metrics without a
/// MetricRegistry entry. Expands to the name itself; it exists so
/// scripts/lint_protocol.py can cross-check these literals against
/// docs/METRICS.md exactly like Get{Counter,Gauge,Histogram} literals —
/// every name served must be documented.
#define SG_OBS_SERVED_METRIC(name) (name)

/// The full `/metrics` exposition: MetricsToPrometheusText(metrics)
/// plus the synthetic `serigraph_build_info` gauge (commit/build-type/
/// sanitizer labels from GetBuildInfo()) and `process_uptime_seconds`.
/// `extra` appends additional synthetic counter series by registry-style
/// name (sanitized and prefixed like everything else); callers must use
/// documented names.
std::string MetricsToPrometheusExposition(
    const std::map<std::string, int64_t>& metrics,
    const std::map<std::string, int64_t>& extra = {});

/// Writes `content` to `path` (overwrite).
Status WriteTextFile(const std::string& path, const std::string& content);

}  // namespace serigraph

#endif  // SERIGRAPH_OBS_REPORT_H_
