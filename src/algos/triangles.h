#ifndef SERIGRAPH_ALGOS_TRIANGLES_H_
#define SERIGRAPH_ALGOS_TRIANGLES_H_

#include <algorithm>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"
#include "pregel/message_codec.h"

namespace serigraph {

/// Variable-length message carrying a sorted list of vertex ids; shows
/// how programs extend the wire format via MessageCodec specialization.
struct NeighborList {
  std::vector<VertexId> ids;
};

template <>
struct MessageCodec<NeighborList> {
  static void Encode(BufferWriter& writer, const NeighborList& message) {
    writer.WriteVarint(message.ids.size());
    for (VertexId id : message.ids) {
      writer.WriteVarint(static_cast<uint64_t>(id));
    }
  }
  static bool Decode(BufferReader& reader, NeighborList* message) {
    uint64_t count;
    if (!reader.ReadVarint(&count)) return false;
    message->ids.clear();
    message->ids.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
      uint64_t id;
      if (!reader.ReadVarint(&id)) return false;
      message->ids.push_back(static_cast<VertexId>(id));
    }
    return true;
  }
};

/// Per-vertex triangle counting on an undirected graph: in its first
/// round each vertex v sends its higher-id neighbor list {w in N(v) :
/// w > v} to every neighbor u with v < u; in the second round u counts
/// the ids w > u that are also its neighbors, attributing each triangle
/// v < u < w exactly once (to u). The total triangle count is the sum of
/// vertex values.
///
/// Triangle counting does not need serializability; it is here to
/// exercise the API breadth: multi-phase logic, fan-out of large
/// variable-length messages, and aggregator use.
struct TriangleCount {
  /// -1 encodes "adjacency not broadcast yet"; counting starts at 0
  /// after the first execution. Keying on first execution instead of
  /// superstep 0 keeps the program correct under the AP model (where a
  /// neighbor's list can already arrive in superstep 0) and under token
  /// passing (where a vertex may first run in a later superstep).
  using VertexValue = int64_t;
  using Message = NeighborList;

  VertexValue InitialValue(VertexId, const Graph&) const { return -1; }

  template <typename Ctx>
  void Compute(Ctx& ctx, std::span<const Message> messages) const {
    int64_t triangles = ctx.value();
    if (triangles < 0) {
      triangles = 0;
      NeighborList higher;
      for (VertexId w : ctx.out_neighbors()) {
        if (w > ctx.id()) higher.ids.push_back(w);
      }
      for (VertexId u : higher.ids) ctx.SendTo(u, higher);
    }
    auto my_neighbors = ctx.out_neighbors();
    for (const Message& m : messages) {
      for (VertexId w : m.ids) {
        if (w <= ctx.id()) continue;
        if (std::binary_search(my_neighbors.begin(), my_neighbors.end(),
                               w)) {
          ++triangles;
        }
      }
    }
    ctx.set_value(triangles);
    ctx.VoteToHalt();
  }
};

/// Brute-force reference count of triangles in an undirected graph.
int64_t ReferenceTriangleCount(const Graph& graph);

}  // namespace serigraph

#endif  // SERIGRAPH_ALGOS_TRIANGLES_H_
