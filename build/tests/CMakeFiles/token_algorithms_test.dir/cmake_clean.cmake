file(REMOVE_RECURSE
  "CMakeFiles/token_algorithms_test.dir/token_algorithms_test.cc.o"
  "CMakeFiles/token_algorithms_test.dir/token_algorithms_test.cc.o.d"
  "token_algorithms_test"
  "token_algorithms_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/token_algorithms_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
