file(REMOVE_RECURSE
  "CMakeFiles/fig6c_sssp.dir/fig6c_sssp.cc.o"
  "CMakeFiles/fig6c_sssp.dir/fig6c_sssp.cc.o.d"
  "fig6c_sssp"
  "fig6c_sssp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6c_sssp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
