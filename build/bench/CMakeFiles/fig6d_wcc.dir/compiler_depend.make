# Empty compiler generated dependencies file for fig6d_wcc.
# This may be replaced when dependencies are built.
