file(REMOVE_RECURSE
  "CMakeFiles/prop1_bsp_locking.dir/prop1_bsp_locking.cc.o"
  "CMakeFiles/prop1_bsp_locking.dir/prop1_bsp_locking.cc.o.d"
  "prop1_bsp_locking"
  "prop1_bsp_locking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prop1_bsp_locking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
