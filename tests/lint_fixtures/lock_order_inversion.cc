// Lint fixture: nested acquisition inverting a declared edge. The
// hierarchy in docs/LOCK_ORDER.md declares
//   obs.tracer.registry -> obs.tracer.buffer
// so taking the registry lock while holding a buffer lock is an
// inversion. Expected diagnostic: [lock-order] at the inner MutexLock.
#include "common/mutex.h"

namespace lint_fixture {

struct Buffer {
  sy::Mutex mu;
  int events = 0;
};

class Exporter {
 public:
  void Flush(Buffer* buffer) {
    sy::MutexLock lock(&buffer->mu);
    {
      sy::MutexLock registry_lock(&registry_mu_);  // planted inversion
      ++generation_;
    }
    ++buffer->events;
  }

 private:
  sy::Mutex registry_mu_;
  int generation_ = 0;
};

}  // namespace lint_fixture
