// Degree-skew ablation: the paper's datasets are all power-law graphs
// with huge maximum degrees (Table 1). Hub vertices are philosophers
// with thousands of forks under vertex-based locking; partition-based
// locking's fork count depends only on the partition graph. We sweep
// the power-law exponent at constant |V| and target degree and report
// the measured gap.

#include <iostream>

#include "algos/coloring.h"
#include "graph/generators.h"
#include "graph/stats.h"
#include "harness/runner.h"
#include "harness/table.h"

using namespace serigraph;

int main() {
  PrintHeader(std::cout,
              "Degree-skew ablation (coloring, |V|=3000, target degree 8, "
              "8 workers)");

  TablePrinter table({"gamma", "max degree", "partition-DL", "vertex-DL",
                      "vertex ctrl msgs", "vertex/partition",
                      "density/superstep"});
  for (double gamma : {3.5, 2.6, 2.2, 2.0}) {
    auto graph_or =
        Graph::FromEdgeList(PowerLawChungLu(3000, 8.0, gamma, 77));
    SG_CHECK_OK(graph_or.status());
    Graph graph = graph_or->Undirected();

    double times[2] = {0, 0};
    int64_t vertex_ctrl = 0;
    std::string density_series;
    int i = 0;
    for (SyncMode sync :
         {SyncMode::kPartitionLocking, SyncMode::kVertexLocking}) {
      RunConfig config;
      config.sync_mode = sync;
      config.num_workers = 8;
      config.network = BenchNetwork();
      std::vector<int64_t> colors;
      RunStats stats = RunProgram(graph, GreedyColoring(), config, &colors);
      SG_CHECK(IsProperColoring(graph, colors));
      times[i++] = stats.computation_seconds;
      if (sync == SyncMode::kVertexLocking) {
        vertex_ctrl = stats.Metric("net.control_messages");
        // Frontier density per superstep (eligible vertices per 1000,
        // one value per barrier — every worker row repeats it, so take
        // worker 0's). Skew shows up here as a long sparse tail: hubs
        // keep re-activating their neighborhoods.
        for (const SuperstepSample& s : stats.timeline) {
          if (s.worker != 0) continue;
          if (!density_series.empty()) density_series += " ";
          density_series += std::to_string(s.frontier_density_milli);
        }
      }
    }
    char g[16];
    std::snprintf(g, sizeof(g), "%.1f", gamma);
    table.AddRow({g, HumanCount(graph.MaxTotalDegree() / 2),
                  TablePrinter::Seconds(times[0]),
                  TablePrinter::Seconds(times[1]),
                  TablePrinter::Count(vertex_ctrl),
                  TablePrinter::Ratio(times[1] / times[0]),
                  density_series});
  }
  table.Print(std::cout);
  std::cout << "\nSmaller gamma = heavier tail = larger hubs. Measured: "
               "the vertex-DL penalty is\n6-8x across the whole sweep and "
               "tracks total fork-message volume (ctrl msgs)\nrather than "
               "hub size per se — heavy tails concentrate edges, so at "
               "fixed target\ndegree the deduplicated edge count (and "
               "with it vertex-DL's traffic) shrinks\nslightly. The "
               "decisive variable is O(|E|) messages, exactly the paper's "
               "claim.\n";
  return 0;
}
