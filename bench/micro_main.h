#ifndef SERIGRAPH_BENCH_MICRO_MAIN_H_
#define SERIGRAPH_BENCH_MICRO_MAIN_H_

// Shared main() for the Google Benchmark micro benches. Identical to the
// stock benchmark_main except that it accepts the repo's `--json=FILE`
// shorthand (expanded by ExpandJsonFlag in fig6_common.h) so every bench
// writes machine-readable snapshots the same way:
//
//   build/bench/micro_message_store --json=results/BENCH_pr4.json
//
// Include this header exactly once, at the end of a bench's .cc file.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "fig6_common.h"

int main(int argc, char** argv) {
  std::vector<std::string> storage;
  std::vector<char*> args = serigraph::ExpandJsonFlag(argc, argv, &storage);
  int ac = static_cast<int>(args.size()) - 1;  // exclude trailing nullptr
  benchmark::Initialize(&ac, args.data());
  if (benchmark::ReportUnrecognizedArguments(ac, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

#endif  // SERIGRAPH_BENCH_MICRO_MAIN_H_
