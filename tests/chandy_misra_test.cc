// Unit and stress tests for the hygienic dining philosophers coordinator.
// Multi-worker setups route control messages through a real Transport
// with per-worker pump threads, exactly like the engine's comm threads.

#include "sync/chandy_misra.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/rng.h"
#include "net/transport.h"

namespace serigraph {
namespace {

/// Test fixture wiring a ChandyMisraTable to a Transport with one pump
/// thread per worker.
class ChandyMisraFixture {
 public:
  ChandyMisraFixture(std::vector<std::vector<int64_t>> adjacency,
                     std::vector<WorkerId> owner, int num_workers)
      : owner_(std::move(owner)),
        transport_(num_workers, NetworkOptions{}, &metrics_) {
    ChandyMisraTable::Config config;
    config.count = static_cast<int64_t>(adjacency.size());
    config.adjacency = std::move(adjacency);
    config.worker_of = [this](int64_t p) { return owner_[p]; };
    config.num_workers = num_workers;
    config.request_tag = 1;
    config.transfer_tag = 2;
    config.metrics = &metrics_;
    table_ = std::make_unique<ChandyMisraTable>(std::move(config));

    for (WorkerId w = 0; w < num_workers; ++w) {
      handles_.push_back(std::make_unique<Handle>(this, w));
      table_->BindWorker(w, handles_.back().get());
    }
    for (WorkerId w = 0; w < num_workers; ++w) {
      pumps_.emplace_back([this, w] {
        while (auto msg = transport_.Receive(w)) {
          table_->HandleControl(w, *msg);
        }
      });
    }
  }

  ~ChandyMisraFixture() {
    transport_.Shutdown();
    for (auto& t : pumps_) t.join();
  }

  ChandyMisraTable& table() { return *table_; }
  int64_t flushes() const { return flushes_.load(); }

 private:
  class Handle final : public WorkerHandle {
   public:
    Handle(ChandyMisraFixture* fixture, WorkerId id)
        : fixture_(fixture), id_(id) {}
    void FlushRemoteTo(WorkerId) override { fixture_->flushes_.fetch_add(1); }
    void FlushAllRemote() override {}
    void SendControl(WorkerId dst, uint32_t tag, int64_t a, int64_t b,
                     int64_t c) override {
      WireMessage msg;
      msg.src = id_;
      msg.dst = dst;
      msg.kind = MessageKind::kControl;
      msg.tag = tag;
      msg.a = a;
      msg.b = b;
      msg.c = c;
      fixture_->transport_.Send(std::move(msg));
    }
    WorkerId worker_id() const override { return id_; }

   private:
    ChandyMisraFixture* fixture_;
    WorkerId id_;
  };

  std::vector<WorkerId> owner_;
  MetricRegistry metrics_;
  Transport transport_;
  std::unique_ptr<ChandyMisraTable> table_;
  std::vector<std::unique_ptr<Handle>> handles_;
  std::vector<std::thread> pumps_;
  std::atomic<int64_t> flushes_{0};
};

std::vector<std::vector<int64_t>> RingAdj(int64_t n) {
  std::vector<std::vector<int64_t>> adj(n);
  for (int64_t i = 0; i < n; ++i) adj[i] = {(i + n - 1) % n, (i + 1) % n};
  return adj;
}

std::vector<std::vector<int64_t>> CliqueAdj(int64_t n) {
  std::vector<std::vector<int64_t>> adj(n);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      if (i != j) adj[i].push_back(j);
    }
  }
  return adj;
}

TEST(ChandyMisraTest, CountsOneForkPerEdge) {
  ChandyMisraFixture f(RingAdj(10), std::vector<WorkerId>(10, 0), 1);
  EXPECT_EQ(f.table().num_forks(), 10);
  ChandyMisraFixture c(CliqueAdj(6), std::vector<WorkerId>(6, 0), 1);
  EXPECT_EQ(c.table().num_forks(), 15);
}

TEST(ChandyMisraTest, LonePhilosopherEatsImmediately) {
  ChandyMisraFixture f({{}}, {0}, 1);
  f.table().Acquire(0);
  f.table().Release(0);
  f.table().Acquire(0);
  f.table().Release(0);
}

TEST(ChandyMisraTest, SequentialAcquireReleaseAllPhilosophers) {
  ChandyMisraFixture f(CliqueAdj(8), std::vector<WorkerId>(8, 0), 1);
  for (int round = 0; round < 5; ++round) {
    for (int64_t p = 0; p < 8; ++p) {
      f.table().Acquire(p);
      f.table().Release(p);
    }
  }
}

/// Core safety property: no two neighboring philosophers eat at once.
/// Every philosopher eats `rounds` times (liveness: the loop finishes).
void StressMutualExclusion(std::vector<std::vector<int64_t>> adjacency,
                           std::vector<WorkerId> owner, int num_workers,
                           int num_threads, int rounds) {
  const int64_t n = static_cast<int64_t>(adjacency.size());
  auto adjacency_copy = adjacency;
  ChandyMisraFixture f(std::move(adjacency), std::move(owner), num_workers);
  std::vector<std::atomic<int>> eating(n);
  for (auto& e : eating) e.store(0);
  std::atomic<bool> violation{false};

  std::vector<std::thread> threads;
  for (int t = 0; t < num_threads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(t * 7919 + 13);
      for (int r = 0; r < rounds; ++r) {
        // Threads partition the philosophers statically so one
        // philosopher is never acquired by two threads at once.
        for (int64_t p = t; p < n; p += num_threads) {
          f.table().Acquire(p);
          eating[p].store(1, std::memory_order_seq_cst);
          for (int64_t q : adjacency_copy[p]) {
            if (eating[q].load(std::memory_order_seq_cst)) {
              violation.store(true);
            }
          }
          if (rng.Uniform(4) == 0) {
            std::this_thread::yield();
          }
          eating[p].store(0, std::memory_order_seq_cst);
          f.table().Release(p);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(violation.load()) << "neighbors ate concurrently";
}

TEST(ChandyMisraTest, StressRingSingleWorker) {
  StressMutualExclusion(RingAdj(32), std::vector<WorkerId>(32, 0), 1,
                        /*num_threads=*/4, /*rounds=*/50);
}

TEST(ChandyMisraTest, StressCliqueSingleWorker) {
  StressMutualExclusion(CliqueAdj(10), std::vector<WorkerId>(10, 0), 1,
                        /*num_threads=*/5, /*rounds=*/30);
}

TEST(ChandyMisraTest, StressRingAcrossWorkers) {
  std::vector<WorkerId> owner(32);
  for (size_t i = 0; i < owner.size(); ++i) {
    owner[i] = static_cast<WorkerId>(i % 4);
  }
  StressMutualExclusion(RingAdj(32), owner, /*num_workers=*/4,
                        /*num_threads=*/4, /*rounds=*/50);
}

TEST(ChandyMisraTest, StressCliqueAcrossWorkers) {
  std::vector<WorkerId> owner(12);
  for (size_t i = 0; i < owner.size(); ++i) {
    owner[i] = static_cast<WorkerId>(i % 3);
  }
  StressMutualExclusion(CliqueAdj(12), owner, /*num_workers=*/3,
                        /*num_threads=*/4, /*rounds=*/30);
}

TEST(ChandyMisraTest, CrossWorkerTransfersTriggerFlush) {
  // Two philosophers on different workers sharing one fork: the fork
  // must cross workers and each crossing must flush first (C1).
  std::vector<WorkerId> owner = {0, 1};
  ChandyMisraFixture f({{1}, {0}}, owner, 2);
  for (int i = 0; i < 10; ++i) {
    f.table().Acquire(0);
    f.table().Release(0);
    f.table().Acquire(1);
    f.table().Release(1);
  }
  EXPECT_GT(f.flushes(), 0);
}

TEST(ChandyMisraTest, FairnessUnderContention) {
  // Two neighbors hammering the same fork: both must make progress
  // (the hungry-yields-dirty-fork rule prevents starvation).
  ChandyMisraFixture f({{1}, {0}}, {0, 0}, 1);
  std::atomic<int> meals[2] = {{0}, {0}};
  std::vector<std::thread> threads;
  for (int64_t p = 0; p < 2; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < 200; ++i) {
        f.table().Acquire(p);
        meals[p].fetch_add(1);
        f.table().Release(p);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(meals[0].load(), 200);
  EXPECT_EQ(meals[1].load(), 200);
}

TEST(ChandyMisraTest, StressRandomTopologiesAcrossWorkers) {
  // Random philosopher graphs with random worker placement: the same
  // mutual-exclusion + liveness property must hold on arbitrary
  // adjacency, not just rings and cliques.
  for (uint64_t seed : {1u, 2u, 3u}) {
    Rng rng(seed);
    const int64_t n = 16 + static_cast<int64_t>(rng.Uniform(16));
    std::vector<std::vector<int64_t>> adj(n);
    for (int64_t a = 0; a < n; ++a) {
      for (int64_t b = a + 1; b < n; ++b) {
        if (rng.Bernoulli(0.2)) {
          adj[a].push_back(b);
          adj[b].push_back(a);
        }
      }
    }
    const int num_workers = 2 + static_cast<int>(rng.Uniform(3));
    std::vector<WorkerId> owner(n);
    for (int64_t p = 0; p < n; ++p) {
      owner[p] = static_cast<WorkerId>(rng.Uniform(num_workers));
    }
    StressMutualExclusion(adj, owner, num_workers, /*num_threads=*/4,
                          /*rounds=*/20);
  }
}

}  // namespace
}  // namespace serigraph
