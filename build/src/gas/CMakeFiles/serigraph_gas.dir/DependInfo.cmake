
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gas/gas_engine.cc" "src/gas/CMakeFiles/serigraph_gas.dir/gas_engine.cc.o" "gcc" "src/gas/CMakeFiles/serigraph_gas.dir/gas_engine.cc.o.d"
  "/root/repo/src/gas/vertex_cut.cc" "src/gas/CMakeFiles/serigraph_gas.dir/vertex_cut.cc.o" "gcc" "src/gas/CMakeFiles/serigraph_gas.dir/vertex_cut.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/serigraph_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/serigraph_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/algos/CMakeFiles/serigraph_algos.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
