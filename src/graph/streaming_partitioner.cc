#include "graph/streaming_partitioner.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"

namespace serigraph {

Partitioning StreamingGreedyPartition(const Graph& graph,
                                      const StreamingPartitionOptions& opts) {
  SG_CHECK_GT(opts.num_workers, 0);
  const int ppw = opts.partitions_per_worker > 0 ? opts.partitions_per_worker
                                                 : opts.num_workers;
  const int num_partitions = opts.num_workers * ppw;
  const VertexId n = graph.num_vertices();
  const double capacity =
      std::max(1.0, opts.balance_slack * static_cast<double>(n) /
                        static_cast<double>(num_partitions));

  // Streaming order: natural or a seeded permutation.
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), 0);
  if (opts.seed != 0) {
    Rng rng(opts.seed);
    for (VertexId i = n - 1; i > 0; --i) {
      std::swap(order[i], order[rng.Uniform(static_cast<uint64_t>(i) + 1)]);
    }
  }

  std::vector<PartitionId> assignment(n, kInvalidPartition);
  std::vector<int64_t> fill(num_partitions, 0);
  std::vector<int64_t> neighbor_count(num_partitions, 0);
  std::vector<PartitionId> touched;

  for (VertexId v : order) {
    touched.clear();
    auto tally = [&](std::span<const VertexId> nbrs) {
      for (VertexId u : nbrs) {
        const PartitionId p = assignment[u];
        if (p == kInvalidPartition) continue;
        if (neighbor_count[p] == 0) touched.push_back(p);
        ++neighbor_count[p];
      }
    };
    tally(graph.OutNeighbors(v));
    tally(graph.InNeighbors(v));

    // LDG score: |neighbors in p| * (1 - fill/capacity); ties and the
    // no-placed-neighbors case fall back to the emptiest partition.
    PartitionId best = kInvalidPartition;
    double best_score = -1.0;
    for (PartitionId p : touched) {
      if (static_cast<double>(fill[p]) >= capacity) continue;
      const double score =
          static_cast<double>(neighbor_count[p]) *
          (1.0 - static_cast<double>(fill[p]) / capacity);
      if (score > best_score) {
        best_score = score;
        best = p;
      }
    }
    if (best == kInvalidPartition || best_score <= 0.0) {
      // No usable neighbor partition: emptiest partition overall.
      best = 0;
      for (PartitionId p = 1; p < num_partitions; ++p) {
        if (fill[p] < fill[best]) best = p;
      }
    }
    assignment[v] = best;
    ++fill[best];
    for (PartitionId p : touched) neighbor_count[p] = 0;
  }

  std::vector<WorkerId> partition_to_worker(num_partitions);
  for (int p = 0; p < num_partitions; ++p) {
    partition_to_worker[p] = static_cast<WorkerId>(p % opts.num_workers);
  }
  auto partitioning = Partitioning::FromAssignment(std::move(assignment),
                                                   std::move(partition_to_worker));
  SG_CHECK_OK(partitioning.status());
  return std::move(partitioning).value();
}

int64_t CountCutEdges(const Graph& graph, const Partitioning& partitioning) {
  int64_t cut = 0;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    const PartitionId pv = partitioning.PartitionOf(v);
    for (VertexId u : graph.OutNeighbors(v)) {
      cut += partitioning.PartitionOf(u) != pv;
    }
  }
  return cut;
}

}  // namespace serigraph
