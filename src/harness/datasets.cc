#include "harness/datasets.h"

#include <cstdlib>

#include "common/logging.h"
#include "graph/generators.h"

namespace serigraph {

namespace {

double ScaleFactor() {
  const char* env = std::getenv("SERIGRAPH_SCALE");
  if (env == nullptr) return 1.0;
  double scale = std::atof(env);
  return scale > 0 ? scale : 1.0;
}

}  // namespace

std::vector<DatasetSpec> StandInSpecs() {
  // Sizes keep Table 1's ordering OR < AR < TW < UK and its growing edge
  // counts; social graphs get a heavier tail (smaller gamma) than web
  // graphs, mirroring the originals' very large max degrees.
  return {
      {"OR'", "com-Orkut", 2000, 20.0, 2.2, 101},
      {"AR'", "arabic-2005", 4500, 22.0, 2.4, 102},
      {"TW'", "twitter-2010", 8000, 24.0, 2.1, 103},
      {"UK'", "uk-2007-05", 16000, 25.0, 2.4, 104},
  };
}

DatasetSpec FindSpec(const std::string& name) {
  for (const DatasetSpec& spec : StandInSpecs()) {
    if (spec.name == name || spec.paper_name == name) return spec;
  }
  SG_LOG(kFatal) << "unknown dataset " << name;
  return {};
}

Graph MakeDataset(const DatasetSpec& spec) {
  const VertexId n = static_cast<VertexId>(
      static_cast<double>(spec.num_vertices) * ScaleFactor());
  EdgeList el = PowerLawChungLu(std::max<VertexId>(n, 16), spec.avg_degree,
                                spec.gamma, spec.seed);
  auto graph = Graph::FromEdgeList(el);
  SG_CHECK_OK(graph.status());
  return std::move(graph).value();
}

Graph MakeUndirectedDataset(const DatasetSpec& spec) {
  return MakeDataset(spec).Undirected();
}

}  // namespace serigraph
