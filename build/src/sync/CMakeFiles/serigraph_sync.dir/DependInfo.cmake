
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sync/chandy_misra.cc" "src/sync/CMakeFiles/serigraph_sync.dir/chandy_misra.cc.o" "gcc" "src/sync/CMakeFiles/serigraph_sync.dir/chandy_misra.cc.o.d"
  "/root/repo/src/sync/distributed_locking.cc" "src/sync/CMakeFiles/serigraph_sync.dir/distributed_locking.cc.o" "gcc" "src/sync/CMakeFiles/serigraph_sync.dir/distributed_locking.cc.o.d"
  "/root/repo/src/sync/technique.cc" "src/sync/CMakeFiles/serigraph_sync.dir/technique.cc.o" "gcc" "src/sync/CMakeFiles/serigraph_sync.dir/technique.cc.o.d"
  "/root/repo/src/sync/token_passing.cc" "src/sync/CMakeFiles/serigraph_sync.dir/token_passing.cc.o" "gcc" "src/sync/CMakeFiles/serigraph_sync.dir/token_passing.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/serigraph_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/serigraph_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/serigraph_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
