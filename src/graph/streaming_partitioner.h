#ifndef SERIGRAPH_GRAPH_STREAMING_PARTITIONER_H_
#define SERIGRAPH_GRAPH_STREAMING_PARTITIONER_H_

#include <cstdint>

#include "graph/graph.h"
#include "graph/partitioning.h"

namespace serigraph {

/// Options for the streaming greedy partitioner.
struct StreamingPartitionOptions {
  int num_workers = 4;
  /// Partitions per worker; 0 means num_workers (the Giraph default the
  /// paper uses).
  int partitions_per_worker = 0;
  /// Capacity slack: a partition may hold at most
  /// slack * |V| / |P| vertices.
  double balance_slack = 1.05;
  /// Permutation seed for the streaming order (0 = natural order).
  uint64_t seed = 0;
};

/// Linear deterministic greedy (LDG) streaming partitioner (Stanton &
/// Kliot, KDD'12): vertices arrive in a stream and each is placed on the
/// partition holding most of its already-placed neighbors, weighted by a
/// linear penalty on the partition's fill level.
///
/// The paper notes (Section 7.1) that high-quality partitioners like
/// METIS are impractical for large graphs and therefore evaluates with
/// random hash partitioning. LDG is the standard lightweight middle
/// ground: one pass, near-balanced, and it cuts far fewer edges than
/// hashing — which directly reduces the number of partition forks and
/// boundary vertices the synchronization techniques pay for (see
/// bench/ablation_partitioner).
Partitioning StreamingGreedyPartition(const Graph& graph,
                                      const StreamingPartitionOptions& opts);

/// Number of directed edges whose endpoints live on different partitions.
int64_t CountCutEdges(const Graph& graph, const Partitioning& partitioning);

}  // namespace serigraph

#endif  // SERIGRAPH_GRAPH_STREAMING_PARTITIONER_H_
