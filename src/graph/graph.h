#ifndef SERIGRAPH_GRAPH_GRAPH_H_
#define SERIGRAPH_GRAPH_GRAPH_H_

#include <memory>
#include <span>
#include <vector>

#include "common/status.h"
#include "graph/types.h"

namespace serigraph {

/// Immutable directed graph in compressed-sparse-row form, indexed both by
/// out-edges (CSR) and in-edges (CSC). Undirected graphs are represented by
/// storing each edge in both directions (the convention the paper uses for
/// its undirected inputs, Table 1).
///
/// The in-edge index exists because a serializability transaction for
/// vertex u reads {u} ∪ in-neighbors(u) (paper Section 3.2), and because
/// boundary classification must consider both in- and out-neighbors.
class Graph {
 public:
  /// Builds a graph from an edge list. Self-loops are dropped (vertex
  /// programs never message themselves in the paper's model) and duplicate
  /// edges are collapsed. Fails if any endpoint is outside
  /// [0, edge_list.num_vertices).
  static StatusOr<Graph> FromEdgeList(const EdgeList& edge_list);

  /// Returns the undirected closure: every edge (u,v) also present as
  /// (v,u). Needed by graph coloring, which requires undirected input.
  Graph Undirected() const;

  Graph() = default;
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;
  // Copies are explicit via Clone(); graphs can be large.
  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;
  Graph Clone() const;

  VertexId num_vertices() const { return num_vertices_; }
  /// Number of directed edges stored (an undirected graph counts each
  /// edge twice, matching the parenthesised |E| column of Table 1).
  int64_t num_edges() const {
    return static_cast<int64_t>(out_targets_.size());
  }

  int64_t OutDegree(VertexId v) const {
    return out_offsets_[v + 1] - out_offsets_[v];
  }
  int64_t InDegree(VertexId v) const {
    return in_offsets_[v + 1] - in_offsets_[v];
  }

  std::span<const VertexId> OutNeighbors(VertexId v) const {
    return {out_targets_.data() + out_offsets_[v],
            out_targets_.data() + out_offsets_[v + 1]};
  }
  std::span<const VertexId> InNeighbors(VertexId v) const {
    return {in_sources_.data() + in_offsets_[v],
            in_sources_.data() + in_offsets_[v + 1]};
  }

  /// Maximum of (in+out) degree over all vertices; the "Max Degree"
  /// column of Table 1. For undirected graphs this is twice the
  /// conventional degree, so callers divide as appropriate.
  int64_t MaxTotalDegree() const;
  /// Maximum out-degree.
  int64_t MaxOutDegree() const;

  /// True if for every edge (u,v) the reverse edge (v,u) exists.
  bool IsSymmetric() const;

  /// All edges, in CSR order. Mostly for tests and serialization.
  std::vector<Edge> ToEdges() const;

 private:
  VertexId num_vertices_ = 0;
  std::vector<int64_t> out_offsets_{0};
  std::vector<VertexId> out_targets_;
  std::vector<int64_t> in_offsets_{0};
  std::vector<VertexId> in_sources_;
};

}  // namespace serigraph

#endif  // SERIGRAPH_GRAPH_GRAPH_H_
