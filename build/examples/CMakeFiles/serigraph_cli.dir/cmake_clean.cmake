file(REMOVE_RECURSE
  "CMakeFiles/serigraph_cli.dir/serigraph_cli.cpp.o"
  "CMakeFiles/serigraph_cli.dir/serigraph_cli.cpp.o.d"
  "serigraph_cli"
  "serigraph_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serigraph_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
