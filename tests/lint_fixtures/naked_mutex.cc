// Lint fixture: planted naked std::mutex outside src/common/mutex.h.
// Expected diagnostic: [naked-mutex] at the std::mutex member line.
#include <mutex>

namespace lint_fixture {

class BadCache {
 public:
  void Put(int v) {
    std::lock_guard<std::mutex> lock(mu_);
    value_ = v;
  }

 private:
  std::mutex mu_;  // planted violation: must be sy::Mutex
  int value_ = 0;
};

}  // namespace lint_fixture
