// Weakly connected components on a social-network-like graph with several
// planted communities (paper Section 7.2.4: WCC/HCC, used in structured
// learning). Demonstrates the halted-partition optimization: as
// components settle, partitions halt and stop acquiring forks.

#include <cstdio>
#include <map>

#include "algos/wcc.h"
#include "graph/generators.h"
#include "harness/runner.h"

using namespace serigraph;

int main() {
  // Three disconnected power-law communities of different sizes.
  EdgeList all;
  VertexId offset = 0;
  for (VertexId size : {3000, 1500, 500}) {
    EdgeList part = PowerLawChungLu(size, 8.0, 2.3, /*seed=*/size);
    for (Edge& e : part.edges) {
      all.edges.push_back({e.src + offset, e.dst + offset});
    }
    offset += size;
  }
  all.num_vertices = offset;
  auto graph_or = Graph::FromEdgeList(all);
  SG_CHECK_OK(graph_or.status());
  Graph graph = graph_or->Undirected();

  RunConfig config;
  config.sync_mode = SyncMode::kPartitionLocking;
  config.num_workers = 8;
  config.network = BenchNetwork();

  std::vector<int64_t> labels;
  RunStats stats = RunProgram(graph, Wcc(), config, &labels);

  // Components must match the sequential union-find oracle.
  const bool correct = labels == ReferenceWcc(graph);
  std::map<int64_t, int64_t> sizes;
  for (int64_t label : labels) ++sizes[label];

  std::printf("WCC with partition-based locking on %lld vertices: "
              "%zu components, %.1f ms, %d supersteps, %s\n",
              (long long)graph.num_vertices(), sizes.size(),
              stats.computation_seconds * 1e3, stats.supersteps,
              correct ? "matches union-find oracle" : "MISMATCH");
  for (const auto& [label, size] : sizes) {
    std::printf("  component rooted at v%-6lld size %lld\n",
                (long long)label, (long long)size);
  }
  std::printf("halted partitions skipped %lld fork acquisitions "
              "(Section 5.4 optimization)\n",
              (long long)stats.Metric("pregel.skipped_partitions"));
  return 0;
}
