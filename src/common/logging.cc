#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#include "common/mutex.h"

namespace serigraph {

namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

sy::Mutex& SinkMutex() {
  static sy::Mutex* m = new sy::Mutex;  // leaked: outlives static dtors
  return *m;
}

}  // namespace

void SetLogLevel(LogLevel level) {
  // mo: level gate; stale value is harmless
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  // mo: level gate; stale value is harmless
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  const bool emit =  // mo: level gate; stale value is harmless
      static_cast<int>(level_) >= g_min_level.load(std::memory_order_relaxed);
  if (emit || level_ == LogLevel::kFatal) {
    sy::MutexLock lock(&SinkMutex());
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
    std::fflush(stderr);
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal_logging
}  // namespace serigraph
