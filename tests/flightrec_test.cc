// Tests for the always-on flight recorder and the incident plane:
// ring overwrite semantics, lock-free concurrent record-vs-snapshot
// (the TSan guard for the relaxed-atomic slot design), span macros
// feeding the recorder with the Tracer off, health aggregation,
// telemetry-hub registry handoff, incident bundle contents and rate
// limiting, the watchdog-confirmed planted deadlock producing a bundle
// whose wait-for graph names the cycle, and the fatal-signal handler
// writing a bundle before the process dies (death test).

#include "obs/flightrec.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <sys/stat.h>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "obs/introspect.h"
#include "obs/trace.h"
#include "obs/watchdog.h"

namespace serigraph {
namespace {

std::string ReadFileOrEmpty(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) return "";
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

std::string FreshTempDir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "/flightrec_" + tag + "_" +
                          std::to_string(::getpid());
  // Recreate empty: best-effort, bundles use unique seq names anyway.
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

// Every test starts from a clean telemetry plane; the singletons are
// process-wide and leaked by design (fatal-signal dumps must survive
// static destruction).
struct TelemetryReset {
  TelemetryReset() { Reset(); }
  ~TelemetryReset() { Reset(); }
  static void Reset() {
    FlightRecorder::Enable();
    FlightRecorder::Get().ResetForTest();
    HealthState::Get().ResetForTest();
    TelemetryHub::Get().ResetForTest();
    IncidentManager::Get().ResetForTest();
  }
};

// --- build info ----------------------------------------------------------

TEST(BuildInfoTest, FieldsAreNonEmpty) {
  const BuildInfo info = GetBuildInfo();
  ASSERT_NE(info.commit, nullptr);
  ASSERT_NE(info.build_type, nullptr);
  ASSERT_NE(info.sanitizer, nullptr);
  EXPECT_GT(std::string(info.commit).size(), 0u);
  EXPECT_GT(std::string(info.sanitizer).size(), 0u);
}

// --- ring semantics ------------------------------------------------------

TEST(FlightRecorderTest, RecordsSpansCountersAndInstants) {
  TelemetryReset reset;
  FlightRecorder::RecordSpan("fr.test.span", 100, 50);
  FlightRecorder::RecordCounter("fr.test.counter", 42);
  FlightRecorder::RecordInstant("fr.test.instant");

  const auto events = FlightRecorder::Get().Snapshot();
  ASSERT_GE(events.size(), 3u);
  bool saw_span = false, saw_counter = false, saw_instant = false;
  for (const FlightEvent& e : events) {
    if (std::string(e.name) == "fr.test.span") {
      saw_span = true;
      EXPECT_EQ(e.ph, 'X');
      EXPECT_EQ(e.ts_us, 100);
      EXPECT_EQ(e.value, 50);
    }
    if (std::string(e.name) == "fr.test.counter") {
      saw_counter = true;
      EXPECT_EQ(e.ph, 'C');
      EXPECT_EQ(e.value, 42);
    }
    if (std::string(e.name) == "fr.test.instant") {
      saw_instant = true;
      EXPECT_EQ(e.ph, 'i');
    }
  }
  EXPECT_TRUE(saw_span);
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_instant);
}

TEST(FlightRecorderTest, RingOverwritesOldestAndKeepsTheTail) {
  TelemetryReset reset;
  const int total = static_cast<int>(FlightRecorder::kRingCapacity) + 257;
  for (int i = 0; i < total; ++i) {
    FlightRecorder::RecordSpan("fr.overwrite", /*start_us=*/i, /*dur_us=*/1);
  }
  const auto events = FlightRecorder::Get().Snapshot();
  // Retention is bounded by the ring; only the newest kRingCapacity
  // events from this thread survive.
  size_t mine = 0;
  int64_t min_ts = INT64_MAX, max_ts = -1;
  for (const FlightEvent& e : events) {
    if (std::string(e.name) != "fr.overwrite") continue;
    ++mine;
    min_ts = std::min(min_ts, e.ts_us);
    max_ts = std::max(max_ts, e.ts_us);
  }
  EXPECT_EQ(mine, FlightRecorder::kRingCapacity);
  EXPECT_EQ(max_ts, total - 1);  // newest retained
  EXPECT_EQ(min_ts, total - static_cast<int>(FlightRecorder::kRingCapacity));
}

TEST(FlightRecorderTest, DisableGatesRecording) {
  TelemetryReset reset;
  FlightRecorder::Disable();
  FlightRecorder::RecordInstant("fr.gated");
  FlightRecorder::Enable();
  for (const FlightEvent& e : FlightRecorder::Get().Snapshot()) {
    EXPECT_NE(std::string(e.name), "fr.gated");
  }
}

TEST(FlightRecorderTest, SnapshotIsSortedByTimestamp) {
  TelemetryReset reset;
  FlightRecorder::RecordSpan("fr.sort", 300, 1);
  FlightRecorder::RecordSpan("fr.sort", 100, 1);
  FlightRecorder::RecordSpan("fr.sort", 200, 1);
  const auto events = FlightRecorder::Get().Snapshot();
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].ts_us, events[i].ts_us);
  }
}

// The TSan guard: writers hammer their own rings with relaxed stores
// while a reader concurrently snapshots and renders the tail. The
// design is lock-free on the write path; any non-atomic slot access
// shows up under scripts/check.sh --sanitizer tsan.
TEST(FlightRecorderTest, ConcurrentRecordAndSnapshotIsRaceFree) {
  TelemetryReset reset;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([&] {
      for (int i = 0; i < 20000; ++i) {
        FlightRecorder::RecordSpan("fr.race.span", i, 2);
        FlightRecorder::RecordCounter("fr.race.counter", i);
        if (i % 64 == 0) FlightRecorder::RecordInstant("fr.race.instant");
      }
    });
  }
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      (void)FlightRecorder::Get().Snapshot();
      (void)FlightRecorder::Get().TailChromeTraceJson();
      (void)FlightRecorder::Get().event_count();
    }
  });
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_GT(FlightRecorder::Get().event_count(), 0);
}

// --- span macros feed the recorder with the tracer off -------------------

TEST(FlightRecorderTest, TraceSpanFeedsRecorderWhenTracerDisabled) {
  TelemetryReset reset;
  Tracer::Get().Disable();
  const int64_t tracer_events_before = Tracer::Get().event_count();
  {
    SG_TRACE_SPAN("fr.span_macro");
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  SG_TRACE_INTERVAL("fr.interval_macro", 10, 5);
  SG_TRACE_COUNTER("fr.counter_macro", 7);

  // The tracer saw nothing; the flight recorder saw everything.
  EXPECT_EQ(Tracer::Get().event_count(), tracer_events_before);
  bool saw_span = false, saw_interval = false, saw_counter = false;
  for (const FlightEvent& e : FlightRecorder::Get().Snapshot()) {
    const std::string name = e.name;
    if (name == "fr.span_macro") {
      saw_span = true;
      EXPECT_GT(e.value, 0);  // measured a real duration
    }
    if (name == "fr.interval_macro") saw_interval = true;
    if (name == "fr.counter_macro") saw_counter = true;
  }
  EXPECT_TRUE(saw_span);
  EXPECT_TRUE(saw_interval);
  EXPECT_TRUE(saw_counter);
}

TEST(FlightRecorderTest, TailChromeTraceJsonIsWellFormed) {
  TelemetryReset reset;
  FlightRecorder::RecordSpan("fr.json.span", 100, 25);
  FlightRecorder::RecordCounter("fr.json.counter", 9);
  FlightRecorder::RecordInstant("fr.json.instant");
  const std::string json = FlightRecorder::Get().TailChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos) << json;
  EXPECT_NE(json.find("fr.json.span"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":25"), std::string::npos);
}

// --- health --------------------------------------------------------------

TEST(HealthStateTest, AggregatesWorstComponentAndRecovers) {
  TelemetryReset reset;
  HealthState& health = HealthState::Get();
  EXPECT_EQ(health.level(), HealthLevel::kOk);
  EXPECT_FALSE(health.ready());

  health.SetReady(true);
  health.Report(HealthLevel::kDegraded, "supervisor", "worker 1 died");
  EXPECT_EQ(health.level(), HealthLevel::kDegraded);
  health.Report(HealthLevel::kUnhealthy, "watchdog", "deadlock confirmed");
  EXPECT_EQ(health.level(), HealthLevel::kUnhealthy);

  const std::string json = health.ToJson();
  EXPECT_NE(json.find("\"status\":\"unhealthy\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ready\":true"), std::string::npos) << json;
  EXPECT_NE(json.find("supervisor"), std::string::npos) << json;
  EXPECT_NE(json.find("deadlock confirmed"), std::string::npos) << json;

  // Clearing the worst component recovers the aggregate to the next one.
  health.ClearComponent("watchdog");
  EXPECT_EQ(health.level(), HealthLevel::kDegraded);
  health.ClearComponent("supervisor");
  EXPECT_EQ(health.level(), HealthLevel::kOk);
}

TEST(HealthStateTest, LaterReportReplacesEarlier) {
  TelemetryReset reset;
  HealthState& health = HealthState::Get();
  health.Report(HealthLevel::kUnhealthy, "engine", "aborted");
  health.Report(HealthLevel::kDegraded, "engine", "recovering");
  EXPECT_EQ(health.level(), HealthLevel::kDegraded);
}

// --- telemetry hub -------------------------------------------------------

TEST(TelemetryHubTest, RegistrySnapshotLiveAndFrozen) {
  TelemetryReset reset;
  TelemetryHub& hub = TelemetryHub::Get();
  EXPECT_TRUE(hub.MetricsSnapshot().empty());

  MetricRegistry registry;
  Counter* c = registry.GetCounter("fault.events_fired");
  c->Add(3);
  hub.RegisterMetrics(&registry);
  auto live = hub.MetricsSnapshot();
  EXPECT_EQ(live["fault.events_fired"], 3);

  c->Add(4);
  EXPECT_EQ(hub.MetricsSnapshot()["fault.events_fired"], 7);

  // Unregister freezes the final state; later increments are invisible,
  // but post-run scrapes still see the last snapshot.
  hub.UnregisterMetrics(&registry);
  c->Add(100);
  EXPECT_EQ(hub.MetricsSnapshot()["fault.events_fired"], 7);
}

TEST(TelemetryHubTest, FaultLogProviderRoundTrips) {
  TelemetryReset reset;
  TelemetryHub& hub = TelemetryHub::Get();
  EXPECT_TRUE(hub.FaultLog().empty());
  hub.SetFaultLogProvider(
      [] { return std::vector<std::string>{"crash w1 fired"}; });
  ASSERT_EQ(hub.FaultLog().size(), 1u);
  EXPECT_EQ(hub.FaultLog()[0], "crash w1 fired");
  hub.ClearFaultLogProvider();
  EXPECT_TRUE(hub.FaultLog().empty());
}

// --- incident bundles ----------------------------------------------------

TEST(IncidentManagerTest, DisabledByDefault) {
  TelemetryReset reset;
  auto result = IncidentManager::Get().Dump("test", "no dir configured");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result.value().empty());
  EXPECT_TRUE(IncidentManager::Get().List().empty());
}

TEST(IncidentManagerTest, DumpWritesSelfContainedBundle) {
  TelemetryReset reset;
  const std::string dir = FreshTempDir("bundle");
  IncidentManager::Get().SetIncidentDir(dir);

  MetricRegistry registry;
  registry.GetCounter("fault.events_fired")->Add(1);
  TelemetryHub::Get().RegisterMetrics(&registry);
  TelemetryHub::Get().SetFaultLogProvider(
      [] { return std::vector<std::string>{"hang w1 fired at s2"}; });
  FlightRecorder::RecordSpan("fr.bundle.span", 10, 5);

  auto result = IncidentManager::Get().Dump("unit-test", "planted incident");
  ASSERT_TRUE(result.ok()) << result.status();
  const std::string bundle = result.value();
  ASSERT_FALSE(bundle.empty());

  EXPECT_TRUE(FileExists(bundle + "/MANIFEST.json"));
  EXPECT_TRUE(FileExists(bundle + "/trace.json"));
  EXPECT_TRUE(FileExists(bundle + "/waitfor.json"));
  EXPECT_TRUE(FileExists(bundle + "/metrics.prom"));
  EXPECT_TRUE(FileExists(bundle + "/faults.json"));
  EXPECT_TRUE(FileExists(bundle + "/env.json"));

  const std::string manifest = ReadFileOrEmpty(bundle + "/MANIFEST.json");
  EXPECT_NE(manifest.find("\"trigger\":\"unit-test\""), std::string::npos)
      << manifest;
  EXPECT_NE(manifest.find("planted incident"), std::string::npos);
  EXPECT_NE(manifest.find("\"complete\":true"), std::string::npos);

  const std::string trace = ReadFileOrEmpty(bundle + "/trace.json");
  EXPECT_NE(trace.find("fr.bundle.span"), std::string::npos);

  const std::string prom = ReadFileOrEmpty(bundle + "/metrics.prom");
  EXPECT_NE(prom.find("serigraph_fault_events_fired"), std::string::npos)
      << prom;

  const std::string faults = ReadFileOrEmpty(bundle + "/faults.json");
  EXPECT_NE(faults.find("hang w1 fired at s2"), std::string::npos) << faults;

  const std::string env = ReadFileOrEmpty(bundle + "/env.json");
  EXPECT_NE(env.find("\"pid\":"), std::string::npos) << env;
  EXPECT_NE(env.find("\"commit\":"), std::string::npos) << env;

  ASSERT_EQ(IncidentManager::Get().List().size(), 1u);
  EXPECT_EQ(IncidentManager::Get().List()[0].trigger, "unit-test");
  EXPECT_NE(IncidentManager::Get().ListJson().find("unit-test"),
            std::string::npos);
  TelemetryHub::Get().UnregisterMetrics(&registry);
}

TEST(IncidentManagerTest, AutomaticDumpsAreSpacedButManualBypasses) {
  TelemetryReset reset;
  const std::string dir = FreshTempDir("ratelimit");
  IncidentManager::Get().SetIncidentDir(dir);

  auto first = IncidentManager::Get().Dump("auto", "first");
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first.value().empty());

  // A second automatic dump inside the spacing window is suppressed
  // (empty path, not an error); a manual dump goes through.
  auto second = IncidentManager::Get().Dump("auto", "too soon");
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.value().empty());

  auto manual = IncidentManager::Get().Dump("manual", "operator", true);
  ASSERT_TRUE(manual.ok());
  EXPECT_FALSE(manual.value().empty());
  EXPECT_EQ(IncidentManager::Get().List().size(), 2u);
}

TEST(TriggerIncidentDumpTest, FlipsHealthAndWritesBundle) {
  TelemetryReset reset;
  const std::string dir = FreshTempDir("trigger");
  IncidentManager::Get().SetIncidentDir(dir);
  TriggerIncidentDump("unit-trigger", "synthetic", HealthLevel::kUnhealthy);
  EXPECT_EQ(HealthState::Get().level(), HealthLevel::kUnhealthy);
  ASSERT_EQ(IncidentManager::Get().List().size(), 1u);
  EXPECT_EQ(IncidentManager::Get().List()[0].trigger, "unit-trigger");
}

// --- watchdog-confirmed deadlock produces a bundle with the cycle --------

TEST(IncidentIntegrationTest, ConfirmedDeadlockDumpsBundleNamingTheCycle) {
  TelemetryReset reset;
  const std::string dir = FreshTempDir("deadlock");
  IncidentManager::Get().SetIncidentDir(dir);

  Introspector& in = Introspector::Get();
  in.Disable();
  in.Configure(2, "partition");
  in.Enable();
  // Planted wait-for cycle with frozen progress (the PR5 idiom): worker 0
  // waits on fork 7 owned by worker 1, worker 1 on fork 3 owned by 0.
  Introspector::WaitTarget t0{7, 1};
  in.BeginAcquire(0, 3, &t0, 1, 1);
  Introspector::WaitTarget t1{3, 0};
  in.BeginAcquire(1, 7, &t1, 1, 1);

  WatchdogOptions opts;
  opts.period_ms = 5;
  opts.stall_ms = 10000;
  opts.abort_on_stall = true;
  Watchdog dog(opts);
  dog.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  dog.Stop();
  in.Disable();

  ASSERT_GE(dog.summary().deadlocks_detected, 1);
  // /healthz flipped unhealthy before any abort/exit path ran.
  EXPECT_EQ(HealthState::Get().level(), HealthLevel::kUnhealthy);

  const auto incidents = IncidentManager::Get().List();
  ASSERT_FALSE(incidents.empty());
  EXPECT_EQ(incidents[0].trigger, "watchdog-deadlock");
  EXPECT_NE(incidents[0].reason.find("worker cycle"), std::string::npos);

  const std::string waitfor =
      ReadFileOrEmpty(incidents[0].dir + "/waitfor.json");
  ASSERT_FALSE(waitfor.empty());
  // The bundle names the cycle: both workers appear in a non-empty
  // cycle array, and the edges carry the fork resources.
  EXPECT_NE(waitfor.find("\"cycle\":["), std::string::npos) << waitfor;
  EXPECT_EQ(waitfor.find("\"cycle\":[]"), std::string::npos) << waitfor;
  EXPECT_NE(waitfor.find("\"resource\":7"), std::string::npos) << waitfor;
  EXPECT_NE(waitfor.find("\"resource\":3"), std::string::npos) << waitfor;

  const std::string trace = ReadFileOrEmpty(incidents[0].dir + "/trace.json");
  EXPECT_NE(trace.find("watchdog.incident"), std::string::npos) << trace;
}

// --- fatal-signal handler ------------------------------------------------

TEST(FatalSignalDeathTest, SegfaultWritesBundleBeforeDying) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  // The threadsafe death-test child re-executes this test body, so a
  // pid-derived path would differ between parent and child; the first
  // execution pins the directory in the environment (inherited through
  // the child's exec) and both sides agree on it.
  const char* preset = ::getenv("SG_TEST_FATAL_DIR");
  const std::string dir = preset != nullptr ? preset : FreshTempDir("fatal");
  ::setenv("SG_TEST_FATAL_DIR", dir.c_str(), /*overwrite=*/0);
  // The statement runs in a forked child: configure the incident plane,
  // record some pre-crash context, then die. The handler re-raises with
  // the default disposition, so the child is killed by SIGSEGV.
  EXPECT_DEATH(
      {
        IncidentManager::Get().ResetForTest();
        IncidentManager::Get().SetIncidentDir(dir);
        InstallFatalSignalHandlers();
        FlightRecorder::RecordInstant("fatal.pre_crash");
        ::raise(SIGSEGV);
      },
      "");
  // The parent inspects the child's bundle.
  bool found = false;
  for (int seq = 0; seq < 4 && !found; ++seq) {
    const std::string bundle =
        dir + "/incident-" + std::to_string(seq) + "-fatal-sigsegv";
    if (!FileExists(bundle + "/MANIFEST.json")) continue;
    found = true;
    const std::string trace = ReadFileOrEmpty(bundle + "/trace.json");
    EXPECT_NE(trace.find("fatal.pre_crash"), std::string::npos) << trace;
  }
  EXPECT_TRUE(found) << "no fatal-sigsegv bundle under " << dir;
}

}  // namespace
}  // namespace serigraph
