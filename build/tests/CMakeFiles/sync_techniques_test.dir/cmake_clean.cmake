file(REMOVE_RECURSE
  "CMakeFiles/sync_techniques_test.dir/sync_techniques_test.cc.o"
  "CMakeFiles/sync_techniques_test.dir/sync_techniques_test.cc.o.d"
  "sync_techniques_test"
  "sync_techniques_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sync_techniques_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
