#!/usr/bin/env bash
# Exercises scripts/bench_compare.py against fixture BENCH.json reports:
# a within-noise drift must pass, a real regression must exit 1, an
# improvement must pass, a schema mismatch and an environment mismatch
# must exit 2, and --merge must produce a loadable combined report. Run
# from anywhere; the repo root is derived from this script's location.
set -u

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/../.." && pwd)"
COMPARE="python3 ${ROOT}/scripts/bench_compare.py"
FIXTURES="${ROOT}/tests/bench_compare_fixtures"
failures=0

# expect_exit <expected-code> <label> <args...>
expect_exit() {
  local expected="$1" label="$2"
  shift 2
  local out
  out="$(${COMPARE} "$@" 2>&1)"
  local status=$?
  if [ "${status}" -ne "${expected}" ]; then
    echo "FAIL: ${label}: exit ${status}, expected ${expected}; got:"
    echo "${out}"
    failures=$((failures + 1))
    return
  fi
  echo "PASS: ${label} (exit ${status})"
}

expect_exit 0 "within-noise drift passes" \
  "${FIXTURES}/baseline.json" "${FIXTURES}/within_noise.json"
expect_exit 1 "regression fails" \
  "${FIXTURES}/baseline.json" "${FIXTURES}/regression.json"
expect_exit 0 "improvement passes" \
  "${FIXTURES}/baseline.json" "${FIXTURES}/improvement.json"
expect_exit 2 "schema mismatch rejected" \
  "${FIXTURES}/baseline.json" "${FIXTURES}/schema_v1.json"
expect_exit 2 "build-type mismatch rejected" \
  "${FIXTURES}/baseline.json" "${FIXTURES}/debug_build.json"
expect_exit 1 "env override still detects the regression" \
  --allow-env-mismatch \
  "${FIXTURES}/baseline.json" "${FIXTURES}/debug_build.json"

# The noise-aware tolerance is per cell: at --threshold=0.05 the steady
# cell's +10% becomes a regression, while the noisy cell's +60% is still
# tolerated by its observed repetition spread (the output shows tol 80%
# there). Exit 1 proves the threshold bites per cell, not globally.
expect_exit 1 "tight threshold bites steady cell, spares noisy cell" \
  --threshold=0.05 \
  "${FIXTURES}/baseline.json" "${FIXTURES}/within_noise.json"

# Merge mode: combining reports yields a loadable schema-v2 file whose
# duplicate cells keep the last occurrence.
MERGED="$(mktemp)"
trap 'rm -f "${MERGED}"' EXIT
expect_exit 0 "merge succeeds" \
  --merge "${MERGED}" "${FIXTURES}/improvement.json" \
  "${FIXTURES}/regression.json"
expect_exit 1 "merged report (last occurrence wins) vs baseline" \
  "${FIXTURES}/baseline.json" "${MERGED}"

if [ "${failures}" -ne 0 ]; then
  echo "bench_compare fixtures: ${failures} failure(s)"
  exit 1
fi
echo "bench_compare fixtures: all passed"
