file(REMOVE_RECURSE
  "libserigraph_verify.a"
)
