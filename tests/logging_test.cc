#include "common/logging.h"

#include <gtest/gtest.h>

namespace serigraph {
namespace {

TEST(LoggingTest, LevelsAreOrdered) {
  EXPECT_LT(static_cast<int>(LogLevel::kDebug),
            static_cast<int>(LogLevel::kInfo));
  EXPECT_LT(static_cast<int>(LogLevel::kInfo),
            static_cast<int>(LogLevel::kWarning));
  EXPECT_LT(static_cast<int>(LogLevel::kWarning),
            static_cast<int>(LogLevel::kError));
  EXPECT_LT(static_cast<int>(LogLevel::kError),
            static_cast<int>(LogLevel::kFatal));
}

TEST(LoggingTest, SetAndGetLevel) {
  LogLevel old = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(old);
}

TEST(LoggingTest, NonFatalLevelsDoNotAbort) {
  SG_LOG(kDebug) << "debug message";
  SG_LOG(kInfo) << "info message";
  SG_LOG(kWarning) << "warning message";
  SG_LOG(kError) << "error message";
}

TEST(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH(SG_CHECK(1 == 2), "Check failed: 1 == 2");
}

TEST(LoggingDeathTest, CheckOpPrintsOperands) {
  int a = 3, b = 4;
  EXPECT_DEATH(SG_CHECK_EQ(a, b), "3 vs 4");
  EXPECT_DEATH(SG_CHECK_GT(a, b), "Check failed");
}

TEST(LoggingDeathTest, CheckOkAbortsOnError) {
  EXPECT_DEATH(SG_CHECK_OK(Status::Internal("boom")), "boom");
}

TEST(LoggingTest, PassingChecksAreSilent) {
  SG_CHECK(true);
  SG_CHECK_EQ(1, 1);
  SG_CHECK_NE(1, 2);
  SG_CHECK_LT(1, 2);
  SG_CHECK_LE(2, 2);
  SG_CHECK_GT(2, 1);
  SG_CHECK_GE(2, 2);
  SG_CHECK_OK(Status::OK());
}

TEST(LoggingTest, FatalFiresEvenBelowThreshold) {
  // kFatal must abort regardless of the configured minimum level.
  LogLevel old = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_DEATH(SG_LOG(kFatal) << "fatal anyway", "fatal anyway");
  SetLogLevel(old);
}

}  // namespace
}  // namespace serigraph
