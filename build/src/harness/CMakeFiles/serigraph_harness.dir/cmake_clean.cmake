file(REMOVE_RECURSE
  "CMakeFiles/serigraph_harness.dir/datasets.cc.o"
  "CMakeFiles/serigraph_harness.dir/datasets.cc.o.d"
  "CMakeFiles/serigraph_harness.dir/table.cc.o"
  "CMakeFiles/serigraph_harness.dir/table.cc.o.d"
  "libserigraph_harness.a"
  "libserigraph_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serigraph_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
