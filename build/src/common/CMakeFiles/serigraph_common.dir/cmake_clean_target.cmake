file(REMOVE_RECURSE
  "libserigraph_common.a"
)
