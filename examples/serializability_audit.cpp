// Audits real executions against the paper's formal framework (Section
// 3): records every vertex execution as a transaction and checks
//   C1  — every read saw an up-to-date replica,
//   C2  — no transaction overlapped a neighbor's transaction,
//   1SR — the serialization graph is acyclic.
// Plain AP violates the conditions; every synchronization technique
// passes, which is Theorem 1 made executable.

#include <cstdio>
#include <iostream>

#include "algos/mis.h"
#include "graph/generators.h"
#include "harness/runner.h"
#include "harness/table.h"
#include "verify/history.h"

using namespace serigraph;

int main() {
  // Maximal independent set on a random undirected graph: an algorithm
  // whose *correctness* (not just performance) needs serializability.
  auto graph_or = Graph::FromEdgeList(ErdosRenyi(400, 2400, /*seed=*/5));
  SG_CHECK_OK(graph_or.status());
  Graph graph = graph_or->Undirected();

  std::printf("Maximal independent set on |V|=400, |E|=%lld (undirected), "
              "6 workers.\n\n",
              (long long)(graph.num_edges() / 2));

  TablePrinter table({"technique", "txns", "C1 fresh", "C2 disjoint", "1SR",
                      "independent", "maximal"});
  for (SyncMode sync :
       {SyncMode::kNone, SyncMode::kSingleLayerToken,
        SyncMode::kDualLayerToken, SyncMode::kVertexLocking,
        SyncMode::kPartitionLocking}) {
    RunConfig config;
    config.sync_mode = sync;
    config.num_workers = 6;
    config.record_history = true;
    config.max_supersteps = 200;

    Engine<MaximalIndependentSet> engine(&graph, ToEngineOptions(config));
    auto result = engine.Run(MaximalIndependentSet());
    SG_CHECK_OK(result.status());
    HistoryCheck check = CheckHistory(graph, result->history->TakeRecords());

    table.AddRow({SyncModeName(sync), std::to_string(check.num_transactions),
                  check.c1_fresh_reads ? "yes" : "VIOLATED",
                  check.c2_no_neighbor_overlap ? "yes" : "VIOLATED",
                  check.serializable ? "yes" : "NO",
                  IsIndependentSet(graph, result->values) ? "yes" : "NO",
                  IsMaximalIndependentSet(graph, result->values) ? "yes"
                                                                 : "NO"});
    for (const std::string& sample : check.violation_samples) {
      std::printf("  [%s] %s\n", SyncModeName(sync), sample.c_str());
    }
  }
  std::printf("\n");
  table.Print(std::cout);
  std::printf("\n(Plain AP may produce an invalid set and C1/C2 violations;"
              " any such run is\nnon-serializable, exactly the paper's"
              " motivation. Results vary with thread timing.)\n");
  return 0;
}
