#!/usr/bin/env python3
"""Locking-protocol linter for serigraph.

A regex/AST hybrid: comments and strings are stripped with a real
scanner, lock scopes are tracked through brace depth, and the rules are
driven by the machine-readable blocks in docs/LOCK_ORDER.md and the
metric table in docs/METRICS.md. It complements Clang's -Wthread-safety
(SERIGRAPH_TSA=ON) with the repo-specific invariants the compiler cannot
express:

  R1 naked-mutex            no std:: lock primitives outside common/mutex.h
  R2 acquire-without-release every manual X.Lock() has a matching
                             X.Unlock() (per file, normalized indexes)
  R3 lock-order             syntactic lock nestings must follow the DAG
                             declared in docs/LOCK_ORDER.md
  R4 blocking-under-leaf    no blocking call inside a leaf-tier critical
                             section (tracer/beacon/metrics/logging)
  R5 metric-name            Get{Counter,Gauge,Histogram} literals and
                             SG_OBS_SERVED_METRIC("...") exposition names
                             in src/ must match docs/METRICS.md exactly
  R6 memory-order           every explicit std::memory_order_relaxed
                             carries a `// mo:` justification on the same
                             line or in the comment block directly above
  R7 lock-decl              every sy::Mutex / sy::CondVar /
                             sy::LockSetMutex declaration in src/ must be
                             listed (with its tier) in the lock-decls
                             block of docs/LOCK_ORDER.md, and every
                             listed declaration must still exist
  R8 lock-graph             cross-TU call-graph pass: a call made while
                             holding a tier-T lock must not reach (even
                             transitively, through functions in other
                             files) an acquisition of tier U unless the
                             `T -> U` edge is declared

Escape hatch: append `// lint:allow <rule-tag>` to the offending line.
Exit status is nonzero iff any diagnostic was emitted.
"""

import argparse
import os
import re
import sys

RULE_TAGS = {
    "naked-mutex",
    "acquire-without-release",
    "lock-order",
    "blocking-under-leaf",
    "metric-name",
    "memory-order",
    "lock-decl",
    "lock-graph",
}

NAKED_RE = re.compile(
    r"std::(?:recursive_|shared_|timed_)*mutex\b"
    r"|std::condition_variable(?:_any)?\b"
    r"|std::(?:lock_guard|unique_lock|scoped_lock|shared_lock)\b"
)

MUTEXLOCK_RE = re.compile(
    r"\b(?:sy::)?MutexLock\s+\w+\s*\(\s*&\s*(.+?)\s*\)\s*;"
)
MANUAL_LOCK_RE = re.compile(r"([\w\.\->\[\]\(\)\*&]+?)(?:\.|->)Lock\s*\(\s*\)")
MANUAL_UNLOCK_RE = re.compile(
    r"([\w\.\->\[\]\(\)\*&]+?)(?:\.|->)Unlock\s*\(\s*\)")

BLOCKING_RE = re.compile(
    r"\.Wait(?:For|Until)?\s*\(|->Wait(?:For|Until)?\s*\("
    r"|\bReceive\s*\(|\bsleep_for\s*\(|\.join\s*\(|\bAwait\s*\("
)

METRIC_CALL_RE = re.compile(r"Get(?:Counter|Gauge|Histogram)\(\s*\"([^\"]+)\"")

# Names synthesized for the /metrics exposition (no MetricRegistry entry)
# wear this marker macro (obs/report.h) so R5 still covers them in both
# directions: served-but-undocumented AND documented-but-unserved fail.
SERVED_METRIC_RE = re.compile(r"SG_OBS_SERVED_METRIC\(\s*\"([^\"]+)\"")

ALLOW_RE = re.compile(r"//\s*lint:allow\s+([\w\-]+)")

MO_RELAXED_RE = re.compile(r"std::memory_order_relaxed\b")
MO_JUSTIFY_RE = re.compile(r"//.*\bmo:")

# sy:: lock-object declarations (direct members/statics, container
# elements, and heap allocations). Matched against comment-stripped code.
LOCK_DECL_RE = re.compile(
    r"\bsy::(?:Mutex|CondVar|LockSetMutex)\s+(\w+)\s*[;={]")
LOCK_DECL_TMPL_RE = re.compile(
    r"<\s*sy::(?:Mutex|CondVar|LockSetMutex)\s*>+\s+(\w+)\s*[;={(]")
LOCK_DECL_NEW_RE = re.compile(
    r"(\w+)\s*=\s*new\s+sy::(?:Mutex|CondVar|LockSetMutex)\b")

CLASS_RE = re.compile(
    r"\b(?:class|struct)\s+(?:SY_\w+\s*\([^)]*\)\s*)?(\w+)\b")
ENUM_CLASS_RE = re.compile(r"\benum\s+(?:class|struct)\b")

# Function-definition heuristic for the call-graph pass: the last
# identifier followed by '(' on a signature line, excluding control-flow
# keywords and macro-style all-caps names.
CALL_RE = re.compile(r"\b([A-Za-z_]\w*)\s*\(")
NON_CALLEES = {
    "if", "for", "while", "switch", "return", "sizeof", "catch",
    "alignof", "decltype", "static_cast", "reinterpret_cast",
    "const_cast", "dynamic_cast", "defined", "assert", "noexcept",
    "Lock", "Unlock", "TryLock", "Wait", "WaitFor", "WaitUntil",
    "NotifyOne", "NotifyAll", "MutexLock",
}


def strip_comments_and_strings(text):
    """Blanks comments and string/char literals, preserving newlines and
    columns, and returns (code, allow_map) where allow_map maps a line
    number to the set of lint:allow tags found in its comments."""
    out = []
    allows = {}
    i, n = 0, len(text)
    line = 1
    state = "code"  # code | line_comment | block_comment | string | char
    comment_start = 0
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                comment_start = i
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append('"')
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append("'")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                m = ALLOW_RE.search(text[comment_start:i])
                if m:
                    allows.setdefault(line, set()).add(m.group(1))
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif state == "string":
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "code"
                out.append('"')
            else:
                out.append(" ")
        elif state == "char":
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == "'":
                state = "code"
                out.append("'")
            else:
                out.append(" ")
        if c == "\n":
            line += 1
        i += 1
    return "".join(out), allows


def normalize_expr(expr):
    """Collapses index/arg subexpressions so `locks_[u]` and
    `locks_[*it]` (or `shards_[w]`) compare equal."""
    expr = re.sub(r"\[[^\]]*\]", "[]", expr)
    expr = re.sub(r"\s+", "", expr)
    return expr


class Hierarchy:
    def __init__(self, edges, tiers, leaves, decls=None):
        self.tiers = tiers  # list of (name, path_substr, compiled_regex)
        self.leaves = leaves
        self.decls = decls or {}  # "Type::member" -> (tier, doc_line)
        self.direct_edges = set(edges)
        # Transitive closure of the declared DAG.
        allowed = set(edges)
        changed = True
        while changed:
            changed = False
            for a, b in list(allowed):
                for c, d in list(allowed):
                    if b == c and (a, d) not in allowed:
                        allowed.add((a, d))
                        changed = True
        self.allowed = allowed

    def classify(self, path, expr):
        for name, path_sub, rx in self.tiers:
            if path_sub and path_sub not in path:
                continue
            if rx.search(expr):
                return name
        return None


def parse_lock_order(doc_path):
    try:
        text = open(doc_path, encoding="utf-8").read()
    except OSError as e:
        print(f"lint_protocol: cannot read {doc_path}: {e}", file=sys.stderr)
        sys.exit(2)

    def block(tag):
        m = re.search(r"```" + tag + r"\n(.*?)```", text, re.DOTALL)
        return m.group(1).splitlines() if m else []

    edges = set()
    for ln in block("lock-order"):
        ln = ln.strip()
        if not ln or ln.startswith("#"):
            continue
        a, _, b = ln.partition("->")
        edges.add((a.strip(), b.strip()))
    tiers = []
    for ln in block("lock-tiers"):
        ln = ln.strip()
        if not ln or ln.startswith("#"):
            continue
        name, _, rest = ln.partition(":")
        path_sub, _, rx = rest.partition("::")
        tiers.append((name.strip(), path_sub.strip(), re.compile(rx.strip())))
    leaves = {ln.strip() for ln in block("lock-leaves") if ln.strip()}
    decls = {}
    # The lock-decls block needs line numbers for staleness diagnostics.
    m = re.search(r"```lock-decls\n(.*?)```", text, re.DOTALL)
    if m:
        start = text[: m.start(1)].count("\n") + 1
        for off, ln in enumerate(m.group(1).splitlines()):
            ln = ln.strip()
            if not ln or ln.startswith("#"):
                continue
            tier, _, key = ln.partition(":")
            decls[key.strip()] = (tier.strip(), start + off)
    return Hierarchy(edges, tiers, leaves, decls)


def parse_metrics_doc(doc_path):
    names = set()
    try:
        for ln in open(doc_path, encoding="utf-8"):
            m = re.match(r"\|\s*`([^`]+)`\s*\|", ln)
            if m:
                names.add(m.group(1))
    except OSError as e:
        print(f"lint_protocol: cannot read {doc_path}: {e}", file=sys.stderr)
        sys.exit(2)
    return names


class Linter:
    def __init__(self, hierarchy, metric_names, repo_root):
        self.h = hierarchy
        self.metric_names = metric_names
        self.repo_root = repo_root
        self.errors = []
        self.warnings = []
        self.metrics_used = {}  # name -> first (path, line)
        # R7: "Type::member" -> (path, line) for every sy:: lock object
        # declared under src/.
        self.lock_decls = {}
        # R8 call-graph facts. Function identity is the bare name, which
        # merges overloads and same-named methods across classes — a
        # deliberate overapproximation (a false edge is a prompt to add
        # a lint:allow with a safety argument; a missed one is a silent
        # deadlock channel).
        self.fn_acquires = {}  # fn -> set of tiers acquired in its body
        self.fn_calls = {}     # fn -> set of callee names
        self.fn_defs = {}      # fn -> number of definitions seen
        self.held_calls = []   # (path, line, tier, holder_expr, callee)
        self.observed_edges = set()

    def error(self, path, line, rule, msg):
        rel = os.path.relpath(path, self.repo_root)
        self.errors.append(f"{rel}:{line}: [{rule}] {msg}")

    def lint_file(self, path):
        rel = os.path.relpath(path, self.repo_root).replace(os.sep, "/")
        raw = open(path, encoding="utf-8").read()
        code, allows = strip_comments_and_strings(raw)
        lines = code.split("\n")

        def allowed(line_no, tag):
            return tag in allows.get(line_no, set())

        in_src = rel.startswith("src/")
        # The wrapper itself, plus the model-checking substrate that the
        # wrapper calls *into* (hooks + virtual scheduler). Those layers
        # sit beneath sy::Mutex and must use the raw std primitives — a
        # sy::Mutex there would recurse into the scheduler.
        is_wrapper = rel in (
            "src/common/mutex.h",
            "src/common/thread_annotations.h",
            "src/common/schedule_hooks.h",
            "src/common/schedule_hooks.cc",
            "src/check/scheduler.h",
            "src/check/scheduler.cc",
        )

        # R5: metric literals (src/ only; scan the raw text so the name
        # inside the string literal survives).
        if in_src:
            for idx, raw_ln in enumerate(raw.split("\n"), start=1):
                for m in METRIC_CALL_RE.finditer(raw_ln):
                    name = m.group(1)
                    self.metrics_used.setdefault(name, (path, idx))
                for m in SERVED_METRIC_RE.finditer(raw_ln):
                    name = m.group(1)
                    self.metrics_used.setdefault(name, (path, idx))

        # R1: naked std lock primitives.
        if not is_wrapper:
            for idx, ln in enumerate(lines, start=1):
                m = NAKED_RE.search(ln)
                if m and not allowed(idx, "naked-mutex"):
                    self.error(
                        path, idx, "naked-mutex",
                        f"'{m.group(0)}' is forbidden outside "
                        "src/common/mutex.h; use sy::Mutex / sy::MutexLock "
                        "/ sy::CondVar",
                    )

        # R6: every explicit relaxed ordering carries a `// mo:` reason on
        # the same line or in the comment block directly above (a
        # multi-line justification counts as long as the block is
        # contiguous comment lines). Matched against the stripped code
        # (so prose mentions in comments don't count as uses) but
        # justified from the raw text (where the comment lives).
        raw_lines = raw.split("\n")

        def mo_justified(idx):
            here = raw_lines[idx - 1] if idx - 1 < len(raw_lines) else ""
            if MO_JUSTIFY_RE.search(here):
                return True
            k = idx - 2  # 0-based index of the line above
            if k >= 0 and MO_JUSTIFY_RE.search(raw_lines[k]):
                return True  # trailing comment on the preceding line
            while k >= 0:
                stripped = raw_lines[k].strip()
                if not stripped.startswith("//"):
                    break
                if MO_JUSTIFY_RE.search(stripped):
                    return True
                k -= 1
            return False

        for idx, ln in enumerate(lines, start=1):
            if not MO_RELAXED_RE.search(ln):
                continue
            if allowed(idx, "memory-order"):
                continue
            if mo_justified(idx):
                continue
            self.error(
                path, idx, "memory-order",
                "std::memory_order_relaxed without a `// mo:` "
                "justification on this or the preceding line; say why "
                "relaxed is sound here (what reorders are tolerated and "
                "who synchronizes the data)",
            )

        # R2: per-file Lock/Unlock balance (normalized expressions).
        locks, unlocks = {}, {}
        for idx, ln in enumerate(lines, start=1):
            for m in MANUAL_LOCK_RE.finditer(ln):
                expr = normalize_expr(m.group(1))
                if expr.endswith(("mu", "mu_", "]")) or "mutex" in expr.lower():
                    if not allowed(idx, "acquire-without-release"):
                        locks.setdefault(expr, idx)
            for m in MANUAL_UNLOCK_RE.finditer(ln):
                unlocks.setdefault(normalize_expr(m.group(1)), idx)
        for expr, idx in locks.items():
            if expr not in unlocks:
                self.error(
                    path, idx, "acquire-without-release",
                    f"manual {expr}.Lock() has no matching Unlock() in this "
                    "file; use sy::MutexLock or annotate the protocol with "
                    "SY_ACQUIRE/SY_RELEASE and `// lint:allow "
                    "acquire-without-release`",
                )

        # R3 + R4 + R7 + R8: one pass of brace-depth scope tracking.
        depth = 0
        held = []  # (norm_expr, tier, depth_at_acquire, line)
        # R7 context: innermost enclosing class/struct name.
        class_stack = []  # (depth_at_open, name)
        pending_class = None
        # R8 context: enclosing function (bare-name heuristic — the last
        # plausible `name(` seen just before an opening brace at
        # class/namespace level).
        current_fn = None
        fn_open_depth = 0
        sig_candidate = None
        sig_line = 0
        file_stem = os.path.splitext(os.path.basename(path))[0]
        collect = in_src and not is_wrapper

        def plausible_callees(text_ln):
            out = []
            for m in CALL_RE.finditer(text_ln):
                name = m.group(1)
                if name in NON_CALLEES:
                    continue
                # Qualified calls (std::move, Planted::Enable, ...) would
                # collide with unrelated tree functions under bare-name
                # keying; skip them rather than mis-merge.
                if m.start() >= 1 and text_ln[m.start() - 1] == ":":
                    continue
                if name.startswith(("SG_", "SY_", "sy", "std")):
                    continue
                if name.isupper():
                    continue
                out.append(name)
            return out

        for idx, ln in enumerate(lines, start=1):
            # R7: record sy:: lock-object declarations with their
            # enclosing type (or the file stem for function/file scope).
            if collect:
                names = [m.group(1) for m in LOCK_DECL_RE.finditer(ln)]
                names += [m.group(1) for m in LOCK_DECL_TMPL_RE.finditer(ln)]
                names += [m.group(1) for m in LOCK_DECL_NEW_RE.finditer(ln)]
                for name in names:
                    scope = class_stack[-1][1] if class_stack else file_stem
                    self.lock_decls.setdefault(f"{scope}::{name}",
                                               (path, idx))
            if not ENUM_CLASS_RE.search(ln):
                # Scrub angle brackets first so `template <class T>` and
                # template-argument lists don't read as declarations.
                scrubbed = re.sub(r"<[^<>]*>", "", ln)
                m = CLASS_RE.search(scrubbed)
                if m and ";" not in scrubbed.split("{", 1)[0]:
                    pending_class = m.group(1)
            if current_fn is None:
                cands = [
                    c for c in plausible_callees(ln)
                    if not c.endswith("_")  # skip ctor-init member lists
                ]
                if cands:
                    sig_candidate = cands[-1]
                    sig_line = idx
                elif sig_candidate and idx - sig_line > 3:
                    sig_candidate = None
            # Acquisitions on this line (MutexLock decls + manual Locks).
            acquired = [m.group(1) for m in MUTEXLOCK_RE.finditer(ln)]
            acquired += [
                m.group(1)
                for m in MANUAL_LOCK_RE.finditer(ln)
                if normalize_expr(m.group(1)).endswith(("mu", "mu_", "]"))
            ]
            for expr_raw in acquired:
                expr = normalize_expr(expr_raw)
                tier = self.h.classify(rel, expr_raw)
                if collect and tier is not None and current_fn:
                    self.fn_acquires.setdefault(current_fn, set()).add(tier)
                if held and not allowed(idx, "lock-order"):
                    holder_expr, holder_tier, _, holder_line = held[-1]
                    if holder_tier is None or tier is None:
                        unknown = expr_raw if tier is None else holder_expr
                        self.error(
                            path, idx, "lock-order",
                            f"nested acquisition of '{expr_raw}' while "
                            f"holding '{holder_expr}' (line {holder_line}), "
                            f"but '{unknown}' has no tier in "
                            "docs/LOCK_ORDER.md; add it to the lock-tiers "
                            "block",
                        )
                    elif (holder_tier, tier) in self.h.allowed:
                        self.observed_edges.add((holder_tier, tier))
                    elif (holder_tier, tier) not in self.h.allowed:
                        self.error(
                            path, idx, "lock-order",
                            f"lock-order violation: acquiring tier '{tier}' "
                            f"('{expr_raw}') while holding tier "
                            f"'{holder_tier}' ('{holder_expr}', line "
                            f"{holder_line}); no '{holder_tier} -> {tier}' "
                            "edge in docs/LOCK_ORDER.md",
                        )
                held.append((expr, tier, depth, idx))

            # R4: blocking call while any held lock is a leaf tier.
            if held and BLOCKING_RE.search(ln) and not acquired:
                for expr, tier, _, lline in held:
                    if tier in self.h.leaves and not allowed(
                            idx, "blocking-under-leaf"):
                        m = BLOCKING_RE.search(ln)
                        self.error(
                            path, idx, "blocking-under-leaf",
                            f"blocking call '{m.group(0).strip()}...' while "
                            f"holding leaf-tier '{tier}' lock '{expr}' "
                            f"(acquired line {lline}); leaf locks must not "
                            "be held across waits/receives/joins",
                        )

            # R8 facts: callees of the enclosing function, and calls made
            # with a lock held (acquisition lines excluded — the call
            # there is part of the acquisition expression itself).
            if collect and current_fn:
                callees = plausible_callees(ln)
                if callees:
                    self.fn_calls.setdefault(current_fn,
                                             set()).update(callees)
                if held and not acquired and not allowed(idx, "lock-graph"):
                    holder_expr, holder_tier, _, _ = held[-1]
                    if holder_tier is not None:
                        for callee in callees:
                            self.held_calls.append(
                                (path, idx, holder_tier, holder_expr,
                                 callee))

            # Manual unlocks release the matching held entry.
            for m in MANUAL_UNLOCK_RE.finditer(ln):
                expr = normalize_expr(m.group(1))
                for k in range(len(held) - 1, -1, -1):
                    if held[k][0] == expr:
                        held.pop(k)
                        break

            # Depth bookkeeping; scope-bound locks die with their scope,
            # class/function contexts close with theirs.
            for c in ln:
                if c == "{":
                    if pending_class is not None:
                        class_stack.append((depth, pending_class))
                        pending_class = None
                    elif current_fn is None and sig_candidate is not None:
                        current_fn = sig_candidate
                        fn_open_depth = depth
                        self.fn_defs[current_fn] = (
                            self.fn_defs.get(current_fn, 0) + 1)
                        sig_candidate = None
                    depth += 1
                elif c == "}":
                    depth -= 1
                    held = [h for h in held if h[2] < depth]
                    while class_stack and class_stack[-1][0] >= depth:
                        class_stack.pop()
                    if current_fn is not None and depth <= fn_open_depth:
                        current_fn = None
            if depth <= 0:
                held = []

    def finish_lock_decls(self):
        """R7: the lock-decls block must list exactly the sy:: lock
        objects that exist in src/, each with a known tier."""
        tier_names = {name for name, _, _ in self.h.tiers}
        for key, (path, line) in sorted(self.lock_decls.items()):
            if key not in self.h.decls:
                self.error(
                    path, line, "lock-decl",
                    f"lock object '{key}' is not listed in the "
                    "lock-decls block of docs/LOCK_ORDER.md; declare its "
                    "tier there (every mutex in the tree must have a "
                    "documented place in the hierarchy)",
                )
        for key, (tier, doc_line) in sorted(self.h.decls.items()):
            if key not in self.lock_decls:
                self.errors.append(
                    f"docs/LOCK_ORDER.md:{doc_line}: [lock-decl] "
                    f"documented lock object '{key}' no longer exists in "
                    "src/; remove the stale line",
                )
            elif tier not in tier_names:
                self.errors.append(
                    f"docs/LOCK_ORDER.md:{doc_line}: [lock-decl] "
                    f"'{key}' names unknown tier '{tier}' (not in the "
                    "lock-tiers block)",
                )

    def finish_lock_graph(self):
        """R8: propagate acquisitions through the call graph and check
        calls-while-holding against the declared edges."""
        # Bare-name keying cannot tell two same-named functions apart;
        # a multiply-defined name would merge unrelated acquisition sets
        # and flag chains that no real control flow takes. Treat such
        # names as opaque (no facts) rather than guess.
        ambiguous = {fn for fn, n in self.fn_defs.items() if n > 1}
        # Transitive closure: tiers a function may acquire through any
        # chain of calls (fixpoint; the graph is small).
        acq = {
            fn: set(tiers)
            for fn, tiers in self.fn_acquires.items()
            if fn not in ambiguous
        }
        changed = True
        while changed:
            changed = False
            for fn, callees in self.fn_calls.items():
                if fn in ambiguous:
                    continue
                mine = acq.setdefault(fn, set())
                before = len(mine)
                for callee in callees:
                    if callee == fn or callee in ambiguous:
                        continue
                    mine.update(acq.get(callee, ()))
                if len(mine) != before:
                    changed = True
        reported = set()
        for path, line, tier, holder_expr, callee in self.held_calls:
            for target in sorted(acq.get(callee, ())):
                if target == tier:
                    continue  # same-tier nesting is R3's (per-file) call
                if (tier, target) in self.h.allowed:
                    self.observed_edges.add((tier, target))
                    continue
                if target in self.h.leaves:
                    # Leaf tiers may by definition be taken under any
                    # lock; reaching one through a call chain needs no
                    # per-edge declaration.
                    continue
                dedup = (path, line, tier, target, callee)
                if dedup in reported:
                    continue
                reported.add(dedup)
                self.error(
                    path, line, "lock-graph",
                    f"call to '{callee}()' while holding tier '{tier}' "
                    f"('{holder_expr}') may acquire tier '{target}' "
                    "(directly or through its callees); declare the "
                    f"'{tier} -> {target}' edge in docs/LOCK_ORDER.md or "
                    "restructure to drop the lock first",
                )
        # Completeness in the other direction: a declared edge nothing in
        # the tree exercises anymore is stale documentation. Advisory
        # only — the extraction is heuristic, so absence of evidence is
        # not proof.
        for a, b in sorted(self.h.direct_edges - self.observed_edges):
            if b in self.h.leaves:
                # Into-leaf edges are only ever observed as direct
                # nestings (R8 skips leaf targets on purpose), so absence
                # here means nothing.
                continue
            self.warnings.append(
                f"docs/LOCK_ORDER.md: [lock-graph] declared edge "
                f"'{a} -> {b}' was not observed anywhere in the tree "
                "(stale, or reached through code the extractor cannot "
                "see)",
            )

    def finish_metrics(self):
        for name, (path, line) in sorted(self.metrics_used.items()):
            if name not in self.metric_names:
                self.error(
                    path, line, "metric-name",
                    f"metric '{name}' is not registered in docs/METRICS.md",
                )
        used = set(self.metrics_used)
        for name in sorted(self.metric_names - used):
            self.errors.append(
                f"docs/METRICS.md:1: [metric-name] metric '{name}' is "
                "registered but never used in src/",
            )


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("paths", nargs="*", default=None,
                    help="files or directories to lint (default: src/)")
    ap.add_argument("--root", default=None,
                    help="repo root (default: parent of this script)")
    ap.add_argument("--no-metrics", action="store_true",
                    help="skip the metric-registry cross-check (R5)")
    args = ap.parse_args()

    root = os.path.abspath(
        args.root or os.path.join(os.path.dirname(__file__), os.pardir))
    paths = args.paths or [os.path.join(root, "src")]

    hierarchy = parse_lock_order(os.path.join(root, "docs", "LOCK_ORDER.md"))
    metric_names = parse_metrics_doc(os.path.join(root, "docs", "METRICS.md"))

    files = []
    for p in paths:
        p = os.path.abspath(p)
        if os.path.isdir(p):
            for dirpath, _, names in sorted(os.walk(p)):
                for n in sorted(names):
                    if n.endswith((".h", ".cc", ".cpp", ".hpp")):
                        files.append(os.path.join(dirpath, n))
        else:
            files.append(p)

    linter = Linter(hierarchy, metric_names, root)
    for f in files:
        linter.lint_file(f)
    tree_run = any(
        os.path.relpath(f, root).startswith("src") for f in files)
    if tree_run:
        linter.finish_lock_decls()
        linter.finish_lock_graph()
    if not args.no_metrics and tree_run:
        linter.finish_metrics()

    for w in linter.warnings:
        print(f"warning: {w}", file=sys.stderr)
    for e in linter.errors:
        print(e)
    if linter.errors:
        print(f"lint_protocol: {len(linter.errors)} error(s)",
              file=sys.stderr)
        return 1
    print(f"lint_protocol: OK ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
