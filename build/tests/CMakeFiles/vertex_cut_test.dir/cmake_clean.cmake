file(REMOVE_RECURSE
  "CMakeFiles/vertex_cut_test.dir/vertex_cut_test.cc.o"
  "CMakeFiles/vertex_cut_test.dir/vertex_cut_test.cc.o.d"
  "vertex_cut_test"
  "vertex_cut_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vertex_cut_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
