#include "algos/coloring.h"

#include <unordered_set>

namespace serigraph {

int64_t SmallestFreeColor(std::span<const int64_t> taken) {
  // The answer is at most |taken|, so a presence bitmap of that size
  // suffices.
  const size_t n = taken.size();
  std::vector<bool> used(n + 1, false);
  for (int64_t c : taken) {
    if (c >= 0 && static_cast<size_t>(c) <= n) used[c] = true;
  }
  for (size_t c = 0; c <= n; ++c) {
    if (!used[c]) return static_cast<int64_t>(c);
  }
  return static_cast<int64_t>(n);  // unreachable
}

bool IsProperColoring(const Graph& graph, std::span<const int64_t> colors) {
  if (static_cast<VertexId>(colors.size()) != graph.num_vertices()) {
    return false;
  }
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    if (colors[v] < 0) return false;
    for (VertexId u : graph.OutNeighbors(v)) {
      if (colors[u] == colors[v]) return false;
    }
  }
  return true;
}

int64_t CountColors(std::span<const int64_t> colors) {
  std::unordered_set<int64_t> distinct(colors.begin(), colors.end());
  distinct.erase(kNoColor);
  return static_cast<int64_t>(distinct.size());
}

std::vector<int64_t> RepairColoringColors(
    std::span<const RepairColoring::State> states) {
  std::vector<int64_t> colors;
  colors.reserve(states.size());
  for (const auto& state : states) colors.push_back(state.color);
  return colors;
}

}  // namespace serigraph
