#ifndef SERIGRAPH_OBS_INTROSPECT_H_
#define SERIGRAPH_OBS_INTROSPECT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "graph/types.h"
#include "obs/waitfor.h"

namespace serigraph {

/// What a worker's compute side is doing right now, published via its
/// beacon. Blocked phases (kForkWait) are the ones the watchdog inspects
/// for wait-for edges; kBarrierWait/kFlushWait are the engine's normal
/// end-of-superstep synchronization.
enum class WorkerPhase : uint8_t {
  kIdle = 0,
  kCompute = 1,
  kForkWait = 2,
  kFlushWait = 3,
  kBarrierWait = 4,
};

const char* WorkerPhaseName(WorkerPhase phase);

/// Aggregate wait-time attribution for one contended resource
/// (philosopher id: a partition under partition-based locking, a vertex
/// under vertex-based locking / GAS).
struct ContentionEntry {
  int64_t resource = -1;
  int64_t count = 0;         ///< blocked acquires that waited on it
  int64_t total_wait_us = 0;
  int64_t max_wait_us = 0;
};

/// Wait-time attribution for one edge of the wait-for graph: acquiring
/// `waiter` was blocked on the fork shared with `blocker`.
struct EdgeContentionEntry {
  int64_t waiter = -1;
  int64_t blocker = -1;
  int64_t count = 0;
  int64_t total_wait_us = 0;
};

/// One coherent read of a worker's beacon (the watchdog's view). Fields
/// are sampled individually from relaxed atomics, so a snapshot can mix
/// states across a phase change — the watchdog tolerates that by
/// requiring persistence across samples before alarming.
struct BeaconSnapshot {
  static constexpr int kMaxWaitTargets = 16;

  WorkerPhase phase = WorkerPhase::kIdle;
  int superstep = 0;
  /// Tracer::NowMicros() when the current phase was entered.
  int64_t phase_since_us = 0;
  /// Monotonic per-worker progress counter: bumped on every vertex
  /// execution, completed fork acquisition, and superstep completion.
  uint64_t progress_epoch = 0;
  /// Philosopher currently being acquired (-1 when not in kForkWait).
  int64_t acquiring = -1;
  /// Worker currently holding the global token (-1 for lock techniques).
  int64_t token_holder = -1;
  /// Transport inbox depth / buffered outgoing bytes; filled by the
  /// watchdog via the queue probe, 0 when no probe is registered.
  int64_t inbox_depth = 0;
  int64_t outbox_bytes = 0;
  /// Missing forks published at wait entry: the neighbor philosopher the
  /// fork is shared with and the worker that owns it. `wait_total` may
  /// exceed kMaxWaitTargets; only the first kMaxWaitTargets are listed.
  int wait_count = 0;
  int wait_total = 0;
  int64_t wait_resource[kMaxWaitTargets] = {};
  int32_t wait_owner[kMaxWaitTargets] = {};
};

/// Process-wide runtime introspection hub: per-worker state beacons, a
/// fork-contention profile, and the abort channel the watchdog uses to
/// convert confirmed stalls into clean run failures.
///
/// Same design contract as the Tracer (obs/trace.h): when disabled, every
/// hook is one relaxed atomic load and a branch; when enabled, beacon
/// updates are a handful of relaxed stores by the owning worker thread
/// (no locks), and only the contention profile takes a per-worker mutex —
/// on the already-blocked acquire path, never on uncontended acquires.
///
/// Lifecycle: an engine run calls Configure() (which clears all state
/// from the previous run), Enable(), and Disable() at teardown. Exactly
/// one run may use the introspector at a time.
class Introspector {
 public:
  static constexpr int kMaxWaitTargets = BeaconSnapshot::kMaxWaitTargets;

  struct WaitTarget {
    int64_t resource = -1;
    int32_t owner = -1;
  };

  static Introspector& Get();

  /// Fast global check, inlined into every hook call site.
  // mo: on/off gate; stale reads tolerated
  static bool enabled() { return enabled_.load(std::memory_order_relaxed); }

  /// Sizes the beacon array and clears beacons, contention, and the abort
  /// flag. `resource_kind` labels philosopher ids in reports
  /// ("partition" or "vertex"). Must not race with hooks or the watchdog.
  void Configure(int num_workers, std::string resource_kind);

  // mo: on/off gate; stale reads tolerated
  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  // mo: on/off gate; stale reads tolerated
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }

  int num_workers() const { return num_workers_; }
  const std::string& resource_kind() const { return resource_kind_; }

  // --- beacon updates (called from worker threads) --------------------

  void SetPhase(WorkerId w, WorkerPhase phase, int superstep);

  /// Worker `w` is entering a blocked fork acquisition of `resource`,
  /// missing `total` forks; the first `count` (<= kMaxWaitTargets) are
  /// published as wait-for edges.
  void BeginAcquire(WorkerId w, int64_t resource, const WaitTarget* targets,
                    int count, int total);

  /// The acquisition of `resource` finished (acquired=true) or was
  /// abandoned because of an abort (acquired=false): clears the wait
  /// edges, attributes `wait_us` to the contention profile, and counts
  /// progress.
  void EndAcquire(WorkerId w, int64_t resource, int64_t wait_us,
                  bool acquired);

  /// Bumps `w`'s progress epoch (vertex executed, superstep completed).
  void OnProgress(WorkerId w);

  void SetTokenHolder(WorkerId w, int64_t holder);

  /// Direct contention attribution for engines that block on plain locks
  /// rather than ChandyMisraTable (the GAS engine's neighborhood locks).
  void RecordWait(WorkerId w, int64_t resource, int64_t wait_us);

  // --- watchdog-side reads --------------------------------------------

  BeaconSnapshot ReadBeacon(WorkerId w) const;

  /// Assembles the instantaneous wait-for graph from all beacons
  /// currently in kForkWait.
  WaitForGraph BuildWaitForGraph() const;

  /// Top `k` resources by total attributed wait time.
  std::vector<ContentionEntry> ContentionTopK(int k) const;

  /// Top `k` wait-for-graph edges by total attributed wait time.
  std::vector<EdgeContentionEntry> EdgeContentionTopK(int k) const;

  // --- queue-depth probe ----------------------------------------------

  /// The engine registers a probe so the watchdog can sample transport
  /// inbox depth and buffered outbox bytes per worker. The probe runs on
  /// the watchdog thread; it must be cleared before the probed objects
  /// are destroyed.
  using QueueProbe =
      std::function<void(WorkerId w, int64_t* inbox_depth,
                         int64_t* outbox_bytes)>;
  void SetQueueProbe(QueueProbe probe);
  void ClearQueueProbe();
  /// Invokes the probe if registered; otherwise leaves outputs at 0.
  void ProbeQueues(WorkerId w, int64_t* inbox_depth,
                   int64_t* outbox_bytes) const;

  // --- abort channel ----------------------------------------------------

  /// Requests a clean abort of the current run (watchdog: confirmed
  /// stall/deadlock). Blocked acquires return without their forks, and
  /// the engine converts the flag into Status::Aborted at the next
  /// barrier. First caller wins; later reasons are dropped.
  void RequestAbort(const std::string& reason);
  bool abort_requested() const {
    return abort_requested_.load(std::memory_order_acquire);
  }
  std::string abort_reason() const;

 private:
  /// All fields are relaxed atomics written by the owning worker thread
  /// and read by the watchdog: torn multi-field reads are acceptable for
  /// monitoring and TSan-clean by construction (no seqlock games).
  struct Beacon {
    std::atomic<uint8_t> phase{0};
    std::atomic<int> superstep{0};
    std::atomic<int64_t> phase_since_us{0};
    std::atomic<uint64_t> progress_epoch{0};
    std::atomic<int64_t> acquiring{-1};
    std::atomic<int64_t> token_holder{-1};
    std::atomic<int> wait_count{0};
    std::atomic<int> wait_total{0};
    std::atomic<int64_t> wait_resource[kMaxWaitTargets];
    std::atomic<int32_t> wait_owner[kMaxWaitTargets];
  };

  struct ContentionCell {
    int64_t count = 0;
    int64_t total_wait_us = 0;
    int64_t max_wait_us = 0;
  };

  /// Sharded per worker: a shard is only written by its worker's compute
  /// threads, so the mutex is effectively uncontended (the watchdog takes
  /// it briefly to merge).
  struct ContentionShard {
    mutable sy::Mutex mu;
    std::unordered_map<int64_t, ContentionCell> by_resource SY_GUARDED_BY(mu);
    std::map<std::pair<int64_t, int64_t>, ContentionCell> by_edge
        SY_GUARDED_BY(mu);
  };

  Introspector() = default;

  static std::atomic<bool> enabled_;

  int num_workers_ = 0;
  std::string resource_kind_ = "resource";
  std::vector<std::unique_ptr<Beacon>> beacons_;
  std::vector<std::unique_ptr<ContentionShard>> contention_;

  mutable sy::Mutex probe_mu_;
  QueueProbe queue_probe_ SY_GUARDED_BY(probe_mu_);

  std::atomic<bool> abort_requested_{false};
  mutable sy::Mutex abort_mu_;
  std::string abort_reason_ SY_GUARDED_BY(abort_mu_);
};

}  // namespace serigraph

#endif  // SERIGRAPH_OBS_INTROSPECT_H_
