#!/usr/bin/env bash
# Exercises scripts/lint_protocol.py against the planted-violation
# fixtures: every bad fixture must fail with a diagnostic pointing at
# its planted line, and the clean fixture must pass. Run from anywhere;
# the repo root is derived from this script's location.
set -u

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/../.." && pwd)"
LINT="python3 ${ROOT}/scripts/lint_protocol.py --root ${ROOT} --no-metrics"
FIXTURES="${ROOT}/tests/lint_fixtures"
failures=0

# expect_fail <fixture> <rule-tag> <line>
expect_fail() {
  local fixture="$1" rule="$2" line="$3"
  local out
  out="$(${LINT} "${FIXTURES}/${fixture}" 2>&1)"
  local status=$?
  if [ "${status}" -eq 0 ]; then
    echo "FAIL: ${fixture}: linter exited 0, expected nonzero"
    failures=$((failures + 1))
    return
  fi
  if ! echo "${out}" | grep -q "${fixture}:${line}: \[${rule}\]"; then
    echo "FAIL: ${fixture}: no [${rule}] diagnostic at line ${line}; got:"
    echo "${out}"
    failures=$((failures + 1))
    return
  fi
  echo "PASS: ${fixture} -> [${rule}] at line ${line}"
}

expect_fail naked_mutex.cc naked-mutex 15
expect_fail acquire_without_release.cc acquire-without-release 10
expect_fail lock_order_inversion.cc lock-order 20
expect_fail relaxed_no_mo.cc memory-order 18

out="$(${LINT} "${FIXTURES}/clean.cc" 2>&1)"
if [ $? -ne 0 ]; then
  echo "FAIL: clean.cc: linter exited nonzero; got:"
  echo "${out}"
  failures=$((failures + 1))
else
  echo "PASS: clean.cc lints clean"
fi

if [ "${failures}" -ne 0 ]; then
  echo "${failures} fixture test(s) failed"
  exit 1
fi
echo "all lint fixture tests passed"
