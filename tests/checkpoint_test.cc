// Fault-tolerance tests (paper Section 6.4): checkpoint frames round-trip
// through disk, corrupt files are rejected, and an engine restored from a
// mid-run checkpoint finishes with the same result as an uninterrupted
// run.

#include "pregel/checkpoint.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "algos/coloring.h"
#include "algos/sssp.h"
#include "fault/fault.h"
#include "graph/generators.h"
#include "pregel/engine.h"

namespace serigraph {
namespace {

std::string TempPath(const char* name) {
  return testing::TempDir() + "/" + name;
}

TEST(CheckpointFrameTest, RoundTrip) {
  CheckpointFrame frame;
  frame.superstep = 17;
  frame.payload = {1, 2, 3, 250, 0};
  const std::string path = TempPath("frame.bin");
  ASSERT_TRUE(WriteCheckpoint(path, frame).ok());
  auto loaded = ReadCheckpoint(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->superstep, 17);
  EXPECT_EQ(loaded->payload, frame.payload);
  std::remove(path.c_str());
}

TEST(CheckpointFrameTest, RejectsBadMagic) {
  const std::string path = TempPath("garbage.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a checkpoint";
  }
  EXPECT_FALSE(ReadCheckpoint(path).ok());
  std::remove(path.c_str());
}

TEST(CheckpointFrameTest, RejectsTruncatedPayload) {
  CheckpointFrame frame;
  frame.superstep = 1;
  frame.payload.assign(100, 7);
  const std::string path = TempPath("trunc.bin");
  ASSERT_TRUE(WriteCheckpoint(path, frame).ok());
  // Chop the file.
  {
    std::ifstream in(path, std::ios::binary);
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() - 10));
  }
  EXPECT_FALSE(ReadCheckpoint(path).ok());
  std::remove(path.c_str());
}

TEST(CheckpointFrameTest, MissingFileIsError) {
  EXPECT_FALSE(ReadCheckpoint(TempPath("nope.bin")).ok());
}

TEST(CheckpointFrameTest, RejectsPayloadBitFlip) {
  // A flipped payload byte leaves magic, version, and size intact; only
  // the CRC catches it.
  CheckpointFrame frame;
  frame.superstep = 3;
  frame.payload.assign(64, 0x5a);
  const std::string path = TempPath("bitflip.bin");
  ASSERT_TRUE(WriteCheckpoint(path, frame).ok());
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(-1, std::ios::end);  // last payload byte
    f.put(static_cast<char>(0x5a ^ 0x01));
  }
  auto loaded = ReadCheckpoint(path);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

TEST(CheckpointFrameTest, WriteRotatesPreviousGeneration) {
  CheckpointFrame first;
  first.superstep = 1;
  first.payload = {1, 1, 1};
  CheckpointFrame second;
  second.superstep = 2;
  second.payload = {2, 2, 2};
  const std::string path = TempPath("rotate.bin");
  const std::string prev = path + CheckpointPrevSuffix();
  ASSERT_TRUE(WriteCheckpoint(path, first).ok());
  ASSERT_TRUE(WriteCheckpoint(path, second).ok());
  auto latest = ReadCheckpoint(path);
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest->superstep, 2);
  auto rotated = ReadCheckpoint(prev);
  ASSERT_TRUE(rotated.ok());
  EXPECT_EQ(rotated->superstep, 1);
  std::remove(path.c_str());
  std::remove(prev.c_str());
}

TEST(CheckpointFrameTest, FallbackReadsPrevWhenLatestIsCorrupt) {
  CheckpointFrame good;
  good.superstep = 4;
  good.payload = {9, 9};
  const std::string path = TempPath("fallback.bin");
  const std::string prev = path + CheckpointPrevSuffix();
  ASSERT_TRUE(WriteCheckpoint(path, good).ok());
  CheckpointFrame newer;
  newer.superstep = 6;
  newer.payload = {8, 8};
  ASSERT_TRUE(WriteCheckpoint(path, newer).ok());
  // Corrupt the latest generation in place.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "SGCK but torn";
  }
  std::string source;
  auto loaded = ReadCheckpointWithFallback(path, &source);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->superstep, 4);
  EXPECT_EQ(source, prev);
  std::remove(path.c_str());
  std::remove(prev.c_str());
}

TEST(CheckpointFrameTest, FallbackFailsWhenBothGenerationsAreBad) {
  const std::string path = TempPath("bothbad.bin");
  EXPECT_FALSE(ReadCheckpointWithFallback(path, nullptr).ok());
  {
    std::ofstream out(path, std::ios::binary);
    out << "junk";
  }
  EXPECT_FALSE(ReadCheckpointWithFallback(path, nullptr).ok());
  std::remove(path.c_str());
}

TEST(CheckpointFrameTest, InjectedWriteFaultsBehaveLikeABadDisk) {
  CheckpointFrame frame;
  frame.superstep = 5;
  frame.payload.assign(256, 0x11);
  const std::string path = TempPath("faulty.bin");

  // kFail: the write errors out and leaves no file behind.
  {
    FaultPlan plan;
    FaultEvent fail;
    fail.action = FaultAction::kCkptFail;
    plan.events.push_back(fail);
    FaultInjector::Get().Arm(plan);
    EXPECT_FALSE(WriteCheckpoint(path, frame).ok());
    FaultInjector::Get().Disarm();
    EXPECT_FALSE(ReadCheckpoint(path).ok());
  }

  // kTorn: the write reports success but the frame must fail validation.
  {
    FaultPlan plan;
    FaultEvent torn;
    torn.action = FaultAction::kCkptTorn;
    plan.events.push_back(torn);
    FaultInjector::Get().Arm(plan);
    EXPECT_TRUE(WriteCheckpoint(path, frame).ok());
    FaultInjector::Get().Disarm();
    EXPECT_FALSE(ReadCheckpoint(path).ok());
  }
  std::remove(path.c_str());
}

TEST(EngineCheckpointTest, RestoreFinishesWithSameResult) {
  // Deterministic workload: SSSP under BSP. Run once uninterrupted; run
  // again with checkpoints; then restore from the last checkpoint and
  // verify the final distances match.
  auto g = Graph::FromEdgeList(ErdosRenyi(400, 1600, 31));
  ASSERT_TRUE(g.ok());
  Graph graph = std::move(g).value();

  EngineOptions base;
  base.model = ComputationModel::kBsp;
  base.num_workers = 3;
  base.partitions_per_worker = 2;

  Engine<Sssp> uninterrupted(&graph, base);
  auto full = uninterrupted.Run(Sssp(0));
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(full->stats.converged);
  ASSERT_GT(full->stats.supersteps, 4);  // checkpoints must fire mid-run

  EngineOptions with_ckpt = base;
  with_ckpt.checkpoint_every = 3;
  with_ckpt.checkpoint_dir = testing::TempDir();
  Engine<Sssp> writer(&graph, with_ckpt);
  auto first = writer.Run(Sssp(0));
  ASSERT_TRUE(first.ok());
  ASSERT_FALSE(writer.last_checkpoint_path().empty());
  EXPECT_EQ(first->values, full->values);

  EngineOptions restore = base;
  restore.restore_path = writer.last_checkpoint_path();
  Engine<Sssp> restored(&graph, restore);
  auto resumed = restored.Run(Sssp(0));
  ASSERT_TRUE(resumed.ok());
  EXPECT_TRUE(resumed->stats.converged);
  EXPECT_EQ(resumed->values, full->values);
  // The resumed run continued from the checkpoint, not from scratch.
  EXPECT_EQ(resumed->stats.supersteps, full->stats.supersteps);
  std::remove(writer.last_checkpoint_path().c_str());
}

TEST(EngineCheckpointTest, RestoreFromEarlierCheckpointAlsoFinishes) {
  // Restoring from a checkpoint that is NOT the last one replays more
  // supersteps but must land on the same (deterministic, BSP) result.
  auto g = Graph::FromEdgeList(ErdosRenyi(300, 1200, 37));
  ASSERT_TRUE(g.ok());
  Graph graph = std::move(g).value();

  EngineOptions base;
  base.model = ComputationModel::kBsp;
  base.num_workers = 2;

  Engine<Sssp> full(&graph, base);
  auto expected = full.Run(Sssp(0));
  ASSERT_TRUE(expected.ok());
  ASSERT_GT(expected->stats.supersteps, 4);

  EngineOptions with_ckpt = base;
  with_ckpt.checkpoint_every = 2;
  with_ckpt.checkpoint_dir = testing::TempDir();
  Engine<Sssp> writer(&graph, with_ckpt);
  ASSERT_TRUE(writer.Run(Sssp(0)).ok());

  // The *first* checkpoint (superstep 2), not the last.
  const std::string early = testing::TempDir() + "/checkpoint_2.bin";
  EngineOptions restore = base;
  restore.restore_path = early;
  Engine<Sssp> restored(&graph, restore);
  auto resumed = restored.Run(Sssp(0));
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  EXPECT_TRUE(resumed->stats.converged);
  EXPECT_EQ(resumed->values, expected->values);
  std::remove(early.c_str());
  std::remove(writer.last_checkpoint_path().c_str());
}

TEST(EngineCheckpointTest, RestoreUnderSerializableTechnique) {
  auto g = Graph::FromEdgeList(ErdosRenyi(200, 900, 33));
  ASSERT_TRUE(g.ok());
  Graph graph = g->Undirected();

  EngineOptions opts;
  opts.sync_mode = SyncMode::kPartitionLocking;
  opts.num_workers = 2;
  opts.checkpoint_every = 1;
  opts.checkpoint_dir = testing::TempDir();
  Engine<GreedyColoring> writer(&graph, opts);
  auto first = writer.Run(GreedyColoring());
  ASSERT_TRUE(first.ok());
  ASSERT_FALSE(writer.last_checkpoint_path().empty());

  EngineOptions restore;
  restore.sync_mode = SyncMode::kPartitionLocking;
  restore.num_workers = 2;
  restore.restore_path = writer.last_checkpoint_path();
  Engine<GreedyColoring> restored(&graph, restore);
  auto resumed = restored.Run(GreedyColoring());
  ASSERT_TRUE(resumed.ok());
  EXPECT_TRUE(resumed->stats.converged);
  // Fork placement resets on restore, so colors may differ, but the
  // result must still be a proper coloring.
  EXPECT_TRUE(IsProperColoring(graph, resumed->values));
  std::remove(writer.last_checkpoint_path().c_str());
}

TEST(EngineCheckpointTest, MismatchedGraphIsRejected) {
  auto g1 = Graph::FromEdgeList(Ring(16));
  auto g2 = Graph::FromEdgeList(Ring(20));
  ASSERT_TRUE(g1.ok() && g2.ok());

  EngineOptions opts;
  opts.model = ComputationModel::kBsp;
  opts.num_workers = 1;
  opts.checkpoint_every = 1;
  opts.checkpoint_dir = testing::TempDir();
  Engine<Sssp> writer(&*g1, opts);
  ASSERT_TRUE(writer.Run(Sssp(0)).ok());
  ASSERT_FALSE(writer.last_checkpoint_path().empty());

  EngineOptions restore;
  restore.model = ComputationModel::kBsp;
  restore.num_workers = 1;
  restore.restore_path = writer.last_checkpoint_path();
  Engine<Sssp> restored(&*g2, restore);
  auto result = restored.Run(Sssp(0));
  EXPECT_FALSE(result.ok());
  std::remove(writer.last_checkpoint_path().c_str());
}

TEST(EngineCheckpointTest, NonCheckpointableProgramIsRejected) {
  // RepairColoring's vertex value owns a vector => not trivially
  // copyable => checkpointing must be refused, not miscompiled.
  auto g = Graph::FromEdgeList(PaperExampleGraph());
  ASSERT_TRUE(g.ok());
  EngineOptions opts;
  opts.num_workers = 1;
  opts.checkpoint_every = 1;
  opts.checkpoint_dir = testing::TempDir();
  Engine<RepairColoring> engine(&*g, opts);
  auto result = engine.Run(RepairColoring());
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnimplemented);
}

}  // namespace
}  // namespace serigraph
