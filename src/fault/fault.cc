#include "fault/fault.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/logging.h"
#include "common/rng.h"

namespace serigraph {
namespace {

/// MessageKind names accepted by the `kind=` key (mirrors net/message.h;
/// kept as strings here so the fault library does not depend on net/).
int ParseKind(const std::string& value) {
  if (value == "data") return 0;
  if (value == "control") return 1;
  if (value == "flush") return 2;
  if (value == "ack") return 3;
  if (value == "loading") return 4;
  return -2;
}

const char* KindName(int kind) {
  switch (kind) {
    case 0: return "data";
    case 1: return "control";
    case 2: return "flush";
    case 3: return "ack";
    case 4: return "loading";
    default: return "any";
  }
}

bool ParseInt64(const std::string& value, int64_t* out) {
  if (value.empty()) return false;
  char* end = nullptr;
  const long long v = std::strtoll(value.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = static_cast<int64_t>(v);
  return true;
}

}  // namespace

const char* FaultActionName(FaultAction action) {
  switch (action) {
    case FaultAction::kCrash: return "crash";
    case FaultAction::kHang: return "hang";
    case FaultAction::kDrop: return "drop";
    case FaultAction::kDuplicate: return "dup";
    case FaultAction::kDelay: return "delay";
    case FaultAction::kCkptFail: return "ckpt-fail";
    case FaultAction::kCkptTorn: return "ckpt-torn";
  }
  return "?";
}

std::string FaultEvent::ToString() const {
  std::ostringstream os;
  os << FaultActionName(action);
  if (!point.empty()) os << " point=" << point;
  if (worker >= 0) os << " worker=" << worker;
  if (src >= 0) os << " src=" << src;
  if (dst >= 0) os << " dst=" << dst;
  if (kind >= 0) os << " kind=" << KindName(kind);
  if (delay_us > 0) os << " us=" << delay_us;
  os << " hit=" << hit;
  if (count != 1) os << " count=" << count;
  return os.str();
}

std::string FaultPlan::ToString() const {
  std::string out;
  for (const FaultEvent& event : events) {
    out += event.ToString();
    out += '\n';
  }
  return out;
}

StatusOr<FaultPlan> FaultPlan::Parse(const std::string& text) {
  FaultPlan plan;
  std::istringstream lines(text);
  std::string line;
  int line_no = 0;
  while (std::getline(lines, line)) {
    ++line_no;
    const auto fail = [&](const std::string& why) {
      return Status::InvalidArgument("fault plan line " +
                                     std::to_string(line_no) + ": " + why);
    };
    std::istringstream tokens(line);
    std::string action_name;
    if (!(tokens >> action_name) || action_name[0] == '#') continue;

    FaultEvent event;
    if (action_name == "crash") {
      event.action = FaultAction::kCrash;
    } else if (action_name == "hang") {
      event.action = FaultAction::kHang;
    } else if (action_name == "drop") {
      event.action = FaultAction::kDrop;
    } else if (action_name == "dup") {
      event.action = FaultAction::kDuplicate;
    } else if (action_name == "delay") {
      event.action = FaultAction::kDelay;
    } else if (action_name == "ckpt-fail") {
      event.action = FaultAction::kCkptFail;
    } else if (action_name == "ckpt-torn") {
      event.action = FaultAction::kCkptTorn;
    } else {
      return fail("unknown action '" + action_name + "'");
    }

    std::string token;
    while (tokens >> token) {
      const size_t eq = token.find('=');
      if (eq == std::string::npos) return fail("expected key=value, got '" + token + "'");
      const std::string key = token.substr(0, eq);
      const std::string value = token.substr(eq + 1);
      int64_t num = 0;
      if (key == "point") {
        event.point = value;
      } else if (key == "kind") {
        event.kind = ParseKind(value);
        if (event.kind == -2) return fail("unknown kind '" + value + "'");
      } else if (ParseInt64(value, &num)) {
        if (key == "worker") {
          event.worker = static_cast<int>(num);
        } else if (key == "hit") {
          event.hit = num;
        } else if (key == "count") {
          event.count = num;
        } else if (key == "us") {
          event.delay_us = num;
        } else if (key == "src") {
          event.src = static_cast<int>(num);
        } else if (key == "dst") {
          event.dst = static_cast<int>(num);
        } else {
          return fail("unknown key '" + key + "'");
        }
      } else {
        return fail("bad value for '" + key + "': '" + value + "'");
      }
    }

    const bool is_pointed = event.action == FaultAction::kCrash ||
                            event.action == FaultAction::kHang;
    if (is_pointed && event.point.empty()) {
      return fail("crash/hang require point=");
    }
    if (!is_pointed && !event.point.empty()) {
      return fail("point= only applies to crash/hang");
    }
    if (event.hit < 1 || event.count < 1) {
      return fail("hit and count must be >= 1");
    }
    if (event.action == FaultAction::kDelay && event.delay_us <= 0) {
      return fail("delay requires us=<positive microseconds>");
    }
    plan.events.push_back(std::move(event));
  }
  return plan;
}

StatusOr<FaultPlan> FaultPlan::ParseFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open fault plan: " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return Parse(text.str());
}

FaultPlan FaultPlan::Random(uint64_t seed, int num_workers) {
  FaultPlan plan;
  Rng rng(seed ^ 0xfa017c0de5ULL);
  const int workers = std::max(1, num_workers);

  // Injection points that exist under every technique come first; the
  // technique-specific ones simply never match (the plan is then a no-op
  // for that event), which keeps Random() usable for any configuration.
  static const char* const kPoints[] = {
      "engine.superstep_start", "engine.post_compute", "engine.pre_barrier",
      "engine.pre_checkpoint",  "cm.acquire",          "token.pass",
  };
  const int num_faults = 1 + static_cast<int>(rng.Uniform(2));
  for (int i = 0; i < num_faults; ++i) {
    FaultEvent event;
    event.action =
        rng.Uniform(4) == 0 ? FaultAction::kHang : FaultAction::kCrash;
    event.point = kPoints[rng.Uniform(sizeof(kPoints) / sizeof(kPoints[0]))];
    // Pin the worker so concurrent match counting stays deterministic.
    event.worker = static_cast<int>(rng.Uniform(workers));
    event.hit = 1 + static_cast<int64_t>(rng.Uniform(5));
    plan.events.push_back(std::move(event));
  }
  if (rng.Uniform(2) == 0) {
    FaultEvent wire;
    const uint64_t pick = rng.Uniform(3);
    wire.action = pick == 0   ? FaultAction::kDrop
                  : pick == 1 ? FaultAction::kDuplicate
                              : FaultAction::kDelay;
    if (wire.action == FaultAction::kDelay) {
      wire.delay_us = 1000 + static_cast<int64_t>(rng.Uniform(50000));
    }
    wire.hit = 1 + static_cast<int64_t>(rng.Uniform(20));
    wire.count = 1 + static_cast<int64_t>(rng.Uniform(3));
    plan.events.push_back(std::move(wire));
  }
  return plan;
}

int64_t RetryPolicy::BackoffMs(int failures) const {
  double backoff = static_cast<double>(initial_backoff_ms);
  for (int i = 0; i < failures; ++i) backoff *= multiplier;
  backoff = std::min(backoff, static_cast<double>(max_backoff_ms));
  return static_cast<int64_t>(backoff);
}

std::atomic<bool> FaultInjector::armed_{false};

FaultInjector& FaultInjector::Get() {
  static FaultInjector* instance = new FaultInjector();
  return *instance;
}

void FaultInjector::Arm(const FaultPlan& plan) {
  sy::MutexLock lock(&mu_);
  slots_.clear();
  for (const FaultEvent& event : plan.events) {
    slots_.push_back(Slot{event, 0});
  }
  fired_ = 0;
  fired_log_.clear();
  ++hang_epoch_;  // release any stragglers from a previous plan
  hang_cv_.NotifyAll();
  armed_.store(true, std::memory_order_release);
}

void FaultInjector::Disarm() {
  sy::MutexLock lock(&mu_);
  armed_.store(false, std::memory_order_release);
  slots_.clear();
  crash_handler_ = nullptr;
  ++hang_epoch_;
  hang_cv_.NotifyAll();
}

void FaultInjector::SetCrashHandler(CrashHandler handler) {
  sy::MutexLock lock(&mu_);
  crash_handler_ = std::move(handler);
}

bool FaultInjector::MatchLocked(Slot& slot) {
  const int64_t n = ++slot.matches;
  return n >= slot.event.hit && n < slot.event.hit + slot.event.count;
}

void FaultInjector::RecordFiredLocked(const FaultEvent& event, int worker) {
  ++fired_;
  std::string entry = event.ToString();
  if (worker >= 0 && event.worker < 0) {
    entry += " (worker " + std::to_string(worker) + ")";
  }
  fired_log_.push_back(std::move(entry));
}

bool FaultInjector::Hit(const char* point, int worker) {
  CrashHandler handler;
  bool crashed = false;
  {
    sy::MutexLock lock(&mu_);
    for (Slot& slot : slots_) {
      const FaultEvent& event = slot.event;
      if (event.action != FaultAction::kCrash &&
          event.action != FaultAction::kHang) {
        continue;
      }
      if (event.point != point) continue;
      if (event.worker >= 0 && event.worker != worker) continue;
      if (!MatchLocked(slot)) continue;
      RecordFiredLocked(event, worker);
      if (event.action == FaultAction::kHang) {
        const uint64_t epoch = hang_epoch_;
        while (hang_epoch_ == epoch &&
               // mo: arm gate; armed sites recheck under mu_
               armed_.load(std::memory_order_relaxed)) {
          hang_cv_.WaitFor(mu_, std::chrono::milliseconds(50));
        }
        // Released by recovery (or disarm): abandon the current work.
        return true;
      }
      crashed = true;
      handler = crash_handler_;
      break;
    }
  }
  if (crashed) {
    if (handler) {
      handler(worker, point);
    } else {
      SG_LOG(kWarning) << "fault: crash at " << point << " on worker "
                       << worker << " with no crash handler installed";
    }
  }
  return crashed;
}

WireFaultDecision FaultInjector::OnWire(int src, int dst, int kind) {
  WireFaultDecision decision;
  sy::MutexLock lock(&mu_);
  for (Slot& slot : slots_) {
    const FaultEvent& event = slot.event;
    if (event.action != FaultAction::kDrop &&
        event.action != FaultAction::kDuplicate &&
        event.action != FaultAction::kDelay) {
      continue;
    }
    if (event.src >= 0 && event.src != src) continue;
    if (event.dst >= 0 && event.dst != dst) continue;
    if (event.kind >= 0 && event.kind != kind) continue;
    if (!MatchLocked(slot)) continue;
    RecordFiredLocked(event, -1);
    switch (event.action) {
      case FaultAction::kDrop: decision.drop = true; break;
      case FaultAction::kDuplicate: decision.duplicate = true; break;
      case FaultAction::kDelay: decision.extra_delay_us += event.delay_us; break;
      default: break;
    }
  }
  return decision;
}

CheckpointFault FaultInjector::OnCheckpointWrite() {
  sy::MutexLock lock(&mu_);
  for (Slot& slot : slots_) {
    const FaultEvent& event = slot.event;
    if (event.action != FaultAction::kCkptFail &&
        event.action != FaultAction::kCkptTorn) {
      continue;
    }
    if (!MatchLocked(slot)) continue;
    RecordFiredLocked(event, -1);
    return event.action == FaultAction::kCkptFail ? CheckpointFault::kFail
                                                  : CheckpointFault::kTorn;
  }
  return CheckpointFault::kNone;
}

void FaultInjector::ReleaseHangs() {
  sy::MutexLock lock(&mu_);
  ++hang_epoch_;
  hang_cv_.NotifyAll();
}

int64_t FaultInjector::events_fired() const {
  sy::MutexLock lock(&mu_);
  return fired_;
}

std::vector<std::string> FaultInjector::fired_log() const {
  sy::MutexLock lock(&mu_);
  return fired_log_;
}

}  // namespace serigraph
