// Section 7.3 scalability: partition-based locking scales better from 16
// to 32 machines than token passing and vertex-based locking. We sweep
// workers in {4, 8, 16, 32} on the largest stand-in (UK').

#include <iostream>

#include "algos/coloring.h"
#include "harness/datasets.h"
#include "harness/runner.h"
#include "harness/table.h"

using namespace serigraph;

int main() {
  PrintHeader(std::cout,
              "Section 7.3: scalability with worker count "
              "(coloring on UK')");
  Graph graph = MakeUndirectedDataset(FindSpec("UK'"));

  TablePrinter table({"technique", "workers", "time", "supersteps",
                      "ctrl msgs", "slowdown vs 4 workers"});
  for (SyncMode sync :
       {SyncMode::kDualLayerToken, SyncMode::kPartitionLocking,
        SyncMode::kVertexLocking}) {
    double base = 0.0;
    for (int workers : {4, 8, 16, 32}) {
      RunConfig config;
      config.sync_mode = sync;
      config.num_workers = workers;
      config.network = BenchNetwork();
      std::vector<int64_t> colors;
      RunStats stats = RunProgram(graph, GreedyColoring(), config, &colors);
      SG_CHECK(IsProperColoring(graph, colors));
      if (workers == 4) base = stats.computation_seconds;
      table.AddRow(
          {SyncModeName(sync), std::to_string(workers),
           TablePrinter::Seconds(stats.computation_seconds),
           std::to_string(stats.supersteps),
           TablePrinter::Count(stats.Metric("net.control_messages")),
           TablePrinter::Ratio(stats.computation_seconds / base)});
    }
  }
  table.Print(std::cout);
  std::cout << "\npaper: serializability trades performance for guarantees, "
               "so adding workers can\nslow runs down; partition-based "
               "locking degrades the least (Section 7.3).\n";
  return 0;
}
