file(REMOVE_RECURSE
  "CMakeFiles/fig6d_wcc.dir/fig6d_wcc.cc.o"
  "CMakeFiles/fig6d_wcc.dir/fig6d_wcc.cc.o.d"
  "fig6d_wcc"
  "fig6d_wcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6d_wcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
