// Tests for Pregel-style aggregators: contributions in superstep s are
// globally reduced and visible to every vertex in superstep s+1.

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "pregel/engine.h"

namespace serigraph {
namespace {

Graph Make(const EdgeList& el) {
  auto g = Graph::FromEdgeList(el);
  EXPECT_TRUE(g.ok()) << g.status();
  return std::move(g).value();
}

/// Superstep 0: every vertex contributes 1 to a sum, its degree to a max
/// and a min. Superstep 1: every vertex stores the aggregated results.
struct AggregatingProgram {
  using VertexValue = double;
  using Message = int64_t;

  int read_slot;  // which aggregate to store in superstep 1

  VertexValue InitialValue(VertexId, const Graph&) const { return -1.0; }

  template <typename Ctx>
  void Compute(Ctx& ctx, std::span<const Message>) const {
    if (ctx.superstep() == 0) {
      ctx.AggregateSum(0, 1.0);
      ctx.AggregateMax(1, static_cast<double>(ctx.num_out_edges()));
      ctx.AggregateMin(2, static_cast<double>(ctx.num_out_edges()));
      return;  // stay active for superstep 1
    }
    ctx.set_value(ctx.AggregatedValue(read_slot));
    ctx.VoteToHalt();
  }
};

TEST(AggregatorTest, SumCountsAllVertices) {
  Graph g = Make(Ring(100));
  for (int workers : {1, 4}) {
    EngineOptions opts;
    opts.num_workers = workers;
    Engine<AggregatingProgram> engine(&g, opts);
    auto result = engine.Run(AggregatingProgram{0});
    ASSERT_TRUE(result.ok()) << result.status();
    for (double v : result->values) EXPECT_DOUBLE_EQ(v, 100.0);
    EXPECT_DOUBLE_EQ(result->stats.aggregates[0], 100.0);
  }
}

TEST(AggregatorTest, MaxAndMinOverDegrees) {
  Graph g = Make(Star(33));  // center out-degree 32, leaves 1
  EngineOptions opts;
  opts.num_workers = 3;
  {
    Engine<AggregatingProgram> engine(&g, opts);
    auto result = engine.Run(AggregatingProgram{1});
    ASSERT_TRUE(result.ok());
    for (double v : result->values) EXPECT_DOUBLE_EQ(v, 32.0);
  }
  {
    Engine<AggregatingProgram> engine(&g, opts);
    auto result = engine.Run(AggregatingProgram{2});
    ASSERT_TRUE(result.ok());
    for (double v : result->values) EXPECT_DOUBLE_EQ(v, 1.0);
  }
}

TEST(AggregatorTest, UnusedSlotReadsZero) {
  Graph g = Make(Ring(10));
  EngineOptions opts;
  opts.num_workers = 2;
  Engine<AggregatingProgram> engine(&g, opts);
  auto result = engine.Run(AggregatingProgram{5});
  ASSERT_TRUE(result.ok());
  for (double v : result->values) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(AggregatorTest, WorksUnderSerializableTechniques) {
  Graph g = Make(Ring(64)).Undirected();
  for (SyncMode sync :
       {SyncMode::kDualLayerToken, SyncMode::kPartitionLocking,
        SyncMode::kVertexLocking}) {
    EngineOptions opts;
    opts.sync_mode = sync;
    opts.num_workers = 2;
    Engine<AggregatingProgram> engine(&g, opts);
    auto result = engine.Run(AggregatingProgram{0});
    ASSERT_TRUE(result.ok()) << result.status();
    if (sync == SyncMode::kDualLayerToken) {
      // Aggregators reduce per superstep (non-sticky, Pregel default);
      // token passing spreads first executions over many supersteps, so
      // the final value is only the last superstep's contribution count.
      EXPECT_GT(result->stats.aggregates[0], 0.0);
      EXPECT_LE(result->stats.aggregates[0], 64.0);
    } else {
      // Locking techniques execute every vertex in superstep 0, so the
      // full count is reduced at the first barrier.
      EXPECT_DOUBLE_EQ(result->stats.aggregates[0], 64.0);
    }
  }
}

/// A program using a sum aggregator for global convergence detection:
/// each vertex contributes its residual; vertices halt for good when the
/// previous superstep's total residual is below a threshold.
struct ResidualProgram {
  using VertexValue = double;
  using Message = double;

  VertexValue InitialValue(VertexId, const Graph&) const { return 1.0; }

  template <typename Ctx>
  void Compute(Ctx& ctx, std::span<const Message>) const {
    if (ctx.superstep() > 0 && ctx.AggregatedValue(0) < 0.01) {
      ctx.VoteToHalt();
      return;
    }
    const double next = ctx.value() / 2.0;  // residual halves every round
    ctx.AggregateSum(0, next);
    ctx.set_value(next);
  }
};

TEST(AggregatorTest, GlobalConvergenceDetection) {
  Graph g = Make(Ring(16));
  EngineOptions opts;
  opts.num_workers = 2;
  opts.max_supersteps = 100;
  Engine<ResidualProgram> engine(&g, opts);
  auto result = engine.Run(ResidualProgram());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->stats.converged);
  // 16 vertices, residual 16/2^k < 0.01 at k = 11.
  EXPECT_GE(result->stats.supersteps, 11);
  EXPECT_LE(result->stats.supersteps, 13);
}

}  // namespace
}  // namespace serigraph
