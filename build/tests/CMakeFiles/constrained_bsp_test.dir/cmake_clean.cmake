file(REMOVE_RECURSE
  "CMakeFiles/constrained_bsp_test.dir/constrained_bsp_test.cc.o"
  "CMakeFiles/constrained_bsp_test.dir/constrained_bsp_test.cc.o.d"
  "constrained_bsp_test"
  "constrained_bsp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/constrained_bsp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
