file(REMOVE_RECURSE
  "libserigraph_sync.a"
)
