// Tests for the transaction recorder and the C1/C2/1SR checker, using
// both hand-built histories and recorder-driven ones.

#include "verify/history.h"

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace serigraph {
namespace {

Graph Make(const EdgeList& el) {
  auto g = Graph::FromEdgeList(el);
  EXPECT_TRUE(g.ok()) << g.status();
  return std::move(g).value();
}

/// Convenience builder for synthetic TxnRecords.
TxnRecord Txn(VertexId v, uint64_t start, uint64_t end, uint64_t written,
              std::vector<TxnRecord::Read> reads) {
  TxnRecord rec;
  rec.vertex = v;
  rec.worker = 0;
  rec.superstep = 0;
  rec.start = start;
  rec.end = end;
  rec.written_version = written;
  rec.reads = std::move(reads);
  return rec;
}

TEST(CheckHistoryTest, EmptyHistoryIsSerializable) {
  Graph g = Make(PaperExampleGraph());
  HistoryCheck check = CheckHistory(g, {});
  EXPECT_TRUE(check.ok());
  EXPECT_EQ(check.num_transactions, 0);
}

TEST(CheckHistoryTest, SerialFreshHistoryPasses) {
  // Path v0 - v1 (undirected). v0 writes, then v1 reads it fresh.
  Graph g = Make({2, {{0, 1}, {1, 0}}});
  std::vector<TxnRecord> records;
  records.push_back(Txn(0, 1, 2, 1, {{1, 0, 0}}));
  records.push_back(Txn(1, 3, 4, 1, {{0, 1, 1}}));
  HistoryCheck check = CheckHistory(g, records);
  EXPECT_TRUE(check.ok()) << (check.violation_samples.empty()
                                  ? "?"
                                  : check.violation_samples[0]);
}

TEST(CheckHistoryTest, StaleReadViolatesC1) {
  Graph g = Make({2, {{0, 1}, {1, 0}}});
  std::vector<TxnRecord> records;
  records.push_back(Txn(0, 1, 2, 1, {{1, 0, 0}}));
  // v1 executes after v0 committed version 1 but only saw version 0.
  records.push_back(Txn(1, 3, 4, 1, {{0, 0, 1}}));
  HistoryCheck check = CheckHistory(g, records);
  EXPECT_FALSE(check.c1_fresh_reads);
  EXPECT_EQ(check.c1_violations, 1);
  EXPECT_FALSE(check.ok());
}

TEST(CheckHistoryTest, OverlappingNeighborsViolateC2) {
  Graph g = Make({2, {{0, 1}, {1, 0}}});
  std::vector<TxnRecord> records;
  records.push_back(Txn(0, 1, 5, 1, {{1, 0, 0}}));
  records.push_back(Txn(1, 2, 4, 1, {{0, 0, 0}}));  // inside v0's interval
  HistoryCheck check = CheckHistory(g, records);
  EXPECT_FALSE(check.c2_no_neighbor_overlap);
  EXPECT_GE(check.c2_violations, 1);
}

TEST(CheckHistoryTest, NonNeighborsMayOverlap) {
  // v0 - v1 - v2 path: v0 and v2 are not adjacent, overlap is fine.
  Graph g = Make({3, {{0, 1}, {1, 0}, {1, 2}, {2, 1}}});
  std::vector<TxnRecord> records;
  records.push_back(Txn(0, 1, 5, 1, {{1, 0, 0}}));
  records.push_back(Txn(2, 2, 4, 1, {{1, 0, 0}}));
  HistoryCheck check = CheckHistory(g, records);
  EXPECT_TRUE(check.ok());
}

TEST(CheckHistoryTest, WriteSkewCycleViolates1SR) {
  // Classic write skew on neighbors u=0, v=1: both read the other's
  // initial version (0) and then both write version 1. Serialization
  // graph: T0 -> T1 (T0's read of v precedes v's writer T1) and
  // T1 -> T0 — a cycle. Give them disjoint intervals so C2 passes
  // (C2 would normally prevent this, which is the point of Theorem 1;
  // here we check that the 1SR detector catches it independently).
  Graph g = Make({2, {{0, 1}, {1, 0}}});
  std::vector<TxnRecord> records;
  records.push_back(Txn(0, 1, 2, 1, {{1, 0, 0}}));
  records.push_back(Txn(1, 3, 4, 1, {{0, 0, 0}}));  // stale read of v0
  HistoryCheck check = CheckHistory(g, records);
  EXPECT_FALSE(check.serializable);
}

TEST(CheckHistoryTest, UnpublishedWritesAreReadOnly) {
  Graph g = Make({2, {{0, 1}, {1, 0}}});
  std::vector<TxnRecord> records;
  // Two "init" executions that published nothing (written_version = 0):
  // they must not create writer conflicts.
  records.push_back(Txn(0, 1, 2, 0, {{1, 0, 0}}));
  records.push_back(Txn(1, 3, 4, 0, {{0, 0, 0}}));
  HistoryCheck check = CheckHistory(g, records);
  EXPECT_TRUE(check.ok());
}

// --- recorder ----------------------------------------------------------

TEST(HistoryRecorderTest, VersionsAdvanceOnlyWhenPublished) {
  Graph g = Make({2, {{0, 1}, {1, 0}}});
  HistoryRecorder recorder(&g, 1);
  uint64_t v1 = recorder.OnTxnBegin(0, 0, 0);
  EXPECT_EQ(v1, 1u);
  recorder.OnTxnEnd(0, 0, /*published=*/false);
  EXPECT_EQ(recorder.VersionOf(0), 0u);

  uint64_t v2 = recorder.OnTxnBegin(0, 0, 1);
  EXPECT_EQ(v2, 1u);  // still version 1: nothing was published yet
  recorder.OnTxnEnd(0, 0, /*published=*/true);
  EXPECT_EQ(recorder.VersionOf(0), 1u);
}

TEST(HistoryRecorderTest, DeliverThenReadIsFresh) {
  Graph g = Make({2, {{0, 1}, {1, 0}}});
  HistoryRecorder recorder(&g, 1);
  uint64_t v = recorder.OnTxnBegin(0, 0, 0);
  recorder.OnDeliver(0, 1, v);
  recorder.OnTxnEnd(0, 0, true);

  recorder.OnTxnBegin(0, 1, 1);
  recorder.OnTxnEnd(0, 1, true);

  auto records = recorder.TakeRecords();
  ASSERT_EQ(records.size(), 2u);
  HistoryCheck check = CheckHistory(g, std::move(records));
  EXPECT_TRUE(check.ok());
}

TEST(HistoryRecorderTest, MissedDeliveryIsStale) {
  Graph g = Make({2, {{0, 1}, {1, 0}}});
  HistoryRecorder recorder(&g, 1);
  recorder.OnTxnBegin(0, 0, 0);
  recorder.OnTxnEnd(0, 0, true);  // published but never delivered to v1

  recorder.OnTxnBegin(0, 1, 1);
  recorder.OnTxnEnd(0, 1, true);

  HistoryCheck check = CheckHistory(g, recorder.TakeRecords());
  EXPECT_FALSE(check.c1_fresh_reads);
}

TEST(HistoryRecorderTest, RecordsCarrySuperstepAndWorker) {
  Graph g = Make({2, {{0, 1}, {1, 0}}});
  HistoryRecorder recorder(&g, 2);
  recorder.OnTxnBegin(1, 0, 7);
  recorder.OnTxnEnd(1, 0, true);
  auto records = recorder.TakeRecords();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].worker, 1);
  EXPECT_EQ(records[0].superstep, 7);
  EXPECT_LT(records[0].start, records[0].end);
}

}  // namespace
}  // namespace serigraph
