#include "common/planted.h"

#include <cstring>

#include "common/logging.h"

namespace serigraph {

std::atomic<int> Planted::count_{0};
const char* Planted::names_[Planted::kMaxPlanted] = {};

void Planted::Enable(const char* name) {
  const int n = count_.load(std::memory_order_relaxed);  // mo: setup thread
  if (n >= kMaxPlanted) {
    SG_LOG(kFatal) << "Planted::Enable: too many planted bugs (" << n << ")";
  }
  names_[n] = name;
  count_.store(n + 1, std::memory_order_release);
}

void Planted::Clear() {
  count_.store(0, std::memory_order_release);
  for (const char*& slot : names_) slot = nullptr;
}

bool Planted::Lookup(const char* name) {
  const int n = count_.load(std::memory_order_acquire);
  for (int i = 0; i < n; ++i) {
    if (std::strcmp(names_[i], name) == 0) return true;
  }
  return false;
}

}  // namespace serigraph
