file(REMOVE_RECURSE
  "CMakeFiles/serigraph_algos.dir/coloring.cc.o"
  "CMakeFiles/serigraph_algos.dir/coloring.cc.o.d"
  "CMakeFiles/serigraph_algos.dir/label_propagation.cc.o"
  "CMakeFiles/serigraph_algos.dir/label_propagation.cc.o.d"
  "CMakeFiles/serigraph_algos.dir/reference.cc.o"
  "CMakeFiles/serigraph_algos.dir/reference.cc.o.d"
  "CMakeFiles/serigraph_algos.dir/triangles.cc.o"
  "CMakeFiles/serigraph_algos.dir/triangles.cc.o.d"
  "libserigraph_algos.a"
  "libserigraph_algos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serigraph_algos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
