#include "check/explorer.h"

#include <chrono>
#include <cstdio>
#include <deque>

namespace serigraph {
namespace check {

namespace {

void Fnv(uint64_t* hash, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    *hash ^= (value >> (i * 8)) & 0xff;
    *hash *= 1099511628211ull;
  }
}

struct Branch {
  std::vector<int> prefix;
};

}  // namespace

bool Explore(const ExploreOptions& opts, const RunFn& run,
             ExploreStats* stats, std::string* failing_trail) {
  const auto start = std::chrono::steady_clock::now();
  std::deque<Branch> work;
  work.push_back(Branch{});  // empty prefix: the default-policy schedule
  while (!work.empty()) {
    if (opts.max_schedules > 0 && stats->schedules >= opts.max_schedules) {
      stats->hit_schedule_cap = true;
      break;
    }
    if (opts.max_seconds > 0) {
      const auto elapsed = std::chrono::duration_cast<std::chrono::seconds>(
                               std::chrono::steady_clock::now() - start)
                               .count();
      if (elapsed >= opts.max_seconds) {
        stats->hit_time_cap = true;
        break;
      }
    }
    Branch branch = std::move(work.back());
    work.pop_back();  // depth-first: newest branch next

    VirtualScheduler::Options sopts;
    sopts.expected_threads = opts.expected_threads;
    sopts.trail = branch.prefix;
    sopts.object_por = opts.object_por;
    sopts.max_steps = opts.max_steps;
    VirtualScheduler sched(sopts);
    sy::InstallScheduler(&sched);
    const bool ok = run(sched);
    sy::InstallScheduler(nullptr);  // idempotent after quiesce
    ++stats->schedules;
    Fnv(&stats->folded_hash, sched.trace_hash());
    const auto& dec = sched.decisions();
    if (static_cast<int>(dec.size()) > stats->max_decisions) {
      stats->max_decisions = static_cast<int>(dec.size());
    }
    if (!ok) {
      *failing_trail = VirtualScheduler::FormatTrail(dec);
      return false;
    }

    // Alternatives at steps below the prefix length were already branched
    // by an ancestor execution (the floor prevents duplicate subtrees).
    const int floor = static_cast<int>(branch.prefix.size());
    for (const Alternative& alt : sched.alternatives()) {
      if (alt.step < floor) continue;
      const int cost =
          dec[alt.step].preemptions_before + (alt.preempts ? 1 : 0);
      if (cost > opts.preemption_bound) {
        ++stats->pruned_by_budget;
        continue;
      }
      Branch next;
      next.prefix.reserve(alt.step + 1);
      for (int i = 0; i < alt.step; ++i) next.prefix.push_back(dec[i].thread);
      next.prefix.push_back(alt.thread);
      work.push_back(std::move(next));
    }
  }
  return true;
}

}  // namespace check
}  // namespace serigraph
