#ifndef SERIGRAPH_CHECK_SCHEDULER_H_
#define SERIGRAPH_CHECK_SCHEDULER_H_

#include <condition_variable>  // lint:allow naked-mutex
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>  // lint:allow naked-mutex
#include <string>
#include <unordered_map>
#include <vector>

#include "common/schedule_hooks.h"

// serichk's virtual cooperative scheduler (the dynamic half of the
// concurrency verification gate; docs/MODEL_CHECKING.md).
//
// The engine's worker and comm threads register through
// sy::ScheduledThread and from then on exactly one of them runs at a
// time: every sy::Mutex / sy::CondVar operation and every SG_FAULT_POINT
// parks the caller, and the scheduler decides — deterministically, from
// a replayable decision trail — which parked thread resumes. Real mutex
// ownership always mirrors virtual ownership, so native locks never
// contend and the explored interleavings are exactly the scheduler's
// choices.
//
// The scheduler's own synchronization deliberately uses the raw std::
// primitives (lint:allow naked-mutex): the sy:: wrappers are the
// instrumented surface, and the instrument must not instrument itself.
namespace serigraph {
namespace check {

/// What a parked thread is about to do (its published pending op).
enum class OpKind : uint8_t {
  kStart = 0,     ///< initial grant after registration
  kLock,          ///< Mutex::Lock — enabled iff the mutex is free
  kTryLock,       ///< Mutex::TryLock — always enabled, outcome from model
  kCondWait,      ///< parked in CondVar::Wait* — enabled only via notify
  kReacquire,     ///< notified, reacquiring the wait mutex
  kYield,         ///< SG_FAULT_POINT / SchedulePoint
  kExit,          ///< thread finished (never parked; trace only)
};

const char* OpKindName(OpKind kind);

struct PendingOp {
  OpKind kind = OpKind::kStart;
  /// Stable first-use object id of the mutex/condvar involved, -1 if none.
  int obj = -1;
  /// Yield-point name (string literal) for kYield, nullptr otherwise.
  const char* point = nullptr;
};

/// One resolved scheduling decision, in order.
struct Decision {
  int thread = -1;
  PendingOp op;
  /// Preemptions accumulated strictly before this decision (for the
  /// explorer's budget arithmetic).
  int preemptions_before = 0;
};

/// An enabled-but-not-chosen thread at some decision index; the explorer
/// turns these into new DFS branches.
struct Alternative {
  int step = -1;
  int thread = -1;
  /// True when taking this alternative preempts an enabled running
  /// thread (costs preemption budget); false for blocking switches.
  bool preempts = false;
};

class VirtualScheduler : public sy::SchedulerClient {
 public:
  struct Options {
    /// Exploration begins once this many threads registered (2 * workers:
    /// each worker contributes its compute thread and its comm thread).
    int expected_threads = 0;
    /// Forced choices for the first trail.size() decisions; after the
    /// trail is exhausted the default policy (run until blocked, lowest
    /// id on a blocking switch) takes over.
    std::vector<int> trail;
    /// Record alternatives only for threads whose pending op touches the
    /// same object as the parked thread's op (lightweight sleep-set-style
    /// independence reduction). Yield points always branch over all
    /// enabled threads.
    bool object_por = true;
    /// Runaway guard: one execution exceeding this many decisions is
    /// reported as a livelock (exit 5).
    int64_t max_steps = 2000000;
  };

  explicit VirtualScheduler(Options opts);
  ~VirtualScheduler() override;

  // sy::SchedulerClient:
  int OnThreadRegister(const char* role, int index) override;
  void OnThreadExit(int thread_id) override;
  void OnMutexLock(void* mu, std::mutex* native) override;
  bool OnMutexTryLock(void* mu, std::mutex* native) override;
  void OnMutexUnlock(void* mu, std::mutex* native) override;
  void OnCondWait(void* cv, void* mu, std::mutex* native) override;
  void OnCondNotify(void* cv, bool notify_all) override;
  void OnYield(const char* point) override;

  // Results; read only after the explored engine run fully completed.
  const std::vector<Decision>& decisions() const { return decisions_; }
  const std::vector<Alternative>& alternatives() const {
    return alternatives_;
  }
  /// FNV-1a over (step, thread, op kind, obj id, yield-point name) of
  /// every decision: two executions took the same schedule iff equal.
  uint64_t trace_hash() const { return trace_hash_; }
  int preemptions() const { return preemptions_; }
  bool quiesced() const { return quiesced_; }

  /// Renders a decision trail as the comma-separated thread-id list the
  /// --replay flag accepts.
  static std::string FormatTrail(const std::vector<Decision>& decisions);

 private:
  struct ThreadRec {
    int id = -1;
    std::string role;
    int index = -1;
    bool registered = false;
    bool exited = false;
    bool parked = false;
    bool granted = false;
    /// Set by quiesce: resume natively, the model is gone.
    bool spurious_native = false;
    PendingOp pending;
    /// CondVar bookkeeping while in kCondWait/kReacquire.
    void* wait_mu = nullptr;
    std::mutex* wait_native = nullptr;
    std::condition_variable cv;
  };

  struct MutexModel {
    int owner = -1;
    int obj = -1;
  };

  struct CvModel {
    std::deque<int> waiters;
    int obj = -1;
  };

  ThreadRec& Self();
  int ObjIdLocked(void* ptr);
  MutexModel& MutexFor(void* mu);
  CvModel& CvFor(void* cv);
  bool EnabledLocked(const ThreadRec& t) const;

  /// Parks the calling thread with `op` published, runs the dispatcher,
  /// and blocks until granted. Precondition: `lk` holds ctl_mu_.
  void ParkAndDispatch(std::unique_lock<std::mutex>& lk, ThreadRec& self,
                       PendingOp op);
  /// Chooses and grants the next thread (trail, then default policy).
  void DispatchLocked(std::unique_lock<std::mutex>& lk);
  bool QuiesceConditionLocked() const;
  void DoQuiesceLocked();
  [[noreturn]] void ReportDeadlockLocked();
  [[noreturn]] void ReportLivelockLocked();
  void DumpScheduleLocked(const char* banner);

  Options opts_;
  std::mutex ctl_mu_;  // lint:allow naked-mutex
  std::vector<std::unique_ptr<ThreadRec>> threads_;
  int registered_ = 0;
  int running_ = -1;
  bool quiesced_ = false;
  std::unordered_map<void*, MutexModel> mutexes_;
  std::unordered_map<void*, CvModel> cvs_;
  int next_obj_ = 0;
  std::vector<Decision> decisions_;
  std::vector<Alternative> alternatives_;
  uint64_t trace_hash_ = 14695981039346656037ull;  // FNV offset basis
  int preemptions_ = 0;
};

}  // namespace check
}  // namespace serigraph

#endif  // SERIGRAPH_CHECK_SCHEDULER_H_
