file(REMOVE_RECURSE
  "CMakeFiles/micro_chandy_misra.dir/micro_chandy_misra.cc.o"
  "CMakeFiles/micro_chandy_misra.dir/micro_chandy_misra.cc.o.d"
  "micro_chandy_misra"
  "micro_chandy_misra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_chandy_misra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
