// Quickstart: build a graph, run PageRank serializably, inspect results.
//
// This is the 60-second tour of the SeriGraph API:
//   1. generate (or load) a graph,
//   2. pick an engine configuration — computation model, number of
//      simulated workers, and, the point of the library, a
//      synchronization technique that makes the run serializable,
//   3. run a vertex program and read back values + metrics.

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "algos/pagerank.h"
#include "graph/generators.h"
#include "graph/stats.h"
#include "pregel/engine.h"

using namespace serigraph;

int main() {
  // 1. A small power-law graph, like a miniature social network.
  EdgeList edges = PowerLawChungLu(/*num_vertices=*/5000,
                                   /*avg_degree=*/12.0,
                                   /*gamma=*/2.2, /*seed=*/42);
  auto graph_or = Graph::FromEdgeList(edges);
  SG_CHECK_OK(graph_or.status());
  Graph graph = std::move(graph_or).value();
  GraphStats stats = ComputeGraphStats(graph, /*compute_undirected=*/false);
  std::printf("graph: %lld vertices, %lld edges, max degree %lld\n",
              (long long)stats.num_vertices, (long long)stats.num_directed_edges,
              (long long)stats.max_degree);

  // 2. Engine configuration: 8 simulated workers, asynchronous (AP) model,
  //    partition-based distributed locking => the execution is one-copy
  //    serializable, transparently to the algorithm below.
  EngineOptions options;
  options.num_workers = 8;
  options.model = ComputationModel::kAsync;
  options.sync_mode = SyncMode::kPartitionLocking;

  // 3. Run PageRank (threshold 0.01, like the paper's OR/AR runs).
  Engine<PageRank> engine(&graph, options);
  auto result = engine.Run(PageRank(/*tolerance=*/0.01));
  SG_CHECK_OK(result.status());

  std::printf("converged in %d supersteps, %.1f ms computation time\n",
              result->stats.supersteps,
              result->stats.computation_seconds * 1e3);
  std::printf("messages sent: %lld (local %lld), fork transfers: %lld\n",
              (long long)result->stats.Metric("pregel.messages_sent"),
              (long long)result->stats.Metric("pregel.local_sends"),
              (long long)result->stats.Metric("sync.fork_transfers"));

  // Top-5 ranked vertices.
  std::vector<VertexId> order(graph.num_vertices());
  std::iota(order.begin(), order.end(), 0);
  std::partial_sort(order.begin(), order.begin() + 5, order.end(),
                    [&](VertexId a, VertexId b) {
                      return result->values[a] > result->values[b];
                    });
  std::printf("top vertices by PageRank:\n");
  for (int i = 0; i < 5; ++i) {
    std::printf("  v%-6lld pr=%.4f (degree %lld)\n", (long long)order[i],
                result->values[order[i]],
                (long long)graph.OutDegree(order[i]));
  }
  return 0;
}
