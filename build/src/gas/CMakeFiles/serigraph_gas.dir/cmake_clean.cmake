file(REMOVE_RECURSE
  "CMakeFiles/serigraph_gas.dir/gas_engine.cc.o"
  "CMakeFiles/serigraph_gas.dir/gas_engine.cc.o.d"
  "CMakeFiles/serigraph_gas.dir/vertex_cut.cc.o"
  "CMakeFiles/serigraph_gas.dir/vertex_cut.cc.o.d"
  "libserigraph_gas.a"
  "libserigraph_gas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serigraph_gas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
