file(REMOVE_RECURSE
  "libserigraph_pregel.a"
)
