#ifndef SERIGRAPH_COMMON_THREAD_ANNOTATIONS_H_
#define SERIGRAPH_COMMON_THREAD_ANNOTATIONS_H_

// Clang thread-safety-analysis annotations (Abseil-style, SY_ prefix).
//
// These macros let the compiler prove the repo's guard discipline: every
// shared field names the lock that guards it (SY_GUARDED_BY), every
// function that needs a lock held declares it (SY_REQUIRES), and the
// sy::Mutex/sy::MutexLock wrappers (common/mutex.h) carry the acquire/
// release semantics the analysis tracks. Build with
//   cmake -DSERIGRAPH_TSA=ON   (Clang only)
// to turn violations into -Wthread-safety -Werror build failures; see
// docs/STATIC_ANALYSIS.md for how to read the diagnostics.
//
// On compilers without the attribute (GCC) every macro degrades to a
// no-op, so the annotations are pure documentation there.

#if defined(__clang__) && defined(__has_attribute)
#define SY_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define SY_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op off Clang
#endif

/// Declares a class to be a lockable capability ("mutex").
#define SY_CAPABILITY(x) SY_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/// Declares an RAII class whose lifetime equals a critical section.
#define SY_SCOPED_CAPABILITY SY_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/// The annotated field/variable may only be accessed while holding `x`.
#define SY_GUARDED_BY(x) SY_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// The data pointed to by the annotated pointer is guarded by `x` (the
/// pointer itself is not).
#define SY_PT_GUARDED_BY(x) SY_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// Lock-ordering declarations: this capability must be acquired before /
/// after the listed ones (see docs/LOCK_ORDER.md for the hierarchy).
#define SY_ACQUIRED_BEFORE(...) \
  SY_THREAD_ANNOTATION_ATTRIBUTE(acquired_before(__VA_ARGS__))
#define SY_ACQUIRED_AFTER(...) \
  SY_THREAD_ANNOTATION_ATTRIBUTE(acquired_after(__VA_ARGS__))

/// The caller must hold the listed capabilities (exclusively / shared).
#define SY_REQUIRES(...) \
  SY_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))
#define SY_REQUIRES_SHARED(...) \
  SY_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

/// The function acquires the listed capabilities and holds them on return.
#define SY_ACQUIRE(...) \
  SY_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define SY_ACQUIRE_SHARED(...) \
  SY_THREAD_ANNOTATION_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))

/// The function releases the listed capabilities (held on entry).
#define SY_RELEASE(...) \
  SY_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))
#define SY_RELEASE_SHARED(...) \
  SY_THREAD_ANNOTATION_ATTRIBUTE(release_shared_capability(__VA_ARGS__))

/// The function acquires the capability iff it returns `b`.
#define SY_TRY_ACQUIRE(b, ...) \
  SY_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(b, __VA_ARGS__))

/// The caller must NOT hold the listed capabilities (anti-deadlock: the
/// function acquires them itself).
#define SY_EXCLUDES(...) \
  SY_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Asserts at runtime that the capability is held (teaches the analysis a
/// fact it cannot derive).
#define SY_ASSERT_CAPABILITY(x) \
  SY_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))

/// The function returns a reference to the named capability.
#define SY_RETURN_CAPABILITY(x) SY_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

/// Escape hatch: disables analysis for one function. Every use must carry
/// a comment explaining why the invariant holds anyway (the protocol
/// linter counts these; see scripts/lint_protocol.py).
#define SY_NO_THREAD_SAFETY_ANALYSIS \
  SY_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

#endif  // SERIGRAPH_COMMON_THREAD_ANNOTATIONS_H_
