#include "fault/supervisor.h"

#include <chrono>
#include <utility>

#include "common/logging.h"
#include "obs/flightrec.h"

namespace serigraph {

Supervisor::Supervisor(int num_workers, SupervisorOptions options,
                       FailureCallback on_failure)
    : options_(options), on_failure_(std::move(on_failure)) {
  cells_.reserve(static_cast<size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) {
    cells_.push_back(std::make_unique<WorkerCell>());
  }
}

Supervisor::~Supervisor() { Stop(); }

int64_t Supervisor::NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void Supervisor::Start() {
  const int64_t now = NowMs();
  for (auto& cell : cells_) {
    // mo: heartbeat read; staleness tolerated
    cell->last_seen_progress = cell->progress.load(std::memory_order_relaxed);
    cell->last_change_ms = now;
  }
  thread_ = std::thread([this] { MonitorLoop(); });
}

void Supervisor::Stop() {
  stopped_.store(true, std::memory_order_release);
  {
    sy::MutexLock lock(&mu_);
    stop_requested_ = true;
    cv_.NotifyAll();
  }
  if (thread_.joinable()) thread_.join();
}

FailureReport Supervisor::failure() const {
  sy::MutexLock lock(&mu_);
  return report_;
}

void Supervisor::Fail(int worker, std::string reason) {
  if (stopped_.load(std::memory_order_acquire)) return;
  if (failed_.exchange(true, std::memory_order_acq_rel)) return;
  FailureReport report{worker, std::move(reason)};
  {
    sy::MutexLock lock(&mu_);
    report_ = report;
  }
  SG_LOG(kWarning) << "supervisor: " << report.reason;
  // First failure wins: mark the process degraded (recovery may still
  // succeed and clear this) and capture an incident bundle while the
  // pre-failure flight-recorder tail is still warm.
  FlightRecorder::RecordInstant("supervisor.failure");
  TriggerIncidentDump("supervisor", report.reason, HealthLevel::kDegraded);
  if (on_failure_) on_failure_(report);
}

void Supervisor::ReportDeath(int worker, const std::string& reason) {
  if (worker >= 0 && worker < static_cast<int>(cells_.size())) {
    cells_[static_cast<size_t>(worker)]->dead.store(
        true, std::memory_order_release);
  }
  Fail(worker, "worker " + std::to_string(worker) + " died: " + reason);
}

void Supervisor::ReportLoss(int src, int dst, uint64_t expected,
                            uint64_t got) {
  Fail(src, "message loss on link " + std::to_string(src) + "->" +
                std::to_string(dst) + " (expected seq " +
                std::to_string(expected) + ", got " + std::to_string(got) +
                ")");
}

void Supervisor::ReportProtocolViolation(int worker,
                                         const std::string& reason) {
  Fail(worker, "protocol violation on worker " + std::to_string(worker) +
                   ": " + reason);
}

void Supervisor::MonitorLoop() {
  for (;;) {
    {
      sy::MutexLock lock(&mu_);
      if (stop_requested_) return;
      cv_.WaitFor(mu_, std::chrono::milliseconds(options_.period_ms));
      if (stop_requested_) return;
    }
    if (failed_.load(std::memory_order_acquire)) continue;

    const int64_t now = NowMs();
    int live = 0;
    int stalest_worker = -1;
    int64_t stalest_ms = -1;
    bool all_stalled = true;
    for (size_t w = 0; w < cells_.size(); ++w) {
      WorkerCell& cell = *cells_[w];
      if (cell.dead.load(std::memory_order_acquire)) continue;
      ++live;
      // mo: heartbeat read; staleness tolerated
      const uint64_t progress = cell.progress.load(std::memory_order_relaxed);
      if (progress != cell.last_seen_progress) {
        cell.last_seen_progress = progress;
        cell.last_change_ms = now;
      }
      const int64_t idle = now - cell.last_change_ms;
      // mo: heartbeat read; staleness tolerated
      const bool blocked = cell.blocked.load(std::memory_order_relaxed) > 0;
      if (!blocked && idle > options_.heartbeat_timeout_ms) {
        Fail(static_cast<int>(w),
             "worker " + std::to_string(w) + " unresponsive for " +
                 std::to_string(idle) + " ms (runnable, no progress)");
        break;
      }
      if (idle <= options_.global_stall_timeout_ms) all_stalled = false;
      if (idle > stalest_ms) {
        stalest_ms = idle;
        stalest_worker = static_cast<int>(w);
      }
    }
    if (!failed_.load(std::memory_order_acquire) && live > 0 && all_stalled) {
      Fail(stalest_worker,
           "global stall: no worker made progress for " +
               std::to_string(stalest_ms) + " ms (stalest: worker " +
               std::to_string(stalest_worker) + ")");
    }
  }
}

}  // namespace serigraph
