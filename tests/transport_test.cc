#include "net/transport.h"

#include <gtest/gtest.h>

#include <thread>

#include "common/timer.h"
#include "fault/fault.h"

namespace serigraph {
namespace {

WireMessage Control(WorkerId src, WorkerId dst, uint32_t tag) {
  WireMessage msg;
  msg.src = src;
  msg.dst = dst;
  msg.kind = MessageKind::kControl;
  msg.tag = tag;
  return msg;
}

TEST(TransportTest, DeliversToCorrectInbox) {
  MetricRegistry metrics;
  Transport transport(3, NetworkOptions{}, &metrics);
  transport.Send(Control(0, 1, 7));
  transport.Send(Control(0, 2, 8));
  auto m1 = transport.TryReceive(1);
  ASSERT_TRUE(m1.has_value());
  EXPECT_EQ(m1->tag, 7u);
  auto m2 = transport.TryReceive(2);
  ASSERT_TRUE(m2.has_value());
  EXPECT_EQ(m2->tag, 8u);
  EXPECT_FALSE(transport.TryReceive(0).has_value());
}

TEST(TransportTest, PerPairFifoWithoutLatency) {
  MetricRegistry metrics;
  Transport transport(2, NetworkOptions{}, &metrics);
  for (uint32_t i = 0; i < 100; ++i) transport.Send(Control(0, 1, i));
  for (uint32_t i = 0; i < 100; ++i) {
    auto m = transport.TryReceive(1);
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->tag, i);
  }
}

TEST(TransportTest, PerPairFifoWithSizeDependentDelays) {
  // A large batch (long delay) followed by a small marker (short delay)
  // must still arrive in order: the flush/ack protocol depends on it.
  MetricRegistry metrics;
  NetworkOptions network;
  network.one_way_latency_us = 1000;
  network.per_kib_us = 5000;  // exaggerate the bandwidth term
  Transport transport(2, network, &metrics);

  WireMessage big;
  big.src = 0;
  big.dst = 1;
  big.kind = MessageKind::kDataBatch;
  big.payload.assign(16 * 1024, 0xcd);
  transport.Send(std::move(big));
  transport.Send(Control(0, 1, 42));  // tiny, would overtake naively

  auto first = transport.Receive(1);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->kind, MessageKind::kDataBatch);
  auto second = transport.Receive(1);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->tag, 42u);
}

TEST(TransportTest, LatencyDelaysVisibility) {
  MetricRegistry metrics;
  NetworkOptions network;
  network.one_way_latency_us = 30000;  // 30 ms
  Transport transport(2, network, &metrics);
  transport.Send(Control(0, 1, 1));
  EXPECT_FALSE(transport.TryReceive(1).has_value());  // not yet visible
  WallTimer timer;
  auto m = transport.Receive(1);
  ASSERT_TRUE(m.has_value());
  EXPECT_GE(timer.ElapsedMicros(), 20000);
}

TEST(TransportTest, LocalMessagesSkipLatency) {
  MetricRegistry metrics;
  NetworkOptions network;
  network.one_way_latency_us = 1000000;  // 1s, would time the test out
  Transport transport(2, network, &metrics);
  transport.Send(Control(1, 1, 5));
  auto m = transport.TryReceive(1);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->tag, 5u);
}

TEST(TransportTest, CountersTrackTraffic) {
  MetricRegistry metrics;
  Transport transport(2, NetworkOptions{}, &metrics);
  transport.Send(Control(0, 1, 1));
  WireMessage data;
  data.src = 0;
  data.dst = 1;
  data.kind = MessageKind::kDataBatch;
  data.payload.assign(100, 1);
  transport.Send(std::move(data));
  transport.Send(Control(1, 1, 2));  // local
  auto snapshot = metrics.Snapshot();
  EXPECT_EQ(snapshot["net.wire_messages"], 3);
  EXPECT_EQ(snapshot["net.control_messages"], 1);
  EXPECT_EQ(snapshot["net.data_batches"], 1);
  EXPECT_EQ(snapshot["net.local_messages"], 1);
  EXPECT_EQ(snapshot["net.wire_bytes"], 32 + 132 + 32);
}

TEST(TransportTest, ReceiveBlocksUntilSend) {
  MetricRegistry metrics;
  Transport transport(2, NetworkOptions{}, &metrics);
  std::thread sender([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    transport.Send(Control(0, 1, 9));
  });
  auto m = transport.Receive(1);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->tag, 9u);
  sender.join();
}

TEST(TransportTest, ShutdownUnblocksReceivers) {
  MetricRegistry metrics;
  Transport transport(2, NetworkOptions{}, &metrics);
  std::thread receiver([&] {
    auto m = transport.Receive(1);
    EXPECT_FALSE(m.has_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  transport.Shutdown();
  receiver.join();
}

TEST(TransportTest, InboxEmptySeesUndeliveredMessages) {
  MetricRegistry metrics;
  NetworkOptions network;
  network.one_way_latency_us = 50000;
  Transport transport(2, network, &metrics);
  EXPECT_TRUE(transport.InboxEmpty(1));
  transport.Send(Control(0, 1, 1));
  EXPECT_FALSE(transport.InboxEmpty(1));  // in flight still counts
}

TEST(TransportTest, ManyThreadsManyMessages) {
  MetricRegistry metrics;
  Transport transport(4, NetworkOptions{}, &metrics);
  constexpr int kPerSender = 500;
  std::vector<std::thread> senders;
  for (WorkerId src = 0; src < 4; ++src) {
    senders.emplace_back([&, src] {
      for (int i = 0; i < kPerSender; ++i) {
        transport.Send(Control(src, (src + 1) % 4, i));
      }
    });
  }
  for (auto& t : senders) t.join();
  for (WorkerId dst = 0; dst < 4; ++dst) {
    int received = 0;
    uint32_t expect = 0;
    while (auto m = transport.TryReceive(dst)) {
      EXPECT_EQ(m->tag, expect++);  // per-pair FIFO
      ++received;
    }
    EXPECT_EQ(received, kPerSender);
  }
}

TEST(TransportTest, FastPathCounterTracksZeroDelayRouting) {
  // Zero-delay config: every message rides the FIFO fast path.
  MetricRegistry metrics;
  Transport transport(2, NetworkOptions{}, &metrics);
  for (uint32_t i = 0; i < 5; ++i) transport.Send(Control(0, 1, i));
  EXPECT_EQ(metrics.GetCounter("net.fastpath_messages")->value(), 5);

  // Any nonzero delay keeps the priority-queue path.
  MetricRegistry slow_metrics;
  NetworkOptions slow;
  slow.one_way_latency_us = 1;
  Transport delayed(2, slow, &slow_metrics);
  delayed.Send(Control(0, 1, 0));
  EXPECT_EQ(slow_metrics.GetCounter("net.fastpath_messages")->value(), 0);
}

TEST(TransportTest, FastPathInboxEmptyAndDepth) {
  MetricRegistry metrics;
  Transport transport(2, NetworkOptions{}, &metrics);
  EXPECT_TRUE(transport.InboxEmpty(1));
  EXPECT_EQ(transport.InboxDepth(1), 0);
  transport.Send(Control(0, 1, 1));
  transport.Send(Control(0, 1, 2));
  EXPECT_FALSE(transport.InboxEmpty(1));
  EXPECT_EQ(transport.InboxDepth(1), 2);
  EXPECT_TRUE(transport.TryReceive(1).has_value());
  EXPECT_EQ(transport.InboxDepth(1), 1);
  EXPECT_TRUE(transport.TryReceive(1).has_value());
  EXPECT_TRUE(transport.InboxEmpty(1));
}

TEST(TransportTest, InjectedDuplicatesAreDroppedByReceiver) {
  MetricRegistry metrics;
  FaultPlan plan;
  FaultEvent dup;
  dup.action = FaultAction::kDuplicate;
  dup.hit = 2;
  dup.count = 1;
  plan.events.push_back(dup);
  FaultInjector::Get().Arm(plan);
  Transport transport(2, NetworkOptions{}, &metrics);
  for (uint32_t i = 0; i < 4; ++i) transport.Send(Control(0, 1, i));
  FaultInjector::Get().Disarm();

  // Receiver sees each tag exactly once, in order, despite the duplicate.
  for (uint32_t i = 0; i < 4; ++i) {
    auto m = transport.Receive(1);
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->tag, i);
  }
  EXPECT_FALSE(transport.TryReceive(1).has_value());
  EXPECT_EQ(metrics.GetCounter("net.dup_dropped")->value(), 1);
  EXPECT_EQ(metrics.GetCounter("net.fault_injected")->value(), 1);
}

TEST(TransportTest, InjectedDropIsReportedAsSequenceGap) {
  MetricRegistry metrics;
  FaultPlan plan;
  FaultEvent drop;
  drop.action = FaultAction::kDrop;
  drop.hit = 2;
  drop.count = 1;
  plan.events.push_back(drop);
  FaultInjector::Get().Arm(plan);
  Transport transport(2, NetworkOptions{}, &metrics);
  struct Gap {
    WorkerId src = -1, dst = -1;
    uint64_t expected = 0, got = 0;
  } gap;
  int gaps = 0;
  transport.SetLossCallback(
      [&](WorkerId src, WorkerId dst, uint64_t expected, uint64_t got) {
        gap = {src, dst, expected, got};
        ++gaps;
      });
  for (uint32_t i = 0; i < 3; ++i) transport.Send(Control(0, 1, i));
  FaultInjector::Get().Disarm();

  auto first = transport.Receive(1);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->tag, 0u);
  // The next delivered message skips the dropped link sequence; the
  // receiver reports the gap and still hands the survivor over.
  auto survivor = transport.Receive(1);
  ASSERT_TRUE(survivor.has_value());
  EXPECT_EQ(survivor->tag, 2u);
  EXPECT_EQ(gaps, 1);
  EXPECT_EQ(gap.src, 0);
  EXPECT_EQ(gap.dst, 1);
  EXPECT_EQ(gap.got, gap.expected + 1);
  EXPECT_EQ(metrics.GetCounter("net.seq_gaps")->value(), 1);
  EXPECT_FALSE(transport.TryReceive(1).has_value());
}

TEST(TransportTest, FastPathRingSurvivesGrowthAndWraparound) {
  // Interleaved send/receive walks the ring's head across several
  // growth boundaries; order must stay FIFO throughout.
  MetricRegistry metrics;
  Transport transport(2, NetworkOptions{}, &metrics);
  uint32_t next_send = 0, next_recv = 0;
  for (int round = 0; round < 40; ++round) {
    for (int i = 0; i < 7; ++i) transport.Send(Control(0, 1, next_send++));
    for (int i = 0; i < 5; ++i) {
      auto m = transport.TryReceive(1);
      ASSERT_TRUE(m.has_value());
      EXPECT_EQ(m->tag, next_recv++);
    }
  }
  while (auto m = transport.TryReceive(1)) EXPECT_EQ(m->tag, next_recv++);
  EXPECT_EQ(next_recv, next_send);
}

}  // namespace
}  // namespace serigraph
