# Empty dependencies file for vertex_cut_test.
# This may be replaced when dependencies are built.
