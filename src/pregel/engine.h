#ifndef SERIGRAPH_PREGEL_ENGINE_H_
#define SERIGRAPH_PREGEL_ENGINE_H_

#include <atomic>
#include <chrono>
#include <memory>
#include <optional>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/threading.h"
#include "common/timer.h"
#include "graph/graph.h"
#include "graph/partitioning.h"
#include "net/transport.h"
#include "obs/introspect.h"
#include "obs/timeline.h"
#include "obs/trace.h"
#include "obs/watchdog.h"
#include "pregel/checkpoint.h"
#include "pregel/message_codec.h"
#include "pregel/model.h"
#include "sync/technique.h"
#include "verify/history.h"

namespace serigraph {

/// Vertex-centric execution engine in the style of Pregel/Giraph, with
/// both the BSP and AP computation models and pluggable synchronization
/// techniques that make AP executions serializable (paper Sections 2-6).
///
/// A Program supplies:
///   using VertexValue = ...;      // per-vertex state (the "color")
///   using Message = ...;          // trivially copyable, or specialize
///                                 // MessageCodec<Message>
///   VertexValue InitialValue(VertexId v, const Graph& g) const;
///   template <typename Ctx>
///   void Compute(Ctx& ctx, std::span<const Message> messages) const;
/// and optionally a message combiner:
///   static Message Combine(const Message& a, const Message& b);
///
/// Compute() sees the Pregel API through Ctx: id(), superstep(), value(),
/// set_value(), out_neighbors(), SendTo(), SendToAllOutNeighbors(),
/// VoteToHalt(), num_vertices().
///
/// An Engine instance runs exactly once; construct a new one per run.
template <typename Program>
class Engine {
 public:
  using VertexValue = typename Program::VertexValue;
  using Message = typename Program::Message;

  /// True if the program declares a message combiner.
  static constexpr bool kHasCombiner =
      requires(const Message& a, const Message& b) {
        { Program::Combine(a, b) } -> std::convertible_to<Message>;
      };

  struct Result {
    RunStats stats;
    /// Final vertex values, indexed by vertex id.
    std::vector<VertexValue> values;
    /// Transaction history, present iff options.record_history.
    std::shared_ptr<HistoryRecorder> history;
  };

  Engine(const Graph* graph, EngineOptions options)
      : graph_(graph), options_(std::move(options)) {
    SG_CHECK(graph_ != nullptr);
  }

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Overrides the partitioning built from EngineOptions. Must agree with
  /// options.num_workers and the graph's vertex count.
  Status UsePartitioning(Partitioning partitioning) {
    if (partitioning.num_vertices() != graph_->num_vertices()) {
      return Status::InvalidArgument("partitioning vertex count mismatch");
    }
    if (partitioning.num_workers() != options_.num_workers) {
      return Status::InvalidArgument("partitioning worker count mismatch");
    }
    partitioning_ = std::move(partitioning);
    has_partitioning_ = true;
    return Status::OK();
  }

  /// Executes the program to completion (or max_supersteps).
  StatusOr<Result> Run(const Program& program);

  /// Valid after Run() (or UsePartitioning()).
  const Partitioning& partitioning() const { return partitioning_; }

  /// Whether this program's state can be checkpointed (Section 6.4).
  static constexpr bool kCheckpointable =
      std::is_trivially_copyable_v<VertexValue> &&
      std::is_trivially_copyable_v<Message>;

  /// Path of the most recent checkpoint written by Run(), empty if none.
  const std::string& last_checkpoint_path() const {
    return last_checkpoint_path_;
  }

  /// Number of aggregator slots available to programs (Pregel-style
  /// aggregators: values contributed during superstep s are reduced at
  /// the barrier and visible to every vertex in superstep s+1).
  static constexpr int kNumAggregatorSlots = 8;

 private:
  enum class AggOp : uint8_t { kUnused = 0, kSum = 1, kMin = 2, kMax = 3 };

  /// Per-worker aggregator accumulation for the current superstep.
  struct WorkerAggregates {
    sy::Mutex mu;
    AggOp op[kNumAggregatorSlots] SY_GUARDED_BY(mu) = {};
    double value[kNumAggregatorSlots] SY_GUARDED_BY(mu) = {};

    void Fold(int slot, AggOp new_op, double v) {
      sy::MutexLock lock(&mu);
      if (op[slot] == AggOp::kUnused) {
        op[slot] = new_op;
        value[slot] = v;
        return;
      }
      SG_DCHECK(op[slot] == new_op);
      Merge(&value[slot], new_op, v);
    }

    static void Merge(double* into, AggOp op, double v) {
      switch (op) {
        case AggOp::kSum:
          *into += v;
          break;
        case AggOp::kMin:
          *into = v < *into ? v : *into;
          break;
        case AggOp::kMax:
          *into = v > *into ? v : *into;
          break;
        case AggOp::kUnused:
          break;
      }
    }
  };

  // ------------------------------------------------------------------
  // Per-partition message store. `current` is what executing vertices
  // consume; under BSP, arrivals go to `incoming` and become visible at
  // the superstep boundary (the staleness the paper's Figure 2 shows).
  // Under AP both local and remote arrivals go straight to `current`.
  // ------------------------------------------------------------------
  struct PartitionStore {
    sy::Mutex mu;
    std::vector<std::vector<Message>> current SY_GUARDED_BY(mu);
    std::vector<std::vector<Message>> incoming SY_GUARDED_BY(mu);
    /// Vertices (local indexes) with non-empty `current`.
    int64_t pending SY_GUARDED_BY(mu) = 0;
    /// Vertices not halted. Written at execution/restore time, read by
    /// PartitionEligible from any worker thread — always under `mu`.
    int64_t active SY_GUARDED_BY(mu) = 0;
    /// Deferred recorder notifications for BSP (delivery becomes visible
    /// only at the swap): (src, dst, version).
    std::vector<std::tuple<VertexId, VertexId, uint64_t>> pending_notify
        SY_GUARDED_BY(mu);
  };

  // ------------------------------------------------------------------
  // Per-worker state; implements the WorkerHandle the techniques use.
  // ------------------------------------------------------------------
  struct OutBuffer {
    sy::Mutex mu;
    BufferWriter writer SY_GUARDED_BY(mu);
  };

  struct WorkerState final : public WorkerHandle {
    Engine* engine = nullptr;
    WorkerId id = kInvalidWorker;
    std::vector<std::unique_ptr<OutBuffer>> out;  // per destination worker
    std::thread comm_thread;
    std::unique_ptr<ThreadPool> pool;  // null when 1 compute thread

    WorkerAggregates aggregates;

    /// Per-superstep accumulators for the timeline (atomic because a
    /// worker may run several compute threads); drained at each barrier.
    std::atomic<int64_t> ss_executions{0};
    std::atomic<int64_t> ss_messages{0};
    std::atomic<int64_t> ss_fork_wait_us{0};

    sy::Mutex ack_mu;
    sy::CondVar ack_cv;
    int acks_pending SY_GUARDED_BY(ack_mu) = 0;
    /// Peers this worker has sent data to since the last superstep-end
    /// flush; only those need a delivery confirmation (marker/ack).
    std::vector<std::atomic<uint8_t>> touched;

    void FlushRemoteTo(WorkerId dst) override { engine->FlushBuffer(*this, dst); }
    void FlushAllRemote() override {
      for (WorkerId dst = 0; dst < engine->options_.num_workers; ++dst) {
        if (dst != id) engine->FlushBuffer(*this, dst);
      }
    }
    void SendControl(WorkerId dst, uint32_t tag, int64_t a, int64_t b,
                     int64_t c) override {
      WireMessage msg;
      msg.src = id;
      msg.dst = dst;
      msg.kind = MessageKind::kControl;
      msg.tag = tag;
      msg.a = a;
      msg.b = b;
      msg.c = c;
      engine->transport_->Send(std::move(msg));
    }
    WorkerId worker_id() const override { return id; }
  };

  // ------------------------------------------------------------------
  // The Pregel API surface handed to Program::Compute.
  // ------------------------------------------------------------------
  class Context {
   public:
    Context(Engine* engine, WorkerState* worker, VertexId vertex,
            int superstep, uint64_t version)
        : engine_(engine),
          worker_(worker),
          vertex_(vertex),
          superstep_(superstep),
          version_(version) {}

    VertexId id() const { return vertex_; }
    int superstep() const { return superstep_; }
    VertexId num_vertices() const { return engine_->graph_->num_vertices(); }

    const VertexValue& value() const { return engine_->values_[vertex_]; }
    void set_value(VertexValue value) {
      engine_->values_[vertex_] = std::move(value);
    }

    std::span<const VertexId> out_neighbors() const {
      return engine_->graph_->OutNeighbors(vertex_);
    }
    int64_t num_out_edges() const {
      return engine_->graph_->OutDegree(vertex_);
    }

    /// Sends `message` to vertex `target` (must be an out-neighbor for
    /// the serializability guarantees to apply; see paper Section 3.1).
    void SendTo(VertexId target, const Message& message) {
      sent_any_ = true;
      engine_->SendMessage(*worker_, vertex_, target, message, version_);
    }

    void SendToAllOutNeighbors(const Message& message) {
      for (VertexId target : out_neighbors()) SendTo(target, message);
    }

    /// Aggregators (Pregel-style): contributions made during superstep s
    /// are reduced globally at the barrier; AggregatedValue returns the
    /// result of superstep s-1 (0 if the slot was never used). A slot
    /// must be used with one operation consistently.
    void AggregateSum(int slot, double value) {
      worker_->aggregates.Fold(slot, AggOp::kSum, value);
    }
    void AggregateMin(int slot, double value) {
      worker_->aggregates.Fold(slot, AggOp::kMin, value);
    }
    void AggregateMax(int slot, double value) {
      worker_->aggregates.Fold(slot, AggOp::kMax, value);
    }
    double AggregatedValue(int slot) const {
      return engine_->global_aggregates_[slot];
    }

    /// Declares this vertex inactive until a message reactivates it.
    void VoteToHalt() { voted_halt_ = true; }

    bool voted_halt() const { return voted_halt_; }
    bool sent_any() const { return sent_any_; }

   private:
    Engine* engine_;
    WorkerState* worker_;
    VertexId vertex_;
    int superstep_;
    uint64_t version_;
    bool voted_halt_ = false;
    bool sent_any_ = false;
  };

  // --- setup --------------------------------------------------------

  Status Validate() {
    if (options_.num_workers < 1) {
      return Status::InvalidArgument("need at least one worker");
    }
    if (options_.sync_mode == SyncMode::kConstrainedBspLocking) {
      // Proposition 1's technique is specifically for synchronous models.
      if (options_.model != ComputationModel::kBsp) {
        return Status::InvalidArgument(
            "constrained vertex-based locking is the synchronous-model "
            "technique (Proposition 1); use kVertexLocking under AP");
      }
    } else if (options_.sync_mode != SyncMode::kNone &&
               options_.model == ComputationModel::kBsp) {
      // The regular techniques need eager local replica updates, which
      // synchronous models cannot provide (paper Section 4.1); only the
      // Proposition 1 variant (kConstrainedBspLocking) works under BSP.
      return Status::Unimplemented(
          "this technique requires the AP model; BSP cannot update local "
          "replicas eagerly (paper Section 4.1) - use "
          "kConstrainedBspLocking instead");
    }
    if (options_.partitions_per_worker == 0) {
      options_.partitions_per_worker = options_.num_workers;  // Giraph default
    }
    if (options_.compute_threads_per_worker < 1) {
      options_.compute_threads_per_worker = 1;
    }
    if ((options_.checkpoint_every > 0 || !options_.restore_path.empty()) &&
        !kCheckpointable) {
      return Status::Unimplemented(
          "checkpointing requires trivially copyable values and messages");
    }
    return Status::OK();
  }

  void EnsurePartitioning() {
    if (has_partitioning_) return;
    switch (options_.partition_scheme) {
      case PartitionScheme::kHash:
        partitioning_ = Partitioning::Hash(
            graph_->num_vertices(), options_.num_workers,
            options_.partitions_per_worker, options_.partition_seed);
        break;
      case PartitionScheme::kContiguous:
        partitioning_ = Partitioning::Contiguous(
            graph_->num_vertices(), options_.num_workers,
            options_.partitions_per_worker);
        break;
    }
    has_partitioning_ = true;
  }

  // --- messaging ----------------------------------------------------

  static void EncodeRecord(BufferWriter& writer, VertexId src, VertexId dst,
                           uint64_t version, const Message& message) {
    writer.WriteVarint(static_cast<uint64_t>(dst));
    writer.WriteVarint(static_cast<uint64_t>(src));
    writer.WriteVarint(version);
    MessageCodec<Message>::Encode(writer, message);
  }

  void AppendToStore(PartitionStore& store,
                     std::vector<std::vector<Message>>& slots, VertexId dst,
                     const Message& message) SY_REQUIRES(store.mu) {
    auto& vec = slots[local_index_[dst]];
    const bool was_empty = vec.empty();
    if constexpr (kHasCombiner) {
      if (!was_empty) {
        vec[0] = Program::Combine(vec[0], message);
        return;
      }
    }
    vec.push_back(message);
    if (was_empty && &slots == &store.current) ++store.pending;
  }

  void DeliverLocal(VertexId src, VertexId dst, const Message& message,
                    uint64_t version) {
    PartitionStore& store = *stores_[partitioning_.PartitionOf(dst)];
    const bool bsp = options_.model == ComputationModel::kBsp;
    sy::MutexLock lock(&store.mu);
    AppendToStore(store, bsp ? store.incoming : store.current, dst, message);
    if (recorder_ != nullptr) {
      if (bsp) {
        store.pending_notify.emplace_back(src, dst, version);
      } else {
        recorder_->OnDeliver(src, dst, version);
      }
    }
  }

  void SendMessage(WorkerState& worker, VertexId src, VertexId dst,
                   const Message& message, uint64_t version) {
    messages_sent_->Increment();
    worker.ss_messages.fetch_add(1, std::memory_order_relaxed);
    const WorkerId dst_worker = partitioning_.WorkerOf(dst);
    if (dst_worker == worker.id) {
      // Local replica update: eager under AP (Section 4.1), hidden until
      // the next superstep under BSP (handled inside DeliverLocal).
      local_sends_->Increment();
      DeliverLocal(src, dst, message, version);
      return;
    }
    worker.touched[dst_worker].store(1, std::memory_order_relaxed);
    OutBuffer& out = *worker.out[dst_worker];
    sy::MutexLock lock(&out.mu);
    EncodeRecord(out.writer, src, dst, version, message);
    if (static_cast<int64_t>(out.writer.size()) >=
        options_.message_batch_bytes) {
      FlushBufferLocked(worker, dst_worker, out);
    }
  }

  void FlushBuffer(WorkerState& worker, WorkerId dst) {
    OutBuffer& out = *worker.out[dst];
    sy::MutexLock lock(&out.mu);
    FlushBufferLocked(worker, dst, out);
  }

  void FlushBufferLocked(WorkerState& worker, WorkerId dst, OutBuffer& out)
      SY_REQUIRES(out.mu) {
    if (out.writer.size() == 0) return;
    SG_TRACE_SPAN("net.flush_batch");
    flushes_->Increment();
    WireMessage msg;
    msg.src = worker.id;
    msg.dst = dst;
    msg.kind = MessageKind::kDataBatch;
    msg.payload = out.writer.Release();
    transport_->Send(std::move(msg));
    out.writer.Clear();
  }

  void ApplyDataBatch(const WireMessage& wire) {
    BufferReader reader(wire.payload);
    const bool bsp = options_.model == ComputationModel::kBsp;
    while (!reader.AtEnd()) {
      uint64_t dst_raw, src_raw, version;
      Message message;
      SG_CHECK(reader.ReadVarint(&dst_raw));
      SG_CHECK(reader.ReadVarint(&src_raw));
      SG_CHECK(reader.ReadVarint(&version));
      SG_CHECK(MessageCodec<Message>::Decode(reader, &message));
      const VertexId dst = static_cast<VertexId>(dst_raw);
      const VertexId src = static_cast<VertexId>(src_raw);
      PartitionStore& store = *stores_[partitioning_.PartitionOf(dst)];
      sy::MutexLock lock(&store.mu);
      AppendToStore(store, bsp ? store.incoming : store.current, dst,
                    message);
      if (recorder_ != nullptr) {
        if (bsp) {
          store.pending_notify.emplace_back(src, dst, version);
        } else {
          recorder_->OnDeliver(src, dst, version);
        }
      }
    }
  }

  // --- communication thread ------------------------------------------

  void CommLoop(WorkerState& worker) {
    if (Tracer::enabled()) {
      Tracer::Get().SetCurrentThreadName("comm-" + std::to_string(worker.id));
    }
    while (std::optional<WireMessage> msg = transport_->Receive(worker.id)) {
      switch (msg->kind) {
        case MessageKind::kDataBatch: {
          SG_TRACE_SPAN("net.inbox_drain");
          ApplyDataBatch(*msg);
          break;
        }
        case MessageKind::kControl: {
          SG_TRACE_SPAN("sync.control");
          technique_->HandleControl(worker.id, *msg);
          break;
        }
        case MessageKind::kFlushMarker: {
          WireMessage ack;
          ack.src = worker.id;
          ack.dst = msg->src;
          ack.kind = MessageKind::kAck;
          ack.a = msg->a;
          transport_->Send(std::move(ack));
          break;
        }
        case MessageKind::kAck: {
          sy::MutexLock lock(&worker.ack_mu);
          if (--worker.acks_pending == 0) worker.ack_cv.NotifyAll();
          break;
        }
        default:
          SG_LOG(kFatal) << "unexpected message kind";
      }
    }
  }

  /// Superstep-end write-all: flush outgoing buffers and confirm via
  /// marker/ack that every peer this worker sent data to has applied the
  /// messages (Giraph awaits delivery confirmations only for the remote
  /// messages it actually sent). Peers that received nothing need no
  /// round trip.
  void FlushAndAwaitAcks(WorkerState& worker, int superstep) {
    if (options_.num_workers == 1) return;
    std::vector<WorkerId> targets;
    for (WorkerId dst = 0; dst < options_.num_workers; ++dst) {
      if (dst == worker.id) continue;
      if (worker.touched[dst].exchange(0, std::memory_order_relaxed)) {
        targets.push_back(dst);
      }
    }
    if (targets.empty()) return;
    {
      sy::MutexLock lock(&worker.ack_mu);
      worker.acks_pending = static_cast<int>(targets.size());
    }
    for (WorkerId dst : targets) {
      FlushBuffer(worker, dst);
      WireMessage marker;
      marker.src = worker.id;
      marker.dst = dst;
      marker.kind = MessageKind::kFlushMarker;
      marker.a = superstep;
      transport_->Send(std::move(marker));
    }
    sy::MutexLock lock(&worker.ack_mu);
    while (worker.acks_pending != 0) worker.ack_cv.Wait(worker.ack_mu);
  }

  // --- vertex execution ----------------------------------------------

  /// Executes `v` if it is active or has messages. Returns true if the
  /// vertex actually ran. Caller must already hold the technique's
  /// permission (fork/token) for `v`.
  bool ExecuteVertexIfEligible(WorkerState& worker, PartitionStore& store,
                               const Program& program, VertexId v,
                               int superstep) {
    if (Introspector::enabled()) Introspector::Get().OnProgress(worker.id);
    std::vector<Message> messages;
    {
      sy::MutexLock lock(&store.mu);
      auto& vec = store.current[local_index_[v]];
      if (!vec.empty()) {
        messages = std::move(vec);
        vec.clear();
        --store.pending;
      }
    }
    if (halted_[v] && messages.empty()) return false;

    executions_->Increment();
    worker.ss_executions.fetch_add(1, std::memory_order_relaxed);
    concurrency_->Add(1);
    uint64_t version = 0;
    if (recorder_ != nullptr) {
      version = recorder_->OnTxnBegin(worker.id, v, superstep);
    }
    Context ctx(this, &worker, v, superstep, version);
    program.Compute(ctx, std::span<const Message>(messages));
    const bool was_halted = halted_[v] != 0;
    const bool now_halted = ctx.voted_halt();
    halted_[v] = now_halted ? 1 : 0;
    if (was_halted != now_halted) {
      // store.active is read under store.mu by PartitionEligible (the
      // Section 5.4 halted-partition skip) from other worker threads, so
      // this update must hold the lock too — it was the one unguarded
      // write the annotation pass flagged in the execution path.
      sy::MutexLock lock(&store.mu);
      store.active += now_halted ? -1 : 1;
    }
    if (recorder_ != nullptr) {
      recorder_->OnTxnEnd(worker.id, v, ctx.sent_any());
    }
    concurrency_->Add(-1);
    return true;
  }

  /// True if any vertex of `p` is active or has pending messages; used
  /// for the Section 5.4 optimization of skipping halted partitions.
  bool PartitionEligible(PartitionId p) {
    PartitionStore& store = *stores_[p];
    sy::MutexLock lock(&store.mu);
    return store.active > 0 || store.pending > 0;
  }

  bool VertexEligible(PartitionStore& store, VertexId v) {
    if (!halted_[v]) return true;
    sy::MutexLock lock(&store.mu);
    return !store.current[local_index_[v]].empty();
  }

  void ProcessPartition(WorkerState& worker, const Program& program,
                        PartitionId p, int superstep) {
    PartitionStore& store = *stores_[p];
    const std::vector<VertexId>& vertices =
        partitioning_.VerticesOfPartition(p);
    switch (granularity_) {
      case SyncTechnique::Granularity::kNone:
        for (VertexId v : vertices) {
          ExecuteVertexIfEligible(worker, store, program, v, superstep);
        }
        break;
      case SyncTechnique::Granularity::kVertexGate:
        for (VertexId v : vertices) {
          if (!technique_->MayExecuteVertex(worker.id, superstep, v)) {
            continue;  // stays pending until its token arrives
          }
          ExecuteVertexIfEligible(worker, store, program, v, superstep);
        }
        break;
      case SyncTechnique::Granularity::kPartitionLock: {
        if (!PartitionEligible(p)) {
          skipped_partitions_->Increment();
          return;
        }
        {
          SG_TRACE_SPAN("sync.fork_acquire");
          const int64_t t0 = Tracer::NowMicros();
          const bool acquired = technique_->AcquirePartition(worker.id, p);
          RecordForkWait(worker, Tracer::NowMicros() - t0);
          if (!acquired) return;  // watchdog abort: lock NOT held
        }
        for (VertexId v : vertices) {
          ExecuteVertexIfEligible(worker, store, program, v, superstep);
        }
        technique_->ReleasePartition(worker.id, p);
        break;
      }
      case SyncTechnique::Granularity::kVertexLock:
        for (VertexId v : vertices) {
          if (!VertexEligible(store, v)) continue;
          {
            SG_TRACE_SPAN("sync.fork_acquire");
            const int64_t t0 = Tracer::NowMicros();
            const bool acquired = technique_->AcquireVertex(worker.id, v);
            RecordForkWait(worker, Tracer::NowMicros() - t0);
            if (!acquired) return;  // watchdog abort: lock NOT held
          }
          ExecuteVertexIfEligible(worker, store, program, v, superstep);
          technique_->ReleaseVertex(worker.id, v);
        }
        break;
    }
  }

  void RunPartitions(WorkerState& worker, const Program& program,
                     int superstep) {
    const auto& parts = partitioning_.PartitionsOfWorker(worker.id);
    if (worker.pool != nullptr) {
      for (PartitionId p : parts) {
        worker.pool->Submit([this, &worker, &program, p, superstep] {
          ProcessPartition(worker, program, p, superstep);
        });
      }
      worker.pool->WaitIdle();
    } else {
      for (PartitionId p : parts) {
        ProcessPartition(worker, program, p, superstep);
      }
    }
  }

  /// Between barriers: publish BSP arrivals into `current` and count this
  /// worker's vertices that are still active or have pending messages.
  int64_t SwapAndCountActive(WorkerState& worker) {
    int64_t active = 0;
    for (PartitionId p : partitioning_.PartitionsOfWorker(worker.id)) {
      PartitionStore& store = *stores_[p];
      sy::MutexLock lock(&store.mu);
      if (options_.model == ComputationModel::kBsp) {
        const auto& vertices = partitioning_.VerticesOfPartition(p);
        for (size_t i = 0; i < vertices.size(); ++i) {
          auto& in = store.incoming[i];
          if (in.empty()) continue;
          auto& cur = store.current[i];
          if (cur.empty()) ++store.pending;
          if constexpr (kHasCombiner) {
            for (const Message& m : in) AppendCombined(cur, m);
          } else {
            cur.insert(cur.end(), std::make_move_iterator(in.begin()),
                       std::make_move_iterator(in.end()));
          }
          in.clear();
        }
        if (recorder_ != nullptr) {
          for (const auto& [src, dst, version] : store.pending_notify) {
            recorder_->OnDeliver(src, dst, version);
          }
          store.pending_notify.clear();
        }
      }
      const auto& vertices = partitioning_.VerticesOfPartition(p);
      for (size_t i = 0; i < vertices.size(); ++i) {
        if (!halted_[vertices[i]] || !store.current[i].empty()) ++active;
      }
    }
    return active;
  }

  static void AppendCombined(std::vector<Message>& vec, const Message& m) {
    if constexpr (kHasCombiner) {
      if (!vec.empty()) {
        vec[0] = Program::Combine(vec[0], m);
        return;
      }
    }
    vec.push_back(m);
  }

  // --- checkpointing (Section 6.4) --------------------------------------

  /// Serializes values, halted flags, and message-store contents. Called
  /// from the barrier serial section: the state is consistent (nothing
  /// executing, nothing in flight).
  std::vector<uint8_t> EncodeState() {
    BufferWriter writer;
    if constexpr (kCheckpointable) {
      const VertexId n = graph_->num_vertices();
      writer.WriteVarint(static_cast<uint64_t>(n));
      writer.AppendRaw(values_.data(), sizeof(VertexValue) * n);
      writer.AppendRaw(halted_.data(), n);
      writer.WriteVarint(stores_.size());
      for (int p = 0; p < partitioning_.num_partitions(); ++p) {
        PartitionStore& store = *stores_[p];
        sy::MutexLock lock(&store.mu);
        writer.WriteVarint(store.current.size());
        for (const auto& vec : store.current) {
          writer.WriteVarint(vec.size());
          for (const Message& m : vec) {
            MessageCodec<Message>::Encode(writer, m);
          }
        }
      }
    }
    return writer.Release();
  }

  Status DecodeState(const std::vector<uint8_t>& payload) {
    if constexpr (kCheckpointable) {
      BufferReader reader(payload);
      uint64_t n, num_stores;
      if (!reader.ReadVarint(&n) ||
          n != static_cast<uint64_t>(graph_->num_vertices())) {
        return Status::IoError("checkpoint vertex count mismatch");
      }
      if (!reader.ReadRaw(values_.data(), sizeof(VertexValue) * n) ||
          !reader.ReadRaw(halted_.data(), n) ||
          !reader.ReadVarint(&num_stores) ||
          num_stores != stores_.size()) {
        return Status::IoError("corrupt checkpoint state");
      }
      for (int p = 0; p < partitioning_.num_partitions(); ++p) {
        PartitionStore& store = *stores_[p];
        // Restore runs single-threaded before workers start, but the
        // fields are guarded so the lock is taken anyway (uncontended).
        sy::MutexLock lock(&store.mu);
        uint64_t num_slots;
        if (!reader.ReadVarint(&num_slots) ||
            num_slots != store.current.size()) {
          return Status::IoError("checkpoint partition layout mismatch");
        }
        store.pending = 0;
        for (auto& vec : store.current) {
          uint64_t count;
          if (!reader.ReadVarint(&count)) {
            return Status::IoError("truncated checkpoint store");
          }
          vec.clear();
          for (uint64_t i = 0; i < count; ++i) {
            Message m;
            if (!MessageCodec<Message>::Decode(reader, &m)) {
              return Status::IoError("truncated checkpoint message");
            }
            vec.push_back(m);
          }
          if (!vec.empty()) ++store.pending;
        }
        // Recompute the active count from the restored halted flags.
        const auto& vertices = partitioning_.VerticesOfPartition(p);
        store.active = 0;
        for (VertexId v : vertices) {
          if (!halted_[v]) ++store.active;
        }
      }
    }
    return Status::OK();
  }

  /// Folds every worker's aggregator contributions into the global
  /// values for the next superstep. Runs in the barrier serial section.
  void ReduceAggregates() {
    for (int slot = 0; slot < kNumAggregatorSlots; ++slot) {
      AggOp op = AggOp::kUnused;
      double merged = 0.0;
      for (auto& worker : workers_) {
        WorkerAggregates& agg = worker->aggregates;
        sy::MutexLock lock(&agg.mu);
        if (agg.op[slot] == AggOp::kUnused) continue;
        if (op == AggOp::kUnused) {
          op = agg.op[slot];
          merged = agg.value[slot];
        } else {
          SG_DCHECK(op == agg.op[slot]);
          WorkerAggregates::Merge(&merged, op, agg.value[slot]);
        }
        agg.op[slot] = AggOp::kUnused;
        agg.value[slot] = 0.0;
      }
      global_aggregates_[slot] = op == AggOp::kUnused
                                     ? global_aggregates_[slot]
                                     : merged;
    }
  }

  void MaybeCheckpoint(int next_superstep) {
    if (options_.checkpoint_every <= 0) return;
    if (next_superstep % options_.checkpoint_every != 0) return;
    SG_TRACE_SPAN("engine.checkpoint");
    CheckpointFrame frame;
    frame.superstep = next_superstep;
    frame.payload = EncodeState();
    const std::string path = options_.checkpoint_dir + "/checkpoint_" +
                             std::to_string(next_superstep) + ".bin";
    Status status = WriteCheckpoint(path, frame);
    if (status.ok()) {
      last_checkpoint_path_ = path;
    } else {
      SG_LOG(kError) << "checkpoint failed: " << status;
    }
  }

  /// Non-consuming eligibility check.
  bool PeekEligible(PartitionStore& store, VertexId v) {
    if (!halted_[v]) return true;
    sy::MutexLock lock(&store.mu);
    return !store.current[local_index_[v]].empty();
  }

  /// Proposition 1 execution scheme (kBspVertexLock): within one logical
  /// superstep, run sub-supersteps separated by global barriers. In each
  /// sub-superstep a worker executes exactly those still-pending vertices
  /// that hold all their forks; fork requests and transfers are exchanged
  /// only between the barriers, and each sub-barrier flushes + swaps so
  /// that sub-superstep k+1 sees the messages written in k (fresh reads,
  /// condition C1, under a synchronous model). Every eligible vertex
  /// executes exactly once per logical superstep.
  void RunSuperstepConstrainedBsp(WorkerState& worker, const Program& program,
                                  int superstep) {
    // Pending = this worker's eligible vertices, fixed at superstep start.
    std::vector<VertexId> pending;
    for (PartitionId p : partitioning_.PartitionsOfWorker(worker.id)) {
      PartitionStore& store = *stores_[p];
      for (VertexId v : partitioning_.VerticesOfPartition(p)) {
        if (PeekEligible(store, v)) pending.push_back(v);
      }
    }
    int idle_rounds = 0;
    for (;;) {
      int64_t executed = 0;
      std::vector<VertexId> still_pending;
      for (VertexId v : pending) {
        if (technique_->VertexReady(worker.id, v)) {
          PartitionStore& store = *stores_[partitioning_.PartitionOf(v)];
          ExecuteVertexIfEligible(worker, store, program, v, superstep);
          technique_->OnVertexExecuted(worker.id, v);
          ++executed;
        } else {
          technique_->RequestVertexForks(worker.id, v);
          still_pending.push_back(v);
        }
      }
      pending.swap(still_pending);
      sub_supersteps_->Increment();

      // Sub-superstep barrier: deliver this round's messages (C1 needs
      // them visible to later rounds) and agree on global progress.
      FlushAndAwaitAcks(worker, superstep);
      barrier_->Await();
      {
        int64_t count = static_cast<int64_t>(pending.size());
        // Publish this sub-superstep's messages, then apply queued fork
        // traffic — the only moment forks may move (Proposition 1 (ii)).
        SubSwapIncoming(worker);
        technique_->OnSubBarrier(worker.id);
        active_counts_[worker.id] = count;
      }
      const bool serial = barrier_->Await();
      if (serial) {
        int64_t total = 0;
        for (int64_t count : active_counts_) total += count;
        sub_stop_ = total == 0;
        if (Introspector::enabled() &&
            Introspector::Get().abort_requested()) {
          aborted_ = true;
          sub_stop_ = true;
        }
        sub_executed_any_ = false;  // reset; workers OR into it below
      }
      barrier_->Await();
      // Publish whether anyone executed this round (progress detector).
      if (executed > 0) sub_executed_any_ = true;
      barrier_->Await();
      if (sub_stop_) break;
      if (!sub_executed_any_) {
        // No vertex anywhere was ready: fork traffic is still in flight
        // (it has simulated latency). Back off briefly; the protocol
        // guarantees progress once the messages land.
        if (++idle_rounds > 100000) {
          SG_LOG(kFatal) << "constrained BSP locking stalled";
        }
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      } else {
        idle_rounds = 0;
      }
    }
  }

  /// Moves BSP `incoming` into `current` for this worker's partitions
  /// (the sub-superstep variant of the swap in SwapAndCountActive).
  void SubSwapIncoming(WorkerState& worker) {
    for (PartitionId p : partitioning_.PartitionsOfWorker(worker.id)) {
      PartitionStore& store = *stores_[p];
      sy::MutexLock lock(&store.mu);
      const auto& vertices = partitioning_.VerticesOfPartition(p);
      for (size_t i = 0; i < vertices.size(); ++i) {
        auto& in = store.incoming[i];
        if (in.empty()) continue;
        auto& cur = store.current[i];
        if (cur.empty()) ++store.pending;
        if constexpr (kHasCombiner) {
          for (const Message& m : in) AppendCombined(cur, m);
        } else {
          cur.insert(cur.end(), std::make_move_iterator(in.begin()),
                     std::make_move_iterator(in.end()));
        }
        in.clear();
      }
      if (recorder_ != nullptr) {
        for (const auto& [src, dst, version] : store.pending_notify) {
          recorder_->OnDeliver(src, dst, version);
        }
        store.pending_notify.clear();
      }
    }
  }

  // --- worker main loop ------------------------------------------------

  /// Accumulates fork-acquire wait time (request -> all forks held) into
  /// the worker's superstep accumulator and the run-wide histogram.
  void RecordForkWait(WorkerState& worker, int64_t wait_us) {
    worker.ss_fork_wait_us.fetch_add(wait_us, std::memory_order_relaxed);
    fork_wait_hist_->Record(wait_us);
  }

  /// Barrier await, timed into `*wait_us_acc` and traced.
  bool TimedAwait(int64_t* wait_us_acc) {
    SG_TRACE_SPAN("engine.barrier_wait");
    const int64_t t0 = Tracer::NowMicros();
    const bool serial = barrier_->Await();
    *wait_us_acc += Tracer::NowMicros() - t0;
    return serial;
  }

  void WorkerLoop(WorkerState& worker, const Program& program) {
    if (Tracer::enabled()) {
      Tracer::Get().SetCurrentThreadName("worker-" +
                                         std::to_string(worker.id));
    }
    for (int superstep = start_superstep_;; ++superstep) {
      SG_TRACE_SPAN("engine.superstep");
      SuperstepSample sample;
      sample.superstep = superstep;
      sample.worker = worker.id;
      if (options_.superstep_overhead_us > 0) {
        std::this_thread::sleep_for(
            std::chrono::microseconds(options_.superstep_overhead_us));
      }
      technique_->OnSuperstepStart(worker.id, superstep);
      if (Introspector::enabled()) {
        Introspector::Get().SetPhase(worker.id, WorkerPhase::kCompute,
                                     superstep);
      }
      {
        SG_TRACE_SPAN("engine.compute");
        const int64_t t0 = Tracer::NowMicros();
        if (granularity_ == SyncTechnique::Granularity::kBspVertexLock) {
          // Sub-superstep barriers and flushes stay inside compute_us
          // here: Proposition 1 trades compute overlap for barrier cost,
          // which is exactly what this bucket then shows.
          RunSuperstepConstrainedBsp(worker, program, superstep);
        } else {
          RunPartitions(worker, program, superstep);
        }
        sample.compute_us = Tracer::NowMicros() - t0;
      }
      {
        SG_TRACE_SPAN("engine.flush_acks");
        const int64_t t0 = Tracer::NowMicros();
        if (Introspector::enabled()) {
          Introspector::Get().SetPhase(worker.id, WorkerPhase::kFlushWait,
                                       superstep);
        }
        FlushAndAwaitAcks(worker, superstep);
        technique_->OnSuperstepEnd(worker.id, superstep);
        sample.flush_wait_us = Tracer::NowMicros() - t0;
      }

      if (Introspector::enabled()) {
        Introspector::Get().SetPhase(worker.id, WorkerPhase::kBarrierWait,
                                     superstep);
      }
      int64_t barrier_us = 0;
      TimedAwait(&barrier_us);  // B1: all superstep-s messages delivered
      active_counts_[worker.id] = SwapAndCountActive(worker);
      const bool serial = TimedAwait(&barrier_us);  // B2: counts published
      if (serial) {
        ReduceAggregates();
        int64_t total = 0;
        for (int64_t count : active_counts_) total += count;
        supersteps_done_ = superstep + 1;
        converged_ = total == 0;
        bool stop = converged_ || superstep + 1 >= options_.max_supersteps;
        if (Introspector::enabled() &&
            Introspector::Get().abort_requested()) {
          aborted_ = true;
          converged_ = false;
          stop = true;
        }
        if (!stop) MaybeCheckpoint(superstep + 1);
        stop_.store(stop, std::memory_order_release);
      }
      TimedAwait(&barrier_us);  // B3: decision visible
      if (Introspector::enabled()) {
        // Superstep completion is global progress even if no vertex ran.
        Introspector::Get().OnProgress(worker.id);
      }
      sample.barrier_wait_us = barrier_us;
      barrier_wait_hist_->Record(barrier_us);
      sample.fork_wait_us =
          worker.ss_fork_wait_us.exchange(0, std::memory_order_relaxed);
      sample.vertices_executed =
          worker.ss_executions.exchange(0, std::memory_order_relaxed);
      sample.messages_sent =
          worker.ss_messages.exchange(0, std::memory_order_relaxed);
      timeline_->Append(sample);
      if (stop_.load(std::memory_order_acquire)) break;
    }
  }

  const Graph* graph_;
  EngineOptions options_;
  Partitioning partitioning_;
  bool has_partitioning_ = false;
  bool ran_ = false;

  std::unique_ptr<BoundaryInfo> boundaries_;
  std::unique_ptr<SyncTechnique> technique_;
  SyncTechnique::Granularity granularity_ = SyncTechnique::Granularity::kNone;
  MetricRegistry metrics_;
  std::unique_ptr<Transport> transport_;
  std::shared_ptr<HistoryRecorder> recorder_;

  std::vector<VertexValue> values_;
  std::vector<uint8_t> halted_;
  std::vector<int32_t> local_index_;
  std::vector<std::unique_ptr<PartitionStore>> stores_;
  std::vector<std::unique_ptr<WorkerState>> workers_;

  std::unique_ptr<CyclicBarrier> barrier_;
  std::vector<int64_t> active_counts_;
  double global_aggregates_[kNumAggregatorSlots] = {};
  std::atomic<bool> stop_{false};
  bool sub_stop_ = false;
  std::atomic<bool> sub_executed_any_{false};
  int supersteps_done_ = 0;
  int start_superstep_ = 0;
  bool converged_ = false;
  /// Set (only inside barrier serial sections) when the watchdog's abort
  /// request was honored; Run() then returns Status::Aborted.
  bool aborted_ = false;
  std::unique_ptr<Watchdog> watchdog_;
  std::string last_checkpoint_path_;

  Counter* messages_sent_ = nullptr;
  Counter* local_sends_ = nullptr;
  Counter* executions_ = nullptr;
  Counter* flushes_ = nullptr;
  Counter* skipped_partitions_ = nullptr;
  Counter* sub_supersteps_ = nullptr;
  MaxGauge* concurrency_ = nullptr;
  Histogram* barrier_wait_hist_ = nullptr;
  Histogram* fork_wait_hist_ = nullptr;
  std::unique_ptr<TimelineRecorder> timeline_;
};

template <typename Program>
StatusOr<typename Engine<Program>::Result> Engine<Program>::Run(
    const Program& program) {
  SG_CHECK(!ran_);
  ran_ = true;
  SERIGRAPH_RETURN_IF_ERROR(Validate());
  EnsurePartitioning();

  const VertexId n = graph_->num_vertices();
  const int num_workers = options_.num_workers;

  // --- input loading phase (excluded from computation time) -----------
  boundaries_ = std::make_unique<BoundaryInfo>(*graph_, partitioning_);
  technique_ = MakeSyncTechnique(options_.sync_mode);
  granularity_ = technique_->granularity();
  if (technique_->RequiresSingleComputeThread()) {
    options_.compute_threads_per_worker = 1;
  }
  SyncTechnique::Context tech_ctx;
  tech_ctx.graph = graph_;
  tech_ctx.partitioning = &partitioning_;
  tech_ctx.boundaries = boundaries_.get();
  tech_ctx.metrics = &metrics_;
  SERIGRAPH_RETURN_IF_ERROR(technique_->Init(tech_ctx));

  messages_sent_ = metrics_.GetCounter("pregel.messages_sent");
  local_sends_ = metrics_.GetCounter("pregel.local_sends");
  executions_ = metrics_.GetCounter("pregel.vertex_executions");
  flushes_ = metrics_.GetCounter("pregel.flushes");
  skipped_partitions_ = metrics_.GetCounter("pregel.skipped_partitions");
  sub_supersteps_ = metrics_.GetCounter("pregel.sub_supersteps");
  concurrency_ = metrics_.GetGauge("pregel.max_concurrent_executions");
  // Latency histograms (Section 7.3's time breakdown). All three are
  // registered up front so every run's metrics snapshot carries the
  // name.p50/.p95/... keys, even when a technique never records into one.
  barrier_wait_hist_ = metrics_.GetHistogram("engine.barrier_wait_us");
  fork_wait_hist_ = metrics_.GetHistogram("sync.fork_wait_us");
  metrics_.GetHistogram("sync.token_hold_us");
  timeline_ = std::make_unique<TimelineRecorder>(num_workers);

  transport_ = std::make_unique<Transport>(num_workers, options_.network,
                                           &metrics_);
  if (options_.record_history) {
    recorder_ = std::make_shared<HistoryRecorder>(graph_, num_workers);
  }

  values_.resize(n);
  halted_.assign(n, 0);
  for (VertexId v = 0; v < n; ++v) {
    values_[v] = program.InitialValue(v, *graph_);
  }
  local_index_.assign(n, -1);
  stores_.clear();
  for (int p = 0; p < partitioning_.num_partitions(); ++p) {
    const auto& vertices = partitioning_.VerticesOfPartition(p);
    for (size_t i = 0; i < vertices.size(); ++i) {
      local_index_[vertices[i]] = static_cast<int32_t>(i);
    }
    auto store = std::make_unique<PartitionStore>();
    store->current.resize(vertices.size());
    store->incoming.resize(options_.model == ComputationModel::kBsp
                               ? vertices.size()
                               : 0);
    store->active = static_cast<int64_t>(vertices.size());
    stores_.push_back(std::move(store));
  }

  if (!options_.restore_path.empty()) {
    auto frame = ReadCheckpoint(options_.restore_path);
    SERIGRAPH_RETURN_IF_ERROR(frame.status());
    SERIGRAPH_RETURN_IF_ERROR(DecodeState(frame->payload));
    start_superstep_ = frame->superstep;
  }

  barrier_ = std::make_unique<CyclicBarrier>(num_workers);
  active_counts_.assign(num_workers, 0);

  workers_.clear();
  for (WorkerId w = 0; w < num_workers; ++w) {
    auto worker = std::make_unique<WorkerState>();
    worker->engine = this;
    worker->id = w;
    worker->touched = std::vector<std::atomic<uint8_t>>(num_workers);
    for (int d = 0; d < num_workers; ++d) {
      worker->out.push_back(std::make_unique<OutBuffer>());
    }
    if (options_.compute_threads_per_worker > 1) {
      worker->pool =
          std::make_unique<ThreadPool>(options_.compute_threads_per_worker);
    }
    workers_.push_back(std::move(worker));
  }
  for (auto& worker : workers_) {
    technique_->BindWorker(worker->id, worker.get());
  }
  for (auto& worker : workers_) {
    WorkerState* ws = worker.get();
    ws->comm_thread = std::thread([this, ws] { CommLoop(*ws); });
  }

  if (options_.introspect) {
    Introspector& in = Introspector::Get();
    const char* kind =
        granularity_ == SyncTechnique::Granularity::kPartitionLock
            ? "partition"
            : (granularity_ == SyncTechnique::Granularity::kVertexLock ||
               granularity_ == SyncTechnique::Granularity::kBspVertexLock)
                  ? "vertex"
                  : "worker";
    in.Configure(num_workers, kind);
    in.SetQueueProbe([this](WorkerId w, int64_t* inbox_depth,
                            int64_t* outbox_bytes) {
      *inbox_depth = transport_->InboxDepth(w);
      int64_t bytes = 0;
      for (const auto& out : workers_[w]->out) {
        sy::MutexLock lock(&out->mu);
        bytes += static_cast<int64_t>(out->writer.size());
      }
      *outbox_bytes = bytes;
    });
    in.Enable();
    watchdog_ = std::make_unique<Watchdog>(options_.watchdog);
    watchdog_->Start();
  }

  // --- computation phase ----------------------------------------------
  WallTimer timer;
  {
    std::vector<std::thread> threads;
    threads.reserve(num_workers);
    for (auto& worker : workers_) {
      WorkerState* ws = worker.get();
      threads.emplace_back(
          [this, ws, &program] { WorkerLoop(*ws, program); });
    }
    for (auto& t : threads) t.join();
  }
  const double seconds = timer.ElapsedSeconds();

  // --- teardown ---------------------------------------------------------
  // Stop the watchdog before the transport dies: its final sample probes
  // the transport's inbox depths via the queue probe.
  std::string abort_reason;
  if (watchdog_ != nullptr) {
    watchdog_->Stop();
    Introspector& in = Introspector::Get();
    abort_reason = in.abort_reason();
    in.ClearQueueProbe();
    in.Disable();
  }
  transport_->Shutdown();
  for (auto& worker : workers_) {
    if (worker->comm_thread.joinable()) worker->comm_thread.join();
    if (worker->pool != nullptr) worker->pool->Shutdown();
  }

  if (aborted_) {
    return Status::Aborted(
        abort_reason.empty() ? "run aborted by introspection watchdog"
                             : abort_reason);
  }

  Result result;
  result.stats.supersteps = supersteps_done_;
  result.stats.converged = converged_;
  result.stats.computation_seconds = seconds;
  result.stats.metrics = metrics_.Snapshot();
  result.stats.metrics["pregel.supersteps"] = supersteps_done_;
  result.stats.timeline = timeline_->Collect();
  if (watchdog_ != nullptr) {
    const WatchdogSummary& wd = watchdog_->summary();
    result.stats.resource_kind = Introspector::Get().resource_kind();
    result.stats.contention = wd.top_contention;
    result.stats.contention_edges = wd.top_edges;
    result.stats.introspect_snapshots = wd.snapshots;
    result.stats.introspect_stalls = wd.stalls_flagged;
    result.stats.introspect_deadlocks = wd.deadlocks_detected;
    result.stats.introspect_incidents = wd.incidents;
  }
  for (int slot = 0; slot < kNumAggregatorSlots; ++slot) {
    result.stats.aggregates[slot] = global_aggregates_[slot];
  }
  result.values = std::move(values_);
  result.history = recorder_;
  return result;
}

}  // namespace serigraph

#endif  // SERIGRAPH_PREGEL_ENGINE_H_
