#include "harness/table.h"

#include <cstdio>
#include <iomanip>

#include "common/logging.h"
#include "graph/stats.h"

namespace serigraph {

TablePrinter::TablePrinter(std::vector<std::string> columns)
    : columns_(std::move(columns)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  SG_CHECK_EQ(cells.size(), columns_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    os << "| ";
    for (size_t c = 0; c < cells.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c])) << cells[c]
         << " | ";
    }
    os << "\n";
  };
  print_row(columns_);
  os << "|";
  for (size_t c = 0; c < columns_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "-|";
  }
  os << "\n";
  for (const auto& row : rows_) print_row(row);
}

std::string TablePrinter::Seconds(double seconds) {
  char buf[32];
  if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.1f ms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f s", seconds);
  }
  return buf;
}

std::string TablePrinter::Count(int64_t value) { return HumanCount(value); }

std::string TablePrinter::Ratio(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fx", value);
  return buf;
}

void PrintHeader(std::ostream& os, const std::string& title) {
  os << "\n=== " << title << " ===\n";
}

}  // namespace serigraph
