// Network-latency sensitivity: sweep the simulated one-way latency and
// measure partition- vs vertex-based locking on the same workload. The
// paper attributes vertex-based locking's losses to communication
// overheads (Section 5.2); this bench separates the two components of
// that overhead — per-message processing cost (visible at 0 latency)
// and wire delay (the growth with latency).

#include <iostream>

#include "algos/coloring.h"
#include "harness/datasets.h"
#include "harness/runner.h"
#include "harness/table.h"

using namespace serigraph;

int main() {
  Graph graph = MakeUndirectedDataset(FindSpec("OR'"));
  PrintHeader(std::cout,
              "Latency sensitivity (coloring on OR', 16 workers)");

  TablePrinter table({"one-way latency", "partition-DL", "vertex-DL",
                      "vertex/partition"});
  for (int64_t latency_us : {0, 50, 100, 200, 400}) {
    double times[2] = {0, 0};
    int i = 0;
    for (SyncMode sync :
         {SyncMode::kPartitionLocking, SyncMode::kVertexLocking}) {
      RunConfig config;
      config.sync_mode = sync;
      config.num_workers = 16;
      config.network.one_way_latency_us = latency_us;
      config.network.per_kib_us = 4;
      std::vector<int64_t> colors;
      RunStats stats = RunProgram(graph, GreedyColoring(), config, &colors);
      SG_CHECK(IsProperColoring(graph, colors));
      times[i++] = stats.computation_seconds;
    }
    table.AddRow({std::to_string(latency_us) + " us",
                  TablePrinter::Seconds(times[0]),
                  TablePrinter::Seconds(times[1]),
                  TablePrinter::Ratio(times[1] / times[0])});
  }
  table.Print(std::cout);
  std::cout << "\nReading: the ~2.3x gap already exists at zero latency — "
               "on this host the dominant\nvertex-DL cost is *processing* "
               "its O(|E|) fork messages, not waiting for them\n(both "
               "techniques' absolute times then grow with the wire delay). "
               "Same conclusion as\nthe paper's Section 5.2, with the "
               "per-message component isolated.\n";
  return 0;
}
