#include "pregel/model.h"

namespace serigraph {

const char* ComputationModelName(ComputationModel model) {
  switch (model) {
    case ComputationModel::kBsp:
      return "BSP";
    case ComputationModel::kAsync:
      return "AP";
  }
  return "?";
}

}  // namespace serigraph
