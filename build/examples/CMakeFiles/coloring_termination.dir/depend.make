# Empty dependencies file for coloring_termination.
# This may be replaced when dependencies are built.
