#include "graph/graph.h"

#include <algorithm>
#include <string>

#include "common/logging.h"

namespace serigraph {

namespace {

/// Sorts and dedups `edges`, dropping self loops.
std::vector<Edge> Canonicalize(std::vector<Edge> edges) {
  edges.erase(std::remove_if(edges.begin(), edges.end(),
                             [](const Edge& e) { return e.src == e.dst; }),
              edges.end());
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return edges;
}

}  // namespace

StatusOr<Graph> Graph::FromEdgeList(const EdgeList& edge_list) {
  const VertexId n = edge_list.num_vertices;
  if (n < 0) {
    return Status::InvalidArgument("negative vertex count");
  }
  for (const Edge& e : edge_list.edges) {
    if (e.src < 0 || e.src >= n || e.dst < 0 || e.dst >= n) {
      return Status::InvalidArgument(
          "edge endpoint out of range: (" + std::to_string(e.src) + "," +
          std::to_string(e.dst) + ") with n=" + std::to_string(n));
    }
  }
  std::vector<Edge> edges = Canonicalize(edge_list.edges);

  Graph g;
  g.num_vertices_ = n;
  g.out_offsets_.assign(n + 1, 0);
  g.in_offsets_.assign(n + 1, 0);
  for (const Edge& e : edges) {
    ++g.out_offsets_[e.src + 1];
    ++g.in_offsets_[e.dst + 1];
  }
  for (VertexId v = 0; v < n; ++v) {
    g.out_offsets_[v + 1] += g.out_offsets_[v];
    g.in_offsets_[v + 1] += g.in_offsets_[v];
  }
  g.out_targets_.resize(edges.size());
  g.in_sources_.resize(edges.size());
  std::vector<int64_t> out_cursor(g.out_offsets_.begin(),
                                  g.out_offsets_.end() - 1);
  std::vector<int64_t> in_cursor(g.in_offsets_.begin(),
                                 g.in_offsets_.end() - 1);
  for (const Edge& e : edges) {
    g.out_targets_[out_cursor[e.src]++] = e.dst;
    g.in_sources_[in_cursor[e.dst]++] = e.src;
  }
  return g;
}

Graph Graph::Undirected() const {
  EdgeList el;
  el.num_vertices = num_vertices_;
  el.edges.reserve(out_targets_.size() * 2);
  for (VertexId v = 0; v < num_vertices_; ++v) {
    for (VertexId u : OutNeighbors(v)) {
      el.edges.push_back({v, u});
      el.edges.push_back({u, v});
    }
  }
  StatusOr<Graph> g = FromEdgeList(el);
  SG_CHECK(g.ok());
  return std::move(g).value();
}

Graph Graph::Clone() const {
  Graph g;
  g.num_vertices_ = num_vertices_;
  g.out_offsets_ = out_offsets_;
  g.out_targets_ = out_targets_;
  g.in_offsets_ = in_offsets_;
  g.in_sources_ = in_sources_;
  return g;
}

int64_t Graph::MaxTotalDegree() const {
  int64_t best = 0;
  for (VertexId v = 0; v < num_vertices_; ++v) {
    best = std::max(best, OutDegree(v) + InDegree(v));
  }
  return best;
}

int64_t Graph::MaxOutDegree() const {
  int64_t best = 0;
  for (VertexId v = 0; v < num_vertices_; ++v) {
    best = std::max(best, OutDegree(v));
  }
  return best;
}

bool Graph::IsSymmetric() const {
  for (VertexId v = 0; v < num_vertices_; ++v) {
    for (VertexId u : OutNeighbors(v)) {
      auto nbrs = OutNeighbors(u);
      if (!std::binary_search(nbrs.begin(), nbrs.end(), v)) return false;
    }
  }
  return true;
}

std::vector<Edge> Graph::ToEdges() const {
  std::vector<Edge> edges;
  edges.reserve(out_targets_.size());
  for (VertexId v = 0; v < num_vertices_; ++v) {
    for (VertexId u : OutNeighbors(v)) edges.push_back({v, u});
  }
  return edges;
}

}  // namespace serigraph
