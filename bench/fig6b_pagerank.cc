// Figure 6(b): PageRank computation times. Thresholds mirror the paper
// (Section 7.2.2): 0.01 for OR/AR, 0.1 for TW/UK, so that all systems do
// the same amount of work per graph.

#include "algos/pagerank.h"
#include "fig6_common.h"

using namespace serigraph;

int main(int argc, char** argv) {
  return RunFig6Grid(
      argc, argv, "Figure 6(b): PageRank",
      "partition-based locking fastest everywhere; up to 18x vs "
      "vertex-based (OR, 16 workers) and >14x vs token passing (UK, 32)",
      /*undirected=*/false,
      [](const Graph& graph, const RunConfig& config) {
        // Paper thresholds: 0.01 for the smaller graphs, 0.1 for TW/UK.
        const double tolerance = graph.num_vertices() >= 8000 ? 0.1 : 0.01;
        std::vector<double> values;
        RunStats stats =
            RunProgram(graph, PageRank(tolerance), config, &values);
        // Validity: converged and every rank at least the base mass.
        bool valid = stats.converged;
        for (double v : values) valid &= v >= PageRank::kBase - 1e-9;
        return std::make_pair(stats, valid);
      });
}
