// Section 2.3: async GAS (GraphLab-style) without serializability lets
// the gather/apply/scatter phases of neighboring vertices interleave, so
// greedy coloring can livelock; with serializability (neighborhood held
// across all three phases) it always terminates, in a single pass.

#include <iostream>

#include "algos/coloring.h"
#include "gas/gas_engine.h"
#include "gas/gas_programs.h"
#include "graph/generators.h"
#include "harness/table.h"

using namespace serigraph;

namespace {

struct CaseResult {
  int64_t livelocks = 0;
  int64_t total_updates = 0;
  int64_t runs = 0;
  int64_t improper = 0;
};

CaseResult RunMany(const Graph& graph, GasMode mode, int runs,
                   int64_t max_updates) {
  CaseResult result;
  for (int i = 0; i < runs; ++i) {
    GasOptions options;
    options.mode = mode;
    options.num_threads = 8;
    options.max_updates = max_updates;
    GasEngine<GasColoring> engine(&graph, options);
    auto r = engine.Run(GasColoring());
    SG_CHECK_OK(r.status());
    ++result.runs;
    result.total_updates += r->updates;
    if (!r->converged) ++result.livelocks;
    if (!IsProperColoring(graph, r->values) && r->converged) {
      ++result.improper;
    }
  }
  return result;
}

}  // namespace

int main() {
  PrintHeader(std::cout,
              "Section 2.3: async GAS coloring with and without "
              "serializability");
  auto g = Graph::FromEdgeList(Complete(24));
  SG_CHECK_OK(g.status());
  Graph dense = std::move(g).value();  // dense => conflicts likely
  auto g2 = Graph::FromEdgeList(Ring(256));
  SG_CHECK_OK(g2.status());
  Graph cycle = g2->Undirected();

  TablePrinter table({"graph", "mode", "runs", "livelocked",
                      "improper colorings", "avg updates"});
  struct Case {
    const char* name;
    const Graph* graph;
    int64_t budget;
  };
  const Case cases[] = {{"complete K24", &dense, 20000},
                        {"even cycle n=256", &cycle, 20000}};
  for (const Case& c : cases) {
    for (GasMode mode : {GasMode::kAsync, GasMode::kAsyncSerializable}) {
      CaseResult r = RunMany(*c.graph, mode, /*runs=*/8, c.budget);
      table.AddRow({c.name, GasModeName(mode), std::to_string(r.runs),
                    std::to_string(r.livelocks), std::to_string(r.improper),
                    std::to_string(r.total_updates / r.runs)});
    }
  }
  table.Print(std::cout);
  std::cout << "\npaper: async GAS without serializability is not "
               "guaranteed to terminate for\ncoloring; with serializability "
               "it always terminates (Section 2.3). Livelock\ncounts vary "
               "with thread timing; serializable runs must never livelock "
               "or\nproduce conflicts.\n";
  return 0;
}
