#include "pregel/model.h"

#include "obs/report.h"

namespace serigraph {

const char* ComputationModelName(ComputationModel model) {
  switch (model) {
    case ComputationModel::kBsp:
      return "BSP";
    case ComputationModel::kAsync:
      return "AP";
  }
  return "?";
}

std::string RunStatsToJson(const RunStats& stats) {
  RunReport report;
  report.supersteps = stats.supersteps;
  report.converged = stats.converged;
  report.computation_seconds = stats.computation_seconds;
  report.metrics = stats.metrics;
  report.timeline = stats.timeline;
  report.resource_kind = stats.resource_kind;
  report.contention = stats.contention;
  report.contention_edges = stats.contention_edges;
  report.introspect_snapshots = stats.introspect_snapshots;
  report.introspect_stalls = stats.introspect_stalls;
  report.introspect_deadlocks = stats.introspect_deadlocks;
  report.introspect_incidents = stats.introspect_incidents;
  report.recovery_attempts = stats.recovery_attempts;
  report.recovery_events = stats.recovery_events;
  report.perf_enabled = stats.perf_enabled;
  report.perf_hw_counters = stats.perf_hw_counters;
  report.perf_fallback = stats.perf_fallback;
  report.perf_phases = stats.perf_phases;
  report.peak_rss_kb = stats.peak_rss_kb;
  report.mem_samples = stats.mem_samples;
  return RunReportToJson(report);
}

}  // namespace serigraph
