#ifndef SERIGRAPH_VERIFY_HISTORY_H_
#define SERIGRAPH_VERIFY_HISTORY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "graph/graph.h"
#include "graph/types.h"

namespace serigraph {

/// One recorded transaction: a single execution of vertex `vertex`
/// (paper Section 3.2: T_i = r_i[N_u] w_i[u]). Stamps come from a global
/// atomic logical clock, so [start, end] intervals are comparable across
/// workers. Each read records the version the executing vertex observed
/// for an in-neighbor (from delivered messages) and the neighbor's
/// committed version at transaction start — condition C1 requires them to
/// be equal.
struct TxnRecord {
  VertexId vertex = kInvalidVertex;
  WorkerId worker = kInvalidWorker;
  int superstep = -1;
  uint64_t start = 0;
  uint64_t end = 0;
  /// Version this transaction published to `vertex`'s replicas, or 0 if
  /// the execution sent no messages (an unpublished write is invisible to
  /// every other transaction, like Algorithm 1's superstep-0 init).
  uint64_t written_version = 0;

  struct Read {
    VertexId neighbor = kInvalidVertex;
    uint64_t seen_version = 0;    ///< from delivered messages (replica)
    uint64_t current_version = 0; ///< primary copy at txn start
  };
  std::vector<Read> reads;
};

/// Records the transaction history of an engine run for offline
/// serializability checking. Engine hooks:
///   * OnDeliver(src, dst, version)   — a data message from src (written at
///     `version`) became visible to dst's replica/message store.
///   * OnTxnBegin(...)                — vertex execution starts; snapshots
///     the read set and returns the version outgoing messages must carry.
///   * OnTxnEnd(...)                  — execution finished; commits.
///
/// All hooks are thread-safe. Intended for test/verification runs on
/// small to medium graphs (memory is O(|E| + #transactions)).
class HistoryRecorder {
 public:
  HistoryRecorder(const Graph* graph, int num_workers);

  HistoryRecorder(const HistoryRecorder&) = delete;
  HistoryRecorder& operator=(const HistoryRecorder&) = delete;

  /// Starts the transaction for one execution of `v`. Returns the version
  /// number that this execution's writes (outgoing messages) carry.
  uint64_t OnTxnBegin(WorkerId w, VertexId v, int superstep);

  /// Commits the transaction begun by the matching OnTxnBegin.
  /// `published` says whether the execution sent at least one message;
  /// only published writes advance the vertex's replicated version.
  void OnTxnEnd(WorkerId w, VertexId v, bool published);

  /// Marks that dst's replica of src is now at `version` (a data message
  /// carrying that version was applied to dst's message store).
  void OnDeliver(VertexId src, VertexId dst, uint64_t version);

  /// Committed version of `v` (number of completed executions).
  uint64_t VersionOf(VertexId v) const {
    return versions_[v].load(std::memory_order_acquire);
  }

  /// All transactions from all workers. Call only after the run finished.
  std::vector<TxnRecord> TakeRecords();

  /// Deep copy of the recorder state (records, versions, delivered
  /// versions, logical clock). Take only at a quiescent point — a global
  /// barrier, where no transaction is open; checked.
  struct Snapshot {
    uint64_t clock = 1;
    std::vector<uint64_t> versions;
    std::vector<uint64_t> delivered;
    std::vector<std::vector<TxnRecord>> records;
  };
  Snapshot TakeSnapshot() const;

  /// Rolls the recorder back to `snap` (engine recovery: transactions from
  /// the failed attempt vanish from the history, exactly as their effects
  /// vanish from the restored state). Any open transactions on the failed
  /// attempt are discarded. Call only while no engine thread is running.
  void RestoreSnapshot(const Snapshot& snap);

 private:
  const Graph* graph_;
  std::atomic<uint64_t> clock_{1};
  /// Committed version per vertex (0 = never executed).
  std::vector<std::atomic<uint64_t>> versions_;
  /// Highest delivered version per in-edge, indexed by the graph's
  /// in-edge CSR position of (src -> dst).
  std::vector<std::atomic<uint64_t>> delivered_;

  struct WorkerLog {
    sy::Mutex mu;
    std::vector<TxnRecord> records SY_GUARDED_BY(mu);
    /// Transactions currently open on this worker, keyed by vertex.
    std::vector<TxnRecord> open SY_GUARDED_BY(mu);
  };
  std::vector<std::unique_ptr<WorkerLog>> logs_;

  /// Index of directed edge (src -> dst) in the in-edge CSR of dst.
  int64_t InEdgeIndex(VertexId src, VertexId dst) const;
  std::vector<int64_t> in_offsets_;
};

/// Result of checking a history against the paper's correctness criteria.
struct HistoryCheck {
  int64_t num_transactions = 0;
  /// Condition C1 (Section 3.3): every read saw an up-to-date replica.
  bool c1_fresh_reads = true;
  int64_t c1_violations = 0;
  /// Condition C2: no transaction overlapped a neighbor's transaction.
  bool c2_no_neighbor_overlap = true;
  int64_t c2_violations = 0;
  /// One-copy serializability via serialization-graph acyclicity.
  bool serializable = true;
  /// Human-readable description of the first few violations.
  std::vector<std::string> violation_samples;

  bool ok() const {
    return c1_fresh_reads && c2_no_neighbor_overlap && serializable;
  }
};

/// Checks a recorded history: C1 freshness, C2 interval disjointness for
/// every graph edge, and acyclicity of the (multiversion) serialization
/// graph built from write->read and read->overwrite dependencies.
HistoryCheck CheckHistory(const Graph& graph, std::vector<TxnRecord> records);

}  // namespace serigraph

#endif  // SERIGRAPH_VERIFY_HISTORY_H_
