# Empty compiler generated dependencies file for serigraph_sync.
# This may be replaced when dependencies are built.
