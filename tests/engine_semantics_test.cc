// Tests of BSP/AP computation-model semantics: message visibility,
// halting/reactivation, combiners, max-superstep cutoff, and the
// staleness behaviours from the paper's Figures 2-3.

#include <gtest/gtest.h>

#include <atomic>

#include "algos/coloring.h"
#include "algos/sssp.h"
#include "graph/generators.h"
#include "pregel/engine.h"

namespace serigraph {
namespace {

Graph Make(const EdgeList& el) {
  auto g = Graph::FromEdgeList(el);
  EXPECT_TRUE(g.ok()) << g.status();
  return std::move(g).value();
}

/// Records, for each execution, the superstep and the messages seen.
/// Vertex value = superstep in which the first message arrived (-1 none).
struct ProbeProgram {
  using VertexValue = int64_t;
  using Message = int64_t;

  VertexValue InitialValue(VertexId, const Graph&) const { return -1; }

  template <typename Ctx>
  void Compute(Ctx& ctx, std::span<const Message> messages) const {
    if (ctx.superstep() == 0 && ctx.id() == 0) {
      // v0 sends in superstep 0.
      ctx.SendToAllOutNeighbors(42);
    }
    if (!messages.empty() && ctx.value() == -1) {
      ctx.set_value(ctx.superstep());
    }
    if (ctx.superstep() >= 3) ctx.VoteToHalt();
  }
};

TEST(BspSemanticsTest, MessagesVisibleOnlyNextSuperstep) {
  // v0 -> v1 on the same worker: even local messages must be delayed
  // under BSP (the paper's footnote 1: BSP updates replicas lazily).
  Graph g = Make({2, {{0, 1}}});
  EngineOptions opts;
  opts.model = ComputationModel::kBsp;
  opts.num_workers = 1;
  opts.max_supersteps = 6;
  Engine<ProbeProgram> engine(&g, opts);
  auto result = engine.Run(ProbeProgram());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->values[1], 1);  // sent in 0, seen in 1
}

TEST(ApSemanticsTest, LocalMessagesVisibleSameSuperstep) {
  // Under AP with one worker, v0 executes before v1 (same partition,
  // sequential), so v1 sees the message in superstep 0 already.
  Graph g = Make({2, {{0, 1}}});
  EngineOptions opts;
  opts.model = ComputationModel::kAsync;
  opts.num_workers = 1;
  opts.partitions_per_worker = 1;
  opts.max_supersteps = 6;
  Engine<ProbeProgram> engine(&g, opts);
  auto result = engine.Run(ProbeProgram());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->values[1], 0);  // eager local replica update
}

TEST(BspSemanticsTest, Figure2OscillationIsDeterministic) {
  // The paper's Figure 2: repair coloring on the 4-cycle under BSP
  // oscillates; after every superstep >= 1 all four vertices share one
  // color, flipping 0 <-> 1. Cut off at an even count: all back to 0.
  Graph g = Make(PaperExampleGraph());
  for (int cutoff : {10, 11}) {
    EngineOptions opts;
    opts.model = ComputationModel::kBsp;
    opts.num_workers = 2;
    opts.partitions_per_worker = 1;
    opts.partition_scheme = PartitionScheme::kContiguous;
    opts.max_supersteps = cutoff;
    Engine<RepairColoring> engine(&g, opts);
    auto result = engine.Run(RepairColoring());
    ASSERT_TRUE(result.ok());
    EXPECT_FALSE(result->stats.converged);
    auto colors = RepairColoringColors(result->values);
    // All vertices always hold the same color => never proper.
    EXPECT_EQ(colors[0], colors[1]);
    EXPECT_EQ(colors[1], colors[2]);
    EXPECT_EQ(colors[2], colors[3]);
  }
}

struct HaltNow {
  using VertexValue = int64_t;
  using Message = int64_t;
  VertexValue InitialValue(VertexId, const Graph&) const { return 0; }
  template <typename Ctx>
  void Compute(Ctx& ctx, std::span<const Message>) const {
    ctx.set_value(ctx.value() + 1);
    ctx.VoteToHalt();
  }
};

struct PingOnce {
  using VertexValue = int64_t;  // execution count
  using Message = int64_t;
  VertexValue InitialValue(VertexId, const Graph&) const { return 0; }
  template <typename Ctx>
  void Compute(Ctx& ctx, std::span<const Message>) const {
    ctx.set_value(ctx.value() + 1);
    if (ctx.id() == 0 && ctx.superstep() == 1) {
      ctx.SendToAllOutNeighbors(1);
    }
    if (ctx.id() == 0 && ctx.superstep() < 1) return;  // stay active
    ctx.VoteToHalt();
  }
};

struct NeverHalt {
  using VertexValue = int64_t;
  using Message = int64_t;
  VertexValue InitialValue(VertexId, const Graph&) const { return 0; }
  template <typename Ctx>
  void Compute(Ctx& ctx, std::span<const Message>) const {
    ctx.set_value(ctx.value() + 1);
  }
};

TEST(HaltingTest, HaltedVertexWithoutMessagesDoesNotRun) {
  // Count executions: each vertex halts immediately and nobody sends
  // messages, so there must be exactly one execution per vertex.
  Graph g = Make(Ring(32));
  EngineOptions opts;
  opts.num_workers = 2;
  Engine<HaltNow> engine(&g, opts);
  auto result = engine.Run(HaltNow());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->stats.converged);
  EXPECT_EQ(result->stats.supersteps, 1);
  for (int64_t executions : result->values) EXPECT_EQ(executions, 1);
  EXPECT_EQ(result->stats.Metric("pregel.vertex_executions"), 32);
}

TEST(HaltingTest, MessageReactivatesHaltedVertex) {
  // v0 pings v1 once in superstep 1; v1 halted in superstep 0 and must
  // wake exactly once more.
  Graph g = Make({2, {{0, 1}}});
  EngineOptions opts;
  opts.model = ComputationModel::kBsp;
  opts.num_workers = 1;
  Engine<PingOnce> engine(&g, opts);
  auto result = engine.Run(PingOnce());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->stats.converged);
  EXPECT_EQ(result->values[0], 2);  // supersteps 0 and 1
  EXPECT_EQ(result->values[1], 2);  // superstep 0, then woken in 2
}

TEST(CombinerTest, MinCombinerCollapsesMessages) {
  // Star: all leaves message the center in one superstep; with the min
  // combiner the center's store holds a single combined message.
  Graph g = Make(Star(64));
  EngineOptions opts;
  opts.model = ComputationModel::kBsp;
  opts.num_workers = 2;
  Engine<Sssp> engine(&g, opts);
  auto result = engine.Run(Sssp(/*source=*/1));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->values, ReferenceSssp(g, 1));
}

TEST(EngineConfigTest, MaxSuperstepsCutsOff) {
  Graph g = Make(Ring(8));
  EngineOptions opts;
  opts.num_workers = 2;
  opts.max_supersteps = 7;
  Engine<NeverHalt> engine(&g, opts);
  auto result = engine.Run(NeverHalt());
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->stats.converged);
  EXPECT_EQ(result->stats.supersteps, 7);
  for (int64_t v : result->values) EXPECT_EQ(v, 7);
}

TEST(EngineConfigTest, WorkerAndThreadSweeps) {
  Graph g = Make(ErdosRenyi(300, 1500, 21));
  auto reference = ReferenceSssp(g, 0);
  for (int workers : {1, 2, 3, 8}) {
    for (int threads : {1, 2, 4}) {
      EngineOptions opts;
      opts.num_workers = workers;
      opts.compute_threads_per_worker = threads;
      opts.partitions_per_worker = 4;
      Engine<Sssp> engine(&g, opts);
      auto result = engine.Run(Sssp(0));
      ASSERT_TRUE(result.ok()) << result.status();
      EXPECT_EQ(result->values, reference)
          << "workers=" << workers << " threads=" << threads;
    }
  }
}

TEST(EngineConfigTest, RunTwiceIsAnError) {
  Graph g = Make(Ring(4));
  EngineOptions opts;
  opts.num_workers = 1;
  Engine<Sssp> engine(&g, opts);
  ASSERT_TRUE(engine.Run(Sssp(0)).ok());
  EXPECT_DEATH((void)engine.Run(Sssp(0)), "");
}

TEST(EngineConfigTest, ExplicitPartitioningValidation) {
  Graph g = Make(Ring(4));
  EngineOptions opts;
  opts.num_workers = 2;
  Engine<Sssp> engine(&g, opts);
  // Wrong vertex count.
  EXPECT_FALSE(
      engine.UsePartitioning(Partitioning::Contiguous(5, 2, 1)).ok());
  // Wrong worker count.
  EXPECT_FALSE(
      engine.UsePartitioning(Partitioning::Contiguous(4, 3, 1)).ok());
  EXPECT_TRUE(
      engine.UsePartitioning(Partitioning::Contiguous(4, 2, 1)).ok());
}

}  // namespace
}  // namespace serigraph
