#ifndef SERIGRAPH_CHECK_SERICHK_H_
#define SERIGRAPH_CHECK_SERICHK_H_

#include <cstdint>
#include <string>

#include "sync/technique.h"

// serichk: exhaustive protocol model checking for the synchronization
// techniques (docs/MODEL_CHECKING.md). Runs greedy coloring on a small
// graph under the virtual cooperative scheduler and explores thread
// interleavings depth-first, checking every schedule for deadlock
// freedom, C1/C2 freshness, 1SR, and a proper coloring.
namespace serigraph {
namespace check {

struct SerichkConfig {
  SyncMode technique = SyncMode::kVertexLocking;
  /// "ring", "clique", or "star".
  std::string topology = "ring";
  int vertices = 6;
  int workers = 2;
  int partitions_per_worker = 1;
  int preemption_bound = 1;
  int64_t max_schedules = 0;
  int64_t max_seconds = 0;
  bool object_por = true;
  int64_t max_steps = 2000000;
  /// Planted bug to enable (see common/planted.h), empty for none.
  std::string plant;
  /// Comma-separated decision trail: replay this single schedule instead
  /// of exploring.
  std::string replay;
};

/// Process exit code: 0 = all explored schedules pass, 2 = bad config,
/// 3 = property violation (C1/C2/1SR/coloring/engine error). Deadlock
/// (4), livelock (5), and replay divergence (6) exit the process from
/// inside the scheduler with the trail already printed.
int RunSerichk(const SerichkConfig& cfg);

}  // namespace check
}  // namespace serigraph

#endif  // SERIGRAPH_CHECK_SERICHK_H_
