#include "graph/partitioning.h"

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace serigraph {
namespace {

Graph Make(const EdgeList& el) {
  auto g = Graph::FromEdgeList(el);
  EXPECT_TRUE(g.ok()) << g.status();
  return std::move(g).value();
}

TEST(PartitioningTest, HashCoversAllPartitionsRoundRobinWorkers) {
  Partitioning p = Partitioning::Hash(1000, 4, 3, /*seed=*/1);
  EXPECT_EQ(p.num_workers(), 4);
  EXPECT_EQ(p.num_partitions(), 12);
  int64_t total = 0;
  for (int part = 0; part < 12; ++part) {
    EXPECT_EQ(p.WorkerOfPartition(part), part % 4);
    total += static_cast<int64_t>(p.VerticesOfPartition(part).size());
  }
  EXPECT_EQ(total, 1000);
  for (WorkerId w = 0; w < 4; ++w) {
    EXPECT_EQ(p.PartitionsOfWorker(w).size(), 3u);
  }
}

TEST(PartitioningTest, HashIsBalancedish) {
  Partitioning p = Partitioning::Hash(10000, 8, 8, /*seed=*/2);
  for (int part = 0; part < p.num_partitions(); ++part) {
    const auto size = p.VerticesOfPartition(part).size();
    EXPECT_GT(size, 100u);  // expected ~156
    EXPECT_LT(size, 250u);
  }
}

TEST(PartitioningTest, ContiguousRanges) {
  Partitioning p = Partitioning::Contiguous(100, 2, 2);
  EXPECT_EQ(p.PartitionOf(0), 0);
  EXPECT_EQ(p.PartitionOf(99), 3);
  EXPECT_EQ(p.WorkerOf(0), 0);
  EXPECT_EQ(p.WorkerOf(99), 1);
  // Partitions 0,1 on worker 0; 2,3 on worker 1.
  EXPECT_EQ(p.PartitionsOfWorker(0), (std::vector<PartitionId>{0, 1}));
}

TEST(PartitioningTest, FromAssignmentValidation) {
  EXPECT_FALSE(Partitioning::FromAssignment({0}, {}).ok());
  EXPECT_FALSE(Partitioning::FromAssignment({2}, {0, 0}).ok());  // bad part
  EXPECT_FALSE(Partitioning::FromAssignment({0}, {2}).ok());  // sparse worker
  auto ok = Partitioning::FromAssignment({0, 1, 1}, {1, 0});
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->num_workers(), 2);
  EXPECT_EQ(ok->WorkerOf(0), 1);
}

// The paper's Figure 4 example: 7 vertices, 4 partitions, 2 workers.
//   Worker 1: P0 = {v0, v1}, P1 = {v2};  Worker 2: P2 = {v3, v4}, P3 = {v5, v6}
//   Edges: v0-v1 (in P0? no: v0 in P0, v1 in P0? figure shows v0,v1 in
//   separate boxes)...
// We reproduce the classification outcomes the paper states: v6
// p-internal, v0 and v4 local boundary, v2 remote boundary, v1/v3/v5
// mixed boundary.
TEST(BoundaryInfoTest, PaperFigure4Classification) {
  // Layout from Figure 4: W1 = {P0={v0,v1}, P1={v2}}, W2 = {P2={v3,v4},
  // P3={v5,v6}}. Undirected edges chosen to produce the stated classes:
  //   v0-v1 (P0-P0? no: local boundary needs cross-partition same-worker)
  // Figure 4 edges: v0-v2 (P0-P1, same worker), v1-v2 (P0-P1 same worker),
  // v1-v3 (W1-W2), v2-v3? The figure shows: v0-v2? Let's use edges that
  // realize the published classification:
  //   v0 - v2   (same worker, cross partition)  -> v0 local boundary
  //   v1 - v2   (same worker, cross partition)
  //   v1 - v3   (cross worker)                  -> v1 mixed boundary
  //   v2 - v5   (cross worker)                  -> v2: only remote? v2 has
  //             local (v0,v1) too, so give v2 only cross-worker edges? v2
  //             is remote boundary in the paper; use v2 - v5 only.
  // Adjusted realization with the same outcome classes:
  //   v2 - v5 (cross worker), v3 - v5 (same worker cross partition),
  //   v3 - v1 (cross worker), v4 - v3 (same partition),
  //   v4 - v5 (same worker cross partition), v6 - v5 (same partition).
  EdgeList el;
  el.num_vertices = 7;
  auto undirected = [&](VertexId a, VertexId b) {
    el.edges.push_back({a, b});
    el.edges.push_back({b, a});
  };
  undirected(0, 1);  // within P0
  undirected(1, 2);  // W1 cross partition
  undirected(0, 2);  // W1 cross partition
  undirected(2, 5);  // cross worker
  undirected(1, 3);  // cross worker
  undirected(3, 4);  // within P2
  undirected(3, 5);  // W2 cross partition
  undirected(4, 5);  // W2 cross partition
  undirected(5, 6);  // within P3
  Graph g = Make(el);
  auto p = Partitioning::FromAssignment({0, 0, 1, 2, 2, 3, 3}, {0, 0, 1, 1});
  ASSERT_TRUE(p.ok());
  BoundaryInfo info(g, *p);

  EXPECT_EQ(info.LocalityOf(6), VertexLocality::kPInternal);
  EXPECT_EQ(info.LocalityOf(0), VertexLocality::kLocalBoundary);
  EXPECT_EQ(info.LocalityOf(4), VertexLocality::kLocalBoundary);
  // v2: neighbors v0,v1 (same worker, other partition) and v5 (remote).
  EXPECT_EQ(info.LocalityOf(2), VertexLocality::kMixedBoundary);
  EXPECT_EQ(info.LocalityOf(1), VertexLocality::kMixedBoundary);
  EXPECT_EQ(info.LocalityOf(3), VertexLocality::kMixedBoundary);
  EXPECT_EQ(info.LocalityOf(5), VertexLocality::kMixedBoundary);

  // Derived coarse categories (Definitions 1 and 4).
  EXPECT_TRUE(info.IsMInternal(0));
  EXPECT_TRUE(info.IsMInternal(6));
  EXPECT_TRUE(info.IsMBoundary(1));
  EXPECT_TRUE(info.IsPInternal(6));
  EXPECT_TRUE(info.IsPBoundary(0));

  const int64_t* counts = info.counts();
  EXPECT_EQ(counts[0] + counts[1] + counts[2] + counts[3], 7);
}

TEST(BoundaryInfoTest, RemoteBoundaryRequiresOnlyRemoteNeighbors) {
  // v0 on worker 0; its single neighbor v1 on worker 1.
  EdgeList el{2, {{0, 1}, {1, 0}}};
  Graph g = Make(el);
  auto p = Partitioning::FromAssignment({0, 1}, {0, 1});
  ASSERT_TRUE(p.ok());
  BoundaryInfo info(g, *p);
  EXPECT_EQ(info.LocalityOf(0), VertexLocality::kRemoteBoundary);
  EXPECT_EQ(info.LocalityOf(1), VertexLocality::kRemoteBoundary);
}

TEST(BoundaryInfoTest, DirectedInEdgesCount) {
  // Only a directed edge v0 -> v1; both endpoints must still see each
  // other as neighbors (Section 3.5: in-edge neighbors matter).
  EdgeList el{2, {{0, 1}}};
  Graph g = Make(el);
  auto p = Partitioning::FromAssignment({0, 1}, {0, 1});
  ASSERT_TRUE(p.ok());
  BoundaryInfo info(g, *p);
  EXPECT_TRUE(info.IsMBoundary(0));
  EXPECT_TRUE(info.IsMBoundary(1));
}

TEST(PartitionGraphTest, Figure5VirtualPartitionEdges) {
  // Same layout as the Figure 4 test; partition adjacency must connect
  // exactly the partition pairs with a crossing edge.
  EdgeList el;
  el.num_vertices = 7;
  auto undirected = [&](VertexId a, VertexId b) {
    el.edges.push_back({a, b});
    el.edges.push_back({b, a});
  };
  undirected(0, 1);
  undirected(1, 2);
  undirected(0, 2);
  undirected(2, 5);
  undirected(1, 3);
  undirected(3, 4);
  undirected(3, 5);
  undirected(4, 5);
  undirected(5, 6);
  Graph g = Make(el);
  auto p = Partitioning::FromAssignment({0, 0, 1, 2, 2, 3, 3}, {0, 0, 1, 1});
  ASSERT_TRUE(p.ok());
  auto adj = BuildPartitionGraph(g, *p);
  EXPECT_EQ(adj[0], (std::vector<PartitionId>{1, 2}));
  EXPECT_EQ(adj[1], (std::vector<PartitionId>{0, 3}));
  EXPECT_EQ(adj[2], (std::vector<PartitionId>{0, 3}));
  EXPECT_EQ(adj[3], (std::vector<PartitionId>{1, 2}));
  EXPECT_EQ(CountPartitionForks(adj), 4);
}

TEST(PartitionGraphTest, ForkCountBoundedByPairCount) {
  Graph g = Make(PowerLawChungLu(500, 8, 2.3, 3)).Undirected();
  for (int workers : {2, 4, 8}) {
    Partitioning p = Partitioning::Hash(g.num_vertices(), workers, workers);
    int64_t forks = CountPartitionForks(BuildPartitionGraph(g, p));
    const int64_t np = p.num_partitions();
    EXPECT_LE(forks, np * (np - 1) / 2);
    EXPECT_GT(forks, 0);
  }
}

TEST(PartitionGraphTest, DirectedEdgesProduceSymmetricAdjacency) {
  EdgeList el{4, {{0, 2}, {3, 1}}};
  Graph g = Make(el);
  auto p = Partitioning::FromAssignment({0, 0, 1, 1}, {0, 1});
  ASSERT_TRUE(p.ok());
  auto adj = BuildPartitionGraph(g, *p);
  EXPECT_EQ(adj[0], (std::vector<PartitionId>{1}));
  EXPECT_EQ(adj[1], (std::vector<PartitionId>{0}));
}

}  // namespace
}  // namespace serigraph
