#ifndef SERIGRAPH_OBS_TRACE_H_
#define SERIGRAPH_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "obs/flightrec.h"

namespace serigraph {

/// One recorded event: a completed span ("X" phase in the Chrome
/// trace-event format), one end of a flow arrow ('s' = start at the
/// sender, 'f' = finish at the receiver) binding cross-thread causality,
/// or a counter sample ('C') rendered by the viewer as a value track
/// (per-superstep IPC, LLC misses, RSS — see docs/PROFILING.md).
/// `name` must point at a string with static storage duration — span
/// macros pass literals, so recording never copies or allocates.
struct TraceEvent {
  const char* name = nullptr;
  int64_t ts_us = 0;   ///< start, microseconds since the trace epoch
  int64_t dur_us = 0;  ///< duration (spans) or sampled value (counters)
  char ph = 'X';       ///< 'X' span, 's'/'f' flow ends, 'C' counter
  uint64_t id = 0;     ///< flow id pairing 's' with 'f' (flows only)
};

/// Process-wide tracer with per-thread event buffers.
///
/// Design goals (in priority order):
///  1. Near-zero cost when disabled: the span macros check one relaxed
///     atomic load and touch nothing else.
///  2. No locks on the hot path when enabled: each thread appends to its
///     own chunked buffer; a chunk's element count is published with a
///     release store and read by the exporter with an acquire load, so
///     concurrent export observes a consistent prefix (race-free under
///     TSan; see tests/trace_test.cc and scripts/check.sh).
///  3. Chrome trace-event JSON output, loadable in chrome://tracing and
///     Perfetto (https://ui.perfetto.dev).
///
/// Buffers are bounded (kMaxChunksPerThread); once a thread fills its
/// budget further events from that thread are dropped and counted.
class Tracer {
 public:
  static constexpr size_t kChunkCapacity = 4096;
  static constexpr size_t kMaxChunksPerThread = 256;

  /// The process-wide tracer instance used by the SG_TRACE_* macros.
  static Tracer& Get();

  /// Fast global check, inlined into every span constructor.
  static bool enabled() {
    // mo: on/off gate; stale reads tolerated
    return enabled_.load(std::memory_order_relaxed);
  }

  // mo: on/off gate; stale reads tolerated
  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  // mo: on/off gate; stale reads tolerated
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }

  /// Microseconds since the trace epoch (process start).
  static int64_t NowMicros();

  /// Appends a completed span to the calling thread's buffer.
  void RecordComplete(const char* name, int64_t ts_us, int64_t dur_us);

  /// Appends one end of a flow arrow at the current time. `ph` is 's'
  /// (start, at the sender) or 'f' (finish, at the receiver); both ends
  /// must use the same `name` and `id` to be connected by the viewer.
  void RecordFlow(const char* name, char ph, uint64_t id);

  /// Appends a counter sample ('C' phase) at the current time. The
  /// viewer plots successive samples with the same `name` on one value
  /// track per thread.
  void RecordCounter(const char* name, int64_t value);

  /// Allocates a process-unique nonzero flow id (for WireMessage::span).
  static uint64_t NextFlowId();

  /// Names the calling thread in the exported trace ("worker-3"). Safe to
  /// call at any time; the last name wins.
  void SetCurrentThreadName(const std::string& name);

  /// Serializes all recorded events as Chrome trace-event JSON:
  ///   {"traceEvents":[{"name":...,"ph":"X","pid":0,"tid":...,
  ///                    "ts":...,"dur":...}, ...]}
  /// Safe to call while other threads are still recording (exports a
  /// consistent prefix of each buffer).
  std::string ToChromeTraceJson() const;

  /// Writes ToChromeTraceJson() to `path`.
  Status WriteChromeTrace(const std::string& path) const;

  /// Total events currently recorded across all threads.
  int64_t event_count() const;
  /// Events dropped because a thread exhausted its buffer budget.
  int64_t dropped_count() const {
    return dropped_.load(std::memory_order_relaxed);  // mo: stat counter
  }

  /// Discards all recorded events and thread names. Not thread-safe with
  /// concurrent recording; meant for tests and between CLI runs.
  void Reset();

 private:
  struct Chunk {
    TraceEvent events[kChunkCapacity];
    /// Number of valid entries; written only by the owning thread
    /// (release), read by the exporter (acquire).
    std::atomic<size_t> count{0};
  };

  struct ThreadBuffer {
    uint64_t tid = 0;
    std::string name SY_GUARDED_BY(mu);
    /// Guards the chunk list structure (growth + export snapshot), never
    /// held while writing events. Leaf lock: no other lock may be
    /// acquired while holding it (docs/LOCK_ORDER.md).
    mutable sy::Mutex mu;
    std::vector<std::unique_ptr<Chunk>> chunks SY_GUARDED_BY(mu);
  };

  Tracer() = default;

  ThreadBuffer* CurrentThreadBuffer();

  static std::atomic<bool> enabled_;

  mutable sy::Mutex registry_mu_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_
      SY_GUARDED_BY(registry_mu_);
  uint64_t next_tid_ SY_GUARDED_BY(registry_mu_) = 1;
  std::atomic<uint64_t> epoch_{0};  ///< bumped by Reset to invalidate TLS
  std::atomic<int64_t> dropped_{0};
};

/// RAII span: records a complete event from construction to destruction.
/// `name` must be a string literal (or otherwise outlive the tracer).
/// Every span additionally feeds the always-on FlightRecorder ring
/// (obs/flightrec.h), so the recent past stays reconstructible in
/// incident bundles even when full tracing is off.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (Tracer::enabled() || FlightRecorder::enabled()) {
      name_ = name;
      start_us_ = Tracer::NowMicros();
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() {
    if (name_ != nullptr) {
      const int64_t end = Tracer::NowMicros();
      if (Tracer::enabled()) {
        Tracer::Get().RecordComplete(name_, start_us_, end - start_us_);
      }
      FlightRecorder::RecordSpan(name_, start_us_, end - start_us_);
    }
  }

 private:
  const char* name_ = nullptr;
  int64_t start_us_ = 0;
};

#define SG_TRACE_CONCAT_INNER(a, b) a##b
#define SG_TRACE_CONCAT(a, b) SG_TRACE_CONCAT_INNER(a, b)

/// Traces the enclosing scope as a span named `name` (a string literal).
#define SG_TRACE_SPAN(name) \
  ::serigraph::TraceSpan SG_TRACE_CONCAT(sg_trace_span_, __COUNTER__)(name)

/// Records an already-measured interval (for spans that do not map to a
/// lexical scope, e.g. token hold times). Feeds the FlightRecorder too.
#define SG_TRACE_INTERVAL(name, start_us, dur_us)                     \
  do {                                                                \
    if (::serigraph::Tracer::enabled()) {                             \
      ::serigraph::Tracer::Get().RecordComplete((name), (start_us),   \
                                                (dur_us));            \
    }                                                                 \
    ::serigraph::FlightRecorder::RecordSpan((name), (start_us),       \
                                            (dur_us));                \
  } while (0)

/// Records a counter sample on the calling thread's track. Feeds the
/// FlightRecorder too.
#define SG_TRACE_COUNTER(name, value)                                 \
  do {                                                                \
    if (::serigraph::Tracer::enabled()) {                             \
      ::serigraph::Tracer::Get().RecordCounter((name), (value));      \
    }                                                                 \
    ::serigraph::FlightRecorder::RecordCounter((name), (value));      \
  } while (0)

}  // namespace serigraph

#endif  // SERIGRAPH_OBS_TRACE_H_
