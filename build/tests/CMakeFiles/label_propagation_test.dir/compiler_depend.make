# Empty compiler generated dependencies file for label_propagation_test.
# This may be replaced when dependencies are built.
