// Tests for the GAS engine (paper Section 2.3): sync-mode semantics,
// async-mode termination properties, and the serializable mode's
// guarantees.

#include "gas/gas_engine.h"

#include <gtest/gtest.h>

#include "algos/coloring.h"
#include "algos/pagerank.h"
#include "gas/gas_programs.h"
#include "graph/generators.h"

namespace serigraph {
namespace {

Graph Make(const EdgeList& el) {
  auto g = Graph::FromEdgeList(el);
  EXPECT_TRUE(g.ok()) << g.status();
  return std::move(g).value();
}

TEST(GasSyncTest, ColoringOscillatesLikeBsp) {
  // Sync GAS has BSP semantics: on a bipartite graph every vertex sees
  // the same stale snapshot, so all vertices re-pick the same color in
  // lockstep and the computation never terminates (paper Section 2.3:
  // synchronous models suffer the same staleness as Figure 2).
  Graph g = Make(Path(10)).Undirected();
  GasOptions opts;
  opts.mode = GasMode::kSync;
  opts.max_supersteps = 100;
  GasEngine<GasColoring> engine(&g, opts);
  auto result = engine.Run(GasColoring());
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->converged);
  EXPECT_FALSE(IsProperColoring(g, result->values));
}

TEST(GasSyncTest, PageRankMatchesReference) {
  Graph g = Make(ErdosRenyi(200, 1000, 3));
  GasOptions opts;
  opts.mode = GasMode::kSync;
  opts.max_supersteps = 500;
  GasEngine<GasPageRank> engine(&g, opts);
  auto result = engine.Run(GasPageRank(&g, 1e-8));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
  auto reference = ReferencePageRank(g, 1e-10);
  EXPECT_LT(MaxAbsDifference(result->values, reference), 1e-4);
}

TEST(GasAsyncSerializableTest, ColoringAlwaysTerminatesProper) {
  // The paper's guarantee: async GAS *with* serializability always
  // terminates for coloring. Exercise several graphs and thread counts.
  for (const char* name : {"ring", "dense", "star"}) {
    EdgeList el;
    if (std::string(name) == "ring") el = Ring(128);
    if (std::string(name) == "dense") el = Complete(16);
    if (std::string(name) == "star") el = Star(64);
    Graph g = Make(el).Undirected();
    for (int threads : {1, 4, 8}) {
      GasOptions opts;
      opts.mode = GasMode::kAsyncSerializable;
      opts.num_threads = threads;
      opts.max_updates = 1000000;
      GasEngine<GasColoring> engine(&g, opts);
      auto result = engine.Run(GasColoring());
      ASSERT_TRUE(result.ok());
      EXPECT_TRUE(result->converged) << name << " threads=" << threads;
      EXPECT_TRUE(IsProperColoring(g, result->values))
          << name << " threads=" << threads;
    }
  }
}

TEST(GasAsyncSerializableTest, SingleThreadAsyncIsSequentialAndProper) {
  // One thread => no interleaving even without the serializable mode.
  Graph g = Make(Complete(12));
  GasOptions opts;
  opts.mode = GasMode::kAsync;
  opts.num_threads = 1;
  GasEngine<GasColoring> engine(&g, opts);
  auto result = engine.Run(GasColoring());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
  EXPECT_TRUE(IsProperColoring(g, result->values));
}

TEST(GasAsyncTest, UpdateBudgetBoundsLivelock) {
  // Whatever the interleaving does, the engine must stop at the budget.
  Graph g = Make(Complete(16));
  GasOptions opts;
  opts.mode = GasMode::kAsync;
  opts.num_threads = 8;
  opts.max_updates = 2000;
  GasEngine<GasColoring> engine(&g, opts);
  auto result = engine.Run(GasColoring());
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->updates, 2000 + 8);  // one in-flight update per thread
}

TEST(GasAsyncSerializableTest, PageRankConverges) {
  Graph g = Make(ErdosRenyi(150, 800, 5));
  GasOptions opts;
  opts.mode = GasMode::kAsyncSerializable;
  opts.num_threads = 4;
  opts.max_updates = 5000000;
  GasEngine<GasPageRank> engine(&g, opts);
  auto result = engine.Run(GasPageRank(&g, 1e-6));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
  auto reference = ReferencePageRank(g, 1e-9);
  EXPECT_LT(MaxAbsDifference(result->values, reference), 1e-3);
}

TEST(GasModeNameTest, Names) {
  EXPECT_STREQ(GasModeName(GasMode::kSync), "sync-GAS");
  EXPECT_STREQ(GasModeName(GasMode::kAsync), "async-GAS");
  EXPECT_STREQ(GasModeName(GasMode::kAsyncSerializable),
               "async-GAS+serializable");
}

}  // namespace
}  // namespace serigraph
