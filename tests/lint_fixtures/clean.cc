// Lint fixture control: idiomatic sy:: locking that must lint clean —
// scoped critical sections, declared-order nesting (registry before
// buffer, matching docs/LOCK_ORDER.md), balanced manual Lock/Unlock.
#include "common/mutex.h"

namespace lint_fixture {

struct Buffer {
  sy::Mutex mu;
  int events = 0;
};

class GoodExporter {
 public:
  void Export(Buffer* buffer) {
    sy::MutexLock registry_lock(&registry_mu_);
    {
      sy::MutexLock lock(&buffer->mu);
      ++buffer->events;
    }
    ++generation_;
  }

  void ManualPair() {
    registry_mu_.Lock();
    ++generation_;
    registry_mu_.Unlock();
  }

 private:
  sy::Mutex registry_mu_;
  int generation_ = 0;
};

}  // namespace lint_fixture
