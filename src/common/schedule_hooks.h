#ifndef SERIGRAPH_COMMON_SCHEDULE_HOOKS_H_
#define SERIGRAPH_COMMON_SCHEDULE_HOOKS_H_

#include <atomic>
#include <mutex>

// Optional schedule-point instrumentation for the sy:: locking wrappers.
//
// A SchedulerClient (in practice serichk's VirtualScheduler, src/check/)
// can install itself process-wide; from then on every sy::Mutex /
// sy::CondVar operation performed by a *registered* thread is routed
// through the client, which serializes the threads onto one virtual
// processor and explores scheduling decisions deterministically. The
// engine, sync techniques, transport and MessageStore run unmodified.
//
// Cost when no client is installed (the production case): one atomic
// load per operation, perfectly predicted. Threads that never register
// (the main thread, test harnesses) pass straight through to the native
// primitives even while a client is installed.
namespace sy {

/// Interface the model checker implements. All hooks are invoked on the
/// instrumented thread itself; OnMutexLock/OnCondWait block (park) the
/// caller until the scheduler grants it the virtual processor again.
/// `mu`/`cv` are stable object identities; `native` is the wrapped
/// std::mutex so the client can keep real ownership mirroring virtual
/// ownership (real locks never contend under exploration).
class SchedulerClient {
 public:
  virtual ~SchedulerClient();

  /// Called from ScheduledThread's constructor on the new thread.
  /// Returns the scheduler-assigned stable thread id (>= 0).
  virtual int OnThreadRegister(const char* role, int index) = 0;
  /// Called from ScheduledThread's destructor, still on that thread.
  virtual void OnThreadExit(int thread_id) = 0;

  /// Replaces mu_.lock(): park until the virtual mutex is free, then
  /// acquire it virtually and natively (uncontended by construction).
  virtual void OnMutexLock(void* mu, std::mutex* native) = 0;
  /// Replaces mu_.try_lock(): a schedule point followed by a
  /// deterministic attempt against the virtual ownership.
  virtual bool OnMutexTryLock(void* mu, std::mutex* native) = 0;
  /// Replaces mu_.unlock(): release natively and virtually. The caller
  /// keeps running (release is not a preemption point by itself).
  virtual void OnMutexUnlock(void* mu, std::mutex* native) = 0;

  /// Replaces the native condition wait: releases `mu`, parks until a
  /// virtual notify (or a shutdown-quiesce spurious wake), reacquires
  /// `mu`, then returns. Timed waits map here too and never "time out" —
  /// exploration's deadlock detection supersedes timeout recovery paths.
  virtual void OnCondWait(void* cv, void* mu, std::mutex* native) = 0;
  /// Observes NotifyOne/NotifyAll; moves virtual waiters to the mutex
  /// wait set (FIFO for NotifyOne, deterministically).
  virtual void OnCondNotify(void* cv, bool notify_all) = 0;

  /// Pure schedule point (SG_FAULT_POINT sites double as these).
  virtual void OnYield(const char* point) = 0;
};

namespace sched_internal {
extern std::atomic<SchedulerClient*> g_client;
extern thread_local int t_thread_id;
}  // namespace sched_internal

/// True while a SchedulerClient is installed (any thread).
inline bool SchedulerArmed() {
  return sched_internal::g_client.load(std::memory_order_acquire) != nullptr;
}

/// The installed client, but only for threads that registered with it;
/// nullptr is the fast path and means "use the native primitive".
inline SchedulerClient* CapturedScheduler() {
  SchedulerClient* client =
      sched_internal::g_client.load(std::memory_order_acquire);
  if (client == nullptr) return nullptr;
  return sched_internal::t_thread_id >= 0 ? client : nullptr;
}

/// Scheduler-assigned id of the calling thread, or -1 when unregistered.
inline int ScheduledThreadId() { return sched_internal::t_thread_id; }

/// Yield point for straight-line code (no lock involved). SG_FAULT_POINT
/// expands to this, so every fault-injection site is also explorable.
inline void SchedulePoint(const char* point) {
  if (SchedulerClient* client = CapturedScheduler()) client->OnYield(point);
}

/// Installs `client` process-wide. Threads created afterwards that
/// construct a ScheduledThread come under its control. Passing nullptr
/// uninstalls. Install/uninstall must happen while no registered thread
/// is running (serichk does this between engine runs).
void InstallScheduler(SchedulerClient* client);

/// RAII thread registration, placed at the top of a controlled thread's
/// body (WorkerLoop / CommLoop). No-op when no scheduler is installed.
class ScheduledThread {
 public:
  ScheduledThread(const char* role, int index);
  ~ScheduledThread();
  ScheduledThread(const ScheduledThread&) = delete;
  ScheduledThread& operator=(const ScheduledThread&) = delete;

 private:
  int id_ = -1;
};

}  // namespace sy

#endif  // SERIGRAPH_COMMON_SCHEDULE_HOOKS_H_
