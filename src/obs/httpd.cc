#include "obs/httpd.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/types.h>
#include <unistd.h>

#include <utility>

#include "common/logging.h"
#include "obs/flightrec.h"
#include "obs/introspect.h"
#include "obs/memprof.h"
#include "obs/report.h"
#include "obs/trace.h"

namespace serigraph {

namespace {

const char* HttpStatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 503:
      return "Service Unavailable";
    default:
      return "Status";
  }
}

/// Minimal query-string decode for one key: returns the (plus- and
/// percent-decoded) value of `key`, or empty.
std::string QueryParam(const std::string& query, const std::string& key) {
  size_t pos = 0;
  while (pos < query.size()) {
    size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    const std::string pair = query.substr(pos, amp - pos);
    const size_t eq = pair.find('=');
    if (eq != std::string::npos && pair.substr(0, eq) == key) {
      std::string value = pair.substr(eq + 1);
      std::string decoded;
      for (size_t i = 0; i < value.size(); ++i) {
        if (value[i] == '+') {
          decoded += ' ';
        } else if (value[i] == '%' && i + 2 < value.size()) {
          const auto hex = [](char c) -> int {
            if (c >= '0' && c <= '9') return c - '0';
            if (c >= 'a' && c <= 'f') return c - 'a' + 10;
            if (c >= 'A' && c <= 'F') return c - 'A' + 10;
            return -1;
          };
          const int hi = hex(value[i + 1]);
          const int lo = hex(value[i + 2]);
          if (hi >= 0 && lo >= 0) {
            decoded += static_cast<char>(hi * 16 + lo);
            i += 2;
          } else {
            decoded += value[i];
          }
        } else {
          decoded += value[i];
        }
      }
      return decoded;
    }
    pos = amp + 1;
  }
  return "";
}

}  // namespace

// ---------------------------------------------------------------------------
// HttpServer

HttpServer::HttpServer(const Options& options, Router router)
    : options_(options), router_(std::move(router)) {}

StatusOr<std::unique_ptr<HttpServer>> HttpServer::Start(const Options& options,
                                                        Router router) {
  std::unique_ptr<HttpServer> server(
      new HttpServer(options, std::move(router)));
  const Status status = server->Listen();
  if (!status.ok()) return status;
  server->accept_thread_ = std::thread([s = server.get()] { s->AcceptLoop(); });
  const int num_threads = options.num_threads < 1 ? 1 : options.num_threads;
  server->workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    server->workers_.emplace_back([s = server.get()] { s->WorkerLoop(); });
  }
  return server;
}

HttpServer::~HttpServer() { Stop(); }

Status HttpServer::Listen() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket: ") + strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const std::string err = strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("bind 127.0.0.1:" +
                            std::to_string(options_.port) + ": " + err);
  }
  if (::listen(listen_fd_, 64) != 0) {
    const std::string err = strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("listen: " + err);
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
                    &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  return Status::OK();
}

void HttpServer::AcceptLoop() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    {
      sy::MutexLock lock(&queue_mu_);
      if (stopping_) {
        if (fd >= 0) ::close(fd);
        return;
      }
      if (fd < 0) {
        if (errno == EINTR || errno == ECONNABORTED) continue;
        return;  // listen socket gone (Stop) or unrecoverable
      }
      if (pending_.size() >= options_.max_queue) {
        ::close(fd);  // overloaded: shed, don't queue unboundedly
        continue;
      }
      pending_.push_back(fd);
    }
    queue_cv_.NotifyOne();
  }
}

void HttpServer::WorkerLoop() {
  while (true) {
    int fd = -1;
    {
      sy::MutexLock lock(&queue_mu_);
      while (pending_.empty() && !stopping_) queue_cv_.Wait(queue_mu_);
      if (pending_.empty() && stopping_) return;
      fd = pending_.front();
      pending_.pop_front();
    }
    HandleConnection(fd);
  }
}

void HttpServer::HandleConnection(int fd) {
  // Bounded read with a socket timeout: a stuck client costs one worker
  // at most five seconds.
  struct timeval timeout;
  timeout.tv_sec = 5;
  timeout.tv_usec = 0;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));

  std::string request;
  char buf[1024];
  while (request.size() < 16 * 1024 &&
         request.find("\r\n\r\n") == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    request.append(buf, static_cast<size_t>(n));
  }

  HttpResponse response;
  const size_t line_end = request.find("\r\n");
  if (line_end == std::string::npos) {
    response.status = 400;
    response.body = "malformed request\n";
  } else {
    const std::string line = request.substr(0, line_end);
    const size_t sp1 = line.find(' ');
    const size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                                : line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos) {
      response.status = 400;
      response.body = "malformed request line\n";
    } else {
      HttpRequest parsed;
      parsed.method = line.substr(0, sp1);
      std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
      const size_t qmark = target.find('?');
      if (qmark != std::string::npos) {
        parsed.query = target.substr(qmark + 1);
        target = target.substr(0, qmark);
      }
      parsed.path = target;
      if (parsed.method != "GET") {
        response.status = 405;
        response.body = "only GET is supported\n";
      } else {
        response = router_(parsed);
      }
    }
  }

  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    HttpStatusText(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += response.body;
  size_t sent = 0;
  while (sent < out.size()) {
    const ssize_t n = ::send(fd, out.data() + sent, out.size() - sent,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  ::close(fd);
}

void HttpServer::Stop() {
  {
    sy::MutexLock lock(&queue_mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  queue_cv_.NotifyAll();
  // Unblock the accept thread; accept() returns with an error once the
  // listening socket is shut down and closed.
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
  listen_fd_ = -1;
  sy::MutexLock lock(&queue_mu_);
  while (!pending_.empty()) {
    ::close(pending_.front());
    pending_.pop_front();
  }
}

// ---------------------------------------------------------------------------
// ObsServer

StatusOr<std::unique_ptr<ObsServer>> ObsServer::Start(const Options& options) {
  std::unique_ptr<ObsServer> server(new ObsServer());
  HttpServer::Options http_options;
  http_options.port = options.port;
  http_options.num_threads = options.num_threads;
  auto http = HttpServer::Start(
      http_options, [s = server.get()](const HttpRequest& request) {
        return s->Route(request);
      });
  if (!http.ok()) return http.status();
  server->http_ = std::move(http).value();
  TelemetryHub::SetServing(true);
  FlightRecorder::RecordInstant("obs.server_start");
  return server;
}

ObsServer::~ObsServer() { Stop(); }

void ObsServer::Stop() {
  if (http_ == nullptr) return;
  TelemetryHub::SetServing(false);
  http_->Stop();
}

HttpResponse ObsServer::Route(const HttpRequest& request) {
  requests_.fetch_add(1, std::memory_order_relaxed);  // mo: stat counter
  if (request.path == "/metrics") return Metrics();
  if (request.path == "/healthz") return Healthz();
  if (request.path == "/statusz") return Statusz();
  if (request.path == "/incidentz" || request.path == "/incidentz/trigger") {
    return Incidentz(request);
  }
  HttpResponse response;
  response.status = 404;
  response.body =
      "not found; endpoints: /metrics /healthz /statusz /incidentz\n";
  return response;
}

HttpResponse ObsServer::Metrics() const {
  std::map<std::string, int64_t> extra;
  extra[SG_OBS_SERVED_METRIC("obs.http_requests")] =
      requests_.load(std::memory_order_relaxed);  // mo: stat counter
  extra[SG_OBS_SERVED_METRIC("obs.incidents")] =
      static_cast<int64_t>(IncidentManager::Get().List().size());
  HttpResponse response;
  response.content_type = "text/plain; version=0.0.4; charset=utf-8";
  response.body = MetricsToPrometheusExposition(
      TelemetryHub::Get().MetricsSnapshot(), extra);
  return response;
}

HttpResponse ObsServer::Healthz() const {
  HttpResponse response;
  response.content_type = "application/json";
  response.body = HealthState::Get().ToJson() + "\n";
  if (HealthState::Get().level() == HealthLevel::kUnhealthy) {
    response.status = 503;
  }
  return response;
}

HttpResponse ObsServer::Statusz() const {
  const std::map<std::string, int64_t> metrics =
      TelemetryHub::Get().MetricsSnapshot();
  const auto metric = [&metrics](const char* name) -> int64_t {
    const auto it = metrics.find(name);
    return it == metrics.end() ? 0 : it->second;
  };
  TelemetryHub::RunStatus& run = TelemetryHub::Get().run();
  const BuildInfo build = GetBuildInfo();
  const MemoryStatus mem = ReadMemoryStatus();

  JsonWriter w;
  w.BeginObject()
      .Key("pid")
      .Value(static_cast<int64_t>(::getpid()))
      .Key("uptime_seconds")
      .Value(static_cast<double>(Tracer::NowMicros()) / 1e6)
      .Key("build")
      .BeginObject()
      .Key("commit")
      .Value(build.commit)
      .Key("build_type")
      .Value(build.build_type)
      .Key("sanitizer")
      .Value(build.sanitizer)
      .EndObject()
      .Key("health")
      .Raw(HealthState::Get().ToJson())
      .Key("run")
      .BeginObject()
      .Key("running")  // mo: live telemetry; approximate by design
      .Value(run.running.load(std::memory_order_relaxed))
      .Key("superstep")  // mo: live telemetry; approximate by design
      .Value(run.superstep.load(std::memory_order_relaxed))
      .Key("workers")  // mo: live telemetry; approximate by design
      .Value(run.workers.load(std::memory_order_relaxed))
      .Key("active_vertices")  // mo: live telemetry; approximate by design
      .Value(run.active_vertices.load(std::memory_order_relaxed))
      .Key("recovery_attempts")  // mo: live telemetry; approximate by design
      .Value(run.recovery_attempts.load(std::memory_order_relaxed))
      .EndObject()
      .Key("rss_kb")
      .Value(mem.rss_kb)
      .Key("arena")
      .BeginObject()
      .Key("chunks")
      .Value(metric("store.arena_chunks"))
      .Key("nodes_in_use")
      .Value(metric("store.arena_nodes_in_use"))
      .Key("node_capacity")
      .Value(metric("store.arena_node_capacity"))
      .Key("max_chain_len")
      .Value(metric("store.max_chain_len"))
      .EndObject()
      .Key("flight_events")
      .Value(FlightRecorder::Get().event_count())
      .Key("incidents")
      .Value(static_cast<int64_t>(IncidentManager::Get().List().size()));

  if (Introspector::enabled()) {
    Introspector& in = Introspector::Get();
    const int num_workers = in.num_workers();
    w.Key("workers").BeginArray();
    for (int i = 0; i < num_workers; ++i) {
      const BeaconSnapshot b = in.ReadBeacon(i);
      w.BeginObject()
          .Key("worker")
          .Value(i)
          .Key("phase")
          .Value(WorkerPhaseName(b.phase))
          .Key("superstep")
          .Value(b.superstep)
          .Key("phase_since_us")
          .Value(b.phase_since_us)
          .Key("progress_epoch")
          .Value(static_cast<int64_t>(b.progress_epoch))
          .Key("acquiring")
          .Value(b.acquiring)
          .Key("token_holder")
          .Value(b.token_holder)
          .Key("inbox_depth")
          .Value(b.inbox_depth)
          .EndObject();
    }
    w.EndArray();
    w.Key("contention_top").BeginArray();
    for (const ContentionEntry& e : in.ContentionTopK(10)) {
      w.BeginObject()
          .Key("resource")
          .Value(e.resource)
          .Key("count")
          .Value(e.count)
          .Key("total_wait_us")
          .Value(e.total_wait_us)
          .Key("max_wait_us")
          .Value(e.max_wait_us)
          .EndObject();
    }
    w.EndArray();
  }
  w.EndObject();

  HttpResponse response;
  response.content_type = "application/json";
  response.body = w.str() + "\n";
  return response;
}

HttpResponse ObsServer::Incidentz(const HttpRequest& request) const {
  HttpResponse response;
  response.content_type = "application/json";
  if (request.path == "/incidentz/trigger") {
    std::string reason = QueryParam(request.query, "reason");
    if (reason.empty()) reason = "operator-requested dump";
    const StatusOr<std::string> bundle =
        IncidentManager::Get().Dump("manual", reason, /*manual=*/true);
    JsonWriter w;
    w.BeginObject();
    if (!bundle.ok()) {
      response.status = 503;
      w.Key("error").Value(bundle.status().ToString());
    } else if (bundle.value().empty()) {
      response.status = 503;
      w.Key("error").Value(
          "incident dumping disabled (no --incident-dir) or rate-limited");
    } else {
      w.Key("bundle").Value(bundle.value());
    }
    w.EndObject();
    response.body = w.str() + "\n";
    return response;
  }
  response.body = IncidentManager::Get().ListJson() + "\n";
  return response;
}

}  // namespace serigraph
