# Empty compiler generated dependencies file for streaming_partitioner_test.
# This may be replaced when dependencies are built.
