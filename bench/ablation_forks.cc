// Section 5.4 fork-count claim: vertex-based locking needs O(|E|) forks,
// partition-based needs at most O(|P|^2) — orders of magnitude fewer for
// any |P| << |V|. We count actual forks on every stand-in dataset across
// partition counts, without running any algorithm.

#include <iostream>

#include "graph/partitioning.h"
#include "graph/stats.h"
#include "harness/datasets.h"
#include "harness/table.h"

using namespace serigraph;

int main() {
  PrintHeader(std::cout,
              "Section 5.4: fork counts, vertex-based O(|E|) vs "
              "partition-based O(|P|^2)");
  TablePrinter table({"dataset", "|V|", "|E| undirected", "vertex forks",
                      "partitions", "partition forks", "reduction"});
  for (const DatasetSpec& spec : StandInSpecs()) {
    Graph graph = MakeUndirectedDataset(spec);
    const int64_t vertex_forks = graph.num_edges() / 2;  // one per edge
    for (int workers : {4, 8, 16}) {
      Partitioning partitioning = Partitioning::Hash(
          graph.num_vertices(), workers, /*partitions_per_worker=*/workers);
      const int64_t partition_forks =
          CountPartitionForks(BuildPartitionGraph(graph, partitioning));
      char reduction[32];
      std::snprintf(reduction, sizeof(reduction), "%.0fx",
                    static_cast<double>(vertex_forks) /
                        static_cast<double>(partition_forks));
      table.AddRow({spec.name, HumanCount(graph.num_vertices()),
                    HumanCount(vertex_forks), HumanCount(vertex_forks),
                    std::to_string(partitioning.num_partitions()),
                    HumanCount(partition_forks), reduction});
    }
  }
  table.Print(std::cout);
  std::cout << "\n(On the paper's graphs the gap is larger still: TW has "
               "1.2B undirected edges vs\nat most 1024^2/2 partition "
               "pairs.)\n";
  return 0;
}
