#ifndef SERIGRAPH_PREGEL_MODEL_H_
#define SERIGRAPH_PREGEL_MODEL_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "fault/fault.h"
#include "fault/supervisor.h"
#include "net/transport.h"
#include "obs/memprof.h"
#include "obs/timeline.h"
#include "obs/watchdog.h"
#include "sync/technique.h"

namespace serigraph {

/// Which computation model the engine runs (paper Section 2).
enum class ComputationModel {
  /// Bulk synchronous parallel: messages sent in superstep i are visible
  /// only in superstep i+1, even between vertices of the same worker.
  kBsp = 0,
  /// Asynchronous parallel (Giraph async): messages become visible as
  /// soon as they are received — local sends immediately, remote sends
  /// when the receiving worker processes the batch. Global barriers
  /// between supersteps are retained.
  kAsync = 1,
};

const char* ComputationModelName(ComputationModel model);

/// How vertices are assigned to partitions.
enum class PartitionScheme {
  kHash = 0,       ///< random hash partitioning (the paper's default)
  kContiguous = 1, ///< contiguous ranges (used by tests/examples)
};

/// Fault injection + in-engine recovery configuration
/// (docs/FAULT_TOLERANCE.md). `plan` arms the process-wide FaultInjector
/// for the duration of the run; `recover` turns on the heartbeat
/// supervisor and the engine's restore-and-resume loop. Either one
/// activates failure detection; with neither, the engine adds zero
/// overhead (one disarmed atomic load per probe).
struct FaultToleranceOptions {
  /// Events to inject, reproducible from the plan text alone.
  FaultPlan plan;
  /// Detect failures and recover in-engine from the last good checkpoint
  /// (or the initial state when none was written). Requires checkpointable
  /// vertex/message types.
  bool recover = false;
  /// Recovery attempts after the initial one before giving up with
  /// Status::Aborted and a recovery report.
  int max_recovery_attempts = 3;
  /// Exponential backoff between recovery attempts.
  int64_t recovery_backoff_ms = 10;
  int64_t recovery_backoff_max_ms = 1000;
  /// Bounded retry + backoff for checkpoint writes (satellite of the
  /// previously-swallowed WriteCheckpoint failure).
  RetryPolicy checkpoint_retry;
  /// Heartbeat supervisor thresholds.
  SupervisorOptions supervisor;

  /// True when the run needs failure detection at all.
  bool Active() const { return recover || !plan.empty(); }
};

/// Configuration for one engine run.
/// Per-superstep message transfer strategy for combinable BSP programs
/// (see docs/PERF.md, "Push vs. pull"). kAuto switches on frontier
/// density; the force modes pin one strategy for A/B tests. Ignored
/// (always push) for AP runs, sync techniques, and programs without a
/// combiner or with non-trivially-copyable messages.
enum class PushPullMode {
  kAuto,
  kForcePush,
  kForcePull,
};

struct EngineOptions {
  ComputationModel model = ComputationModel::kAsync;
  /// Synchronization technique; any mode other than kNone requires
  /// kAsync and makes the run serializable (Theorem 1).
  SyncMode sync_mode = SyncMode::kNone;

  /// Number of simulated worker machines.
  int num_workers = 4;
  /// Graph partitions per worker; 0 means the Giraph default of
  /// |W| partitions per worker (paper Section 7.1).
  int partitions_per_worker = 0;
  /// Compute threads per worker (the paper's machines have 4 vCPUs).
  /// Clamped to 1 when the technique requires it (single-layer token).
  int compute_threads_per_worker = 2;

  PartitionScheme partition_scheme = PartitionScheme::kHash;
  uint64_t partition_seed = 0;

  /// Simulated network behaviour.
  NetworkOptions network;
  /// Outgoing message buffer cache capacity per destination worker;
  /// when a buffer exceeds this many bytes it is flushed (Giraph's
  /// message buffer cache, Section 6.1). Set to 1 to disable batching.
  int64_t message_batch_bytes = 64 * 1024;

  /// Fold messages into a per-destination-worker combining map on the
  /// sender (only meaningful for programs with a combiner): fewer wire
  /// bytes and one receiver-side append per destination vertex instead
  /// of per message. Automatically disabled when record_history is set
  /// (combined records carry no per-message provenance).
  bool sender_combining = true;

  /// Push/pull strategy for broadcast-style sends (BSP + combiner only).
  /// Under kAuto the engine pulls a superstep when the broadcast frontier
  /// density (set bits per 1000 vertices) reaches
  /// `pull_density_threshold_milli`; sparse supersteps keep pushing.
  PushPullMode push_pull = PushPullMode::kAuto;
  /// kAuto density switch point, in vertices-per-thousand. 400 means
  /// "pull once ≥40% of vertices broadcast" — dense enough that one
  /// sequential sweep over the in-edge CSR beats materializing the
  /// per-vertex message store.
  int64_t pull_density_threshold_milli = 400;

  /// Fixed extra cost charged to every worker every superstep, used by
  /// the Giraphx emulation bench to model algorithm-level technique
  /// implementations on an older, slower system.
  int64_t superstep_overhead_us = 0;

  /// Stop after this many supersteps even if not converged.
  int max_supersteps = 100000;

  /// Fault tolerance (paper Section 6.4): write a checkpoint after every
  /// `checkpoint_every` supersteps into `checkpoint_dir` (0 = disabled).
  /// Requires trivially copyable vertex values and messages.
  int checkpoint_every = 0;
  std::string checkpoint_dir;
  /// Resume a run from this checkpoint file (same graph, same options).
  std::string restore_path;

  /// Fault injection and live crash-recovery (docs/FAULT_TOLERANCE.md).
  FaultToleranceOptions fault;

  /// Record a transaction history for serializability checking
  /// (Section 3). Adds overhead; meant for tests and audits.
  bool record_history = false;

  /// Hardware performance counters + memory profiling (obs/perfcounters.h,
  /// obs/memprof.h, docs/PROFILING.md): per-thread perf_event groups
  /// attribute cycles/IPC/LLC-miss deltas to compute/flush/barrier/
  /// fork-wait phases and per-superstep timeline rows, and the serial
  /// section samples RSS + message-store arena occupancy each superstep.
  /// Falls back to getrusage/procfs software counters (reported, never
  /// fatal) where perf_event_open is denied. Off by default; when off
  /// the hooks cost one relaxed atomic load each.
  bool perf_counters = false;

  /// Runtime introspection (obs/introspect.h): per-worker state beacons,
  /// a background watchdog sampling wait-for-graph snapshots, and a
  /// fork-contention profile in RunStats. Off by default; when off the
  /// hooks cost one relaxed atomic load each.
  bool introspect = false;
  /// Watchdog configuration (sampling period, stall threshold, JSONL
  /// event-log path, opt-in stall abort). Used only when `introspect`.
  WatchdogOptions watchdog;

  /// Stream one JSONL line per superstep (superstep, active vertices,
  /// timestamp, recovery attempt) to this path, flushed line-by-line so
  /// operators can `tail -f` it while the run is live — unlike the run
  /// report, which only exists after the run ends. Empty = off.
  std::string live_report_path;
};

/// Outcome statistics of a run.
struct RunStats {
  static constexpr int kNumAggregatorSlots = 8;

  int supersteps = 0;
  /// True if the computation terminated (all vertices halted, no pending
  /// messages) rather than hitting max_supersteps.
  bool converged = false;
  /// Wall-clock computation time: the superstep loop only, excluding
  /// graph loading/partitioning and result extraction — the paper's
  /// "computation time" metric (Section 7.3).
  double computation_seconds = 0.0;
  /// Snapshot of all engine/transport/technique counters and histograms
  /// (histograms expand into name.p50/.p95/.max/.count/.sum).
  std::map<std::string, int64_t> metrics;
  /// Final global aggregator values (last superstep's reduction).
  double aggregates[kNumAggregatorSlots] = {};
  /// Per-(superstep, worker) time/work breakdown, ordered by superstep
  /// then worker — the Section 7.3 "where does computation time go"
  /// series. Rendered by PrintTimeline() and exported via RunStatsToJson.
  std::vector<SuperstepSample> timeline;

  /// Introspection digest (populated only when options.introspect):
  /// what the philosopher ids in `contention` name ("partition"/"vertex"),
  /// the hottest resources and wait-for edges by attributed wait time,
  /// and the watchdog's counters + incident reports.
  std::string resource_kind;
  std::vector<ContentionEntry> contention;
  std::vector<EdgeContentionEntry> contention_edges;
  int64_t introspect_snapshots = 0;
  int64_t introspect_stalls = 0;
  int64_t introspect_deadlocks = 0;
  std::vector<std::string> introspect_incidents;

  /// Recovery digest (populated only when options.fault is active):
  /// how many times the engine restored and resumed after a detected
  /// worker failure, and a human-readable event log (detected failures,
  /// checkpoint frames restored, fired fault events, degradations).
  int recovery_attempts = 0;
  std::vector<std::string> recovery_events;

  /// Perf/memory digest (populated only when options.perf_counters):
  /// whether hardware counters were live (vs. the software fallback and
  /// why), run-total counter deltas per phase keyed "<phase>.<field>"
  /// ("compute.cycles", ...), process peak RSS, and the per-superstep
  /// RSS/arena samples. The timeline rows additionally carry compute-
  /// phase counter deltas.
  bool perf_enabled = false;
  bool perf_hw_counters = false;
  std::string perf_fallback;
  std::map<std::string, int64_t> perf_phases;
  int64_t peak_rss_kb = 0;
  std::vector<MemSample> mem_samples;

  int64_t Metric(const std::string& name) const {
    auto it = metrics.find(name);
    return it == metrics.end() ? 0 : it->second;
  }
};

/// Serializes `stats` (including the timeline) as a JSON object; the
/// `serigraph_cli --metrics-json=FILE` output format.
std::string RunStatsToJson(const RunStats& stats);

}  // namespace serigraph

#endif  // SERIGRAPH_PREGEL_MODEL_H_
