file(REMOVE_RECURSE
  "libserigraph_harness.a"
)
