file(REMOVE_RECURSE
  "CMakeFiles/giraphx_comparison.dir/giraphx_comparison.cc.o"
  "CMakeFiles/giraphx_comparison.dir/giraphx_comparison.cc.o.d"
  "giraphx_comparison"
  "giraphx_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/giraphx_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
