#include "algos/label_propagation.h"

namespace serigraph {

std::vector<int64_t> LabelPropagationLabels(
    std::span<const LabelPropagation::State> states) {
  std::vector<int64_t> labels;
  labels.reserve(states.size());
  for (const auto& state : states) labels.push_back(state.label);
  return labels;
}

bool IsLocallyStableLabeling(const Graph& graph,
                             std::span<const int64_t> labels) {
  if (static_cast<VertexId>(labels.size()) != graph.num_vertices()) {
    return false;
  }
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    auto nbrs = graph.OutNeighbors(v);
    if (nbrs.empty()) continue;
    std::vector<LabelPropagation::NeighborLabel> heard;
    heard.reserve(nbrs.size());
    for (VertexId u : nbrs) heard.push_back({u, labels[u]});
    if (LabelPropagation::DominantLabel(heard, labels[v]) != labels[v]) {
      return false;
    }
  }
  return true;
}

}  // namespace serigraph
