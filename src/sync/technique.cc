#include "sync/technique.h"

#include "common/logging.h"
#include "sync/distributed_locking.h"
#include "sync/token_passing.h"

namespace serigraph {

const char* SyncModeName(SyncMode mode) {
  switch (mode) {
    case SyncMode::kNone:
      return "none";
    case SyncMode::kSingleLayerToken:
      return "single-token";
    case SyncMode::kDualLayerToken:
      return "dual-token";
    case SyncMode::kVertexLocking:
      return "vertex-locking";
    case SyncMode::kPartitionLocking:
      return "partition-locking";
    case SyncMode::kConstrainedBspLocking:
      return "bsp-constrained-locking";
  }
  return "?";
}

std::unique_ptr<SyncTechnique> MakeSyncTechnique(SyncMode mode) {
  switch (mode) {
    case SyncMode::kNone:
      return std::make_unique<NoSync>();
    case SyncMode::kSingleLayerToken:
      return std::make_unique<SingleLayerTokenPassing>();
    case SyncMode::kDualLayerToken:
      return std::make_unique<DualLayerTokenPassing>();
    case SyncMode::kVertexLocking:
      return std::make_unique<VertexBasedLocking>();
    case SyncMode::kPartitionLocking:
      return std::make_unique<PartitionBasedLocking>();
    case SyncMode::kConstrainedBspLocking:
      return std::make_unique<ConstrainedBspVertexLocking>();
  }
  SG_LOG(kFatal) << "unknown sync mode";
  return nullptr;
}

}  // namespace serigraph
