#ifndef SERIGRAPH_SYNC_TOKEN_PASSING_H_
#define SERIGRAPH_SYNC_TOKEN_PASSING_H_

#include <vector>

#include "sync/technique.h"

namespace serigraph {

/// Single-layer token passing (Section 4.2, as in Giraphx): one exclusive
/// global token rotates round-robin through a fixed logical ring of
/// workers, one hop per superstep. The holder may execute its m-boundary
/// vertices; every worker always executes its m-internal vertices, which
/// is safe only because workers are single-threaded under this technique.
///
/// The ring schedule is deterministic (holder of superstep s is
/// s mod |W|), mirroring the fixed ring the paper criticizes: finished
/// workers still occupy ring slots. A token control message is sent at
/// each handover so the traffic shows up in the transport counters; the
/// write-all flush (C1) happens in the engine's superstep-end phase,
/// before OnSuperstepEnd fires.
class SingleLayerTokenPassing final : public SyncTechnique {
 public:
  Status Init(const Context& ctx) override;
  void BindWorker(WorkerId w, WorkerHandle* handle) override;
  Granularity granularity() const override {
    return Granularity::kVertexGate;
  }
  bool RequiresSingleComputeThread() const override { return true; }

  bool MayExecuteVertex(WorkerId w, int superstep, VertexId v) override;
  void OnSuperstepStart(WorkerId w, int superstep) override;
  void OnSuperstepEnd(WorkerId w, int superstep) override;
  void HandleControl(WorkerId w, const WireMessage& msg) override;

  /// Ring position: which worker holds the global token in `superstep`.
  WorkerId HolderOf(int superstep) const {
    return static_cast<WorkerId>(superstep % num_workers_);
  }

  static constexpr uint32_t kTokenTag = 10;

 private:
  const BoundaryInfo* boundaries_ = nullptr;
  int num_workers_ = 0;
  std::vector<WorkerHandle*> handles_;
  Counter* token_passes_ = nullptr;
  Histogram* token_hold_hist_ = nullptr;
  /// Superstep start time per worker while it holds the global token;
  /// each slot is only touched by its own worker thread.
  std::vector<int64_t> hold_start_us_;
};

/// Dual-layer token passing (Section 5.3): a global token rotates between
/// workers while each worker circulates a local token among its own
/// partitions. Vertex categories (Section 5.3 / VertexLocality) decide
/// which tokens a vertex needs:
///   p-internal      : none
///   local boundary  : local token at its partition
///   remote boundary : global token at its worker
///   mixed boundary  : both
/// A worker keeps the global token for as many supersteps as it owns
/// partitions, so every mixed-boundary vertex gets a superstep where both
/// tokens line up. Multithreaded workers are safe (unlike single-layer).
class DualLayerTokenPassing final : public SyncTechnique {
 public:
  Status Init(const Context& ctx) override;
  void BindWorker(WorkerId w, WorkerHandle* handle) override;
  Granularity granularity() const override {
    return Granularity::kVertexGate;
  }

  bool MayExecuteVertex(WorkerId w, int superstep, VertexId v) override;
  void OnSuperstepStart(WorkerId w, int superstep) override;
  void OnSuperstepEnd(WorkerId w, int superstep) override;
  void HandleControl(WorkerId w, const WireMessage& msg) override;

  /// Which worker holds the global token in `superstep`.
  WorkerId GlobalHolderOf(int superstep) const;
  /// Which of worker `w`'s partitions holds its local token in `superstep`.
  PartitionId LocalTokenPartition(WorkerId w, int superstep) const;

  static constexpr uint32_t kTokenTag = 11;

 private:
  const Partitioning* partitioning_ = nullptr;
  const BoundaryInfo* boundaries_ = nullptr;
  int num_workers_ = 0;
  int total_partitions_ = 0;
  /// Start of each worker's global-token window within one full cycle of
  /// length |P| (worker w holds during [window_start_[w],
  /// window_start_[w] + partitions(w))).
  std::vector<int> window_start_;
  std::vector<WorkerHandle*> handles_;
  Counter* global_token_passes_ = nullptr;
  Counter* local_token_passes_ = nullptr;
  Histogram* token_hold_hist_ = nullptr;
  /// Superstep start time per worker while it holds the global token;
  /// each slot is only touched by its own worker thread. A multi-superstep
  /// hold window is recorded as one sample per superstep held.
  std::vector<int64_t> hold_start_us_;
};

}  // namespace serigraph

#endif  // SERIGRAPH_SYNC_TOKEN_PASSING_H_
