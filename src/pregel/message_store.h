#ifndef SERIGRAPH_PREGEL_MESSAGE_STORE_H_
#define SERIGRAPH_PREGEL_MESSAGE_STORE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/bitmap.h"
#include "common/logging.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "graph/types.h"

namespace serigraph {

/// Arena-occupancy snapshot of one MessageStore (or a sum over stores),
/// feeding the per-superstep MemSample rows and store.* gauges when
/// EngineOptions::perf_counters is on (docs/PROFILING.md).
struct MessageStoreArenaStats {
  /// Allocated arena chunks across shards (retained across supersteps).
  int64_t chunks = 0;
  /// Node slots backed by allocated chunks (chunks * nodes-per-chunk).
  int64_t node_capacity = 0;
  /// Nodes currently holding a live (arrival-side) message.
  int64_t nodes_in_use = 0;
  /// Longest per-vertex arrival chain.
  int64_t max_chain_len = 0;

  void Accumulate(const MessageStoreArenaStats& other) {
    chunks += other.chunks;
    node_capacity += other.node_capacity;
    nodes_in_use += other.nodes_in_use;
    if (other.max_chain_len > max_chain_len) {
      max_chain_len = other.max_chain_len;
    }
  }
};

/// Shard count for a partition of `num_slots` vertices: a power of two,
/// sized so a shard covers a few dozen vertices but never exceeding 16
/// shards (the per-shard mutexes are the footprint, and batch delivery
/// pays one lock acquisition per shard touched).
int PickMessageStoreShards(int64_t num_slots);

/// Sharded flat message store for one partition (GPOP-style message
/// bins instead of one heap vector per vertex).
///
/// Arrivals go into per-shard chunked arenas: shard `li & mask` holds
/// vertex `li`'s chain of fixed-size nodes, so concurrent senders to
/// one partition contend only per stripe, and the arena's chunks are
/// reused across supersteps (no steady-state allocation). When the
/// store has a combiner, arrival folds into the chain head and every
/// chain stays at most one node long.
///
/// Two consumption modes:
///  - double-buffered (BSP): arrivals are invisible until Swap(), which
///    drains every chain (merged with any unconsumed leftovers) into a
///    single contiguous `flat_` buffer with per-vertex [off,len) slots.
///    Consume() then returns a zero-copy span and takes NO lock — the
///    flat side is written only inside Swap() (barrier serial phase,
///    one thread per partition) and each slot is consumed by exactly
///    one executing thread, which is the engine's existing per-vertex
///    execution exclusivity. That phase-ownership argument is why
///    `flat_`/`slots_` carry no mutex.
///  - direct (AP): chains are the visible store; Consume() detaches the
///    chain under its shard lock and copies into a caller-provided
///    scratch vector.
///
/// When the store has a combiner AND the message is trivially copyable,
/// the store runs in *dense accumulator* mode instead (PR 9): each slot
/// is a single in-place accumulator in a flat per-partition array, with
/// presence tracked in a word-packed bitmap. Appends fold straight into
/// the array (no arena nodes, no chains, no pointer chasing), Consume
/// returns a one-element span over the accumulator, and Swap is a
/// vector/bitmap swap plus a leftover merge — the cache-friendly layout
/// GPOP calls partition bins. The external semantics are identical to
/// the chain modes (a combiner already folds every chain to one node).
///
/// `pending()` (vertices with visible messages) is an atomic so
/// eligibility checks never touch a lock, and `pending_bits()` exposes
/// the same information as a bitmap so the engine's barrier accounting
/// is a popcount, not a rescan.
template <typename M>
class MessageStore {
 public:
  using CombineFn = M (*)(const M&, const M&);

  MessageStore() = default;
  MessageStore(const MessageStore&) = delete;
  MessageStore& operator=(const MessageStore&) = delete;

  /// Sizes the store for `num_slots` local vertices. `double_buffered`
  /// selects BSP semantics (arrivals visible only after Swap()).
  /// `combine` may be null; `shard_hint` (power of two, <= 64) overrides
  /// the default shard count — tests and benches use it.
  void Init(int32_t num_slots, bool double_buffered, CombineFn combine,
            int shard_hint = 0) {
    num_slots_ = num_slots;
    double_buffered_ = double_buffered;
    combine_ = combine;
    dense_ = kDenseCapable && combine != nullptr;
    int want = shard_hint > 0 ? shard_hint : PickMessageStoreShards(num_slots);
    shard_bits_ = 0;
    while ((1 << shard_bits_) < want) ++shard_bits_;
    shard_mask_ = (1 << shard_bits_) - 1;
    shards_.clear();
    for (int s = 0; s < (1 << shard_bits_); ++s) {
      auto shard = std::make_unique<Shard>();
      const int32_t dense =
          num_slots > s ? ((num_slots - 1 - s) >> shard_bits_) + 1 : 0;
      {
        // Init runs before the store is shared; the lock is uncontended
        // and keeps the annotations honest.
        sy::MutexLock lock(&shard->mu);
        shard->chains.assign(dense, Chain{});
      }
      shards_.push_back(std::move(shard));
    }
    if (double_buffered_ && !dense_) {
      slots_.assign(num_slots, Slot{});
      slots_spare_.assign(num_slots, Slot{});
      flat_.clear();
      flat_spare_.clear();
    }
    if (dense_) {
      acc_.assign(num_slots, M{});
      if (double_buffered_) {
        acc_in_.assign(num_slots, M{});
        in_bits_.Reset(num_slots);
      }
    }
    pending_bits_.Reset(num_slots);
    // mo: pending gauge; barrier orders the data
    pending_.store(0, std::memory_order_relaxed);
  }

  int num_shards() const { return 1 << shard_bits_; }
  int32_t num_slots() const { return num_slots_; }

  /// Number of vertices with visible (consumable) messages.
  // mo: pending gauge; barrier orders the data
  int64_t pending() const { return pending_.load(std::memory_order_relaxed); }

  /// Bitmap view of the visible-message slots. Lock-free reads; the
  /// engine unions this with its active bitmap to popcount eligibility
  /// at barriers and to iterate only eligible vertices in sparse
  /// supersteps. Dense/AP modes keep it exact (bit cleared on consume);
  /// the flat BSP side leaves it as the superstep-start snapshot —
  /// `Swap()` rebuilds it and nothing reads it mid-superstep, so the
  /// consume fast path stays free of an extra atomic RMW.
  const Bitmap& pending_bits() const { return pending_bits_; }

  /// True when this store runs in dense accumulator mode (combiner +
  /// trivially copyable message): no arena, one accumulator per slot.
  bool dense() const { return dense_; }

  /// Appends one message for local vertex `li`.
  void Append(int32_t li, const M& msg) {
    Shard& shard = *shards_[li & shard_mask_];
    sy::MutexLock lock(&shard.mu);
    AppendLocked(shard, li, msg);
  }

  /// Applies a decoded remote batch: pre-grouped by shard so each shard
  /// lock is taken at most once for the whole batch. Message payloads
  /// are moved out of `records`.
  void AppendBatch(std::span<std::pair<int32_t, M>> records) {
    uint64_t present = 0;
    for (const auto& rec : records) {
      present |= uint64_t{1} << (rec.first & shard_mask_);
    }
    for (int s = 0; s <= shard_mask_; ++s) {
      if ((present & (uint64_t{1} << s)) == 0) continue;
      Shard& shard = *shards_[s];
      sy::MutexLock lock(&shard.mu);
      for (auto& rec : records) {
        if ((rec.first & shard_mask_) != s) continue;
        AppendLocked(shard, rec.first, std::move(rec.second));
      }
    }
  }

  /// True if `li` has visible messages. Lock-free when double-buffered
  /// or dense.
  bool HasMessages(int32_t li) {
    if (dense_) return pending_bits_.Test(li);
    // Flat BSP: the slot length is the live truth (len drops to 0 on
    // consume; the pending bitmap is a superstep-start snapshot).
    if (double_buffered_) return slots_[li].len != 0;
    Shard& shard = *shards_[li & shard_mask_];
    sy::MutexLock lock(&shard.mu);
    return shard.chains[li >> shard_bits_].count != 0;
  }

  /// BSP publish, run at the barrier with no concurrent append/consume
  /// on this partition: drains every arrival chain, merges it behind any
  /// unconsumed leftover slot content, and rebuilds the contiguous flat
  /// buffer. Arena chunks and flat capacity are retained for reuse.
  void Swap() {
    SG_DCHECK(double_buffered_);
    if (dense_) {
      // The shard locks pair with the appenders' releases so the
      // lock-free reads below are ordered (the engine's barrier already
      // guarantees no appender is live here).
      for (int s = 0; s <= shard_mask_; ++s) {
        sy::MutexLock lock(&shards_[s]->mu);
      }
      // Merge unconsumed leftovers into the arriving side (leftover
      // first, matching the chain-mode fold order), then publish by
      // swapping the accumulator array and presence bitmap wholesale.
      pending_bits_.ForEachSetBit([&](size_t li) {
        if (in_bits_.Test(li)) {
          acc_in_[li] = combine_(acc_[li], acc_in_[li]);
        } else {
          acc_in_[li] = acc_[li];
          in_bits_.SetSerial(li);
        }
      });
      acc_.swap(acc_in_);
      std::swap(pending_bits_, in_bits_);
      in_bits_.ClearAll();
      pending_.store(static_cast<int64_t>(pending_bits_.Popcount()),
                     // mo: pending gauge; barrier orders the data
                     std::memory_order_relaxed);
      return;
    }
    flat_spare_.clear();
    slots_spare_.assign(slots_.size(), Slot{});
    pending_bits_.ClearAll();
    int64_t pend = 0;
    for (int s = 0; s <= shard_mask_; ++s) {
      Shard& shard = *shards_[s];
      sy::MutexLock lock(&shard.mu);
      const int32_t dense = static_cast<int32_t>(shard.chains.size());
      for (int32_t d = 0; d < dense; ++d) {
        Chain& chain = shard.chains[d];
        const int32_t li = (d << shard_bits_) | s;
        const Slot leftover = slots_[li];
        if (leftover.len == 0 && chain.count == 0) continue;
        const uint32_t off = static_cast<uint32_t>(flat_spare_.size());
        for (uint32_t k = 0; k < leftover.len; ++k) {
          flat_spare_.push_back(std::move(flat_[leftover.off + k]));
        }
        for (int32_t node = chain.head; node >= 0;) {
          Node& n = shard.NodeAt(node);
          if (combine_ != nullptr && flat_spare_.size() > off) {
            flat_spare_[off] = combine_(flat_spare_[off], n.msg);
          } else {
            flat_spare_.push_back(std::move(n.msg));
          }
          node = n.next;
        }
        slots_spare_[li] =
            Slot{off, static_cast<uint32_t>(flat_spare_.size()) - off};
        pending_bits_.SetSerial(li);
        ++pend;
        chain = Chain{};
      }
      // Every chain is drained: recycle the whole arena in O(1).
      shard.free_head = -1;
      shard.bump = 0;
    }
    flat_.swap(flat_spare_);
    slots_.swap(slots_spare_);
    // mo: pending gauge; barrier orders the data
    pending_.store(pend, std::memory_order_relaxed);
  }

  /// Consumes `li`'s messages. Double-buffered: returns a zero-copy span
  /// into the flat buffer (valid until the next Swap) without locking.
  /// Direct mode: detaches the chain under the shard lock, moves the
  /// messages into `*scratch`, and returns a span over it.
  std::span<const M> Consume(int32_t li, std::vector<M>* scratch) {
    if (dense_) {
      if (double_buffered_) {
        // Lock-free like the flat path: the visible side is written only
        // in Swap() and each slot has one consumer.
        if (!pending_bits_.Test(li)) return {};
        pending_bits_.Clear(li);
        // mo: pending gauge; barrier orders the data
        pending_.fetch_sub(1, std::memory_order_relaxed);
        return std::span<const M>(&acc_[li], 1);
      }
      Shard& shard = *shards_[li & shard_mask_];
      sy::MutexLock lock(&shard.mu);
      if (!pending_bits_.Test(li)) return {};
      pending_bits_.Clear(li);
      // mo: pending gauge; barrier orders the data
      pending_.fetch_sub(1, std::memory_order_relaxed);
      scratch->assign(1, acc_[li]);
      return std::span<const M>(scratch->data(), 1);
    }
    if (double_buffered_) {
      Slot& slot = slots_[li];
      if (slot.len == 0) return {};
      std::span<const M> out(flat_.data() + slot.off, slot.len);
      slot.len = 0;
      // The pending bit stays set until the next Swap() rebuild (see
      // pending_bits()); clearing it here would put an atomic RMW on
      // every consume for a bit nobody reads mid-superstep.
      // mo: pending gauge; barrier orders the data
      pending_.fetch_sub(1, std::memory_order_relaxed);
      return out;
    }
    Shard& shard = *shards_[li & shard_mask_];
    scratch->clear();
    {
      sy::MutexLock lock(&shard.mu);
      Chain& chain = shard.chains[li >> shard_bits_];
      if (chain.count == 0) return {};
      for (int32_t node = chain.head; node >= 0;) {
        Node& n = shard.NodeAt(node);
        scratch->push_back(std::move(n.msg));
        const int32_t next = n.next;
        n.next = shard.free_head;
        shard.free_head = node;
        node = next;
      }
      chain = Chain{};
      pending_bits_.Clear(li);
      // mo: pending gauge; barrier orders the data
      pending_.fetch_sub(1, std::memory_order_relaxed);
    }
    return std::span<const M>(scratch->data(), scratch->size());
  }

  /// Calls `fn(li)` for every vertex with visible messages. In direct
  /// mode `fn` runs under a shard lock and must not block or lock.
  template <typename Fn>
  void ForEachPendingVertex(Fn&& fn) {
    if (dense_ || double_buffered_) {
      pending_bits_.ForEachSetBit(
          [&](size_t li) { fn(static_cast<int32_t>(li)); });
      return;
    }
    for (int s = 0; s <= shard_mask_; ++s) {
      Shard& shard = *shards_[s];
      sy::MutexLock lock(&shard.mu);
      const int32_t dense = static_cast<int32_t>(shard.chains.size());
      for (int32_t d = 0; d < dense; ++d) {
        if (shard.chains[d].count != 0) fn((d << shard_bits_) | s);
      }
    }
  }

  /// Checkpoint support (cold path): visible message count for `li` and
  /// in-order visitation. In direct mode the walk holds the shard lock.
  int64_t VisibleCount(int32_t li) {
    if (dense_) return pending_bits_.Test(li) ? 1 : 0;
    if (double_buffered_) return slots_[li].len;
    Shard& shard = *shards_[li & shard_mask_];
    sy::MutexLock lock(&shard.mu);
    return shard.chains[li >> shard_bits_].count;
  }

  template <typename Fn>
  void ForEachVisible(int32_t li, Fn&& fn) {
    if (dense_) {
      if (pending_bits_.Test(li)) fn(acc_[li]);
      return;
    }
    if (double_buffered_) {
      const Slot slot = slots_[li];
      for (uint32_t k = 0; k < slot.len; ++k) fn(flat_[slot.off + k]);
      return;
    }
    Shard& shard = *shards_[li & shard_mask_];
    sy::MutexLock lock(&shard.mu);
    const Chain& chain = shard.chains[li >> shard_bits_];
    for (int32_t node = chain.head; node >= 0;) {
      const Node& n = shard.NodeAt(node);
      fn(n.msg);
      node = n.next;
    }
  }

  /// Total arena chunks across shards (tests assert reuse: the count
  /// must plateau across supersteps of comparable message volume).
  /// Always 0 in dense mode — there is no arena.
  int64_t arena_chunks() {
    int64_t total = 0;
    for (int s = 0; s <= shard_mask_; ++s) {
      Shard& shard = *shards_[s];
      sy::MutexLock lock(&shard.mu);
      total += static_cast<int64_t>(shard.chunks.size());
    }
    return total;
  }

  /// Arena-occupancy snapshot across shards, one shard lock at a time.
  /// Chain counts equal live node counts (a combiner folds into the head
  /// node, so combined chains stay length 1). Safe to call concurrently
  /// with appends; the snapshot is per-shard consistent.
  MessageStoreArenaStats Stats() {
    MessageStoreArenaStats stats;
    if (dense_) {
      // No arena: report the live accumulator count so the occupancy
      // gauges stay meaningful, with chain length capped at 1 by mode.
      stats.nodes_in_use = pending_bits_.Popcount();
      stats.max_chain_len = stats.nodes_in_use > 0 ? 1 : 0;
      return stats;
    }
    for (int s = 0; s <= shard_mask_; ++s) {
      Shard& shard = *shards_[s];
      sy::MutexLock lock(&shard.mu);
      stats.chunks += static_cast<int64_t>(shard.chunks.size());
      stats.node_capacity +=
          static_cast<int64_t>(shard.chunks.size()) * kChunkSize;
      for (const Chain& chain : shard.chains) {
        stats.nodes_in_use += chain.count;
        if (chain.count > stats.max_chain_len) {
          stats.max_chain_len = chain.count;
        }
      }
    }
    return stats;
  }

 private:
  static constexpr int kChunkBits = 8;
  static constexpr int32_t kChunkSize = 1 << kChunkBits;  // nodes per chunk

  struct Node {
    M msg{};
    int32_t next = -1;
  };
  struct Chain {
    int32_t head = -1;
    int32_t tail = -1;
    uint32_t count = 0;
  };
  struct Slot {
    uint32_t off = 0;
    uint32_t len = 0;
  };

  struct Shard {
    sy::Mutex mu;
    /// Chunked node arena: stable addresses, chunks reused forever.
    std::vector<std::unique_ptr<Node[]>> chunks SY_GUARDED_BY(mu);
    int32_t free_head SY_GUARDED_BY(mu) = -1;
    /// First never-used node index (within [0, chunks*kChunkSize)).
    int32_t bump SY_GUARDED_BY(mu) = 0;
    /// Per dense-vertex arrival chain (dense index = li >> shard_bits).
    std::vector<Chain> chains SY_GUARDED_BY(mu);

    Node& NodeAt(int32_t idx) SY_REQUIRES(mu) {
      return chunks[idx >> kChunkBits][idx & (kChunkSize - 1)];
    }
    int32_t AllocNode() SY_REQUIRES(mu) {
      if (free_head >= 0) {
        const int32_t idx = free_head;
        free_head = NodeAt(idx).next;
        return idx;
      }
      if (bump == static_cast<int32_t>(chunks.size()) * kChunkSize) {
        chunks.push_back(std::make_unique<Node[]>(kChunkSize));
      }
      return bump++;
    }
  };

  void AppendLocked(Shard& shard, int32_t li, M msg) SY_REQUIRES(shard.mu) {
    if (dense_) {
      // The shard lock serializes per-slot fold vs. claim; the atomic
      // bitmap ops handle cross-shard word sharing.
      std::vector<M>& acc = double_buffered_ ? acc_in_ : acc_;
      Bitmap& bits = double_buffered_ ? in_bits_ : pending_bits_;
      if (bits.Test(li)) {
        acc[li] = combine_(acc[li], msg);
      } else {
        acc[li] = std::move(msg);
        bits.Set(li);
        if (!double_buffered_) {
          // mo: pending gauge; barrier orders the data
          pending_.fetch_add(1, std::memory_order_relaxed);
        }
      }
      return;
    }
    Chain& chain = shard.chains[li >> shard_bits_];
    if (combine_ != nullptr && chain.count > 0) {
      M& head = shard.NodeAt(chain.head).msg;
      head = combine_(head, msg);
      return;
    }
    const int32_t idx = shard.AllocNode();
    Node& node = shard.NodeAt(idx);
    node.msg = std::move(msg);
    node.next = -1;
    if (chain.tail >= 0) {
      shard.NodeAt(chain.tail).next = idx;
    } else {
      chain.head = idx;
    }
    chain.tail = idx;
    if (++chain.count == 1 && !double_buffered_) {
      pending_bits_.Set(li);
      // mo: pending gauge; barrier orders the data
      pending_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// Dense accumulator mode needs memcpy-able payloads (the accumulator
  /// arrays swap wholesale at the barrier).
  static constexpr bool kDenseCapable = std::is_trivially_copyable_v<M>;

  int32_t num_slots_ = 0;
  bool double_buffered_ = false;
  bool dense_ = false;
  CombineFn combine_ = nullptr;
  int shard_bits_ = 0;
  int shard_mask_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;

  // Dense accumulator sides (dense mode only). `acc_` is the visible
  // side (direct mode: the live side); `acc_in_`/`in_bits_` collect BSP
  // arrivals until Swap(). Same phase-ownership argument as flat_.
  std::vector<M> acc_;
  std::vector<M> acc_in_;
  Bitmap in_bits_;

  /// Visible-slot presence, mirrored with pending_ (bit li <=> li has
  /// consumable messages). Atomic word ops; see common/bitmap.h.
  Bitmap pending_bits_;

  // Flat (visible) side, double-buffered mode only. Unguarded by design:
  // written solely by Swap() in the barrier phase, read/consumed by the
  // per-vertex executor that the engine already serializes per vertex
  // (see the class comment's phase-ownership argument).
  std::vector<M> flat_;
  std::vector<M> flat_spare_;
  std::vector<Slot> slots_;
  std::vector<Slot> slots_spare_;

  std::atomic<int64_t> pending_{0};
};

/// Open-addressing map used for sender-side combining: folds messages
/// keyed by destination vertex, preserving first-insertion order for the
/// drain (so encoded batches stay deterministic for a given fold order).
/// Not thread-safe; the engine guards it with the out-buffer mutex.
template <typename M>
class CombiningMap {
 public:
  size_t size() const { return entries_.size(); }

  /// Folds `msg` into the entry for `dst` (via `combine`) or inserts a
  /// new entry. Returns true on insert — the caller uses that to grow
  /// its pending-bytes estimate.
  template <typename Fn>
  bool Fold(VertexId dst, const M& msg, Fn&& combine) {
    if (table_.empty()) {
      table_.assign(kInitialTable, -1);
      mask_ = kInitialTable - 1;
    }
    size_t idx = Hash(dst) & mask_;
    for (;;) {
      const int32_t e = table_[idx];
      if (e < 0) break;
      if (entries_[e].key == dst) {
        entries_[e].value = combine(entries_[e].value, msg);
        return false;
      }
      idx = (idx + 1) & mask_;
    }
    table_[idx] = static_cast<int32_t>(entries_.size());
    entries_.push_back(Entry{dst, msg});
    if (entries_.size() * 2 >= table_.size()) Grow();
    return true;
  }

  /// Moves all entries into `*out` (cleared first) in insertion order
  /// and resets the map, keeping its capacity.
  void Drain(std::vector<std::pair<VertexId, M>>* out) {
    out->clear();
    out->reserve(entries_.size());
    for (Entry& e : entries_) {
      out->emplace_back(e.key, std::move(e.value));
    }
    entries_.clear();
    table_.assign(table_.size(), -1);
  }

 private:
  static constexpr size_t kInitialTable = 1024;

  struct Entry {
    VertexId key;
    M value;
  };

  static size_t Hash(VertexId v) {
    uint64_t x = static_cast<uint64_t>(v) * 0x9E3779B97F4A7C15ull;
    return static_cast<size_t>(x >> 17);
  }

  void Grow() {
    table_.assign(table_.size() * 2, -1);
    mask_ = table_.size() - 1;
    for (size_t i = 0; i < entries_.size(); ++i) {
      size_t idx = Hash(entries_[i].key) & mask_;
      while (table_[idx] >= 0) idx = (idx + 1) & mask_;
      table_[idx] = static_cast<int32_t>(i);
    }
  }

  std::vector<Entry> entries_;
  std::vector<int32_t> table_;
  size_t mask_ = 0;
};

}  // namespace serigraph

#endif  // SERIGRAPH_PREGEL_MESSAGE_STORE_H_
