file(REMOVE_RECURSE
  "CMakeFiles/serializability_audit.dir/serializability_audit.cpp.o"
  "CMakeFiles/serializability_audit.dir/serializability_audit.cpp.o.d"
  "serializability_audit"
  "serializability_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serializability_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
