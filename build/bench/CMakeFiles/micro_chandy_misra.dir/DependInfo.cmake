
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/micro_chandy_misra.cc" "bench/CMakeFiles/micro_chandy_misra.dir/micro_chandy_misra.cc.o" "gcc" "bench/CMakeFiles/micro_chandy_misra.dir/micro_chandy_misra.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pregel/CMakeFiles/serigraph_pregel.dir/DependInfo.cmake"
  "/root/repo/build/src/sync/CMakeFiles/serigraph_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/algos/CMakeFiles/serigraph_algos.dir/DependInfo.cmake"
  "/root/repo/build/src/verify/CMakeFiles/serigraph_verify.dir/DependInfo.cmake"
  "/root/repo/build/src/harness/CMakeFiles/serigraph_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/gas/CMakeFiles/serigraph_gas.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/serigraph_net.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/serigraph_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/serigraph_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
