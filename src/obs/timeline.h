#ifndef SERIGRAPH_OBS_TIMELINE_H_
#define SERIGRAPH_OBS_TIMELINE_H_

#include <cstdint>
#include <vector>

namespace serigraph {

/// One worker's accounting for one superstep: where its wall-clock time
/// went (the paper's Section 7.3 breakdown of computation time into
/// compute vs. synchronization costs) plus its work counters.
struct SuperstepSample {
  int superstep = 0;
  int worker = 0;
  /// Time spent executing vertex programs (RunPartitions).
  int64_t compute_us = 0;
  /// Time blocked on global superstep barriers.
  int64_t barrier_wait_us = 0;
  /// Time in the superstep-end flush + delivery-ack round trip.
  int64_t flush_wait_us = 0;
  /// Time blocked acquiring forks (distributed-locking techniques only).
  int64_t fork_wait_us = 0;
  /// Vertices this worker executed during the superstep.
  int64_t vertices_executed = 0;
  /// Messages this worker's vertices sent during the superstep.
  int64_t messages_sent = 0;
  /// Global frontier density at the end of this superstep, in eligible
  /// vertices per thousand (computed once in the barrier serial section;
  /// every worker's row for a superstep carries the same value).
  int64_t frontier_density_milli = 0;
  /// Message-transfer mode this superstep ran in: 0 = push,
  /// 1 = pull-capture (broadcasts captured, not materialized),
  /// 2 = gather (pulling the previous superstep's captures),
  /// 3 = capture and gather at once. See docs/PERF.md.
  uint8_t pull_mode = 0;

  /// Hardware-counter deltas for the compute phase (perfcounters.h),
  /// populated only when EngineOptions::perf_counters is set AND
  /// perf_event_open is available; all zero with perf_hw_valid=false
  /// under the software fallback. Task-clock comes from the fallback
  /// too, so it is valid whenever perf_counters is on.
  int64_t compute_cycles = 0;
  int64_t compute_instructions = 0;
  int64_t compute_llc_loads = 0;
  int64_t compute_llc_misses = 0;
  int64_t compute_task_clock_ns = 0;
  bool perf_hw_valid = false;
};

/// Collects SuperstepSamples across workers with no cross-thread
/// contention: each worker appends to its own lane (one lane is only ever
/// touched by its owning worker thread), and Collect() merges lanes after
/// the workers have joined.
class TimelineRecorder {
 public:
  explicit TimelineRecorder(int num_workers);

  /// Appends `sample` to worker `sample.worker`'s lane. Must only be
  /// called from that worker's thread.
  void Append(const SuperstepSample& sample);

  /// All samples ordered by (superstep, worker). Call after workers join.
  std::vector<SuperstepSample> Collect() const;

 private:
  std::vector<std::vector<SuperstepSample>> lanes_;
};

/// Sum of a field over `timeline`, e.g. Total(t, &SuperstepSample::fork_wait_us).
int64_t Total(const std::vector<SuperstepSample>& timeline,
              int64_t SuperstepSample::* field);

}  // namespace serigraph

#endif  // SERIGRAPH_OBS_TIMELINE_H_
