#ifndef SERIGRAPH_PREGEL_CHECKPOINT_H_
#define SERIGRAPH_PREGEL_CHECKPOINT_H_

#include <string>
#include <vector>

#include "common/serialize.h"
#include "common/status.h"

namespace serigraph {

/// Checkpoint container format (paper Section 6.4). Checkpoints are taken
/// at global barriers, where the state is consistent: no vertex is
/// executing and no messages, forks, or tokens are in transit. The
/// payload layout is produced/consumed by the templated engine (values,
/// halted flags, message stores); this header handles framing and I/O.
///
/// Synchronization-technique state: token schedules are deterministic
/// functions of the superstep, so nothing needs saving; Chandy-Misra fork
/// tables are re-initialized to the canonical acyclic placement on
/// restore, which preserves every protocol invariant (any acyclic
/// precedence graph is a valid starting state).
struct CheckpointFrame {
  int superstep = 0;
  std::vector<uint8_t> payload;
};

/// Writes `frame` to `path` (atomic via rename). Magic-tagged.
Status WriteCheckpoint(const std::string& path, const CheckpointFrame& frame);

/// Reads a checkpoint written by WriteCheckpoint.
StatusOr<CheckpointFrame> ReadCheckpoint(const std::string& path);

}  // namespace serigraph

#endif  // SERIGRAPH_PREGEL_CHECKPOINT_H_
