#include "pregel/message_store.h"

namespace serigraph {

int PickMessageStoreShards(int64_t num_slots) {
  // One shard per ~32 vertices, clamped to [1, 16]: small partitions
  // (the Giraph-style partitions_per_worker = num_workers default gives
  // a few dozen vertices each) get one or two mutexes, big single-
  // partition stores (benches, tests) get enough stripes that remote
  // batch delivery and local sends rarely collide.
  int64_t want = num_slots / 32;
  int shards = 1;
  while (shards < want && shards < 16) shards <<= 1;
  return shards;
}

}  // namespace serigraph
