// Table 1: the dataset stand-ins and their statistics, in the paper's
// format: |V|, |E| directed, |E| undirected (parenthesised in the paper),
// and max degree. The originals are EC2-scale; the stand-ins preserve the
// ordering, skew, and directedness at laptop scale (see DESIGN.md).

#include <iostream>

#include "graph/stats.h"
#include "harness/datasets.h"
#include "harness/table.h"

using namespace serigraph;

int main() {
  PrintHeader(std::cout, "Table 1: directed datasets (synthetic stand-ins)");
  TablePrinter table({"graph", "paper original", "|V|", "|E| directed",
                      "|E| undirected", "max degree", "avg out-degree"});
  for (const DatasetSpec& spec : StandInSpecs()) {
    Graph graph = MakeDataset(spec);
    GraphStats stats = ComputeGraphStats(graph, /*compute_undirected=*/true);
    char avg[32];
    std::snprintf(avg, sizeof(avg), "%.1f", stats.avg_out_degree);
    table.AddRow({spec.name, spec.paper_name, HumanCount(stats.num_vertices),
                  HumanCount(stats.num_directed_edges),
                  HumanCount(stats.num_undirected_edges),
                  HumanCount(stats.max_degree), avg});
  }
  table.Print(std::cout);
  std::cout << "\npaper originals for reference: OR 3.0M/117M/33K, "
               "AR 22.7M/639M/575K,\nTW 41.6M/1.46B/2.9M, UK 105M/3.73B/975K "
               "(|V|/|E|/max-degree)\n";
  return 0;
}
