#include "obs/introspect.h"

#include <algorithm>

#include "obs/trace.h"

namespace serigraph {

std::atomic<bool> Introspector::enabled_{false};

const char* WorkerPhaseName(WorkerPhase phase) {
  switch (phase) {
    case WorkerPhase::kIdle: return "idle";
    case WorkerPhase::kCompute: return "compute";
    case WorkerPhase::kForkWait: return "fork_wait";
    case WorkerPhase::kFlushWait: return "flush_wait";
    case WorkerPhase::kBarrierWait: return "barrier_wait";
  }
  return "unknown";
}

Introspector& Introspector::Get() {
  static Introspector* instance = new Introspector();  // leaked singleton
  return *instance;
}

void Introspector::Configure(int num_workers, std::string resource_kind) {
  num_workers_ = num_workers;
  resource_kind_ = std::move(resource_kind);
  beacons_.clear();
  contention_.clear();
  beacons_.reserve(num_workers);
  contention_.reserve(num_workers);
  for (int w = 0; w < num_workers; ++w) {
    beacons_.push_back(std::make_unique<Beacon>());
    Beacon& b = *beacons_.back();
    for (int i = 0; i < kMaxWaitTargets; ++i) {
      // mo: beacon cell; watchdog tolerates races
      b.wait_resource[i].store(-1, std::memory_order_relaxed);
      // mo: beacon cell; watchdog tolerates races
      b.wait_owner[i].store(-1, std::memory_order_relaxed);
    }
    contention_.push_back(std::make_unique<ContentionShard>());
  }
  abort_requested_.store(false, std::memory_order_release);
  {
    sy::MutexLock lock(&abort_mu_);
    abort_reason_.clear();
  }
}

void Introspector::SetPhase(WorkerId w, WorkerPhase phase, int superstep) {
  if (w < 0 || w >= static_cast<WorkerId>(beacons_.size())) return;
  Beacon& b = *beacons_[w];
  // mo: beacon cell; watchdog tolerates races
  b.phase.store(static_cast<uint8_t>(phase), std::memory_order_relaxed);
  // mo: beacon cell; watchdog tolerates races
  b.superstep.store(superstep, std::memory_order_relaxed);
  // mo: beacon cell; watchdog tolerates races
  b.phase_since_us.store(Tracer::NowMicros(), std::memory_order_relaxed);
}

void Introspector::BeginAcquire(WorkerId w, int64_t resource,
                                const WaitTarget* targets, int count,
                                int total) {
  if (w < 0 || w >= static_cast<WorkerId>(beacons_.size())) return;
  Beacon& b = *beacons_[w];
  const int n = std::min(count, kMaxWaitTargets);
  // Publish order: hide the old list (count=0), write entries, then expose
  // the new count with release so a reader that sees it also sees the
  // entries. A racing reader may briefly observe count==0 — fine for a
  // sampler.
  // mo: beacon cell; watchdog tolerates races
  b.wait_count.store(0, std::memory_order_relaxed);
  for (int i = 0; i < n; ++i) {
    // mo: beacon cell; watchdog tolerates races
    b.wait_resource[i].store(targets[i].resource, std::memory_order_relaxed);
    // mo: beacon cell; watchdog tolerates races
    b.wait_owner[i].store(targets[i].owner, std::memory_order_relaxed);
  }
  // mo: beacon cell; watchdog tolerates races
  b.wait_total.store(total, std::memory_order_relaxed);
  // mo: beacon cell; watchdog tolerates races
  b.acquiring.store(resource, std::memory_order_relaxed);
  // mo: beacon cell; watchdog tolerates races
  b.phase_since_us.store(Tracer::NowMicros(), std::memory_order_relaxed);
  b.phase.store(static_cast<uint8_t>(WorkerPhase::kForkWait),
                std::memory_order_relaxed);  // mo: beacon cell; watchdog tolerates races
  b.wait_count.store(n, std::memory_order_release);
}

void Introspector::EndAcquire(WorkerId w, int64_t resource, int64_t wait_us,
                              bool acquired) {
  if (w < 0 || w >= static_cast<WorkerId>(beacons_.size())) return;
  Beacon& b = *beacons_[w];
  // Capture the published wait targets before clearing: the per-edge
  // contention attribution splits the wait across the blockers that were
  // visible at wait entry.
  WaitTarget targets[kMaxWaitTargets];
  const int n =
      std::min(b.wait_count.load(std::memory_order_acquire), kMaxWaitTargets);
  for (int i = 0; i < n; ++i) {
    // mo: beacon cell; watchdog tolerates races
    targets[i].resource = b.wait_resource[i].load(std::memory_order_relaxed);
    // mo: beacon cell; watchdog tolerates races
    targets[i].owner = b.wait_owner[i].load(std::memory_order_relaxed);
  }
  // mo: beacon cell; watchdog tolerates races
  b.wait_count.store(0, std::memory_order_relaxed);
  // mo: beacon cell; watchdog tolerates races
  b.wait_total.store(0, std::memory_order_relaxed);
  // mo: beacon cell; watchdog tolerates races
  b.acquiring.store(-1, std::memory_order_relaxed);
  b.phase.store(static_cast<uint8_t>(WorkerPhase::kCompute),
                std::memory_order_relaxed);  // mo: beacon cell; watchdog tolerates races
  // mo: beacon cell; watchdog tolerates races
  b.phase_since_us.store(Tracer::NowMicros(), std::memory_order_relaxed);
  if (acquired) {
    // mo: beacon cell; watchdog tolerates races
    b.progress_epoch.fetch_add(1, std::memory_order_relaxed);
  }
  if (wait_us > 0) {
    ContentionShard& shard = *contention_[w];
    sy::MutexLock lock(&shard.mu);
    ContentionCell& cell = shard.by_resource[resource];
    cell.count += 1;
    cell.total_wait_us += wait_us;
    cell.max_wait_us = std::max(cell.max_wait_us, wait_us);
    if (n > 0) {
      const int64_t share = wait_us / n;
      for (int i = 0; i < n; ++i) {
        ContentionCell& edge = shard.by_edge[{resource, targets[i].resource}];
        edge.count += 1;
        edge.total_wait_us += share;
        edge.max_wait_us = std::max(edge.max_wait_us, share);
      }
    }
  }
}

void Introspector::OnProgress(WorkerId w) {
  if (w < 0 || w >= static_cast<WorkerId>(beacons_.size())) return;
  // mo: beacon cell; watchdog tolerates races
  beacons_[w]->progress_epoch.fetch_add(1, std::memory_order_relaxed);
}

void Introspector::SetTokenHolder(WorkerId w, int64_t holder) {
  if (w < 0 || w >= static_cast<WorkerId>(beacons_.size())) return;
  // mo: beacon cell; watchdog tolerates races
  beacons_[w]->token_holder.store(holder, std::memory_order_relaxed);
}

void Introspector::RecordWait(WorkerId w, int64_t resource, int64_t wait_us) {
  if (w < 0 || w >= static_cast<WorkerId>(contention_.size())) return;
  if (wait_us <= 0) return;
  ContentionShard& shard = *contention_[w];
  sy::MutexLock lock(&shard.mu);
  ContentionCell& cell = shard.by_resource[resource];
  cell.count += 1;
  cell.total_wait_us += wait_us;
  cell.max_wait_us = std::max(cell.max_wait_us, wait_us);
}

BeaconSnapshot Introspector::ReadBeacon(WorkerId w) const {
  BeaconSnapshot snap;
  if (w < 0 || w >= static_cast<WorkerId>(beacons_.size())) return snap;
  const Beacon& b = *beacons_[w];
  // mo: beacon cell; watchdog tolerates races
  snap.phase = static_cast<WorkerPhase>(b.phase.load(std::memory_order_relaxed));
  // mo: beacon cell; watchdog tolerates races
  snap.superstep = b.superstep.load(std::memory_order_relaxed);
  // mo: beacon cell; watchdog tolerates races
  snap.phase_since_us = b.phase_since_us.load(std::memory_order_relaxed);
  // mo: beacon cell; watchdog tolerates races
  snap.progress_epoch = b.progress_epoch.load(std::memory_order_relaxed);
  // mo: beacon cell; watchdog tolerates races
  snap.acquiring = b.acquiring.load(std::memory_order_relaxed);
  // mo: beacon cell; watchdog tolerates races
  snap.token_holder = b.token_holder.load(std::memory_order_relaxed);
  const int n =
      std::min(b.wait_count.load(std::memory_order_acquire), kMaxWaitTargets);
  snap.wait_count = n;
  // mo: beacon cell; watchdog tolerates races
  snap.wait_total = b.wait_total.load(std::memory_order_relaxed);
  for (int i = 0; i < n; ++i) {
    // mo: beacon cell; watchdog tolerates races
    snap.wait_resource[i] = b.wait_resource[i].load(std::memory_order_relaxed);
    // mo: beacon cell; watchdog tolerates races
    snap.wait_owner[i] = b.wait_owner[i].load(std::memory_order_relaxed);
  }
  ProbeQueues(w, &snap.inbox_depth, &snap.outbox_bytes);
  return snap;
}

WaitForGraph Introspector::BuildWaitForGraph() const {
  WaitForGraph graph;
  graph.num_workers = num_workers_;
  const int64_t now_us = Tracer::NowMicros();
  for (int w = 0; w < num_workers_; ++w) {
    const Beacon& b = *beacons_[w];
    // mo: beacon cell; watchdog tolerates races
    if (static_cast<WorkerPhase>(b.phase.load(std::memory_order_relaxed)) !=
        WorkerPhase::kForkWait) {
      continue;
    }
    const int n =
        std::min(b.wait_count.load(std::memory_order_acquire), kMaxWaitTargets);
    // mo: beacon cell; watchdog tolerates races
    const int64_t waiter = b.acquiring.load(std::memory_order_relaxed);
    // mo: beacon cell; watchdog tolerates races
    const int64_t since = b.phase_since_us.load(std::memory_order_relaxed);
    for (int i = 0; i < n; ++i) {
      WaitForEdge e;
      e.from = w;
      // mo: beacon cell; watchdog tolerates races
      e.to = b.wait_owner[i].load(std::memory_order_relaxed);
      e.waiter = waiter;
      // mo: beacon cell; watchdog tolerates races
      e.resource = b.wait_resource[i].load(std::memory_order_relaxed);
      e.waited_us = std::max<int64_t>(0, now_us - since);
      graph.edges.push_back(e);
    }
  }
  return graph;
}

std::vector<ContentionEntry> Introspector::ContentionTopK(int k) const {
  std::unordered_map<int64_t, ContentionCell> merged;
  for (const auto& shard_ptr : contention_) {
    sy::MutexLock lock(&shard_ptr->mu);
    for (const auto& [resource, cell] : shard_ptr->by_resource) {
      ContentionCell& out = merged[resource];
      out.count += cell.count;
      out.total_wait_us += cell.total_wait_us;
      out.max_wait_us = std::max(out.max_wait_us, cell.max_wait_us);
    }
  }
  std::vector<ContentionEntry> entries;
  entries.reserve(merged.size());
  for (const auto& [resource, cell] : merged) {
    entries.push_back({resource, cell.count, cell.total_wait_us,
                       cell.max_wait_us});
  }
  std::sort(entries.begin(), entries.end(),
            [](const ContentionEntry& a, const ContentionEntry& b) {
              if (a.total_wait_us != b.total_wait_us)
                return a.total_wait_us > b.total_wait_us;
              return a.resource < b.resource;
            });
  if (k >= 0 && static_cast<size_t>(k) < entries.size()) entries.resize(k);
  return entries;
}

std::vector<EdgeContentionEntry> Introspector::EdgeContentionTopK(int k) const {
  std::map<std::pair<int64_t, int64_t>, ContentionCell> merged;
  for (const auto& shard_ptr : contention_) {
    sy::MutexLock lock(&shard_ptr->mu);
    for (const auto& [edge, cell] : shard_ptr->by_edge) {
      ContentionCell& out = merged[edge];
      out.count += cell.count;
      out.total_wait_us += cell.total_wait_us;
    }
  }
  std::vector<EdgeContentionEntry> entries;
  entries.reserve(merged.size());
  for (const auto& [edge, cell] : merged) {
    entries.push_back({edge.first, edge.second, cell.count,
                       cell.total_wait_us});
  }
  std::sort(entries.begin(), entries.end(),
            [](const EdgeContentionEntry& a, const EdgeContentionEntry& b) {
              if (a.total_wait_us != b.total_wait_us)
                return a.total_wait_us > b.total_wait_us;
              if (a.waiter != b.waiter) return a.waiter < b.waiter;
              return a.blocker < b.blocker;
            });
  if (k >= 0 && static_cast<size_t>(k) < entries.size()) entries.resize(k);
  return entries;
}

void Introspector::SetQueueProbe(QueueProbe probe) {
  sy::MutexLock lock(&probe_mu_);
  queue_probe_ = std::move(probe);
}

void Introspector::ClearQueueProbe() {
  sy::MutexLock lock(&probe_mu_);
  queue_probe_ = nullptr;
}

void Introspector::ProbeQueues(WorkerId w, int64_t* inbox_depth,
                               int64_t* outbox_bytes) const {
  sy::MutexLock lock(&probe_mu_);
  if (queue_probe_) queue_probe_(w, inbox_depth, outbox_bytes);
}

void Introspector::RequestAbort(const std::string& reason) {
  {
    sy::MutexLock lock(&abort_mu_);
    // mo: poll flag; acted on at the next check
    if (abort_requested_.load(std::memory_order_relaxed)) return;
    abort_reason_ = reason;
  }
  abort_requested_.store(true, std::memory_order_release);
}

std::string Introspector::abort_reason() const {
  sy::MutexLock lock(&abort_mu_);
  return abort_reason_;
}

}  // namespace serigraph
