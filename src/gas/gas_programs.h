#ifndef SERIGRAPH_GAS_GAS_PROGRAMS_H_
#define SERIGRAPH_GAS_GAS_PROGRAMS_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "algos/coloring.h"
#include "graph/graph.h"

namespace serigraph {

/// Greedy coloring in the GAS model (paper Section 2.3 / 7.2.1): gather
/// pulls neighbor colors, apply picks the smallest non-conflicting one,
/// scatter re-activates the neighborhood when the color changed. Under
/// async GAS without serializability this can livelock; with
/// serializability it terminates — GraphLab's pull-based variant finishes
/// in a single pass over the vertices.
struct GasColoring {
  using VertexValue = int64_t;
  using Gather = std::vector<int64_t>;

  VertexValue InitialValue(VertexId, const Graph&) const { return kNoColor; }

  Gather GatherInit() const { return {}; }

  Gather GatherEdge(Gather acc, VertexId, VertexId,
                    const VertexValue& neighbor_value) const {
    acc.push_back(neighbor_value);
    return acc;
  }

  VertexValue Apply(VertexId, const VertexValue& old, const Gather& acc,
                    bool* activate_neighbors) const {
    bool conflict = old == kNoColor;
    for (int64_t c : acc) conflict |= (c == old);
    if (!conflict) {
      *activate_neighbors = false;
      return old;
    }
    const int64_t color = SmallestFreeColor(acc);
    *activate_neighbors = color != old;
    return color;
  }
};

/// PageRank in the GAS model: gather sums in-neighbor rank shares, apply
/// damps, scatter re-activates while the rank still moves.
struct GasPageRank {
  using VertexValue = double;
  using Gather = double;

  explicit GasPageRank(const Graph* graph, double tolerance)
      : graph(graph), tolerance(tolerance) {}

  const Graph* graph;
  double tolerance;

  VertexValue InitialValue(VertexId, const Graph&) const { return 1.0; }

  Gather GatherInit() const { return 0.0; }

  Gather GatherEdge(Gather acc, VertexId, VertexId neighbor,
                    const VertexValue& neighbor_value) const {
    const int64_t deg = graph->OutDegree(neighbor);
    return deg > 0 ? acc + neighbor_value / static_cast<double>(deg) : acc;
  }

  VertexValue Apply(VertexId, const VertexValue& old, const Gather& acc,
                    bool* activate_neighbors) const {
    const double next = 0.15 + 0.85 * acc;
    *activate_neighbors = std::fabs(next - old) > tolerance;
    return next;
  }
};

}  // namespace serigraph

#endif  // SERIGRAPH_GAS_GAS_PROGRAMS_H_
