#include "gas/vertex_cut.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"
#include "common/rng.h"

namespace serigraph {

VertexCut VertexCut::Random(const Graph& graph, int num_workers,
                            uint64_t seed) {
  SG_CHECK_GT(num_workers, 0);
  VertexCut cut;
  cut.num_workers_ = num_workers;
  cut.edge_worker_.resize(graph.num_edges());
  int64_t index = 0;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    for (VertexId u : graph.OutNeighbors(v)) {
      uint64_t h = (static_cast<uint64_t>(v) << 32) ^
                   static_cast<uint64_t>(u) ^ seed;
      cut.edge_worker_[index++] =
          static_cast<WorkerId>(SplitMix64(&h) % num_workers);
    }
  }
  cut.BuildReplicas(graph);
  return cut;
}

VertexCut VertexCut::Greedy(const Graph& graph, int num_workers) {
  SG_CHECK_GT(num_workers, 0);
  VertexCut cut;
  cut.num_workers_ = num_workers;
  cut.edge_worker_.resize(graph.num_edges());

  // Replica sets as bitmasks (workers <= 64 is plenty here).
  SG_CHECK_LE(num_workers, 64);
  std::vector<uint64_t> where(graph.num_vertices(), 0);
  std::vector<int64_t> load(num_workers, 0);
  const uint64_t all_workers = num_workers == 64
                                   ? ~uint64_t{0}
                                   : (uint64_t{1} << num_workers) - 1;
  // Balance constraint (as in PowerGraph's greedy heuristic): without a
  // capacity bound the locality preference funnels every edge of a
  // connected graph onto one worker.
  const int64_t capacity = static_cast<int64_t>(
      1.1 * static_cast<double>(graph.num_edges()) /
          static_cast<double>(num_workers) +
      1.0);

  auto least_loaded = [&](uint64_t candidates) {
    WorkerId best = kInvalidWorker;
    for (WorkerId w = 0; w < num_workers; ++w) {
      if ((candidates & (uint64_t{1} << w)) == 0) continue;
      if (best == kInvalidWorker || load[w] < load[best]) best = w;
    }
    return best;
  };
  auto under_capacity = [&]() {
    uint64_t mask = 0;
    for (WorkerId w = 0; w < num_workers; ++w) {
      if (load[w] < capacity) mask |= uint64_t{1} << w;
    }
    return mask == 0 ? all_workers : mask;
  };

  int64_t index = 0;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    for (VertexId u : graph.OutNeighbors(v)) {
      const uint64_t open = under_capacity();
      const uint64_t both = where[v] & where[u] & open;
      const uint64_t either = (where[v] | where[u]) & open;
      WorkerId w;
      if (both != 0) {
        w = least_loaded(both);
      } else if (either != 0) {
        w = least_loaded(either);
      } else {
        w = least_loaded(open);
      }
      cut.edge_worker_[index++] = w;
      where[v] |= uint64_t{1} << w;
      where[u] |= uint64_t{1} << w;
      ++load[w];
    }
  }
  cut.BuildReplicas(graph);
  return cut;
}

void VertexCut::BuildReplicas(const Graph& graph) {
  replicas_.assign(graph.num_vertices(), {});
  master_.assign(graph.num_vertices(), 0);
  std::vector<std::vector<int64_t>> edges_on(graph.num_vertices());
  for (auto& counts : edges_on) counts.assign(num_workers_, 0);

  int64_t index = 0;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    for (VertexId u : graph.OutNeighbors(v)) {
      const WorkerId w = edge_worker_[index++];
      ++edges_on[v][w];
      ++edges_on[u][w];
    }
  }
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    WorkerId best = 0;
    for (WorkerId w = 0; w < num_workers_; ++w) {
      if (edges_on[v][w] > 0) replicas_[v].push_back(w);
      if (edges_on[v][w] > edges_on[v][best]) best = w;
    }
    if (replicas_[v].empty()) {
      // Isolated vertex: hash-assign a master.
      uint64_t h = static_cast<uint64_t>(v);
      best = static_cast<WorkerId>(SplitMix64(&h) % num_workers_);
    }
    master_[v] = best;
  }
}

double VertexCut::ReplicationFactor() const {
  if (replicas_.empty()) return 0.0;
  int64_t total = 0;
  int64_t counted = 0;
  for (const auto& reps : replicas_) {
    if (reps.empty()) continue;  // isolated vertices are not replicated
    total += static_cast<int64_t>(reps.size());
    ++counted;
  }
  return counted == 0 ? 0.0
                      : static_cast<double>(total) /
                            static_cast<double>(counted);
}

double VertexCut::EdgeImbalance() const {
  if (edge_worker_.empty()) return 1.0;
  std::vector<int64_t> load(num_workers_, 0);
  for (WorkerId w : edge_worker_) ++load[w];
  const int64_t max_load = *std::max_element(load.begin(), load.end());
  const double mean = static_cast<double>(edge_worker_.size()) /
                      static_cast<double>(num_workers_);
  return static_cast<double>(max_load) / mean;
}

}  // namespace serigraph
