#include "sync/chandy_misra.h"

#include <chrono>

#include "common/logging.h"
#include "common/planted.h"
#include "fault/fault.h"
#include "obs/introspect.h"
#include "obs/trace.h"

namespace serigraph {

ChandyMisraTable::ChandyMisraTable(Config config)
    : config_(std::move(config)) {
  SG_CHECK_GT(config_.num_workers, 0);
  SG_CHECK(config_.worker_of != nullptr);
  SG_CHECK(config_.metrics != nullptr);
  SG_CHECK_EQ(static_cast<PhilosopherId>(config_.adjacency.size()),
              config_.count);
  SG_CHECK_NE(config_.request_tag, config_.transfer_tag);

  fork_requests_ = config_.metrics->GetCounter("sync.fork_requests");
  fork_transfers_ = config_.metrics->GetCounter("sync.fork_transfers");
  cross_worker_transfers_ =
      config_.metrics->GetCounter("sync.fork_transfers_cross_worker");
  handover_flushes_ = config_.metrics->GetCounter("sync.handover_flushes");

  shards_.reserve(config_.num_workers);
  for (int w = 0; w < config_.num_workers; ++w) {
    shards_.push_back(std::make_unique<WorkerShard>());
  }

  // Acyclic initial placement (Section 6.3): for each shared fork, the
  // philosopher with the smaller id holds the request token and the one
  // with the larger id holds the fork, dirty. Smaller ids therefore have
  // initial precedence over all larger-id neighbors.
  for (PhilosopherId p = 0; p < config_.count; ++p) {
    WorkerShard& shard = *shards_[config_.worker_of(p)];
    sy::MutexLock lock(&shard.mu);
    Philosopher& phil = shard.philosophers[p];
    for (PhilosopherId q : config_.adjacency[p]) {
      SG_CHECK_NE(p, q);
      uint8_t bits = 0;
      if (p > q) {
        bits = kHasFork | kDirty;
        // Negative control (serichk): hand the initial forks out *clean*.
        // OnRequest never yields a clean fork, so the acyclic initial
        // precedence graph freezes into a permanent one: two hungry
        // neighbors each keep waiting for the other's clean fork —
        // deadlock on the very first superstep.
        if (SG_PLANTED_BUG("cm.clean_initial_forks")) bits = kHasFork;
      } else {
        bits = kHasToken;
        ++num_forks_;
      }
      phil.edges.emplace(q, bits);
    }
  }
}

void ChandyMisraTable::BindWorker(WorkerId w, WorkerHandle* handle) {
  SG_CHECK(handle != nullptr);
  // Locked even though binding happens before compute threads start:
  // comm threads read `handle` under the shard lock, and the annotation
  // pass showed this write was the one unguarded access to it.
  sy::MutexLock lock(&shards_[w]->mu);
  shards_[w]->handle = handle;
}

bool ChandyMisraTable::Acquire(PhilosopherId p) {
  // Injection point, probed before the shard lock: a crash/hang here
  // abandons the acquisition (returns false, lock not held) exactly like
  // an introspector abort does.
  if (SG_FAULT_POINT("cm.acquire", config_.worker_of(p))) return false;
  WorkerShard& shard = ShardOf(p);
  sy::MutexLock lock(&shard.mu);
  Philosopher& phil = shard.philosophers[p];
  SG_CHECK(phil.state == State::kThinking);
  phil.state = State::kHungry;
  phil.missing_forks = 0;
  const bool introspect = Introspector::enabled();
  Introspector::WaitTarget targets[Introspector::kMaxWaitTargets];
  int num_targets = 0;
  for (auto& [q, bits] : phil.edges) {
    if ((bits & kHasFork) != 0) continue;
    ++phil.missing_forks;
    if (introspect && num_targets < Introspector::kMaxWaitTargets) {
      targets[num_targets].resource = q;
      targets[num_targets].owner = config_.worker_of(q);
      ++num_targets;
    }
    if ((bits & kHasToken) != 0) {
      bits &= ~kHasToken;
      SendRequestLocked(shard, p, q);
    }
    // Without the token, the request is already outstanding: we sent the
    // token away earlier and the fork will arrive eventually.
  }
  const WorkerId self = config_.worker_of(p);
  if (introspect && phil.missing_forks == 0) {
    Introspector::Get().OnProgress(self);
  }
  // Wait until all forks are held. The generous timeout is a test-friendly
  // deadlock detector; the protocol itself is deadlock-free.
  const bool timed = phil.missing_forks > 0 && (introspect || Tracer::enabled());
  const int64_t wait_start_us = timed ? Tracer::NowMicros() : -1;
  if (introspect && phil.missing_forks > 0) {
    Introspector::Get().BeginAcquire(self, p, targets, num_targets,
                                     phil.missing_forks);
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(300);
  while (phil.missing_forks > 0) {
    if (introspect) {
      // Short slices so a watchdog-requested abort unblocks us promptly;
      // the fatal backstop still fires at the long deadline.
      shard.cv.WaitFor(shard.mu, std::chrono::milliseconds(100));
      if (phil.missing_forks == 0) break;
      Introspector& in = Introspector::Get();
      if (in.abort_requested()) {
        // Abandon the acquisition: back to thinking, forks not held.
        // Outstanding requested forks may still arrive; OnTransfer only
        // decrements missing_forks for hungry philosophers, so the late
        // arrivals are absorbed safely.
        phil.state = State::kThinking;
        phil.missing_forks = 0;
        in.EndAcquire(self, p, Tracer::NowMicros() - wait_start_us,
                      /*acquired=*/false);
        return false;
      }
      if (std::chrono::steady_clock::now() >= deadline) {
        SG_LOG(kFatal) << "Chandy-Misra acquire stalled for philosopher " << p
                       << " (missing " << phil.missing_forks << " forks)";
      }
    } else if (shard.cv.WaitUntil(shard.mu, deadline) ==
               std::cv_status::timeout) {
      SG_LOG(kFatal) << "Chandy-Misra acquire stalled for philosopher " << p
                     << " (missing " << phil.missing_forks << " forks)";
    }
  }
  if (wait_start_us >= 0) {
    const int64_t waited = Tracer::NowMicros() - wait_start_us;
    if (Tracer::enabled()) {
      SG_TRACE_INTERVAL("cm.fork_wait", wait_start_us, waited);
    }
    if (introspect) {
      Introspector::Get().EndAcquire(self, p, waited, /*acquired=*/true);
    }
  }
  phil.state = State::kEating;
  return true;
}

void ChandyMisraTable::Release(PhilosopherId p) {
  WorkerShard& shard = ShardOf(p);
  sy::MutexLock lock(&shard.mu);
  Philosopher& phil = shard.philosophers[p];
  SG_CHECK(phil.state == State::kEating);
  phil.state = State::kThinking;
  for (auto& [q, bits] : phil.edges) {
    if ((bits & kHasFork) != 0) {
      bits |= kDirty;  // forks were used to eat
      if ((bits & kHasToken) != 0) {
        // Deferred request: the neighbor asked while we were eating.
        // Hand over the fork (cleaned); we keep the request token.
        bits &= ~(kHasFork | kDirty);
        SendTransferLocked(shard, p, q);
      }
    }
  }
}

bool ChandyMisraTable::HoldsAllForks(PhilosopherId p) {
  WorkerShard& shard = ShardOf(p);
  sy::MutexLock lock(&shard.mu);
  Philosopher& phil = shard.philosophers[p];
  for (const auto& [q, bits] : phil.edges) {
    if ((bits & kHasFork) == 0) return false;
  }
  return true;
}

void ChandyMisraTable::RequestMissingForks(PhilosopherId p) {
  WorkerShard& shard = ShardOf(p);
  sy::MutexLock lock(&shard.mu);
  Philosopher& phil = shard.philosophers[p];
  for (auto& [q, bits] : phil.edges) {
    if ((bits & kHasFork) != 0 || (bits & kHasToken) == 0) continue;
    bits &= ~kHasToken;
    SendRequestLocked(shard, p, q);
  }
}

void ChandyMisraTable::MarkEaten(PhilosopherId p) {
  WorkerShard& shard = ShardOf(p);
  sy::MutexLock lock(&shard.mu);
  Philosopher& phil = shard.philosophers[p];
  SG_CHECK(phil.state == State::kThinking);
  for (auto& [q, bits] : phil.edges) {
    if ((bits & kHasFork) == 0) continue;
    bits |= kDirty;
    if ((bits & kHasToken) != 0) {
      bits &= ~(kHasFork | kDirty);
      SendTransferLocked(shard, p, q);
    }
  }
}

void ChandyMisraTable::HandleControl(WorkerId w, const WireMessage& msg) {
  WorkerShard& shard = *shards_[w];
  const PhilosopherId from = msg.a;
  const PhilosopherId to = msg.b;
  SG_CHECK_EQ(config_.worker_of(to), w);
  if (msg.tag == config_.request_tag) {
    OnRequest(shard, from, to);
  } else if (msg.tag == config_.transfer_tag) {
    OnTransfer(shard, from, to);
  } else {
    SG_LOG(kFatal) << "unknown control tag " << msg.tag;
  }
}

void ChandyMisraTable::SendRequestLocked(WorkerShard& shard, PhilosopherId p,
                                         PhilosopherId q) {
  fork_requests_->Increment();
  SG_CHECK(shard.handle != nullptr);
  shard.handle->SendControl(config_.worker_of(q), config_.request_tag, p, q,
                            0);
}

void ChandyMisraTable::SendTransferLocked(WorkerShard& shard, PhilosopherId p,
                                          PhilosopherId q) {
  fork_transfers_->Increment();
  SG_CHECK(shard.handle != nullptr);
  const WorkerId dst = config_.worker_of(q);
  if (dst != shard.handle->worker_id()) {
    // Write-all rule (condition C1): pending remote replica updates must
    // reach `dst` before the fork does. The transport's per-pair FIFO
    // turns this flush-then-send into delivery-before-handover.
    SG_TRACE_SPAN("cm.handover_flush");
    handover_flushes_->Increment();
    // Negative control (serichk): skipping the flush lets the fork
    // overtake the replica updates it guards — the new holder can read a
    // stale replica (C1 violation in the recorded history).
    if (!SG_PLANTED_BUG("cm.skip_handover_flush")) {
      shard.handle->FlushRemoteTo(dst);
    }
    cross_worker_transfers_->Increment();
  }
  shard.handle->SendControl(dst, config_.transfer_tag, p, q, 0);
}

void ChandyMisraTable::OnRequest(WorkerShard& shard, PhilosopherId from,
                                 PhilosopherId to) {
  bool consistent = true;
  {
    sy::MutexLock lock(&shard.mu);
    Philosopher& phil = shard.philosophers[to];
    auto it = phil.edges.find(from);
    SG_CHECK(it != phil.edges.end());
    uint8_t& bits = it->second;
    // The requester relinquished the token; it now rests with us. The fork
    // must be here: exactly one endpoint holds it and the requester did
    // not. Either can break only when a control message vanished on the
    // wire (injected loss) — report outside the shard lock.
    if ((bits & kHasToken) != 0 || (bits & kHasFork) == 0) {
      consistent = false;
    } else {
      bits |= kHasToken;
      const bool dirty = (bits & kDirty) != 0;
      if (phil.state == State::kEating || !dirty) {
        // Defer: an eating philosopher finishes first (hygiene); a clean
        // fork means we are hungry and have priority for it.
        return;
      }
      // Thinking-or-hungry with a dirty fork: we must yield it.
      bits &= ~(kHasFork | kDirty);
      SendTransferLocked(shard, to, from);
      if (phil.state == State::kHungry) {
        // We still need the fork: spend the token we just received to ask
        // for it back. The fork will return clean and then cannot be taken
        // again.
        ++phil.missing_forks;
        bits &= ~kHasToken;
        SendRequestLocked(shard, to, from);
      }
    }
  }
  if (!consistent) ReportViolation(from, to, "fork request");
}

void ChandyMisraTable::OnTransfer(WorkerShard& shard, PhilosopherId from,
                                  PhilosopherId to) {
  bool consistent = true;
  {
    sy::MutexLock lock(&shard.mu);
    Philosopher& phil = shard.philosophers[to];
    auto it = phil.edges.find(from);
    SG_CHECK(it != phil.edges.end());
    uint8_t& bits = it->second;
    // A transfer for a fork we already hold, or one we never asked for,
    // means an earlier control message on this edge was lost.
    if ((bits & kHasFork) != 0 ||
        (phil.state == State::kHungry && phil.missing_forks <= 0)) {
      consistent = false;
    } else {
      bits |= kHasFork;   // forks always arrive clean
      bits &= ~kDirty;
      if (phil.state == State::kHungry) {
        SG_CHECK_GT(phil.missing_forks, 0);
        if (--phil.missing_forks == 0) {
          shard.cv.NotifyAll();
        }
      }
    }
  }
  if (!consistent) ReportViolation(from, to, "fork transfer");
}

void ChandyMisraTable::ReportViolation(PhilosopherId from, PhilosopherId to,
                                       const char* what) {
  const std::string reason =
      std::string(what) + " on edge " + std::to_string(from) + "->" +
      std::to_string(to) +
      " does not match the local fork state (control message lost?)";
  if (config_.on_protocol_violation) {
    config_.on_protocol_violation(config_.worker_of(to), reason);
    return;
  }
  SG_LOG(kFatal) << "fork protocol inconsistency: " << reason;
}

}  // namespace serigraph
