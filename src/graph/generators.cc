#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"

namespace serigraph {

EdgeList ErdosRenyi(VertexId num_vertices, int64_t num_edges, uint64_t seed) {
  SG_CHECK_GE(num_vertices, 2);
  Rng rng(seed);
  EdgeList el;
  el.num_vertices = num_vertices;
  el.edges.reserve(num_edges);
  for (int64_t i = 0; i < num_edges; ++i) {
    VertexId src = static_cast<VertexId>(rng.Uniform(num_vertices));
    VertexId dst = static_cast<VertexId>(rng.Uniform(num_vertices - 1));
    if (dst >= src) ++dst;  // skip self loop
    el.edges.push_back({src, dst});
  }
  return el;
}

EdgeList PowerLawChungLu(VertexId num_vertices, double avg_degree,
                         double gamma, uint64_t seed) {
  SG_CHECK_GE(num_vertices, 2);
  SG_CHECK_GT(gamma, 1.0);
  Rng rng(seed);

  // Expected-degree weights w_v = (v+1)^(-1/(gamma-1)), normalized so that
  // sum(w) * avg_degree/mean(w) gives the requested mean degree.
  const double exponent = -1.0 / (gamma - 1.0);
  std::vector<double> weights(num_vertices);
  double total = 0.0;
  for (VertexId v = 0; v < num_vertices; ++v) {
    weights[v] = std::pow(static_cast<double>(v + 1), exponent);
    total += weights[v];
  }
  // Cumulative distribution for weighted endpoint sampling.
  std::vector<double> cdf(num_vertices);
  double acc = 0.0;
  for (VertexId v = 0; v < num_vertices; ++v) {
    acc += weights[v] / total;
    cdf[v] = acc;
  }
  auto sample = [&]() -> VertexId {
    double u = rng.NextDouble();
    auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    if (it == cdf.end()) --it;
    return static_cast<VertexId>(it - cdf.begin());
  };

  const int64_t target_edges =
      static_cast<int64_t>(avg_degree * static_cast<double>(num_vertices));
  EdgeList el;
  el.num_vertices = num_vertices;
  el.edges.reserve(target_edges);
  while (static_cast<int64_t>(el.edges.size()) < target_edges) {
    VertexId src = sample();
    VertexId dst = sample();
    if (src == dst) continue;
    el.edges.push_back({src, dst});
  }
  return el;
}

EdgeList RMat(int scale, int edge_factor, uint64_t seed, double a, double b,
              double c) {
  SG_CHECK_GT(scale, 0);
  SG_CHECK_LE(scale, 30);
  const double d = 1.0 - a - b - c;
  SG_CHECK_GE(d, 0.0);
  Rng rng(seed);
  const VertexId n = VertexId{1} << scale;
  const int64_t m = static_cast<int64_t>(edge_factor) * n;

  EdgeList el;
  el.num_vertices = n;
  el.edges.reserve(m);
  while (static_cast<int64_t>(el.edges.size()) < m) {
    VertexId src = 0;
    VertexId dst = 0;
    for (int bit = 0; bit < scale; ++bit) {
      const double r = rng.NextDouble();
      if (r < a) {
        // top-left quadrant: neither bit set
      } else if (r < a + b) {
        dst |= VertexId{1} << bit;
      } else if (r < a + b + c) {
        src |= VertexId{1} << bit;
      } else {
        src |= VertexId{1} << bit;
        dst |= VertexId{1} << bit;
      }
    }
    if (src == dst) continue;
    el.edges.push_back({src, dst});
  }
  return el;
}

EdgeList Ring(VertexId num_vertices) {
  SG_CHECK_GE(num_vertices, 2);
  EdgeList el;
  el.num_vertices = num_vertices;
  el.edges.reserve(num_vertices);
  for (VertexId v = 0; v < num_vertices; ++v) {
    el.edges.push_back({v, (v + 1) % num_vertices});
  }
  return el;
}

EdgeList Grid(VertexId rows, VertexId cols) {
  SG_CHECK_GE(rows, 1);
  SG_CHECK_GE(cols, 1);
  EdgeList el;
  el.num_vertices = rows * cols;
  auto id = [cols](VertexId r, VertexId c) { return r * cols + c; };
  for (VertexId r = 0; r < rows; ++r) {
    for (VertexId c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        el.edges.push_back({id(r, c), id(r, c + 1)});
        el.edges.push_back({id(r, c + 1), id(r, c)});
      }
      if (r + 1 < rows) {
        el.edges.push_back({id(r, c), id(r + 1, c)});
        el.edges.push_back({id(r + 1, c), id(r, c)});
      }
    }
  }
  return el;
}

EdgeList Complete(VertexId num_vertices) {
  SG_CHECK_GE(num_vertices, 2);
  EdgeList el;
  el.num_vertices = num_vertices;
  el.edges.reserve(num_vertices * (num_vertices - 1));
  for (VertexId u = 0; u < num_vertices; ++u) {
    for (VertexId v = 0; v < num_vertices; ++v) {
      if (u != v) el.edges.push_back({u, v});
    }
  }
  return el;
}

EdgeList Star(VertexId num_vertices) {
  SG_CHECK_GE(num_vertices, 2);
  EdgeList el;
  el.num_vertices = num_vertices;
  for (VertexId v = 1; v < num_vertices; ++v) {
    el.edges.push_back({0, v});
    el.edges.push_back({v, 0});
  }
  return el;
}

EdgeList Path(VertexId num_vertices) {
  SG_CHECK_GE(num_vertices, 1);
  EdgeList el;
  el.num_vertices = num_vertices;
  for (VertexId v = 0; v + 1 < num_vertices; ++v) {
    el.edges.push_back({v, v + 1});
  }
  return el;
}

EdgeList PaperExampleGraph() {
  // Figures 2-5: v0-v2 and v1-v3 within workers, v0-v1 and v2-v3 across.
  EdgeList el;
  el.num_vertices = 4;
  const Edge undirected[] = {{0, 1}, {0, 2}, {1, 3}, {2, 3}};
  for (const Edge& e : undirected) {
    el.edges.push_back(e);
    el.edges.push_back({e.dst, e.src});
  }
  return el;
}

}  // namespace serigraph
