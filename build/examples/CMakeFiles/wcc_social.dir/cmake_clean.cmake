file(REMOVE_RECURSE
  "CMakeFiles/wcc_social.dir/wcc_social.cpp.o"
  "CMakeFiles/wcc_social.dir/wcc_social.cpp.o.d"
  "wcc_social"
  "wcc_social.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wcc_social.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
