#include "check/scheduler.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace serigraph {
namespace check {

namespace {

// The report paths run with ctl_mu_ held on a registered thread, so they
// must not touch SG_LOG (its sink mutex is an instrumented sy::Mutex and
// would re-enter the scheduler). Plain stderr only.
void Fnv(uint64_t* hash, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    *hash ^= (value >> (i * 8)) & 0xff;
    *hash *= 1099511628211ull;
  }
}

void FnvStr(uint64_t* hash, const char* s) {
  for (; s != nullptr && *s != '\0'; ++s) {
    *hash ^= static_cast<uint8_t>(*s);
    *hash *= 1099511628211ull;
  }
}

}  // namespace

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kStart:
      return "start";
    case OpKind::kLock:
      return "lock";
    case OpKind::kTryLock:
      return "trylock";
    case OpKind::kCondWait:
      return "wait";
    case OpKind::kReacquire:
      return "reacquire";
    case OpKind::kYield:
      return "yield";
    case OpKind::kExit:
      return "exit";
  }
  return "?";
}

VirtualScheduler::VirtualScheduler(Options opts) : opts_(std::move(opts)) {
  threads_.reserve(opts_.expected_threads);
  for (int i = 0; i < opts_.expected_threads; ++i) {
    threads_.push_back(std::make_unique<ThreadRec>());
    threads_.back()->id = i;
  }
}

VirtualScheduler::~VirtualScheduler() = default;

VirtualScheduler::ThreadRec& VirtualScheduler::Self() {
  return *threads_[sy::ScheduledThreadId()];
}

int VirtualScheduler::ObjIdLocked(void* ptr) {
  // Ids are assigned in first-use order, which is a deterministic
  // function of the schedule prefix — unlike raw addresses, they are
  // stable across executions and processes (the trace hash depends on
  // this).
  (void)ptr;
  return next_obj_++;
}

VirtualScheduler::MutexModel& VirtualScheduler::MutexFor(void* mu) {
  auto [it, inserted] = mutexes_.try_emplace(mu);
  if (inserted) it->second.obj = ObjIdLocked(mu);
  return it->second;
}

VirtualScheduler::CvModel& VirtualScheduler::CvFor(void* cv) {
  auto [it, inserted] = cvs_.try_emplace(cv);
  if (inserted) it->second.obj = ObjIdLocked(cv);
  return it->second;
}

bool VirtualScheduler::EnabledLocked(const ThreadRec& t) const {
  if (!t.registered || t.exited || !t.parked) return false;
  switch (t.pending.kind) {
    case OpKind::kStart:
    case OpKind::kTryLock:
    case OpKind::kYield:
      return true;
    case OpKind::kLock:
    case OpKind::kReacquire: {
      auto it = mutexes_.find(t.wait_mu);
      return it == mutexes_.end() || it->second.owner == -1;
    }
    case OpKind::kCondWait:
      return false;  // only a notify (or quiesce) can move it
    case OpKind::kExit:
      return false;
  }
  return false;
}

int VirtualScheduler::OnThreadRegister(const char* role, int index) {
  std::unique_lock<std::mutex> lk(ctl_mu_);
  if (quiesced_) return -1;  // too late to join this exploration
  const int workers = opts_.expected_threads / 2;
  const int id =
      std::strcmp(role, "worker") == 0 ? index : workers + index;
  if (id < 0 || id >= opts_.expected_threads) {
    std::fprintf(stderr, "serichk: unexpected thread %s-%d\n", role, index);
    std::fflush(stderr);
    std::_Exit(6);
  }
  ThreadRec& self = *threads_[id];
  self.role = role;
  self.index = index;
  self.registered = true;
  self.parked = true;
  self.pending = PendingOp{OpKind::kStart, -1, nullptr};
  ++registered_;
  if (registered_ == opts_.expected_threads) DispatchLocked(lk);
  while (!self.granted) self.cv.wait(lk);
  self.granted = false;
  self.parked = false;
  running_ = id;
  return id;
}

void VirtualScheduler::OnThreadExit(int thread_id) {
  std::unique_lock<std::mutex> lk(ctl_mu_);
  ThreadRec& self = *threads_[thread_id];
  self.exited = true;
  self.parked = false;
  self.pending = PendingOp{OpKind::kExit, -1, nullptr};
  if (quiesced_) return;
  running_ = -1;
  DispatchLocked(lk);
  // Not parked: the thread is done and unwinds natively from here.
}

void VirtualScheduler::ParkAndDispatch(std::unique_lock<std::mutex>& lk,
                                       ThreadRec& self, PendingOp op) {
  self.pending = op;
  self.parked = true;
  self.granted = false;
  running_ = -1;
  DispatchLocked(lk);
  while (!self.granted) self.cv.wait(lk);
  self.granted = false;
  self.parked = false;
  running_ = self.id;
}

void VirtualScheduler::DispatchLocked(std::unique_lock<std::mutex>& lk) {
  (void)lk;
  if (quiesced_) return;
  std::vector<int> enabled;
  for (const auto& t : threads_) {
    if (EnabledLocked(*t)) enabled.push_back(t->id);
  }
  if (enabled.empty()) {
    if (QuiesceConditionLocked()) {
      DoQuiesceLocked();
      return;
    }
    ReportDeadlockLocked();
  }

  // The thread that just parked is the previous decision's thread iff it
  // is still parked (it ran, then parked again). If it parked enabled,
  // switching away from it is a preemption; kStart is the initial pick,
  // never charged.
  int parker = -1;
  if (!decisions_.empty()) {
    const int prev = decisions_.back().thread;
    const ThreadRec& t = *threads_[prev];
    if (t.parked && !t.granted && !t.exited) parker = prev;
  }
  const bool parker_enabled =
      parker >= 0 && threads_[parker]->pending.kind != OpKind::kStart &&
      EnabledLocked(*threads_[parker]);

  const int step = static_cast<int>(decisions_.size());
  if (step >= opts_.max_steps) ReportLivelockLocked();

  int chosen;
  if (step < static_cast<int>(opts_.trail.size())) {
    chosen = opts_.trail[step];
    bool ok = false;
    for (int t : enabled) ok = ok || t == chosen;
    if (!ok) {
      std::fprintf(stderr,
                   "serichk: replay diverged at step %d (thread %d not "
                   "enabled) — engine behavior is nondeterministic beyond "
                   "the schedule\n",
                   step, chosen);
      DumpScheduleLocked("DIVERGED");
      std::_Exit(6);
    }
  } else {
    if (parker_enabled) {
      chosen = parker;  // run until blocked
    } else {
      // Blocking switch: hand off round-robin (first enabled thread in
      // cyclic id order after the previous runner). The rotation keeps
      // the default schedule fair: lowest-id-wins can spin two workers
      // on a barrier condvar forever while the comm threads that would
      // unblock them never run.
      const int prev = decisions_.empty() ? -1 : decisions_.back().thread;
      chosen = enabled[0];
      for (int t : enabled) {
        if (t > prev) {
          chosen = t;
          break;
        }
      }
    }
    const PendingOp& chosen_op = threads_[chosen]->pending;
    for (int t : enabled) {
      if (t == chosen) continue;
      const PendingOp& alt_op = threads_[t]->pending;
      if (opts_.object_por && chosen_op.obj >= 0 && alt_op.obj >= 0 &&
          chosen_op.obj != alt_op.obj) {
        continue;  // independent next steps: defer to a later choice point
      }
      alternatives_.push_back(
          Alternative{step, t, parker_enabled && t != parker});
    }
  }

  Decision d;
  d.thread = chosen;
  d.op = threads_[chosen]->pending;
  d.preemptions_before = preemptions_;
  decisions_.push_back(d);
  if (parker_enabled && chosen != parker) ++preemptions_;
  Fnv(&trace_hash_, static_cast<uint64_t>(step));
  Fnv(&trace_hash_, static_cast<uint64_t>(chosen));
  Fnv(&trace_hash_, static_cast<uint64_t>(d.op.kind));
  Fnv(&trace_hash_, static_cast<uint64_t>(d.op.obj));
  FnvStr(&trace_hash_, d.op.point);

  ThreadRec& grantee = *threads_[chosen];
  grantee.granted = true;
  grantee.cv.notify_one();
}

bool VirtualScheduler::QuiesceConditionLocked() const {
  // Shutdown shape: every worker-role thread has exited and the comm
  // threads all sit in a condition wait (the transport's inbox cv). The
  // main thread is about to Shutdown() the transport natively, so the
  // waiters must be handed back to the native primitives.
  for (const auto& t : threads_) {
    if (!t->registered) return false;
    if (t->role == "worker" && !t->exited) return false;
    if (!t->exited && t->pending.kind != OpKind::kCondWait) return false;
  }
  return true;
}

void VirtualScheduler::DoQuiesceLocked() {
  quiesced_ = true;
  sy::InstallScheduler(nullptr);
  for (const auto& t : threads_) {
    if (t->exited || !t->parked) continue;
    t->spurious_native = true;
    t->granted = true;
    t->cv.notify_one();
  }
  // cv waiter lists are not scrubbed: the model is dead after this point
  // and no further dispatch consults them.
}

void VirtualScheduler::ReportDeadlockLocked() {
  DumpScheduleLocked("DEADLOCK");
  std::_Exit(4);
}

void VirtualScheduler::ReportLivelockLocked() {
  std::fprintf(stderr, "serichk: livelock suspected — %lld decisions\n",
               static_cast<long long>(decisions_.size()));
  DumpScheduleLocked("LIVELOCK");
  std::_Exit(5);
}

void VirtualScheduler::DumpScheduleLocked(const char* banner) {
  std::fprintf(stderr, "serichk: %s after %zu decisions\n", banner,
               decisions_.size());
  std::fprintf(stderr, "  threads:\n");
  for (const auto& t : threads_) {
    std::fprintf(stderr,
                 "    [%d] %s-%d %s pending=%s obj=%d%s%s\n", t->id,
                 t->role.empty() ? "?" : t->role.c_str(), t->index,
                 t->exited ? "exited" : (t->parked ? "parked" : "running"),
                 OpKindName(t->pending.kind), t->pending.obj,
                 t->pending.point != nullptr ? " at " : "",
                 t->pending.point != nullptr ? t->pending.point : "");
  }
  const size_t tail = decisions_.size() > 40 ? decisions_.size() - 40 : 0;
  std::fprintf(stderr, "  last decisions (step thread op obj):\n");
  for (size_t i = tail; i < decisions_.size(); ++i) {
    const Decision& d = decisions_[i];
    std::fprintf(stderr, "    %zu t%d %s obj=%d%s%s\n", i, d.thread,
                 OpKindName(d.op.kind), d.op.obj,
                 d.op.point != nullptr ? " " : "",
                 d.op.point != nullptr ? d.op.point : "");
  }
  std::fprintf(stderr, "  replay trail: --replay %s\n",
               FormatTrail(decisions_).c_str());
  std::fflush(stderr);
}

std::string VirtualScheduler::FormatTrail(
    const std::vector<Decision>& decisions) {
  std::string out;
  for (size_t i = 0; i < decisions.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += std::to_string(decisions[i].thread);
  }
  return out;
}

void VirtualScheduler::OnMutexLock(void* mu, std::mutex* native) {
  std::unique_lock<std::mutex> lk(ctl_mu_);
  if (quiesced_) {
    lk.unlock();
    native->lock();
    return;
  }
  ThreadRec& self = Self();
  MutexModel& model = MutexFor(mu);
  self.wait_mu = mu;
  self.wait_native = native;
  ParkAndDispatch(lk, self,
                  PendingOp{OpKind::kLock, model.obj, nullptr});
  if (self.spurious_native || quiesced_) {
    lk.unlock();
    native->lock();
    return;
  }
  // Granted: the dispatcher only schedules a kLock when the model mutex
  // is free, so the native lock below cannot contend with a controlled
  // thread (at most briefly with the unregistered main thread).
  MutexFor(mu).owner = self.id;
  lk.unlock();
  native->lock();
}

bool VirtualScheduler::OnMutexTryLock(void* mu, std::mutex* native) {
  std::unique_lock<std::mutex> lk(ctl_mu_);
  if (quiesced_) {
    lk.unlock();
    return native->try_lock();
  }
  ThreadRec& self = Self();
  MutexModel& model = MutexFor(mu);
  ParkAndDispatch(lk, self,
                  PendingOp{OpKind::kTryLock, model.obj, nullptr});
  if (self.spurious_native || quiesced_) {
    lk.unlock();
    return native->try_lock();
  }
  MutexModel& m = MutexFor(mu);
  if (m.owner != -1) return false;  // deterministic failure, no native op
  m.owner = self.id;
  lk.unlock();
  native->lock();
  return true;
}

void VirtualScheduler::OnMutexUnlock(void* mu, std::mutex* native) {
  std::unique_lock<std::mutex> lk(ctl_mu_);
  native->unlock();
  if (quiesced_) return;
  auto it = mutexes_.find(mu);
  if (it != mutexes_.end() && it->second.owner == sy::ScheduledThreadId()) {
    it->second.owner = -1;
  }
  // Releases are not preemption points: whoever was waiting becomes
  // enabled and can be chosen at the releasing thread's next schedule
  // point, which reaches the same states with far fewer branches.
}

void VirtualScheduler::OnCondWait(void* cv, void* mu, std::mutex* native) {
  std::unique_lock<std::mutex> lk(ctl_mu_);
  if (quiesced_) {
    // Model is gone; report a spurious wakeup (mutex still held) and let
    // the caller's predicate loop re-enter the native wait unhooked.
    return;
  }
  ThreadRec& self = Self();
  MutexModel& model = MutexFor(mu);
  if (model.owner == self.id) model.owner = -1;
  native->unlock();
  self.wait_mu = mu;
  self.wait_native = native;
  CvModel& cvm = CvFor(cv);
  cvm.waiters.push_back(self.id);
  ParkAndDispatch(lk, self,
                  PendingOp{OpKind::kCondWait, cvm.obj, nullptr});
  if (self.spurious_native || quiesced_) {
    lk.unlock();
    native->lock();
    return;
  }
  // Granted means a notify moved us to kReacquire and the dispatcher saw
  // the wait mutex free.
  MutexFor(mu).owner = self.id;
  lk.unlock();
  native->lock();
}

void VirtualScheduler::OnCondNotify(void* cv, bool notify_all) {
  std::unique_lock<std::mutex> lk(ctl_mu_);
  if (quiesced_) return;
  CvModel& cvm = CvFor(cv);
  // Like releases, notifies are not preemption points; the moved waiters
  // become eligible at the notifier's next schedule point.
  while (!cvm.waiters.empty()) {
    const int id = cvm.waiters.front();
    cvm.waiters.pop_front();
    ThreadRec& waiter = *threads_[id];
    if (waiter.pending.kind == OpKind::kCondWait) {
      const MutexModel& model = MutexFor(waiter.wait_mu);
      waiter.pending = PendingOp{OpKind::kReacquire, model.obj, nullptr};
    }
    if (!notify_all) break;
  }
}

void VirtualScheduler::OnYield(const char* point) {
  std::unique_lock<std::mutex> lk(ctl_mu_);
  if (quiesced_) return;
  ThreadRec& self = Self();
  ParkAndDispatch(lk, self, PendingOp{OpKind::kYield, -1, point});
}

}  // namespace check
}  // namespace serigraph
