#ifndef SERIGRAPH_COMMON_BITMAP_H_
#define SERIGRAPH_COMMON_BITMAP_H_

// Word-packed bitmaps for frontier/eligibility tracking (PR 9).
//
// The engine used to keep per-vertex liveness in a byte array
// (`halted_[v]`) plus a per-partition atomic counter, which meant every
// barrier re-scanned O(V) bytes and every sparse superstep probed every
// vertex.  A Bitmap packs 64 vertices per cache line word, so
//   * "how many are active" is a popcount sweep (satellite: the
//     ActiveVertexCount / checkpoint-restore O(V) rescans),
//   * sparse supersteps iterate set bits and skip empty words entirely,
//   * concurrent workers touching disjoint vertices mostly touch
//     disjoint words, and when they do collide a relaxed RMW on the
//     word is enough (each bit is owned by exactly one vertex, and the
//     superstep barrier publishes everything before readers look).
//
// Two flavors of mutation are provided:
//   Set/Clear        - atomic RMW, safe for concurrent writers.
//   SetSerial/...    - plain read-modify-write for single-threaded
//                      phases (init, checkpoint restore, barrier).
// Readers in concurrent phases use Test (relaxed load); cross-phase
// visibility is provided by the engine's superstep barrier, never by
// the bitmap itself.  No mutexes anywhere: the whole point is that the
// frontier is lock-free (see docs/LOCK_ORDER.md, "Lock-free frontier
// bitmaps").

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace serigraph {

class Bitmap {
 public:
  Bitmap() = default;
  explicit Bitmap(size_t bits) { Reset(bits); }

  // Movable so containers of owners can grow; never moved while workers
  // are concurrently mutating (phase-ownership, like MessageStore).
  Bitmap(Bitmap&& other) noexcept { *this = std::move(other); }
  Bitmap& operator=(Bitmap&& other) noexcept {
    if (this != &other) {
      bits_ = other.bits_;
      words_ = std::move(other.words_);
      other.bits_ = 0;
    }
    return *this;
  }

  /// (Re)sizes to `bits` bits, all cleared. Single-threaded.
  void Reset(size_t bits) {
    bits_ = bits;
    words_.assign(WordCount(), Word{0});
    // vector<atomic> value-initializes each word to 0; nothing else to do.
  }

  /// Clears every bit without reallocating. Single-threaded.
  void ClearAll() {
    for (Word& w : words_)
      w.v.store(0, std::memory_order_relaxed);  // mo: single-threaded phase;
    // the superstep barrier publishes before any concurrent reader runs.
  }

  /// Sets every valid bit (trailing bits of the last word stay 0 so
  /// popcount stays exact). Single-threaded.
  void SetAll() {
    if (bits_ == 0) return;
    for (Word& w : words_)
      w.v.store(~uint64_t{0}, std::memory_order_relaxed);  // mo: see ClearAll
    const size_t tail = bits_ & 63;
    if (tail != 0) {
      words_.back().v.store((uint64_t{1} << tail) - 1,
                            std::memory_order_relaxed);  // mo: see ClearAll
    }
  }

  size_t size() const { return bits_; }

  bool Test(size_t i) const {
    // mo: relaxed load — each bit has a single owning vertex; writes from
    // other phases are published by the engine's superstep barrier.
    return (words_[i >> 6].v.load(std::memory_order_relaxed) >>
            (i & 63)) & 1;
  }

  /// Atomically sets bit i; returns true if this call changed it.
  bool Set(size_t i) {
    const uint64_t mask = uint64_t{1} << (i & 63);
    // mo: relaxed RMW — only the bit's presence matters, and any payload
    // the bit guards is published by the shard lock / superstep barrier,
    // not by this word.
    return (words_[i >> 6].v.fetch_or(mask, std::memory_order_relaxed) &
            mask) == 0;
  }

  /// Atomically clears bit i; returns true if this call changed it.
  bool Clear(size_t i) {
    const uint64_t mask = uint64_t{1} << (i & 63);
    // mo: relaxed RMW — see Set().
    return (words_[i >> 6].v.fetch_and(~mask, std::memory_order_relaxed) &
            mask) != 0;
  }

  /// Plain (non-RMW) variants for single-threaded phases: cheaper than the
  /// atomic forms and make the phase structure explicit at call sites.
  void SetSerial(size_t i) {
    Word& w = words_[i >> 6];
    w.v.store(w.v.load(std::memory_order_relaxed)  // mo: single-threaded
                  | (uint64_t{1} << (i & 63)),
              std::memory_order_relaxed);  // mo: single-threaded phase
  }
  void ClearSerial(size_t i) {
    Word& w = words_[i >> 6];
    w.v.store(w.v.load(std::memory_order_relaxed)  // mo: single-threaded
                  & ~(uint64_t{1} << (i & 63)),
              std::memory_order_relaxed);  // mo: single-threaded phase
  }

  /// Number of set bits. O(words), not O(bits): this is the popcount that
  /// replaces the engine's per-vertex active rescans.
  size_t Popcount() const {
    size_t n = 0;
    for (const Word& w : words_)
      n += static_cast<size_t>(std::popcount(
          w.v.load(std::memory_order_relaxed)));  // mo: see Test()
    return n;
  }

  bool AnySet() const {
    for (const Word& w : words_)
      if (w.v.load(std::memory_order_relaxed) != 0) return true;  // mo: Test
    return false;
  }

  uint64_t word(size_t wi) const {
    return words_[wi].v.load(std::memory_order_relaxed);  // mo: see Test()
  }
  size_t WordCount() const { return (bits_ + 63) >> 6; }

  /// Calls fn(i) for every set bit in ascending order. Skips clear words
  /// in one load each — the sparse-superstep fast path.
  template <typename Fn>
  void ForEachSetBit(Fn&& fn) const {
    const size_t nw = words_.size();
    for (size_t wi = 0; wi < nw; ++wi) {
      uint64_t w = words_[wi].v.load(std::memory_order_relaxed);  // mo: Test
      while (w != 0) {
        const int b = std::countr_zero(w);
        fn((wi << 6) + static_cast<size_t>(b));
        w &= w - 1;
      }
    }
  }

  /// Popcount of the union with `other` (same size) without materializing
  /// it — "active or has pending messages" in one sweep.
  size_t PopcountUnion(const Bitmap& other) const {
    size_t n = 0;
    const size_t nw = words_.size();
    for (size_t wi = 0; wi < nw; ++wi) {
      n += static_cast<size_t>(std::popcount(
          words_[wi].v.load(std::memory_order_relaxed) |  // mo: see Test()
          other.words_[wi].v.load(std::memory_order_relaxed)));  // mo: Test
    }
    return n;
  }

  /// ForEachSetBit over the union with `other` (same size).
  template <typename Fn>
  void ForEachSetBitUnion(const Bitmap& other, Fn&& fn) const {
    const size_t nw = words_.size();
    for (size_t wi = 0; wi < nw; ++wi) {
      uint64_t w =
          words_[wi].v.load(std::memory_order_relaxed) |  // mo: see Test()
          other.words_[wi].v.load(std::memory_order_relaxed);  // mo: Test
      while (w != 0) {
        const int b = std::countr_zero(w);
        fn((wi << 6) + static_cast<size_t>(b));
        w &= w - 1;
      }
    }
  }

 private:
  // Wrapped so the vector is copy-free resizable (atomics are neither
  // copyable nor movable; Reset() reconstructs instead).
  struct Word {
    std::atomic<uint64_t> v{0};
    Word() = default;
    explicit Word(uint64_t x) : v(x) {}
    Word(const Word& o)
        : v(o.v.load(std::memory_order_relaxed)) {}  // mo: only during
    // single-threaded Reset()/vector growth; never racing a writer.
    Word& operator=(const Word& o) {
      v.store(o.v.load(std::memory_order_relaxed),  // mo: see copy ctor
              std::memory_order_relaxed);  // mo: see copy ctor
      return *this;
    }
  };

  size_t bits_ = 0;
  std::vector<Word> words_;
};

/// A frontier is the pair of bitmaps the engine consults for eligibility:
/// `active` (vertex did not vote to halt) and `pending` (vertex has
/// undelivered messages).  A vertex is eligible iff active|pending.
/// Density accounting (set bits per thousand vertices) drives the
/// per-superstep push/pull switch.
struct Frontier {
  Bitmap active;
  Bitmap pending;

  void Reset(size_t bits) {
    active.Reset(bits);
    pending.Reset(bits);
  }

  size_t EligibleCount() const { return active.PopcountUnion(pending); }

  /// Set bits per 1000 of `total_bits` (caller supplies the global vertex
  /// count so per-partition frontiers can report global density).
  static int64_t DensityMilli(size_t set_bits, size_t total_bits) {
    if (total_bits == 0) return 0;
    return static_cast<int64_t>((set_bits * 1000) / total_bits);
  }
};

}  // namespace serigraph

#endif  // SERIGRAPH_COMMON_BITMAP_H_
