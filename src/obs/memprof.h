#ifndef SERIGRAPH_OBS_MEMPROF_H_
#define SERIGRAPH_OBS_MEMPROF_H_

#include <cstdint>
#include <vector>

namespace serigraph {

/// Memory observability (docs/PROFILING.md): process RSS from
/// /proc/self/status with a getrusage fallback, plus the per-superstep
/// sample record the engine fills when perf_counters is on.

struct MemoryStatus {
  /// Current resident set (VmRSS), in KiB. 0 when unreadable.
  int64_t rss_kb = 0;
  /// Kernel-tracked peak resident set (VmHWM), in KiB. May be 0 on
  /// platforms without /proc; the sampler's own peak covers that case.
  int64_t peak_rss_kb = 0;
};

/// One read of the process memory status. Never fails; unreadable
/// sources report zeros.
MemoryStatus ReadMemoryStatus();

/// Tracks a monotonic peak across repeated samples, so the reported
/// peak never decreases even where VmHWM is unavailable and the
/// current RSS fluctuates.
class MemorySampler {
 public:
  /// Reads the current status and folds it into the running peak.
  MemoryStatus Sample() {
    MemoryStatus s = ReadMemoryStatus();
    if (s.rss_kb > peak_rss_kb_) peak_rss_kb_ = s.rss_kb;
    if (s.peak_rss_kb > peak_rss_kb_) peak_rss_kb_ = s.peak_rss_kb;
    s.peak_rss_kb = peak_rss_kb_;
    return s;
  }

  int64_t peak_rss_kb() const { return peak_rss_kb_; }

 private:
  int64_t peak_rss_kb_ = 0;
};

/// Per-superstep memory/arena sample, taken in the engine's serial
/// section (between supersteps) when EngineOptions::perf_counters is
/// set. Arena fields aggregate MessageStore::Stats() across stores.
struct MemSample {
  int superstep = 0;
  int64_t rss_kb = 0;
  int64_t peak_rss_kb = 0;
  /// Allocated arena chunks across all message-store shards.
  int64_t arena_chunks = 0;
  /// Arena node slots currently holding a live message.
  int64_t arena_nodes_in_use = 0;
  /// Total node slots backed by allocated chunks.
  int64_t arena_node_capacity = 0;
  /// Longest per-vertex message chain seen across shards.
  int64_t max_chain_len = 0;
};

}  // namespace serigraph

#endif  // SERIGRAPH_OBS_MEMPROF_H_
