# Empty dependencies file for serializability_audit.
# This may be replaced when dependencies are built.
