#!/usr/bin/env python3
"""Locking-protocol linter for serigraph.

A regex/AST hybrid: comments and strings are stripped with a real
scanner, lock scopes are tracked through brace depth, and the rules are
driven by the machine-readable blocks in docs/LOCK_ORDER.md and the
metric table in docs/METRICS.md. It complements Clang's -Wthread-safety
(SERIGRAPH_TSA=ON) with the repo-specific invariants the compiler cannot
express:

  R1 naked-mutex            no std:: lock primitives outside common/mutex.h
  R2 acquire-without-release every manual X.Lock() has a matching
                             X.Unlock() (per file, normalized indexes)
  R3 lock-order             syntactic lock nestings must follow the DAG
                             declared in docs/LOCK_ORDER.md
  R4 blocking-under-leaf    no blocking call inside a leaf-tier critical
                             section (tracer/beacon/metrics/logging)
  R5 metric-name            Get{Counter,Gauge,Histogram} literals and
                             SG_OBS_SERVED_METRIC("...") exposition names
                             in src/ must match docs/METRICS.md exactly

Escape hatch: append `// lint:allow <rule-tag>` to the offending line.
Exit status is nonzero iff any diagnostic was emitted.
"""

import argparse
import os
import re
import sys

RULE_TAGS = {
    "naked-mutex",
    "acquire-without-release",
    "lock-order",
    "blocking-under-leaf",
    "metric-name",
}

NAKED_RE = re.compile(
    r"std::(?:recursive_|shared_|timed_)*mutex\b"
    r"|std::condition_variable(?:_any)?\b"
    r"|std::(?:lock_guard|unique_lock|scoped_lock|shared_lock)\b"
)

MUTEXLOCK_RE = re.compile(
    r"\b(?:sy::)?MutexLock\s+\w+\s*\(\s*&\s*(.+?)\s*\)\s*;"
)
MANUAL_LOCK_RE = re.compile(r"([\w\.\->\[\]\(\)\*&]+?)(?:\.|->)Lock\s*\(\s*\)")
MANUAL_UNLOCK_RE = re.compile(
    r"([\w\.\->\[\]\(\)\*&]+?)(?:\.|->)Unlock\s*\(\s*\)")

BLOCKING_RE = re.compile(
    r"\.Wait(?:For|Until)?\s*\(|->Wait(?:For|Until)?\s*\("
    r"|\bReceive\s*\(|\bsleep_for\s*\(|\.join\s*\(|\bAwait\s*\("
)

METRIC_CALL_RE = re.compile(r"Get(?:Counter|Gauge|Histogram)\(\s*\"([^\"]+)\"")

# Names synthesized for the /metrics exposition (no MetricRegistry entry)
# wear this marker macro (obs/report.h) so R5 still covers them in both
# directions: served-but-undocumented AND documented-but-unserved fail.
SERVED_METRIC_RE = re.compile(r"SG_OBS_SERVED_METRIC\(\s*\"([^\"]+)\"")

ALLOW_RE = re.compile(r"//\s*lint:allow\s+([\w\-]+)")


def strip_comments_and_strings(text):
    """Blanks comments and string/char literals, preserving newlines and
    columns, and returns (code, allow_map) where allow_map maps a line
    number to the set of lint:allow tags found in its comments."""
    out = []
    allows = {}
    i, n = 0, len(text)
    line = 1
    state = "code"  # code | line_comment | block_comment | string | char
    comment_start = 0
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                comment_start = i
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append('"')
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append("'")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                m = ALLOW_RE.search(text[comment_start:i])
                if m:
                    allows.setdefault(line, set()).add(m.group(1))
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif state == "string":
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "code"
                out.append('"')
            else:
                out.append(" ")
        elif state == "char":
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == "'":
                state = "code"
                out.append("'")
            else:
                out.append(" ")
        if c == "\n":
            line += 1
        i += 1
    return "".join(out), allows


def normalize_expr(expr):
    """Collapses index/arg subexpressions so `locks_[u]` and
    `locks_[*it]` (or `shards_[w]`) compare equal."""
    expr = re.sub(r"\[[^\]]*\]", "[]", expr)
    expr = re.sub(r"\s+", "", expr)
    return expr


class Hierarchy:
    def __init__(self, edges, tiers, leaves):
        self.tiers = tiers  # list of (name, path_substr, compiled_regex)
        self.leaves = leaves
        # Transitive closure of the declared DAG.
        allowed = set(edges)
        changed = True
        while changed:
            changed = False
            for a, b in list(allowed):
                for c, d in list(allowed):
                    if b == c and (a, d) not in allowed:
                        allowed.add((a, d))
                        changed = True
        self.allowed = allowed

    def classify(self, path, expr):
        for name, path_sub, rx in self.tiers:
            if path_sub and path_sub not in path:
                continue
            if rx.search(expr):
                return name
        return None


def parse_lock_order(doc_path):
    try:
        text = open(doc_path, encoding="utf-8").read()
    except OSError as e:
        print(f"lint_protocol: cannot read {doc_path}: {e}", file=sys.stderr)
        sys.exit(2)

    def block(tag):
        m = re.search(r"```" + tag + r"\n(.*?)```", text, re.DOTALL)
        return m.group(1).splitlines() if m else []

    edges = set()
    for ln in block("lock-order"):
        ln = ln.strip()
        if not ln or ln.startswith("#"):
            continue
        a, _, b = ln.partition("->")
        edges.add((a.strip(), b.strip()))
    tiers = []
    for ln in block("lock-tiers"):
        ln = ln.strip()
        if not ln or ln.startswith("#"):
            continue
        name, _, rest = ln.partition(":")
        path_sub, _, rx = rest.partition("::")
        tiers.append((name.strip(), path_sub.strip(), re.compile(rx.strip())))
    leaves = {ln.strip() for ln in block("lock-leaves") if ln.strip()}
    return Hierarchy(edges, tiers, leaves)


def parse_metrics_doc(doc_path):
    names = set()
    try:
        for ln in open(doc_path, encoding="utf-8"):
            m = re.match(r"\|\s*`([^`]+)`\s*\|", ln)
            if m:
                names.add(m.group(1))
    except OSError as e:
        print(f"lint_protocol: cannot read {doc_path}: {e}", file=sys.stderr)
        sys.exit(2)
    return names


class Linter:
    def __init__(self, hierarchy, metric_names, repo_root):
        self.h = hierarchy
        self.metric_names = metric_names
        self.repo_root = repo_root
        self.errors = []
        self.metrics_used = {}  # name -> first (path, line)

    def error(self, path, line, rule, msg):
        rel = os.path.relpath(path, self.repo_root)
        self.errors.append(f"{rel}:{line}: [{rule}] {msg}")

    def lint_file(self, path):
        rel = os.path.relpath(path, self.repo_root).replace(os.sep, "/")
        raw = open(path, encoding="utf-8").read()
        code, allows = strip_comments_and_strings(raw)
        lines = code.split("\n")

        def allowed(line_no, tag):
            return tag in allows.get(line_no, set())

        in_src = rel.startswith("src/")
        is_wrapper = rel in (
            "src/common/mutex.h",
            "src/common/thread_annotations.h",
        )

        # R5: metric literals (src/ only; scan the raw text so the name
        # inside the string literal survives).
        if in_src:
            for idx, raw_ln in enumerate(raw.split("\n"), start=1):
                for m in METRIC_CALL_RE.finditer(raw_ln):
                    name = m.group(1)
                    self.metrics_used.setdefault(name, (path, idx))
                for m in SERVED_METRIC_RE.finditer(raw_ln):
                    name = m.group(1)
                    self.metrics_used.setdefault(name, (path, idx))

        # R1: naked std lock primitives.
        if not is_wrapper:
            for idx, ln in enumerate(lines, start=1):
                m = NAKED_RE.search(ln)
                if m and not allowed(idx, "naked-mutex"):
                    self.error(
                        path, idx, "naked-mutex",
                        f"'{m.group(0)}' is forbidden outside "
                        "src/common/mutex.h; use sy::Mutex / sy::MutexLock "
                        "/ sy::CondVar",
                    )

        # R2: per-file Lock/Unlock balance (normalized expressions).
        locks, unlocks = {}, {}
        for idx, ln in enumerate(lines, start=1):
            for m in MANUAL_LOCK_RE.finditer(ln):
                expr = normalize_expr(m.group(1))
                if expr.endswith(("mu", "mu_", "]")) or "mutex" in expr.lower():
                    if not allowed(idx, "acquire-without-release"):
                        locks.setdefault(expr, idx)
            for m in MANUAL_UNLOCK_RE.finditer(ln):
                unlocks.setdefault(normalize_expr(m.group(1)), idx)
        for expr, idx in locks.items():
            if expr not in unlocks:
                self.error(
                    path, idx, "acquire-without-release",
                    f"manual {expr}.Lock() has no matching Unlock() in this "
                    "file; use sy::MutexLock or annotate the protocol with "
                    "SY_ACQUIRE/SY_RELEASE and `// lint:allow "
                    "acquire-without-release`",
                )

        # R3 + R4: brace-depth lock-scope tracking.
        depth = 0
        held = []  # (norm_expr, tier, depth_at_acquire, line)
        for idx, ln in enumerate(lines, start=1):
            # Acquisitions on this line (MutexLock decls + manual Locks).
            acquired = [m.group(1) for m in MUTEXLOCK_RE.finditer(ln)]
            acquired += [
                m.group(1)
                for m in MANUAL_LOCK_RE.finditer(ln)
                if normalize_expr(m.group(1)).endswith(("mu", "mu_", "]"))
            ]
            for expr_raw in acquired:
                expr = normalize_expr(expr_raw)
                tier = self.h.classify(rel, expr_raw)
                if held and not allowed(idx, "lock-order"):
                    holder_expr, holder_tier, _, holder_line = held[-1]
                    if holder_tier is None or tier is None:
                        unknown = expr_raw if tier is None else holder_expr
                        self.error(
                            path, idx, "lock-order",
                            f"nested acquisition of '{expr_raw}' while "
                            f"holding '{holder_expr}' (line {holder_line}), "
                            f"but '{unknown}' has no tier in "
                            "docs/LOCK_ORDER.md; add it to the lock-tiers "
                            "block",
                        )
                    elif (holder_tier, tier) not in self.h.allowed:
                        self.error(
                            path, idx, "lock-order",
                            f"lock-order violation: acquiring tier '{tier}' "
                            f"('{expr_raw}') while holding tier "
                            f"'{holder_tier}' ('{holder_expr}', line "
                            f"{holder_line}); no '{holder_tier} -> {tier}' "
                            "edge in docs/LOCK_ORDER.md",
                        )
                held.append((expr, tier, depth, idx))

            # R4: blocking call while any held lock is a leaf tier.
            if held and BLOCKING_RE.search(ln) and not acquired:
                for expr, tier, _, lline in held:
                    if tier in self.h.leaves and not allowed(
                            idx, "blocking-under-leaf"):
                        m = BLOCKING_RE.search(ln)
                        self.error(
                            path, idx, "blocking-under-leaf",
                            f"blocking call '{m.group(0).strip()}...' while "
                            f"holding leaf-tier '{tier}' lock '{expr}' "
                            f"(acquired line {lline}); leaf locks must not "
                            "be held across waits/receives/joins",
                        )

            # Manual unlocks release the matching held entry.
            for m in MANUAL_UNLOCK_RE.finditer(ln):
                expr = normalize_expr(m.group(1))
                for k in range(len(held) - 1, -1, -1):
                    if held[k][0] == expr:
                        held.pop(k)
                        break

            # Depth bookkeeping; scope-bound locks die with their scope.
            for c in ln:
                if c == "{":
                    depth += 1
                elif c == "}":
                    depth -= 1
                    held = [h for h in held if h[2] < depth]
            if depth <= 0:
                held = []

    def finish_metrics(self):
        for name, (path, line) in sorted(self.metrics_used.items()):
            if name not in self.metric_names:
                self.error(
                    path, line, "metric-name",
                    f"metric '{name}' is not registered in docs/METRICS.md",
                )
        used = set(self.metrics_used)
        for name in sorted(self.metric_names - used):
            self.errors.append(
                f"docs/METRICS.md:1: [metric-name] metric '{name}' is "
                "registered but never used in src/",
            )


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("paths", nargs="*", default=None,
                    help="files or directories to lint (default: src/)")
    ap.add_argument("--root", default=None,
                    help="repo root (default: parent of this script)")
    ap.add_argument("--no-metrics", action="store_true",
                    help="skip the metric-registry cross-check (R5)")
    args = ap.parse_args()

    root = os.path.abspath(
        args.root or os.path.join(os.path.dirname(__file__), os.pardir))
    paths = args.paths or [os.path.join(root, "src")]

    hierarchy = parse_lock_order(os.path.join(root, "docs", "LOCK_ORDER.md"))
    metric_names = parse_metrics_doc(os.path.join(root, "docs", "METRICS.md"))

    files = []
    for p in paths:
        p = os.path.abspath(p)
        if os.path.isdir(p):
            for dirpath, _, names in sorted(os.walk(p)):
                for n in sorted(names):
                    if n.endswith((".h", ".cc", ".cpp", ".hpp")):
                        files.append(os.path.join(dirpath, n))
        else:
            files.append(p)

    linter = Linter(hierarchy, metric_names, root)
    for f in files:
        linter.lint_file(f)
    if not args.no_metrics and any(
            os.path.relpath(f, root).startswith("src") for f in files):
        linter.finish_metrics()

    for e in linter.errors:
        print(e)
    if linter.errors:
        print(f"lint_protocol: {len(linter.errors)} error(s)",
              file=sys.stderr)
        return 1
    print(f"lint_protocol: OK ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
