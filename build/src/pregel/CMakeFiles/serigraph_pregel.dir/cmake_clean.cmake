file(REMOVE_RECURSE
  "CMakeFiles/serigraph_pregel.dir/checkpoint.cc.o"
  "CMakeFiles/serigraph_pregel.dir/checkpoint.cc.o.d"
  "CMakeFiles/serigraph_pregel.dir/model.cc.o"
  "CMakeFiles/serigraph_pregel.dir/model.cc.o.d"
  "libserigraph_pregel.a"
  "libserigraph_pregel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serigraph_pregel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
