#ifndef SERIGRAPH_COMMON_SERIALIZE_H_
#define SERIGRAPH_COMMON_SERIALIZE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/status.h"

namespace serigraph {

/// Append-only binary encoder. Giraph keeps vertex/edge/message objects in
/// serialized form to avoid GC pressure; SeriGraph mirrors that design for
/// wire messages and checkpoints so that per-message byte counts (reported
/// by the transport) reflect realistic encoded sizes.
class BufferWriter {
 public:
  BufferWriter() = default;

  void WriteU8(uint8_t v) { buf_.push_back(v); }
  void WriteU32(uint32_t v) { AppendRaw(&v, sizeof(v)); }
  void WriteU64(uint64_t v) { AppendRaw(&v, sizeof(v)); }
  void WriteI64(int64_t v) { AppendRaw(&v, sizeof(v)); }
  void WriteDouble(double v) { AppendRaw(&v, sizeof(v)); }

  /// LEB128 variable-length unsigned integer (1-10 bytes).
  void WriteVarint(uint64_t v) {
    while (v >= 0x80) {
      buf_.push_back(static_cast<uint8_t>(v) | 0x80);
      v >>= 7;
    }
    buf_.push_back(static_cast<uint8_t>(v));
  }

  /// Zig-zag signed varint.
  void WriteSignedVarint(int64_t v) {
    WriteVarint((static_cast<uint64_t>(v) << 1) ^
                static_cast<uint64_t>(v >> 63));
  }

  /// Length-prefixed byte string.
  void WriteString(const std::string& s) {
    WriteVarint(s.size());
    AppendRaw(s.data(), s.size());
  }

  void AppendRaw(const void* data, size_t n) {
    const uint8_t* p = static_cast<const uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }

  size_t size() const { return buf_.size(); }
  const std::vector<uint8_t>& data() const { return buf_; }
  std::vector<uint8_t> Release() { return std::move(buf_); }
  void Clear() { buf_.clear(); }

  /// Takes ownership of `buf` and continues appending after its current
  /// contents — lets a flusher encode more records onto an already-built
  /// payload without copying it.
  void Adopt(std::vector<uint8_t> buf) { buf_ = std::move(buf); }

 private:
  std::vector<uint8_t> buf_;
};

/// Sequential binary decoder over a borrowed byte range. All Read* methods
/// return false (and leave the output untouched) on underflow; callers turn
/// that into Status::IoError.
class BufferReader {
 public:
  BufferReader(const uint8_t* data, size_t size)
      : data_(data), size_(size), pos_(0) {}
  explicit BufferReader(const std::vector<uint8_t>& buf)
      : BufferReader(buf.data(), buf.size()) {}

  bool ReadU8(uint8_t* out) { return ReadRaw(out, sizeof(*out)); }
  bool ReadU32(uint32_t* out) { return ReadRaw(out, sizeof(*out)); }
  bool ReadU64(uint64_t* out) { return ReadRaw(out, sizeof(*out)); }
  bool ReadI64(int64_t* out) { return ReadRaw(out, sizeof(*out)); }
  bool ReadDouble(double* out) { return ReadRaw(out, sizeof(*out)); }

  bool ReadVarint(uint64_t* out) {
    uint64_t result = 0;
    int shift = 0;
    while (pos_ < size_ && shift < 64) {
      uint8_t byte = data_[pos_++];
      result |= static_cast<uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) {
        *out = result;
        return true;
      }
      shift += 7;
    }
    return false;
  }

  bool ReadSignedVarint(int64_t* out) {
    uint64_t raw;
    if (!ReadVarint(&raw)) return false;
    *out = static_cast<int64_t>((raw >> 1) ^ (~(raw & 1) + 1));
    return true;
  }

  bool ReadString(std::string* out) {
    uint64_t n;
    if (!ReadVarint(&n) || n > Remaining()) return false;
    out->assign(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return true;
  }

  bool ReadRaw(void* out, size_t n) {
    if (n > Remaining()) return false;
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return true;
  }

  size_t Remaining() const { return size_ - pos_; }
  size_t position() const { return pos_; }
  bool AtEnd() const { return pos_ == size_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_;
};

}  // namespace serigraph

#endif  // SERIGRAPH_COMMON_SERIALIZE_H_
