#ifndef SERIGRAPH_GRAPH_IO_H_
#define SERIGRAPH_GRAPH_IO_H_

#include <string>

#include "common/status.h"
#include "graph/types.h"

namespace serigraph {

/// Loads a whitespace-separated "src dst" edge list. Lines starting with
/// '#' or '%' are comments. Vertex ids may be sparse; they are used as-is
/// and num_vertices is max id + 1. This matches the SNAP text format the
/// paper's datasets are distributed in.
StatusOr<EdgeList> LoadEdgeListText(const std::string& path);

/// Writes an edge list in the same format (one "src dst" pair per line).
Status SaveEdgeListText(const EdgeList& edge_list, const std::string& path);

}  // namespace serigraph

#endif  // SERIGRAPH_GRAPH_IO_H_
