#ifndef SERIGRAPH_BENCH_FIG6_COMMON_H_
#define SERIGRAPH_BENCH_FIG6_COMMON_H_

// Shared driver for the paper's Figure 6 reproduction benches: one
// algorithm, the dataset stand-ins x {16, 32} workers x the three
// technique/system combinations evaluated in Section 7:
//   * dual-layer token passing  (Giraph async)
//   * partition-based locking   (Giraph async)   <- the contribution
//   * vertex-based locking      (GraphLab async stand-in)
// Computation time is the paper's metric (superstep loop only). Every
// run is validated by the caller-supplied checker.
//
// Every grid binary also speaks the shared bench flags (bench/harness.h):
//   --json=FILE       write a schema-versioned BENCH.json of all cells
//   --reps=N          repeat each cell N times, report the median
//   --perf-counters   per-superstep HW counters + RSS (docs/PROFILING.md)
//   --trace-out=FILE  Chrome trace-event JSON of the last runs

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <functional>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "harness.h"
#include "harness/datasets.h"
#include "harness/runner.h"
#include "harness/table.h"
#include "obs/introspect.h"
#include "obs/timeline.h"
#include "obs/trace.h"

namespace serigraph {

struct Fig6Cell {
  std::string dataset;
  int workers = 0;
  SyncMode sync = SyncMode::kNone;
  RunStats stats;
  bool valid = false;
  /// computation_seconds of every repetition (>= 1 entries).
  std::vector<double> rep_seconds;
};

/// Stable BENCH.json cell-name prefix for a grid title: lowercased, with
/// non-alphanumeric runs collapsed to '_' ("Figure 6(b): PageRank" ->
/// "figure_6_b_pagerank"). The join key for bench_compare.py.
inline std::string Fig6Slug(const std::string& title) {
  std::string slug;
  bool pending_sep = false;
  for (char c : title) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      if (pending_sep && !slug.empty()) slug += '_';
      pending_sep = false;
      slug += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else {
      pending_sep = true;
    }
  }
  return slug;
}

/// Runs `run(graph, config)` over the full evaluation grid and prints the
/// figure's table. `run` returns (stats, valid). Returns a process exit
/// code; pass main()'s argc/argv so the shared bench flags work.
inline int RunFig6Grid(
    int argc, char** argv, const std::string& title,
    const std::string& paper_expectation, bool undirected,
    const std::function<std::pair<RunStats, bool>(const Graph&,
                                                  const RunConfig&)>& run) {
  BenchArgs args = ParseBenchArgs(argc, argv);
  // Grid binaries take only the shared flags; anything left over (beyond
  // argv[0] and the trailing nullptr) is a typo worth failing on.
  for (size_t i = 1; i + 1 < args.passthrough.size(); ++i) {
    std::fprintf(stderr, "unknown argument: %s\n", args.passthrough[i]);
    args.help = true;
  }
  if (args.help) {
    std::printf(
        "%s\n"
        "  --json=FILE       write BENCH.json (schema v%d) of all cells\n"
        "  --reps=N          repeat each cell N times, report the median\n"
        "  --perf-counters   per-superstep perf counters + RSS\n"
        "  --trace-out=FILE  Chrome trace-event JSON\n",
        title.c_str(), BenchReport::kSchemaVersion);
    return args.help && argc > 1 ? 2 : 0;
  }
  if (!args.trace_out.empty()) Tracer::Get().Enable();
  const int reps = std::max(1, args.reps);
  const std::string slug = Fig6Slug(title);
  BenchReport report;

  PrintHeader(std::cout, title);
  std::printf("paper expectation: %s\n", paper_expectation.c_str());
  std::printf("(synthetic stand-ins; absolute times are not comparable to "
              "the paper's EC2 cluster,\n shapes and ratios are — see "
              "EXPERIMENTS.md)\n\n");

  const SyncMode kModes[] = {SyncMode::kDualLayerToken,
                             SyncMode::kPartitionLocking,
                             SyncMode::kVertexLocking};
  TablePrinter table({"dataset", "workers", "technique", "time", "supersteps",
                      "ctrl msgs", "wire MB", "valid", "vs partition",
                      "fork/compute"});
  std::vector<SuperstepSample> last_timeline;
  std::string last_timeline_label;
  for (const DatasetSpec& spec : StandInSpecs()) {
    if (spec.name == "AR'") continue;  // like the paper's main text
    Graph graph =
        undirected ? MakeUndirectedDataset(spec) : MakeDataset(spec);
    for (int workers : {16, 32}) {
      double partition_time = 0.0;
      std::vector<Fig6Cell> cells;
      std::vector<ContentionEntry> last_contention;
      std::string last_contention_kind;
      for (SyncMode sync : kModes) {
        Fig6Cell cell;
        cell.dataset = spec.name;
        cell.workers = workers;
        cell.sync = sync;
        cell.valid = true;
        for (int rep = 0; rep < reps; ++rep) {
          RunConfig config;
          config.sync_mode = sync;
          config.num_workers = workers;
          config.network = BenchNetwork();
          // Introspection on for every cell (uniform overhead: enabling
          // it only for some techniques would bias the comparison).
          config.introspect = true;
          config.perf_counters = args.perf_counters;
          auto [stats, valid] = run(graph, config);
          cell.rep_seconds.push_back(stats.computation_seconds);
          cell.stats = std::move(stats);
          cell.valid = cell.valid && valid;
        }
        if (sync == SyncMode::kPartitionLocking) {
          partition_time = MedianOf(cell.rep_seconds);
          last_timeline = cell.stats.timeline;
          last_timeline_label = spec.name + ", " +
                                std::to_string(workers) + " workers, " +
                                SyncModeName(sync);
          last_contention = cell.stats.contention;
          last_contention_kind = cell.stats.resource_kind;
        }
        cells.push_back(std::move(cell));
      }
      // Contention top-K for the contribution technique: which resources
      // the fork waits concentrated on in this configuration.
      if (!last_contention.empty()) {
        std::printf("hottest %ss (%s, %d workers, %s):",
                    last_contention_kind.c_str(), spec.name.c_str(), workers,
                    SyncModeName(SyncMode::kPartitionLocking));
        int shown = 0;
        for (const auto& e : last_contention) {
          if (++shown > 5) break;
          std::printf("  %lld(%lldus/%lld)", (long long)e.resource,
                      (long long)e.total_wait_us, (long long)e.count);
        }
        std::printf("\n");
      }
      for (const Fig6Cell& cell : cells) {
        const double median_seconds = MedianOf(cell.rep_seconds);
        // Where did the time go? Fork-wait share approximates the
        // synchronization overhead of the locking techniques (Section 7.3).
        const int64_t compute_us =
            Total(cell.stats.timeline, &SuperstepSample::compute_us);
        const int64_t fork_us =
            Total(cell.stats.timeline, &SuperstepSample::fork_wait_us);
        char fork_share[32];
        std::snprintf(fork_share, sizeof(fork_share), "%.1f%%",
                      compute_us > 0
                          ? 100.0 * static_cast<double>(fork_us) /
                                static_cast<double>(compute_us)
                          : 0.0);
        table.AddRow(
            {cell.dataset, std::to_string(cell.workers),
             SyncModeName(cell.sync), TablePrinter::Seconds(median_seconds),
             std::to_string(cell.stats.supersteps),
             TablePrinter::Count(cell.stats.Metric("net.control_messages")),
             std::to_string(cell.stats.Metric("net.wire_bytes") / 1048576) +
                 " MB",
             cell.valid ? "yes" : "NO",
             TablePrinter::Ratio(median_seconds / partition_time),
             fork_share});

        BenchCell bench_cell;
        bench_cell.name = slug + "/" + cell.dataset + "/" +
                          std::to_string(cell.workers) + "w/" +
                          SyncModeName(cell.sync);
        bench_cell.unit = "s";
        bench_cell.median = median_seconds;
        bench_cell.min = *std::min_element(cell.rep_seconds.begin(),
                                           cell.rep_seconds.end());
        bench_cell.max = *std::max_element(cell.rep_seconds.begin(),
                                           cell.rep_seconds.end());
        bench_cell.reps = static_cast<int>(cell.rep_seconds.size());
        bench_cell.counters["supersteps"] = cell.stats.supersteps;
        bench_cell.counters["net.wire_bytes"] =
            cell.stats.Metric("net.wire_bytes");
        bench_cell.counters["net.control_messages"] =
            cell.stats.Metric("net.control_messages");
        if (args.perf_counters) {
          for (const char* key :
               {"perf.cycles", "perf.instructions", "perf.llc_loads",
                "perf.llc_misses", "perf.task_clock_ms",
                "perf.ctx_switches"}) {
            bench_cell.counters[key] = cell.stats.Metric(key);
          }
          bench_cell.peak_rss_kb = cell.stats.peak_rss_kb;
        }
        report.Add(std::move(bench_cell));
      }
    }
  }
  table.Print(std::cout);
  std::printf("fork/compute: fork-acquire wait as a share of compute time "
              "(both summed over workers;\n waits are per compute thread, "
              "so >100%% means threads mostly blocked on forks)\n");

  // One per-superstep breakdown per grid, for the contribution technique's
  // last configuration: shows how phase costs evolve over the run.
  if (!last_timeline.empty()) {
    std::printf("\nper-superstep timeline (%s):\n",
                last_timeline_label.c_str());
    PrintTimeline(std::cout, last_timeline);
  }

  int exit_code = 0;
  if (!args.json_path.empty()) {
    report.env = CaptureBenchEnvironment();
    if (report.WriteJson(args.json_path)) {
      std::printf("\nbench report written to %s (%zu cells)\n",
                  args.json_path.c_str(), report.cells.size());
    } else {
      exit_code = 1;
    }
  }
  if (!args.trace_out.empty()) {
    Status s = Tracer::Get().WriteChromeTrace(args.trace_out);
    if (s.ok()) {
      std::printf("trace written to %s (%lld events)\n",
                  args.trace_out.c_str(),
                  (long long)Tracer::Get().event_count());
    } else {
      std::fprintf(stderr, "trace-out: %s\n", s.ToString().c_str());
      exit_code = 1;
    }
  }
  return exit_code;
}

/// Flagless overload for callers that do not forward main() arguments.
inline void RunFig6Grid(
    const std::string& title, const std::string& paper_expectation,
    bool undirected,
    const std::function<std::pair<RunStats, bool>(const Graph&,
                                                  const RunConfig&)>& run) {
  RunFig6Grid(0, nullptr, title, paper_expectation, undirected, run);
}

}  // namespace serigraph

#endif  // SERIGRAPH_BENCH_FIG6_COMMON_H_
