# Empty compiler generated dependencies file for sync_techniques_test.
# This may be replaced when dependencies are built.
