#ifndef SERIGRAPH_SYNC_CHANDY_MISRA_H_
#define SERIGRAPH_SYNC_CHANDY_MISRA_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "sync/technique.h"

namespace serigraph {

/// Generic hygienic dining philosophers coordinator (Chandy & Misra 1984),
/// the machinery behind both vertex-based (Section 4.3) and
/// partition-based (Section 5.4) distributed locking. Philosophers are
/// identified by dense int64 ids; the instantiation decides whether an id
/// is a vertex or a partition.
///
/// Protocol state per (philosopher, neighbor) pair is a byte in a
/// dual-layer hash map (philosopher id -> neighbor id -> bits), exactly
/// the representation the paper describes in Section 6.3. Initial
/// placement is acyclic: for every edge the smaller id holds the request
/// token and the larger id holds the fork, dirty.
///
/// Guarantees (from the Chandy-Misra algorithm): no two neighbors eat
/// concurrently, no deadlock, no starvation. The flush callback is
/// invoked before a fork is transferred to a philosopher owned by a
/// different worker, implementing the write-all rule (condition C1).
class ChandyMisraTable {
 public:
  using PhilosopherId = int64_t;

  struct Config {
    /// Number of philosophers (ids are [0, count)).
    PhilosopherId count = 0;
    /// Neighbor lists; adjacency must be symmetric and self-free.
    std::vector<std::vector<PhilosopherId>> adjacency;
    /// Owning worker of each philosopher.
    std::function<WorkerId(PhilosopherId)> worker_of;
    int num_workers = 0;
    /// Control-message tags to use on the wire (distinct per instance).
    uint32_t request_tag = 0;
    uint32_t transfer_tag = 1;
    MetricRegistry* metrics = nullptr;
    /// Optional hook for protocol-state inconsistencies that only a lost
    /// control message can produce (a request for a fork that never
    /// arrived, a transfer for a fork already held). When set, the
    /// offending message is dropped and the violation reported — the
    /// caller is expected to abort and recover the attempt. When null,
    /// such a state is a genuine protocol bug and is fatal. Invoked with
    /// no shard lock held.
    std::function<void(WorkerId, const std::string&)> on_protocol_violation;
  };

  explicit ChandyMisraTable(Config config);

  ChandyMisraTable(const ChandyMisraTable&) = delete;
  ChandyMisraTable& operator=(const ChandyMisraTable&) = delete;

  /// Registers the handle used to send control messages / flush for
  /// philosophers owned by worker `w`.
  void BindWorker(WorkerId w, WorkerHandle* handle);

  /// Blocks the calling (compute) thread until `p` holds all its forks;
  /// marks `p` eating and returns true. Fatal after a long stall
  /// (deadlock detector for tests; the protocol itself cannot deadlock).
  /// When introspection is enabled, publishes the missing forks as
  /// wait-for edges while blocked and returns false — with `p` back in
  /// the thinking state, forks NOT held — if an Introspector abort is
  /// requested mid-wait.
  bool Acquire(PhilosopherId p);

  /// Marks `p` thinking, dirties its forks, and serves deferred requests.
  void Release(PhilosopherId p);

  // --- barrier-synchronized mode (paper Proposition 1) -----------------
  // The constrained technique for synchronous models never blocks inside
  // Acquire; instead the engine polls readiness between sub-supersteps
  // and executes only philosophers that hold every fork. Philosophers
  // stay in the thinking state throughout, so requests arriving between
  // sub-supersteps are served immediately (dirty forks yield) or
  // deferred (clean forks stick with their next eater).

  /// True if `p` currently holds all of its forks.
  bool HoldsAllForks(PhilosopherId p);

  /// Sends requests for every fork `p` is missing and still has the
  /// request token for. Idempotent across sub-supersteps: once the token
  /// is spent the request is outstanding.
  void RequestMissingForks(PhilosopherId p);

  /// Records that `p` just executed (between barriers): its forks become
  /// dirty and deferred requests are served. The engine must guarantee
  /// no neighbor executed concurrently (it does, by construction).
  void MarkEaten(PhilosopherId p);

  /// Handles a REQUEST or TRANSFER control message addressed to a
  /// philosopher owned by worker `w`. Called from comm threads.
  void HandleControl(WorkerId w, const WireMessage& msg);

  /// True if `msg` belongs to this table (by tag).
  bool Owns(const WireMessage& msg) const {
    return msg.tag == config_.request_tag || msg.tag == config_.transfer_tag;
  }

  /// Number of shared forks (edges in the philosopher adjacency).
  int64_t num_forks() const { return num_forks_; }

 private:
  enum class State : uint8_t { kThinking = 0, kHungry = 1, kEating = 2 };

  // Bits of the per-edge state byte (Section 6.3).
  static constexpr uint8_t kHasFork = 1;
  static constexpr uint8_t kDirty = 2;
  static constexpr uint8_t kHasToken = 4;

  struct Philosopher {
    State state = State::kThinking;
    int missing_forks = 0;
    /// neighbor id -> state byte.
    std::unordered_map<PhilosopherId, uint8_t> edges;
  };

  /// All philosophers of one worker share a mutex + cv; cross-worker
  /// interaction happens only via control messages.
  struct WorkerShard {
    sy::Mutex mu;
    sy::CondVar cv;
    std::unordered_map<PhilosopherId, Philosopher> philosophers
        SY_GUARDED_BY(mu);
    WorkerHandle* handle SY_GUARDED_BY(mu) = nullptr;
  };

  WorkerShard& ShardOf(PhilosopherId p) {
    return *shards_[config_.worker_of(p)];
  }

  /// Sends REQUEST(p -> q): p gives up the request token to ask q for the
  /// shared fork. `shard` is p's shard, locked by the caller.
  void SendRequestLocked(WorkerShard& shard, PhilosopherId p, PhilosopherId q)
      SY_REQUIRES(shard.mu);

  /// Sends TRANSFER(p -> q): p relinquishes the (cleaned) fork to q,
  /// flushing data messages first if q lives on another worker. `shard`
  /// is p's shard, locked by the caller.
  void SendTransferLocked(WorkerShard& shard, PhilosopherId p, PhilosopherId q)
      SY_REQUIRES(shard.mu);

  void OnRequest(WorkerShard& shard, PhilosopherId from, PhilosopherId to)
      SY_EXCLUDES(shard.mu);
  void OnTransfer(WorkerShard& shard, PhilosopherId from, PhilosopherId to)
      SY_EXCLUDES(shard.mu);

  /// Routes a fork-state inconsistency to `on_protocol_violation` (fatal
  /// when the hook is unset). Must be called with no shard lock held: the
  /// hook takes engine-side locks that may not nest under sync.shard.
  void ReportViolation(PhilosopherId from, PhilosopherId to, const char* what);

  Config config_;
  std::vector<std::unique_ptr<WorkerShard>> shards_;
  int64_t num_forks_ = 0;

  Counter* fork_requests_ = nullptr;
  Counter* fork_transfers_ = nullptr;
  Counter* cross_worker_transfers_ = nullptr;
  Counter* handover_flushes_ = nullptr;
};

}  // namespace serigraph

#endif  // SERIGRAPH_SYNC_CHANDY_MISRA_H_
