file(REMOVE_RECURSE
  "CMakeFiles/serigraph_verify.dir/history.cc.o"
  "CMakeFiles/serigraph_verify.dir/history.cc.o.d"
  "libserigraph_verify.a"
  "libserigraph_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serigraph_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
