// Sections 4.1 / 5.4 ablation: message batching. Partition-based locking
// can batch an entire partition's remote replica updates before a fork
// handover; vertex-based locking must flush tiny batches at every
// m-boundary vertex. We isolate the effect by sweeping the buffer-cache
// capacity under partition-based locking.

#include <iostream>

#include "algos/pagerank.h"
#include "graph/stats.h"
#include "harness/datasets.h"
#include "harness/runner.h"
#include "harness/table.h"

using namespace serigraph;

int main() {
  PrintHeader(std::cout,
              "Sections 4.1/5.4 ablation: message batching "
              "(PageRank on OR', partition-based locking, 16 workers)");
  Graph graph = MakeDataset(FindSpec("OR'"));

  TablePrinter table({"batch bytes", "data batches", "avg batch KB",
                      "wire MB", "time"});
  for (int64_t batch : {int64_t{1}, int64_t{512}, int64_t{4} * 1024,
                        int64_t{64} * 1024, int64_t{1024} * 1024}) {
    RunConfig config;
    config.sync_mode = SyncMode::kPartitionLocking;
    config.num_workers = 16;
    config.network = BenchNetwork();
    config.message_batch_bytes = batch;
    RunStats stats = RunProgram(graph, PageRank(0.01), config);
    const int64_t batches = stats.Metric("net.data_batches");
    const int64_t bytes = stats.Metric("net.wire_bytes");
    char avg[32];
    std::snprintf(avg, sizeof(avg), "%.1f",
                  batches > 0 ? static_cast<double>(bytes) /
                                    static_cast<double>(batches) / 1024.0
                              : 0.0);
    table.AddRow({batch == 1 ? "1 (no batching)" : HumanCount(batch),
                  TablePrinter::Count(batches), avg,
                  std::to_string(bytes / 1048576) + " MB",
                  TablePrinter::Seconds(stats.computation_seconds)});
  }
  table.Print(std::cout);
  std::cout << "\npaper: batching remote replica updates is a key reason "
               "coarse-grained locking\nbeats vertex-based locking "
               "(Section 5.4).\n";
  return 0;
}
