#include "common/status.h"

#include <gtest/gtest.h>

namespace serigraph {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  struct Case {
    Status status;
    StatusCode code;
    const char* name;
  };
  const Case cases[] = {
      {Status::InvalidArgument("a"), StatusCode::kInvalidArgument,
       "InvalidArgument"},
      {Status::NotFound("b"), StatusCode::kNotFound, "NotFound"},
      {Status::AlreadyExists("c"), StatusCode::kAlreadyExists,
       "AlreadyExists"},
      {Status::OutOfRange("d"), StatusCode::kOutOfRange, "OutOfRange"},
      {Status::FailedPrecondition("e"), StatusCode::kFailedPrecondition,
       "FailedPrecondition"},
      {Status::Internal("f"), StatusCode::kInternal, "Internal"},
      {Status::IoError("g"), StatusCode::kIoError, "IoError"},
      {Status::Unimplemented("h"), StatusCode::kUnimplemented,
       "Unimplemented"},
      {Status::Aborted("i"), StatusCode::kAborted, "Aborted"},
  };
  for (const Case& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_EQ(std::string(StatusCodeToString(c.code)), c.name);
    EXPECT_NE(c.status.ToString().find(c.name), std::string::npos);
  }
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::NotFound("missing"));
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v(std::make_unique<int>(7));
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> owned = std::move(v).value();
  EXPECT_EQ(*owned, 7);
}

TEST(StatusOrTest, NonDefaultConstructibleValue) {
  struct NoDefault {
    explicit NoDefault(int x) : x(x) {}
    int x;
  };
  StatusOr<NoDefault> v(NoDefault(3));
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->x, 3);
  StatusOr<NoDefault> err(Status::Internal("no"));
  EXPECT_FALSE(err.ok());
}

Status Fails() { return Status::Aborted("stop"); }
Status Propagates() {
  SERIGRAPH_RETURN_IF_ERROR(Fails());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(Propagates().code(), StatusCode::kAborted);
}

}  // namespace
}  // namespace serigraph
