#include "obs/timeline.h"

#include <algorithm>

namespace serigraph {

TimelineRecorder::TimelineRecorder(int num_workers) {
  lanes_.resize(num_workers > 0 ? static_cast<size_t>(num_workers) : 1);
}

void TimelineRecorder::Append(const SuperstepSample& sample) {
  lanes_[sample.worker].push_back(sample);
}

std::vector<SuperstepSample> TimelineRecorder::Collect() const {
  std::vector<SuperstepSample> out;
  size_t total = 0;
  for (const auto& lane : lanes_) total += lane.size();
  out.reserve(total);
  for (const auto& lane : lanes_) {
    out.insert(out.end(), lane.begin(), lane.end());
  }
  std::sort(out.begin(), out.end(),
            [](const SuperstepSample& a, const SuperstepSample& b) {
              if (a.superstep != b.superstep) return a.superstep < b.superstep;
              return a.worker < b.worker;
            });
  return out;
}

int64_t Total(const std::vector<SuperstepSample>& timeline,
              int64_t SuperstepSample::* field) {
  int64_t total = 0;
  for (const SuperstepSample& sample : timeline) total += sample.*field;
  return total;
}

}  // namespace serigraph
