#ifndef SERIGRAPH_COMMON_METRICS_H_
#define SERIGRAPH_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace serigraph {

/// Thread-safe monotonically increasing counter.
class Counter {
 public:
  Counter() : value_(0) {}

  // mo: stat cell; no ordering role
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  // mo: stat cell; no ordering role
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  // mo: stat cell; no ordering role
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_;
};

/// Thread-safe gauge that also tracks the maximum value ever observed.
/// Used e.g. for the "concurrent executing workers" parallelism index.
class MaxGauge {
 public:
  MaxGauge() : value_(0), max_(0) {}

  /// Adjusts the gauge by `delta` and folds the new value into the max.
  void Add(int64_t delta) {
    // mo: stat cell; no ordering role
    int64_t now = value_.fetch_add(delta, std::memory_order_relaxed) + delta;
    // mo: stat cell; no ordering role
    int64_t prev = max_.load(std::memory_order_relaxed);
    while (now > prev &&  // mo: stat cell; no ordering role
           !max_.compare_exchange_weak(prev, now, std::memory_order_relaxed)) {
    }
  }

  /// Sets the gauge to the absolute sample `v` and folds it into the max.
  /// For sampled depth/occupancy gauges (queue depth, RSS) where deltas
  /// are not available.
  void Observe(int64_t v) {
    // mo: stat cell; no ordering role
    value_.store(v, std::memory_order_relaxed);
    // mo: stat cell; no ordering role
    int64_t prev = max_.load(std::memory_order_relaxed);
    while (v > prev &&  // mo: stat cell; no ordering role
           !max_.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
    }
  }

  // mo: stat cell; no ordering role
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  // mo: stat cell; no ordering role
  int64_t max() const { return max_.load(std::memory_order_relaxed); }
  void Reset() {
    // mo: stat cell; no ordering role
    value_.store(0, std::memory_order_relaxed);
    // mo: stat cell; no ordering role
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t> value_;
  std::atomic<int64_t> max_;
};

/// Fixed-bucket log2 histogram of non-negative samples (thread-safe).
/// Used for latency distributions (fork-wait, token-hold, barrier-wait);
/// see MetricRegistry::GetHistogram and the DESIGN.md observability
/// section for the naming scheme.
class Histogram {
 public:
  static constexpr int kNumBuckets = 48;

  Histogram();

  void Record(int64_t sample);
  // mo: stat cell; no ordering role
  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  // mo: stat cell; no ordering role
  int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Largest sample ever recorded (exact, not bucketed); 0 when empty.
  // mo: stat cell; no ordering role
  int64_t max() const { return max_.load(std::memory_order_relaxed); }
  double Mean() const;
  /// Approximate quantile from bucket boundaries: returns an upper bound
  /// of the bucket holding the q-th sample, capped at the exact max.
  /// Edge cases: empty histogram -> 0; q (including NaN) is clamped to
  /// [0,1]; q=0 reports the first non-empty bucket, q=1 the exact max.
  int64_t ApproxQuantile(double q) const;
  void Reset();

 private:
  std::atomic<int64_t> buckets_[kNumBuckets];
  std::atomic<int64_t> count_;
  std::atomic<int64_t> sum_;
  std::atomic<int64_t> max_;
};

/// Named registry of counters for a single engine run. Components hold
/// pointers to counters they update; the harness snapshots and prints them.
/// Counter pointers remain valid for the registry's lifetime.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// Returns the counter registered under `name`, creating it on first use.
  Counter* GetCounter(const std::string& name);
  /// Returns the max-gauge registered under `name`, creating it on first use.
  MaxGauge* GetGauge(const std::string& name);
  /// Returns the histogram registered under `name`, creating it on first
  /// use. Histograms surface in Snapshot() as `name.p50/.p95/.max/.count`
  /// (plus `.sum` so callers can derive shares and means).
  Histogram* GetHistogram(const std::string& name);

  /// Snapshot of all counter values (gauges report their max; histograms
  /// expand into their quantile/max/count/sum sub-keys).
  std::map<std::string, int64_t> Snapshot() const;
  void ResetAll();

 private:
  mutable sy::Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_ SY_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<MaxGauge>> gauges_ SY_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      SY_GUARDED_BY(mu_);
};

}  // namespace serigraph

#endif  // SERIGRAPH_COMMON_METRICS_H_
