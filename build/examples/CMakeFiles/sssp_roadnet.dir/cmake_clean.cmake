file(REMOVE_RECURSE
  "CMakeFiles/sssp_roadnet.dir/sssp_roadnet.cpp.o"
  "CMakeFiles/sssp_roadnet.dir/sssp_roadnet.cpp.o.d"
  "sssp_roadnet"
  "sssp_roadnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sssp_roadnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
