// Regression tests for the Section 6.5 usability contract: token passing
// cannot guarantee that every vertex executes in superstep 0, so every
// bundled algorithm keys off its first execution instead. These tests
// pin that contract by running the value-producing algorithms to
// convergence under both token techniques and checking exact results.

#include <gtest/gtest.h>

#include "algos/pagerank.h"
#include "algos/sssp.h"
#include "algos/wcc.h"
#include "graph/generators.h"
#include "pregel/engine.h"

namespace serigraph {
namespace {

Graph Make(const EdgeList& el) {
  auto g = Graph::FromEdgeList(el);
  EXPECT_TRUE(g.ok()) << g.status();
  return std::move(g).value();
}

EngineOptions TokenOptions(SyncMode sync) {
  EngineOptions opts;
  opts.sync_mode = sync;
  opts.num_workers = 3;
  opts.partitions_per_worker = 2;
  opts.max_supersteps = 50000;
  return opts;
}

TEST(TokenAlgorithmsTest, PageRankSeedsEveryVertexExactlyOnce) {
  // If the base mass 0.15 were seeded by "superstep == 0", m-boundary
  // vertices would silently lose it under token passing. The fixpoint
  // check against the reference catches both missing and double seeds.
  Graph g = Make(ErdosRenyi(150, 900, 41));
  auto reference = ReferencePageRank(g, 1e-8);
  for (SyncMode sync :
       {SyncMode::kSingleLayerToken, SyncMode::kDualLayerToken}) {
    Engine<PageRank> engine(&g, TokenOptions(sync));
    auto result = engine.Run(PageRank(1e-6));
    ASSERT_TRUE(result.ok()) << SyncModeName(sync);
    EXPECT_TRUE(result->stats.converged) << SyncModeName(sync);
    EXPECT_LT(MaxAbsDifference(result->values, reference), 1e-2)
        << SyncModeName(sync);
    // Every vertex got seeded at least with the base mass.
    for (double v : result->values) EXPECT_GE(v, PageRank::kBase - 1e-9);
  }
}

TEST(TokenAlgorithmsTest, SsspSourceSeedsOnFirstExecution) {
  Graph g = Make(ErdosRenyi(200, 800, 43));
  auto reference = ReferenceSssp(g, 0);
  for (SyncMode sync :
       {SyncMode::kSingleLayerToken, SyncMode::kDualLayerToken}) {
    Engine<Sssp> engine(&g, TokenOptions(sync));
    auto result = engine.Run(Sssp(0));
    ASSERT_TRUE(result.ok()) << SyncModeName(sync);
    EXPECT_EQ(result->values, reference) << SyncModeName(sync);
  }
}

TEST(TokenAlgorithmsTest, WccAnnouncesEveryLabel) {
  // If labels were announced only in superstep 0, component minima on
  // token-skipped vertices would never propagate.
  EdgeList el = ErdosRenyi(180, 200, 47);  // sparse => many components
  Graph g = Make(el).Undirected();
  auto reference = ReferenceWcc(g);
  for (SyncMode sync :
       {SyncMode::kSingleLayerToken, SyncMode::kDualLayerToken}) {
    Engine<Wcc> engine(&g, TokenOptions(sync));
    auto result = engine.Run(Wcc());
    ASSERT_TRUE(result.ok()) << SyncModeName(sync);
    EXPECT_EQ(result->values, reference) << SyncModeName(sync);
  }
}

}  // namespace
}  // namespace serigraph
