#ifndef SERIGRAPH_PREGEL_MESSAGE_CODEC_H_
#define SERIGRAPH_PREGEL_MESSAGE_CODEC_H_

#include <type_traits>

#include "common/serialize.h"

namespace serigraph {

/// Wire codec for vertex-to-vertex message payloads. The default handles
/// any trivially copyable type by writing its object representation;
/// programs with richer message types specialize MessageCodec<M>.
template <typename M>
struct MessageCodec {
  static_assert(std::is_trivially_copyable_v<M>,
                "specialize MessageCodec<M> for non-trivial message types");

  static void Encode(BufferWriter& writer, const M& message) {
    writer.AppendRaw(&message, sizeof(M));
  }
  static bool Decode(BufferReader& reader, M* message) {
    return reader.ReadRaw(message, sizeof(M));
  }
};

}  // namespace serigraph

#endif  // SERIGRAPH_PREGEL_MESSAGE_CODEC_H_
