#ifndef SERIGRAPH_COMMON_MUTEX_H_
#define SERIGRAPH_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/schedule_hooks.h"
#include "common/thread_annotations.h"

// Annotated locking primitives for the whole tree. Everything outside
// src/common/ must use sy::Mutex / sy::MutexLock / sy::CondVar instead of
// the raw std:: types (enforced by scripts/lint_protocol.py), so that
// Clang's -Wthread-safety analysis sees every critical section and every
// SY_GUARDED_BY field access (SERIGRAPH_TSA=ON turns violations into
// build failures). The wrappers forward to std::mutex /
// std::condition_variable; the only extra cost is one predicted atomic
// load per operation checking for an installed model-checking scheduler
// (common/schedule_hooks.h — serichk routes registered threads through
// a virtual cooperative scheduler here, which is why the whole protocol
// stack is explorable without modification).
namespace sy {

/// Annotated std::mutex. Prefer sy::MutexLock over manual Lock()/Unlock().
class SY_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() SY_ACQUIRE() {
    if (SchedulerClient* sched = CapturedScheduler()) {
      sched->OnMutexLock(this, &mu_);
      return;
    }
    mu_.lock();
  }
  void Unlock() SY_RELEASE() {
    if (SchedulerClient* sched = CapturedScheduler()) {
      sched->OnMutexUnlock(this, &mu_);
      return;
    }
    mu_.unlock();
  }
  bool TryLock() SY_TRY_ACQUIRE(true) {
    if (SchedulerClient* sched = CapturedScheduler()) {
      return sched->OnMutexTryLock(this, &mu_);
    }
    return mu_.try_lock();
  }

  /// The wrapped handle, for interop (CondVar's adopt/release dance).
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// RAII critical section over a sy::Mutex (the std::lock_guard /
/// std::unique_lock replacement). Holds the lock for its whole lifetime;
/// sy::CondVar::Wait* atomically releases and reacquires it while
/// blocked, which the analysis models as "held throughout".
class SY_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) SY_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  ~MutexLock() SY_RELEASE() { mu_->Unlock(); }

 private:
  Mutex* const mu_;
};

/// Condition variable bound to sy::Mutex critical sections. All waits
/// require the mutex held (enforced by SY_REQUIRES) and return with it
/// held again, exactly like std::condition_variable with a unique_lock.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void NotifyOne() {
    if (SchedulerClient* sched = CapturedScheduler()) {
      sched->OnCondNotify(this, /*notify_all=*/false);
    }
    cv_.notify_one();
  }
  void NotifyAll() {
    if (SchedulerClient* sched = CapturedScheduler()) {
      sched->OnCondNotify(this, /*notify_all=*/true);
    }
    cv_.notify_all();
  }

  /// Blocks until notified. Spurious wakeups possible; loop on the
  /// predicate like with std::condition_variable.
  void Wait(Mutex& mu) SY_REQUIRES(mu) {
    if (SchedulerClient* sched = CapturedScheduler()) {
      sched->OnCondWait(this, &mu, &mu.native());
      return;
    }
    std::unique_lock<std::mutex> lock(mu.native(), std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // ownership stays with the caller's MutexLock
  }

  /// Blocks until notified or `timeout` elapsed; returns
  /// std::cv_status::timeout on expiry. Under a model-checking scheduler
  /// the wait is untimed and always reports no_timeout: the scheduler's
  /// deadlock detection supersedes timeout recovery paths, and virtual
  /// time has no wall-clock to compare against.
  template <typename Rep, typename Period>
  std::cv_status WaitFor(Mutex& mu,
                         const std::chrono::duration<Rep, Period>& timeout)
      SY_REQUIRES(mu) {
    if (SchedulerClient* sched = CapturedScheduler()) {
      sched->OnCondWait(this, &mu, &mu.native());
      return std::cv_status::no_timeout;
    }
    std::unique_lock<std::mutex> lock(mu.native(), std::adopt_lock);
    const std::cv_status status = cv_.wait_for(lock, timeout);
    lock.release();
    return status;
  }

  /// Blocks until notified or `deadline` reached; returns
  /// std::cv_status::timeout on expiry (same model-checking caveat as
  /// WaitFor: virtualized waits never time out).
  template <typename Clock, typename Duration>
  std::cv_status WaitUntil(
      Mutex& mu, const std::chrono::time_point<Clock, Duration>& deadline)
      SY_REQUIRES(mu) {
    if (SchedulerClient* sched = CapturedScheduler()) {
      sched->OnCondWait(this, &mu, &mu.native());
      return std::cv_status::no_timeout;
    }
    std::unique_lock<std::mutex> lock(mu.native(), std::adopt_lock);
    const std::cv_status status = cv_.wait_until(lock, deadline);
    lock.release();
    return status;
  }

  // No predicate overloads on purpose: a predicate lambda is analyzed as
  // its own unannotated function, so reads of SY_GUARDED_BY fields inside
  // it defeat the analysis. Write the `while (!cond) cv.Wait(mu);` loop
  // in the annotated caller instead.

 private:
  std::condition_variable cv_;
};

/// Phantom capability: a zero-size object that exists only so Clang's
/// thread-safety analysis has something to acquire/release when the real
/// protected resource is a runtime lock *set* (see LockSetMutex below).
/// Holds no lock itself; functions annotated SY_ACQUIRE(phantom) /
/// SY_RELEASE(phantom) do the real element locking internally.
class SY_CAPABILITY("phantom") PhantomCapability {
 public:
  PhantomCapability() = default;
  PhantomCapability(const PhantomCapability&) = delete;
  PhantomCapability& operator=(const PhantomCapability&) = delete;
};

/// Element of a *dynamically ordered lock set*: a collection of mutexes
/// acquired in a sorted runtime order (the GAS engine's per-vertex hood
/// locks). Clang's thread-safety capabilities are per-expression, so a
/// loop over `locks_[u]` for a runtime `u` is inexpressible lock by
/// lock; this type is deliberately unannotated so the set's elements are
/// invisible to the analysis. Every use MUST pair the whole set with a
/// phantom SY_CAPABILITY acquired/released around it (see
/// GasEngine::LockHood), so callers stay checked at the set granularity,
/// and must document its tier in docs/LOCK_ORDER.md like any sy::Mutex.
class LockSetMutex {
 public:
  LockSetMutex() = default;
  LockSetMutex(const LockSetMutex&) = delete;
  LockSetMutex& operator=(const LockSetMutex&) = delete;

  void Lock() {
    if (SchedulerClient* sched = CapturedScheduler()) {
      sched->OnMutexLock(this, &mu_);
      return;
    }
    mu_.lock();
  }
  void Unlock() {
    if (SchedulerClient* sched = CapturedScheduler()) {
      sched->OnMutexUnlock(this, &mu_);
      return;
    }
    mu_.unlock();
  }

 private:
  std::mutex mu_;
};

}  // namespace sy

#endif  // SERIGRAPH_COMMON_MUTEX_H_
