// Figure 6(d): weakly connected components (HCC) computation times.

#include "algos/wcc.h"
#include "fig6_common.h"

using namespace serigraph;

int main(int argc, char** argv) {
  return RunFig6Grid(
      argc, argv, "Figure 6(d): WCC",
      "partition-based locking fastest; up to 26x vs vertex-based (OR, 16 "
      "workers) and >8x vs token passing (UK, 32); multi-iteration "
      "algorithms multiply the per-iteration gains (Section 7.3)",
      /*undirected=*/true,
      [](const Graph& graph, const RunConfig& config) {
        std::vector<int64_t> labels;
        RunStats stats = RunProgram(graph, Wcc(), config, &labels);
        const bool valid = labels == ReferenceWcc(graph);
        return std::make_pair(stats, valid);
      });
}
