file(REMOVE_RECURSE
  "CMakeFiles/label_propagation_test.dir/label_propagation_test.cc.o"
  "CMakeFiles/label_propagation_test.dir/label_propagation_test.cc.o.d"
  "label_propagation_test"
  "label_propagation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/label_propagation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
