# Empty dependencies file for fig23_nontermination.
# This may be replaced when dependencies are built.
