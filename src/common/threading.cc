#include "common/threading.h"

#include "common/logging.h"

namespace serigraph {

CyclicBarrier::CyclicBarrier(int parties) : parties_(parties) {
  SG_CHECK_GT(parties, 0);
}

bool CyclicBarrier::Await() {
  sy::MutexLock lock(&mu_);
  if (broken_) return false;
  uint64_t gen = generation_;
  if (++waiting_ == parties_) {
    waiting_ = 0;
    ++generation_;
    cv_.NotifyAll();
    return true;
  }
  while (generation_ == gen && !broken_) cv_.Wait(mu_);
  return false;
}

void CyclicBarrier::Break() {
  sy::MutexLock lock(&mu_);
  broken_ = true;
  waiting_ = 0;
  ++generation_;
  cv_.NotifyAll();
}

bool CyclicBarrier::broken() const {
  sy::MutexLock lock(&mu_);
  return broken_;
}

void CountDownLatch::CountDown() {
  sy::MutexLock lock(&mu_);
  if (count_ > 0 && --count_ == 0) cv_.NotifyAll();
}

void CountDownLatch::Wait() {
  sy::MutexLock lock(&mu_);
  while (count_ != 0) cv_.Wait(mu_);
}

ThreadPool::ThreadPool(int num_threads) {
  SG_CHECK_GT(num_threads, 0);
  threads_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Submit(std::function<void()> task) {
  {
    sy::MutexLock lock(&mu_);
    SG_CHECK(!shutdown_);
    queue_.push_back(std::move(task));
  }
  cv_task_.NotifyOne();
}

void ThreadPool::WaitIdle() {
  sy::MutexLock lock(&mu_);
  while (!queue_.empty() || active_ != 0) cv_idle_.Wait(mu_);
}

void ThreadPool::Shutdown() {
  {
    sy::MutexLock lock(&mu_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  cv_task_.NotifyAll();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      sy::MutexLock lock(&mu_);
      while (!shutdown_ && queue_.empty()) cv_task_.Wait(mu_);
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      sy::MutexLock lock(&mu_);
      --active_;
      if (queue_.empty() && active_ == 0) cv_idle_.NotifyAll();
    }
  }
}

}  // namespace serigraph
