// Microbenchmarks for the simulated transport: send/receive throughput
// and the cost of encoding message batches, isolating the substrate the
// synchronization techniques run on.

#include <benchmark/benchmark.h>

#include <thread>

#include "common/metrics.h"
#include "common/serialize.h"
#include "net/transport.h"

namespace serigraph {
namespace {

void BM_TransportSendReceive(benchmark::State& state) {
  MetricRegistry metrics;
  Transport transport(2, NetworkOptions{}, &metrics);
  const int64_t payload_size = state.range(0);
  for (auto _ : state) {
    WireMessage msg;
    msg.src = 0;
    msg.dst = 1;
    msg.kind = MessageKind::kDataBatch;
    msg.payload.assign(payload_size, 0xab);
    transport.Send(std::move(msg));
    auto received = transport.TryReceive(1);
    benchmark::DoNotOptimize(received);
  }
  state.SetBytesProcessed(state.iterations() * (payload_size + 32));
}
BENCHMARK(BM_TransportSendReceive)->Arg(64)->Arg(4096)->Arg(65536);

void BM_TransportCrossThread(benchmark::State& state) {
  MetricRegistry metrics;
  Transport transport(2, NetworkOptions{}, &metrics);
  std::atomic<bool> done{false};
  std::thread consumer([&] {
    while (auto msg = transport.Receive(1)) {
      benchmark::DoNotOptimize(msg);
    }
  });
  for (auto _ : state) {
    WireMessage msg;
    msg.src = 0;
    msg.dst = 1;
    msg.kind = MessageKind::kControl;
    transport.Send(std::move(msg));
  }
  done.store(true);
  transport.Shutdown();
  consumer.join();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TransportCrossThread);

void BM_BatchEncodeDecode(benchmark::State& state) {
  const int64_t count = state.range(0);
  for (auto _ : state) {
    BufferWriter writer;
    for (int64_t i = 0; i < count; ++i) {
      writer.WriteVarint(static_cast<uint64_t>(i));       // dst
      writer.WriteVarint(static_cast<uint64_t>(i * 31));  // src
      writer.WriteVarint(1);                              // version
      double value = static_cast<double>(i);
      writer.AppendRaw(&value, sizeof(value));
    }
    std::vector<uint8_t> bytes = writer.Release();
    BufferReader reader(bytes);
    uint64_t dst, src, version;
    double value;
    while (!reader.AtEnd()) {
      reader.ReadVarint(&dst);
      reader.ReadVarint(&src);
      reader.ReadVarint(&version);
      reader.ReadRaw(&value, sizeof(value));
      benchmark::DoNotOptimize(value);
    }
    benchmark::DoNotOptimize(bytes);
  }
  state.SetItemsProcessed(state.iterations() * count);
}
BENCHMARK(BM_BatchEncodeDecode)->Arg(100)->Arg(10000);

}  // namespace
}  // namespace serigraph

#include "micro_main.h"
