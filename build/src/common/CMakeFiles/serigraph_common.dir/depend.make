# Empty dependencies file for serigraph_common.
# This may be replaced when dependencies are built.
