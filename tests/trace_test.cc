// Tests for the tracer: span nesting, thread safety of concurrent
// recording, and round-tripping the exported Chrome trace-event JSON.

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "obs/report.h"
#include "obs/timeline.h"
#include "obs/trace.h"

namespace serigraph {
namespace {

/// Enables the process-wide tracer for one test and restores the
/// disabled, empty state afterwards (the tracer is a singleton).
class TracerFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::Get().Reset();
    Tracer::Get().Enable();
  }
  void TearDown() override {
    Tracer::Get().Disable();
    Tracer::Get().Reset();
  }
};

using TraceTest = TracerFixture;

TEST_F(TraceTest, DisabledRecordsNothing) {
  Tracer::Get().Disable();
  { SG_TRACE_SPAN("ignored"); }
  SG_TRACE_INTERVAL("also_ignored", 0, 5);
  EXPECT_EQ(Tracer::Get().event_count(), 0);
}

TEST_F(TraceTest, SpansNestAndAllGetRecorded) {
  {
    SG_TRACE_SPAN("outer");
    {
      SG_TRACE_SPAN("inner");
      { SG_TRACE_SPAN("innermost"); }
    }
    // Two spans with the same macro on one line must not collide
    // (__COUNTER__ keeps the variable names unique).
    SG_TRACE_SPAN("sibling");
  }
  EXPECT_EQ(Tracer::Get().event_count(), 4);
  const std::string json = Tracer::Get().ToChromeTraceJson();
  EXPECT_NE(json.find("\"outer\""), std::string::npos);
  EXPECT_NE(json.find("\"inner\""), std::string::npos);
  EXPECT_NE(json.find("\"innermost\""), std::string::npos);
  EXPECT_NE(json.find("\"sibling\""), std::string::npos);
}

TEST_F(TraceTest, IntervalMacroRecordsGivenTimes) {
  SG_TRACE_INTERVAL("manual", 1234, 42);
  EXPECT_EQ(Tracer::Get().event_count(), 1);
  const std::string json = Tracer::Get().ToChromeTraceJson();
  EXPECT_NE(json.find("\"ts\":1234"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":42"), std::string::npos);
}

TEST_F(TraceTest, ConcurrentRecordingLosesNothing) {
  constexpr int kThreads = 8;
  constexpr int kEventsPerThread = 5000;  // forces chunk growth (4096/chunk)
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      Tracer::Get().SetCurrentThreadName("t" + std::to_string(t));
      for (int i = 0; i < kEventsPerThread; ++i) {
        SG_TRACE_SPAN("work");
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(Tracer::Get().event_count(), kThreads * kEventsPerThread);
  EXPECT_EQ(Tracer::Get().dropped_count(), 0);
}

TEST_F(TraceTest, ExportWhileRecordingIsSafe) {
  std::thread writer([] {
    for (int i = 0; i < 20000; ++i) {
      SG_TRACE_SPAN("hot");
    }
  });
  // Concurrent export must see a consistent prefix, not crash or tear.
  for (int i = 0; i < 10; ++i) {
    const std::string json = Tracer::Get().ToChromeTraceJson();
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
  }
  writer.join();
  EXPECT_EQ(Tracer::Get().event_count(), 20000);
}

/// Chrome trace-event JSON must parse as an object whose "traceEvents"
/// member is an array of objects with name/ph/pid/tid/ts/dur members.
/// A tiny recursive-descent validator keeps the test dependency-free.
class JsonCursor {
 public:
  explicit JsonCursor(const std::string& text) : text_(text) {}

  bool ValidValue() { return Value() && (Skip(), pos_ == text_.size()); }
  int objects_seen() const { return objects_; }
  const std::vector<std::string>& keys() const { return keys_; }

 private:
  void Skip() {
    while (pos_ < text_.size() && std::isspace(text_[pos_])) ++pos_;
  }
  bool Literal(const char* lit) {
    const size_t n = std::strlen(lit);
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }
  bool String() {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
      }
      out.push_back(text_[pos_]);
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    last_string_ = std::move(out);
    return true;
  }
  bool Number() {
    const size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-')) ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(text_[pos_]) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool Value() {
    Skip();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') return Object();
    if (c == '[') return Array();
    if (c == '"') return String();
    if (c == 't') return Literal("true");
    if (c == 'f') return Literal("false");
    if (c == 'n') return Literal("null");
    return Number();
  }
  bool Object() {
    ++objects_;
    ++pos_;  // '{'
    Skip();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      Skip();
      if (!String()) return false;
      keys_.push_back(last_string_);
      Skip();
      if (pos_ >= text_.size() || text_[pos_] != ':') return false;
      ++pos_;
      if (!Value()) return false;
      Skip();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      break;
    }
    if (pos_ >= text_.size() || text_[pos_] != '}') return false;
    ++pos_;
    return true;
  }
  bool Array() {
    ++pos_;  // '['
    Skip();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      if (!Value()) return false;
      Skip();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      break;
    }
    if (pos_ >= text_.size() || text_[pos_] != ']') return false;
    ++pos_;
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
  int objects_ = 0;
  std::string last_string_;
  std::vector<std::string> keys_;
};

TEST_F(TraceTest, ChromeTraceJsonRoundTrips) {
  Tracer::Get().SetCurrentThreadName("main");
  { SG_TRACE_SPAN("alpha"); }
  SG_TRACE_INTERVAL("beta", 10, 20);

  const std::string json = Tracer::Get().ToChromeTraceJson();
  JsonCursor cursor(json);
  ASSERT_TRUE(cursor.ValidValue()) << json;

  // Top-level object + thread_name metadata + 2 events.
  EXPECT_GE(cursor.objects_seen(), 4);
  const auto& keys = cursor.keys();
  auto has = [&](const char* k) {
    return std::find(keys.begin(), keys.end(), k) != keys.end();
  };
  EXPECT_TRUE(has("traceEvents"));
  EXPECT_TRUE(has("name"));
  EXPECT_TRUE(has("ph"));
  EXPECT_TRUE(has("pid"));
  EXPECT_TRUE(has("tid"));
  EXPECT_TRUE(has("ts"));
  EXPECT_TRUE(has("dur"));
}

TEST_F(TraceTest, ResetClearsEventsAndReusesThreads) {
  { SG_TRACE_SPAN("before"); }
  EXPECT_EQ(Tracer::Get().event_count(), 1);
  Tracer::Get().Reset();
  EXPECT_EQ(Tracer::Get().event_count(), 0);
  // The recording thread must re-register after Reset (its cached
  // buffer pointer is invalidated by the epoch bump).
  { SG_TRACE_SPAN("after"); }
  EXPECT_EQ(Tracer::Get().event_count(), 1);
  const std::string json = Tracer::Get().ToChromeTraceJson();
  EXPECT_EQ(json.find("\"before\""), std::string::npos);
  EXPECT_NE(json.find("\"after\""), std::string::npos);
}

TEST(TimelineTest, CollectOrdersBySuperstepThenWorker) {
  TimelineRecorder recorder(2);
  SuperstepSample s;
  s.superstep = 1;
  s.worker = 1;
  s.compute_us = 10;
  recorder.Append(s);
  s.superstep = 0;
  s.compute_us = 5;
  recorder.Append(s);
  s.worker = 0;
  s.superstep = 0;
  s.compute_us = 7;
  recorder.Append(s);

  const auto all = recorder.Collect();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].superstep, 0);
  EXPECT_EQ(all[0].worker, 0);
  EXPECT_EQ(all[1].superstep, 0);
  EXPECT_EQ(all[1].worker, 1);
  EXPECT_EQ(all[2].superstep, 1);
  EXPECT_EQ(all[2].worker, 1);
  EXPECT_EQ(Total(all, &SuperstepSample::compute_us), 22);
}

TEST(ReportTest, RunReportJsonContainsMetricsAndTimeline) {
  RunReport report;
  report.supersteps = 3;
  report.converged = true;
  report.computation_seconds = 0.25;
  report.metrics["engine.barrier_wait_us.p95"] = 120;
  SuperstepSample s;
  s.superstep = 0;
  s.worker = 1;
  s.compute_us = 99;
  report.timeline.push_back(s);

  const std::string json = RunReportToJson(report);
  JsonCursor cursor(json);
  ASSERT_TRUE(cursor.ValidValue()) << json;
  EXPECT_NE(json.find("\"supersteps\":3"), std::string::npos);
  EXPECT_NE(json.find("\"converged\":true"), std::string::npos);
  EXPECT_NE(json.find("\"engine.barrier_wait_us.p95\":120"),
            std::string::npos);
  EXPECT_NE(json.find("\"compute_us\":99"), std::string::npos);
  // No introspection fields set: the section is omitted entirely.
  EXPECT_EQ(json.find("\"introspection\""), std::string::npos);
}

TEST_F(TraceTest, FlowEventsPairSendAndReceiveByIdInExport) {
  const uint64_t id = Tracer::NextFlowId();
  EXPECT_GT(id, 0u);
  Tracer::Get().RecordFlow("net.batch_flow", 's', id);
  Tracer::Get().RecordFlow("net.batch_flow", 'f', id);
  EXPECT_EQ(Tracer::Get().event_count(), 2);
  const std::string json = Tracer::Get().ToChromeTraceJson();
  const std::string idstr = "\"id\":" + std::to_string(id);
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"cat\":\"flow\""), std::string::npos) << json;
  // Binding point "e" makes the arrow terminate at the enclosing slice.
  EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos) << json;
  // Both ends carry the same id.
  const size_t first = json.find(idstr);
  ASSERT_NE(first, std::string::npos) << json;
  EXPECT_NE(json.find(idstr, first + 1), std::string::npos) << json;
}

TEST(FlowIdTest, IdsAreUniqueAcrossThreads) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::vector<uint64_t>> ids(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ids, t] {
      for (int i = 0; i < kPerThread; ++i) {
        ids[t].push_back(Tracer::NextFlowId());
      }
    });
  }
  for (auto& t : threads) t.join();
  std::vector<uint64_t> all;
  for (const auto& v : ids) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end());
}

TEST(ReportTest, IntrospectionSectionRendersWhenPopulated) {
  RunReport report;
  report.supersteps = 1;
  report.resource_kind = "partition";
  report.introspect_snapshots = 4;
  report.introspect_stalls = 1;
  report.introspect_deadlocks = 0;
  report.introspect_incidents.push_back("stall: no progress for 2000ms");
  ContentionEntry c;
  c.resource = 12;
  c.count = 3;
  c.total_wait_us = 4500;
  c.max_wait_us = 2000;
  report.contention.push_back(c);
  EdgeContentionEntry e;
  e.waiter = 12;
  e.blocker = 13;
  e.count = 3;
  e.total_wait_us = 4500;
  report.contention_edges.push_back(e);

  const std::string json = RunReportToJson(report);
  JsonCursor cursor(json);
  ASSERT_TRUE(cursor.ValidValue()) << json;
  EXPECT_NE(json.find("\"introspection\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"resource_kind\":\"partition\""), std::string::npos);
  EXPECT_NE(json.find("\"snapshots\":4"), std::string::npos);
  EXPECT_NE(json.find("\"stalls\":1"), std::string::npos);
  EXPECT_NE(json.find("\"resource\":12"), std::string::npos);
  EXPECT_NE(json.find("\"blocker\":13"), std::string::npos);
  EXPECT_NE(json.find("stall: no progress"), std::string::npos);
}

TEST(ReportTest, PrometheusTextSanitizesNamesAndPrefixes) {
  std::map<std::string, int64_t> metrics;
  metrics["net.wire_bytes"] = 4096;
  metrics["sync.fork_wait_us.p95"] = 120;  // lone quantile: no family
  const std::string text = MetricsToPrometheusText(metrics);
  // Each metric gets a "# TYPE" header and a "name value\n" line,
  // serigraph_-prefixed, with all chars outside the Prometheus charset
  // mapped to underscores. An incomplete histogram family (here only
  // .p95, no .p50/.max/.count/.sum siblings) degrades to a plain metric.
  EXPECT_NE(text.find("# TYPE serigraph_net_wire_bytes counter\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("serigraph_net_wire_bytes 4096\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("serigraph_sync_fork_wait_us_p95 120\n"),
            std::string::npos)
      << text;
}

TEST(ReportTest, PrometheusTextRendersHistogramFamiliesAsSummaries) {
  std::map<std::string, int64_t> metrics;
  metrics["sync.fork_wait_us.p50"] = 40;
  metrics["sync.fork_wait_us.p95"] = 120;
  metrics["sync.fork_wait_us.max"] = 300;
  metrics["sync.fork_wait_us.count"] = 10;
  metrics["sync.fork_wait_us.sum"] = 500;
  metrics["net.peak_inbox_depth"] = 7;
  const std::string text = MetricsToPrometheusText(metrics);
  // A complete .p50/.p95/.max/.count/.sum family renders once as a
  // Prometheus summary (quantile labels + _count/_sum) plus a _max
  // gauge, not as five opaque counters.
  EXPECT_NE(text.find("# TYPE serigraph_sync_fork_wait_us summary\n"),
            std::string::npos)
      << text;
  EXPECT_NE(
      text.find("serigraph_sync_fork_wait_us{quantile=\"0.5\"} 40\n"),
      std::string::npos)
      << text;
  EXPECT_NE(
      text.find("serigraph_sync_fork_wait_us{quantile=\"0.95\"} 120\n"),
      std::string::npos)
      << text;
  EXPECT_NE(text.find("serigraph_sync_fork_wait_us_count 10\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("serigraph_sync_fork_wait_us_sum 500\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE serigraph_sync_fork_wait_us_max gauge\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("serigraph_sync_fork_wait_us_max 300\n"),
            std::string::npos)
      << text;
  // Known point-in-time metrics are typed gauge, not counter.
  EXPECT_NE(text.find("# TYPE serigraph_net_peak_inbox_depth gauge\n"),
            std::string::npos)
      << text;
  // The raw dotted keys must not leak through alongside the summary.
  EXPECT_EQ(text.find("serigraph_sync_fork_wait_us_p50"), std::string::npos)
      << text;
}

}  // namespace
}  // namespace serigraph
