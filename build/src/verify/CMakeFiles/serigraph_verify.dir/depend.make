# Empty dependencies file for serigraph_verify.
# This may be replaced when dependencies are built.
