#ifndef SERIGRAPH_BENCH_FIG6_COMMON_H_
#define SERIGRAPH_BENCH_FIG6_COMMON_H_

// Shared driver for the paper's Figure 6 reproduction benches: one
// algorithm, the dataset stand-ins x {16, 32} workers x the three
// technique/system combinations evaluated in Section 7:
//   * dual-layer token passing  (Giraph async)
//   * partition-based locking   (Giraph async)   <- the contribution
//   * vertex-based locking      (GraphLab async stand-in)
// Computation time is the paper's metric (superstep loop only). Every
// run is validated by the caller-supplied checker.

#include <cstdio>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "harness/datasets.h"
#include "harness/runner.h"
#include "harness/table.h"
#include "obs/introspect.h"
#include "obs/timeline.h"

namespace serigraph {

struct Fig6Cell {
  std::string dataset;
  int workers = 0;
  SyncMode sync = SyncMode::kNone;
  RunStats stats;
  bool valid = false;
};

/// Runs `run(graph, config)` over the full evaluation grid and prints the
/// figure's table. `run` returns (stats, valid).
inline void RunFig6Grid(
    const std::string& title, const std::string& paper_expectation,
    bool undirected,
    const std::function<std::pair<RunStats, bool>(const Graph&,
                                                  const RunConfig&)>& run) {
  PrintHeader(std::cout, title);
  std::printf("paper expectation: %s\n", paper_expectation.c_str());
  std::printf("(synthetic stand-ins; absolute times are not comparable to "
              "the paper's EC2 cluster,\n shapes and ratios are — see "
              "EXPERIMENTS.md)\n\n");

  const SyncMode kModes[] = {SyncMode::kDualLayerToken,
                             SyncMode::kPartitionLocking,
                             SyncMode::kVertexLocking};
  TablePrinter table({"dataset", "workers", "technique", "time", "supersteps",
                      "ctrl msgs", "wire MB", "valid", "vs partition",
                      "fork/compute"});
  std::vector<SuperstepSample> last_timeline;
  std::string last_timeline_label;
  for (const DatasetSpec& spec : StandInSpecs()) {
    if (spec.name == "AR'") continue;  // like the paper's main text
    Graph graph =
        undirected ? MakeUndirectedDataset(spec) : MakeDataset(spec);
    for (int workers : {16, 32}) {
      double partition_time = 0.0;
      std::vector<Fig6Cell> cells;
      std::vector<ContentionEntry> last_contention;
      std::string last_contention_kind;
      for (SyncMode sync : kModes) {
        RunConfig config;
        config.sync_mode = sync;
        config.num_workers = workers;
        config.network = BenchNetwork();
        // Introspection on for every cell (uniform overhead: enabling it
        // only for some techniques would bias the comparison).
        config.introspect = true;
        auto [stats, valid] = run(graph, config);
        Fig6Cell cell;
        cell.dataset = spec.name;
        cell.workers = workers;
        cell.sync = sync;
        cell.stats = stats;
        cell.valid = valid;
        cells.push_back(cell);
        if (sync == SyncMode::kPartitionLocking) {
          partition_time = stats.computation_seconds;
          last_timeline = stats.timeline;
          last_timeline_label = spec.name + ", " +
                                std::to_string(workers) + " workers, " +
                                SyncModeName(sync);
          last_contention = stats.contention;
          last_contention_kind = stats.resource_kind;
        }
      }
      // Contention top-K for the contribution technique: which resources
      // the fork waits concentrated on in this configuration.
      if (!last_contention.empty()) {
        std::printf("hottest %ss (%s, %d workers, %s):",
                    last_contention_kind.c_str(), spec.name.c_str(), workers,
                    SyncModeName(SyncMode::kPartitionLocking));
        int shown = 0;
        for (const auto& e : last_contention) {
          if (++shown > 5) break;
          std::printf("  %lld(%lldus/%lld)", (long long)e.resource,
                      (long long)e.total_wait_us, (long long)e.count);
        }
        std::printf("\n");
      }
      for (const Fig6Cell& cell : cells) {
        // Where did the time go? Fork-wait share approximates the
        // synchronization overhead of the locking techniques (Section 7.3).
        const int64_t compute_us =
            Total(cell.stats.timeline, &SuperstepSample::compute_us);
        const int64_t fork_us =
            Total(cell.stats.timeline, &SuperstepSample::fork_wait_us);
        char fork_share[32];
        std::snprintf(fork_share, sizeof(fork_share), "%.1f%%",
                      compute_us > 0
                          ? 100.0 * static_cast<double>(fork_us) /
                                static_cast<double>(compute_us)
                          : 0.0);
        table.AddRow(
            {cell.dataset, std::to_string(cell.workers),
             SyncModeName(cell.sync),
             TablePrinter::Seconds(cell.stats.computation_seconds),
             std::to_string(cell.stats.supersteps),
             TablePrinter::Count(cell.stats.Metric("net.control_messages")),
             std::to_string(cell.stats.Metric("net.wire_bytes") / 1048576) +
                 " MB",
             cell.valid ? "yes" : "NO",
             TablePrinter::Ratio(cell.stats.computation_seconds /
                                 partition_time),
             fork_share});
      }
    }
  }
  table.Print(std::cout);
  std::printf("fork/compute: fork-acquire wait as a share of compute time "
              "(both summed over workers;\n waits are per compute thread, "
              "so >100%% means threads mostly blocked on forks)\n");

  // One per-superstep breakdown per grid, for the contribution technique's
  // last configuration: shows how phase costs evolve over the run.
  if (!last_timeline.empty()) {
    std::printf("\nper-superstep timeline (%s):\n",
                last_timeline_label.c_str());
    PrintTimeline(std::cout, last_timeline);
  }
}

/// Expands the convenience flag `--json=FILE` into the Google Benchmark
/// equivalents (`--benchmark_out=FILE --benchmark_out_format=json`),
/// passing everything else through untouched. Pure string rewriting —
/// this header is shared with the fig6-style benches, which do not link
/// the benchmark library, so it must not include <benchmark/benchmark.h>.
/// `storage` owns the rewritten strings; the returned pointers alias it.
inline std::vector<char*> ExpandJsonFlag(int argc, char** argv,
                                         std::vector<std::string>* storage) {
  storage->clear();
  storage->reserve(static_cast<size_t>(argc) + 1);
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      storage->push_back("--benchmark_out=" + arg.substr(7));
      storage->push_back("--benchmark_out_format=json");
    } else {
      storage->push_back(arg);
    }
  }
  std::vector<char*> out;
  out.reserve(storage->size() + 1);
  for (std::string& s : *storage) out.push_back(s.data());
  out.push_back(nullptr);
  return out;
}

}  // namespace serigraph

#endif  // SERIGRAPH_BENCH_FIG6_COMMON_H_
