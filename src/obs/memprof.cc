#include "obs/memprof.h"

#include <cstdio>
#include <cstring>

#if defined(__linux__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace serigraph {

MemoryStatus ReadMemoryStatus() {
  MemoryStatus s;
#if defined(__linux__)
  FILE* f = fopen("/proc/self/status", "r");
  if (f != nullptr) {
    char line[256];
    while (fgets(line, sizeof(line), f) != nullptr) {
      long long kb = 0;
      if (sscanf(line, "VmRSS: %lld kB", &kb) == 1) {
        s.rss_kb = kb;
      } else if (sscanf(line, "VmHWM: %lld kB", &kb) == 1) {
        s.peak_rss_kb = kb;
      }
      if (s.rss_kb > 0 && s.peak_rss_kb > 0) break;
    }
    fclose(f);
  }
#endif
#if defined(__linux__) || defined(__APPLE__)
  if (s.peak_rss_kb == 0) {
    struct rusage ru;
    if (getrusage(RUSAGE_SELF, &ru) == 0) {
#if defined(__APPLE__)
      s.peak_rss_kb = ru.ru_maxrss / 1024;  // bytes on macOS
#else
      s.peak_rss_kb = ru.ru_maxrss;  // KiB on Linux
#endif
    }
  }
  if (s.rss_kb == 0) s.rss_kb = s.peak_rss_kb;
#endif
  return s;
}

}  // namespace serigraph
