#!/usr/bin/env python3
"""Diff two BENCH.json reports (bench/harness.h schema v2) for regressions.

Usage:
  bench_compare.py [--threshold=0.15] [--allow-env-mismatch] BASELINE CURRENT
  bench_compare.py --merge OUT IN [IN ...]

Compare mode joins cells by name and compares medians after normalizing
units to nanoseconds. The per-cell tolerance is noise-aware: a cell must
regress by more than max(--threshold, observed relative spread of either
report's repetitions) to fail. Cells present in only one report are
reported but never fatal — grids grow and shrink across PRs.

The environment fingerprint gates comparability: differing build_type or
sanitizers make timing diffs meaningless, so they fail fast (exit 2)
unless --allow-env-mismatch is given. A differing CPU model only warns.

Merge mode concatenates the cells of several reports (e.g. one per bench
binary) into a single baseline file, keeping the first report's
environment; duplicate cell names keep the last occurrence.

Exit codes: 0 = no regression, 1 = regression, 2 = schema/usage/env error.
"""

import json
import sys

SCHEMA_VERSION = 2

UNIT_TO_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def fail_usage(msg):
    sys.stderr.write("bench_compare: %s\n" % msg)
    sys.stderr.write(__doc__)
    sys.exit(2)


def load_report(path):
    try:
        with open(path) as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.stderr.write("bench_compare: cannot read %s: %s\n" % (path, e))
        sys.exit(2)
    version = report.get("schema_version")
    if version != SCHEMA_VERSION:
        sys.stderr.write(
            "bench_compare: %s has schema_version %r, want %d "
            "(results/README.md describes the schema history)\n"
            % (path, version, SCHEMA_VERSION))
        sys.exit(2)
    if not isinstance(report.get("cells"), list):
        sys.stderr.write("bench_compare: %s has no cells array\n" % path)
        sys.exit(2)
    return report


def to_ns(cell, path):
    unit = cell.get("unit", "ns")
    if unit not in UNIT_TO_NS:
        sys.stderr.write("bench_compare: %s cell %r has unknown unit %r\n"
                         % (path, cell.get("name"), unit))
        sys.exit(2)
    scale = UNIT_TO_NS[unit]
    return (cell.get("median", 0.0) * scale,
            cell.get("min", 0.0) * scale,
            cell.get("max", 0.0) * scale)


def rel_spread(median, lo, hi):
    """Observed relative noise of a cell: (max-min)/median."""
    if median <= 0:
        return 0.0
    return (hi - lo) / median


def check_env(base, cur, allow_mismatch):
    base_env = base.get("environment", {})
    cur_env = cur.get("environment", {})
    hard_keys = ["build_type", "sanitizers"]
    soft_keys = ["cpu_model", "cores", "governor", "compiler", "perf_hw"]
    ok = True
    for key in hard_keys:
        if base_env.get(key) != cur_env.get(key):
            sys.stderr.write(
                "bench_compare: environment mismatch on %s: baseline=%r "
                "current=%r — timings are not comparable\n"
                % (key, base_env.get(key), cur_env.get(key)))
            ok = False
    for key in soft_keys:
        if base_env.get(key) != cur_env.get(key):
            print("note: environment differs on %s: baseline=%r current=%r"
                  % (key, base_env.get(key), cur_env.get(key)))
    if not ok and not allow_mismatch:
        sys.stderr.write(
            "bench_compare: refusing to compare "
            "(--allow-env-mismatch overrides)\n")
        sys.exit(2)


def compare(baseline_path, current_path, threshold, allow_mismatch):
    base = load_report(baseline_path)
    cur = load_report(current_path)
    check_env(base, cur, allow_mismatch)

    base_cells = {c["name"]: c for c in base["cells"] if "name" in c}
    cur_cells = {c["name"]: c for c in cur["cells"] if "name" in c}

    regressions = []
    improvements = []
    compared = 0
    for name in sorted(base_cells):
        if name not in cur_cells:
            print("skip (missing in current): %s" % name)
            continue
        b_med, b_lo, b_hi = to_ns(base_cells[name], baseline_path)
        c_med, c_lo, c_hi = to_ns(cur_cells[name], current_path)
        if b_med <= 0:
            print("skip (zero baseline median): %s" % name)
            continue
        compared += 1
        change = (c_med - b_med) / b_med
        allowed = max(threshold,
                      rel_spread(b_med, b_lo, b_hi),
                      rel_spread(c_med, c_lo, c_hi))
        line = "%-60s %12.0f -> %12.0f ns  %+6.1f%% (tol %.0f%%)" % (
            name, b_med, c_med, 100.0 * change, 100.0 * allowed)
        if change > allowed:
            regressions.append(line)
            print("REGRESSION " + line)
        elif change < -allowed:
            improvements.append(line)
            print("improved   " + line)
        else:
            print("ok         " + line)
    for name in sorted(set(cur_cells) - set(base_cells)):
        print("new cell (no baseline): %s" % name)

    print("\n%d cells compared, %d regressions, %d improvements"
          % (compared, len(regressions), len(improvements)))
    if compared == 0:
        sys.stderr.write("bench_compare: no overlapping cells — "
                         "are these reports from the same benches?\n")
        sys.exit(2)
    return 1 if regressions else 0


def merge(out_path, in_paths):
    merged = None
    cells = {}
    order = []
    for path in in_paths:
        report = load_report(path)
        if merged is None:
            merged = report
        for cell in report["cells"]:
            name = cell.get("name")
            if name is None:
                continue
            if name in cells:
                print("note: duplicate cell %s (keeping %s)" % (name, path))
            else:
                order.append(name)
            cells[name] = cell
    merged["cells"] = [cells[name] for name in order]
    with open(out_path, "w") as f:
        json.dump(merged, f, indent=2)
        f.write("\n")
    print("merged %d cells from %d reports into %s"
          % (len(order), len(in_paths), out_path))
    return 0


def main(argv):
    threshold = 0.15
    allow_mismatch = False
    do_merge = False
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--threshold="):
            try:
                threshold = float(arg.split("=", 1)[1])
            except ValueError:
                fail_usage("bad --threshold value")
        elif arg == "--allow-env-mismatch":
            allow_mismatch = True
        elif arg == "--merge":
            do_merge = True
        elif arg in ("-h", "--help"):
            print(__doc__)
            return 0
        elif arg.startswith("-"):
            fail_usage("unknown flag %s" % arg)
        else:
            paths.append(arg)
    if do_merge:
        if len(paths) < 2:
            fail_usage("--merge needs OUT and at least one IN")
        return merge(paths[0], paths[1:])
    if len(paths) != 2:
        fail_usage("need exactly BASELINE and CURRENT")
    return compare(paths[0], paths[1], threshold, allow_mismatch)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
