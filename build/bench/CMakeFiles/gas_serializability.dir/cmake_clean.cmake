file(REMOVE_RECURSE
  "CMakeFiles/gas_serializability.dir/gas_serializability.cc.o"
  "CMakeFiles/gas_serializability.dir/gas_serializability.cc.o.d"
  "gas_serializability"
  "gas_serializability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gas_serializability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
