# Empty compiler generated dependencies file for serigraph_graph.
# This may be replaced when dependencies are built.
