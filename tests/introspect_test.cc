// Tests for the sync-layer introspection subsystem: wait-for graph cycle
// detection, beacon publication, contention attribution, the stall/deadlock
// watchdog, JSONL streaming, the abort channel through ChandyMisraTable,
// and end-to-end engine integration. The beacon concurrency test is the
// TSan guard for the lock-free beacon design.

#include "obs/introspect.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "algos/sssp.h"
#include "graph/generators.h"
#include "net/transport.h"
#include "obs/watchdog.h"
#include "pregel/engine.h"
#include "sync/chandy_misra.h"

namespace serigraph {
namespace {

using WaitTarget = Introspector::WaitTarget;

// A fresh Configure also clears contention and the abort flag, so every
// test starts from a clean singleton.
void Reconfigure(int workers, const std::string& kind = "partition") {
  Introspector::Get().Disable();
  Introspector::Get().Configure(workers, kind);
  Introspector::Get().Enable();
}

struct IntrospectorGuard {
  ~IntrospectorGuard() { Introspector::Get().Disable(); }
};

// --- wait-for graph ------------------------------------------------------

WaitForEdge Edge(int from, int to, int64_t waiter = 0, int64_t resource = 0,
                 int64_t waited_us = 10) {
  WaitForEdge e;
  e.from = from;
  e.to = to;
  e.waiter = waiter;
  e.resource = resource;
  e.waited_us = waited_us;
  return e;
}

TEST(WaitForGraphTest, PlantedCycleIsFound) {
  WaitForGraph g;
  g.num_workers = 4;
  g.edges = {Edge(0, 1), Edge(1, 2), Edge(2, 0), Edge(3, 1)};
  std::vector<int> cycle = FindWorkerCycle(g);
  ASSERT_EQ(cycle.size(), 3u);
  // The cycle contains exactly workers {0,1,2} in ring order.
  std::vector<int> sorted = cycle;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<int>{0, 1, 2}));
  for (size_t i = 0; i < cycle.size(); ++i) {
    const int from = cycle[i];
    const int to = cycle[(i + 1) % cycle.size()];
    EXPECT_EQ((from + 1) % 3, to) << "not a ring: " << from << "->" << to;
  }
}

TEST(WaitForGraphTest, DagHasNoCycle) {
  WaitForGraph g;
  g.num_workers = 4;
  g.edges = {Edge(0, 1), Edge(0, 2), Edge(1, 3), Edge(2, 3)};
  EXPECT_TRUE(FindWorkerCycle(g).empty());
}

TEST(WaitForGraphTest, SelfLoopsAreIgnored) {
  WaitForGraph g;
  g.num_workers = 2;
  g.edges = {Edge(0, 0), Edge(1, 1), Edge(0, 1)};
  EXPECT_TRUE(FindWorkerCycle(g).empty());
}

TEST(WaitForGraphTest, TwoWorkerCycle) {
  WaitForGraph g;
  g.num_workers = 2;
  g.edges = {Edge(0, 1, 3, 7), Edge(1, 0, 7, 3)};
  std::vector<int> cycle = FindWorkerCycle(g);
  ASSERT_EQ(cycle.size(), 2u);
}

TEST(WaitForGraphTest, JsonAndSummaryRenderEdges) {
  WaitForGraph g;
  g.num_workers = 2;
  g.edges = {Edge(0, 1, 5, 7, 120)};
  const std::string json = WaitForEdgesJson(g);
  EXPECT_NE(json.find("\"from\":0"), std::string::npos) << json;
  EXPECT_NE(json.find("\"to\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"waiter\":5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"resource\":7"), std::string::npos) << json;
  EXPECT_NE(json.find("\"waited_us\":120"), std::string::npos) << json;
  const std::string summary = WaitForGraphSummary(g);
  EXPECT_FALSE(summary.empty());
  EXPECT_NE(summary.find("w0"), std::string::npos) << summary;
  EXPECT_NE(summary.find("w1"), std::string::npos) << summary;
}

// --- beacons -------------------------------------------------------------

TEST(IntrospectorTest, BeaconPublishesWaitTargetsAndClearsOnEnd) {
  IntrospectorGuard guard;
  Reconfigure(2);
  Introspector& in = Introspector::Get();

  WaitTarget targets[2];
  targets[0] = {7, 1};
  targets[1] = {9, 0};
  in.BeginAcquire(/*w=*/0, /*resource=*/5, targets, 2, 2);

  BeaconSnapshot snap = in.ReadBeacon(0);
  EXPECT_EQ(snap.phase, WorkerPhase::kForkWait);
  EXPECT_EQ(snap.acquiring, 5);
  ASSERT_EQ(snap.wait_count, 2);
  EXPECT_EQ(snap.wait_total, 2);
  EXPECT_EQ(snap.wait_resource[0], 7);
  EXPECT_EQ(snap.wait_owner[0], 1);
  EXPECT_EQ(snap.wait_resource[1], 9);
  EXPECT_EQ(snap.wait_owner[1], 0);

  WaitForGraph g = in.BuildWaitForGraph();
  ASSERT_EQ(g.edges.size(), 2u);
  EXPECT_EQ(g.edges[0].from, 0);
  EXPECT_EQ(g.edges[0].to, 1);
  EXPECT_EQ(g.edges[0].waiter, 5);
  EXPECT_EQ(g.edges[0].resource, 7);

  const uint64_t epoch_before = snap.progress_epoch;
  in.EndAcquire(0, 5, /*wait_us=*/200, /*acquired=*/true);
  snap = in.ReadBeacon(0);
  EXPECT_EQ(snap.phase, WorkerPhase::kCompute);
  EXPECT_EQ(snap.acquiring, -1);
  EXPECT_EQ(snap.wait_count, 0);
  EXPECT_EQ(snap.progress_epoch, epoch_before + 1);
  EXPECT_TRUE(in.BuildWaitForGraph().edges.empty());
}

TEST(IntrospectorTest, AbandonedAcquireDoesNotCountProgress) {
  IntrospectorGuard guard;
  Reconfigure(1);
  Introspector& in = Introspector::Get();
  WaitTarget t{3, 0};
  in.BeginAcquire(0, 2, &t, 1, 1);
  const uint64_t epoch = in.ReadBeacon(0).progress_epoch;
  in.EndAcquire(0, 2, 50, /*acquired=*/false);
  EXPECT_EQ(in.ReadBeacon(0).progress_epoch, epoch);
  // The wait is still attributed to the contention profile.
  auto top = in.ContentionTopK(10);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].resource, 2);
  EXPECT_EQ(top[0].total_wait_us, 50);
}

TEST(IntrospectorTest, ContentionTopKOrdersByTotalWaitAndTruncates) {
  IntrospectorGuard guard;
  Reconfigure(2, "vertex");
  Introspector& in = Introspector::Get();
  in.RecordWait(0, /*resource=*/1, 100);
  in.RecordWait(0, /*resource=*/2, 700);
  in.RecordWait(1, /*resource=*/2, 300);  // merged across shards
  in.RecordWait(1, /*resource=*/3, 400);
  auto top = in.ContentionTopK(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].resource, 2);
  EXPECT_EQ(top[0].total_wait_us, 1000);
  EXPECT_EQ(top[0].count, 2);
  EXPECT_EQ(top[1].resource, 3);
  auto all = in.ContentionTopK(10);
  EXPECT_EQ(all.size(), 3u);
}

TEST(IntrospectorTest, EdgeContentionSplitsWaitAcrossBlockers) {
  IntrospectorGuard guard;
  Reconfigure(1);
  Introspector& in = Introspector::Get();
  WaitTarget targets[2] = {{7, 0}, {9, 0}};
  in.BeginAcquire(0, 5, targets, 2, 2);
  in.EndAcquire(0, 5, /*wait_us=*/100, true);
  auto edges = in.EdgeContentionTopK(10);
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0].waiter, 5);
  EXPECT_EQ(edges[0].total_wait_us, 50);
  EXPECT_EQ(edges[1].waiter, 5);
}

TEST(IntrospectorTest, QueueProbeFillsBeaconDepths) {
  IntrospectorGuard guard;
  Reconfigure(1);
  Introspector& in = Introspector::Get();
  in.SetQueueProbe([](WorkerId w, int64_t* inbox, int64_t* outbox) {
    *inbox = 4 + w;
    *outbox = 1024;
  });
  BeaconSnapshot snap = in.ReadBeacon(0);
  EXPECT_EQ(snap.inbox_depth, 4);
  EXPECT_EQ(snap.outbox_bytes, 1024);
  in.ClearQueueProbe();
  snap = in.ReadBeacon(0);
  EXPECT_EQ(snap.inbox_depth, 0);
}

TEST(IntrospectorTest, FirstAbortReasonWins) {
  IntrospectorGuard guard;
  Reconfigure(1);
  Introspector& in = Introspector::Get();
  EXPECT_FALSE(in.abort_requested());
  in.RequestAbort("first");
  in.RequestAbort("second");
  EXPECT_TRUE(in.abort_requested());
  EXPECT_EQ(in.abort_reason(), "first");
  // Configure clears the channel for the next run.
  in.Configure(1, "partition");
  EXPECT_FALSE(in.abort_requested());
  EXPECT_EQ(in.abort_reason(), "");
}

// The TSan guard: worker threads hammer their own beacons while a reader
// concurrently samples all of them; any non-atomic access shows up under
// scripts/check.sh.
TEST(IntrospectorTest, BeaconConcurrencyIsRaceFree) {
  IntrospectorGuard guard;
  const int kWorkers = 4;
  Reconfigure(kWorkers);
  Introspector& in = Introspector::Get();
  std::atomic<bool> stop{false};

  std::vector<std::thread> writers;
  for (int w = 0; w < kWorkers; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < 3000; ++i) {
        in.SetPhase(w, WorkerPhase::kCompute, i);
        in.OnProgress(w);
        WaitTarget targets[3] = {{(w + 1) % kWorkers, (w + 1) % kWorkers},
                                 {int64_t(i % 11), (w + 2) % kWorkers},
                                 {int64_t(i % 7), w}};
        in.BeginAcquire(w, i % 13, targets, 3, 5);
        in.EndAcquire(w, i % 13, i % 50, (i % 3) != 0);
        in.SetTokenHolder(w, i % kWorkers);
      }
    });
  }
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      for (int w = 0; w < kWorkers; ++w) (void)in.ReadBeacon(w);
      (void)in.BuildWaitForGraph();
      (void)in.ContentionTopK(5);
      (void)in.EdgeContentionTopK(5);
    }
  });
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_GT(in.ContentionTopK(1).size(), 0u);
}

// --- watchdog ------------------------------------------------------------

TEST(WatchdogTest, FlagsStallWhenBlockedWithoutProgress) {
  IntrospectorGuard guard;
  Reconfigure(2);
  Introspector& in = Introspector::Get();
  // Worker 0 blocked on a fork owned by worker 1; worker 1 computing but
  // never progressing. No cycle (1 is not waiting), so this must surface
  // as a stall, not a deadlock.
  WaitTarget t{3, 1};
  in.BeginAcquire(0, 2, &t, 1, 1);
  in.SetPhase(1, WorkerPhase::kCompute, 0);

  WatchdogOptions opts;
  opts.period_ms = 5;
  opts.stall_ms = 30;
  Watchdog dog(opts);
  dog.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  dog.Stop();

  const WatchdogSummary& summary = dog.summary();
  EXPECT_GE(summary.snapshots, 2);
  EXPECT_GE(summary.stalls_flagged, 1);
  EXPECT_EQ(summary.deadlocks_detected, 0);
  ASSERT_FALSE(summary.incidents.empty());
  EXPECT_NE(summary.incidents[0].find("stall"), std::string::npos);
  EXPECT_FALSE(in.abort_requested());  // abort_on_stall off
}

TEST(WatchdogTest, ConfirmsPlantedDeadlockAndAborts) {
  IntrospectorGuard guard;
  Reconfigure(2);
  Introspector& in = Introspector::Get();
  // Planted wait-for cycle with frozen progress epochs: worker 0 waits on
  // a fork owned by worker 1 and vice versa. Chandy-Misra cannot produce
  // this; the watchdog must report it as a protocol bug within two
  // consecutive samples and (abort_on_stall) request a clean abort.
  WaitTarget t0{7, 1};
  in.BeginAcquire(0, 3, &t0, 1, 1);
  WaitTarget t1{3, 0};
  in.BeginAcquire(1, 7, &t1, 1, 1);

  WatchdogOptions opts;
  opts.period_ms = 5;
  opts.stall_ms = 10000;  // keep the stall detector out of the way
  opts.abort_on_stall = true;
  Watchdog dog(opts);
  dog.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  dog.Stop();

  const WatchdogSummary& summary = dog.summary();
  EXPECT_GE(summary.deadlocks_detected, 1);
  ASSERT_FALSE(summary.incidents.empty());
  EXPECT_NE(summary.incidents[0].find("deadlock"), std::string::npos);
  EXPECT_TRUE(in.abort_requested());
  EXPECT_NE(in.abort_reason().find("deadlock"), std::string::npos);
}

TEST(WatchdogTest, TransientCycleWithProgressIsNotADeadlock) {
  IntrospectorGuard guard;
  Reconfigure(2);
  Introspector& in = Introspector::Get();
  WaitTarget t0{7, 1};
  in.BeginAcquire(0, 3, &t0, 1, 1);
  WaitTarget t1{3, 0};
  in.BeginAcquire(1, 7, &t1, 1, 1);

  // Keep one involved worker's progress epoch moving: the cycle shape
  // persists but the frozen-epoch confirmation must never trigger.
  std::atomic<bool> stop{false};
  std::thread progress([&] {
    while (!stop.load(std::memory_order_acquire)) {
      in.OnProgress(0);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  WatchdogOptions opts;
  // Deadlock confirmation needs frozen epochs across two consecutive
  // samples, so the 1ms progress ticker above must land in every
  // 2*period window. period_ms=5 made that window 10ms, which a loaded
  // scheduler misses often enough to flake; 25ms gives the ticker a
  // 50ms budget while the 150ms run still spans several samples.
  opts.period_ms = 25;
  opts.stall_ms = 10000;
  Watchdog dog(opts);
  dog.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  dog.Stop();
  stop.store(true, std::memory_order_release);
  progress.join();

  EXPECT_EQ(dog.summary().deadlocks_detected, 0);
  EXPECT_EQ(dog.summary().stalls_flagged, 0);
}

TEST(WatchdogTest, StreamsParseableJsonlSnapshots) {
  IntrospectorGuard guard;
  Reconfigure(2);
  Introspector& in = Introspector::Get();
  WaitTarget t{3, 1};
  in.BeginAcquire(0, 2, &t, 1, 1);

  const std::string path =
      ::testing::TempDir() + "/introspect_snapshots.jsonl";
  WatchdogOptions opts;
  opts.period_ms = 5;
  opts.jsonl_path = path;
  {
    Watchdog dog(opts);
    dog.Start();
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    dog.Stop();
    EXPECT_GE(dog.summary().snapshots, 1);
  }

  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  std::string line;
  int snapshot_lines = 0;
  bool saw_final = false;
  bool saw_wait_edge = false;
  while (std::getline(file, line)) {
    ASSERT_FALSE(line.empty());
    // Structural JSONL check; full parsing is covered by the python
    // validator in scripts/check.sh --introspect.
    EXPECT_EQ(line.front(), '{') << line;
    EXPECT_EQ(line.back(), '}') << line;
    if (line.find("\"type\":\"snapshot\"") != std::string::npos) {
      ++snapshot_lines;
      EXPECT_NE(line.find("\"workers\":["), std::string::npos) << line;
      EXPECT_NE(line.find("\"phase\":"), std::string::npos) << line;
    }
    if (line.find("\"final\":true") != std::string::npos) saw_final = true;
    if (line.find("\"wait_for\":[{") != std::string::npos) {
      saw_wait_edge = true;
    }
  }
  EXPECT_GE(snapshot_lines, 1);
  EXPECT_TRUE(saw_final);  // Stop() always takes a final sample
  EXPECT_TRUE(saw_wait_edge);
  std::remove(path.c_str());
}

// --- abort through ChandyMisraTable --------------------------------------

// Minimal WorkerHandle that loops control messages through a Transport,
// mirroring tests/chandy_misra_test.cc.
class LoopbackHandle final : public WorkerHandle {
 public:
  LoopbackHandle(Transport* transport, WorkerId id)
      : transport_(transport), id_(id) {}
  void FlushRemoteTo(WorkerId) override {}
  void FlushAllRemote() override {}
  void SendControl(WorkerId dst, uint32_t tag, int64_t a, int64_t b,
                   int64_t c) override {
    WireMessage msg;
    msg.src = id_;
    msg.dst = dst;
    msg.kind = MessageKind::kControl;
    msg.tag = tag;
    msg.a = a;
    msg.b = b;
    msg.c = c;
    transport_->Send(std::move(msg));
  }
  WorkerId worker_id() const override { return id_; }

 private:
  Transport* transport_;
  WorkerId id_;
};

TEST(IntrospectAbortTest, BlockedAcquireReturnsFalseOnAbort) {
  IntrospectorGuard guard;
  Reconfigure(1);
  Introspector& in = Introspector::Get();

  // Two neighboring philosophers on one worker. Philosopher 1 starts with
  // the shared fork (larger id, acyclic initial placement) and eats;
  // philosopher 0's Acquire blocks until the abort arrives.
  MetricRegistry metrics;
  Transport transport(1, NetworkOptions{}, &metrics);
  ChandyMisraTable::Config config;
  config.count = 2;
  config.adjacency = {{1}, {0}};
  config.worker_of = [](int64_t) { return WorkerId{0}; };
  config.num_workers = 1;
  config.request_tag = 1;
  config.transfer_tag = 2;
  config.metrics = &metrics;
  ChandyMisraTable table(std::move(config));
  LoopbackHandle handle(&transport, 0);
  table.BindWorker(0, &handle);
  std::thread pump([&] {
    while (auto msg = transport.Receive(0)) table.HandleControl(0, *msg);
  });

  ASSERT_TRUE(table.Acquire(1));  // holds the shared fork, eating

  std::atomic<bool> acquire_returned{false};
  bool acquire_result = true;
  std::thread blocked([&] {
    acquire_result = table.Acquire(0);  // fork held by eating neighbor
    acquire_returned.store(true, std::memory_order_release);
  });

  // Let it actually block (the wait loop polls the abort flag every
  // 100ms), then abort.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(acquire_returned.load(std::memory_order_acquire));
  in.RequestAbort("test abort");
  blocked.join();
  EXPECT_FALSE(acquire_result);

  // The abandoned acquire left philosopher 0 thinking with no forks held:
  // releasing the neighbor must not trip any protocol invariant.
  table.Release(1);
  transport.Shutdown();
  pump.join();
}

// --- engine integration --------------------------------------------------

TEST(IntrospectEngineTest, RunReportCarriesSnapshotsAndContention) {
  IntrospectorGuard guard;
  auto g = Graph::FromEdgeList(Ring(64));
  ASSERT_TRUE(g.ok());
  EngineOptions opts;
  opts.model = ComputationModel::kAsync;
  opts.sync_mode = SyncMode::kPartitionLocking;
  opts.num_workers = 2;
  opts.partitions_per_worker = 2;
  opts.compute_threads_per_worker = 1;
  opts.introspect = true;
  opts.watchdog.period_ms = 2;
  Engine<Sssp> engine(&*g, opts);
  auto result = engine.Run(Sssp(0));
  ASSERT_TRUE(result.ok()) << result.status();
  const RunStats& stats = result->stats;
  EXPECT_TRUE(stats.converged);
  EXPECT_EQ(stats.resource_kind, "partition");
  EXPECT_GE(stats.introspect_snapshots, 1);
  // A healthy Chandy-Misra run must never be reported as deadlocked.
  EXPECT_EQ(stats.introspect_deadlocks, 0);
  EXPECT_EQ(stats.introspect_stalls, 0);
  EXPECT_EQ(result->values, ReferenceSssp(*g, 0));
  // Correct answer => introspection did not perturb the run.
  const std::string json = RunStatsToJson(stats);
  EXPECT_NE(json.find("\"introspection\""), std::string::npos);
  EXPECT_NE(json.find("\"snapshots\""), std::string::npos);
}

// A program whose vertex 0 naps long enough for the watchdog to confirm a
// global stall: every other worker parks at the barrier with the progress
// sum frozen while vertex 0 sleeps.
struct NappingSssp {
  using VertexValue = int64_t;
  using Message = int64_t;

  static Message Combine(const Message& a, const Message& b) {
    return a < b ? a : b;
  }
  VertexValue InitialValue(VertexId, const Graph&) const {
    return kInfiniteDistance;
  }
  template <typename Ctx>
  void Compute(Ctx& ctx, std::span<const Message> messages) const {
    if (ctx.id() == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(400));
    }
    int64_t best = ctx.value();
    if (ctx.id() == 0 && best == kInfiniteDistance) best = 0;
    for (Message m : messages) best = m < best ? m : best;
    if (best < ctx.value()) {
      ctx.set_value(best);
      ctx.SendToAllOutNeighbors(best + 1);
    }
    ctx.VoteToHalt();
  }
};

TEST(IntrospectEngineTest, WatchdogStallAbortYieldsAbortedStatus) {
  IntrospectorGuard guard;
  auto g = Graph::FromEdgeList(Ring(64));
  ASSERT_TRUE(g.ok());
  EngineOptions opts;
  opts.model = ComputationModel::kAsync;
  opts.sync_mode = SyncMode::kPartitionLocking;
  opts.num_workers = 2;
  opts.partitions_per_worker = 2;
  opts.compute_threads_per_worker = 1;
  opts.introspect = true;
  opts.watchdog.period_ms = 5;
  opts.watchdog.stall_ms = 50;
  opts.watchdog.abort_on_stall = true;
  Engine<NappingSssp> engine(&*g, opts);
  auto result = engine.Run(NappingSssp());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kAborted)
      << result.status();
  EXPECT_NE(result.status().ToString().find("stall"), std::string::npos)
      << result.status();
}

}  // namespace
}  // namespace serigraph
