# Empty compiler generated dependencies file for giraphx_comparison.
# This may be replaced when dependencies are built.
