file(REMOVE_RECURSE
  "CMakeFiles/fig23_nontermination.dir/fig23_nontermination.cc.o"
  "CMakeFiles/fig23_nontermination.dir/fig23_nontermination.cc.o.d"
  "fig23_nontermination"
  "fig23_nontermination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig23_nontermination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
