#include "common/threading.h"

#include "common/logging.h"

namespace serigraph {

CyclicBarrier::CyclicBarrier(int parties) : parties_(parties) {
  SG_CHECK_GT(parties, 0);
}

bool CyclicBarrier::Await() {
  std::unique_lock<std::mutex> lock(mu_);
  uint64_t gen = generation_;
  if (++waiting_ == parties_) {
    waiting_ = 0;
    ++generation_;
    cv_.notify_all();
    return true;
  }
  cv_.wait(lock, [&] { return generation_ != gen; });
  return false;
}

void CountDownLatch::CountDown() {
  std::lock_guard<std::mutex> lock(mu_);
  if (count_ > 0 && --count_ == 0) cv_.notify_all();
}

void CountDownLatch::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return count_ == 0; });
}

ThreadPool::ThreadPool(int num_threads) {
  SG_CHECK_GT(num_threads, 0);
  threads_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    SG_CHECK(!shutdown_);
    queue_.push_back(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [&] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  cv_task_.notify_all();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [&] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace serigraph
