// TSA negative case: calling an SY_REQUIRES function without holding
// the required mutex. Must FAIL under Clang -Wthread-safety -Werror
// ("calling function 'BumpLocked' requires holding mutex 'mu_'").
#include "common/mutex.h"

namespace tsa_negative {

class RequiresMissing {
 public:
  void Bump() {
    BumpLocked();  // violation: caller does not hold mu_
  }

 private:
  void BumpLocked() SY_REQUIRES(mu_) { ++count_; }

  sy::Mutex mu_;
  int count_ SY_GUARDED_BY(mu_) = 0;
};

void Use() {
  RequiresMissing r;
  r.Bump();
}

}  // namespace tsa_negative
