file(REMOVE_RECURSE
  "CMakeFiles/pregel_engine_test.dir/pregel_engine_test.cc.o"
  "CMakeFiles/pregel_engine_test.dir/pregel_engine_test.cc.o.d"
  "pregel_engine_test"
  "pregel_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pregel_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
