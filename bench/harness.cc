#include "harness.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>

#include "obs/perfcounters.h"

namespace serigraph {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// First "model name" line of /proc/cpuinfo, or "unknown".
std::string CpuModel() {
  std::ifstream in("/proc/cpuinfo");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("model name", 0) != 0) continue;
    const size_t colon = line.find(':');
    if (colon == std::string::npos) break;
    size_t start = colon + 1;
    while (start < line.size() && line[start] == ' ') ++start;
    return line.substr(start);
  }
  return "unknown";
}

std::string CpuGovernor() {
  std::ifstream in("/sys/devices/system/cpu/cpu0/cpufreq/scaling_governor");
  std::string governor;
  if (in >> governor && !governor.empty()) return governor;
  return "unknown";
}

std::string CompilerVersion() {
#if defined(__clang__)
  return std::string("clang ") + std::to_string(__clang_major__) + "." +
         std::to_string(__clang_minor__) + "." +
         std::to_string(__clang_patchlevel__);
#elif defined(__GNUC__)
  return std::string("gcc ") + std::to_string(__GNUC__) + "." +
         std::to_string(__GNUC_MINOR__) + "." +
         std::to_string(__GNUC_PATCHLEVEL__);
#else
  return "unknown";
#endif
}

#if defined(__has_feature)
#define SERIGRAPH_HAS_FEATURE(x) __has_feature(x)
#else
#define SERIGRAPH_HAS_FEATURE(x) 0
#endif

std::string SanitizerList() {
  std::string out;
  const auto add = [&out](const char* name) {
    if (!out.empty()) out += ",";
    out += name;
  };
#if defined(__SANITIZE_ADDRESS__) || SERIGRAPH_HAS_FEATURE(address_sanitizer)
  add("address");
#endif
#if defined(__SANITIZE_THREAD__) || SERIGRAPH_HAS_FEATURE(thread_sanitizer)
  add("thread");
#endif
#if SERIGRAPH_HAS_FEATURE(undefined_behavior_sanitizer)
  add("undefined");
#endif
  return out.empty() ? "none" : out;
}

void AppendCell(std::ostringstream& os, const BenchCell& cell) {
  os << "    {\"name\": \"" << JsonEscape(cell.name) << "\", \"unit\": \""
     << JsonEscape(cell.unit) << "\", \"median\": " << cell.median
     << ", \"min\": " << cell.min << ", \"max\": " << cell.max
     << ", \"reps\": " << cell.reps;
  if (cell.peak_rss_kb > 0) os << ", \"peak_rss_kb\": " << cell.peak_rss_kb;
  if (!cell.counters.empty()) {
    os << ", \"counters\": {";
    bool first = true;
    for (const auto& [key, value] : cell.counters) {
      if (!first) os << ", ";
      first = false;
      os << "\"" << JsonEscape(key) << "\": " << value;
    }
    os << "}";
  }
  os << "}";
}

}  // namespace

BenchEnvironment CaptureBenchEnvironment() {
  BenchEnvironment env;
  env.cpu_model = CpuModel();
  env.cores = static_cast<int>(std::thread::hardware_concurrency());
  env.governor = CpuGovernor();
  env.compiler = CompilerVersion();
#ifdef NDEBUG
  env.build_type = "release";
#else
  env.build_type = "debug";
#endif
  env.sanitizers = SanitizerList();
  // Real probe, not a capability guess: opens a counter group on this
  // thread exactly the way the engine will, so seccomp filters and
  // perf_event_paranoid settings are reflected.
  PerfCounterGroup probe((PerfCounterConfig()));
  env.perf_hw = probe.hw_available();
  env.perf_fallback = probe.fallback_reason();
  return env;
}

std::string BenchReport::ToJson() const {
  std::ostringstream os;
  os << "{\n";
  os << "  \"schema_version\": " << kSchemaVersion << ",\n";
  os << "  \"generator\": \"serigraph-bench\",\n";
  os << "  \"environment\": {\n";
  os << "    \"cpu_model\": \"" << JsonEscape(env.cpu_model) << "\",\n";
  os << "    \"cores\": " << env.cores << ",\n";
  os << "    \"governor\": \"" << JsonEscape(env.governor) << "\",\n";
  os << "    \"compiler\": \"" << JsonEscape(env.compiler) << "\",\n";
  os << "    \"build_type\": \"" << JsonEscape(env.build_type) << "\",\n";
  os << "    \"sanitizers\": \"" << JsonEscape(env.sanitizers) << "\",\n";
  os << "    \"perf_hw\": " << (env.perf_hw ? "true" : "false") << ",\n";
  os << "    \"perf_fallback\": \"" << JsonEscape(env.perf_fallback)
     << "\"\n";
  os << "  },\n";
  os << "  \"cells\": [\n";
  for (size_t i = 0; i < cells.size(); ++i) {
    AppendCell(os, cells[i]);
    if (i + 1 < cells.size()) os << ",";
    os << "\n";
  }
  os << "  ]\n";
  os << "}\n";
  return os.str();
}

bool BenchReport::WriteJson(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "bench: cannot open %s for writing\n", path.c_str());
    return false;
  }
  out << ToJson();
  out.flush();
  if (!out) {
    std::fprintf(stderr, "bench: short write to %s\n", path.c_str());
    return false;
  }
  return true;
}

double MedianOf(std::vector<double> samples) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const size_t n = samples.size();
  if (n % 2 == 1) return samples[n / 2];
  return (samples[n / 2 - 1] + samples[n / 2]) / 2.0;
}

BenchArgs ParseBenchArgs(int argc, char** argv) {
  BenchArgs args;
  args.storage.reserve(static_cast<size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (i > 0 && arg.rfind("--json=", 0) == 0) {
      args.json_path = arg.substr(7);
    } else if (i > 0 && arg == "--perf-counters") {
      args.perf_counters = true;
    } else if (i > 0 && arg.rfind("--trace-out=", 0) == 0) {
      args.trace_out = arg.substr(12);
    } else if (i > 0 && arg.rfind("--reps=", 0) == 0) {
      args.reps = std::atoi(arg.c_str() + 7);
    } else if (i > 0 && (arg == "--help" || arg == "-h")) {
      args.help = true;
      args.storage.push_back(arg);  // let the bench library print its own
    } else {
      args.storage.push_back(arg);
    }
  }
  args.passthrough.reserve(args.storage.size() + 1);
  for (std::string& s : args.storage) args.passthrough.push_back(s.data());
  args.passthrough.push_back(nullptr);
  return args;
}

}  // namespace serigraph
