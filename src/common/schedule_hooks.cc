#include "common/schedule_hooks.h"

namespace sy {

SchedulerClient::~SchedulerClient() = default;

namespace sched_internal {
std::atomic<SchedulerClient*> g_client{nullptr};
thread_local int t_thread_id = -1;
}  // namespace sched_internal

void InstallScheduler(SchedulerClient* client) {
  sched_internal::g_client.store(client, std::memory_order_release);
}

ScheduledThread::ScheduledThread(const char* role, int index) {
  SchedulerClient* client =
      sched_internal::g_client.load(std::memory_order_acquire);
  if (client == nullptr) return;
  id_ = client->OnThreadRegister(role, index);
  sched_internal::t_thread_id = id_;
}

ScheduledThread::~ScheduledThread() {
  if (id_ < 0) return;
  // Read the client again: a quiesce-to-passthrough (scheduler uninstalls
  // itself once all workers exited) may have raced ahead of this exit.
  SchedulerClient* client =
      sched_internal::g_client.load(std::memory_order_acquire);
  sched_internal::t_thread_id = -1;
  if (client != nullptr) client->OnThreadExit(id_);
}

}  // namespace sy
