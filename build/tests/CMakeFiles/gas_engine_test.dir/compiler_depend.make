# Empty compiler generated dependencies file for gas_engine_test.
# This may be replaced when dependencies are built.
