#include <gtest/gtest.h>

#include <sstream>

#include "harness/datasets.h"
#include "harness/runner.h"
#include "harness/table.h"

namespace serigraph {
namespace {

TEST(DatasetsTest, FourSpecsInPaperOrder) {
  auto specs = StandInSpecs();
  ASSERT_EQ(specs.size(), 4u);
  EXPECT_EQ(specs[0].name, "OR'");
  EXPECT_EQ(specs[1].name, "AR'");
  EXPECT_EQ(specs[2].name, "TW'");
  EXPECT_EQ(specs[3].name, "UK'");
  // Table 1 ordering: sizes strictly increase.
  for (size_t i = 1; i < specs.size(); ++i) {
    EXPECT_GT(specs[i].num_vertices, specs[i - 1].num_vertices);
  }
}

TEST(DatasetsTest, FindByEitherName) {
  EXPECT_EQ(FindSpec("OR'").paper_name, "com-Orkut");
  EXPECT_EQ(FindSpec("twitter-2010").name, "TW'");
}

TEST(DatasetsTest, GenerationIsDeterministic) {
  DatasetSpec spec = FindSpec("OR'");
  Graph a = MakeDataset(spec);
  Graph b = MakeDataset(spec);
  EXPECT_EQ(a.num_vertices(), b.num_vertices());
  EXPECT_EQ(a.ToEdges(), b.ToEdges());
}

TEST(DatasetsTest, UndirectedVariantIsSymmetric) {
  Graph g = MakeUndirectedDataset(FindSpec("OR'"));
  EXPECT_TRUE(g.IsSymmetric());
}

TEST(DatasetsTest, PowerLawSkew) {
  Graph g = MakeDataset(FindSpec("TW'"));
  // Max degree far above average: the Table 1 signature.
  const double avg = static_cast<double>(g.num_edges()) /
                     static_cast<double>(g.num_vertices());
  EXPECT_GT(static_cast<double>(g.MaxTotalDegree()), 20 * avg);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"a", "long header"});
  table.AddRow({"xxxxxx", "1"});
  std::ostringstream os;
  table.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| a      | long header |"), std::string::npos);
  EXPECT_NE(out.find("| xxxxxx | 1           |"), std::string::npos);
}

TEST(TablePrinterTest, Formatters) {
  EXPECT_EQ(TablePrinter::Seconds(0.0123), "12.3 ms");
  EXPECT_EQ(TablePrinter::Seconds(2.5), "2.50 s");
  EXPECT_EQ(TablePrinter::Ratio(2.0), "2.00x");
  EXPECT_EQ(TablePrinter::Count(1500), "1.5K");
}

TEST(RunnerTest, ToEngineOptionsCopiesEverything) {
  RunConfig config;
  config.sync_mode = SyncMode::kVertexLocking;
  config.model = ComputationModel::kAsync;
  config.num_workers = 7;
  config.partitions_per_worker = 3;
  config.compute_threads_per_worker = 5;
  config.network.one_way_latency_us = 123;
  config.message_batch_bytes = 99;
  config.max_supersteps = 17;
  config.superstep_overhead_us = 11;
  config.partition_seed = 13;
  config.record_history = true;
  EngineOptions opts = ToEngineOptions(config);
  EXPECT_EQ(opts.sync_mode, SyncMode::kVertexLocking);
  EXPECT_EQ(opts.num_workers, 7);
  EXPECT_EQ(opts.partitions_per_worker, 3);
  EXPECT_EQ(opts.compute_threads_per_worker, 5);
  EXPECT_EQ(opts.network.one_way_latency_us, 123);
  EXPECT_EQ(opts.message_batch_bytes, 99);
  EXPECT_EQ(opts.max_supersteps, 17);
  EXPECT_EQ(opts.superstep_overhead_us, 11);
  EXPECT_EQ(opts.partition_seed, 13u);
  EXPECT_TRUE(opts.record_history);
}

TEST(NetworkOptionsTest, DelayFormula) {
  NetworkOptions network;
  network.one_way_latency_us = 100;
  network.per_kib_us = 10;
  EXPECT_EQ(network.DelayMicros(0), 100);
  EXPECT_EQ(network.DelayMicros(1024), 110);
  EXPECT_EQ(network.DelayMicros(10 * 1024), 200);
}

}  // namespace
}  // namespace serigraph
