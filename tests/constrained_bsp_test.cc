// Tests for the Proposition 1 technique: constrained vertex-based
// distributed locking under the synchronous (BSP) model. The paper
// proves it enforces C1 and C2 when (i) all vertices act as philosophers
// and (ii) forks move only at global barriers, but never implements it;
// these tests validate our implementation against the same checker as
// the asynchronous techniques.

#include <gtest/gtest.h>

#include "algos/coloring.h"
#include "algos/mis.h"
#include "algos/sssp.h"
#include "graph/generators.h"
#include "pregel/engine.h"
#include "verify/history.h"

namespace serigraph {
namespace {

Graph Make(const EdgeList& el) {
  auto g = Graph::FromEdgeList(el);
  EXPECT_TRUE(g.ok()) << g.status();
  return std::move(g).value();
}

EngineOptions BspLockingOptions(int workers) {
  EngineOptions opts;
  opts.model = ComputationModel::kBsp;
  opts.sync_mode = SyncMode::kConstrainedBspLocking;
  opts.num_workers = workers;
  opts.record_history = true;
  opts.max_supersteps = 1000;
  return opts;
}

TEST(ConstrainedBspTest, RequiresBspModel) {
  Graph g = Make(Ring(8));
  EngineOptions opts;
  opts.model = ComputationModel::kAsync;
  opts.sync_mode = SyncMode::kConstrainedBspLocking;
  opts.num_workers = 2;
  Engine<Sssp> engine(&g, opts);
  auto result = engine.Run(Sssp(0));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ConstrainedBspTest, OtherTechniquesStillRejectBsp) {
  Graph g = Make(Ring(8));
  EngineOptions opts;
  opts.model = ComputationModel::kBsp;
  opts.sync_mode = SyncMode::kPartitionLocking;
  opts.num_workers = 2;
  Engine<Sssp> engine(&g, opts);
  auto result = engine.Run(Sssp(0));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnimplemented);
}

TEST(ConstrainedBspTest, ColoringIsProperAndSerializable) {
  for (const char* name : {"cycle", "powerlaw", "dense"}) {
    EdgeList el;
    if (std::string(name) == "cycle") el = Ring(48);
    if (std::string(name) == "powerlaw") el = PowerLawChungLu(120, 5, 2.3, 7);
    if (std::string(name) == "dense") el = ErdosRenyi(40, 500, 9);
    Graph g = Make(el).Undirected();
    for (int workers : {1, 3}) {
      Engine<GreedyColoring> engine(&g, BspLockingOptions(workers));
      auto result = engine.Run(GreedyColoring());
      ASSERT_TRUE(result.ok()) << result.status();
      EXPECT_TRUE(result->stats.converged) << name;
      EXPECT_TRUE(IsProperColoring(g, result->values))
          << name << " workers=" << workers;
      HistoryCheck check =
          CheckHistory(g, result->history->TakeRecords());
      EXPECT_TRUE(check.c1_fresh_reads)
          << name << ": " << check.c1_violations << " C1 violations";
      EXPECT_TRUE(check.c2_no_neighbor_overlap)
          << name << ": " << check.c2_violations << " C2 violations";
      EXPECT_TRUE(check.serializable) << name;
      // Sub-supersteps happened: the defining cost of Proposition 1.
      EXPECT_GT(result->stats.Metric("pregel.sub_supersteps"),
                result->stats.supersteps);
    }
  }
}

TEST(ConstrainedBspTest, MisIsMaximalAndSerializable) {
  Graph g = Make(ErdosRenyi(100, 600, 17)).Undirected();
  Engine<MaximalIndependentSet> engine(&g, BspLockingOptions(3));
  auto result = engine.Run(MaximalIndependentSet());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->stats.converged);
  EXPECT_TRUE(IsMaximalIndependentSet(g, result->values));
  HistoryCheck check = CheckHistory(g, result->history->TakeRecords());
  EXPECT_TRUE(check.ok()) << (check.violation_samples.empty()
                                  ? "?"
                                  : check.violation_samples[0]);
}

TEST(ConstrainedBspTest, SsspStillMatchesReference) {
  Graph g = Make(ErdosRenyi(200, 900, 23));
  EngineOptions opts = BspLockingOptions(2);
  opts.record_history = false;
  Engine<Sssp> engine(&g, opts);
  auto result = engine.Run(Sssp(0));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->values, ReferenceSssp(g, 0));
}

TEST(ConstrainedBspTest, WithSimulatedLatency) {
  // Fork transfers pay network latency, so readiness lags the requests;
  // the sub-superstep loop must ride through idle rounds without losing
  // correctness.
  Graph g = Make(Ring(24)).Undirected();
  EngineOptions opts = BspLockingOptions(3);
  opts.network.one_way_latency_us = 500;
  Engine<GreedyColoring> engine(&g, opts);
  auto result = engine.Run(GreedyColoring());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(IsProperColoring(g, result->values));
  HistoryCheck check = CheckHistory(g, result->history->TakeRecords());
  EXPECT_TRUE(check.ok());
}

}  // namespace
}  // namespace serigraph
