# Empty dependencies file for serigraph_cli.
# This may be replaced when dependencies are built.
