// Single-source shortest paths on a road-network-like grid, comparing the
// synchronization techniques on one workload (paper Section 7.2.3: SSSP
// is a key component in reinforcement learning and is run with extensive
// parallelism, so convergence — which serializability provides — is
// crucial).

#include <cstdio>
#include <iostream>
#include <map>

#include "algos/sssp.h"
#include "graph/generators.h"
#include "harness/runner.h"
#include "harness/table.h"

using namespace serigraph;

int main() {
  // A 60x60 grid: every vertex connected to its 4-neighborhood, like a
  // city street network. Unit edge weights, source at the top-left.
  auto graph_or = Graph::FromEdgeList(Grid(60, 60));
  SG_CHECK_OK(graph_or.status());
  Graph graph = std::move(graph_or).value();
  const VertexId source = 0;
  auto reference = ReferenceSssp(graph, source);

  std::printf("SSSP on a 60x60 grid road network (%lld vertices), "
              "8 workers, simulated 100us network.\n\n",
              (long long)graph.num_vertices());

  TablePrinter table({"technique", "time", "supersteps", "ctrl msgs",
                      "data batches", "correct"});
  for (SyncMode sync :
       {SyncMode::kNone, SyncMode::kDualLayerToken,
        SyncMode::kPartitionLocking, SyncMode::kVertexLocking}) {
    RunConfig config;
    config.sync_mode = sync;
    config.num_workers = 8;
    config.network = BenchNetwork();
    std::vector<int64_t> distances;
    RunStats stats = RunProgram(graph, Sssp(source), config, &distances);
    table.AddRow({SyncModeName(sync),
                  TablePrinter::Seconds(stats.computation_seconds),
                  std::to_string(stats.supersteps),
                  TablePrinter::Count(stats.Metric("net.control_messages")),
                  TablePrinter::Count(stats.Metric("net.data_batches")),
                  distances == reference ? "yes" : "NO"});
  }
  table.Print(std::cout);

  std::printf("\nNote: SSSP itself is correct even without serializability "
              "(min is monotone);\nthe techniques differ in cost, which is "
              "what the paper's Figure 6(c) measures.\n");
  return 0;
}
