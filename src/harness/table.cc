#include "harness/table.h"

#include <algorithm>
#include <cstdio>
#include <iomanip>

#include "common/logging.h"
#include "graph/stats.h"

namespace serigraph {

TablePrinter::TablePrinter(std::vector<std::string> columns)
    : columns_(std::move(columns)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  SG_CHECK_EQ(cells.size(), columns_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    os << "| ";
    for (size_t c = 0; c < cells.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c])) << cells[c]
         << " | ";
    }
    os << "\n";
  };
  print_row(columns_);
  os << "|";
  for (size_t c = 0; c < columns_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "-|";
  }
  os << "\n";
  for (const auto& row : rows_) print_row(row);
}

std::string TablePrinter::Seconds(double seconds) {
  char buf[32];
  if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.1f ms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f s", seconds);
  }
  return buf;
}

std::string TablePrinter::Count(int64_t value) { return HumanCount(value); }

std::string TablePrinter::Ratio(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fx", value);
  return buf;
}

void PrintHeader(std::ostream& os, const std::string& title) {
  os << "\n=== " << title << " ===\n";
}

namespace {

std::string Micros(int64_t us) {
  char buf[32];
  if (us >= 1000000) {
    std::snprintf(buf, sizeof(buf), "%.2f s", static_cast<double>(us) / 1e6);
  } else if (us >= 1000) {
    std::snprintf(buf, sizeof(buf), "%.1f ms", static_cast<double>(us) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%lld us", (long long)us);
  }
  return buf;
}

}  // namespace

void PrintTimeline(std::ostream& os,
                   const std::vector<SuperstepSample>& timeline,
                   int max_rows) {
  if (timeline.empty()) return;
  // Sum each superstep across workers. The timeline is ordered by
  // (superstep, worker), so supersteps form contiguous runs.
  std::vector<SuperstepSample> per_step;
  for (const SuperstepSample& s : timeline) {
    if (per_step.empty() || per_step.back().superstep != s.superstep) {
      SuperstepSample agg;
      agg.superstep = s.superstep;
      per_step.push_back(agg);
    }
    SuperstepSample& agg = per_step.back();
    agg.compute_us += s.compute_us;
    agg.barrier_wait_us += s.barrier_wait_us;
    agg.flush_wait_us += s.flush_wait_us;
    agg.fork_wait_us += s.fork_wait_us;
    agg.vertices_executed += s.vertices_executed;
    agg.messages_sent += s.messages_sent;
    // Global per-superstep values: every worker's row carries the same
    // density and mode, so overwriting is a no-op past the first.
    agg.frontier_density_milli = s.frontier_density_milli;
    agg.pull_mode = s.pull_mode;
  }
  // Merge consecutive supersteps into ranges when the run is long.
  const int total = static_cast<int>(per_step.size());
  const int bucket = std::max(1, (total + max_rows - 1) / max_rows);

  TablePrinter table({"superstep", "compute", "barrier wait", "flush wait",
                      "fork wait", "vertices", "messages", "density",
                      "mode"});
  auto mode_name = [](uint8_t mode) {
    switch (mode) {
      case 1:
        return "pull";
      case 2:
        return "gather";
      case 3:
        return "pull+g";
      default:
        return "push";
    }
  };
  for (int i = 0; i < total; i += bucket) {
    SuperstepSample agg;
    const int end = std::min(total, i + bucket);
    bool mixed_mode = false;
    for (int j = i; j < end; ++j) {
      agg.compute_us += per_step[j].compute_us;
      agg.barrier_wait_us += per_step[j].barrier_wait_us;
      agg.flush_wait_us += per_step[j].flush_wait_us;
      agg.fork_wait_us += per_step[j].fork_wait_us;
      agg.vertices_executed += per_step[j].vertices_executed;
      agg.messages_sent += per_step[j].messages_sent;
      // A merged range reports its last superstep's density (the trend
      // endpoint) and "mixed" when the transfer mode changed inside it.
      agg.frontier_density_milli = per_step[j].frontier_density_milli;
      if (j > i && per_step[j].pull_mode != agg.pull_mode) mixed_mode = true;
      agg.pull_mode = per_step[j].pull_mode;
    }
    char label[32];
    if (end - i == 1) {
      std::snprintf(label, sizeof(label), "%d", per_step[i].superstep);
    } else {
      std::snprintf(label, sizeof(label), "%d-%d", per_step[i].superstep,
                    per_step[end - 1].superstep);
    }
    char density[16];
    std::snprintf(density, sizeof(density), "%lld/1000",
                  (long long)agg.frontier_density_milli);
    table.AddRow({label, Micros(agg.compute_us), Micros(agg.barrier_wait_us),
                  Micros(agg.flush_wait_us), Micros(agg.fork_wait_us),
                  TablePrinter::Count(agg.vertices_executed),
                  TablePrinter::Count(agg.messages_sent), density,
                  mixed_mode ? "mixed" : mode_name(agg.pull_mode)});
  }
  table.Print(os);
}

}  // namespace serigraph
