#!/usr/bin/env bash
# Builds the full tree under ThreadSanitizer and runs the test suite.
# The tracer's lock-free recording path and the engine's per-superstep
# accounting are only as good as this check: any data race in them shows
# up here, not in a flaky bench.
#
# Usage: scripts/check.sh [build-dir]   (default: build-tsan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"

cmake -B "$BUILD_DIR" -S . -DSERIGRAPH_SANITIZE=thread
cmake --build "$BUILD_DIR" -j "$(nproc)"

# Second-guess TSan's default: halt_on_error keeps the first race report
# readable instead of burying it under cascading failures.
TSAN_OPTIONS="halt_on_error=1" \
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

echo "check.sh: all tests passed under ThreadSanitizer"
