// Microbenchmarks for the sharded flat message store: append / swap /
// consume throughput with and without a combiner, single-threaded and
// with 1-32 concurrent appenders, isolating the per-message cost of the
// path that Context::SendTo and remote-batch delivery ride on.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "pregel/message_store.h"

namespace serigraph {
namespace {

double Sum(const double& a, const double& b) { return a + b; }

/// Full BSP cycle for one partition: append `range(0)` messages to each
/// of 1024 vertices, publish at the barrier, consume every span.
void BM_StoreBspCycle(benchmark::State& state) {
  constexpr int32_t kVertices = 1024;
  const int msgs_per_vertex = static_cast<int>(state.range(0));
  MessageStore<double> store;
  store.Init(kVertices, /*double_buffered=*/true, /*combine=*/nullptr);
  std::vector<double> scratch;
  double sink = 0.0;
  for (auto _ : state) {
    for (int m = 0; m < msgs_per_vertex; ++m) {
      for (int32_t li = 0; li < kVertices; ++li) {
        store.Append(li, static_cast<double>(m));
      }
    }
    store.Swap();
    for (int32_t li = 0; li < kVertices; ++li) {
      for (double v : store.Consume(li, &scratch)) sink += v;
    }
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * kVertices * msgs_per_vertex);
}
BENCHMARK(BM_StoreBspCycle)->Arg(1)->Arg(8)->Arg(64);

/// Same cycle with a combiner: every chain folds to one node, the flat
/// buffer holds one slot per vertex.
void BM_StoreBspCycleCombine(benchmark::State& state) {
  constexpr int32_t kVertices = 1024;
  const int msgs_per_vertex = static_cast<int>(state.range(0));
  MessageStore<double> store;
  store.Init(kVertices, /*double_buffered=*/true, &Sum);
  std::vector<double> scratch;
  double sink = 0.0;
  for (auto _ : state) {
    for (int m = 0; m < msgs_per_vertex; ++m) {
      for (int32_t li = 0; li < kVertices; ++li) {
        store.Append(li, static_cast<double>(m));
      }
    }
    store.Swap();
    for (int32_t li = 0; li < kVertices; ++li) {
      for (double v : store.Consume(li, &scratch)) sink += v;
    }
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * kVertices * msgs_per_vertex);
}
BENCHMARK(BM_StoreBspCycleCombine)->Arg(8)->Arg(64);

/// Remote-batch delivery: decoded records pre-grouped by shard, one lock
/// acquisition per shard per batch.
void BM_StoreAppendBatch(benchmark::State& state) {
  constexpr int32_t kVertices = 4096;
  const int batch = static_cast<int>(state.range(0));
  MessageStore<double> store;
  store.Init(kVertices, /*double_buffered=*/true, /*combine=*/nullptr);
  std::vector<double> scratch;
  std::vector<std::pair<int32_t, double>> records(batch);
  for (auto _ : state) {
    for (int i = 0; i < batch; ++i) {
      records[i] = {static_cast<int32_t>((i * 17) % kVertices),
                    static_cast<double>(i)};
    }
    store.AppendBatch(std::span(records));
    store.Swap();
    for (int32_t li = 0; li < kVertices; ++li) {
      benchmark::DoNotOptimize(store.Consume(li, &scratch));
    }
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_StoreAppendBatch)->Arg(256)->Arg(4096);

/// Concurrent appenders, AP (direct) mode: each thread owns a stripe of
/// 64 vertices interleaved across every shard, appends a burst and
/// consumes it back (steady-state arena reuse, no growth).
void BM_StoreConcurrentAppend(benchmark::State& state) {
  constexpr int32_t kPerThread = 64;
  static MessageStore<double>* store = nullptr;
  if (state.thread_index() == 0) {
    store = new MessageStore<double>();
    store->Init(kPerThread * state.threads(), /*double_buffered=*/false,
                /*combine=*/nullptr, /*shard_hint=*/16);
  }
  const int32_t base = kPerThread * state.thread_index();
  std::vector<double> scratch;
  for (auto _ : state) {
    for (int32_t k = 0; k < kPerThread; ++k) {
      store->Append(base + k, static_cast<double>(k));
    }
    for (int32_t k = 0; k < kPerThread; ++k) {
      benchmark::DoNotOptimize(store->Consume(base + k, &scratch));
    }
  }
  state.SetItemsProcessed(state.iterations() * kPerThread);
  if (state.thread_index() == 0) {
    delete store;
    store = nullptr;
  }
}
BENCHMARK(BM_StoreConcurrentAppend)->Threads(1)->Threads(4)->Threads(32);

/// Concurrent appenders all folding into the same 256 hot vertices via
/// the combiner — the worst-case shard-lock contention pattern, bounded
/// memory because every chain stays one node long.
void BM_StoreConcurrentAppendCombine(benchmark::State& state) {
  constexpr int32_t kVertices = 256;
  static MessageStore<double>* store = nullptr;
  if (state.thread_index() == 0) {
    store = new MessageStore<double>();
    store->Init(kVertices, /*double_buffered=*/true, &Sum,
                /*shard_hint=*/16);
  }
  int32_t li = state.thread_index();
  for (auto _ : state) {
    store->Append(li & (kVertices - 1), 1.0);
    ++li;
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    delete store;
    store = nullptr;
  }
}
BENCHMARK(BM_StoreConcurrentAppendCombine)->Threads(1)->Threads(4)->Threads(32);

/// Sender-side combining map: fold a stream of messages over `range(0)`
/// distinct destinations, then drain (one engine flush).
void BM_CombiningMapFold(benchmark::State& state) {
  const int64_t keys = state.range(0);
  constexpr int64_t kStream = 4096;
  CombiningMap<double> map;
  std::vector<std::pair<VertexId, double>> staging;
  for (auto _ : state) {
    for (int64_t i = 0; i < kStream; ++i) {
      map.Fold((i * 131) % keys, 1.0, &Sum);
    }
    map.Drain(&staging);
    benchmark::DoNotOptimize(staging.data());
  }
  state.SetItemsProcessed(state.iterations() * kStream);
}
BENCHMARK(BM_CombiningMapFold)->Arg(64)->Arg(4096);

}  // namespace
}  // namespace serigraph

#include "micro_main.h"
