#ifndef SERIGRAPH_HARNESS_DATASETS_H_
#define SERIGRAPH_HARNESS_DATASETS_H_

#include <string>
#include <vector>

#include "graph/graph.h"

namespace serigraph {

/// Laptop-scale synthetic stand-ins for the paper's Table 1 datasets.
/// All four originals are power-law graphs (social networks: OR, TW; web
/// graphs: AR, UK); the stand-ins preserve the relative size ordering
/// (OR < AR < TW < UK), the heavy-tailed degree skew, and the directed
/// nature of the originals, scaled down by ~3 orders of magnitude so the
/// full evaluation grid runs on one machine. Scale with
/// SERIGRAPH_SCALE (a float multiplier on vertex counts, default 1).
struct DatasetSpec {
  std::string name;        ///< stand-in name, e.g. "OR'"
  std::string paper_name;  ///< original, e.g. "com-Orkut"
  VertexId num_vertices;
  double avg_degree;
  double gamma;  ///< power-law exponent
  uint64_t seed;
};

/// The four stand-ins (OR', AR', TW', UK') in paper order.
std::vector<DatasetSpec> StandInSpecs();

/// Returns the spec by stand-in name; dies if unknown.
DatasetSpec FindSpec(const std::string& name);

/// Generates the directed stand-in graph for `spec` (applies the
/// SERIGRAPH_SCALE multiplier).
Graph MakeDataset(const DatasetSpec& spec);

/// Generates the undirected closure (used by graph coloring and WCC,
/// matching the parenthesised columns of Table 1).
Graph MakeUndirectedDataset(const DatasetSpec& spec);

}  // namespace serigraph

#endif  // SERIGRAPH_HARNESS_DATASETS_H_
