// Tests for the common substrate: RNG, metrics, serialization, threading.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "common/metrics.h"
#include "common/rng.h"
#include "common/serialize.h"
#include "common/threading.h"
#include "common/timer.h"

namespace serigraph {
namespace {

// --- Rng ------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformStaysInBounds) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.Uniform(bound), bound);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all 7 values hit in 1000 draws
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);  // rough uniformity
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

// --- Metrics ----------------------------------------------------------

TEST(MetricsTest, CounterConcurrentIncrements) {
  Counter counter;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) counter.Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.value(), 40000);
}

TEST(MetricsTest, MaxGaugeTracksPeak) {
  MaxGauge gauge;
  gauge.Add(3);
  gauge.Add(4);
  gauge.Add(-5);
  gauge.Add(1);
  EXPECT_EQ(gauge.value(), 3);
  EXPECT_EQ(gauge.max(), 7);
}

TEST(MetricsTest, HistogramQuantilesAndMean) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.Record(i);
  EXPECT_EQ(h.count(), 1000);
  EXPECT_NEAR(h.Mean(), 500.5, 0.1);
  // log2 buckets: median of 1..1000 lands in bucket [512, 1023].
  EXPECT_GE(h.ApproxQuantile(0.5), 255);
  EXPECT_LE(h.ApproxQuantile(0.5), 1023);
  EXPECT_LE(h.ApproxQuantile(0.0), 1);
}

TEST(MetricsTest, HistogramQuantileEdgeCases) {
  Histogram empty;
  EXPECT_EQ(empty.count(), 0);
  EXPECT_EQ(empty.ApproxQuantile(0.0), 0);
  EXPECT_EQ(empty.ApproxQuantile(0.5), 0);
  EXPECT_EQ(empty.ApproxQuantile(1.0), 0);
  EXPECT_EQ(empty.max(), 0);

  Histogram h;
  h.Record(7);
  // A single sample is every quantile, and the estimate must never
  // exceed the observed maximum (the log2 bucket upper bound is capped).
  EXPECT_EQ(h.ApproxQuantile(0.0), 7);
  EXPECT_EQ(h.ApproxQuantile(0.5), 7);
  EXPECT_EQ(h.ApproxQuantile(1.0), 7);
  EXPECT_EQ(h.max(), 7);

  // Out-of-range q clamps instead of crashing.
  EXPECT_EQ(h.ApproxQuantile(-3.0), h.ApproxQuantile(0.0));
  EXPECT_EQ(h.ApproxQuantile(42.0), h.ApproxQuantile(1.0));
}

TEST(MetricsTest, HistogramMaxTracksLargestSample) {
  Histogram h;
  h.Record(3);
  h.Record(100000);
  h.Record(50);
  EXPECT_EQ(h.max(), 100000);
  EXPECT_LE(h.ApproxQuantile(1.0), 100000);
  h.Reset();
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.count(), 0);
}

TEST(MetricsTest, RegistryHistogramSnapshotKeys) {
  MetricRegistry registry;
  Histogram* h = registry.GetHistogram("lat");
  EXPECT_EQ(h, registry.GetHistogram("lat"));
  for (int i = 1; i <= 100; ++i) h->Record(i);
  auto snapshot = registry.Snapshot();
  ASSERT_TRUE(snapshot.count("lat.p50"));
  ASSERT_TRUE(snapshot.count("lat.p95"));
  ASSERT_TRUE(snapshot.count("lat.max"));
  ASSERT_TRUE(snapshot.count("lat.count"));
  EXPECT_EQ(snapshot["lat.count"], 100);
  EXPECT_EQ(snapshot["lat.max"], 100);
  EXPECT_LE(snapshot["lat.p50"], snapshot["lat.p95"]);
  EXPECT_LE(snapshot["lat.p95"], snapshot["lat.max"]);
  registry.ResetAll();
  EXPECT_EQ(registry.Snapshot()["lat.count"], 0);
}

// Back-to-back runs over one registry (the bench harness pattern): the
// second run's quantiles must reflect only the second run's samples, not
// a mixture with stale buckets from the first.
TEST(MetricsTest, HistogramResetBetweenBackToBackRuns) {
  MetricRegistry registry;
  Histogram* h = registry.GetHistogram("fork_wait_us");

  // Run 1: large samples dominate the upper quantiles.
  for (int i = 0; i < 100; ++i) h->Record(1 << 20);
  EXPECT_GE(h->ApproxQuantile(0.5), 1 << 20);
  registry.ResetAll();
  EXPECT_EQ(h->count(), 0);
  EXPECT_EQ(h->sum(), 0);
  EXPECT_EQ(h->max(), 0);
  EXPECT_EQ(h->ApproxQuantile(0.5), 0);

  // Run 2: small samples only; any surviving run-1 bucket would pull the
  // p95 up by orders of magnitude.
  for (int i = 0; i < 100; ++i) h->Record(8);
  EXPECT_EQ(h->count(), 100);
  EXPECT_EQ(h->sum(), 800);
  EXPECT_EQ(h->max(), 8);
  EXPECT_LT(h->ApproxQuantile(0.95), 1 << 20);
  EXPECT_LE(h->ApproxQuantile(1.0), 8);

  // The same pointer stays registered after the reset.
  EXPECT_EQ(h, registry.GetHistogram("fork_wait_us"));
  auto snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot["fork_wait_us.count"], 100);
  EXPECT_EQ(snapshot["fork_wait_us.max"], 8);
}

TEST(MetricsTest, RegistryReturnsSameCounterForSameName) {
  MetricRegistry registry;
  Counter* a = registry.GetCounter("x");
  Counter* b = registry.GetCounter("x");
  EXPECT_EQ(a, b);
  a->Add(5);
  auto snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot["x"], 5);
  registry.ResetAll();
  EXPECT_EQ(registry.Snapshot()["x"], 0);
}

// --- Serialization ---------------------------------------------------

TEST(SerializeTest, PrimitiveRoundTrip) {
  BufferWriter writer;
  writer.WriteU8(0xab);
  writer.WriteU32(0xdeadbeef);
  writer.WriteU64(1ull << 62);
  writer.WriteI64(-123456789);
  writer.WriteDouble(3.25);
  writer.WriteString("hello");

  BufferReader reader(writer.data());
  uint8_t u8;
  uint32_t u32;
  uint64_t u64;
  int64_t i64;
  double d;
  std::string s;
  ASSERT_TRUE(reader.ReadU8(&u8));
  ASSERT_TRUE(reader.ReadU32(&u32));
  ASSERT_TRUE(reader.ReadU64(&u64));
  ASSERT_TRUE(reader.ReadI64(&i64));
  ASSERT_TRUE(reader.ReadDouble(&d));
  ASSERT_TRUE(reader.ReadString(&s));
  EXPECT_EQ(u8, 0xab);
  EXPECT_EQ(u32, 0xdeadbeefu);
  EXPECT_EQ(u64, 1ull << 62);
  EXPECT_EQ(i64, -123456789);
  EXPECT_EQ(d, 3.25);
  EXPECT_EQ(s, "hello");
  EXPECT_TRUE(reader.AtEnd());
}

TEST(SerializeTest, VarintBoundaries) {
  const uint64_t values[] = {0,       1,        127,        128,
                             16383,   16384,    (1u << 21) - 1,
                             1u << 21, ~0ull >> 1, ~0ull};
  BufferWriter writer;
  for (uint64_t v : values) writer.WriteVarint(v);
  BufferReader reader(writer.data());
  for (uint64_t v : values) {
    uint64_t got;
    ASSERT_TRUE(reader.ReadVarint(&got));
    EXPECT_EQ(got, v);
  }
  EXPECT_TRUE(reader.AtEnd());
}

TEST(SerializeTest, SignedVarintRoundTrip) {
  const int64_t values[] = {0, -1, 1, -64, 64, INT64_MIN, INT64_MAX};
  BufferWriter writer;
  for (int64_t v : values) writer.WriteSignedVarint(v);
  BufferReader reader(writer.data());
  for (int64_t v : values) {
    int64_t got;
    ASSERT_TRUE(reader.ReadSignedVarint(&got));
    EXPECT_EQ(got, v);
  }
}

TEST(SerializeTest, UnderflowReturnsFalse) {
  BufferWriter writer;
  writer.WriteU8(1);
  BufferReader reader(writer.data());
  uint64_t u64;
  EXPECT_FALSE(reader.ReadU64(&u64));
  std::string s;
  EXPECT_FALSE(reader.ReadString(&s));
}

TEST(SerializeTest, StringLengthLargerThanRemainingFails) {
  BufferWriter writer;
  writer.WriteVarint(100);  // claims 100 bytes follow
  writer.WriteU8('x');
  BufferReader reader(writer.data());
  std::string s;
  EXPECT_FALSE(reader.ReadString(&s));
}

// --- Threading ----------------------------------------------------------

TEST(ThreadingTest, CyclicBarrierReleasesAllAndElectsOneWinner) {
  constexpr int kParties = 8;
  CyclicBarrier barrier(kParties);
  std::atomic<int> winners{0};
  std::atomic<int> arrived{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kParties; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < 50; ++round) {
        arrived.fetch_add(1);
        if (barrier.Await()) winners.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(arrived.load(), kParties * 50);
  EXPECT_EQ(winners.load(), 50);  // exactly one winner per generation
}

TEST(ThreadingTest, CountDownLatchBlocksUntilZero) {
  CountDownLatch latch(3);
  std::atomic<bool> released{false};
  std::thread waiter([&] {
    latch.Wait();
    released.store(true);
  });
  latch.CountDown();
  latch.CountDown();
  EXPECT_FALSE(released.load());
  latch.CountDown();
  waiter.join();
  EXPECT_TRUE(released.load());
}

TEST(ThreadingTest, ThreadPoolRunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 1000; ++i) {
    pool.Submit([&] { ran.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(ran.load(), 1000);
  pool.Shutdown();
}

TEST(ThreadingTest, ThreadPoolWaitIdleReusable) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 50; ++i) pool.Submit([&] { ran.fetch_add(1); });
    pool.WaitIdle();
    EXPECT_EQ(ran.load(), (round + 1) * 50);
  }
}

TEST(ThreadingTest, ShutdownDrainsQueue) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 100; ++i) pool.Submit([&] { ran.fetch_add(1); });
    pool.Shutdown();
  }
  EXPECT_EQ(ran.load(), 100);
}

TEST(TimerTest, MeasuresElapsedTime) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(timer.ElapsedMillis(), 15.0);
  EXPECT_GE(timer.ElapsedMicros(), 15000);
  timer.Restart();
  EXPECT_LT(timer.ElapsedMillis(), 15.0);
}

}  // namespace
}  // namespace serigraph
