# Empty compiler generated dependencies file for prop1_bsp_locking.
# This may be replaced when dependencies are built.
