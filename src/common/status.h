#ifndef SERIGRAPH_COMMON_STATUS_H_
#define SERIGRAPH_COMMON_STATUS_H_

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace serigraph {

/// Machine-readable category of a Status.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kInternal = 6,
  kIoError = 7,
  kUnimplemented = 8,
  kAborted = 9,
};

/// Returns a human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// Result of an operation that can fail. SeriGraph does not use exceptions;
/// fallible functions return Status (or StatusOr<T> for value-producing
/// ones). A default-constructed Status is OK and carries no message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory helpers, one per non-OK code.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Either a value of type T or an error Status. Accessing the value of a
/// non-OK StatusOr is a fatal error (checked in debug builds).
template <typename T>
class StatusOr {
 public:
  /// Constructs from a value (implicit on purpose: `return value;`).
  StatusOr(T value) : status_(Status::OK()), value_(std::move(value)) {}
  /// Constructs from a non-OK status (implicit on purpose: `return status;`).
  StatusOr(Status status) : status_(std::move(status)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK Status to the caller.
#define SERIGRAPH_RETURN_IF_ERROR(expr)           \
  do {                                            \
    ::serigraph::Status _st = (expr);             \
    if (!_st.ok()) return _st;                    \
  } while (0)

}  // namespace serigraph

#endif  // SERIGRAPH_COMMON_STATUS_H_
