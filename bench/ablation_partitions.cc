// Section 7.1 ablation: partitions per worker. The paper uses Giraph's
// default of |W| partitions per worker and reports that more partitions
// cut more edges (more forks, smaller batches) while too few restrict
// parallelism. We sweep partitions/worker for partition-based locking.

#include <iostream>

#include "algos/coloring.h"
#include "algos/pagerank.h"
#include "harness/datasets.h"
#include "harness/runner.h"
#include "harness/table.h"

using namespace serigraph;

int main() {
  PrintHeader(std::cout,
              "Section 7.1 ablation: partitions per worker "
              "(partition-based locking, 16 workers, OR')");
  Graph directed = MakeDataset(FindSpec("OR'"));
  Graph undirected = directed.Undirected();

  TablePrinter table({"algorithm", "partitions/worker", "forks", "time",
                      "ctrl msgs", "max concurrent"});
  for (int ppw : {1, 2, 4, 8, 16, 32}) {
    for (bool pagerank : {false, true}) {
      RunConfig config;
      config.sync_mode = SyncMode::kPartitionLocking;
      config.num_workers = 16;
      config.partitions_per_worker = ppw;
      config.network = BenchNetwork();
      RunStats stats;
      if (pagerank) {
        stats = RunProgram(directed, PageRank(0.01), config);
      } else {
        std::vector<int64_t> colors;
        stats = RunProgram(undirected, GreedyColoring(), config, &colors);
        SG_CHECK(IsProperColoring(undirected, colors));
      }
      table.AddRow(
          {pagerank ? "PageRank" : "coloring", std::to_string(ppw),
           TablePrinter::Count(stats.Metric("sync.num_forks")),
           TablePrinter::Seconds(stats.computation_seconds),
           TablePrinter::Count(stats.Metric("net.control_messages")),
           std::to_string(stats.Metric("pregel.max_concurrent_executions"))});
    }
  }
  table.Print(std::cout);
  std::cout << "\npaper: the sweet spot is |W| partitions per worker (=16 "
               "here); 1/worker restricts\nparallelism, many/worker "
               "multiplies forks and shrinks message batches. On this\n"
               "single-core host only the communication side of the "
               "trade-off is visible (the\nfork/ctrl-msg growth); the "
               "parallelism restriction at 1 partition/worker needs\nreal "
               "cores to cost wall-clock time.\n";
  return 0;
}
