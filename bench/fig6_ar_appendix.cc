// Appendix runs on AR' (arabic-2005 stand-in): the paper's main text
// omits AR for space and defers it to the technical report [21]; this
// bench covers all four algorithms on AR' at 16 workers so the dataset
// column of Table 1 is exercised end to end.

#include <iostream>
#include <numeric>

#include "algos/coloring.h"
#include "algos/pagerank.h"
#include "algos/sssp.h"
#include "algos/wcc.h"
#include "harness/datasets.h"
#include "harness/runner.h"
#include "harness/table.h"

using namespace serigraph;

int main() {
  PrintHeader(std::cout,
              "Appendix (tech report): all four algorithms on AR', "
              "16 workers");
  DatasetSpec spec = FindSpec("AR'");
  Graph directed = MakeDataset(spec);
  Graph undirected = directed.Undirected();

  TablePrinter table(
      {"algorithm", "technique", "time", "supersteps", "valid"});
  const SyncMode kModes[] = {SyncMode::kDualLayerToken,
                             SyncMode::kPartitionLocking,
                             SyncMode::kVertexLocking};
  for (SyncMode sync : kModes) {
    RunConfig config;
    config.sync_mode = sync;
    config.num_workers = 16;
    config.network = BenchNetwork();

    {
      std::vector<int64_t> colors;
      RunStats stats =
          RunProgram(undirected, GreedyColoring(), config, &colors);
      table.AddRow({"coloring", SyncModeName(sync),
                    TablePrinter::Seconds(stats.computation_seconds),
                    std::to_string(stats.supersteps),
                    IsProperColoring(undirected, colors) ? "yes" : "NO"});
    }
    {
      std::vector<double> values;
      RunStats stats =
          RunProgram(directed, PageRank(0.01), config, &values);
      table.AddRow({"PageRank", SyncModeName(sync),
                    TablePrinter::Seconds(stats.computation_seconds),
                    std::to_string(stats.supersteps),
                    stats.converged ? "yes" : "NO"});
    }
    {
      std::vector<int64_t> distances;
      RunStats stats = RunProgram(directed, Sssp(0), config, &distances);
      table.AddRow({"SSSP", SyncModeName(sync),
                    TablePrinter::Seconds(stats.computation_seconds),
                    std::to_string(stats.supersteps),
                    distances == ReferenceSssp(directed, 0) ? "yes" : "NO"});
    }
    {
      std::vector<int64_t> labels;
      RunStats stats = RunProgram(undirected, Wcc(), config, &labels);
      table.AddRow({"WCC", SyncModeName(sync),
                    TablePrinter::Seconds(stats.computation_seconds),
                    std::to_string(stats.supersteps),
                    labels == ReferenceWcc(undirected) ? "yes" : "NO"});
    }
  }
  table.Print(std::cout);
  return 0;
}
