#ifndef SERIGRAPH_OBS_PERFCOUNTERS_H_
#define SERIGRAPH_OBS_PERFCOUNTERS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace serigraph {

/// Hardware/software performance counters (docs/PROFILING.md).
///
/// A PerfCounterGroup measures the *calling thread*: hardware events via
/// perf_event_open (grouped so each read is one syscall and the kernel's
/// multiplexing is visible through TIME_ENABLED/TIME_RUNNING scaling) and
/// software events via clock_gettime(CLOCK_THREAD_CPUTIME_ID) and
/// getrusage(RUSAGE_THREAD). When perf events are unavailable (seccomp'd
/// containers, perf_event_paranoid, kernels without the syscall) the
/// hardware fields degrade to zero with hw_valid=false and a human-
/// readable reason — degradation is reported, never fatal, and the
/// software fields keep working everywhere.

/// Fixed counter layout. Hardware fields come from perf events; the
/// trailing software fields are always available.
enum PerfField : int {
  kPerfCycles = 0,
  kPerfInstructions,
  kPerfLlcLoads,
  kPerfLlcMisses,
  kPerfBranchMisses,
  kPerfDtlbMisses,
  kPerfHwCtxSwitches,  ///< perf software event (or rusage fallback)
  kPerfTaskClockNs,    ///< thread CPU time (CLOCK_THREAD_CPUTIME_ID)
  kPerfMinorFaults,    ///< rusage
  kPerfMajorFaults,    ///< rusage
  kNumPerfFields,
};

/// Short snake_case name for field `f` ("cycles", "llc_misses", ...).
const char* PerfFieldName(int f);

/// One absolute reading (multiplex-scaled hardware counts + software
/// counts) or a delta between two readings.
struct PerfDelta {
  int64_t v[kNumPerfFields] = {};
  /// True when the hardware fields carry real (possibly scaled) counts.
  bool hw_valid = false;

  void Accumulate(const PerfDelta& other) {
    for (int f = 0; f < kNumPerfFields; ++f) v[f] += other.v[f];
    hw_valid = hw_valid || other.hw_valid;
  }
  /// Instructions per cycle, scaled by 1000 (0 when cycles unknown).
  int64_t ipc_milli() const {
    return v[kPerfCycles] > 0 ? 1000 * v[kPerfInstructions] / v[kPerfCycles]
                              : 0;
  }
  /// LLC misses per 1000 LLC loads (0 when loads unknown).
  int64_t llc_miss_per_mille() const {
    return v[kPerfLlcLoads] > 0
               ? 1000 * v[kPerfLlcMisses] / v[kPerfLlcLoads]
               : 0;
  }
};

struct PerfCounterConfig {
  /// Skip perf_event_open entirely and report the software fallback, as
  /// if the syscall had been denied. Tests and CI use this to exercise
  /// the degraded path deterministically; the SERIGRAPH_NO_PERF_HW
  /// environment variable forces it process-wide.
  bool force_software = false;
};

/// Per-thread counter group. Not thread-safe: construct and read from
/// one thread (the thread being measured). Opening is best-effort; a
/// group that failed to open stays usable as a software-only group.
class PerfCounterGroup {
 public:
  explicit PerfCounterGroup(const PerfCounterConfig& config = {});
  ~PerfCounterGroup();

  PerfCounterGroup(const PerfCounterGroup&) = delete;
  PerfCounterGroup& operator=(const PerfCounterGroup&) = delete;

  /// True when at least one hardware group opened.
  bool hw_available() const { return hw_available_; }
  /// Why hardware counters are off ("" when hw_available()).
  const std::string& fallback_reason() const { return fallback_reason_; }

  /// Absolute multiplex-scaled reading for this thread. Cheap enough to
  /// call per partition execution (2 read() syscalls + clock_gettime +
  /// getrusage).
  PerfDelta ReadNow();

  static PerfDelta Delta(const PerfDelta& start, const PerfDelta& end) {
    PerfDelta d;
    for (int f = 0; f < kNumPerfFields; ++f) d.v[f] = end.v[f] - start.v[f];
    d.hw_valid = start.hw_valid && end.hw_valid;
    return d;
  }

 private:
  struct Group;  // one perf_event_open group (leader + members)
  static constexpr int kMaxGroups = 2;

  std::unique_ptr<Group> groups_[kMaxGroups];
  int num_groups_ = 0;
  bool hw_available_ = false;
  std::string fallback_reason_;
};

/// Phases the engine attributes counter deltas to. Compute encloses
/// fork-wait (scopes nest, like the wall-clock accounting: compute_us
/// includes fork waits and the fig6 tables print the share).
enum class PerfPhase : int {
  kCompute = 0,
  kFlushWait,
  kBarrier,
  kForkWait,
};
constexpr int kNumPerfPhases = 4;

const char* PerfPhaseName(PerfPhase phase);

/// Lock-free (phase x field) accumulator: many threads Add concurrently,
/// one thread Exchanges a phase's row at each superstep boundary and a
/// final Total at run end. All relaxed atomics — per-row consistency is
/// not required, only that every delta lands exactly once.
class PerfPhaseAccum {
 public:
  void Add(PerfPhase phase, const PerfDelta& delta) {
    auto& row = rows_[static_cast<int>(phase)];
    for (int f = 0; f < kNumPerfFields; ++f) {
      if (delta.v[f] != 0) {
        // mo: per-thread cell; drain tolerates skew
        row.v[f].fetch_add(delta.v[f], std::memory_order_relaxed);
      }
    }
    // mo: per-thread cell; drain tolerates skew
    if (delta.hw_valid) row.hw_samples.fetch_add(1, std::memory_order_relaxed);
  }

  /// Drains one phase's accumulated delta (superstep boundary).
  PerfDelta Exchange(PerfPhase phase) {
    auto& row = rows_[static_cast<int>(phase)];
    PerfDelta d;
    for (int f = 0; f < kNumPerfFields; ++f) {
      // mo: per-thread cell; drain tolerates skew
      d.v[f] = row.v[f].exchange(0, std::memory_order_relaxed);
    }
    // mo: per-thread cell; drain tolerates skew
    d.hw_valid = row.hw_samples.exchange(0, std::memory_order_relaxed) > 0;
    return d;
  }

 private:
  struct Row {
    std::atomic<int64_t> v[kNumPerfFields] = {};
    std::atomic<int64_t> hw_samples{0};
  };
  Row rows_[kNumPerfPhases];
};

/// Process-wide switch for the SY_PERF_SCOPE macro, mirroring the
/// Tracer/Introspector pattern: when disabled a scope costs one relaxed
/// atomic load; when enabled each measuring thread lazily opens its own
/// PerfCounterGroup (thread-local, re-opened after an epoch bump so
/// Enable/Disable cycles between engine runs see fresh groups).
class PerfCounters {
 public:
  // mo: on/off gate; stale reads tolerated
  static bool enabled() { return enabled_.load(std::memory_order_relaxed); }

  /// Enables collection. `config` applies to groups opened after the
  /// call. Returns availability as probed on the calling thread.
  static bool Enable(const PerfCounterConfig& config);
  static void Disable();

  /// Availability probed by the last Enable ("" reason when available).
  static bool hw_available();
  static std::string fallback_reason();

  /// The calling thread's group (created on first use). Null when
  /// disabled.
  static PerfCounterGroup* CurrentThreadGroup();

 private:
  static std::atomic<bool> enabled_;
  static std::atomic<uint64_t> epoch_;
};

/// RAII counter scope: reads the calling thread's group at construction
/// and destruction and adds the delta to `accum` under `phase`. Near
/// zero cost when PerfCounters is disabled. Scopes nest; an inner
/// scope's delta is also part of every enclosing scope's delta.
class PerfScope {
 public:
  PerfScope(PerfPhaseAccum* accum, PerfPhase phase) {
    if (PerfCounters::enabled()) {
      group_ = PerfCounters::CurrentThreadGroup();
      if (group_ != nullptr) {
        accum_ = accum;
        phase_ = phase;
        start_ = group_->ReadNow();
      }
    }
  }

  PerfScope(const PerfScope&) = delete;
  PerfScope& operator=(const PerfScope&) = delete;

  ~PerfScope() {
    if (accum_ != nullptr) {
      accum_->Add(phase_, PerfCounterGroup::Delta(start_, group_->ReadNow()));
    }
  }

 private:
  PerfCounterGroup* group_ = nullptr;
  PerfPhaseAccum* accum_ = nullptr;
  PerfPhase phase_ = PerfPhase::kCompute;
  PerfDelta start_;
};

#define SY_PERF_CONCAT_INNER(a, b) a##b
#define SY_PERF_CONCAT(a, b) SY_PERF_CONCAT_INNER(a, b)

/// Attributes the enclosing scope's counter deltas to `phase` in
/// `accum` (a PerfPhaseAccum*). One relaxed load when collection is off.
#define SY_PERF_SCOPE(accum, phase) \
  ::serigraph::PerfScope SY_PERF_CONCAT(sy_perf_scope_, __COUNTER__)( \
      (accum), (phase))

}  // namespace serigraph

#endif  // SERIGRAPH_OBS_PERFCOUNTERS_H_
