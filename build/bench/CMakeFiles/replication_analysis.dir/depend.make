# Empty dependencies file for replication_analysis.
# This may be replaced when dependencies are built.
