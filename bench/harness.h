#ifndef SERIGRAPH_BENCH_HARNESS_H_
#define SERIGRAPH_BENCH_HARNESS_H_

// Unified bench output path: every bench binary — Google Benchmark micro
// benches (via micro_main.h) and the fig6-style paper-reproduction grids
// (via fig6_common.h) — funnels its results through a BenchReport, which
// serializes to a schema-versioned BENCH.json that scripts/bench_compare.py
// can diff against a committed baseline with noise-aware thresholds.
//
// The report embeds an environment fingerprint (CPU model, core count,
// frequency governor, compiler, sanitizer flags, perf-counter
// availability) so a comparison across machines or build types fails
// loudly instead of producing a meaningless "regression".
//
// Schema history:
//   1  raw Google Benchmark --benchmark_out dumps (results/pr0, BENCH_pr4
//      references in older docs) — heterogeneous, no fingerprint.
//   2  this format: {schema_version, environment, cells[]} with one cell
//      per (bench, config) pair and normalized units.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace serigraph {

/// Machine/build fingerprint captured at report-assembly time.
struct BenchEnvironment {
  std::string cpu_model;      // /proc/cpuinfo "model name" (or "unknown")
  int cores = 0;              // online hardware threads
  std::string governor;       // cpufreq scaling governor (or "unknown")
  std::string compiler;       // e.g. "gcc 12.2.0", "clang 16.0.6"
  std::string build_type;     // "release" (NDEBUG) or "debug"
  std::string sanitizers;     // comma list, or "none"
  bool perf_hw = false;       // hardware perf counters usable right now
  std::string perf_fallback;  // why not, when perf_hw is false
};

/// Probes the current machine and build. The perf probe opens (and
/// closes) a real counter group on the calling thread; it never fails —
/// denial is reported through perf_hw / perf_fallback.
BenchEnvironment CaptureBenchEnvironment();

/// One measured configuration: the unit of comparison for
/// bench_compare.py. `name` must be stable across runs (it is the join
/// key); `median` over `reps` repetitions is the compared statistic,
/// min/max bound the observed spread.
struct BenchCell {
  std::string name;
  std::string unit = "ns";  // "ns" | "us" | "ms" | "s"
  double median = 0.0;
  double min = 0.0;
  double max = 0.0;
  int reps = 0;
  /// Optional attached observations (perf counters, message totals...).
  /// Informational: compare never gates on counters, only on `median`.
  std::map<std::string, int64_t> counters;
  /// Peak resident set during this cell's runs, when sampled (else 0).
  int64_t peak_rss_kb = 0;
};

struct BenchReport {
  static constexpr int kSchemaVersion = 2;

  BenchEnvironment env;
  std::vector<BenchCell> cells;

  void Add(BenchCell cell) { cells.push_back(std::move(cell)); }

  std::string ToJson() const;

  /// Serializes to `path`; returns false (after logging to stderr) on I/O
  /// failure. A bench should not die just because the report path is bad.
  bool WriteJson(const std::string& path) const;
};

/// Median of `samples` (by copy; the input order is irrelevant).
/// Returns 0 for an empty vector.
double MedianOf(std::vector<double> samples);

/// Flags shared by every bench binary. Unrecognized arguments pass
/// through untouched (the Google Benchmark binaries forward them to the
/// library; the fig6 grids reject them).
struct BenchArgs {
  std::string json_path;       // --json=FILE -> write BENCH.json here
  bool perf_counters = false;  // --perf-counters
  std::string trace_out;       // --trace-out=FILE (fig6 grids only)
  int reps = 0;                // --reps=N (fig6 grids; 0 = single run)
  bool help = false;

  /// argv-style view of the unconsumed arguments (trailing nullptr
  /// included), backed by `storage`.
  std::vector<char*> passthrough;
  std::vector<std::string> storage;
};

BenchArgs ParseBenchArgs(int argc, char** argv);

}  // namespace serigraph

#endif  // SERIGRAPH_BENCH_HARNESS_H_
