#ifndef SERIGRAPH_GAS_GAS_ENGINE_H_
#define SERIGRAPH_GAS_GAS_ENGINE_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <deque>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/logging.h"
#include "common/status.h"
#include "graph/graph.h"
#include "obs/introspect.h"
#include "obs/trace.h"

namespace serigraph {

/// Execution modes of the GAS engine (paper Section 2.3).
enum class GasMode {
  /// Sync GAS: supersteps with global barriers; apply/scatter effects are
  /// visible only to the next superstep's gather (like BSP).
  kSync = 0,
  /// Async GAS as in GraphLab async *without* serializability: each of
  /// the gather/apply/scatter phases locks the neighborhood individually,
  /// so phases of neighboring vertex computations can interleave — the
  /// source of the livelock the paper describes for graph coloring.
  kAsync = 1,
  /// Async GAS *with* serializability: the neighborhood lock is held
  /// across all three phases (the effect of vertex-based distributed
  /// locking over the whole GAS computation), so no two neighbors
  /// execute concurrently.
  kAsyncSerializable = 2,
};

const char* GasModeName(GasMode mode);

struct GasOptions {
  GasMode mode = GasMode::kAsyncSerializable;
  /// Worker threads for the async modes ("fibers" stand-in).
  int num_threads = 4;
  /// Sync mode: superstep cap. Async modes: cap on total vertex updates —
  /// the livelock bound that makes non-terminating executions observable.
  int64_t max_supersteps = 1000;
  int64_t max_updates = 1000000;
  /// Feed per-thread neighborhood-lock wait times into the Introspector's
  /// contention profile (async modes). Off by default.
  bool introspect = false;
};

template <typename V>
struct GasResult {
  std::vector<V> values;
  int64_t updates = 0;    ///< vertex computations executed
  int supersteps = 0;     ///< sync mode only
  bool converged = false; ///< no active vertices remained
};

/// Pull-based Gather-Apply-Scatter engine over a shared-memory graph,
/// our stand-in for GraphLab (see DESIGN.md substitutions: the
/// distributed costs of vertex-based locking are measured in the Pregel
/// engine; this engine reproduces the GAS *semantics*, in particular the
/// difference between interleaved and serializable async execution).
///
/// A Program supplies:
///   using VertexValue = ...;
///   using Gather = ...;                      // accumulator
///   VertexValue InitialValue(VertexId v, const Graph& g) const;
///   Gather GatherInit() const;
///   Gather GatherEdge(Gather acc, VertexId v, VertexId neighbor,
///                     const VertexValue& neighbor_value) const;
///   // Returns the new value; sets *activate_neighbors if scatter should
///   // re-activate the in/out neighborhood.
///   VertexValue Apply(VertexId v, const VertexValue& old,
///                     const Gather& acc, bool* activate_neighbors) const;
template <typename Program>
class GasEngine {
 public:
  using VertexValue = typename Program::VertexValue;
  using Gather = typename Program::Gather;

  GasEngine(const Graph* graph, GasOptions options)
      : graph_(graph), options_(options) {
    SG_CHECK(graph_ != nullptr);
  }

  StatusOr<GasResult<VertexValue>> Run(const Program& program) {
    const VertexId n = graph_->num_vertices();
    values_.resize(n);
    for (VertexId v = 0; v < n; ++v) {
      values_[v] = program.InitialValue(v, *graph_);
    }
    GasResult<VertexValue> result;
    switch (options_.mode) {
      case GasMode::kSync:
        RunSync(program, &result);
        break;
      case GasMode::kAsync:
      case GasMode::kAsyncSerializable:
        RunAsync(program, &result);
        break;
    }
    result.values = std::move(values_);
    return result;
  }

 private:
  // --- sync GAS ----------------------------------------------------------

  void RunSync(const Program& program, GasResult<VertexValue>* result) {
    const VertexId n = graph_->num_vertices();
    std::vector<uint8_t> active(n, 1);
    std::vector<uint8_t> next_active(n, 0);
    std::vector<VertexValue> next_values(n);
    int64_t updates = 0;
    int superstep = 0;
    for (; superstep < options_.max_supersteps; ++superstep) {
      SG_TRACE_SPAN("gas.superstep");
      bool any = false;
      next_values = values_;
      for (VertexId v = 0; v < n; ++v) {
        if (!active[v]) continue;
        any = true;
        ++updates;
        Gather acc = program.GatherInit();
        for (VertexId u : graph_->InNeighbors(v)) {
          acc = program.GatherEdge(std::move(acc), v, u, values_[u]);
        }
        bool activate = false;
        next_values[v] = program.Apply(v, values_[v], acc, &activate);
        if (activate) {
          for (VertexId u : graph_->OutNeighbors(v)) next_active[u] = 1;
          for (VertexId u : graph_->InNeighbors(v)) next_active[u] = 1;
        }
      }
      if (!any) break;
      values_.swap(next_values);
      active.swap(next_active);
      std::fill(next_active.begin(), next_active.end(), 0);
    }
    result->updates = updates;
    result->supersteps = superstep;
    result->converged = superstep < options_.max_supersteps;
  }

  // --- async GAS ----------------------------------------------------------

  /// Neighborhood of v (v plus in/out neighbors), sorted and deduplicated;
  /// lock acquisition in id order prevents deadlock.
  std::vector<VertexId> Neighborhood(VertexId v) const {
    auto out = graph_->OutNeighbors(v);
    auto in = graph_->InNeighbors(v);
    std::vector<VertexId> hood;
    hood.reserve(out.size() + in.size() + 1);
    hood.push_back(v);
    hood.insert(hood.end(), out.begin(), out.end());
    hood.insert(hood.end(), in.begin(), in.end());
    std::sort(hood.begin(), hood.end());
    hood.erase(std::unique(hood.begin(), hood.end()), hood.end());
    return hood;
  }

  // Dynamic per-vertex lock sets are outside what the static analysis
  // can model (the capability set depends on runtime adjacency), so the
  // elements are sy::LockSetMutex — unannotated by design — and the
  // *set* is modeled by the phantom capability `hood_`: LockHood
  // acquires it, UnlockHood releases it, so every caller is still
  // checked for lock/unlock balance at hood granularity. Safety argument
  // for the elements: `hood` is sorted ascending and deduplicated, every
  // thread acquires in that global id order and releases in reverse, and
  // no other lock is taken while a hood is held (docs/LOCK_ORDER.md,
  // "gas.vertex" tier).
  void LockHood(const std::vector<VertexId>& hood) SY_ACQUIRE(hood_) {
    for (VertexId u : hood) locks_[u].Lock();
  }
  void UnlockHood(const std::vector<VertexId>& hood) SY_RELEASE(hood_) {
    for (auto it = hood.rbegin(); it != hood.rend(); ++it) {
      locks_[*it].Unlock();
    }
  }

  /// Pops the next active vertex, blocking; returns kInvalidVertex when
  /// the computation is finished (queue drained, nothing running) or the
  /// update budget is exhausted.
  VertexId PopTask() {
    sy::MutexLock lock(&queue_mu_);
    for (;;) {
      if (stopped_) return kInvalidVertex;
      if (!queue_.empty()) {
        VertexId v = queue_.front();
        queue_.pop_front();
        queued_[v] = 0;
        ++running_;
        return v;
      }
      if (running_ == 0) {
        stopped_ = true;
        queue_cv_.NotifyAll();
        return kInvalidVertex;
      }
      queue_cv_.Wait(queue_mu_);
    }
  }

  void PushTask(VertexId v) {
    sy::MutexLock lock(&queue_mu_);
    if (stopped_ || queued_[v]) return;
    queued_[v] = 1;
    queue_.push_back(v);
    queue_cv_.NotifyOne();
  }

  void TaskDone() {
    sy::MutexLock lock(&queue_mu_);
    --running_;
    if (queue_.empty() && running_ == 0) {
      stopped_ = true;
      queue_cv_.NotifyAll();
    } else {
      queue_cv_.NotifyOne();
    }
  }

  void RunAsync(const Program& program, GasResult<VertexValue>* result) {
    const VertexId n = graph_->num_vertices();
    locks_ = std::vector<sy::LockSetMutex>(n);
    {
      // Seeding happens before the worker threads exist, but the queue
      // fields are guarded: take the (uncontended) lock rather than
      // leaving the one unguarded initialization path in the engine.
      sy::MutexLock lock(&queue_mu_);
      queued_.assign(n, 0);
      queue_.clear();
      stopped_ = false;
      running_ = 0;
      for (VertexId v = 0; v < n; ++v) {
        queued_[v] = 1;
        queue_.push_back(v);
      }
    }
    std::atomic<int64_t> updates{0};
    const bool serializable = options_.mode == GasMode::kAsyncSerializable;
    if (options_.introspect) {
      Introspector::Get().Configure(std::max(1, options_.num_threads),
                                    "vertex");
      Introspector::Get().Enable();
    }

    auto worker = [&](int thread_idx) {
      for (;;) {
        VertexId v = PopTask();
        if (v == kInvalidVertex) return;
        // mo: convergence stat
        if (updates.fetch_add(1, std::memory_order_relaxed) >=
            options_.max_updates) {
          // Livelock bound hit: stop everything (non-converged).
          sy::MutexLock lock(&queue_mu_);
          stopped_ = true;
          queue_cv_.NotifyAll();
          return;
        }
        const std::vector<VertexId> hood = Neighborhood(v);

        bool activate = false;
        if (serializable) {
          // One critical section across all three phases: no neighboring
          // computation can interleave (condition C2).
          SG_TRACE_SPAN("gas.update");
          if (Introspector::enabled()) {
            const int64_t t0 = Tracer::NowMicros();
            LockHood(hood);
            Introspector& in = Introspector::Get();
            in.RecordWait(thread_idx, v, Tracer::NowMicros() - t0);
            in.OnProgress(thread_idx);
          } else {
            LockHood(hood);
          }
          Gather acc = program.GatherInit();
          for (VertexId u : graph_->InNeighbors(v)) {
            acc = program.GatherEdge(std::move(acc), v, u, values_[u]);
          }
          values_[v] = program.Apply(v, values_[v], acc, &activate);
          UnlockHood(hood);
        } else {
          // Per-phase locking only (GraphLab async without
          // serializability): neighbors can gather stale values while we
          // are between phases.
          Gather acc = program.GatherInit();
          {
            SG_TRACE_SPAN("gas.gather");
            LockHood(hood);
            for (VertexId u : graph_->InNeighbors(v)) {
              acc = program.GatherEdge(std::move(acc), v, u, values_[u]);
            }
            UnlockHood(hood);
          }
          std::this_thread::yield();  // widen the interleaving window
          {
            SG_TRACE_SPAN("gas.apply");
            LockHood(hood);
            values_[v] = program.Apply(v, values_[v], acc, &activate);
            UnlockHood(hood);
          }
        }
        if (activate) {
          for (VertexId u : graph_->OutNeighbors(v)) PushTask(u);
          for (VertexId u : graph_->InNeighbors(v)) PushTask(u);
        }
        TaskDone();
      }
    };

    std::vector<std::thread> threads;
    const int num_threads = std::max(1, options_.num_threads);
    threads.reserve(num_threads);
    for (int t = 0; t < num_threads; ++t) threads.emplace_back(worker, t);
    for (auto& t : threads) t.join();
    if (options_.introspect) Introspector::Get().Disable();

    result->updates = updates.load();
    result->converged = result->updates < options_.max_updates;
  }

  const Graph* graph_;
  GasOptions options_;
  std::vector<VertexValue> values_;

  /// One lock per vertex; acquired only via LockHood (ascending id
  /// order). Tier "gas.vertex" in docs/LOCK_ORDER.md.
  std::vector<sy::LockSetMutex> locks_;
  /// Phantom capability standing in for "some hood of locks_ elements is
  /// held"; see LockHood/UnlockHood.
  sy::PhantomCapability hood_;
  sy::Mutex queue_mu_;
  sy::CondVar queue_cv_;
  std::deque<VertexId> queue_ SY_GUARDED_BY(queue_mu_);
  std::vector<uint8_t> queued_ SY_GUARDED_BY(queue_mu_);
  int64_t running_ SY_GUARDED_BY(queue_mu_) = 0;
  bool stopped_ SY_GUARDED_BY(queue_mu_) = false;
};

}  // namespace serigraph

#endif  // SERIGRAPH_GAS_GAS_ENGINE_H_
