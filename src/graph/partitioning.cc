#include "graph/partitioning.h"

#include <algorithm>

#include "common/logging.h"
#include "common/rng.h"

namespace serigraph {

Partitioning Partitioning::Hash(VertexId num_vertices, int num_workers,
                                int partitions_per_worker, uint64_t seed) {
  SG_CHECK_GT(num_workers, 0);
  SG_CHECK_GT(partitions_per_worker, 0);
  const int num_partitions = num_workers * partitions_per_worker;

  Partitioning p;
  p.num_workers_ = num_workers;
  p.vertex_to_partition_.resize(num_vertices);
  for (VertexId v = 0; v < num_vertices; ++v) {
    uint64_t h = static_cast<uint64_t>(v) + seed * 0x9e3779b97f4a7c15ULL;
    p.vertex_to_partition_[v] =
        static_cast<PartitionId>(SplitMix64(&h) % num_partitions);
  }
  p.partition_to_worker_.resize(num_partitions);
  for (int part = 0; part < num_partitions; ++part) {
    p.partition_to_worker_[part] = static_cast<WorkerId>(part % num_workers);
  }
  p.BuildIndexes();
  return p;
}

Partitioning Partitioning::Contiguous(VertexId num_vertices, int num_workers,
                                      int partitions_per_worker) {
  SG_CHECK_GT(num_workers, 0);
  SG_CHECK_GT(partitions_per_worker, 0);
  const int num_partitions = num_workers * partitions_per_worker;

  Partitioning p;
  p.num_workers_ = num_workers;
  p.vertex_to_partition_.resize(num_vertices);
  const VertexId chunk =
      num_vertices == 0 ? 1 : (num_vertices + num_partitions - 1) /
                                  num_partitions;
  for (VertexId v = 0; v < num_vertices; ++v) {
    p.vertex_to_partition_[v] = static_cast<PartitionId>(
        std::min<VertexId>(v / chunk, num_partitions - 1));
  }
  // Contiguous partitions also map contiguously onto workers so that a
  // worker owns a contiguous vertex range, matching the layout of the
  // paper's worked examples (Figures 2-5).
  p.partition_to_worker_.resize(num_partitions);
  for (int part = 0; part < num_partitions; ++part) {
    p.partition_to_worker_[part] =
        static_cast<WorkerId>(part / partitions_per_worker);
  }
  p.BuildIndexes();
  return p;
}

StatusOr<Partitioning> Partitioning::FromAssignment(
    std::vector<PartitionId> vertex_to_partition,
    std::vector<WorkerId> partition_to_worker) {
  const int num_partitions = static_cast<int>(partition_to_worker.size());
  if (num_partitions == 0) {
    return Status::InvalidArgument("no partitions");
  }
  int max_worker = -1;
  for (WorkerId w : partition_to_worker) {
    if (w < 0) return Status::InvalidArgument("negative worker id");
    max_worker = std::max(max_worker, static_cast<int>(w));
  }
  for (PartitionId part : vertex_to_partition) {
    if (part < 0 || part >= num_partitions) {
      return Status::InvalidArgument("vertex mapped to invalid partition");
    }
  }
  std::vector<bool> seen(max_worker + 1, false);
  for (WorkerId w : partition_to_worker) seen[w] = true;
  for (bool s : seen) {
    if (!s) return Status::InvalidArgument("worker ids not dense");
  }

  Partitioning p;
  p.num_workers_ = max_worker + 1;
  p.vertex_to_partition_ = std::move(vertex_to_partition);
  p.partition_to_worker_ = std::move(partition_to_worker);
  p.BuildIndexes();
  return p;
}

void Partitioning::BuildIndexes() {
  worker_partitions_.assign(num_workers_, {});
  for (int part = 0; part < num_partitions(); ++part) {
    worker_partitions_[partition_to_worker_[part]].push_back(part);
  }
  partition_vertices_.assign(num_partitions(), {});
  for (VertexId v = 0; v < num_vertices(); ++v) {
    partition_vertices_[vertex_to_partition_[v]].push_back(v);
  }
}

const char* VertexLocalityName(VertexLocality locality) {
  switch (locality) {
    case VertexLocality::kPInternal:
      return "p-internal";
    case VertexLocality::kLocalBoundary:
      return "local-boundary";
    case VertexLocality::kRemoteBoundary:
      return "remote-boundary";
    case VertexLocality::kMixedBoundary:
      return "mixed-boundary";
  }
  return "?";
}

BoundaryInfo::BoundaryInfo(const Graph& graph,
                           const Partitioning& partitioning) {
  SG_CHECK_EQ(graph.num_vertices(), partitioning.num_vertices());
  const VertexId n = graph.num_vertices();
  locality_.resize(n);
  for (VertexId v = 0; v < n; ++v) {
    const PartitionId pv = partitioning.PartitionOf(v);
    const WorkerId wv = partitioning.WorkerOfPartition(pv);
    bool has_local = false;   // same worker, different partition
    bool has_remote = false;  // different worker
    auto scan = [&](std::span<const VertexId> nbrs) {
      for (VertexId u : nbrs) {
        const PartitionId pu = partitioning.PartitionOf(u);
        if (pu == pv) continue;
        if (partitioning.WorkerOfPartition(pu) == wv) {
          has_local = true;
        } else {
          has_remote = true;
        }
      }
    };
    scan(graph.OutNeighbors(v));
    scan(graph.InNeighbors(v));
    VertexLocality loc;
    if (has_remote && has_local) {
      loc = VertexLocality::kMixedBoundary;
    } else if (has_remote) {
      loc = VertexLocality::kRemoteBoundary;
    } else if (has_local) {
      loc = VertexLocality::kLocalBoundary;
    } else {
      loc = VertexLocality::kPInternal;
    }
    locality_[v] = loc;
    ++counts_[static_cast<int>(loc)];
  }
}

std::vector<std::vector<PartitionId>> BuildPartitionGraph(
    const Graph& graph, const Partitioning& partitioning) {
  SG_CHECK_EQ(graph.num_vertices(), partitioning.num_vertices());
  std::vector<std::vector<PartitionId>> adj(partitioning.num_partitions());
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    const PartitionId pv = partitioning.PartitionOf(v);
    for (VertexId u : graph.OutNeighbors(v)) {
      const PartitionId pu = partitioning.PartitionOf(u);
      if (pu != pv) {
        adj[pv].push_back(pu);
        adj[pu].push_back(pv);  // locking is symmetric (Section 3.5)
      }
    }
  }
  for (auto& nbrs : adj) {
    std::sort(nbrs.begin(), nbrs.end());
    nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
  }
  return adj;
}

int64_t CountPartitionForks(
    const std::vector<std::vector<PartitionId>>& partition_graph) {
  int64_t directed = 0;
  for (const auto& nbrs : partition_graph) {
    directed += static_cast<int64_t>(nbrs.size());
  }
  return directed / 2;
}

}  // namespace serigraph
