#ifndef SERIGRAPH_PREGEL_ENGINE_H_
#define SERIGRAPH_PREGEL_ENGINE_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "common/bitmap.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/mutex.h"
#include "common/planted.h"
#include "common/schedule_hooks.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/threading.h"
#include "common/timer.h"
#include "fault/fault.h"
#include "fault/supervisor.h"
#include "graph/graph.h"
#include "graph/partitioning.h"
#include "net/transport.h"
#include "obs/flightrec.h"
#include "obs/introspect.h"
#include "obs/memprof.h"
#include "obs/perfcounters.h"
#include "obs/report.h"
#include "obs/timeline.h"
#include "obs/trace.h"
#include "obs/watchdog.h"
#include "pregel/checkpoint.h"
#include "pregel/message_codec.h"
#include "pregel/message_store.h"
#include "pregel/model.h"
#include "sync/technique.h"
#include "verify/history.h"

namespace serigraph {

/// Vertex-centric execution engine in the style of Pregel/Giraph, with
/// both the BSP and AP computation models and pluggable synchronization
/// techniques that make AP executions serializable (paper Sections 2-6).
///
/// A Program supplies:
///   using VertexValue = ...;      // per-vertex state (the "color")
///   using Message = ...;          // trivially copyable, or specialize
///                                 // MessageCodec<Message>
///   VertexValue InitialValue(VertexId v, const Graph& g) const;
///   template <typename Ctx>
///   void Compute(Ctx& ctx, std::span<const Message> messages) const;
/// and optionally a message combiner:
///   static Message Combine(const Message& a, const Message& b);
///
/// Compute() sees the Pregel API through Ctx: id(), superstep(), value(),
/// set_value(), out_neighbors(), SendTo(), SendToAllOutNeighbors(),
/// VoteToHalt(), num_vertices().
///
/// An Engine instance runs exactly once; construct a new one per run.
template <typename Program>
class Engine {
 public:
  using VertexValue = typename Program::VertexValue;
  using Message = typename Program::Message;

  /// True if the program declares a message combiner.
  static constexpr bool kHasCombiner =
      requires(const Message& a, const Message& b) {
        { Program::Combine(a, b) } -> std::convertible_to<Message>;
      };

  /// True if the program is structurally eligible for the per-superstep
  /// push/pull switch (docs/PERF.md): broadcasts fold through the
  /// combiner, and the payload can live in a flat per-vertex array.
  /// Whether pull actually engages is a runtime decision (BSP, no sync
  /// technique, no recorder, no checkpointing — see Run()).
  static constexpr bool kPullCapable =
      kHasCombiner && std::is_trivially_copyable_v<Message> &&
      std::is_default_constructible_v<Message>;

  struct Result {
    RunStats stats;
    /// Final vertex values, indexed by vertex id.
    std::vector<VertexValue> values;
    /// Transaction history, present iff options.record_history.
    std::shared_ptr<HistoryRecorder> history;
  };

  Engine(const Graph* graph, EngineOptions options)
      : graph_(graph), options_(std::move(options)) {
    SG_CHECK(graph_ != nullptr);
  }

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Overrides the partitioning built from EngineOptions. Must agree with
  /// options.num_workers and the graph's vertex count.
  Status UsePartitioning(Partitioning partitioning) {
    if (partitioning.num_vertices() != graph_->num_vertices()) {
      return Status::InvalidArgument("partitioning vertex count mismatch");
    }
    if (partitioning.num_workers() != options_.num_workers) {
      return Status::InvalidArgument("partitioning worker count mismatch");
    }
    partitioning_ = std::move(partitioning);
    has_partitioning_ = true;
    return Status::OK();
  }

  /// Executes the program to completion (or max_supersteps).
  StatusOr<Result> Run(const Program& program);

  /// Valid after Run() (or UsePartitioning()).
  const Partitioning& partitioning() const { return partitioning_; }

  /// Whether this program's state can be checkpointed (Section 6.4).
  static constexpr bool kCheckpointable =
      std::is_trivially_copyable_v<VertexValue> &&
      std::is_trivially_copyable_v<Message>;

  /// Path of the most recent checkpoint written by Run(), empty if none.
  const std::string& last_checkpoint_path() const {
    return last_checkpoint_path_;
  }

  /// Number of aggregator slots available to programs (Pregel-style
  /// aggregators: values contributed during superstep s are reduced at
  /// the barrier and visible to every vertex in superstep s+1).
  static constexpr int kNumAggregatorSlots = 8;

 private:
  enum class AggOp : uint8_t { kUnused = 0, kSum = 1, kMin = 2, kMax = 3 };

  static void MergeAgg(double* into, AggOp op, double v) {
    switch (op) {
      case AggOp::kSum:
        *into += v;
        break;
      case AggOp::kMin:
        *into = v < *into ? v : *into;
        break;
      case AggOp::kMax:
        *into = v > *into ? v : *into;
        break;
      case AggOp::kUnused:
        break;
    }
  }

  /// Unsynchronized aggregator accumulation scoped to one partition run
  /// (or one constrained-BSP superstep): Compute's Aggregate* calls fold
  /// here lock-free and the owning thread merges the result into
  /// WorkerAggregates once, instead of taking the worker mutex per call.
  struct LocalAggregates {
    AggOp op[kNumAggregatorSlots] = {};
    double value[kNumAggregatorSlots] = {};
    bool any = false;

    void Fold(int slot, AggOp new_op, double v) {
      any = true;
      if (op[slot] == AggOp::kUnused) {
        op[slot] = new_op;
        value[slot] = v;
        return;
      }
      SG_DCHECK(op[slot] == new_op);
      MergeAgg(&value[slot], new_op, v);
    }
  };

  /// Per-worker aggregator accumulation for the current superstep.
  struct WorkerAggregates {
    sy::Mutex mu;
    AggOp op[kNumAggregatorSlots] SY_GUARDED_BY(mu) = {};
    double value[kNumAggregatorSlots] SY_GUARDED_BY(mu) = {};

    /// One lock acquisition merges a whole LocalAggregates batch.
    void MergeFrom(const LocalAggregates& local) {
      if (!local.any) return;
      sy::MutexLock lock(&mu);
      for (int slot = 0; slot < kNumAggregatorSlots; ++slot) {
        if (local.op[slot] == AggOp::kUnused) continue;
        if (op[slot] == AggOp::kUnused) {
          op[slot] = local.op[slot];
          value[slot] = local.value[slot];
          continue;
        }
        SG_DCHECK(op[slot] == local.op[slot]);
        MergeAgg(&value[slot], op[slot], local.value[slot]);
      }
    }
  };

  // ------------------------------------------------------------------
  // Per-partition message state. The sharded MessageStore holds the
  // messages themselves: under BSP, arrivals are invisible until the
  // barrier Swap (the staleness the paper's Figure 2 shows); under AP
  // arrivals are visible immediately. Eligibility reads (`active_bits`,
  // store.pending_bits()) are lock-free bitmap words — no lock on the
  // hot path, and barrier accounting is a popcount.
  // ------------------------------------------------------------------
  struct PartitionStore {
    MessageStore<Message> store;
    /// Bit li set <=> local vertex li has NOT voted to halt. A bit flips
    /// only when the (exclusively) executing vertex changes its vote, or
    /// during single-threaded restore; other threads read it lock-free
    /// for eligibility (word-packed: see common/bitmap.h).
    Bitmap active_bits;
    /// Deferred recorder notifications for BSP (delivery becomes visible
    /// only at the swap): (src, dst, version). History recording is a
    /// test/audit feature, so this sits outside the message hot path.
    sy::Mutex notify_mu;
    std::vector<std::tuple<VertexId, VertexId, uint64_t>> pending_notify
        SY_GUARDED_BY(notify_mu);
  };

  // ------------------------------------------------------------------
  // Per-worker state; implements the WorkerHandle the techniques use.
  // ------------------------------------------------------------------
  struct OutBuffer {
    sy::Mutex mu;
    sy::CondVar flushed_cv;
    BufferWriter writer SY_GUARDED_BY(mu);
    /// Sender-side combining map (used only when the program has a
    /// combiner and combining is enabled): messages fold here keyed by
    /// destination vertex and are encoded at flush time.
    CombiningMap<Message> combine SY_GUARDED_BY(mu);
    /// Estimated encoded size of `combine`'s entries (flush trigger).
    int64_t combine_bytes SY_GUARDED_BY(mu) = 0;
    /// True while a flusher is encoding/sending outside the lock; a
    /// second flusher must wait on `flushed_cv` so that "flush returned"
    /// keeps meaning "everything previously buffered is on the wire".
    bool flushing SY_GUARDED_BY(mu) = false;
  };

  /// Partition-execution-scoped staging of remote sends: Compute() calls
  /// append here with no lock at all, and the whole batch folds/encodes
  /// into the out-buffers under one lock per destination when it drains.
  /// Drains happen before the partition's (or vertex's) forks can be
  /// released, so the write-all (C1) ordering is unchanged — staged
  /// records are always on the shared buffer by the time any handover
  /// flush could need them. Buffers are pooled per worker and keep their
  /// capacity (steady-state zero allocation).
  struct SendStaging {
    struct Bucket {
      std::vector<std::pair<VertexId, Message>> records;
      int64_t bytes = 0;
    };
    std::vector<Bucket> per_dst;       // indexed by destination worker
    std::vector<WorkerId> touched;     // destinations with staged records

    /// GPOP-style partition bins (BSP path only): same-worker
    /// cross-partition sends collect here, keyed by destination
    /// partition, instead of random-accessing each destination store
    /// per message. Bins stay cache-resident (bounded by the flush
    /// threshold) and drain sequentially in partition order, one
    /// AppendBatch per bin. AP keeps the eager per-message DeliverLocal
    /// — Section 4.1 needs local replica updates visible immediately.
    struct LocalBin {
      std::vector<std::pair<int32_t, Message>> records;  // (li, payload)
    };
    std::vector<LocalBin> per_part;    // indexed by destination partition
    std::vector<PartitionId> parts_touched;
  };

  /// Records per local partition bin before it is force-flushed to the
  /// destination store. Sized so a bin (records + the store shard it
  /// lands in) stays within L1/L2 while amortizing the shard locks.
  static constexpr size_t kLocalBinFlushRecords = 512;

  struct WorkerState final : public WorkerHandle {
    Engine* engine = nullptr;
    WorkerId id = kInvalidWorker;
    std::vector<std::unique_ptr<OutBuffer>> out;  // per destination worker
    std::thread comm_thread;
    std::unique_ptr<ThreadPool> pool;  // null when 1 compute thread

    WorkerAggregates aggregates;

    /// Per-superstep accumulators for the timeline (atomic because a
    /// worker may run several compute threads); drained at each barrier.
    std::atomic<int64_t> ss_executions{0};
    std::atomic<int64_t> ss_messages{0};
    std::atomic<int64_t> ss_fork_wait_us{0};
    /// Per-superstep hardware/software counter deltas by phase, fed by
    /// the SY_PERF_SCOPE probes on this worker's threads (one relaxed
    /// load each when options.perf_counters is off); drained like the
    /// ss_* accumulators above.
    PerfPhaseAccum ss_perf;

    sy::Mutex ack_mu;
    sy::CondVar ack_cv;
    int acks_pending SY_GUARDED_BY(ack_mu) = 0;
    /// Peers this worker has sent data to since the last superstep-end
    /// flush; only those need a delivery confirmation (marker/ack).
    std::vector<std::atomic<uint8_t>> touched;

    /// Comm-thread-only scratch for ApplyDataBatch: decoded records
    /// grouped by destination partition so each store shard is locked
    /// once per batch instead of once per message.
    std::vector<std::vector<std::pair<int32_t, Message>>> batch_buckets;
    std::vector<PartitionId> batch_touched;

    /// Reusable send-staging buffers; ProcessPartition checks one out
    /// for the duration of a partition's execution.
    sy::Mutex staging_mu;
    std::vector<std::unique_ptr<SendStaging>> staging_pool
        SY_GUARDED_BY(staging_mu);

    void FlushRemoteTo(WorkerId dst) override { engine->FlushBuffer(*this, dst); }
    void FlushAllRemote() override {
      for (WorkerId dst = 0; dst < engine->options_.num_workers; ++dst) {
        if (dst != id) engine->FlushBuffer(*this, dst);
      }
    }
    void SendControl(WorkerId dst, uint32_t tag, int64_t a, int64_t b,
                     int64_t c) override {
      WireMessage msg;
      msg.src = id;
      msg.dst = dst;
      msg.kind = MessageKind::kControl;
      msg.tag = tag;
      msg.a = a;
      msg.b = b;
      msg.c = c;
      engine->transport_->Send(std::move(msg));
    }
    WorkerId worker_id() const override { return id; }
  };

  // ------------------------------------------------------------------
  // The Pregel API surface handed to Program::Compute.
  // ------------------------------------------------------------------
  class Context {
   public:
    Context(Engine* engine, WorkerState* worker, VertexId vertex,
            int superstep, uint64_t version, LocalAggregates* aggregates,
            SendStaging* staging)
        : engine_(engine),
          worker_(worker),
          vertex_(vertex),
          superstep_(superstep),
          version_(version),
          aggregates_(aggregates),
          staging_(staging) {}

    VertexId id() const { return vertex_; }
    int superstep() const { return superstep_; }
    VertexId num_vertices() const { return engine_->graph_->num_vertices(); }

    const VertexValue& value() const { return engine_->values_[vertex_]; }
    void set_value(VertexValue value) {
      engine_->values_[vertex_] = std::move(value);
    }

    std::span<const VertexId> out_neighbors() const {
      return engine_->graph_->OutNeighbors(vertex_);
    }
    int64_t num_out_edges() const {
      return engine_->graph_->OutDegree(vertex_);
    }

    /// Sends `message` to vertex `target` (must be an out-neighbor for
    /// the serializability guarantees to apply; see paper Section 3.1).
    void SendTo(VertexId target, const Message& message) {
      ++sent_count_;
      engine_->SendMessage(*worker_, staging_, vertex_, target, message,
                           version_);
    }

    void SendToAllOutNeighbors(const Message& message) {
      if constexpr (kPullCapable) {
        // Pull-capture superstep: the broadcast value is parked in the
        // sender's slot of the double-buffered broadcast array; receivers
        // pull it over the in-edge CSR next superstep instead of the
        // engine materializing deg(v) message-store appends now.
        if (engine_->capture_bcast_) {
          engine_->CaptureBroadcast(vertex_, message);
          // Counter parity with the push path: a broadcast still "sends"
          // one message per out-edge as far as the stats are concerned.
          sent_count_ += engine_->graph_->OutDegree(vertex_);
          return;
        }
      }
      for (VertexId target : out_neighbors()) SendTo(target, message);
    }

    /// Aggregators (Pregel-style): contributions made during superstep s
    /// are reduced globally at the barrier; AggregatedValue returns the
    /// result of superstep s-1 (0 if the slot was never used). A slot
    /// must be used with one operation consistently.
    void AggregateSum(int slot, double value) {
      aggregates_->Fold(slot, AggOp::kSum, value);
    }
    void AggregateMin(int slot, double value) {
      aggregates_->Fold(slot, AggOp::kMin, value);
    }
    void AggregateMax(int slot, double value) {
      aggregates_->Fold(slot, AggOp::kMax, value);
    }
    double AggregatedValue(int slot) const {
      return engine_->global_aggregates_[slot];
    }

    /// Declares this vertex inactive until a message reactivates it.
    void VoteToHalt() { voted_halt_ = true; }

    bool voted_halt() const { return voted_halt_; }
    bool sent_any() const { return sent_count_ != 0; }
    /// Messages sent by this execution; the caller batches them into the
    /// shared counters once per vertex instead of once per message.
    int64_t sent_count() const { return sent_count_; }

   private:
    Engine* engine_;
    WorkerState* worker_;
    VertexId vertex_;
    int superstep_;
    uint64_t version_;
    LocalAggregates* aggregates_;
    SendStaging* staging_;
    bool voted_halt_ = false;
    int64_t sent_count_ = 0;
  };

  // --- setup --------------------------------------------------------

  Status Validate() {
    if (options_.num_workers < 1) {
      return Status::InvalidArgument("need at least one worker");
    }
    if (options_.sync_mode == SyncMode::kConstrainedBspLocking) {
      // Proposition 1's technique is specifically for synchronous models.
      if (options_.model != ComputationModel::kBsp) {
        return Status::InvalidArgument(
            "constrained vertex-based locking is the synchronous-model "
            "technique (Proposition 1); use kVertexLocking under AP");
      }
    } else if (options_.sync_mode != SyncMode::kNone &&
               options_.model == ComputationModel::kBsp) {
      // The regular techniques need eager local replica updates, which
      // synchronous models cannot provide (paper Section 4.1); only the
      // Proposition 1 variant (kConstrainedBspLocking) works under BSP.
      return Status::Unimplemented(
          "this technique requires the AP model; BSP cannot update local "
          "replicas eagerly (paper Section 4.1) - use "
          "kConstrainedBspLocking instead");
    }
    if (options_.partitions_per_worker == 0) {
      options_.partitions_per_worker = options_.num_workers;  // Giraph default
    }
    if (options_.compute_threads_per_worker < 1) {
      options_.compute_threads_per_worker = 1;
    }
    if ((options_.checkpoint_every > 0 || !options_.restore_path.empty()) &&
        !kCheckpointable) {
      return Status::Unimplemented(
          "checkpointing requires trivially copyable values and messages");
    }
    if (options_.fault.recover && !kCheckpointable) {
      return Status::Unimplemented(
          "in-engine recovery restores from checkpoints and requires "
          "trivially copyable values and messages");
    }
    if (options_.fault.recover && options_.fault.max_recovery_attempts < 1) {
      return Status::InvalidArgument("max_recovery_attempts must be >= 1");
    }
    return Status::OK();
  }

  void EnsurePartitioning() {
    if (has_partitioning_) return;
    switch (options_.partition_scheme) {
      case PartitionScheme::kHash:
        partitioning_ = Partitioning::Hash(
            graph_->num_vertices(), options_.num_workers,
            options_.partitions_per_worker, options_.partition_seed);
        break;
      case PartitionScheme::kContiguous:
        partitioning_ = Partitioning::Contiguous(
            graph_->num_vertices(), options_.num_workers,
            options_.partitions_per_worker);
        break;
    }
    has_partitioning_ = true;
  }

  // --- messaging ----------------------------------------------------

  static void EncodeRecord(BufferWriter& writer, VertexId src, VertexId dst,
                           uint64_t version, const Message& message) {
    writer.WriteVarint(static_cast<uint64_t>(dst));
    writer.WriteVarint(static_cast<uint64_t>(src));
    writer.WriteVarint(version);
    MessageCodec<Message>::Encode(writer, message);
  }

  void DeliverLocal(VertexId src, VertexId dst, const Message& message,
                    uint64_t version) {
    PartitionStore& ps = *stores_[partitioning_.PartitionOf(dst)];
    // Sampled append-cost probe: timing every append would make the
    // histogram itself the hot path.
    thread_local uint32_t append_tick = 0;
    if ((++append_tick & 255u) == 0) {
      const auto t0 = std::chrono::steady_clock::now();
      ps.store.Append(local_index_[dst], message);
      store_append_hist_->Record(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count());
    } else {
      ps.store.Append(local_index_[dst], message);
    }
    if (recorder_ != nullptr) {
      if (options_.model == ComputationModel::kBsp) {
        sy::MutexLock lock(&ps.notify_mu);
        ps.pending_notify.emplace_back(src, dst, version);
      } else {
        recorder_->OnDeliver(src, dst, version);
      }
    }
  }

  // --- push/pull switch (docs/PERF.md) --------------------------------

  /// Parks a pull-capture superstep's broadcast in the sender's slot.
  /// `v` executes exclusively (Pregel semantics), so the value write is
  /// owner-exclusive plain; only the presence bit needs an atomic RMW
  /// (neighbors' bits share words). Readers gather after the barrier.
  void CaptureBroadcast(VertexId v, const Message& message) {
    if constexpr (kPullCapable) {
      std::vector<Message>& vals = bcast_vals_[bcast_cur_];
      Bitmap& bits = bcast_bits_[bcast_cur_];
      if (bits.Test(static_cast<size_t>(v))) {
        // Second broadcast in the same superstep: fold, exactly like the
        // two messages would have combined in the store.
        vals[v] = Program::Combine(vals[v], message);
      } else {
        vals[v] = message;
        bits.Set(static_cast<size_t>(v));
      }
    }
  }

  bool DecidePull(int64_t density_milli) const {
    if (options_.push_pull == PushPullMode::kForcePull) return true;
    return density_milli >= options_.pull_density_threshold_milli;
  }

  /// Barrier serial section: record this superstep's frontier density,
  /// publish its captured broadcasts for next superstep's gather (flip
  /// the double buffer), and decide whether the NEXT superstep captures.
  /// `total` is the barrier's eligible-vertex count (broadcasters
  /// included when this superstep captured).
  void AdvancePullEpoch(int superstep, int64_t total, bool stop) {
    last_density_milli_ = std::min<int64_t>(
        1000, Frontier::DensityMilli(static_cast<size_t>(total),
                                     static_cast<size_t>(
                                         graph_->num_vertices())));
    frontier_density_gauge_->Observe(last_density_milli_);
    if (!pull_enabled_) return;
    const bool captured = capture_bcast_;
    if (captured) {
      bcast_cur_ ^= 1;
      bcast_bits_[bcast_cur_].ClearAll();
    }
    gather_bcast_ = captured;
    capture_bcast_ = !stop && DecidePull(last_density_milli_);
    if (capture_bcast_) pull_supersteps_->Increment();
    if (capture_bcast_ != captured) {
      SG_LOG(kDebug) << "push/pull switch: superstep " << superstep + 1
                     << " mode=" << (capture_bcast_ ? "pull" : "push")
                     << " (density " << last_density_milli_ << "/1000,"
                     << " threshold "
                     << options_.pull_density_threshold_milli << ")";
    } else {
      SG_LOG(kDebug) << "push/pull: superstep " << superstep + 1
                     << " stays " << (capture_bcast_ ? "pull" : "push")
                     << " (density " << last_density_milli_ << "/1000)";
    }
  }

  void SendMessage(WorkerState& worker, SendStaging* staging, VertexId src,
                   VertexId dst, const Message& message, uint64_t version) {
    const WorkerId dst_worker = partitioning_.WorkerOf(dst);
    if (dst_worker == worker.id) {
      local_sends_->Increment();
      if (staging != nullptr && bsp_local_bins_) {
        // BSP only: the message is invisible until the next superstep
        // anyway, so it can sit in a cache-resident per-destination-
        // partition bin and land in the store as one AppendBatch per
        // partition, in partition order, instead of a random-access
        // append per message (GPOP-style scatter). AP never takes this
        // path — Section 4.1 freshness needs the eager DeliverLocal.
        const PartitionId p = partitioning_.PartitionOf(dst);
        typename SendStaging::LocalBin& bin = staging->per_part[p];
        if (bin.records.empty()) staging->parts_touched.push_back(p);
        bin.records.emplace_back(local_index_[dst], message);
        if (bin.records.size() >= kLocalBinFlushRecords) {
          FlushLocalBin(p, bin);
        }
        return;
      }
      // Local replica update: eager under AP (Section 4.1), hidden until
      // the next superstep under BSP (handled inside DeliverLocal).
      DeliverLocal(src, dst, message, version);
      return;
    }
    if (staging != nullptr) {
      // Lock-free staging: the record joins the partition-scoped batch
      // and reaches the out-buffer in one locked drain per destination.
      // Staged records carry no (src, version) — staging is off whenever
      // a history recorder is attached, and nothing else reads them.
      typename SendStaging::Bucket& bucket = staging->per_dst[dst_worker];
      if (bucket.records.empty()) {
        staging->touched.push_back(dst_worker);
        // mo: dirty hint; barrier orders the data
        worker.touched[dst_worker].store(1, std::memory_order_relaxed);
      }
      bucket.records.emplace_back(dst, message);
      bucket.bytes += kCombinedRecordBytes;
      if (bucket.bytes >= options_.message_batch_bytes) {
        DrainStagingTo(worker, *staging, dst_worker);
      }
      return;
    }
    // mo: dirty hint; barrier orders the data
    worker.touched[dst_worker].store(1, std::memory_order_relaxed);
    OutBuffer& out = *worker.out[dst_worker];
    if constexpr (kHasCombiner) {
      if (sender_combining_) {
        // Sender-side combining (Besta et al.'s push-side reduction):
        // fold into the per-destination map under the out lock; the
        // encoded record is produced only at flush time.
        sy::MutexLock lock(&out.mu);
        if (out.combine.Fold(dst, message,
                             [](const Message& a, const Message& b) {
                               return Program::Combine(a, b);
                             })) {
          out.combine_bytes += kCombinedRecordBytes;
        }
        if (static_cast<int64_t>(out.writer.size()) + out.combine_bytes >=
            options_.message_batch_bytes) {
          FlushBufferLocked(worker, dst_worker, out);
        }
        return;
      }
    }
    sy::MutexLock lock(&out.mu);
    EncodeRecord(out.writer, src, dst, version, message);
    if (static_cast<int64_t>(out.writer.size()) >=
        options_.message_batch_bytes) {
      FlushBufferLocked(worker, dst_worker, out);
    }
  }

  /// Per-record size estimate for a combined map entry (varint ids and
  /// the payload); only the flush trigger depends on it, so a rough
  /// constant is fine.
  static constexpr int64_t kCombinedRecordBytes =
      static_cast<int64_t>(sizeof(Message)) + 6;

  void FlushBuffer(WorkerState& worker, WorkerId dst) {
    OutBuffer& out = *worker.out[dst];
    sy::MutexLock lock(&out.mu);
    FlushBufferLocked(worker, dst, out);
  }

  /// Flushes `out` to the transport. Guarantee on return: every record
  /// encoded or folded into `out` before the call is on the wire — the
  /// superstep-end marker protocol and a fork handover's freshness
  /// argument (condition C1) both rely on exactly that. Encoding of the
  /// combined records happens *outside* the lock (it is the expensive
  /// part); a concurrent flusher waits on `flushed_cv` instead of
  /// overtaking the in-flight batch.
  void FlushBufferLocked(WorkerState& worker, WorkerId dst, OutBuffer& out)
      SY_REQUIRES(out.mu) {
    while (out.flushing) out.flushed_cv.Wait(out.mu);
    const bool have_combined = out.combine.size() != 0;
    if (out.writer.size() == 0 && !have_combined) return;
    SG_TRACE_SPAN("net.flush_batch");
    flushes_->Increment();
    std::vector<uint8_t> payload = out.writer.Release();
    out.writer.Clear();
    thread_local std::vector<std::pair<VertexId, Message>> staging;
    staging.clear();
    if (have_combined) out.combine.Drain(&staging);
    out.combine_bytes = 0;
    out.flushing = true;
    out.mu.Unlock();
    if (!staging.empty()) {
      BufferWriter writer;
      writer.Adopt(std::move(payload));
      for (const auto& [dst_vertex, message] : staging) {
        // Combined records carry no meaningful (src, version); history
        // recording disables sender combining, so nothing reads them.
        EncodeRecord(writer, /*src=*/0, dst_vertex, /*version=*/0, message);
      }
      payload = writer.Release();
    }
    WireMessage msg;
    msg.src = worker.id;
    msg.dst = dst;
    msg.kind = MessageKind::kDataBatch;
    msg.payload = std::move(payload);
    transport_->Send(std::move(msg));
    out.mu.Lock();
    out.flushing = false;
    out.flushed_cv.NotifyAll();
  }

  /// Moves one staged destination bucket into the shared out-buffer
  /// under a single lock acquisition. Called when a bucket fills and
  /// from DrainStaging before any fork release, so the C1 guarantee
  /// ("flush-before-handover") sees staged records as already buffered.
  void DrainStagingTo(WorkerState& worker, SendStaging& staging,
                      WorkerId dst_worker) {
    typename SendStaging::Bucket& bucket = staging.per_dst[dst_worker];
    if (bucket.records.empty()) return;
    OutBuffer& out = *worker.out[dst_worker];
    sy::MutexLock lock(&out.mu);
    if constexpr (kHasCombiner) {
      if (sender_combining_) {
        for (const auto& [dst, message] : bucket.records) {
          if (out.combine.Fold(dst, message,
                               [](const Message& a, const Message& b) {
                                 return Program::Combine(a, b);
                               })) {
            out.combine_bytes += kCombinedRecordBytes;
          }
        }
        bucket.records.clear();
        bucket.bytes = 0;
        if (static_cast<int64_t>(out.writer.size()) + out.combine_bytes >=
            options_.message_batch_bytes) {
          FlushBufferLocked(worker, dst_worker, out);
        }
        return;
      }
    }
    for (const auto& [dst, message] : bucket.records) {
      // Staged records carry no (src, version) — staging is disabled
      // whenever a history recorder is attached (see Run()).
      EncodeRecord(out.writer, /*src=*/0, dst, /*version=*/0, message);
    }
    bucket.records.clear();
    bucket.bytes = 0;
    if (static_cast<int64_t>(out.writer.size()) >=
        options_.message_batch_bytes) {
      FlushBufferLocked(worker, dst_worker, out);
    }
  }

  /// Empties one partition bin into its destination store (one batched
  /// append under that store's shard locks).
  void FlushLocalBin(PartitionId p, typename SendStaging::LocalBin& bin) {
    stores_[p]->store.AppendBatch(std::span(bin.records));
    bin.records.clear();
    bin_flushes_->Increment();
  }

  void DrainStaging(WorkerState& worker, SendStaging& staging) {
    if (!staging.parts_touched.empty()) {
      // Sequential gather: visit destination partitions in order so the
      // stores' slot arrays are walked front-to-back, not in send order.
      std::sort(staging.parts_touched.begin(), staging.parts_touched.end());
      for (PartitionId p : staging.parts_touched) {
        FlushLocalBin(p, staging.per_part[p]);
      }
      staging.parts_touched.clear();
    }
    for (WorkerId dst : staging.touched) DrainStagingTo(worker, staging, dst);
    staging.touched.clear();
  }

  SendStaging* AcquireStaging(WorkerState& worker) {
    sy::MutexLock lock(&worker.staging_mu);
    if (worker.staging_pool.empty()) {
      auto fresh = std::make_unique<SendStaging>();
      fresh->per_dst.resize(static_cast<size_t>(options_.num_workers));
      if (bsp_local_bins_) {
        fresh->per_part.resize(
            static_cast<size_t>(partitioning_.num_partitions()));
      }
      worker.staging_pool.push_back(std::move(fresh));
    }
    SendStaging* staging = worker.staging_pool.back().release();
    worker.staging_pool.pop_back();
    return staging;
  }

  void ReleaseStaging(WorkerState& worker, SendStaging* staging) {
    sy::MutexLock lock(&worker.staging_mu);
    worker.staging_pool.emplace_back(staging);
  }

  void ApplyDataBatch(WorkerState& worker, const WireMessage& wire) {
    BufferReader reader(wire.payload);
    if (recorder_ != nullptr) {
      // Audit path: deliver per message so (src, version) ordering
      // reaches the recorder exactly as before.
      const bool bsp = options_.model == ComputationModel::kBsp;
      while (!reader.AtEnd()) {
        uint64_t dst_raw, src_raw, version;
        Message message;
        SG_CHECK(reader.ReadVarint(&dst_raw));
        SG_CHECK(reader.ReadVarint(&src_raw));
        SG_CHECK(reader.ReadVarint(&version));
        SG_CHECK(MessageCodec<Message>::Decode(reader, &message));
        const VertexId dst = static_cast<VertexId>(dst_raw);
        const VertexId src = static_cast<VertexId>(src_raw);
        PartitionStore& ps = *stores_[partitioning_.PartitionOf(dst)];
        ps.store.Append(local_index_[dst], message);
        if (bsp) {
          sy::MutexLock lock(&ps.notify_mu);
          ps.pending_notify.emplace_back(src, dst, version);
        } else {
          recorder_->OnDeliver(src, dst, version);
        }
      }
      return;
    }
    // Hot path: decode into per-partition buckets first, then apply each
    // bucket with one lock acquisition per store shard touched.
    auto& buckets = worker.batch_buckets;
    auto& touched = worker.batch_touched;
    int64_t decoded = 0;
    while (!reader.AtEnd()) {
      uint64_t dst_raw, src_raw, version;
      Message message;
      SG_CHECK(reader.ReadVarint(&dst_raw));
      SG_CHECK(reader.ReadVarint(&src_raw));
      SG_CHECK(reader.ReadVarint(&version));
      SG_CHECK(MessageCodec<Message>::Decode(reader, &message));
      const VertexId dst = static_cast<VertexId>(dst_raw);
      const PartitionId p = partitioning_.PartitionOf(dst);
      if (buckets[p].empty()) touched.push_back(p);
      buckets[p].emplace_back(local_index_[dst], std::move(message));
      ++decoded;
    }
    const auto t0 = std::chrono::steady_clock::now();
    for (PartitionId p : touched) {
      stores_[p]->store.AppendBatch(std::span(buckets[p]));
      buckets[p].clear();
    }
    touched.clear();
    if (decoded > 0) {
      const int64_t ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
      store_append_hist_->Record(ns / decoded);
    }
  }

  // --- communication thread ------------------------------------------

  void CommLoop(WorkerState& worker) {
    sy::ScheduledThread sched_reg("comm", worker.id);
    if (Tracer::enabled()) {
      Tracer::Get().SetCurrentThreadName("comm-" + std::to_string(worker.id));
    }
    while (std::optional<WireMessage> msg = transport_->Receive(worker.id)) {
      switch (msg->kind) {
        case MessageKind::kDataBatch: {
          SG_TRACE_SPAN("net.inbox_drain");
          ApplyDataBatch(worker, *msg);
          break;
        }
        case MessageKind::kControl: {
          SG_TRACE_SPAN("sync.control");
          technique_->HandleControl(worker.id, *msg);
          break;
        }
        case MessageKind::kFlushMarker: {
          WireMessage ack;
          ack.src = worker.id;
          ack.dst = msg->src;
          ack.kind = MessageKind::kAck;
          ack.a = msg->a;
          transport_->Send(std::move(ack));
          break;
        }
        case MessageKind::kAck: {
          sy::MutexLock lock(&worker.ack_mu);
          // Exactly one thread (the worker loop) ever waits on ack_cv,
          // so waking one is enough.
          if (--worker.acks_pending == 0) worker.ack_cv.NotifyOne();
          break;
        }
        default:
          SG_LOG(kFatal) << "unexpected message kind";
      }
    }
  }

  /// Superstep-end write-all: flush outgoing buffers and confirm via
  /// marker/ack that every peer this worker sent data to has applied the
  /// messages (Giraph awaits delivery confirmations only for the remote
  /// messages it actually sent). Peers that received nothing need no
  /// round trip.
  void FlushAndAwaitAcks(WorkerState& worker, int superstep) {
    if (options_.num_workers == 1) return;
    std::vector<WorkerId> targets;
    for (WorkerId dst = 0; dst < options_.num_workers; ++dst) {
      if (dst == worker.id) continue;
      // mo: dirty hint; barrier orders the data
      if (worker.touched[dst].exchange(0, std::memory_order_relaxed)) {
        targets.push_back(dst);
      }
    }
    if (targets.empty()) return;
    {
      sy::MutexLock lock(&worker.ack_mu);
      worker.acks_pending = static_cast<int>(targets.size());
    }
    // Negative control (serichk): drop the marker/ack round-trip so the
    // worker crosses the superstep boundary without delivery
    // confirmation — flushed data may still sit in a peer's inbox when
    // its vertices execute, a C1 freshness violation. Planted *before*
    // the marker sends so no late ack can drive acks_pending negative.
    const bool skip_ack_wait = SG_PLANTED_BUG("engine.skip_ack_wait");
    for (WorkerId dst : targets) {
      FlushBuffer(worker, dst);
      if (skip_ack_wait) continue;
      WireMessage marker;
      marker.src = worker.id;
      marker.dst = dst;
      marker.kind = MessageKind::kFlushMarker;
      marker.a = superstep;
      transport_->Send(std::move(marker));
    }
    if (skip_ack_wait) return;
    ScopedBlocked blocked(supervisor_.get(), worker.id);
    sy::MutexLock lock(&worker.ack_mu);
    if (!fault_active_) {
      while (worker.acks_pending != 0) worker.ack_cv.Wait(worker.ack_mu);
      return;
    }
    // Under fault tolerance the confirmation may never arrive (the marker,
    // the ack, or the peer itself can be a casualty); wait in slices and
    // abandon the attempt once a failure has been detected.
    while (worker.acks_pending != 0 && !AttemptAborted(worker)) {
      worker.ack_cv.WaitFor(worker.ack_mu, std::chrono::milliseconds(20));
    }
  }

  /// True once this attempt cannot complete: a failure was detected
  /// (supervisor / crash handler) or this very worker "died". Workers
  /// poll this at superstep boundaries and in sliced waits to unwind.
  bool AttemptAborted(const WorkerState& worker) const {
    return attempt_failed_.load(std::memory_order_acquire) ||
           // mo: death flag; read is advisory
           worker_dead_[worker.id].load(std::memory_order_relaxed) != 0;
  }

  // --- vertex execution ----------------------------------------------

  /// Executes `v` if it is active or has messages. Returns true if the
  /// vertex actually ran. Caller must already hold the technique's
  /// permission (fork/token) for `v`.
  bool ExecuteVertexIfEligible(WorkerState& worker, PartitionStore& ps,
                               const Program& program, VertexId v,
                               int superstep, LocalAggregates& aggregates,
                               SendStaging* staging) {
    if (Introspector::enabled()) Introspector::Get().OnProgress(worker.id);
    if (supervisor_ != nullptr) supervisor_->Beat(worker.id);
    // BSP consumes a zero-copy span of the partition's flat buffer (no
    // lock); AP detaches the arrival chain into this per-thread scratch.
    thread_local std::vector<Message> scratch;
    const int32_t li = local_index_[v];
    std::span<const Message> messages = ps.store.Consume(li, &scratch);
    if constexpr (kPullCapable) {
      if (gather_bcast_) {
        // Gather superstep: fold the previous superstep's captured
        // broadcasts over the in-edge CSR — a sequential sweep of this
        // vertex's in-neighbors against the flat broadcast array —
        // and merge any store-delivered point sends (SendTo still
        // pushes). The fold is the same Combine the push path would
        // have applied append-by-append.
        const Bitmap& gbits = bcast_bits_[1 - bcast_cur_];
        const std::vector<Message>& gvals = bcast_vals_[1 - bcast_cur_];
        thread_local std::vector<Message> gather_scratch;
        bool have = false;
        Message folded{};
        for (VertexId u : graph_->InNeighbors(v)) {
          if (!gbits.Test(static_cast<size_t>(u))) continue;
          folded = have ? Program::Combine(folded, gvals[u]) : gvals[u];
          have = true;
        }
        if (have) {
          for (const Message& m : messages) {
            folded = Program::Combine(folded, m);
          }
          gather_scratch.assign(1, folded);
          messages = std::span<const Message>(gather_scratch.data(), 1);
        }
      }
    }
    if (messages.empty() && !ps.active_bits.Test(li)) return false;

    executions_->Increment();
    // mo: per-superstep stat
    worker.ss_executions.fetch_add(1, std::memory_order_relaxed);
    concurrency_->Add(1);
    uint64_t version = 0;
    if (recorder_ != nullptr) {
      version = recorder_->OnTxnBegin(worker.id, v, superstep);
    }
    Context ctx(this, &worker, v, superstep, version, &aggregates, staging);
    program.Compute(ctx, messages);
    // Shared send counters update once per execution, not once per
    // message — 1.8M relaxed fetch_adds per PageRank superstep were
    // measurable on the profile.
    const int64_t sent = ctx.sent_count();
    if (sent != 0) {
      messages_sent_->Add(sent);
      // mo: per-superstep stat
      worker.ss_messages.fetch_add(sent, std::memory_order_relaxed);
    }
    // Per-vertex execution is exclusive, so only this thread flips this
    // bit right now; the atomic word RMW keeps neighbors' concurrent
    // flips of sibling bits intact, and the barrier publishes the word
    // before the serial section popcounts it.
    const bool now_active = !ctx.voted_halt();
    if (now_active != ps.active_bits.Test(li)) {
      if (now_active) {
        ps.active_bits.Set(li);
      } else {
        ps.active_bits.Clear(li);
      }
    }
    if (recorder_ != nullptr) {
      recorder_->OnTxnEnd(worker.id, v, ctx.sent_any());
    }
    concurrency_->Add(-1);
    return true;
  }

  /// True if any vertex of `p` is active or has pending messages; used
  /// for the Section 5.4 optimization of skipping halted partitions.
  /// Lock-free: bitmap word loads plus the store's pending counter.
  bool PartitionEligible(PartitionId p) {
    PartitionStore& ps = *stores_[p];
    return ps.active_bits.AnySet() || ps.store.pending() > 0;
  }

  /// Non-consuming eligibility check (lock-free under BSP).
  bool VertexEligible(PartitionStore& ps, VertexId v) {
    const int32_t li = local_index_[v];
    return ps.active_bits.Test(li) || ps.store.HasMessages(li);
  }

  void ProcessPartition(WorkerState& worker, const Program& program,
                        PartitionId p, int superstep) {
    // Counter attribution happens here, on the executing (pool) thread,
    // not around RunPartitions on the worker thread — the worker thread
    // only waits there. Fork waits nest inside this compute scope, like
    // they do in the wall-clock accounting.
    SY_PERF_SCOPE(&worker.ss_perf, PerfPhase::kCompute);
    PartitionStore& ps = *stores_[p];
    const std::vector<VertexId>& vertices =
        partitioning_.VerticesOfPartition(p);
    // Aggregator contributions fold lock-free here and merge into the
    // worker's accumulator once, after the partition's vertices ran.
    LocalAggregates aggregates;
    // Remote sends stage lock-free into a partition-scoped buffer and
    // reach the shared out-buffer in one locked drain per destination
    // worker. Every fork release below is preceded by a drain, so a
    // concurrent fork handover's flush (condition C1) always finds this
    // partition's records already buffered.
    SendStaging* staging = send_staging_ ? AcquireStaging(worker) : nullptr;
    ProcessPartitionVertices(worker, program, p, superstep, ps, vertices,
                             aggregates, staging);
    if (staging != nullptr) {
      DrainStaging(worker, *staging);
      ReleaseStaging(worker, staging);
    }
    worker.aggregates.MergeFrom(aggregates);
  }

  void ProcessPartitionVertices(WorkerState& worker, const Program& program,
                                PartitionId p, int superstep,
                                PartitionStore& ps,
                                const std::vector<VertexId>& vertices,
                                LocalAggregates& aggregates,
                                SendStaging* staging) {
    // Sparse supersteps iterate the set bits of active|pending instead of
    // probing every vertex (tentpole: bitmap frontiers). The probe a set
    // bit triggers is the same probe the full scan would have made, so
    // mid-superstep AP arrivals race identically in both forms. Fault
    // injection keeps the legacy full scan: the supervisor expects a
    // Beat per probe and the abort checks want per-vertex granularity.
    switch (granularity_) {
      case SyncTechnique::Granularity::kNone:
        if (fault_active_ || gather_bcast_) {
          // Gather supersteps must probe every vertex: a halted vertex
          // with a broadcasting in-neighbor is eligible, but the
          // broadcast was captured, not stored, so no pending bit marks
          // it. (Gathering only happens after a dense superstep, where
          // a full scan is the right shape anyway.)
          for (VertexId v : vertices) {
            if (fault_active_ && AttemptAborted(worker)) return;
            ExecuteVertexIfEligible(worker, ps, program, v, superstep,
                                    aggregates, staging);
          }
        } else {
          ps.active_bits.ForEachSetBitUnion(
              ps.store.pending_bits(), [&](size_t li) {
                ExecuteVertexIfEligible(worker, ps, program, vertices[li],
                                        superstep, aggregates, staging);
              });
        }
        break;
      case SyncTechnique::Granularity::kVertexGate:
        for (VertexId v : vertices) {
          if (fault_active_ && AttemptAborted(worker)) return;
          if (!technique_->MayExecuteVertex(worker.id, superstep, v)) {
            continue;  // stays pending until its token arrives
          }
          ExecuteVertexIfEligible(worker, ps, program, v, superstep,
                                  aggregates, staging);
        }
        break;
      case SyncTechnique::Granularity::kPartitionLock: {
        if (!PartitionEligible(p)) {
          skipped_partitions_->Increment();
          return;
        }
        if (fault_active_ && AttemptAborted(worker)) return;
        {
          SG_TRACE_SPAN("sync.fork_acquire");
          SY_PERF_SCOPE(&worker.ss_perf, PerfPhase::kForkWait);
          const int64_t t0 = Tracer::NowMicros();
          // Fork waits are legitimate long blocks; exempt them from the
          // supervisor's runnable-worker timeout.
          ScopedBlocked blocked(supervisor_.get(), worker.id);
          const bool acquired = technique_->AcquirePartition(worker.id, p);
          RecordForkWait(worker, Tracer::NowMicros() - t0);
          if (!acquired) return;  // watchdog abort: lock NOT held
        }
        if (fault_active_) {
          for (VertexId v : vertices) {
            ExecuteVertexIfEligible(worker, ps, program, v, superstep,
                                    aggregates, staging);
          }
        } else {
          ps.active_bits.ForEachSetBitUnion(
              ps.store.pending_bits(), [&](size_t li) {
                ExecuteVertexIfEligible(worker, ps, program, vertices[li],
                                        superstep, aggregates, staging);
              });
        }
        // C1: staged sends must be in the out-buffer before the forks
        // can move — the handover flush only covers the shared buffers.
        if (staging != nullptr) DrainStaging(worker, *staging);
        technique_->ReleasePartition(worker.id, p);
        break;
      }
      case SyncTechnique::Granularity::kVertexLock: {
        // Per-vertex body shared by the sparse and full-scan forms. The
        // `aborted` flag replaces the mid-loop `return`: ForEachSetBit
        // has no break, so remaining bits become cheap no-ops.
        bool aborted = false;
        auto run_one = [&](VertexId v) {
          if (aborted) return;
          if (!VertexEligible(ps, v)) return;
          if (fault_active_ && AttemptAborted(worker)) {
            aborted = true;
            return;
          }
          {
            SG_TRACE_SPAN("sync.fork_acquire");
            SY_PERF_SCOPE(&worker.ss_perf, PerfPhase::kForkWait);
            const int64_t t0 = Tracer::NowMicros();
            ScopedBlocked blocked(supervisor_.get(), worker.id);
            const bool acquired = technique_->AcquireVertex(worker.id, v);
            RecordForkWait(worker, Tracer::NowMicros() - t0);
            if (!acquired) {  // watchdog abort: lock NOT held
              aborted = true;
              return;
            }
          }
          ExecuteVertexIfEligible(worker, ps, program, v, superstep,
                                  aggregates, staging);
          // C1, per vertex: drain before this vertex's forks release.
          if (staging != nullptr) DrainStaging(worker, *staging);
          technique_->ReleaseVertex(worker.id, v);
        };
        if (fault_active_) {
          for (VertexId v : vertices) {
            run_one(v);
            if (aborted) return;
          }
        } else {
          ps.active_bits.ForEachSetBitUnion(
              ps.store.pending_bits(),
              [&](size_t li) { run_one(vertices[li]); });
        }
        break;
      }
    }
  }

  void RunPartitions(WorkerState& worker, const Program& program,
                     int superstep) {
    const auto& parts = partitioning_.PartitionsOfWorker(worker.id);
    if (worker.pool != nullptr) {
      for (PartitionId p : parts) {
        worker.pool->Submit([this, &worker, &program, p, superstep] {
          ProcessPartition(worker, program, p, superstep);
        });
      }
      worker.pool->WaitIdle();
    } else {
      for (PartitionId p : parts) {
        ProcessPartition(worker, program, p, superstep);
      }
    }
  }

  /// Between barriers: publish BSP arrivals (store swap) and count this
  /// worker's vertices that are still active or have pending messages.
  int64_t SwapAndCountActive(WorkerState& worker) {
    int64_t active = 0;
    const bool bsp = options_.model == ComputationModel::kBsp;
    for (PartitionId p : partitioning_.PartitionsOfWorker(worker.id)) {
      PartitionStore& ps = *stores_[p];
      if (bsp) SwapStore(ps);
      // Count = |active OR pending| in one word-parallel popcount sweep
      // (satellite: this used to re-read halted_[] per pending vertex,
      // an O(V) rescan every barrier).
      active +=
          static_cast<int64_t>(ps.active_bits.PopcountUnion(ps.store.pending_bits()));
    }
    return active;
  }

  /// BSP store publish for one partition, timed into store.swap_us, plus
  /// the deferred recorder notifications (messages just became visible).
  void SwapStore(PartitionStore& ps) {
    const int64_t t0 = Tracer::NowMicros();
    ps.store.Swap();
    store_swap_hist_->Record(Tracer::NowMicros() - t0);
    if (recorder_ == nullptr) return;
    std::vector<std::tuple<VertexId, VertexId, uint64_t>> drained;
    {
      sy::MutexLock lock(&ps.notify_mu);
      drained.swap(ps.pending_notify);
    }
    for (const auto& [src, dst, version] : drained) {
      recorder_->OnDeliver(src, dst, version);
    }
  }

  // --- checkpointing (Section 6.4) --------------------------------------

  /// Serializes values, halted flags, and message-store contents. Called
  /// from the barrier serial section: the state is consistent (nothing
  /// executing, nothing in flight).
  std::vector<uint8_t> EncodeState() {
    BufferWriter writer;
    if constexpr (kCheckpointable) {
      const VertexId n = graph_->num_vertices();
      writer.WriteVarint(static_cast<uint64_t>(n));
      writer.AppendRaw(values_.data(), sizeof(VertexValue) * n);
      // The on-disk format keeps the one-byte-per-vertex halted array so
      // pre-bitmap checkpoints stay readable; reconstruct it from the
      // per-partition bitmaps.
      std::vector<uint8_t> halted(static_cast<size_t>(n), 1);
      for (int p = 0; p < partitioning_.num_partitions(); ++p) {
        const auto& vertices = partitioning_.VerticesOfPartition(p);
        const Bitmap& bits = stores_[p]->active_bits;
        for (size_t i = 0; i < vertices.size(); ++i) {
          if (bits.Test(i)) halted[vertices[i]] = 0;
        }
      }
      writer.AppendRaw(halted.data(), n);
      writer.WriteVarint(stores_.size());
      for (int p = 0; p < partitioning_.num_partitions(); ++p) {
        PartitionStore& ps = *stores_[p];
        const auto& vertices = partitioning_.VerticesOfPartition(p);
        writer.WriteVarint(vertices.size());
        for (size_t i = 0; i < vertices.size(); ++i) {
          const int32_t li = static_cast<int32_t>(i);
          writer.WriteVarint(
              static_cast<uint64_t>(ps.store.VisibleCount(li)));
          ps.store.ForEachVisible(li, [&](const Message& m) {
            MessageCodec<Message>::Encode(writer, m);
          });
        }
      }
    }
    return writer.Release();
  }

  Status DecodeState(const std::vector<uint8_t>& payload) {
    if constexpr (kCheckpointable) {
      BufferReader reader(payload);
      uint64_t n, num_stores;
      if (!reader.ReadVarint(&n) ||
          n != static_cast<uint64_t>(graph_->num_vertices())) {
        return Status::IoError("checkpoint vertex count mismatch");
      }
      std::vector<uint8_t> halted(static_cast<size_t>(n));
      if (!reader.ReadRaw(values_.data(), sizeof(VertexValue) * n) ||
          !reader.ReadRaw(halted.data(), n) ||
          !reader.ReadVarint(&num_stores) ||
          num_stores != stores_.size()) {
        return Status::IoError("corrupt checkpoint state");
      }
      // Restore runs single-threaded before workers start; the freshly
      // Init'd stores are empty, so Append + (BSP) Swap rebuilds the
      // visible state and the pending counts in one pass.
      for (int p = 0; p < partitioning_.num_partitions(); ++p) {
        PartitionStore& ps = *stores_[p];
        const auto& vertices = partitioning_.VerticesOfPartition(p);
        uint64_t num_slots;
        if (!reader.ReadVarint(&num_slots) ||
            num_slots != vertices.size()) {
          return Status::IoError("checkpoint partition layout mismatch");
        }
        for (size_t i = 0; i < vertices.size(); ++i) {
          uint64_t count;
          if (!reader.ReadVarint(&count)) {
            return Status::IoError("truncated checkpoint store");
          }
          for (uint64_t k = 0; k < count; ++k) {
            Message m;
            if (!MessageCodec<Message>::Decode(reader, &m)) {
              return Status::IoError("truncated checkpoint message");
            }
            ps.store.Append(static_cast<int32_t>(i), m);
          }
        }
        if (options_.model == ComputationModel::kBsp) ps.store.Swap();
        // Rebuild the frontier bitmap from the restored halted bytes
        // (satellite: no per-vertex active recount afterwards — the
        // count IS the popcount).
        ps.active_bits.ClearAll();
        for (size_t i = 0; i < vertices.size(); ++i) {
          if (!halted[vertices[i]]) ps.active_bits.SetSerial(i);
        }
      }
    }
    return Status::OK();
  }

  /// Folds every worker's aggregator contributions into the global
  /// values for the next superstep. Runs in the barrier serial section.
  void ReduceAggregates() {
    for (int slot = 0; slot < kNumAggregatorSlots; ++slot) {
      AggOp op = AggOp::kUnused;
      double merged = 0.0;
      for (auto& worker : workers_) {
        WorkerAggregates& agg = worker->aggregates;
        sy::MutexLock lock(&agg.mu);
        if (agg.op[slot] == AggOp::kUnused) continue;
        if (op == AggOp::kUnused) {
          op = agg.op[slot];
          merged = agg.value[slot];
        } else {
          SG_DCHECK(op == agg.op[slot]);
          MergeAgg(&merged, op, agg.value[slot]);
        }
        agg.op[slot] = AggOp::kUnused;
        agg.value[slot] = 0.0;
      }
      global_aggregates_[slot] = op == AggOp::kUnused
                                     ? global_aggregates_[slot]
                                     : merged;
    }
  }

  /// Per-superstep memory/arena probe. Runs in the barrier serial
  /// section (exactly one thread, nothing executing), so the sampler and
  /// sample vector need no locks; the store Stats() walk still takes the
  /// shard locks because comm threads may be appending remote arrivals.
  void SampleMemorySerial(int superstep) {
    MemSample s;
    s.superstep = superstep;
    const MemoryStatus mem = mem_sampler_.Sample();
    s.rss_kb = mem.rss_kb;
    s.peak_rss_kb = mem.peak_rss_kb;
    MessageStoreArenaStats arena;
    for (auto& ps : stores_) arena.Accumulate(ps->store.Stats());
    s.arena_chunks = arena.chunks;
    s.arena_nodes_in_use = arena.nodes_in_use;
    s.arena_node_capacity = arena.node_capacity;
    s.max_chain_len = arena.max_chain_len;
    mem_samples_.push_back(s);
    mem_peak_gauge_->Observe(mem.peak_rss_kb);
    arena_chunks_gauge_->Observe(arena.chunks);
    arena_nodes_gauge_->Observe(arena.nodes_in_use);
    arena_capacity_gauge_->Observe(arena.node_capacity);
    chain_len_gauge_->Observe(arena.max_chain_len);
    SG_TRACE_COUNTER("mem.rss_kb", mem.rss_kb);
    SG_TRACE_COUNTER("store.arena_nodes_in_use", arena.nodes_in_use);
  }

  /// One JSONL progress line per superstep, flushed immediately so
  /// operators can `tail -f` the file during a live run (the run report
  /// only reaches disk after the run ends). Serial-section only, like
  /// SampleMemorySerial, so the stream needs no lock.
  void WriteLiveReportLine(int superstep, int64_t active) {
    JsonWriter json;
    json.BeginObject();
    json.Key("t_us").Value(Tracer::NowMicros());
    json.Key("superstep").Value(superstep);
    json.Key("active_vertices").Value(active);
    json.Key("attempt").Value(recovery_attempts_);
    json.EndObject();
    live_report_ << json.str() << "\n";
    live_report_.flush();
  }

  void MaybeCheckpoint(int next_superstep) {
    if (options_.checkpoint_every <= 0) return;
    if (next_superstep % options_.checkpoint_every != 0) return;
    SG_TRACE_SPAN("engine.checkpoint");
    CheckpointFrame frame;
    frame.superstep = next_superstep;
    frame.payload = EncodeState();
    const std::string path = options_.checkpoint_dir + "/checkpoint_" +
                             std::to_string(next_superstep) + ".bin";
    // Bounded retry + backoff: a transient write failure (full disk,
    // flaky volume) must not silently cost the run its recovery point.
    const RetryPolicy& retry = options_.fault.checkpoint_retry;
    const int max_attempts = retry.max_attempts < 1 ? 1 : retry.max_attempts;
    Status status = Status::OK();
    for (int failures = 0;; ++failures) {
      status = WriteCheckpoint(path, frame);
      if (status.ok() || failures + 1 >= max_attempts) break;
      checkpoint_retries_->Increment();
      SG_LOG(kWarning) << "checkpoint write failed (attempt "
                       << (failures + 1) << "/" << max_attempts
                       << "), retrying: " << status;
      std::this_thread::sleep_for(
          std::chrono::milliseconds(retry.BackoffMs(failures)));
    }
    if (status.ok()) {
      checkpoint_bytes_->Add(static_cast<int64_t>(frame.payload.size()));
      prev_checkpoint_path_ = last_checkpoint_path_;
      last_checkpoint_path_ = path;
      if (recorder_ != nullptr) SnapshotRecorder(next_superstep);
      return;
    }
    // Degrade, don't die: the run continues and last_checkpoint_path_
    // still names the newest frame that actually reached disk, so a
    // later recovery restores from there instead of a phantom file.
    checkpoint_failures_->Increment();
    AddRecoveryEvent("checkpoint at superstep " +
                     std::to_string(next_superstep) + " failed after " +
                     std::to_string(max_attempts) +
                     " attempts: " + status.message());
    SG_LOG(kError) << "checkpoint failed, keeping "
                   << (last_checkpoint_path_.empty()
                           ? std::string("initial state")
                           : last_checkpoint_path_)
                   << " as the recovery point: " << status;
  }

  /// Snapshots the history recorder to pair with the checkpoint frame at
  /// `superstep` (serial section: all txns closed, nothing in flight).
  /// Keeps the newest few — recovery only ever reaches back one frame
  /// (`.prev` fallback) past the newest.
  void SnapshotRecorder(int superstep) {
    recorder_snapshots_[superstep] = recorder_->TakeSnapshot();
    while (recorder_snapshots_.size() > 4) {
      recorder_snapshots_.erase(recorder_snapshots_.begin());
    }
  }

  /// Picks the best restore frame and rewinds the engine state to it.
  /// Preference order: the newest on-disk checkpoint (with its `.prev`
  /// sibling as fallback), the one before it, then the in-memory frame of
  /// the attempt-0 starting state. Runs single-threaded between attempts,
  /// after the fresh stores are built and before workers start.
  Status RestoreForRecovery() {
    CheckpointFrame frame;
    std::string source;
    bool have = false;
    for (const std::string& path :
         {last_checkpoint_path_, prev_checkpoint_path_}) {
      if (path.empty()) continue;
      std::string read_source;
      StatusOr<CheckpointFrame> read =
          ReadCheckpointWithFallback(path, &read_source);
      if (read.ok()) {
        frame = std::move(*read);
        source = read_source;
        have = true;
        break;
      }
      AddRecoveryEvent("checkpoint " + path +
                       " unusable: " + read.status().message());
    }
    if (!have && have_initial_frame_) {
      frame = initial_frame_;
      source = "in-memory initial frame";
      have = true;
    }
    if (!have) {
      return Status::IoError("recovery: no usable checkpoint frame");
    }
    SERIGRAPH_RETURN_IF_ERROR(DecodeState(frame.payload));
    start_superstep_ = frame.superstep;
    if (recorder_ != nullptr) {
      // Rewind the recorded history to the same cut: the crashed
      // attempt's transactions vanish, exactly as if they never ran.
      auto it = recorder_snapshots_.find(frame.superstep);
      if (it != recorder_snapshots_.end()) {
        recorder_->RestoreSnapshot(it->second);
      } else {
        SG_CHECK_EQ(frame.superstep, initial_frame_.superstep);
        recorder_->RestoreSnapshot(initial_recorder_snapshot_);
      }
    }
    // Aggregator values restart from their defaults, like the rest of the
    // superstep-(start_superstep_) state.
    for (double& agg : global_aggregates_) agg = 0.0;
    AddRecoveryEvent("restored superstep " + std::to_string(frame.superstep) +
                     " from " + source);
    return Status::OK();
  }

  /// Proposition 1 execution scheme (kBspVertexLock): within one logical
  /// superstep, run sub-supersteps separated by global barriers. In each
  /// sub-superstep a worker executes exactly those still-pending vertices
  /// that hold all their forks; fork requests and transfers are exchanged
  /// only between the barriers, and each sub-barrier flushes + swaps so
  /// that sub-superstep k+1 sees the messages written in k (fresh reads,
  /// condition C1, under a synchronous model). Every eligible vertex
  /// executes exactly once per logical superstep.
  void RunSuperstepConstrainedBsp(WorkerState& worker, const Program& program,
                                  int superstep) {
    // Single compute thread here (the technique requires it), so the
    // whole sub-superstep loop — including its internal barriers and
    // flushes — counts as compute, exactly like compute_us does.
    SY_PERF_SCOPE(&worker.ss_perf, PerfPhase::kCompute);
    // Pending = this worker's eligible vertices, fixed at superstep start.
    std::vector<VertexId> pending;
    for (PartitionId p : partitioning_.PartitionsOfWorker(worker.id)) {
      PartitionStore& ps = *stores_[p];
      for (VertexId v : partitioning_.VerticesOfPartition(p)) {
        if (VertexEligible(ps, v)) pending.push_back(v);
      }
    }
    LocalAggregates aggregates;
    int idle_rounds = 0;
    for (;;) {
      if (fault_active_ && AttemptAborted(worker)) return;
      int64_t executed = 0;
      std::vector<VertexId> still_pending;
      for (VertexId v : pending) {
        if (technique_->VertexReady(worker.id, v)) {
          PartitionStore& ps = *stores_[partitioning_.PartitionOf(v)];
          // No staging here: sub-superstep freshness needs each send in
          // the shared out-buffer before the sub-barrier flush.
          ExecuteVertexIfEligible(worker, ps, program, v, superstep,
                                  aggregates, /*staging=*/nullptr);
          technique_->OnVertexExecuted(worker.id, v);
          ++executed;
        } else {
          technique_->RequestVertexForks(worker.id, v);
          still_pending.push_back(v);
        }
      }
      pending.swap(still_pending);
      sub_supersteps_->Increment();

      // Sub-superstep barrier: deliver this round's messages (C1 needs
      // them visible to later rounds) and agree on global progress.
      FlushAndAwaitAcks(worker, superstep);
      AwaitBarrier(worker);
      {
        int64_t count = static_cast<int64_t>(pending.size());
        // Publish this sub-superstep's messages, then apply queued fork
        // traffic — the only moment forks may move (Proposition 1 (ii)).
        SubSwapIncoming(worker);
        technique_->OnSubBarrier(worker.id);
        active_counts_[worker.id] = count;
      }
      const bool serial = AwaitBarrier(worker);
      if (serial) {
        int64_t total = 0;
        for (int64_t count : active_counts_) total += count;
        sub_stop_ = total == 0;
        if (Introspector::enabled() &&
            Introspector::Get().abort_requested()) {
          aborted_ = true;
          sub_stop_ = true;
        }
        sub_executed_any_ = false;  // reset; workers OR into it below
      }
      AwaitBarrier(worker);
      // Publish whether anyone executed this round (progress detector).
      if (executed > 0) sub_executed_any_ = true;
      AwaitBarrier(worker);
      // A broken barrier (failure detected) means the serial section may
      // never have run: leave via the abort flag, not via sub_stop_.
      if (fault_active_ && AttemptAborted(worker)) return;
      if (sub_stop_) break;
      if (!sub_executed_any_) {
        // No vertex anywhere was ready: fork traffic is still in flight
        // (it has simulated latency). Back off briefly; the protocol
        // guarantees progress once the messages land.
        if (++idle_rounds > 100000) {
          SG_LOG(kFatal) << "constrained BSP locking stalled";
        }
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      } else {
        idle_rounds = 0;
      }
    }
    // Aggregates are only read at the outer superstep barrier, so one
    // merge for the whole logical superstep suffices.
    worker.aggregates.MergeFrom(aggregates);
  }

  /// Publishes BSP arrivals for this worker's partitions (the
  /// sub-superstep variant of the swap in SwapAndCountActive).
  void SubSwapIncoming(WorkerState& worker) {
    for (PartitionId p : partitioning_.PartitionsOfWorker(worker.id)) {
      SwapStore(*stores_[p]);
    }
  }

  // --- worker main loop ------------------------------------------------

  /// Accumulates fork-acquire wait time (request -> all forks held) into
  /// the worker's superstep accumulator and the run-wide histogram.
  void RecordForkWait(WorkerState& worker, int64_t wait_us) {
    // mo: per-superstep stat
    worker.ss_fork_wait_us.fetch_add(wait_us, std::memory_order_relaxed);
    fork_wait_hist_->Record(wait_us);
  }

  /// Barrier await with the supervisor told this is a legitimate block
  /// (exempt from the runnable-worker timeout). Returns false immediately
  /// on a broken barrier (failure detected mid-attempt).
  bool AwaitBarrier(WorkerState& worker) {
    ScopedBlocked blocked(supervisor_.get(), worker.id);
    return barrier_->Await();
  }

  /// Barrier await, timed into `*wait_us_acc` and traced.
  bool TimedAwait(WorkerState& worker, int64_t* wait_us_acc) {
    SG_TRACE_SPAN("engine.barrier_wait");
    SY_PERF_SCOPE(&worker.ss_perf, PerfPhase::kBarrier);
    const int64_t t0 = Tracer::NowMicros();
    const bool serial = AwaitBarrier(worker);
    *wait_us_acc += Tracer::NowMicros() - t0;
    return serial;
  }

  void WorkerLoop(WorkerState& worker, const Program& program) {
    // Under serichk this parks until all engine threads registered, then
    // runs only when the virtual scheduler grants this thread the
    // processor. No-op in production.
    sy::ScheduledThread sched_reg("worker", worker.id);
    if (Tracer::enabled()) {
      Tracer::Get().SetCurrentThreadName("worker-" +
                                         std::to_string(worker.id));
    }
    for (int superstep = start_superstep_;; ++superstep) {
      SG_TRACE_SPAN("engine.superstep");
      SuperstepSample sample;
      sample.superstep = superstep;
      sample.worker = worker.id;
      // Mode flags were last written in the previous barrier's serial
      // section (or before workers started); B3 ordered them.
      sample.pull_mode = static_cast<uint8_t>((capture_bcast_ ? 1 : 0) |
                                              (gather_bcast_ ? 2 : 0));
      if (options_.superstep_overhead_us > 0) {
        std::this_thread::sleep_for(
            std::chrono::microseconds(options_.superstep_overhead_us));
      }
      if (probes_active_) {
        if (supervisor_ != nullptr) supervisor_->Beat(worker.id);
        // A fired crash/hang returns true: this worker "dies" here. The
        // crash handler has already told the supervisor, which breaks the
        // barrier so the surviving workers unwind too.
        if (SG_FAULT_POINT("engine.superstep_start", worker.id)) break;
        if (AttemptAborted(worker)) break;
      }
      technique_->OnSuperstepStart(worker.id, superstep);
      if (Introspector::enabled()) {
        Introspector::Get().SetPhase(worker.id, WorkerPhase::kCompute,
                                     superstep);
      }
      {
        SG_TRACE_SPAN("engine.compute");
        const int64_t t0 = Tracer::NowMicros();
        if (granularity_ == SyncTechnique::Granularity::kBspVertexLock) {
          // Sub-superstep barriers and flushes stay inside compute_us
          // here: Proposition 1 trades compute overlap for barrier cost,
          // which is exactly what this bucket then shows.
          RunSuperstepConstrainedBsp(worker, program, superstep);
        } else {
          RunPartitions(worker, program, superstep);
        }
        sample.compute_us = Tracer::NowMicros() - t0;
      }
      if (probes_active_) {
        if (supervisor_ != nullptr) supervisor_->Beat(worker.id);
        if (SG_FAULT_POINT("engine.post_compute", worker.id)) break;
        if (AttemptAborted(worker)) break;
      }
      {
        SG_TRACE_SPAN("engine.flush_acks");
        SY_PERF_SCOPE(&worker.ss_perf, PerfPhase::kFlushWait);
        const int64_t t0 = Tracer::NowMicros();
        if (Introspector::enabled()) {
          Introspector::Get().SetPhase(worker.id, WorkerPhase::kFlushWait,
                                       superstep);
        }
        FlushAndAwaitAcks(worker, superstep);
        technique_->OnSuperstepEnd(worker.id, superstep);
        sample.flush_wait_us = Tracer::NowMicros() - t0;
      }
      if (probes_active_) {
        if (SG_FAULT_POINT("engine.pre_barrier", worker.id)) break;
        if (AttemptAborted(worker)) break;
      }

      if (Introspector::enabled()) {
        Introspector::Get().SetPhase(worker.id, WorkerPhase::kBarrierWait,
                                     superstep);
      }
      int64_t barrier_us = 0;
      TimedAwait(worker, &barrier_us);  // B1: superstep-s messages delivered
      active_counts_[worker.id] = SwapAndCountActive(worker);
      const bool serial =
          TimedAwait(worker, &barrier_us);  // B2: counts published
      if (serial) {
        ReduceAggregates();
        // Arena/RSS gauges stay warm for perf runs and whenever a live
        // /metrics endpoint is scraping (TelemetryHub::serving()).
        if (perf_active_ || TelemetryHub::serving()) {
          SampleMemorySerial(superstep);
        }
        int64_t total = 0;
        for (int64_t count : active_counts_) total += count;
        if (capture_bcast_) {
          // Captured broadcasts never reached the stores, so receivers
          // have no pending bits yet; count the broadcasters so the run
          // cannot declare convergence with undelivered pulls. (The
          // count is approximate — broadcasters stand in for their
          // receivers — but only zero/nonzero drives termination.)
          total += static_cast<int64_t>(bcast_bits_[bcast_cur_].Popcount());
        }
        supersteps_done_ = superstep + 1;
        converged_ = total == 0;
        {
          TelemetryHub::RunStatus& live = TelemetryHub::Get().run();
          // mo: live telemetry; approximate by design
          live.superstep.store(superstep + 1, std::memory_order_relaxed);
          // mo: active count; barrier orders decisions
          live.active_vertices.store(total, std::memory_order_relaxed);
        }
        if (live_report_.is_open()) WriteLiveReportLine(superstep, total);
        bool stop = converged_ || superstep + 1 >= options_.max_supersteps;
        if (Introspector::enabled() &&
            Introspector::Get().abort_requested()) {
          aborted_ = true;
          converged_ = false;
          stop = true;
        }
        // A crash here models a worker dying inside the serial section,
        // with the checkpoint never attempted; B3 below is already broken
        // by the failure callback, so everyone unwinds.
        if (!stop &&
            !SG_FAULT_POINT("engine.pre_checkpoint", worker.id)) {
          MaybeCheckpoint(superstep + 1);
        }
        AdvancePullEpoch(superstep, total, stop);
        stop_.store(stop, std::memory_order_release);
      }
      TimedAwait(worker, &barrier_us);  // B3: decision visible
      if (fault_active_ && AttemptAborted(worker)) break;
      if (Introspector::enabled()) {
        // Superstep completion is global progress even if no vertex ran.
        Introspector::Get().OnProgress(worker.id);
      }
      sample.barrier_wait_us = barrier_us;
      barrier_wait_hist_->Record(barrier_us);
      sample.fork_wait_us =  // mo: per-superstep stat
          worker.ss_fork_wait_us.exchange(0, std::memory_order_relaxed);
      sample.vertices_executed =  // mo: per-superstep stat
          worker.ss_executions.exchange(0, std::memory_order_relaxed);
      sample.messages_sent =  // mo: per-superstep stat
          worker.ss_messages.exchange(0, std::memory_order_relaxed);
      // Written in this barrier's serial section, ordered by B3; every
      // worker's row carries the same global value.
      sample.frontier_density_milli = last_density_milli_;
      if (perf_active_) {
        // Drain this worker's per-phase counter deltas: compute lands in
        // the timeline row (and on the worker's trace counter track),
        // every phase folds into the run totals.
        const PerfDelta compute = worker.ss_perf.Exchange(PerfPhase::kCompute);
        sample.compute_cycles = compute.v[kPerfCycles];
        sample.compute_instructions = compute.v[kPerfInstructions];
        sample.compute_llc_loads = compute.v[kPerfLlcLoads];
        sample.compute_llc_misses = compute.v[kPerfLlcMisses];
        sample.compute_task_clock_ns = compute.v[kPerfTaskClockNs];
        sample.perf_hw_valid = compute.hw_valid;
        perf_totals_.Add(PerfPhase::kCompute, compute);
        perf_totals_.Add(PerfPhase::kFlushWait,
                         worker.ss_perf.Exchange(PerfPhase::kFlushWait));
        perf_totals_.Add(PerfPhase::kBarrier,
                         worker.ss_perf.Exchange(PerfPhase::kBarrier));
        perf_totals_.Add(PerfPhase::kForkWait,
                         worker.ss_perf.Exchange(PerfPhase::kForkWait));
        if (compute.hw_valid) {
          SG_TRACE_COUNTER("perf.ipc_milli", compute.ipc_milli());
          SG_TRACE_COUNTER("perf.llc_misses", compute.v[kPerfLlcMisses]);
        }
      }
      timeline_->Append(sample);
      if (stop_.load(std::memory_order_acquire)) break;
    }
  }

  const Graph* graph_;
  EngineOptions options_;
  Partitioning partitioning_;
  bool has_partitioning_ = false;
  bool ran_ = false;
  /// Sender-side combining is active (combiner present, enabled by the
  /// options, and no history recorder — combined records have no
  /// per-message (src, version) for it). Fixed before workers start.
  bool sender_combining_ = false;
  /// Partition-scoped lock-free send staging is active (trivially
  /// copyable message payload, no history recorder, >1 worker). Staged
  /// records encode with (src, version) = 0, same as combined records.
  /// Fixed before workers start.
  bool send_staging_ = false;
  /// Same-worker BSP sends go through per-destination-partition bins
  /// (GPOP-style scatter) instead of eager appends. Fixed before
  /// workers start; requires send_staging_.
  bool bsp_local_bins_ = false;

  // --- push/pull switch state (docs/PERF.md) --------------------------
  /// Structural + runtime gate for the per-superstep switch: kPullCapable
  /// program, BSP, no sync technique, no recorder, no checkpointing, no
  /// fault injection, and not forced to push. Fixed before workers start.
  bool pull_enabled_ = false;
  /// Current superstep parks broadcasts in bcast_vals_[bcast_cur_]
  /// instead of materializing them ("pull mode"). Flipped only in the
  /// barrier serial section; workers read it data-race-free because the
  /// barrier orders the write against every read.
  bool capture_bcast_ = false;
  /// Current superstep must fold the PREVIOUS superstep's captures over
  /// the in-edge CSR (true iff the previous superstep captured —
  /// independent of what the current one does, so a switch-back still
  /// drains the buffer).
  bool gather_bcast_ = false;
  /// Double buffer: [bcast_cur_] is this superstep's capture side,
  /// [1 - bcast_cur_] is the gather side holding last superstep's
  /// broadcasts. Flipped in the serial section after a capture.
  int bcast_cur_ = 0;
  std::vector<Message> bcast_vals_[2];
  Bitmap bcast_bits_[2];
  /// Global frontier density (eligible vertices per 1000) recorded each
  /// barrier; drives the next superstep's mode and the timeline column.
  int64_t last_density_milli_ = 0;

  std::unique_ptr<BoundaryInfo> boundaries_;
  std::unique_ptr<SyncTechnique> technique_;
  SyncTechnique::Granularity granularity_ = SyncTechnique::Granularity::kNone;
  MetricRegistry metrics_;
  std::unique_ptr<Transport> transport_;
  std::shared_ptr<HistoryRecorder> recorder_;

  std::vector<VertexValue> values_;
  std::vector<int32_t> local_index_;
  std::vector<std::unique_ptr<PartitionStore>> stores_;
  std::vector<std::unique_ptr<WorkerState>> workers_;

  std::unique_ptr<CyclicBarrier> barrier_;
  std::vector<int64_t> active_counts_;
  double global_aggregates_[kNumAggregatorSlots] = {};
  std::atomic<bool> stop_{false};
  bool sub_stop_ = false;
  std::atomic<bool> sub_executed_any_{false};
  int supersteps_done_ = 0;
  int start_superstep_ = 0;
  bool converged_ = false;
  /// Set (only inside barrier serial sections) when the watchdog's abort
  /// request was honored; Run() then returns Status::Aborted.
  bool aborted_ = false;
  std::unique_ptr<Watchdog> watchdog_;
  std::string last_checkpoint_path_;

  // --- fault tolerance (docs/FAULT_TOLERANCE.md) ----------------------

  /// Records a human-readable recovery event (surfaced in RunStats).
  void AddRecoveryEvent(const std::string& event) {
    sy::MutexLock lock(&recovery_mu_);
    recovery_events_.push_back(event);
  }

  /// Injected-crash handler, invoked by the FaultInjector on the dying
  /// worker's own thread with no injector lock held. Marks the worker
  /// dead and routes detection through the supervisor (immediate).
  void OnWorkerCrash(int worker, const char* point) {
    if (worker >= 0 && worker < static_cast<int>(worker_dead_.size())) {
      // mo: death flag; read is advisory
      worker_dead_[worker].store(1, std::memory_order_relaxed);
    }
    if (supervisor_ != nullptr) {
      supervisor_->ReportDeath(worker, std::string("worker ") +
                                           std::to_string(worker) +
                                           " crashed at " + point);
    }
  }

  /// First-failure callback from the supervisor (monitor thread, or the
  /// dying worker's thread via ReportDeath). Poisons the attempt and
  /// unblocks every wait a worker could be parked in: barrier (Break),
  /// fork acquisition (introspector abort), injected hangs
  /// (ReleaseHangs), ack waits (sliced, poll the flag).
  void OnWorkerFailure(const FailureReport& report) {
    {
      sy::MutexLock lock(&recovery_mu_);
      failure_reason_ = report.reason;
      recovery_events_.push_back("failure detected: " + report.reason);
    }
    worker_failures_->Increment();
    attempt_failed_.store(true, std::memory_order_release);
    if (Introspector::enabled()) {
      Introspector::Get().RequestAbort(report.reason);
    }
    if (FaultInjector::armed()) FaultInjector::Get().ReleaseHangs();
    barrier_->Break();
  }

  /// True when this run needs failure detection (plan armed or recovery
  /// on). Plain bool fixed before workers start; guards the per-superstep
  /// abort polls so fault-free runs stay branch-predictable.
  bool fault_active_ = false;
  /// Superset of fault_active_: also true under a serichk scheduler, so
  /// the SG_FAULT_POINT probes in WorkerLoop fire as schedule points
  /// without arming the fault machinery (no supervisor, no introspector).
  bool probes_active_ = false;
  /// Poisons the current attempt; set by OnWorkerFailure.
  std::atomic<bool> attempt_failed_{false};
  /// Per-worker death marks (injected crashes), reset every attempt.
  std::vector<std::atomic<uint8_t>> worker_dead_;
  std::unique_ptr<Supervisor> supervisor_;
  /// Guards the recovery bookkeeping written from failure callbacks and
  /// read by the driver between attempts. Leaf (docs/LOCK_ORDER.md).
  mutable sy::Mutex recovery_mu_;
  std::string failure_reason_ SY_GUARDED_BY(recovery_mu_);
  std::vector<std::string> recovery_events_ SY_GUARDED_BY(recovery_mu_);
  /// Completed restore-and-resume cycles (driver thread only).
  int recovery_attempts_ = 0;
  /// In-memory frame of the attempt-0 starting state: the restore target
  /// of last resort when no checkpoint ever reached disk.
  CheckpointFrame initial_frame_;
  bool have_initial_frame_ = false;
  /// The checkpoint before last_checkpoint_path_ (fallback frame).
  std::string prev_checkpoint_path_;
  /// History-recorder snapshots keyed by checkpoint superstep, so a
  /// restore also rewinds the recorded history to the same cut.
  std::map<int, HistoryRecorder::Snapshot> recorder_snapshots_;
  /// Snapshot paired with initial_frame_ (never pruned).
  HistoryRecorder::Snapshot initial_recorder_snapshot_;

  Counter* checkpoint_failures_ = nullptr;
  Counter* checkpoint_retries_ = nullptr;
  Counter* recovery_attempts_counter_ = nullptr;
  Counter* worker_failures_ = nullptr;

  Counter* messages_sent_ = nullptr;
  Counter* local_sends_ = nullptr;
  Counter* executions_ = nullptr;
  Counter* flushes_ = nullptr;
  Counter* skipped_partitions_ = nullptr;
  Counter* sub_supersteps_ = nullptr;
  MaxGauge* concurrency_ = nullptr;
  Counter* pull_supersteps_ = nullptr;
  MaxGauge* frontier_density_gauge_ = nullptr;
  Counter* bin_flushes_ = nullptr;
  Histogram* barrier_wait_hist_ = nullptr;
  Histogram* fork_wait_hist_ = nullptr;
  Histogram* store_append_hist_ = nullptr;
  Histogram* store_swap_hist_ = nullptr;
  std::unique_ptr<TimelineRecorder> timeline_;

  // Perf/memory observability (docs/PROFILING.md), active only when
  // options_.perf_counters. perf_totals_ is thread-safe (workers fold
  // their drained per-superstep deltas in); the sampler and sample
  // vector are touched only in barrier serial sections and after the
  // workers have joined.
  bool perf_active_ = false;
  PerfPhaseAccum perf_totals_;
  MemorySampler mem_sampler_;
  std::vector<MemSample> mem_samples_;
  /// Live per-superstep JSONL stream (EngineOptions::live_report_path);
  /// opened in Run() before workers start, written only from the B2
  /// serial section.
  std::ofstream live_report_;
  Counter* checkpoint_bytes_ = nullptr;
  MaxGauge* mem_peak_gauge_ = nullptr;
  MaxGauge* arena_chunks_gauge_ = nullptr;
  MaxGauge* arena_nodes_gauge_ = nullptr;
  MaxGauge* arena_capacity_gauge_ = nullptr;
  MaxGauge* chain_len_gauge_ = nullptr;
};

template <typename Program>
StatusOr<typename Engine<Program>::Result> Engine<Program>::Run(
    const Program& program) {
  SG_CHECK(!ran_);
  ran_ = true;
  SERIGRAPH_RETURN_IF_ERROR(Validate());
  EnsurePartitioning();

  const VertexId n = graph_->num_vertices();
  const int num_workers = options_.num_workers;
  fault_active_ = options_.fault.Active();
  probes_active_ = fault_active_ || sy::SchedulerArmed();

  // --- run-wide setup, shared by every attempt (excluded from
  // --- computation time) ----------------------------------------------
  boundaries_ = std::make_unique<BoundaryInfo>(*graph_, partitioning_);

  messages_sent_ = metrics_.GetCounter("pregel.messages_sent");
  local_sends_ = metrics_.GetCounter("pregel.local_sends");
  executions_ = metrics_.GetCounter("pregel.vertex_executions");
  flushes_ = metrics_.GetCounter("pregel.flushes");
  skipped_partitions_ = metrics_.GetCounter("pregel.skipped_partitions");
  sub_supersteps_ = metrics_.GetCounter("pregel.sub_supersteps");
  concurrency_ = metrics_.GetGauge("pregel.max_concurrent_executions");
  pull_supersteps_ = metrics_.GetCounter("engine.pull_supersteps");
  frontier_density_gauge_ = metrics_.GetGauge("engine.frontier_density_milli");
  bin_flushes_ = metrics_.GetCounter("store.bin_flushes");
  // Latency histograms (Section 7.3's time breakdown). All three are
  // registered up front so every run's metrics snapshot carries the
  // name.p50/.p95/... keys, even when a technique never records into one.
  barrier_wait_hist_ = metrics_.GetHistogram("engine.barrier_wait_us");
  fork_wait_hist_ = metrics_.GetHistogram("sync.fork_wait_us");
  store_append_hist_ = metrics_.GetHistogram("store.append_ns");
  store_swap_hist_ = metrics_.GetHistogram("store.swap_us");
  metrics_.GetHistogram("sync.token_hold_us");
  checkpoint_failures_ = metrics_.GetCounter("checkpoint.failures");
  checkpoint_retries_ = metrics_.GetCounter("checkpoint.retries");
  checkpoint_bytes_ = metrics_.GetCounter("checkpoint.bytes");
  recovery_attempts_counter_ = metrics_.GetCounter("recovery.attempts");
  worker_failures_ = metrics_.GetCounter("recovery.worker_failures");
  // Perf/memory metrics are registered up front like everything else so
  // every snapshot carries the keys; they stay 0 unless perf_counters.
  mem_peak_gauge_ = metrics_.GetGauge("mem.peak_rss_kb");
  arena_chunks_gauge_ = metrics_.GetGauge("store.arena_chunks");
  arena_nodes_gauge_ = metrics_.GetGauge("store.arena_nodes_in_use");
  arena_capacity_gauge_ = metrics_.GetGauge("store.arena_node_capacity");
  chain_len_gauge_ = metrics_.GetGauge("store.max_chain_len");
  timeline_ = std::make_unique<TimelineRecorder>(num_workers);

  if (options_.record_history) {
    recorder_ = std::make_shared<HistoryRecorder>(graph_, num_workers);
  }
  sender_combining_ =
      kHasCombiner && options_.sender_combining && recorder_ == nullptr;
  send_staging_ = std::is_trivially_copyable_v<Message> &&
                  recorder_ == nullptr && num_workers > 1;
  bsp_local_bins_ =
      send_staging_ && options_.model == ComputationModel::kBsp;
  // Push/pull switch (docs/PERF.md): BSP only (a captured broadcast is
  // invisible until the next superstep, which is exactly BSP's contract
  // and exactly what AP must NOT do — Section 4.1 freshness), plain runs
  // only (sync techniques keep their fork-handover read protocol; the
  // recorder needs per-message provenance; checkpoints and fault
  // recovery would lose in-flight captured broadcasts).
  pull_enabled_ = kPullCapable &&
                  options_.model == ComputationModel::kBsp &&
                  options_.sync_mode == SyncMode::kNone &&
                  recorder_ == nullptr && !fault_active_ &&
                  options_.checkpoint_every == 0 &&
                  options_.push_pull != PushPullMode::kForcePush;
  if constexpr (kPullCapable) {
    if (pull_enabled_) {
      for (int side = 0; side < 2; ++side) {
        bcast_vals_[side].assign(static_cast<size_t>(n), Message{});
        bcast_bits_[side].Reset(static_cast<size_t>(n));
      }
    }
  }

  local_index_.assign(n, -1);
  for (int p = 0; p < partitioning_.num_partitions(); ++p) {
    const auto& vertices = partitioning_.VerticesOfPartition(p);
    for (size_t i = 0; i < vertices.size(); ++i) {
      local_index_[vertices[i]] = static_cast<int32_t>(i);
    }
  }

  // Arm the injector before the first Transport exists: its constructor
  // checks armed() to take the full Send/Receive path (wire faults and
  // sequence stamping bypass the single-worker fast path). Match
  // counters persist across recovery attempts, so each one-shot event
  // fires once per run, not once per attempt.
  struct InjectorGuard {
    bool armed = false;
    ~InjectorGuard() {
      if (armed) FaultInjector::Get().Disarm();
    }
  } injector_guard;
  // Perf collection spans the whole run (all attempts); the guard turns
  // it off on every exit path so per-thread groups from this run never
  // outlive it (the epoch bump invalidates thread-local caches).
  struct PerfGuard {
    bool active = false;
    ~PerfGuard() {
      if (active) PerfCounters::Disable();
    }
  } perf_guard;
  perf_active_ = options_.perf_counters;
  if (perf_active_) {
    PerfCounters::Enable(PerfCounterConfig{});
    perf_guard.active = true;
    if (!PerfCounters::hw_available()) {
      SG_LOG(kWarning) << "hardware perf counters unavailable: "
                       << PerfCounters::fallback_reason();
    }
  }
  // Publish this run's registry + coarse run state to the live telemetry
  // plane (obs/flightrec.h): a live /metrics scrape reads the registry
  // while the run is up, and unregistering freezes the final snapshot
  // for post-run scrapes. The guard unpublishes on every exit path.
  struct TelemetryGuard {
    MetricRegistry* registry = nullptr;
    ~TelemetryGuard() {
      if (registry == nullptr) return;
      TelemetryHub::Get().run().running.store(false,
                                              // mo: live telemetry; approximate by design
                                              std::memory_order_relaxed);
      TelemetryHub::Get().UnregisterMetrics(registry);
      TelemetryHub::Get().ClearFaultLogProvider();
      HealthState::Get().SetReady(false);
    }
  } telemetry_guard;
  TelemetryHub::Get().RegisterMetrics(&metrics_);
  telemetry_guard.registry = &metrics_;
  {
    TelemetryHub::RunStatus& live = TelemetryHub::Get().run();
    // mo: live telemetry; approximate by design
    live.running.store(true, std::memory_order_relaxed);
    // mo: live telemetry; approximate by design
    live.superstep.store(-1, std::memory_order_relaxed);
    // mo: live telemetry; approximate by design
    live.workers.store(num_workers, std::memory_order_relaxed);
    live.active_vertices.store(static_cast<int64_t>(n),
                               // mo: live telemetry; approximate by design
                               std::memory_order_relaxed);
    // mo: live telemetry; approximate by design
    live.recovery_attempts.store(0, std::memory_order_relaxed);
  }
  HealthState::Get().SetReady(true);
  FlightRecorder::RecordInstant("engine.run_start");
  if (!options_.live_report_path.empty() && !live_report_.is_open()) {
    live_report_.open(options_.live_report_path,
                      std::ios::out | std::ios::trunc);
    if (!live_report_.is_open()) {
      SG_LOG(kWarning) << "cannot open live report "
                       << options_.live_report_path
                       << "; live streaming disabled";
    }
  }
  if (!options_.fault.plan.empty()) {
    FaultInjector& injector = FaultInjector::Get();
    injector.Arm(options_.fault.plan);
    injector.SetCrashHandler(
        [this](int w, const char* point) { OnWorkerCrash(w, point); });
    injector_guard.armed = true;
    // Incident bundles list the fired fault events; the obs layer cannot
    // link the fault layer, so the engine bridges via a provider.
    TelemetryHub::Get().SetFaultLogProvider(
        [] { return FaultInjector::Get().fired_log(); });
  }

  // The introspector doubles as the abort channel that unblocks fork
  // acquisition waits, so fault-tolerant runs force it on even without
  // options_.introspect (the watchdog stays opt-in).
  const bool use_introspector = options_.introspect || fault_active_;
  double total_seconds = 0.0;
  std::string abort_reason;

  // --- attempt loop: run to completion, and on a detected worker
  // --- failure restore from the last good frame and resume
  // --- (docs/FAULT_TOLERANCE.md) --------------------------------------
  for (;;) {
    attempt_failed_.store(false, std::memory_order_release);
    worker_dead_ = std::vector<std::atomic<uint8_t>>(num_workers);
    stop_.store(false, std::memory_order_release);
    sub_stop_ = false;
    // mo: reset pre-spawn; thread start orders it
    sub_executed_any_.store(false, std::memory_order_relaxed);
    converged_ = false;
    aborted_ = false;

    // Per-attempt construction: the failed attempt's technique state
    // (fork placements, token positions), in-flight messages, and worker
    // threads are discarded wholesale; Init() recreates the canonical
    // acyclic fork placement and the deterministic token schedules.
    technique_ = MakeSyncTechnique(options_.sync_mode);
    granularity_ = technique_->granularity();
    if (technique_->RequiresSingleComputeThread()) {
      options_.compute_threads_per_worker = 1;
    }
    SyncTechnique::Context tech_ctx;
    tech_ctx.graph = graph_;
    tech_ctx.partitioning = &partitioning_;
    tech_ctx.boundaries = boundaries_.get();
    tech_ctx.metrics = &metrics_;
    if (fault_active_) {
      // A dropped control message can leave the fork protocol in a state
      // its invariants reject (e.g. a request for a fork whose transfer
      // vanished) *before* the link-sequence gap surfaces. Route such
      // violations to the supervisor as an immediate recoverable failure
      // instead of letting the technique's fatal checks kill the process.
      tech_ctx.on_protocol_violation = [this](WorkerId w,
                                              const std::string& what) {
        if (supervisor_ != nullptr) {
          supervisor_->ReportProtocolViolation(w, what);
        }
      };
    }
    SERIGRAPH_RETURN_IF_ERROR(technique_->Init(tech_ctx));

    transport_ = std::make_unique<Transport>(num_workers, options_.network,
                                             &metrics_);
    if (fault_active_) {
      // Loss reports (link sequence gaps) route to the supervisor; set
      // before any comm thread runs. The supervisor ignores reports
      // after Stop(), so gaps noticed while draining a clean teardown
      // cannot fail a finished attempt.
      transport_->SetLossCallback([this](WorkerId src, WorkerId dst,
                                         uint64_t expected, uint64_t got) {
        if (supervisor_ != nullptr) {
          supervisor_->ReportLoss(src, dst, expected, got);
        }
      });
    }

    values_.resize(n);
    for (VertexId v = 0; v < n; ++v) {
      values_[v] = program.InitialValue(v, *graph_);
    }
    stores_.clear();
    for (int p = 0; p < partitioning_.num_partitions(); ++p) {
      const auto& vertices = partitioning_.VerticesOfPartition(p);
      auto ps = std::make_unique<PartitionStore>();
      typename MessageStore<Message>::CombineFn combine = nullptr;
      if constexpr (kHasCombiner) {
        combine = [](const Message& a, const Message& b) {
          return Program::Combine(a, b);
        };
      }
      ps->store.Init(static_cast<int32_t>(vertices.size()),
                     options_.model == ComputationModel::kBsp, combine);
      // Every vertex starts active (Pregel semantics).
      ps->active_bits.Reset(vertices.size());
      ps->active_bits.SetAll();
      stores_.push_back(std::move(ps));
    }

    if (recovery_attempts_ == 0) {
      if (!options_.restore_path.empty()) {
        std::string source;
        auto frame =
            ReadCheckpointWithFallback(options_.restore_path, &source);
        SERIGRAPH_RETURN_IF_ERROR(frame.status());
        SERIGRAPH_RETURN_IF_ERROR(DecodeState(frame->payload));
        start_superstep_ = frame->superstep;
      }
      if (fault_active_ && options_.fault.recover) {
        // Last-resort restore target: the exact state computation starts
        // from, kept in memory for the case where no checkpoint ever
        // reaches disk before the first failure.
        initial_frame_.superstep = start_superstep_;
        initial_frame_.payload = EncodeState();
        have_initial_frame_ = true;
        if (recorder_ != nullptr) {
          initial_recorder_snapshot_ = recorder_->TakeSnapshot();
        }
      }
    } else {
      SERIGRAPH_RETURN_IF_ERROR(RestoreForRecovery());
    }

    // First-superstep push/pull decision, from the post-restore frontier
    // (every later decision happens in the barrier serial section).
    capture_bcast_ = false;
    gather_bcast_ = false;
    if (pull_enabled_) {
      size_t eligible = 0;
      for (const auto& ps : stores_) {
        eligible += ps->active_bits.PopcountUnion(ps->store.pending_bits());
      }
      last_density_milli_ = std::min<int64_t>(
          1000,
          Frontier::DensityMilli(eligible, static_cast<size_t>(n)));
      frontier_density_gauge_->Observe(last_density_milli_);
      capture_bcast_ = DecidePull(last_density_milli_);
      if (capture_bcast_) {
        pull_supersteps_->Increment();
        bcast_bits_[bcast_cur_].ClearAll();
      }
      SG_LOG(kDebug) << "push/pull: superstep " << start_superstep_
                     << " mode=" << (capture_bcast_ ? "pull" : "push")
                     << " (density " << last_density_milli_ << "/1000)";
    }

    barrier_ = std::make_unique<CyclicBarrier>(num_workers);
    active_counts_.assign(num_workers, 0);

    workers_.clear();
    for (WorkerId w = 0; w < num_workers; ++w) {
      auto worker = std::make_unique<WorkerState>();
      worker->engine = this;
      worker->id = w;
      worker->touched = std::vector<std::atomic<uint8_t>>(num_workers);
      worker->batch_buckets.resize(partitioning_.num_partitions());
      for (int d = 0; d < num_workers; ++d) {
        worker->out.push_back(std::make_unique<OutBuffer>());
      }
      if (options_.compute_threads_per_worker > 1) {
        worker->pool =
            std::make_unique<ThreadPool>(options_.compute_threads_per_worker);
      }
      workers_.push_back(std::move(worker));
    }
    for (auto& worker : workers_) {
      technique_->BindWorker(worker->id, worker.get());
    }
    if (fault_active_) {
      supervisor_ = std::make_unique<Supervisor>(
          num_workers, options_.fault.supervisor,
          [this](const FailureReport& report) { OnWorkerFailure(report); });
    }
    for (auto& worker : workers_) {
      WorkerState* ws = worker.get();
      ws->comm_thread = std::thread([this, ws] { CommLoop(*ws); });
    }

    if (use_introspector) {
      Introspector& in = Introspector::Get();
      const char* kind =
          granularity_ == SyncTechnique::Granularity::kPartitionLock
              ? "partition"
              : (granularity_ == SyncTechnique::Granularity::kVertexLock ||
                 granularity_ == SyncTechnique::Granularity::kBspVertexLock)
                    ? "vertex"
                    : "worker";
      in.Configure(num_workers, kind);
      in.SetQueueProbe([this](WorkerId w, int64_t* inbox_depth,
                              int64_t* outbox_bytes) {
        *inbox_depth = transport_->InboxDepth(w);
        int64_t bytes = 0;
        for (const auto& out : workers_[w]->out) {
          sy::MutexLock lock(&out->mu);
          bytes += static_cast<int64_t>(out->writer.size());
        }
        *outbox_bytes = bytes;
      });
      in.Enable();
      if (options_.introspect) {
        watchdog_ = std::make_unique<Watchdog>(options_.watchdog);
        watchdog_->Start();
      }
    }
    if (supervisor_ != nullptr) supervisor_->Start();

    // --- computation phase --------------------------------------------
    WallTimer timer;
    {
      std::vector<std::thread> threads;
      threads.reserve(num_workers);
      for (auto& worker : workers_) {
        WorkerState* ws = worker.get();
        threads.emplace_back(
            [this, ws, &program] { WorkerLoop(*ws, program); });
      }
      for (auto& t : threads) t.join();
    }
    total_seconds += timer.ElapsedSeconds();

    // --- attempt teardown ---------------------------------------------
    // Supervisor first (worker threads are joined, so no failure report
    // can be mid-flight except from comm threads — which Stop() makes
    // no-ops). Then the watchdog, before the transport dies: its final
    // sample probes the transport's inbox depths via the queue probe.
    if (supervisor_ != nullptr) supervisor_->Stop();
    if (use_introspector) {
      if (watchdog_ != nullptr) watchdog_->Stop();
      Introspector& in = Introspector::Get();
      abort_reason = in.abort_reason();
      in.ClearQueueProbe();
      in.Disable();
    }
    transport_->Shutdown();
    for (auto& worker : workers_) {
      if (worker->comm_thread.joinable()) worker->comm_thread.join();
      if (worker->pool != nullptr) worker->pool->Shutdown();
    }

    if (!attempt_failed_.load(std::memory_order_acquire)) {
      // A clean finish absorbs earlier failures: recovery worked, so the
      // degraded mark the supervisor raised no longer describes us.
      HealthState::Get().ClearComponent("supervisor");
      break;
    }

    // Failed attempt: recover if allowed, otherwise degrade gracefully
    // into an Aborted status carrying the recovery report.
    std::string reason;
    {
      sy::MutexLock lock(&recovery_mu_);
      reason = failure_reason_;
    }
    if (!options_.fault.recover ||
        recovery_attempts_ >= options_.fault.max_recovery_attempts) {
      std::string verdict =
          options_.fault.recover
              ? "recovery exhausted after " +
                    std::to_string(recovery_attempts_) +
                    " attempts: " + reason
              : "worker failure (recovery disabled): " + reason;
      AddRecoveryEvent(verdict);
      HealthState::Get().Report(HealthLevel::kUnhealthy, "engine", verdict);
      return Status::Aborted(verdict);
    }
    // Exponential backoff before the restore: transient causes (a slow
    // disk, a burst of injected delays) get time to clear.
    int64_t backoff = options_.fault.recovery_backoff_ms;
    for (int i = 0; i < recovery_attempts_; ++i) backoff *= 2;
    if (backoff > options_.fault.recovery_backoff_max_ms) {
      backoff = options_.fault.recovery_backoff_max_ms;
    }
    if (backoff > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
    }
    ++recovery_attempts_;
    recovery_attempts_counter_->Increment();
    TelemetryHub::Get().run().recovery_attempts.store(
        // mo: live telemetry; approximate by design
        recovery_attempts_, std::memory_order_relaxed);
    FlightRecorder::RecordInstant("engine.recovery_attempt");
    AddRecoveryEvent("recovery attempt " +
                     std::to_string(recovery_attempts_) + "/" +
                     std::to_string(options_.fault.max_recovery_attempts));
  }

  if (aborted_) {
    const std::string reason = abort_reason.empty()
                                   ? "run aborted by introspection watchdog"
                                   : abort_reason;
    HealthState::Get().Report(HealthLevel::kUnhealthy, "engine", reason);
    return Status::Aborted(reason);
  }

  if (injector_guard.armed) {
    FaultInjector& injector = FaultInjector::Get();
    metrics_.GetCounter("fault.events_fired")->Add(injector.events_fired());
    for (const std::string& line : injector.fired_log()) {
      AddRecoveryEvent("fault fired: " + line);
    }
  }

  Result result;
  result.stats.supersteps = supersteps_done_;
  result.stats.converged = converged_;
  result.stats.computation_seconds = total_seconds;
  result.stats.metrics = metrics_.Snapshot();
  result.stats.metrics["pregel.supersteps"] = supersteps_done_;
  result.stats.timeline = timeline_->Collect();
  if (watchdog_ != nullptr) {
    const WatchdogSummary& wd = watchdog_->summary();
    result.stats.resource_kind = Introspector::Get().resource_kind();
    result.stats.contention = wd.top_contention;
    result.stats.contention_edges = wd.top_edges;
    result.stats.introspect_snapshots = wd.snapshots;
    result.stats.introspect_stalls = wd.stalls_flagged;
    result.stats.introspect_deadlocks = wd.deadlocks_detected;
    result.stats.introspect_incidents = wd.incidents;
  }
  result.stats.recovery_attempts = recovery_attempts_;
  {
    sy::MutexLock lock(&recovery_mu_);
    result.stats.recovery_events = recovery_events_;
  }
  if (perf_active_) {
    // Workers are joined: drain the run totals, fold the curated set
    // into registry counters (already snapshotted above, so re-snapshot
    // after), and attach the full per-phase breakdown + memory samples.
    result.stats.perf_enabled = true;
    result.stats.perf_hw_counters = PerfCounters::hw_available();
    result.stats.perf_fallback = PerfCounters::fallback_reason();
    PerfDelta run_total;
    const PerfPhase kPhases[] = {PerfPhase::kCompute, PerfPhase::kFlushWait,
                                 PerfPhase::kBarrier, PerfPhase::kForkWait};
    for (PerfPhase phase : kPhases) {
      const PerfDelta d = perf_totals_.Exchange(phase);
      for (int f = 0; f < kNumPerfFields; ++f) {
        result.stats.perf_phases[std::string(PerfPhaseName(phase)) + "." +
                                 PerfFieldName(f)] = d.v[f];
      }
      run_total.Accumulate(d);
    }
    metrics_.GetCounter("perf.cycles")->Add(run_total.v[kPerfCycles]);
    metrics_.GetCounter("perf.instructions")
        ->Add(run_total.v[kPerfInstructions]);
    metrics_.GetCounter("perf.llc_loads")->Add(run_total.v[kPerfLlcLoads]);
    metrics_.GetCounter("perf.llc_misses")->Add(run_total.v[kPerfLlcMisses]);
    metrics_.GetCounter("perf.branch_misses")
        ->Add(run_total.v[kPerfBranchMisses]);
    metrics_.GetCounter("perf.dtlb_misses")->Add(run_total.v[kPerfDtlbMisses]);
    metrics_.GetCounter("perf.task_clock_ms")
        ->Add(run_total.v[kPerfTaskClockNs] / 1000000);
    metrics_.GetCounter("perf.ctx_switches")
        ->Add(run_total.v[kPerfHwCtxSwitches]);
    metrics_.GetCounter("perf.minor_faults")
        ->Add(run_total.v[kPerfMinorFaults]);
    metrics_.GetCounter("perf.major_faults")
        ->Add(run_total.v[kPerfMajorFaults]);
    // One final memory probe so short runs still report a peak.
    mem_peak_gauge_->Observe(mem_sampler_.Sample().peak_rss_kb);
    result.stats.peak_rss_kb = mem_sampler_.peak_rss_kb();
    result.stats.mem_samples = mem_samples_;
    result.stats.metrics = metrics_.Snapshot();
    result.stats.metrics["pregel.supersteps"] = supersteps_done_;
  }
  for (int slot = 0; slot < kNumAggregatorSlots; ++slot) {
    result.stats.aggregates[slot] = global_aggregates_[slot];
  }
  result.values = std::move(values_);
  result.history = recorder_;
  return result;
}

}  // namespace serigraph

#endif  // SERIGRAPH_PREGEL_ENGINE_H_
