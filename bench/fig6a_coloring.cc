// Figure 6(a): greedy graph coloring computation times across datasets,
// worker counts, and synchronization techniques.

#include "algos/coloring.h"
#include "fig6_common.h"

using namespace serigraph;

int main(int argc, char** argv) {
  return RunFig6Grid(
      argc, argv, "Figure 6(a): graph coloring",
      "partition-based locking fastest everywhere; up to 2.3x vs "
      "vertex-based (TW, 32 workers) and 2.2x vs token passing (UK, 32)",
      /*undirected=*/true,
      [](const Graph& graph, const RunConfig& config) {
        std::vector<int64_t> colors;
        RunStats stats = RunProgram(graph, GreedyColoring(), config, &colors);
        return std::make_pair(stats, IsProperColoring(graph, colors));
      });
}
