#ifndef SERIGRAPH_COMMON_THREADING_H_
#define SERIGRAPH_COMMON_THREADING_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace serigraph {

/// Reusable cyclic barrier for a fixed party count. Equivalent to
/// std::barrier but with a dynamic count known only at run time and no
/// completion function; used for superstep global barriers.
class CyclicBarrier {
 public:
  explicit CyclicBarrier(int parties);

  CyclicBarrier(const CyclicBarrier&) = delete;
  CyclicBarrier& operator=(const CyclicBarrier&) = delete;

  /// Blocks until all parties arrive. Returns true for exactly one caller
  /// per generation (the "serial" party), which may run phase-global work
  /// guarded by a subsequent Await(). On a broken barrier every Await
  /// (current waiters and all future arrivals) returns false immediately;
  /// callers that care must check their abort flag after a false return.
  bool Await();

  /// Permanently breaks the barrier: wakes every current waiter and makes
  /// all future Await calls return false without blocking. Used to release
  /// workers when a run attempt is aborted for recovery.
  void Break();

  bool broken() const;

  int parties() const { return parties_; }

 private:
  const int parties_;
  mutable sy::Mutex mu_;
  sy::CondVar cv_;
  int waiting_ SY_GUARDED_BY(mu_) = 0;
  uint64_t generation_ SY_GUARDED_BY(mu_) = 0;
  bool broken_ SY_GUARDED_BY(mu_) = false;
};

/// One-shot latch: Wait() blocks until CountDown() has been called `count`
/// times.
class CountDownLatch {
 public:
  explicit CountDownLatch(int count) : count_(count) {}

  void CountDown();
  void Wait();

 private:
  sy::Mutex mu_;
  sy::CondVar cv_;
  int count_ SY_GUARDED_BY(mu_);
};

/// Fixed-size pool of worker threads consuming a FIFO task queue.
/// Shutdown drains outstanding tasks before joining.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task`; must not be called after Shutdown().
  void Submit(std::function<void()> task);

  /// Blocks until the queue is empty and all in-flight tasks finished.
  void WaitIdle();

  /// Stops accepting work, drains the queue, joins all threads. Idempotent.
  void Shutdown();

  int num_threads() const { return static_cast<int>(threads_.size()); }

 private:
  void WorkerLoop();

  sy::Mutex mu_;
  sy::CondVar cv_task_;
  sy::CondVar cv_idle_;
  std::deque<std::function<void()>> queue_ SY_GUARDED_BY(mu_);
  int active_ SY_GUARDED_BY(mu_) = 0;
  bool shutdown_ SY_GUARDED_BY(mu_) = false;
  /// Joined by Shutdown(); only touched by the constructing thread.
  std::vector<std::thread> threads_;
};

}  // namespace serigraph

#endif  // SERIGRAPH_COMMON_THREADING_H_
