#ifndef SERIGRAPH_OBS_FLIGHTREC_H_
#define SERIGRAPH_OBS_FLIGHTREC_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace serigraph {

class MetricRegistry;

/// Build provenance stamped into the binary at configure time
/// (CMake passes SERIGRAPH_BUILD_* compile definitions to the obs
/// library). Served as the `serigraph_build_info` gauge labels and
/// written into every incident bundle's environment fingerprint.
struct BuildInfo {
  const char* commit;     ///< short git commit hash, or "unknown"
  const char* build_type; ///< CMAKE_BUILD_TYPE, or "unspecified"
  const char* sanitizer;  ///< SERIGRAPH_SANITIZE value, or "none"
};
BuildInfo GetBuildInfo();

/// One record in the flight recorder's ring: a completed span ('X'),
/// a counter sample ('C'), or an instant event ('i'). `name` is always
/// a static-storage string literal (the recording macros guarantee it),
/// so a torn read can mix fields across two records but every field it
/// sees is individually valid.
struct FlightEvent {
  const char* name = nullptr;
  int64_t ts_us = 0;   ///< µs since process start (Tracer epoch)
  int64_t value = 0;   ///< duration for spans, value for counters
  char ph = 0;         ///< 'X' span, 'C' counter, 'i' instant
  uint32_t tid = 0;    ///< recorder-assigned thread index
};

/// Always-on, lock-free, bounded black box: every thread that records
/// gets its own fixed ring of the most recent events (overwrite-oldest),
/// written with relaxed atomic stores only — no locks, no allocation,
/// no fences on the hot path, TSan-clean by construction. Unlike the
/// Tracer (opt-in, unbounded, post-run artifact), the flight recorder
/// is enabled by default and exists so that the moments *before* a
/// deadlock, crash, or abort are still reconstructible afterwards.
///
/// Snapshot readers walk the rings with relaxed loads; a record being
/// overwritten concurrently can yield a torn event (fields from two
/// different records), which is acceptable for a diagnostic tail —
/// names are static literals, so nothing ever dangles.
class FlightRecorder {
 public:
  /// Events retained per recording thread (power of two).
  static constexpr size_t kRingCapacity = 2048;

  static FlightRecorder& Get();

  /// Hot-path gate, mirroring Tracer::enabled(). Default true.
  // mo: on/off gate; stale reads tolerated
  static bool enabled() { return enabled_.load(std::memory_order_relaxed); }
  // mo: on/off gate; stale reads tolerated
  static void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  // mo: on/off gate; stale reads tolerated
  static void Disable() { enabled_.store(false, std::memory_order_relaxed); }

  /// Record a completed span. `name` must be a string literal (or have
  /// static storage duration).
  static void RecordSpan(const char* name, int64_t start_us, int64_t dur_us);
  /// Record a counter sample. `name` must have static storage duration.
  static void RecordCounter(const char* name, int64_t value);
  /// Record an instant event stamped with the current time. `name` must
  /// have static storage duration.
  static void RecordInstant(const char* name);

  /// All retained events across every thread's ring, sorted by
  /// timestamp. Torn records (see class comment) may appear under
  /// concurrent writes; null-named (never-written) slots are skipped.
  std::vector<FlightEvent> Snapshot() const;

  /// The retained tail rendered as a self-contained Chrome trace
  /// (chrome://tracing / Perfetto "traceEvents" JSON).
  std::string TailChromeTraceJson() const;

  /// Total events ever recorded (including overwritten ones).
  int64_t event_count() const;

  /// Drops all retained events (the rings stay registered). Tests only.
  void ResetForTest();

 private:
  struct Slot {
    std::atomic<const char*> name{nullptr};
    std::atomic<int64_t> ts_us{0};
    std::atomic<int64_t> value{0};
    std::atomic<char> ph{0};
  };
  struct Ring {
    uint32_t tid = 0;
    std::atomic<uint64_t> head{0};  ///< next slot to write (monotonic)
    Slot slots[kRingCapacity];
  };

  FlightRecorder() = default;
  void Record(const char* name, char ph, int64_t ts_us, int64_t value);
  Ring* RingForThisThread();

  static std::atomic<bool> enabled_;

  /// Leaf lock: guards ring registration and snapshot iteration only;
  /// never held while recording.
  mutable sy::Mutex rings_mu_;
  std::vector<std::unique_ptr<Ring>> rings_ SY_GUARDED_BY(rings_mu_);
};

/// Process-wide health, fed by the watchdog (deadlock/stall
/// confirmation), the supervisor (worker failures), and the engine
/// (recovery attempts, aborts). `/healthz` renders it; level is the
/// max over currently-reported components, so clearing a component
/// recovers the aggregate.
enum class HealthLevel : int { kOk = 0, kDegraded = 1, kUnhealthy = 2 };

const char* HealthLevelName(HealthLevel level);

class HealthState {
 public:
  static HealthState& Get();

  /// Readiness: flipped true once an engine run is accepting work
  /// (first superstep entered), false when no run is live.
  void SetReady(bool ready);
  bool ready() const;

  /// Report a component's condition; a later report for the same
  /// component replaces the earlier one.
  void Report(HealthLevel level, const std::string& component,
              const std::string& reason);
  /// Remove a component's report (e.g. recovery succeeded).
  void ClearComponent(const std::string& component);

  /// Aggregate level: worst currently-reported component.
  HealthLevel level() const;

  /// {"status":"ok|degraded|unhealthy","ready":bool,"components":{...}}
  std::string ToJson() const;

  void ResetForTest();

 private:
  HealthState() = default;
  /// Leaf lock.
  mutable sy::Mutex health_mu_;
  bool ready_ SY_GUARDED_BY(health_mu_) = false;
  std::map<std::string, std::pair<HealthLevel, std::string>> components_
      SY_GUARDED_BY(health_mu_);
};

/// Rendezvous between the engine (which owns the MetricRegistry and the
/// run state) and the HTTP/incident plane (which reads them from other
/// threads at arbitrary times). The engine registers its registry for
/// the duration of Run(); on unregister the final snapshot is frozen so
/// post-run scrapes still see the last state.
class TelemetryHub {
 public:
  static TelemetryHub& Get();

  /// True while an ObsServer is live; the engine uses this to keep the
  /// per-superstep arena/RSS gauges warm even when perf sampling is off.
  // mo: on/off gate; stale reads tolerated
  static bool serving() { return serving_.load(std::memory_order_relaxed); }
  static void SetServing(bool on) {
    // mo: on/off gate; stale reads tolerated
    serving_.store(on, std::memory_order_relaxed);
  }

  /// Engine Run() entry/exit. Unregister freezes a final snapshot.
  void RegisterMetrics(MetricRegistry* registry);
  void UnregisterMetrics(MetricRegistry* registry);

  /// Live snapshot when a registry is registered, else the last frozen
  /// snapshot (empty before any run).
  std::map<std::string, int64_t> MetricsSnapshot() const;

  /// Coarse live run state, updated with relaxed stores from the
  /// engine's serial section; readable from any thread.
  struct RunStatus {
    std::atomic<bool> running{false};
    std::atomic<int> superstep{-1};
    std::atomic<int> workers{0};
    std::atomic<int64_t> active_vertices{-1};
    std::atomic<int> recovery_attempts{0};
  };
  RunStatus& run() { return run_; }

  /// Fault-event feed for incident bundles: the engine registers a
  /// provider over the armed FaultInjector's fired log (the obs layer
  /// does not link the fault layer).
  void SetFaultLogProvider(std::function<std::vector<std::string>()> provider);
  void ClearFaultLogProvider();
  std::vector<std::string> FaultLog() const;

  void ResetForTest();

 private:
  TelemetryHub() = default;
  /// May acquire common.metrics (registry snapshot) while held.
  mutable sy::Mutex hub_mu_;
  MetricRegistry* registry_ SY_GUARDED_BY(hub_mu_) = nullptr;
  std::map<std::string, int64_t> frozen_ SY_GUARDED_BY(hub_mu_);
  std::function<std::vector<std::string>()> fault_provider_
      SY_GUARDED_BY(hub_mu_);
  RunStatus run_;
  static std::atomic<bool> serving_;
};

/// One incident bundle already written to disk.
struct IncidentRecord {
  std::string dir;      ///< bundle directory (absolute or as configured)
  std::string trigger;  ///< "watchdog-deadlock", "fatal-signal", ...
  std::string reason;   ///< human-readable detail
  int64_t ts_us = 0;    ///< µs since process start
};

/// Writes and indexes incident bundles. A bundle is a directory
/// `<incident_dir>/incident-<seq>-<trigger>/` containing:
///   MANIFEST.json  trigger, reason, timestamps, file list
///   trace.json     flight-recorder tail (Chrome trace format)
///   waitfor.json   wait-for graph + cycle + beacons (introspector on)
///   metrics.prom   Prometheus exposition of the current metrics
///   faults.json    fault-injector events fired so far
///   env.json       environment fingerprint (pid, build, uname, nproc)
///
/// Automatic triggers are rate-limited (min spacing + per-process cap)
/// so a crash loop cannot fill the disk; explicit /incidentz triggers
/// bypass the spacing but not the cap.
class IncidentManager {
 public:
  static IncidentManager& Get();

  /// Enables automatic + manual dumps into `dir` (created on demand).
  /// Empty string disables dumping (the default).
  void SetIncidentDir(const std::string& dir);
  std::string incident_dir() const;

  /// Writes a bundle now. Returns the bundle directory; an empty path
  /// means dumping is disabled or rate-limited (not an error). `manual`
  /// marks operator-requested dumps, which skip the spacing limit.
  StatusOr<std::string> Dump(const std::string& trigger,
                             const std::string& reason, bool manual = false);

  std::vector<IncidentRecord> List() const;
  /// JSON array of IncidentRecord for /incidentz.
  std::string ListJson() const;

  void ResetForTest();

 private:
  IncidentManager() = default;
  /// Serializes bundle writes; file I/O happens while held (dumps are
  /// rare and must not interleave). Acquires obs.hub and common.metrics
  /// via TelemetryHub::MetricsSnapshot() in callees.
  mutable sy::Mutex incident_mu_;
  std::string dir_ SY_GUARDED_BY(incident_mu_);
  int next_seq_ SY_GUARDED_BY(incident_mu_) = 0;
  int64_t last_dump_us_ SY_GUARDED_BY(incident_mu_) = -1;
  std::vector<IncidentRecord> records_ SY_GUARDED_BY(incident_mu_);
};

/// Convenience used by the watchdog, supervisor, engine, and CLI:
/// flips health (unless `level` is kOk), records a flight-recorder
/// instant, and writes an incident bundle if an incident dir is
/// configured. Never throws, never fails the caller.
void TriggerIncidentDump(const std::string& trigger, const std::string& reason,
                         HealthLevel level = HealthLevel::kOk);

/// Installs best-effort SIGSEGV/SIGABRT/SIGBUS/SIGFPE handlers that
/// write one incident bundle and then re-raise with the default
/// disposition. Not strictly async-signal-safe — the process is dying
/// anyway, and a truncated bundle beats none — but reentry-guarded so
/// a crash inside the dump cannot loop. Idempotent.
void InstallFatalSignalHandlers();

}  // namespace serigraph

#endif  // SERIGRAPH_OBS_FLIGHTREC_H_
