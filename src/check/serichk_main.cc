// serichk CLI — exhaustive interleaving exploration of the sync
// techniques on small configs (docs/MODEL_CHECKING.md).
//
//   serichk --technique=vertex-locking --topology=ring --vertices=6
//           --workers=2 --preempt=1 [--max-schedules=N] [--max-seconds=S]
//           [--plant=cm.skip_handover_flush] [--replay=0,0,1,2] [--no-por]
//
// Exit codes: 0 pass, 2 usage, 3 property violation, 4 deadlock,
// 5 livelock, 6 replay divergence.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "check/serichk.h"

namespace {

using serigraph::SyncMode;

bool ParseTechnique(const std::string& name, SyncMode* out) {
  const SyncMode modes[] = {
      SyncMode::kSingleLayerToken, SyncMode::kDualLayerToken,
      SyncMode::kVertexLocking, SyncMode::kPartitionLocking,
      SyncMode::kConstrainedBspLocking};
  for (SyncMode m : modes) {
    if (name == serigraph::SyncModeName(m)) {
      *out = m;
      return true;
    }
  }
  return false;
}

bool FlagValue(const char* arg, const char* name, std::string* value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: serichk --technique=<single-token|dual-token|vertex-locking|"
      "partition-locking|bsp-constrained-locking>\n"
      "               [--topology=<ring|clique|star>] [--vertices=N]\n"
      "               [--workers=W] [--partitions=P] [--preempt=B]\n"
      "               [--max-schedules=N] [--max-seconds=S] [--max-steps=N]\n"
      "               [--plant=<name>] [--replay=<t0,t1,...>] [--no-por]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  serigraph::check::SerichkConfig cfg;
  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (FlagValue(argv[i], "--technique", &v)) {
      if (!ParseTechnique(v, &cfg.technique)) {
        std::fprintf(stderr, "serichk: unknown technique '%s'\n", v.c_str());
        return Usage();
      }
    } else if (FlagValue(argv[i], "--topology", &v)) {
      cfg.topology = v;
    } else if (FlagValue(argv[i], "--vertices", &v)) {
      cfg.vertices = std::atoi(v.c_str());
    } else if (FlagValue(argv[i], "--workers", &v)) {
      cfg.workers = std::atoi(v.c_str());
    } else if (FlagValue(argv[i], "--partitions", &v)) {
      cfg.partitions_per_worker = std::atoi(v.c_str());
    } else if (FlagValue(argv[i], "--preempt", &v)) {
      cfg.preemption_bound = std::atoi(v.c_str());
    } else if (FlagValue(argv[i], "--max-schedules", &v)) {
      cfg.max_schedules = std::atoll(v.c_str());
    } else if (FlagValue(argv[i], "--max-seconds", &v)) {
      cfg.max_seconds = std::atoll(v.c_str());
    } else if (FlagValue(argv[i], "--max-steps", &v)) {
      cfg.max_steps = std::atoll(v.c_str());
    } else if (FlagValue(argv[i], "--plant", &v)) {
      cfg.plant = v;
    } else if (FlagValue(argv[i], "--replay", &v)) {
      cfg.replay = v;
    } else if (std::strcmp(argv[i], "--no-por") == 0) {
      cfg.object_por = false;
    } else {
      std::fprintf(stderr, "serichk: unknown flag '%s'\n", argv[i]);
      return Usage();
    }
  }
  return serigraph::check::RunSerichk(cfg);
}
