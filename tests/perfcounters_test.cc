// Tests for the perf-counter layer (src/obs/perfcounters.h) and memory
// observability (src/obs/memprof.h): the software fallback must always
// work (CI runners routinely deny perf_event_open), scope attribution
// must be race-free under concurrent compute threads (this binary runs
// under TSan in scripts/check.sh), and a perf-enabled engine run must
// surface phase totals, per-superstep memory samples, and the perf/memory
// report sections.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "algos/pagerank.h"
#include "graph/generators.h"
#include "harness/runner.h"
#include "obs/memprof.h"
#include "obs/perfcounters.h"
#include "pregel/message_store.h"
#include "pregel/model.h"

namespace serigraph {
namespace {

/// Enables the process-wide perf singleton for one test, software-only
/// so the result does not depend on the host's perf_event_paranoid.
class ScopedSoftwarePerf {
 public:
  ScopedSoftwarePerf() {
    PerfCounterConfig config;
    config.force_software = true;
    PerfCounters::Enable(config);
  }
  ~ScopedSoftwarePerf() { PerfCounters::Disable(); }
};

TEST(PerfCounterGroupTest, SoftwareFallbackNeverFails) {
  PerfCounterConfig config;
  config.force_software = true;
  PerfCounterGroup group(config);
  EXPECT_FALSE(group.hw_available());
  EXPECT_FALSE(group.fallback_reason().empty());

  const PerfDelta start = group.ReadNow();
  // Burn some CPU so the thread clock visibly advances.
  volatile int64_t sink = 0;
  for (int i = 0; i < 2000000; ++i) sink = sink + i;
  const PerfDelta end = group.ReadNow();
  const PerfDelta delta = PerfCounterGroup::Delta(start, end);
  EXPECT_FALSE(delta.hw_valid);
  EXPECT_GT(delta.v[kPerfTaskClockNs], 0);
  EXPECT_GE(delta.v[kPerfMinorFaults], 0);
}

TEST(PerfCounterGroupTest, HardwarePathDegradesGracefully) {
  // Whatever this host allows, constructing and reading a default group
  // must not crash, and a denied open must leave a diagnosis.
  PerfCounterGroup group((PerfCounterConfig()));
  if (!group.hw_available()) {
    EXPECT_FALSE(group.fallback_reason().empty());
  }
  const PerfDelta a = group.ReadNow();
  const PerfDelta b = group.ReadNow();
  const PerfDelta delta = PerfCounterGroup::Delta(a, b);
  EXPECT_GE(delta.v[kPerfTaskClockNs], 0);
  EXPECT_EQ(delta.hw_valid, group.hw_available());
}

TEST(PerfDeltaTest, RatiosAndAccumulate) {
  PerfDelta d{};
  d.v[kPerfCycles] = 1000;
  d.v[kPerfInstructions] = 2500;
  d.v[kPerfLlcLoads] = 200;
  d.v[kPerfLlcMisses] = 50;
  EXPECT_EQ(d.ipc_milli(), 2500);
  EXPECT_EQ(d.llc_miss_per_mille(), 250);

  PerfDelta zero{};
  EXPECT_EQ(zero.ipc_milli(), 0);
  EXPECT_EQ(zero.llc_miss_per_mille(), 0);

  PerfDelta sum{};
  sum.Accumulate(d);
  sum.Accumulate(d);
  EXPECT_EQ(sum.v[kPerfCycles], 2000);
  EXPECT_EQ(sum.v[kPerfLlcMisses], 100);
}

TEST(PerfPhaseAccumTest, NestedScopesAttributeAcrossThreads) {
  ScopedSoftwarePerf perf;
  PerfPhaseAccum accum;
  // Several "compute threads" each run a compute scope with a fork-wait
  // scope nested inside — the engine's exact nesting. TSan (in the
  // sanitizer CI pass) checks the accumulator's atomics.
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&accum] {
      for (int i = 0; i < 50; ++i) {
        SY_PERF_SCOPE(&accum, PerfPhase::kCompute);
        volatile int64_t sink = 0;
        for (int j = 0; j < 20000; ++j) sink = sink + j;
        {
          SY_PERF_SCOPE(&accum, PerfPhase::kForkWait);
          for (int j = 0; j < 5000; ++j) sink = sink + j;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  const PerfDelta compute = accum.Exchange(PerfPhase::kCompute);
  const PerfDelta fork = accum.Exchange(PerfPhase::kForkWait);
  EXPECT_GT(compute.v[kPerfTaskClockNs], 0);
  EXPECT_GT(fork.v[kPerfTaskClockNs], 0);
  // Nesting semantics: the fork-wait interval also counts as compute
  // (mirrors the wall-clock compute_us accounting), so compute >= fork.
  EXPECT_GE(compute.v[kPerfTaskClockNs], fork.v[kPerfTaskClockNs]);
  // Exchange drains: a second read returns zeros.
  EXPECT_EQ(accum.Exchange(PerfPhase::kCompute).v[kPerfTaskClockNs], 0);
}

TEST(PerfScopeTest, DisabledScopesAreNoOps) {
  ASSERT_FALSE(PerfCounters::enabled());
  PerfPhaseAccum accum;
  {
    SY_PERF_SCOPE(&accum, PerfPhase::kCompute);
  }
  EXPECT_EQ(accum.Exchange(PerfPhase::kCompute).v[kPerfTaskClockNs], 0);
}

TEST(MemProfTest, PeakRssIsMonotonic) {
  MemorySampler sampler;
  const MemoryStatus first = sampler.Sample();
  EXPECT_GT(first.peak_rss_kb, 0);
  // Touch ~8 MiB so RSS visibly grows, then re-sample: the folded peak
  // must never decrease.
  std::vector<char> ballast(8 * 1024 * 1024);
  for (size_t i = 0; i < ballast.size(); i += 4096) ballast[i] = 1;
  const MemoryStatus second = sampler.Sample();
  EXPECT_GE(second.peak_rss_kb, first.peak_rss_kb);
  EXPECT_GE(sampler.peak_rss_kb(), first.peak_rss_kb);
}

TEST(MessageStoreStatsTest, CountsArenaOccupancy) {
  MessageStore<double> store;
  store.Init(/*num_vertices=*/64, /*double_buffered=*/true,
             /*combine=*/nullptr);
  for (int m = 0; m < 5; ++m) {
    for (int32_t li = 0; li < 64; ++li) {
      store.Append(li, static_cast<double>(m));
    }
  }
  const MessageStoreArenaStats stats = store.Stats();
  EXPECT_GT(stats.chunks, 0);
  EXPECT_EQ(stats.nodes_in_use, 64 * 5);
  EXPECT_GE(stats.node_capacity, stats.nodes_in_use);
  EXPECT_EQ(stats.max_chain_len, 5);
}

TEST(EnginePerfTest, PerfRunCarriesPhaseTotalsAndMemorySamples) {
  auto g = Graph::FromEdgeList(ErdosRenyi(/*n=*/200, /*m=*/800, /*seed=*/7));
  ASSERT_TRUE(g.ok());
  Graph graph = std::move(g).value();
  RunConfig config;
  config.sync_mode = SyncMode::kPartitionLocking;
  config.num_workers = 4;
  config.perf_counters = true;
  const RunStats stats = RunProgram(graph, PageRank(0.01), config);

  EXPECT_TRUE(stats.perf_enabled);
  if (!stats.perf_hw_counters) {
    EXPECT_FALSE(stats.perf_fallback.empty());
  }
  // Task-clock attribution works under hardware counters AND fallback.
  ASSERT_TRUE(stats.perf_phases.count("compute.task_clock_ns"));
  EXPECT_GT(stats.perf_phases.at("compute.task_clock_ns"), 0);
  EXPECT_GT(stats.Metric("perf.task_clock_ms"), 0);
  EXPECT_GT(stats.peak_rss_kb, 0);
  ASSERT_FALSE(stats.mem_samples.empty());
  EXPECT_EQ(stats.mem_samples.size(),
            static_cast<size_t>(stats.supersteps));
  for (const MemSample& sample : stats.mem_samples) {
    EXPECT_GT(sample.peak_rss_kb, 0);
  }
  // Per-superstep timeline rows carry the compute-phase counters.
  ASSERT_FALSE(stats.timeline.empty());
  EXPECT_GT(stats.timeline.front().compute_task_clock_ns, 0);

  const std::string json = RunStatsToJson(stats);
  EXPECT_NE(json.find("\"perf\""), std::string::npos);
  EXPECT_NE(json.find("\"memory\""), std::string::npos);
  EXPECT_NE(json.find("\"peak_rss_kb\""), std::string::npos);
  EXPECT_NE(json.find("\"compute.task_clock_ns\""), std::string::npos);

  // A perf run must not leave the process-global singleton enabled.
  EXPECT_FALSE(PerfCounters::enabled());
}

TEST(EnginePerfTest, NonPerfRunStaysClean) {
  auto g = Graph::FromEdgeList(ErdosRenyi(/*n=*/100, /*m=*/300, /*seed=*/3));
  ASSERT_TRUE(g.ok());
  Graph graph = std::move(g).value();
  RunConfig config;
  config.sync_mode = SyncMode::kPartitionLocking;
  config.num_workers = 2;
  const RunStats stats = RunProgram(graph, PageRank(0.01), config);
  EXPECT_FALSE(stats.perf_enabled);
  EXPECT_TRUE(stats.perf_phases.empty());
  EXPECT_TRUE(stats.mem_samples.empty());
  const std::string json = RunStatsToJson(stats);
  EXPECT_EQ(json.find("\"perf\""), std::string::npos);
  EXPECT_EQ(json.find("\"memory\""), std::string::npos);
}

}  // namespace
}  // namespace serigraph
