// Unit tests for the synchronization techniques' scheduling logic:
// token schedules, vertex gating rules, fork-count bookkeeping, and the
// factory.

#include <gtest/gtest.h>

#include "algos/pagerank.h"
#include "graph/generators.h"
#include "pregel/engine.h"
#include "sync/distributed_locking.h"
#include "sync/token_passing.h"

namespace serigraph {
namespace {

Graph Make(const EdgeList& el) {
  auto g = Graph::FromEdgeList(el);
  EXPECT_TRUE(g.ok()) << g.status();
  return std::move(g).value();
}

SyncTechnique::Context MakeContext(const Graph* g, const Partitioning* p,
                                   const BoundaryInfo* b,
                                   MetricRegistry* m) {
  SyncTechnique::Context ctx;
  ctx.graph = g;
  ctx.partitioning = p;
  ctx.boundaries = b;
  ctx.metrics = m;
  return ctx;
}

TEST(SyncModeNameTest, AllNames) {
  EXPECT_STREQ(SyncModeName(SyncMode::kNone), "none");
  EXPECT_STREQ(SyncModeName(SyncMode::kSingleLayerToken), "single-token");
  EXPECT_STREQ(SyncModeName(SyncMode::kDualLayerToken), "dual-token");
  EXPECT_STREQ(SyncModeName(SyncMode::kVertexLocking), "vertex-locking");
  EXPECT_STREQ(SyncModeName(SyncMode::kPartitionLocking),
               "partition-locking");
}

TEST(FactoryTest, ProducesMatchingGranularity) {
  using G = SyncTechnique::Granularity;
  EXPECT_EQ(MakeSyncTechnique(SyncMode::kNone)->granularity(), G::kNone);
  EXPECT_EQ(MakeSyncTechnique(SyncMode::kSingleLayerToken)->granularity(),
            G::kVertexGate);
  EXPECT_EQ(MakeSyncTechnique(SyncMode::kDualLayerToken)->granularity(),
            G::kVertexGate);
  EXPECT_EQ(MakeSyncTechnique(SyncMode::kVertexLocking)->granularity(),
            G::kVertexLock);
  EXPECT_EQ(MakeSyncTechnique(SyncMode::kPartitionLocking)->granularity(),
            G::kPartitionLock);
}

TEST(FactoryTest, OnlySingleTokenRequiresOneThread) {
  EXPECT_TRUE(MakeSyncTechnique(SyncMode::kSingleLayerToken)
                  ->RequiresSingleComputeThread());
  EXPECT_FALSE(MakeSyncTechnique(SyncMode::kDualLayerToken)
                   ->RequiresSingleComputeThread());
  EXPECT_FALSE(MakeSyncTechnique(SyncMode::kPartitionLocking)
                   ->RequiresSingleComputeThread());
}

TEST(SingleLayerTokenTest, RoundRobinHolderAndGating) {
  Graph g = Make(PaperExampleGraph());
  auto p = Partitioning::FromAssignment({0, 2, 1, 3}, {0, 0, 1, 1});
  ASSERT_TRUE(p.ok());
  BoundaryInfo boundaries(g, *p);
  MetricRegistry metrics;
  SingleLayerTokenPassing technique;
  ASSERT_TRUE(
      technique.Init(MakeContext(&g, &*p, &boundaries, &metrics)).ok());

  EXPECT_EQ(technique.HolderOf(0), 0);
  EXPECT_EQ(technique.HolderOf(1), 1);
  EXPECT_EQ(technique.HolderOf(2), 0);

  // All four vertices are m-boundary in this layout: only the holder's
  // worker may execute them.
  for (int s = 0; s < 4; ++s) {
    for (VertexId v = 0; v < 4; ++v) {
      const WorkerId w = p->WorkerOf(v);
      EXPECT_EQ(technique.MayExecuteVertex(w, s, v),
                technique.HolderOf(s) == w)
          << "s=" << s << " v=" << v;
    }
  }
}

TEST(SingleLayerTokenTest, MInternalAlwaysAllowed) {
  // Path 0-1-2 all on one worker of two; all m-internal there.
  Graph g = Make(Path(3)).Undirected();
  auto p = Partitioning::FromAssignment({0, 0, 0}, {0, 1});
  ASSERT_TRUE(p.ok());
  BoundaryInfo boundaries(g, *p);
  MetricRegistry metrics;
  SingleLayerTokenPassing technique;
  ASSERT_TRUE(
      technique.Init(MakeContext(&g, &*p, &boundaries, &metrics)).ok());
  for (int s = 0; s < 4; ++s) {
    for (VertexId v = 0; v < 3; ++v) {
      EXPECT_TRUE(technique.MayExecuteVertex(0, s, v));
    }
  }
}

TEST(DualLayerTokenTest, GlobalWindowsProportionalToPartitions) {
  // Worker 0 owns 1 partition, worker 1 owns 3: windows of size 1 and 3.
  Graph g = Make(Ring(8)).Undirected();
  auto p = Partitioning::FromAssignment({0, 0, 1, 1, 2, 2, 3, 3},
                                        {0, 1, 1, 1});
  ASSERT_TRUE(p.ok());
  BoundaryInfo boundaries(g, *p);
  MetricRegistry metrics;
  DualLayerTokenPassing technique;
  ASSERT_TRUE(
      technique.Init(MakeContext(&g, &*p, &boundaries, &metrics)).ok());
  EXPECT_EQ(technique.GlobalHolderOf(0), 0);
  EXPECT_EQ(technique.GlobalHolderOf(1), 1);
  EXPECT_EQ(technique.GlobalHolderOf(2), 1);
  EXPECT_EQ(technique.GlobalHolderOf(3), 1);
  EXPECT_EQ(technique.GlobalHolderOf(4), 0);  // cycle length 4
}

TEST(DualLayerTokenTest, LocalTokenRotatesThroughOwnPartitions) {
  Graph g = Make(Ring(8)).Undirected();
  Partitioning p = Partitioning::Contiguous(8, 2, 2);
  BoundaryInfo boundaries(g, p);
  MetricRegistry metrics;
  DualLayerTokenPassing technique;
  ASSERT_TRUE(
      technique.Init(MakeContext(&g, &p, &boundaries, &metrics)).ok());
  const auto& parts0 = p.PartitionsOfWorker(0);
  EXPECT_EQ(technique.LocalTokenPartition(0, 0), parts0[0]);
  EXPECT_EQ(technique.LocalTokenPartition(0, 1), parts0[1]);
  EXPECT_EQ(technique.LocalTokenPartition(0, 2), parts0[0]);
}

TEST(DualLayerTokenTest, EveryMixedVertexGetsAnAlignedSuperstep) {
  // Over one full global cycle every vertex must be executable at least
  // once, otherwise computations starve.
  Graph g = Make(PowerLawChungLu(120, 5, 2.3, 3)).Undirected();
  Partitioning p = Partitioning::Hash(120, 3, 4, 1);
  BoundaryInfo boundaries(g, p);
  MetricRegistry metrics;
  DualLayerTokenPassing technique;
  ASSERT_TRUE(
      technique.Init(MakeContext(&g, &p, &boundaries, &metrics)).ok());
  const int cycle = p.num_partitions();
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    bool allowed = false;
    for (int s = 0; s < cycle && !allowed; ++s) {
      allowed = technique.MayExecuteVertex(p.WorkerOf(v), s, v);
    }
    EXPECT_TRUE(allowed) << "vertex " << v << " never allowed in a cycle";
  }
}

TEST(DualLayerTokenTest, NeighborsNeverBothAllowed) {
  // The C2 scheduling core: two adjacent vertices on different owners
  // must never be simultaneously executable in the same superstep
  // (vertices of the same partition execute sequentially, so exclude
  // same-partition pairs).
  Graph g = Make(PowerLawChungLu(100, 6, 2.2, 9)).Undirected();
  Partitioning p = Partitioning::Hash(100, 3, 3, 2);
  BoundaryInfo boundaries(g, p);
  MetricRegistry metrics;
  DualLayerTokenPassing technique;
  ASSERT_TRUE(
      technique.Init(MakeContext(&g, &p, &boundaries, &metrics)).ok());
  for (int s = 0; s < p.num_partitions() + 2; ++s) {
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (!technique.MayExecuteVertex(p.WorkerOf(v), s, v)) continue;
      for (VertexId u : g.OutNeighbors(v)) {
        if (p.PartitionOf(u) == p.PartitionOf(v)) continue;
        EXPECT_FALSE(technique.MayExecuteVertex(p.WorkerOf(u), s, u))
            << "superstep " << s << ": neighbors " << v << "," << u;
      }
    }
  }
}

TEST(LockingTest, ForkCountsMatchStructures) {
  Graph g = Make(PowerLawChungLu(200, 6, 2.3, 4)).Undirected();
  Partitioning p = Partitioning::Hash(200, 4, 4, 0);
  BoundaryInfo boundaries(g, p);

  MetricRegistry m1;
  VertexBasedLocking vertex_locking;
  ASSERT_TRUE(
      vertex_locking.Init(MakeContext(&g, &p, &boundaries, &m1)).ok());
  EXPECT_EQ(vertex_locking.num_forks(), g.num_edges() / 2);

  MetricRegistry m2;
  PartitionBasedLocking partition_locking;
  ASSERT_TRUE(
      partition_locking.Init(MakeContext(&g, &p, &boundaries, &m2)).ok());
  EXPECT_EQ(partition_locking.num_forks(),
            CountPartitionForks(BuildPartitionGraph(g, p)));
  EXPECT_LT(partition_locking.num_forks(), vertex_locking.num_forks());
}

TEST(EngineIntegrationTest, SingleTokenForcesOneComputeThread) {
  // With single-layer token passing the engine must clamp threads; the
  // run still completes correctly.
  Graph g = Make(PowerLawChungLu(200, 6, 2.3, 4));
  EngineOptions opts;
  opts.sync_mode = SyncMode::kSingleLayerToken;
  opts.num_workers = 2;
  opts.compute_threads_per_worker = 8;  // will be clamped to 1
  Engine<PageRank> engine(&g, opts);
  auto result = engine.Run(PageRank(0.01));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->stats.converged);
}

}  // namespace
}  // namespace serigraph
