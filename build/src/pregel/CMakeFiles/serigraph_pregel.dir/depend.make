# Empty dependencies file for serigraph_pregel.
# This may be replaced when dependencies are built.
