// TSA negative case: a code path that returns while still holding a
// manually acquired lock. Must FAIL under Clang -Wthread-safety
// -Werror ("mutex 'mu_' is still held at the end of function").
#include "common/mutex.h"

namespace tsa_negative {

class Unreleased {
 public:
  int TakeAndForget(bool early) {
    mu_.Lock();
    if (early) {
      return -1;  // violation: returns with mu_ held
    }
    const int v = value_;
    mu_.Unlock();
    return v;
  }

 private:
  sy::Mutex mu_;
  int value_ SY_GUARDED_BY(mu_) = 0;
};

int Use() {
  Unreleased u;
  return u.TakeAndForget(false);
}

}  // namespace tsa_negative
