file(REMOVE_RECURSE
  "CMakeFiles/serigraph_net.dir/transport.cc.o"
  "CMakeFiles/serigraph_net.dir/transport.cc.o.d"
  "libserigraph_net.a"
  "libserigraph_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serigraph_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
