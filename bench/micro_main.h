#ifndef SERIGRAPH_BENCH_MICRO_MAIN_H_
#define SERIGRAPH_BENCH_MICRO_MAIN_H_

// Shared main() for the Google Benchmark micro benches. Identical to the
// stock benchmark_main except that the repo's `--json=FILE` flag writes a
// schema-versioned BENCH.json (bench/harness.h) instead of the raw
// Google Benchmark dump, so micro and fig6-style benches produce the
// same machine-readable format and scripts/bench_compare.py can diff
// either against a committed baseline:
//
//   build/bench/micro_message_store --json=results/BENCH_pr6.json
//
// Include this header exactly once, at the end of a bench's .cc file.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "harness.h"

namespace serigraph {

/// Console output as usual, plus per-repetition real times collected for
/// the BENCH.json report. Aggregate rows (mean/median/stddev) are
/// skipped — the report computes its own median from the raw
/// repetitions, so the statistic is the same with or without
/// --benchmark_repetitions.
class BenchJsonCollector : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    benchmark::ConsoleReporter::ReportRuns(reports);
    for (const Run& run : reports) {
      if (!run.aggregate_name.empty()) continue;
      if (run.iterations <= 0) continue;
      // Per-iteration real time in ns, independent of the benchmark's
      // declared time unit.
      const double ns = run.real_accumulated_time /
                        static_cast<double>(run.iterations) * 1e9;
      Entry& entry = entries_[run.benchmark_name()];
      entry.samples_ns.push_back(ns);
      entry.iterations += run.iterations;
    }
  }

  BenchReport ToReport() const {
    BenchReport report;
    report.env = CaptureBenchEnvironment();
    for (const auto& [name, entry] : entries_) {
      BenchCell cell;
      cell.name = name;
      cell.unit = "ns";
      cell.median = MedianOf(entry.samples_ns);
      cell.min = *std::min_element(entry.samples_ns.begin(),
                                   entry.samples_ns.end());
      cell.max = *std::max_element(entry.samples_ns.begin(),
                                   entry.samples_ns.end());
      cell.reps = static_cast<int>(entry.samples_ns.size());
      cell.counters["iterations"] = entry.iterations;
      report.Add(std::move(cell));
    }
    return report;
  }

 private:
  struct Entry {
    std::vector<double> samples_ns;
    int64_t iterations = 0;
  };
  std::map<std::string, Entry> entries_;
};

}  // namespace serigraph

int main(int argc, char** argv) {
  serigraph::BenchArgs args = serigraph::ParseBenchArgs(argc, argv);
  int ac = static_cast<int>(args.passthrough.size()) - 1;  // drop nullptr
  benchmark::Initialize(&ac, args.passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(ac, args.passthrough.data())) {
    return 1;
  }
  serigraph::BenchJsonCollector collector;
  benchmark::RunSpecifiedBenchmarks(&collector);
  benchmark::Shutdown();
  if (!args.json_path.empty()) {
    const serigraph::BenchReport report = collector.ToReport();
    if (!report.WriteJson(args.json_path)) return 1;
    std::printf("bench report written to %s (%zu cells)\n",
                args.json_path.c_str(), report.cells.size());
  }
  return 0;
}

#endif  // SERIGRAPH_BENCH_MICRO_MAIN_H_
