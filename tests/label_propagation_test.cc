#include "algos/label_propagation.h"

#include <gtest/gtest.h>

#include <set>

#include "graph/generators.h"
#include "pregel/engine.h"
#include "verify/history.h"

namespace serigraph {
namespace {

Graph Make(const EdgeList& el) {
  auto g = Graph::FromEdgeList(el);
  EXPECT_TRUE(g.ok()) << g.status();
  return std::move(g).value();
}

/// Two dense communities joined by a single bridge edge.
Graph TwoCommunities() {
  EdgeList el;
  el.num_vertices = 24;
  auto undirected = [&](VertexId a, VertexId b) {
    el.edges.push_back({a, b});
    el.edges.push_back({b, a});
  };
  for (VertexId a = 0; a < 12; ++a) {
    for (VertexId b = a + 1; b < 12; ++b) undirected(a, b);
  }
  for (VertexId a = 12; a < 24; ++a) {
    for (VertexId b = a + 1; b < 24; ++b) undirected(a, b);
  }
  undirected(11, 12);  // bridge
  return Make(el);
}

TEST(DominantLabelTest, FrequencyAndTieBreak) {
  using NL = LabelPropagation::NeighborLabel;
  std::vector<NL> heard = {{0, 5}, {1, 5}, {2, 3}};
  EXPECT_EQ(LabelPropagation::DominantLabel(heard, 9), 5);
  std::vector<NL> tie = {{0, 7}, {1, 4}};
  EXPECT_EQ(LabelPropagation::DominantLabel(tie, 9), 4);  // smallest wins
  EXPECT_EQ(LabelPropagation::DominantLabel({}, 9), 9);
}

TEST(LabelPropagationTest, FindsTwoCommunitiesUnderSerializability) {
  Graph g = TwoCommunities();
  EngineOptions opts;
  opts.sync_mode = SyncMode::kPartitionLocking;
  opts.num_workers = 3;
  opts.max_supersteps = 500;
  opts.record_history = true;
  Engine<LabelPropagation> engine(&g, opts);
  auto result = engine.Run(LabelPropagation());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->stats.converged);

  auto labels = LabelPropagationLabels(result->values);
  EXPECT_TRUE(IsLocallyStableLabeling(g, labels));
  // Each clique must be label-uniform; the bridge may merge them, so
  // there are at most 2 distinct labels overall.
  std::set<int64_t> first(labels.begin(), labels.begin() + 12);
  std::set<int64_t> second(labels.begin() + 12, labels.end());
  EXPECT_EQ(first.size(), 1u);
  EXPECT_EQ(second.size(), 1u);

  HistoryCheck check = CheckHistory(g, result->history->TakeRecords());
  EXPECT_TRUE(check.ok()) << (check.violation_samples.empty()
                                  ? "?"
                                  : check.violation_samples[0]);
}

TEST(LabelPropagationTest, StableAcrossTechniques) {
  Graph g = Make(PowerLawChungLu(150, 6, 2.3, 21)).Undirected();
  for (SyncMode sync :
       {SyncMode::kSingleLayerToken, SyncMode::kVertexLocking,
        SyncMode::kPartitionLocking}) {
    EngineOptions opts;
    opts.sync_mode = sync;
    opts.num_workers = 3;
    opts.max_supersteps = 2000;
    Engine<LabelPropagation> engine(&g, opts);
    auto result = engine.Run(LabelPropagation());
    ASSERT_TRUE(result.ok()) << SyncModeName(sync);
    EXPECT_TRUE(result->stats.converged) << SyncModeName(sync);
    EXPECT_TRUE(
        IsLocallyStableLabeling(g, LabelPropagationLabels(result->values)))
        << SyncModeName(sync);
  }
}

TEST(LabelPropagationTest, IsolatedVerticesKeepOwnLabel) {
  EdgeList el{5, {}};
  Graph g = Make(el);
  EngineOptions opts;
  opts.num_workers = 2;
  Engine<LabelPropagation> engine(&g, opts);
  auto result = engine.Run(LabelPropagation());
  ASSERT_TRUE(result.ok());
  auto labels = LabelPropagationLabels(result->values);
  for (VertexId v = 0; v < 5; ++v) EXPECT_EQ(labels[v], v);
}

TEST(IsLocallyStableLabelingTest, RejectsUnstable) {
  Graph g = TwoCommunities();
  std::vector<int64_t> labels(24, 0);
  labels[5] = 99;  // a lone dissenter inside clique 0 is unstable
  EXPECT_FALSE(IsLocallyStableLabeling(g, labels));
  std::vector<int64_t> uniform(24, 0);
  EXPECT_TRUE(IsLocallyStableLabeling(g, uniform));
}

}  // namespace
}  // namespace serigraph
