# Empty compiler generated dependencies file for micro_chandy_misra.
# This may be replaced when dependencies are built.
