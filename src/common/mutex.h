#ifndef SERIGRAPH_COMMON_MUTEX_H_
#define SERIGRAPH_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

// Annotated locking primitives for the whole tree. Everything outside
// src/common/ must use sy::Mutex / sy::MutexLock / sy::CondVar instead of
// the raw std:: types (enforced by scripts/lint_protocol.py), so that
// Clang's -Wthread-safety analysis sees every critical section and every
// SY_GUARDED_BY field access (SERIGRAPH_TSA=ON turns violations into
// build failures). The wrappers are zero-overhead forwarding shims over
// std::mutex / std::condition_variable.
namespace sy {

/// Annotated std::mutex. Prefer sy::MutexLock over manual Lock()/Unlock().
class SY_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() SY_ACQUIRE() { mu_.lock(); }
  void Unlock() SY_RELEASE() { mu_.unlock(); }
  bool TryLock() SY_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// The wrapped handle, for interop (CondVar's adopt/release dance).
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// RAII critical section over a sy::Mutex (the std::lock_guard /
/// std::unique_lock replacement). Holds the lock for its whole lifetime;
/// sy::CondVar::Wait* atomically releases and reacquires it while
/// blocked, which the analysis models as "held throughout".
class SY_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) SY_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  ~MutexLock() SY_RELEASE() { mu_->Unlock(); }

 private:
  Mutex* const mu_;
};

/// Condition variable bound to sy::Mutex critical sections. All waits
/// require the mutex held (enforced by SY_REQUIRES) and return with it
/// held again, exactly like std::condition_variable with a unique_lock.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

  /// Blocks until notified. Spurious wakeups possible; loop on the
  /// predicate like with std::condition_variable.
  void Wait(Mutex& mu) SY_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.native(), std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // ownership stays with the caller's MutexLock
  }

  /// Blocks until notified or `timeout` elapsed; returns
  /// std::cv_status::timeout on expiry.
  template <typename Rep, typename Period>
  std::cv_status WaitFor(Mutex& mu,
                         const std::chrono::duration<Rep, Period>& timeout)
      SY_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.native(), std::adopt_lock);
    const std::cv_status status = cv_.wait_for(lock, timeout);
    lock.release();
    return status;
  }

  /// Blocks until notified or `deadline` reached; returns
  /// std::cv_status::timeout on expiry.
  template <typename Clock, typename Duration>
  std::cv_status WaitUntil(
      Mutex& mu, const std::chrono::time_point<Clock, Duration>& deadline)
      SY_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.native(), std::adopt_lock);
    const std::cv_status status = cv_.wait_until(lock, deadline);
    lock.release();
    return status;
  }

  // No predicate overloads on purpose: a predicate lambda is analyzed as
  // its own unannotated function, so reads of SY_GUARDED_BY fields inside
  // it defeat the analysis. Write the `while (!cond) cv.Wait(mu);` loop
  // in the annotated caller instead.

 private:
  std::condition_variable cv_;
};

}  // namespace sy

#endif  // SERIGRAPH_COMMON_MUTEX_H_
