#ifndef SERIGRAPH_SYNC_DISTRIBUTED_LOCKING_H_
#define SERIGRAPH_SYNC_DISTRIBUTED_LOCKING_H_

#include <memory>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "sync/chandy_misra.h"
#include "sync/technique.h"

namespace serigraph {

/// Partition-based distributed locking (Section 5.4) — the paper's main
/// contribution. Partitions are the philosophers; two partitions share a
/// fork iff an edge connects their vertices (the "virtual partition
/// edges" of Figure 5). A partition acquires all its forks, executes all
/// of its vertices sequentially, then releases. p-internal vertices need
/// no coordination at all; the engine skips acquisition entirely for
/// halted partitions with no pending messages (Section 5.4 optimization).
class PartitionBasedLocking final : public SyncTechnique {
 public:
  Status Init(const Context& ctx) override;
  void BindWorker(WorkerId w, WorkerHandle* handle) override;
  Granularity granularity() const override {
    return Granularity::kPartitionLock;
  }

  bool AcquirePartition(WorkerId w, PartitionId p) override;
  void ReleasePartition(WorkerId w, PartitionId p) override;
  void HandleControl(WorkerId w, const WireMessage& msg) override;

  /// Number of forks (distinct neighboring-partition pairs); the paper's
  /// O(|P|^2) bound. Valid after Init.
  int64_t num_forks() const { return table_->num_forks(); }

  static constexpr uint32_t kRequestTag = 20;
  static constexpr uint32_t kTransferTag = 21;

 private:
  std::unique_ptr<ChandyMisraTable> table_;
};

/// Vertex-based distributed locking (Section 4.3), the GraphLab-async
/// granularity and the |P| = |V| special case of partition-based locking
/// (Section 6.3). Every vertex is a philosopher; every graph edge carries
/// a fork, so the fork count is O(|E|) and every m-boundary execution
/// triggers cross-worker fork traffic plus a flush — the communication
/// overhead the paper measures against.
class VertexBasedLocking final : public SyncTechnique {
 public:
  Status Init(const Context& ctx) override;
  void BindWorker(WorkerId w, WorkerHandle* handle) override;
  Granularity granularity() const override {
    return Granularity::kVertexLock;
  }

  bool AcquireVertex(WorkerId w, VertexId v) override;
  void ReleaseVertex(WorkerId w, VertexId v) override;
  void HandleControl(WorkerId w, const WireMessage& msg) override;

  /// Number of forks (= undirected edges). Valid after Init.
  int64_t num_forks() const { return table_->num_forks(); }

  static constexpr uint32_t kRequestTag = 30;
  static constexpr uint32_t kTransferTag = 31;

 private:
  std::unique_ptr<ChandyMisraTable> table_;
};

/// Proposition 1: constrained vertex-based distributed locking for
/// synchronous computation models. Every vertex is a philosopher (all
/// vertices act as philosophers, property (i)) and forks and request
/// tokens move only between sub-superstep barriers (property (ii)): the
/// engine polls VertexReady between barriers and executes exactly the
/// ready subset, so each superstep costs several barrier + flush rounds
/// — the overhead that led the paper to leave this variant on paper.
class ConstrainedBspVertexLocking final : public SyncTechnique {
 public:
  Status Init(const Context& ctx) override;
  void BindWorker(WorkerId w, WorkerHandle* handle) override;
  Granularity granularity() const override {
    return Granularity::kBspVertexLock;
  }

  bool VertexReady(WorkerId w, VertexId v) override;
  void RequestVertexForks(WorkerId w, VertexId v) override;
  void OnVertexExecuted(WorkerId w, VertexId v) override;
  /// Queues incoming fork traffic; nothing is applied mid-round, so a
  /// vertex's readiness cannot change while any worker is executing —
  /// exchanges land only in OnSubBarrier (property (ii)).
  void HandleControl(WorkerId w, const WireMessage& msg) override;
  void OnSubBarrier(WorkerId w) override;

  int64_t num_forks() const { return table_->num_forks(); }

  static constexpr uint32_t kRequestTag = 40;
  static constexpr uint32_t kTransferTag = 41;

 private:
  struct PendingControl {
    sy::Mutex mu;
    std::vector<WireMessage> messages SY_GUARDED_BY(mu);
  };

  std::unique_ptr<ChandyMisraTable> table_;
  std::vector<std::unique_ptr<PendingControl>> queues_;
};

}  // namespace serigraph

#endif  // SERIGRAPH_SYNC_DISTRIBUTED_LOCKING_H_
