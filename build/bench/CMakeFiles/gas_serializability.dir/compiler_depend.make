# Empty compiler generated dependencies file for gas_serializability.
# This may be replaced when dependencies are built.
