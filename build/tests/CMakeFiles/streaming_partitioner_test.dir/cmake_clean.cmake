file(REMOVE_RECURSE
  "CMakeFiles/streaming_partitioner_test.dir/streaming_partitioner_test.cc.o"
  "CMakeFiles/streaming_partitioner_test.dir/streaming_partitioner_test.cc.o.d"
  "streaming_partitioner_test"
  "streaming_partitioner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_partitioner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
