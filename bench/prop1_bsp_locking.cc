// Proposition 1 in practice: constrained vertex-based locking makes BSP
// serializable, but each superstep splinters into many sub-supersteps
// with full barrier + flush rounds. The paper proves the technique
// correct and then declines to implement it for exactly this reason
// (Section 6: "it further exacerbates BSP's already expensive
// communication and synchronization overheads"); we implement it and
// measure the overhead against the asynchronous techniques.

#include <iostream>

#include "algos/coloring.h"
#include "harness/datasets.h"
#include "harness/runner.h"
#include "harness/table.h"

using namespace serigraph;

int main() {
  Graph graph = MakeUndirectedDataset(FindSpec("OR'"));
  PrintHeader(std::cout,
              "Proposition 1: BSP + constrained vertex locking vs the "
              "asynchronous techniques (coloring on OR', 8 workers)");

  struct Case {
    ComputationModel model;
    SyncMode sync;
  };
  const Case cases[] = {
      {ComputationModel::kBsp, SyncMode::kConstrainedBspLocking},
      {ComputationModel::kAsync, SyncMode::kVertexLocking},
      {ComputationModel::kAsync, SyncMode::kPartitionLocking},
  };
  double partition_time = 1.0;
  std::vector<std::pair<std::string, RunStats>> results;
  for (const Case& c : cases) {
    RunConfig config;
    config.model = c.model;
    config.sync_mode = c.sync;
    config.num_workers = 8;
    config.network = BenchNetwork();
    std::vector<int64_t> colors;
    RunStats stats = RunProgram(graph, GreedyColoring(), config, &colors);
    SG_CHECK(IsProperColoring(graph, colors));
    if (c.sync == SyncMode::kPartitionLocking) {
      partition_time = stats.computation_seconds;
    }
    results.emplace_back(std::string(ComputationModelName(c.model)) + " + " +
                             SyncModeName(c.sync),
                         stats);
  }
  TablePrinter table({"configuration", "time", "supersteps",
                      "sub-supersteps", "flushes", "vs partition-DL"});
  for (const auto& [name, stats] : results) {
    table.AddRow({name, TablePrinter::Seconds(stats.computation_seconds),
                  std::to_string(stats.supersteps),
                  TablePrinter::Count(stats.Metric("pregel.sub_supersteps")),
                  TablePrinter::Count(stats.Metric("pregel.flushes")),
                  TablePrinter::Ratio(stats.computation_seconds /
                                      partition_time)});
  }
  table.Print(std::cout);
  std::cout << "\nEvery configuration is serializable (checker-verified in "
               "tests); the constrained\nBSP variant pays many sub-superstep "
               "barrier rounds per superstep, vindicating\nthe paper's "
               "decision to build on the asynchronous model instead.\n";
  return 0;
}
