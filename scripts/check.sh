#!/usr/bin/env bash
# Builds the full tree under a sanitizer and runs the test suite.
# The tracer's and introspector's lock-free recording paths and the
# engine's per-superstep accounting are only as good as this check: any
# data race in them shows up here, not in a flaky bench.
#
# Usage: scripts/check.sh [--sanitizer=thread|address,undefined]
#                         [--introspect] [--bench-smoke] [--perf-gate]
#                         [build-dir]
#   (default sanitizer: thread; default build-dir: build-<sanitizer>)
#
# --sanitizer=address,undefined runs the combined ASan+UBSan pass
# instead of TSan — the two passes are complementary (TSan cannot run
# with ASan in the same binary), so CI runs both.
#
# --introspect additionally runs a smoke of the watchdog wiring: a small
# fig6a-shaped CLI run (coloring, partition-locking) with JSONL snapshot
# streaming, then validates that the stream parses as JSON and contains
# at least one snapshot and no deadlock reports.
#
# --bench-smoke skips the sanitizer suite entirely: it builds the micro
# benches in Release and runs each with tiny iteration counts plus a
# --json round-trip — a crash/regression smoke, no timing assertions.
#
# --chaos skips the sanitizer suite entirely: it builds serigraph_cli in
# Release and drives seeded fault-injection runs end to end — a worker
# crash mid-superstep under each synchronization technique must recover
# to exit 0 with a fault section in the metrics JSON, the same crash
# without --recover must abort with exit 3, and a randomized plan under
# --verify must still pass the serializability audit.
#
# --perf-gate skips the sanitizer suite entirely: it builds in Release
# and (a) runs a --perf-counters CLI smoke under SERIGRAPH_NO_PERF_HW=1
# (software fallback — shared CI runners usually deny perf_event_open)
# validating that the run report carries perf/memory sections and the
# trace carries counter events, then (b) reruns the micro benches and
# diffs their BENCH.json against the committed baseline with a wide
# noise threshold (order-of-magnitude regressions only). The fresh
# BENCH.json is left in the build dir for artifact upload.
set -euo pipefail

cd "$(dirname "$0")/.."

SANITIZER=thread
INTROSPECT_SMOKE=0
BENCH_SMOKE=0
CHAOS=0
PERF_GATE=0
while [[ "${1:-}" == --* ]]; do
  case "$1" in
    --sanitizer=*) SANITIZER="${1#--sanitizer=}" ;;
    --introspect)  INTROSPECT_SMOKE=1 ;;
    --bench-smoke) BENCH_SMOKE=1 ;;
    --chaos)       CHAOS=1 ;;
    --perf-gate)   PERF_GATE=1 ;;
    *) echo "check.sh: unknown flag $1" >&2; exit 2 ;;
  esac
  shift
done

if [[ "$CHAOS" == "1" ]]; then
  BUILD_DIR="${1:-build-chaos}"
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build "$BUILD_DIR" -j "$(nproc)" --target serigraph_cli
  CLI="$BUILD_DIR/examples/serigraph_cli"
  CHAOS_DIR="$(mktemp -d)"
  trap 'rm -rf "$CHAOS_DIR"' EXIT

  PLAN="$CHAOS_DIR/plan.txt"
  printf 'crash point=engine.pre_barrier worker=1 hit=3\n' > "$PLAN"

  # A worker crash mid-superstep under every technique must recover and
  # exit 0, and the run report must carry the recovery digest.
  for sync in single-token dual-token vertex-locking partition-locking; do
    METRICS="$CHAOS_DIR/metrics-$sync.json"
    "$CLI" --algorithm=sssp --generator=erdos --vertices=300 --degree=4 \
      --seed=2 --sync="$sync" --workers=3 \
      --fault-plan="$PLAN" --checkpoint-every=2 \
      --checkpoint-dir="$CHAOS_DIR" --recover \
      --metrics-json="$METRICS"
    python3 - "$METRICS" "$sync" <<'EOF'
import json, sys
report = json.load(open(sys.argv[1]))
fault = report.get("fault")
if not fault:
    sys.exit(f"chaos smoke [{sys.argv[2]}]: run report has no fault section")
if fault.get("recovery_attempts", 0) < 1:
    sys.exit(f"chaos smoke [{sys.argv[2]}]: no recovery attempt recorded")
if report["metrics"].get("fault.events_fired", 0) < 1:
    sys.exit(f"chaos smoke [{sys.argv[2]}]: no fault event fired")
print(f"chaos smoke [{sys.argv[2]}]: recovered in "
      f"{fault['recovery_attempts']} attempt(s), "
      f"{len(fault.get('events', []))} recovery events")
EOF
  done

  # The same crash with recovery disabled must abort (exit 3), proving
  # the failure was real and not silently tolerated.
  if "$CLI" --algorithm=sssp --generator=erdos --vertices=300 --degree=4 \
      --seed=2 --sync=vertex-locking --workers=3 \
      --fault-plan="$PLAN" > /dev/null 2>&1; then
    echo "chaos smoke: crash without --recover unexpectedly succeeded" >&2
    exit 1
  else
    status=$?
    if [[ "$status" != 3 ]]; then
      echo "chaos smoke: expected abort exit 3, got $status" >&2
      exit 1
    fi
  fi

  # A randomized seeded plan with history recording: recovery must keep
  # the stitched execution serializable (the --verify audit gates it).
  "$CLI" --algorithm=coloring --generator=erdos --vertices=200 --degree=4 \
    --seed=2 --sync=partition-locking --workers=3 \
    --fault-plan=random --fault-seed=7 --checkpoint-every=1 \
    --checkpoint-dir="$CHAOS_DIR" --recover --verify

  echo "check.sh: chaos smoke passed"
  exit 0
fi

if [[ "$PERF_GATE" == "1" ]]; then
  BUILD_DIR="${1:-build-perf-gate}"
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build "$BUILD_DIR" -j "$(nproc)" \
    --target serigraph_cli micro_message_store
  GATE_DIR="$(mktemp -d)"
  trap 'rm -rf "$GATE_DIR"' EXIT

  # Functional half: a --perf-counters run must produce the perf and
  # memory report sections and per-superstep counter events in the
  # trace, in software-fallback mode (SERIGRAPH_NO_PERF_HW=1 — the gate
  # must pass on runners where perf_event_open is denied, and forcing
  # the fallback everywhere keeps it deterministic).
  METRICS="$GATE_DIR/metrics.json"
  TRACE="$GATE_DIR/trace.json"
  SERIGRAPH_NO_PERF_HW=1 "$BUILD_DIR/examples/serigraph_cli" \
    --algorithm=pagerank --generator=powerlaw --vertices=2000 --degree=8 \
    --sync=partition-locking --workers=4 --perf-counters \
    --metrics-json="$METRICS" --trace-out="$TRACE"
  python3 - "$METRICS" "$TRACE" <<'EOF'
import json, sys

report = json.load(open(sys.argv[1]))
perf = report.get("perf")
if not perf:
    sys.exit("perf gate: run report has no perf section")
if perf.get("hw_counters"):
    sys.exit("perf gate: hw_counters true despite SERIGRAPH_NO_PERF_HW=1")
if not perf.get("fallback"):
    sys.exit("perf gate: software fallback engaged but no reason recorded")
phases = perf.get("phases", {})
if phases.get("compute.task_clock_ns", 0) <= 0:
    sys.exit("perf gate: no compute task-clock time attributed")
mem = report.get("memory")
if not mem or mem.get("peak_rss_kb", 0) <= 0:
    sys.exit("perf gate: no peak RSS recorded")
if not mem.get("samples"):
    sys.exit("perf gate: no per-superstep memory samples")
trace = json.load(open(sys.argv[2]))
counters = [e for e in trace.get("traceEvents", []) if e.get("ph") == "C"]
if not counters:
    sys.exit("perf gate: no counter events in the trace")
print("perf gate: report + trace OK (%d counter events, %d mem samples)"
      % (len(counters), len(mem["samples"])))
EOF

  # Regression half: micro bench medians against the committed baseline.
  # Threshold 5.0 = a cell must be 6x slower to fail — shared runners
  # are noisy and their CPUs differ from the baseline machine, so this
  # only catches order-of-magnitude regressions. Tighter comparisons are
  # for a dedicated box (docs/PERF.md).
  SERIGRAPH_NO_PERF_HW=1 "$BUILD_DIR/bench/micro_message_store" \
    --benchmark_min_time=0.02 --benchmark_repetitions=3 \
    --json="$GATE_DIR/BENCH.json"
  python3 scripts/bench_compare.py --threshold=5.0 --allow-env-mismatch \
    results/BENCH_pr6.json "$GATE_DIR/BENCH.json"
  cp "$GATE_DIR/BENCH.json" "$BUILD_DIR/BENCH.json"
  echo "check.sh: perf gate passed (fresh report at $BUILD_DIR/BENCH.json)"
  exit 0
fi

if [[ "$BENCH_SMOKE" == "1" ]]; then
  BUILD_DIR="${1:-build-bench-smoke}"
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build "$BUILD_DIR" -j "$(nproc)" \
    --target micro_message_store micro_transport micro_chandy_misra
  SMOKE_DIR="$(mktemp -d)"
  trap 'rm -rf "$SMOKE_DIR"' EXIT
  for bench in micro_message_store micro_transport micro_chandy_misra; do
    out="$SMOKE_DIR/$bench.json"
    "$BUILD_DIR/bench/$bench" --benchmark_min_time=0.01 --json="$out"
    python3 -c "
import json, sys
d = json.load(open('$out'))
if d.get('schema_version') != 2:
    sys.exit('$bench: --json output is not a schema-v2 BENCH report')
if not d.get('cells'):
    sys.exit('$bench: empty cell list in --json output')
if not d.get('environment', {}).get('compiler'):
    sys.exit('$bench: BENCH report has no environment fingerprint')
print('$bench: %d cells, json ok' % len(d['cells']))
"
  done
  echo "check.sh: bench smoke passed"
  exit 0
fi

BUILD_DIR="${1:-build-$(echo "$SANITIZER" | tr ',' '-')}"

cmake -B "$BUILD_DIR" -S . -DSERIGRAPH_SANITIZE="$SANITIZER"
cmake --build "$BUILD_DIR" -j "$(nproc)"

# Second-guess the sanitizers' defaults: halt_on_error keeps the first
# report readable instead of burying it under cascading failures.
TSAN_OPTIONS="halt_on_error=1" \
ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" \
UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

echo "check.sh: all tests passed under sanitizer '$SANITIZER'"

if [[ "$INTROSPECT_SMOKE" == "1" ]]; then
  SMOKE_DIR="$(mktemp -d)"
  trap 'rm -rf "$SMOKE_DIR"' EXIT
  JSONL="$SMOKE_DIR/introspect.jsonl"
  METRICS="$SMOKE_DIR/metrics.json"

  # watchdog-ms=50: deadlock confirmation needs frozen progress across
  # two consecutive samples, and under a sanitizer's ~10x slowdown on a
  # small machine the workers routinely freeze for >20ms without being
  # deadlocked — 10ms periods false-positived deterministically on a
  # 1-CPU TSan box.
  TSAN_OPTIONS="halt_on_error=1" \
    "$BUILD_DIR/examples/serigraph_cli" \
      --algorithm=coloring --generator=powerlaw --vertices=2000 \
      --degree=8 --sync=partition-locking --workers=8 --latency-us=100 \
      --introspect-out="$JSONL" --watchdog-ms=50 \
      --metrics-json="$METRICS"

  python3 - "$JSONL" "$METRICS" <<'EOF'
import json, sys

jsonl_path, metrics_path = sys.argv[1], sys.argv[2]
snapshots = deadlocks = 0
with open(jsonl_path) as f:
    for i, line in enumerate(f, 1):
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as e:
            sys.exit(f"introspect smoke: line {i} is not valid JSON: {e}")
        kind = rec.get("type")
        if kind == "snapshot":
            snapshots += 1
            if not isinstance(rec.get("workers"), list) or not rec["workers"]:
                sys.exit(f"introspect smoke: snapshot {i} has no workers")
            if "wait_for" not in rec:
                sys.exit(f"introspect smoke: snapshot {i} has no wait_for")
        elif kind == "deadlock":
            deadlocks += 1
if snapshots < 1:
    sys.exit("introspect smoke: no snapshots in the JSONL stream")
if deadlocks:
    sys.exit(f"introspect smoke: {deadlocks} false-positive deadlock report(s)")

report = json.load(open(metrics_path))
intro = report.get("introspection")
if not intro:
    sys.exit("introspect smoke: run report has no introspection section")
if intro.get("snapshots", 0) < 1:
    sys.exit("introspect smoke: run report records zero snapshots")
if intro.get("deadlocks", 0) != 0:
    sys.exit("introspect smoke: run report records a deadlock")
print(f"introspect smoke: OK ({snapshots} snapshots, "
      f"{len(intro.get('contention_top', []))} contention rows)")
EOF

  echo "check.sh: introspection smoke passed"
fi
