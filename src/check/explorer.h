#ifndef SERIGRAPH_CHECK_EXPLORER_H_
#define SERIGRAPH_CHECK_EXPLORER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "check/scheduler.h"

// DFS over scheduling decisions (docs/MODEL_CHECKING.md). Each execution
// runs the engine once under a VirtualScheduler with a forced decision
// trail; the alternatives the scheduler recorded past the trail become
// new branches. Preemption bounding (CHESS-style) keeps the frontier
// tractable: blocking switches are free, preempting an enabled thread
// spends budget.
namespace serigraph {
namespace check {

struct ExploreOptions {
  int expected_threads = 0;
  /// Preemption budget per schedule; 0 explores only blocking switches.
  int preemption_bound = 1;
  /// Stop after this many schedules (0 = unbounded).
  int64_t max_schedules = 0;
  /// Stop once this much wall clock elapsed (0 = unbounded). Checked
  /// between schedules, so one slow execution can overshoot.
  int64_t max_seconds = 0;
  bool object_por = true;
  int64_t max_steps = 2000000;
};

struct ExploreStats {
  int64_t schedules = 0;
  /// Branches discovered but not taken (budget / caps), for honesty in
  /// the summary line.
  int64_t pruned_by_budget = 0;
  bool hit_schedule_cap = false;
  bool hit_time_cap = false;
  /// FNV-1a fold of every explored schedule's trace hash, order-
  /// sensitive; equal across runs iff the exploration was identical.
  uint64_t folded_hash = 14695981039346656037ull;
  int max_decisions = 0;
};

/// One engine execution under the given trail. Must run the engine to
/// completion, leaving the scheduler quiesced; returns false if the
/// checked properties (C1/C2, coloring, 1SR) failed — exploration stops
/// and the caller reports the trail.
using RunFn = std::function<bool(VirtualScheduler& sched)>;

/// Explores schedules depth-first; returns true iff every explored
/// schedule passed. On failure `failing_trail` holds the replayable
/// trail of the failing schedule. Property/deadlock/livelock failures
/// inside an execution exit the process directly (codes 3/4/5) with the
/// trail already printed by the scheduler.
bool Explore(const ExploreOptions& opts, const RunFn& run,
             ExploreStats* stats, std::string* failing_trail);

}  // namespace check
}  // namespace serigraph

#endif  // SERIGRAPH_CHECK_EXPLORER_H_
