// Section 7.3 Giraphx comparison: Giraphx implements its synchronization
// techniques inside user algorithms on an old Giraph without the
// performant AP model or message batching, and is 30-103x slower than the
// system-level techniques. We emulate a Giraphx-like configuration:
//   * per-superstep overhead (old system, in-algorithm bookkeeping,
//     sub-superstep barriers),
//   * no message batching (flush every message),
// and compare against the system-level techniques on the same workload
// (coloring on OR', 16 workers, like the paper).

#include <iostream>

#include "algos/coloring.h"
#include "harness/datasets.h"
#include "harness/runner.h"
#include "harness/table.h"

using namespace serigraph;

int main() {
  Graph graph = MakeUndirectedDataset(FindSpec("OR'"));
  PrintHeader(std::cout,
              "Section 7.3: Giraphx (in-algorithm) vs system-level "
              "techniques, coloring on OR', 16 workers");

  struct Case {
    const char* name;
    SyncMode sync;
    bool giraphx;  // emulate in-algorithm implementation on old Giraph
  };
  const Case cases[] = {
      {"Giraphx single-layer token (emulated)", SyncMode::kSingleLayerToken,
       true},
      {"Giraphx vertex-based locking (emulated)", SyncMode::kVertexLocking,
       true},
      {"system-level dual-layer token", SyncMode::kDualLayerToken, false},
      {"system-level vertex-based locking", SyncMode::kVertexLocking, false},
      {"system-level partition-based locking", SyncMode::kPartitionLocking,
       false},
  };

  double partition_time = 1.0;
  TablePrinter table({"configuration", "time", "supersteps", "flushes",
                      "vs partition-based"});
  std::vector<std::pair<std::string, RunStats>> results;
  for (const Case& c : cases) {
    RunConfig config;
    config.sync_mode = c.sync;
    config.num_workers = 16;
    config.network = BenchNetwork();
    if (c.giraphx) {
      // In-algorithm techniques piggyback on vertex messages and run on
      // an old Giraph without the AP optimizations or batching; each
      // logical superstep costs extra in-algorithm barrier rounds. The
      // emulation charges a fixed per-superstep overhead (larger for
      // vertex-based locking, whose fork exchanges need several
      // sub-superstep rounds each superstep) and disables batching.
      config.message_batch_bytes = 1;
      config.superstep_overhead_us =
          c.sync == SyncMode::kVertexLocking ? 50000 : 10000;
    }
    std::vector<int64_t> colors;
    RunStats stats = RunProgram(graph, GreedyColoring(), config, &colors);
    SG_CHECK(IsProperColoring(graph, colors));
    if (c.sync == SyncMode::kPartitionLocking && !c.giraphx) {
      partition_time = stats.computation_seconds;
    }
    results.emplace_back(c.name, stats);
  }
  for (const auto& [name, stats] : results) {
    table.AddRow({name, TablePrinter::Seconds(stats.computation_seconds),
                  std::to_string(stats.supersteps),
                  TablePrinter::Count(stats.Metric("pregel.flushes")),
                  TablePrinter::Ratio(stats.computation_seconds /
                                      partition_time)});
  }
  table.Print(std::cout);
  std::cout << "\npaper: Giraphx token 41x and Giraphx vertex-locking 103x "
               "slower than Giraph async\nwith partition-based locking on "
               "OR with 16 machines. The emulation reproduces the\n"
               "ordering (Giraphx configurations slowest), not the "
               "magnitude: it models only the\nextra barriers and lost "
               "batching, not all of old Giraph's inefficiency.\n";
  return 0;
}
