// Executable version of paper Section 3.5: the computation models
// themselves do not guarantee fresh reads even under *serial* execution.
// BSP hides messages until the next superstep, so a single-threaded,
// single-worker run still produces C1 violations; AP fixes local
// staleness (eager local replicas) but without a synchronization
// technique remote replicas are updated lazily.

#include <gtest/gtest.h>

#include "algos/coloring.h"
#include "graph/generators.h"
#include "pregel/engine.h"
#include "verify/history.h"

namespace serigraph {
namespace {

Graph Make(const EdgeList& el) {
  auto g = Graph::FromEdgeList(el);
  EXPECT_TRUE(g.ok()) << g.status();
  return std::move(g).value();
}

TEST(StalenessTest, BspHasStaleReadsEvenWhenSerial) {
  // One worker, one compute thread: the execution is fully serial, yet
  // BSP's next-superstep message visibility makes neighbors read stale
  // replicas (paper Section 3.5: "both m-boundary and m-internal
  // vertices suffer stale reads under a serial execution").
  Graph g = Make(PaperExampleGraph());
  EngineOptions opts;
  opts.model = ComputationModel::kBsp;
  opts.num_workers = 1;
  opts.compute_threads_per_worker = 1;
  opts.record_history = true;
  opts.max_supersteps = 6;
  Engine<RepairColoring> engine(&g, opts);
  auto result = engine.Run(RepairColoring());
  ASSERT_TRUE(result.ok());
  HistoryCheck check = CheckHistory(g, result->history->TakeRecords());
  EXPECT_FALSE(check.c1_fresh_reads);
  // Serial execution: intervals never overlap, so C2 holds — staleness
  // is purely a replica-freshness problem.
  EXPECT_TRUE(check.c2_no_neighbor_overlap);
}

TEST(StalenessTest, ApSerialOneWorkerIsActuallySerializable) {
  // With a single worker, AP updates all replicas eagerly (every message
  // is local), so a serial AP execution has fresh reads: this is why the
  // techniques only need to add coordination for *remote* replicas.
  Graph g = Make(PaperExampleGraph());
  EngineOptions opts;
  opts.model = ComputationModel::kAsync;
  opts.num_workers = 1;
  opts.compute_threads_per_worker = 1;
  opts.record_history = true;
  opts.max_supersteps = 100;
  Engine<RepairColoring> engine(&g, opts);
  auto result = engine.Run(RepairColoring());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->stats.converged);
  HistoryCheck check = CheckHistory(g, result->history->TakeRecords());
  EXPECT_TRUE(check.ok()) << (check.violation_samples.empty()
                                  ? "?"
                                  : check.violation_samples[0]);
}

TEST(StalenessTest, SerializableTechniqueFixesBspStyleStaleness) {
  // Same graph, AP + partition locking, multiple workers: fresh reads.
  Graph g = Make(PaperExampleGraph());
  EngineOptions opts;
  opts.sync_mode = SyncMode::kPartitionLocking;
  opts.num_workers = 2;
  opts.record_history = true;
  Engine<RepairColoring> engine(&g, opts);
  auto result = engine.Run(RepairColoring());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->stats.converged);
  HistoryCheck check = CheckHistory(g, result->history->TakeRecords());
  EXPECT_TRUE(check.ok());
  EXPECT_TRUE(
      IsProperColoring(g, RepairColoringColors(result->values)));
}

}  // namespace
}  // namespace serigraph
