#ifndef SERIGRAPH_COMMON_LOGGING_H_
#define SERIGRAPH_COMMON_LOGGING_H_

#include <cstdlib>
#include <sstream>
#include <string>

#include "common/status.h"

namespace serigraph {

/// Severity for log records. kFatal aborts the process after logging.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// Sets the minimum level that is actually emitted (default: kInfo).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// Stream-style log record; emits on destruction. Not for direct use —
/// use the SG_LOG / SG_CHECK macros below.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows streamed values when a log statement is compiled out.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_logging

#define SG_LOG(level)                                                     \
  ::serigraph::internal_logging::LogMessage(::serigraph::LogLevel::level, \
                                            __FILE__, __LINE__)           \
      .stream()

/// Fatal if `cond` is false; always evaluated, in all build modes.
#define SG_CHECK(cond)                                       \
  (cond) ? (void)0                                           \
         : (void)(SG_LOG(kFatal) << "Check failed: " #cond " ")

#define SG_CHECK_OP(a, b, op)                                              \
  ((a)op(b)) ? (void)0                                                     \
             : (void)(SG_LOG(kFatal) << "Check failed: " #a " " #op " " #b \
                                     << " (" << (a) << " vs " << (b) << ") ")

#define SG_CHECK_EQ(a, b) SG_CHECK_OP(a, b, ==)
#define SG_CHECK_NE(a, b) SG_CHECK_OP(a, b, !=)
#define SG_CHECK_LT(a, b) SG_CHECK_OP(a, b, <)
#define SG_CHECK_LE(a, b) SG_CHECK_OP(a, b, <=)
#define SG_CHECK_GT(a, b) SG_CHECK_OP(a, b, >)
#define SG_CHECK_GE(a, b) SG_CHECK_OP(a, b, >=)

/// Fatal if `status_expr` is not OK.
#define SG_CHECK_OK(status_expr)                                    \
  do {                                                              \
    ::serigraph::Status _st = (status_expr);                        \
    if (!_st.ok()) SG_LOG(kFatal) << "Status not OK: " << _st;      \
  } while (0)

#ifdef NDEBUG
#define SG_DCHECK(cond) \
  while (false) SG_CHECK(cond)
#else
#define SG_DCHECK(cond) SG_CHECK(cond)
#endif

}  // namespace serigraph

#endif  // SERIGRAPH_COMMON_LOGGING_H_
