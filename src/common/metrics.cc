#include "common/metrics.h"

#include <bit>
#include <memory>

namespace serigraph {

namespace {

int BucketFor(int64_t sample) {
  if (sample <= 0) return 0;
  int b = 64 - std::countl_zero(static_cast<uint64_t>(sample));
  return b < Histogram::kNumBuckets ? b : Histogram::kNumBuckets - 1;
}

}  // namespace

Histogram::Histogram() { Reset(); }

void Histogram::Record(int64_t sample) {
  // mo: stat cell; no ordering role
  buckets_[BucketFor(sample)].fetch_add(1, std::memory_order_relaxed);
  // mo: stat cell; no ordering role
  count_.fetch_add(1, std::memory_order_relaxed);
  // mo: stat cell; no ordering role
  sum_.fetch_add(sample, std::memory_order_relaxed);
  // mo: stat cell; no ordering role
  int64_t prev = max_.load(std::memory_order_relaxed);
  while (sample > prev &&
         !max_.compare_exchange_weak(prev, sample,
                                     // mo: stat cell; no ordering role
                                     std::memory_order_relaxed)) {
  }
}

double Histogram::Mean() const {
  int64_t c = count();
  return c == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(c);
}

int64_t Histogram::ApproxQuantile(double q) const {
  int64_t total = count();
  if (total == 0) return 0;
  // Clamp q into [0,1]; the negated comparison also routes NaN to 0.
  if (!(q >= 0)) q = 0;
  if (q > 1) q = 1;
  int64_t target = static_cast<int64_t>(q * static_cast<double>(total - 1));
  const int64_t observed_max = max();
  int64_t seen = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    // mo: stat cell; no ordering role
    seen += buckets_[b].load(std::memory_order_relaxed);
    if (seen > target) {
      // Upper bound of bucket b: 2^b - 1 (bucket 0 holds <=0 samples),
      // never reported beyond the largest sample actually seen — so
      // q=1 returns the exact max.
      const int64_t bound = b == 0 ? 0 : (int64_t{1} << b) - 1;
      return bound < observed_max ? bound : observed_max;
    }
  }
  return observed_max;
}

void Histogram::Reset() {
  // mo: stat cell; no ordering role
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  // mo: stat cell; no ordering role
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);  // mo: stat cell; no ordering role
  max_.store(0, std::memory_order_relaxed);  // mo: stat cell; no ordering role
}

Counter* MetricRegistry::GetCounter(const std::string& name) {
  sy::MutexLock lock(&mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

MaxGauge* MetricRegistry::GetGauge(const std::string& name) {
  sy::MutexLock lock(&mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<MaxGauge>();
  return slot.get();
}

Histogram* MetricRegistry::GetHistogram(const std::string& name) {
  sy::MutexLock lock(&mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

std::map<std::string, int64_t> MetricRegistry::Snapshot() const {
  sy::MutexLock lock(&mu_);
  std::map<std::string, int64_t> out;
  for (const auto& [name, counter] : counters_) out[name] = counter->value();
  for (const auto& [name, gauge] : gauges_) out[name] = gauge->max();
  for (const auto& [name, histogram] : histograms_) {
    out[name + ".p50"] = histogram->ApproxQuantile(0.5);
    out[name + ".p95"] = histogram->ApproxQuantile(0.95);
    out[name + ".max"] = histogram->max();
    out[name + ".count"] = histogram->count();
    out[name + ".sum"] = histogram->sum();
  }
  return out;
}

void MetricRegistry::ResetAll() {
  sy::MutexLock lock(&mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace serigraph
