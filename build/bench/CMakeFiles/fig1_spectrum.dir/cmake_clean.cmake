file(REMOVE_RECURSE
  "CMakeFiles/fig1_spectrum.dir/fig1_spectrum.cc.o"
  "CMakeFiles/fig1_spectrum.dir/fig1_spectrum.cc.o.d"
  "fig1_spectrum"
  "fig1_spectrum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_spectrum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
