# Empty dependencies file for wcc_social.
# This may be replaced when dependencies are built.
