#include "obs/trace.h"

#include <cstdio>
#include <utility>

namespace serigraph {

std::atomic<bool> Tracer::enabled_{false};

namespace {

/// Fixed process-wide epoch so timestamps from all threads share a zero.
std::chrono::steady_clock::time_point TraceEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

struct TlsSlot {
  void* buffer = nullptr;  // Tracer::ThreadBuffer*, type-erased for TLS
  uint64_t epoch = ~uint64_t{0};
};

thread_local TlsSlot tls_slot;

/// Appends `value` to `out` with JSON string escaping.
void AppendJsonEscaped(std::string& out, const char* value) {
  for (const char* p = value; *p != '\0'; ++p) {
    const char c = *p;
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

Tracer& Tracer::Get() {
  static Tracer* tracer = new Tracer();  // leaked: alive for exiting threads
  return *tracer;
}

int64_t Tracer::NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - TraceEpoch())
      .count();
}

Tracer::ThreadBuffer* Tracer::CurrentThreadBuffer() {
  const uint64_t epoch = epoch_.load(std::memory_order_acquire);
  if (tls_slot.buffer != nullptr && tls_slot.epoch == epoch) {
    return static_cast<ThreadBuffer*>(tls_slot.buffer);
  }
  auto buffer = std::make_unique<ThreadBuffer>();
  ThreadBuffer* raw = buffer.get();
  {
    sy::MutexLock lock(&registry_mu_);
    raw->tid = next_tid_++;
    buffers_.push_back(std::move(buffer));
  }
  tls_slot.buffer = raw;
  tls_slot.epoch = epoch;
  return raw;
}

void Tracer::RecordFlow(const char* name, char ph, uint64_t id) {
  ThreadBuffer* buffer = CurrentThreadBuffer();
  Chunk* chunk = nullptr;
  {
    sy::MutexLock lock(&buffer->mu);
    if (!buffer->chunks.empty()) {
      Chunk* last = buffer->chunks.back().get();
      // mo: own-thread cursor; export is best-effort
      if (last->count.load(std::memory_order_relaxed) < kChunkCapacity) {
        chunk = last;
      }
    }
    if (chunk == nullptr) {
      if (buffer->chunks.size() >= kMaxChunksPerThread) {
        dropped_.fetch_add(1, std::memory_order_relaxed);  // mo: stat counter
        return;
      }
      buffer->chunks.push_back(std::make_unique<Chunk>());
      chunk = buffer->chunks.back().get();
    }
  }
  // mo: own-thread cursor; export is best-effort
  const size_t slot = chunk->count.load(std::memory_order_relaxed);
  chunk->events[slot].name = name;
  chunk->events[slot].ts_us = NowMicros();
  chunk->events[slot].dur_us = 0;
  chunk->events[slot].ph = ph;
  chunk->events[slot].id = id;
  chunk->count.store(slot + 1, std::memory_order_release);
}

void Tracer::RecordCounter(const char* name, int64_t value) {
  ThreadBuffer* buffer = CurrentThreadBuffer();
  Chunk* chunk = nullptr;
  {
    sy::MutexLock lock(&buffer->mu);
    if (!buffer->chunks.empty()) {
      Chunk* last = buffer->chunks.back().get();
      // mo: own-thread cursor; export is best-effort
      if (last->count.load(std::memory_order_relaxed) < kChunkCapacity) {
        chunk = last;
      }
    }
    if (chunk == nullptr) {
      if (buffer->chunks.size() >= kMaxChunksPerThread) {
        dropped_.fetch_add(1, std::memory_order_relaxed);  // mo: stat counter
        return;
      }
      buffer->chunks.push_back(std::make_unique<Chunk>());
      chunk = buffer->chunks.back().get();
    }
  }
  // mo: own-thread cursor; export is best-effort
  const size_t slot = chunk->count.load(std::memory_order_relaxed);
  chunk->events[slot].name = name;
  chunk->events[slot].ts_us = NowMicros();
  chunk->events[slot].dur_us = value;
  chunk->events[slot].ph = 'C';
  chunk->events[slot].id = 0;
  chunk->count.store(slot + 1, std::memory_order_release);
}

uint64_t Tracer::NextFlowId() {
  static std::atomic<uint64_t> next{1};
  // mo: id allocator; uniqueness only
  return next.fetch_add(1, std::memory_order_relaxed);
}

void Tracer::RecordComplete(const char* name, int64_t ts_us, int64_t dur_us) {
  ThreadBuffer* buffer = CurrentThreadBuffer();
  Chunk* chunk = nullptr;
  {
    // The chunk-list mutex is uncontended in steady state: only the owning
    // thread grows the list, and the exporter takes it briefly to snapshot
    // chunk pointers. Event writes below happen outside the lock.
    sy::MutexLock lock(&buffer->mu);
    if (!buffer->chunks.empty()) {
      Chunk* last = buffer->chunks.back().get();
      // mo: own-thread cursor; export is best-effort
      if (last->count.load(std::memory_order_relaxed) < kChunkCapacity) {
        chunk = last;
      }
    }
    if (chunk == nullptr) {
      if (buffer->chunks.size() >= kMaxChunksPerThread) {
        dropped_.fetch_add(1, std::memory_order_relaxed);  // mo: stat counter
        return;
      }
      buffer->chunks.push_back(std::make_unique<Chunk>());
      chunk = buffer->chunks.back().get();
    }
  }
  // mo: own-thread cursor; export is best-effort
  const size_t slot = chunk->count.load(std::memory_order_relaxed);
  chunk->events[slot].name = name;
  chunk->events[slot].ts_us = ts_us;
  chunk->events[slot].dur_us = dur_us;
  chunk->events[slot].ph = 'X';
  chunk->events[slot].id = 0;
  // Publish: the exporter's acquire load of `count` makes the event fields
  // written above visible before it reads them.
  chunk->count.store(slot + 1, std::memory_order_release);
}

void Tracer::SetCurrentThreadName(const std::string& name) {
  ThreadBuffer* buffer = CurrentThreadBuffer();
  sy::MutexLock lock(&buffer->mu);
  buffer->name = name;
}

std::string Tracer::ToChromeTraceJson() const {
  std::string out;
  out.reserve(1 << 16);
  out += "{\"traceEvents\":[";
  bool first = true;
  sy::MutexLock registry_lock(&registry_mu_);
  for (const auto& buffer : buffers_) {
    std::vector<Chunk*> chunks;
    std::string thread_name;
    {
      sy::MutexLock lock(&buffer->mu);
      chunks.reserve(buffer->chunks.size());
      for (const auto& chunk : buffer->chunks) chunks.push_back(chunk.get());
      thread_name = buffer->name;
    }
    if (!thread_name.empty()) {
      if (!first) out += ",";
      first = false;
      out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":";
      out += std::to_string(buffer->tid);
      out += ",\"args\":{\"name\":\"";
      AppendJsonEscaped(out, thread_name.c_str());
      out += "\"}}";
    }
    for (Chunk* chunk : chunks) {
      const size_t n = chunk->count.load(std::memory_order_acquire);
      for (size_t i = 0; i < n; ++i) {
        const TraceEvent& event = chunk->events[i];
        if (!first) out += ",";
        first = false;
        out += "{\"name\":\"";
        AppendJsonEscaped(out, event.name);
        if (event.ph == 's' || event.ph == 'f') {
          // Flow arrow endpoint: "s" at the sender, "f" (binding to the
          // enclosing slice, "bp":"e") at the receiver.
          out += "\",\"ph\":\"";
          out += event.ph;
          out += "\",\"cat\":\"flow\",\"pid\":0,\"tid\":";
          out += std::to_string(buffer->tid);
          out += ",\"ts\":";
          out += std::to_string(event.ts_us);
          out += ",\"id\":";
          out += std::to_string(event.id);
          if (event.ph == 'f') out += ",\"bp\":\"e\"";
          out += "}";
        } else if (event.ph == 'C') {
          // Counter sample: the viewer plots args.value over time.
          out += "\",\"ph\":\"C\",\"pid\":0,\"tid\":";
          out += std::to_string(buffer->tid);
          out += ",\"ts\":";
          out += std::to_string(event.ts_us);
          out += ",\"args\":{\"value\":";
          out += std::to_string(event.dur_us);
          out += "}}";
        } else {
          out += "\",\"ph\":\"X\",\"pid\":0,\"tid\":";
          out += std::to_string(buffer->tid);
          out += ",\"ts\":";
          out += std::to_string(event.ts_us);
          out += ",\"dur\":";
          out += std::to_string(event.dur_us);
          out += "}";
        }
      }
    }
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

Status Tracer::WriteChromeTrace(const std::string& path) const {
  const std::string json = ToChromeTraceJson();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot open trace output file " + path);
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const int close_err = std::fclose(f);
  if (written != json.size() || close_err != 0) {
    return Status::IoError("short write to trace output file " + path);
  }
  return Status::OK();
}

int64_t Tracer::event_count() const {
  int64_t total = 0;
  sy::MutexLock registry_lock(&registry_mu_);
  for (const auto& buffer : buffers_) {
    sy::MutexLock lock(&buffer->mu);
    for (const auto& chunk : buffer->chunks) {
      total +=
          static_cast<int64_t>(chunk->count.load(std::memory_order_acquire));
    }
  }
  return total;
}

void Tracer::Reset() {
  sy::MutexLock lock(&registry_mu_);
  buffers_.clear();
  next_tid_ = 1;
  dropped_.store(0, std::memory_order_relaxed);  // mo: stat counter
  // Invalidate every thread's cached buffer pointer.
  epoch_.fetch_add(1, std::memory_order_acq_rel);
}

}  // namespace serigraph
