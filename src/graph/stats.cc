#include "graph/stats.h"

#include <cstdio>

namespace serigraph {

GraphStats ComputeGraphStats(const Graph& graph, bool compute_undirected) {
  GraphStats stats;
  stats.num_vertices = graph.num_vertices();
  stats.num_directed_edges = graph.num_edges();
  stats.max_degree = graph.MaxTotalDegree();
  stats.avg_out_degree =
      graph.num_vertices() == 0
          ? 0.0
          : static_cast<double>(graph.num_edges()) /
                static_cast<double>(graph.num_vertices());
  if (compute_undirected) {
    // Each undirected edge appears as two directed edges in the closure.
    stats.num_undirected_edges = graph.Undirected().num_edges() / 2;
  }
  return stats;
}

std::string HumanCount(int64_t value) {
  char buf[32];
  const double v = static_cast<double>(value);
  if (value >= 1000000000) {
    std::snprintf(buf, sizeof(buf), "%.2fB", v / 1e9);
  } else if (value >= 1000000) {
    std::snprintf(buf, sizeof(buf), "%.1fM", v / 1e6);
  } else if (value >= 1000) {
    std::snprintf(buf, sizeof(buf), "%.1fK", v / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  }
  return buf;
}

}  // namespace serigraph
