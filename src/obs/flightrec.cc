#include "obs/flightrec.h"

#include <errno.h>
#include <signal.h>
#include <string.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/utsname.h>
#include <unistd.h>

#include <algorithm>
#include <thread>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/mutex.h"
#include "obs/introspect.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "obs/waitfor.h"

// Build provenance; the obs library gets real values from CMake, other
// consumers (none today) fall back to the placeholders.
#ifndef SERIGRAPH_BUILD_COMMIT
#define SERIGRAPH_BUILD_COMMIT "unknown"
#endif
#ifndef SERIGRAPH_BUILD_TYPE
#define SERIGRAPH_BUILD_TYPE "unspecified"
#endif
#ifndef SERIGRAPH_BUILD_SANITIZER
#define SERIGRAPH_BUILD_SANITIZER "none"
#endif

namespace serigraph {

BuildInfo GetBuildInfo() {
  return BuildInfo{SERIGRAPH_BUILD_COMMIT, SERIGRAPH_BUILD_TYPE,
                   SERIGRAPH_BUILD_SANITIZER};
}

// ---------------------------------------------------------------------------
// FlightRecorder

std::atomic<bool> FlightRecorder::enabled_{true};

FlightRecorder& FlightRecorder::Get() {
  // Leaked on purpose: the fatal-signal path may dump during static
  // destruction, and a destructed recorder must never be reachable.
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

FlightRecorder::Ring* FlightRecorder::RingForThisThread() {
  static thread_local Ring* tls_ring = nullptr;
  if (tls_ring == nullptr) {
    auto ring = std::make_unique<Ring>();
    sy::MutexLock lock(&rings_mu_);
    ring->tid = static_cast<uint32_t>(rings_.size());
    tls_ring = ring.get();
    rings_.push_back(std::move(ring));
  }
  return tls_ring;
}

void FlightRecorder::Record(const char* name, char ph, int64_t ts_us,
                            int64_t value) {
  Ring* ring = RingForThisThread();
  const uint64_t idx =  // mo: best-effort ring; snapshots may tear
      ring->head.fetch_add(1, std::memory_order_relaxed) % kRingCapacity;
  Slot& slot = ring->slots[idx];
  // All relaxed: the slot is owned by this thread for writing; snapshot
  // readers tolerate torn records (every field individually valid).
  // mo: best-effort ring; snapshots may tear
  slot.ts_us.store(ts_us, std::memory_order_relaxed);
  // mo: best-effort ring; snapshots may tear
  slot.value.store(value, std::memory_order_relaxed);
  // mo: best-effort ring; snapshots may tear
  slot.ph.store(ph, std::memory_order_relaxed);
  // mo: best-effort ring; snapshots may tear
  slot.name.store(name, std::memory_order_relaxed);
}

void FlightRecorder::RecordSpan(const char* name, int64_t start_us,
                                int64_t dur_us) {
  if (!enabled()) return;
  Get().Record(name, 'X', start_us, dur_us);
}

void FlightRecorder::RecordCounter(const char* name, int64_t value) {
  if (!enabled()) return;
  Get().Record(name, 'C', Tracer::NowMicros(), value);
}

void FlightRecorder::RecordInstant(const char* name) {
  if (!enabled()) return;
  Get().Record(name, 'i', Tracer::NowMicros(), 0);
}

std::vector<FlightEvent> FlightRecorder::Snapshot() const {
  std::vector<FlightEvent> events;
  {
    sy::MutexLock lock(&rings_mu_);
    for (const auto& ring : rings_) {
      // mo: best-effort ring; snapshots may tear
      const uint64_t head = ring->head.load(std::memory_order_relaxed);
      const uint64_t n = std::min<uint64_t>(head, kRingCapacity);
      for (uint64_t i = 0; i < n; ++i) {
        const Slot& slot = ring->slots[i];
        FlightEvent e;
        // mo: best-effort ring; snapshots may tear
        e.name = slot.name.load(std::memory_order_relaxed);
        if (e.name == nullptr) continue;
        // mo: best-effort ring; snapshots may tear
        e.ts_us = slot.ts_us.load(std::memory_order_relaxed);
        // mo: best-effort ring; snapshots may tear
        e.value = slot.value.load(std::memory_order_relaxed);
        // mo: best-effort ring; snapshots may tear
        e.ph = slot.ph.load(std::memory_order_relaxed);
        e.tid = ring->tid;
        events.push_back(e);
      }
    }
  }
  std::sort(events.begin(), events.end(),
            [](const FlightEvent& a, const FlightEvent& b) {
              return a.ts_us < b.ts_us;
            });
  return events;
}

std::string FlightRecorder::TailChromeTraceJson() const {
  const std::vector<FlightEvent> events = Snapshot();
  JsonWriter w;
  w.BeginObject().Key("traceEvents").BeginArray();
  for (const FlightEvent& e : events) {
    w.BeginObject()
        .Key("name")
        .Value(e.name)
        .Key("pid")
        .Value(1)
        .Key("tid")
        .Value(static_cast<int64_t>(e.tid))
        .Key("ts")
        .Value(e.ts_us);
    switch (e.ph) {
      case 'X':
        w.Key("ph").Value("X").Key("dur").Value(e.value);
        break;
      case 'C':
        w.Key("ph").Value("C").Key("args").BeginObject().Key("value").Value(
            e.value);
        w.EndObject();
        break;
      default:
        w.Key("ph").Value("i").Key("s").Value("g");
        break;
    }
    w.EndObject();
  }
  w.EndArray().Key("displayTimeUnit").Value("ms").EndObject();
  return w.str();
}

int64_t FlightRecorder::event_count() const {
  sy::MutexLock lock(&rings_mu_);
  int64_t total = 0;
  for (const auto& ring : rings_) {
    // mo: best-effort ring; snapshots may tear
    total += static_cast<int64_t>(ring->head.load(std::memory_order_relaxed));
  }
  return total;
}

void FlightRecorder::ResetForTest() {
  sy::MutexLock lock(&rings_mu_);
  for (auto& ring : rings_) {
    // mo: best-effort ring; snapshots may tear
    ring->head.store(0, std::memory_order_relaxed);
    for (Slot& slot : ring->slots) {
      // mo: best-effort ring; snapshots may tear
      slot.name.store(nullptr, std::memory_order_relaxed);
    }
  }
}

// ---------------------------------------------------------------------------
// HealthState

const char* HealthLevelName(HealthLevel level) {
  switch (level) {
    case HealthLevel::kOk:
      return "ok";
    case HealthLevel::kDegraded:
      return "degraded";
    case HealthLevel::kUnhealthy:
      return "unhealthy";
  }
  return "unknown";
}

HealthState& HealthState::Get() {
  static HealthState* state = new HealthState();
  return *state;
}

void HealthState::SetReady(bool ready) {
  sy::MutexLock lock(&health_mu_);
  ready_ = ready;
}

bool HealthState::ready() const {
  sy::MutexLock lock(&health_mu_);
  return ready_;
}

void HealthState::Report(HealthLevel level, const std::string& component,
                         const std::string& reason) {
  sy::MutexLock lock(&health_mu_);
  components_[component] = {level, reason};
}

void HealthState::ClearComponent(const std::string& component) {
  sy::MutexLock lock(&health_mu_);
  components_.erase(component);
}

HealthLevel HealthState::level() const {
  sy::MutexLock lock(&health_mu_);
  HealthLevel worst = HealthLevel::kOk;
  for (const auto& [name, entry] : components_) {
    (void)name;
    if (static_cast<int>(entry.first) > static_cast<int>(worst)) {
      worst = entry.first;
    }
  }
  return worst;
}

std::string HealthState::ToJson() const {
  sy::MutexLock lock(&health_mu_);
  HealthLevel worst = HealthLevel::kOk;
  for (const auto& [name, entry] : components_) {
    (void)name;
    if (static_cast<int>(entry.first) > static_cast<int>(worst)) {
      worst = entry.first;
    }
  }
  JsonWriter w;
  w.BeginObject()
      .Key("status")
      .Value(HealthLevelName(worst))
      .Key("ready")
      .Value(ready_)
      .Key("components")
      .BeginObject();
  for (const auto& [name, entry] : components_) {
    w.Key(name)
        .BeginObject()
        .Key("level")
        .Value(HealthLevelName(entry.first))
        .Key("reason")
        .Value(entry.second)
        .EndObject();
  }
  w.EndObject().EndObject();
  return w.str();
}

void HealthState::ResetForTest() {
  sy::MutexLock lock(&health_mu_);
  ready_ = false;
  components_.clear();
}

// ---------------------------------------------------------------------------
// TelemetryHub

std::atomic<bool> TelemetryHub::serving_{false};

TelemetryHub& TelemetryHub::Get() {
  static TelemetryHub* hub = new TelemetryHub();
  return *hub;
}

void TelemetryHub::RegisterMetrics(MetricRegistry* registry) {
  sy::MutexLock lock(&hub_mu_);
  registry_ = registry;
}

void TelemetryHub::UnregisterMetrics(MetricRegistry* registry) {
  sy::MutexLock lock(&hub_mu_);
  if (registry_ != registry) return;
  frozen_ = registry_->Snapshot();
  registry_ = nullptr;
}

std::map<std::string, int64_t> TelemetryHub::MetricsSnapshot() const {
  sy::MutexLock lock(&hub_mu_);
  if (registry_ != nullptr) return registry_->Snapshot();
  return frozen_;
}

void TelemetryHub::SetFaultLogProvider(
    std::function<std::vector<std::string>()> provider) {
  sy::MutexLock lock(&hub_mu_);
  fault_provider_ = std::move(provider);
}

void TelemetryHub::ClearFaultLogProvider() {
  sy::MutexLock lock(&hub_mu_);
  fault_provider_ = nullptr;
}

std::vector<std::string> TelemetryHub::FaultLog() const {
  std::function<std::vector<std::string>()> provider;
  {
    sy::MutexLock lock(&hub_mu_);
    provider = fault_provider_;
  }
  if (!provider) return {};
  return provider();
}

void TelemetryHub::ResetForTest() {
  sy::MutexLock lock(&hub_mu_);
  registry_ = nullptr;
  frozen_.clear();
  fault_provider_ = nullptr;
  // mo: live telemetry; approximate by design
  run_.running.store(false, std::memory_order_relaxed);
  // mo: live telemetry; approximate by design
  run_.superstep.store(-1, std::memory_order_relaxed);
  // mo: live telemetry; approximate by design
  run_.workers.store(0, std::memory_order_relaxed);
  // mo: live telemetry; approximate by design
  run_.active_vertices.store(-1, std::memory_order_relaxed);
  // mo: live telemetry; approximate by design
  run_.recovery_attempts.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// IncidentManager

namespace {

// Automatic dumps at most every second and at most 32 per process: a
// crash/recovery loop must not fill the disk with identical bundles.
constexpr int64_t kMinAutoDumpSpacingUs = 1000 * 1000;
constexpr size_t kMaxIncidentsPerProcess = 32;

std::string SanitizeBundleComponent(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out.empty() ? std::string("incident") : out;
}

// mkdir -p: creates every missing component, tolerates existing ones.
Status MakeDirs(const std::string& path) {
  if (path.empty()) return Status::OK();
  std::string partial;
  size_t pos = 0;
  while (pos <= path.size()) {
    const size_t slash = path.find('/', pos);
    partial = slash == std::string::npos ? path : path.substr(0, slash);
    pos = slash == std::string::npos ? path.size() + 1 : slash + 1;
    if (partial.empty()) continue;
    if (::mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST) {
      return Status::IoError("mkdir " + partial + ": " +
                             std::string(strerror(errno)));
    }
  }
  return Status::OK();
}

std::string WaitForStateJson() {
  JsonWriter w;
  w.BeginObject();
  if (Introspector::enabled()) {
    Introspector& in = Introspector::Get();
    const WaitForGraph graph = in.BuildWaitForGraph();
    const std::vector<int> cycle = FindWorkerCycle(graph);
    w.Key("introspector").Value(true);
    w.Key("num_workers").Value(graph.num_workers);
    w.Key("edges").Raw(WaitForEdgesJson(graph));
    w.Key("cycle").BeginArray();
    for (int worker : cycle) w.Value(worker);
    w.EndArray();
    w.Key("summary").Value(WaitForGraphSummary(graph));
    w.Key("beacons").BeginArray();
    for (int i = 0; i < graph.num_workers; ++i) {
      const BeaconSnapshot b = in.ReadBeacon(i);
      w.BeginObject()
          .Key("worker")
          .Value(i)
          .Key("phase")
          .Value(WorkerPhaseName(b.phase))
          .Key("superstep")
          .Value(b.superstep)
          .Key("phase_since_us")
          .Value(b.phase_since_us)
          .Key("progress_epoch")
          .Value(static_cast<int64_t>(b.progress_epoch))
          .Key("acquiring")
          .Value(b.acquiring)
          .Key("token_holder")
          .Value(b.token_holder)
          .Key("inbox_depth")
          .Value(b.inbox_depth)
          .EndObject();
    }
    w.EndArray();
  } else {
    w.Key("introspector").Value(false);
  }
  w.EndObject();
  return w.str();
}

std::string EnvironmentJson() {
  const BuildInfo build = GetBuildInfo();
  JsonWriter w;
  w.BeginObject()
      .Key("pid")
      .Value(static_cast<int64_t>(::getpid()))
      .Key("uptime_us")
      .Value(Tracer::NowMicros())
      .Key("build")
      .BeginObject()
      .Key("commit")
      .Value(build.commit)
      .Key("build_type")
      .Value(build.build_type)
      .Key("sanitizer")
      .Value(build.sanitizer)
      .EndObject()
      .Key("hardware_threads")
      .Value(static_cast<int64_t>(std::thread::hardware_concurrency()));
  struct utsname uts;
  if (::uname(&uts) == 0) {
    w.Key("uname")
        .BeginObject()
        .Key("sysname")
        .Value(uts.sysname)
        .Key("release")
        .Value(uts.release)
        .Key("machine")
        .Value(uts.machine)
        .EndObject();
  }
  w.Key("health").Raw(HealthState::Get().ToJson());
  TelemetryHub::RunStatus& run = TelemetryHub::Get().run();
  w.Key("run")
      .BeginObject()
      .Key("running")  // mo: live telemetry; approximate by design
      .Value(run.running.load(std::memory_order_relaxed))
      .Key("superstep")  // mo: live telemetry; approximate by design
      .Value(run.superstep.load(std::memory_order_relaxed))
      .Key("workers")  // mo: live telemetry; approximate by design
      .Value(run.workers.load(std::memory_order_relaxed))
      .Key("recovery_attempts")  // mo: live telemetry; approximate by design
      .Value(run.recovery_attempts.load(std::memory_order_relaxed))
      .EndObject();
  w.EndObject();
  return w.str();
}

std::string FaultEventsJson() {
  const std::vector<std::string> events = TelemetryHub::Get().FaultLog();
  JsonWriter w;
  w.BeginObject().Key("events").BeginArray();
  for (const std::string& e : events) w.Value(e);
  w.EndArray().EndObject();
  return w.str();
}

}  // namespace

IncidentManager& IncidentManager::Get() {
  static IncidentManager* manager = new IncidentManager();
  return *manager;
}

void IncidentManager::SetIncidentDir(const std::string& dir) {
  sy::MutexLock lock(&incident_mu_);
  dir_ = dir;
}

std::string IncidentManager::incident_dir() const {
  sy::MutexLock lock(&incident_mu_);
  return dir_;
}

StatusOr<std::string> IncidentManager::Dump(const std::string& trigger,
                                            const std::string& reason,
                                            bool manual) {
  sy::MutexLock lock(&incident_mu_);
  if (dir_.empty()) return std::string();
  const int64_t now_us = Tracer::NowMicros();
  if (records_.size() >= kMaxIncidentsPerProcess) return std::string();
  if (!manual && last_dump_us_ >= 0 &&
      now_us - last_dump_us_ < kMinAutoDumpSpacingUs) {
    return std::string();
  }
  const int seq = next_seq_++;
  const std::string bundle = dir_ + "/incident-" + std::to_string(seq) + "-" +
                             SanitizeBundleComponent(trigger);
  Status status = MakeDirs(bundle);
  if (!status.ok()) return status;

  const char* files[] = {"trace.json", "waitfor.json", "metrics.prom",
                         "faults.json", "env.json"};
  status = WriteTextFile(bundle + "/trace.json",
                         FlightRecorder::Get().TailChromeTraceJson());
  if (status.ok()) {
    status = WriteTextFile(bundle + "/waitfor.json", WaitForStateJson());
  }
  if (status.ok()) {
    status = WriteTextFile(
        bundle + "/metrics.prom",
        MetricsToPrometheusText(TelemetryHub::Get().MetricsSnapshot()));
  }
  if (status.ok()) {
    status = WriteTextFile(bundle + "/faults.json", FaultEventsJson());
  }
  if (status.ok()) {
    status = WriteTextFile(bundle + "/env.json", EnvironmentJson());
  }

  JsonWriter manifest;
  manifest.BeginObject()
      .Key("seq")
      .Value(seq)
      .Key("trigger")
      .Value(trigger)
      .Key("reason")
      .Value(reason)
      .Key("manual")
      .Value(manual)
      .Key("ts_us")
      .Value(now_us)
      .Key("complete")
      .Value(status.ok())
      .Key("files")
      .BeginArray();
  for (const char* f : files) manifest.Value(f);
  manifest.EndArray().EndObject();
  const Status manifest_status =
      WriteTextFile(bundle + "/MANIFEST.json", manifest.str());
  if (status.ok()) status = manifest_status;
  if (!status.ok()) return status;

  last_dump_us_ = now_us;
  IncidentRecord record;
  record.dir = bundle;
  record.trigger = trigger;
  record.reason = reason;
  record.ts_us = now_us;
  records_.push_back(record);
  return bundle;
}

std::vector<IncidentRecord> IncidentManager::List() const {
  sy::MutexLock lock(&incident_mu_);
  return records_;
}

std::string IncidentManager::ListJson() const {
  const std::vector<IncidentRecord> records = List();
  JsonWriter w;
  w.BeginObject().Key("incidents").BeginArray();
  for (const IncidentRecord& r : records) {
    w.BeginObject()
        .Key("dir")
        .Value(r.dir)
        .Key("trigger")
        .Value(r.trigger)
        .Key("reason")
        .Value(r.reason)
        .Key("ts_us")
        .Value(r.ts_us)
        .EndObject();
  }
  w.EndArray().EndObject();
  return w.str();
}

void IncidentManager::ResetForTest() {
  sy::MutexLock lock(&incident_mu_);
  dir_.clear();
  next_seq_ = 0;
  last_dump_us_ = -1;
  records_.clear();
}

void TriggerIncidentDump(const std::string& trigger, const std::string& reason,
                         HealthLevel level) {
  if (level != HealthLevel::kOk) {
    HealthState::Get().Report(level, trigger, reason);
  }
  FlightRecorder::RecordInstant("incident.trigger");
  const StatusOr<std::string> bundle =
      IncidentManager::Get().Dump(trigger, reason);
  if (!bundle.ok()) {
    SG_LOG(kWarning) << "incident dump failed (" << trigger
                     << "): " << bundle.status();
  } else if (!bundle.value().empty()) {
    SG_LOG(kWarning) << "incident bundle written: " << bundle.value() << " ("
                     << trigger << ": " << reason << ")";
  }
}

// ---------------------------------------------------------------------------
// Fatal-signal handling

namespace {

std::atomic<bool> g_fatal_handlers_installed{false};
std::atomic<bool> g_fatal_dump_started{false};

const char* FatalSignalName(int sig) {
  switch (sig) {
    case SIGSEGV:
      return "sigsegv";
    case SIGABRT:
      return "sigabrt";
    case SIGBUS:
      return "sigbus";
    case SIGFPE:
      return "sigfpe";
    default:
      return "signal";
  }
}

void FatalSignalHandler(int sig) {
  // Restore the default disposition first: a second fault anywhere below
  // (including inside the dump) terminates immediately instead of
  // recursing into this handler.
  struct sigaction dfl;
  memset(&dfl, 0, sizeof(dfl));
  dfl.sa_handler = SIG_DFL;
  ::sigaction(sig, &dfl, nullptr);
  if (!g_fatal_dump_started.exchange(true)) {
    // Best effort, knowingly not async-signal-safe (allocation, locks):
    // the process is already dead, a truncated bundle beats none, and
    // the reentry guard plus SIG_DFL above bound the blast radius.
    TriggerIncidentDump(std::string("fatal-") + FatalSignalName(sig),
                        "fatal signal received", HealthLevel::kUnhealthy);
  }
  ::raise(sig);
}

}  // namespace

void InstallFatalSignalHandlers() {
  if (g_fatal_handlers_installed.exchange(true)) return;
  struct sigaction action;
  memset(&action, 0, sizeof(action));
  action.sa_handler = FatalSignalHandler;
  sigemptyset(&action.sa_mask);
  for (int sig : {SIGSEGV, SIGABRT, SIGBUS, SIGFPE}) {
    ::sigaction(sig, &action, nullptr);
  }
}

}  // namespace serigraph
