#include "obs/perfcounters.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/resource.h>
#include <sys/syscall.h>
#include <sys/time.h>
#include <time.h>
#include <unistd.h>
#define SERIGRAPH_HAVE_PERF_EVENT 1
#else
#define SERIGRAPH_HAVE_PERF_EVENT 0
#endif

#include <cstdlib>
#include <vector>

namespace serigraph {

const char* PerfFieldName(int f) {
  switch (f) {
    case kPerfCycles: return "cycles";
    case kPerfInstructions: return "instructions";
    case kPerfLlcLoads: return "llc_loads";
    case kPerfLlcMisses: return "llc_misses";
    case kPerfBranchMisses: return "branch_misses";
    case kPerfDtlbMisses: return "dtlb_misses";
    case kPerfHwCtxSwitches: return "ctx_switches";
    case kPerfTaskClockNs: return "task_clock_ns";
    case kPerfMinorFaults: return "minor_faults";
    case kPerfMajorFaults: return "major_faults";
    default: return "unknown";
  }
}

const char* PerfPhaseName(PerfPhase phase) {
  switch (phase) {
    case PerfPhase::kCompute: return "compute";
    case PerfPhase::kFlushWait: return "flush_wait";
    case PerfPhase::kBarrier: return "barrier";
    case PerfPhase::kForkWait: return "fork_wait";
  }
  return "unknown";
}

namespace {

int64_t ThreadCpuNs() {
#if defined(__linux__)
  struct timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<int64_t>(ts.tv_sec) * 1000000000 + ts.tv_nsec;
#else
  return 0;
#endif
}

struct RusageSample {
  int64_t minor_faults = 0;
  int64_t major_faults = 0;
  int64_t ctx_switches = 0;
};

RusageSample ReadThreadRusage() {
  RusageSample s;
#if defined(__linux__)
  struct rusage ru;
  if (getrusage(RUSAGE_THREAD, &ru) == 0) {
    s.minor_faults = ru.ru_minflt;
    s.major_faults = ru.ru_majflt;
    s.ctx_switches = ru.ru_nvcsw + ru.ru_nivcsw;
  }
#endif
  return s;
}

}  // namespace

// ---------------------------------------------------------------------------
// PerfCounterGroup
// ---------------------------------------------------------------------------

#if SERIGRAPH_HAVE_PERF_EVENT

namespace {

int PerfEventOpen(struct perf_event_attr* attr, int group_fd) {
  return static_cast<int>(
      syscall(__NR_perf_event_open, attr, /*pid=*/0, /*cpu=*/-1, group_fd,
              /*flags=*/0));
}

struct EventSpec {
  uint32_t type;
  uint64_t config;
  int field;
};

// Two groups so the kernel can co-schedule each on 4-counter hardware.
// Group 0: the IPC/branch trio; group 1: the cache/TLB trio. Each group
// is scaled independently by its own enabled/running ratio.
const EventSpec kGroup0[] = {
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES, kPerfCycles},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS, kPerfInstructions},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES, kPerfBranchMisses},
    {PERF_TYPE_SOFTWARE, PERF_COUNT_SW_CONTEXT_SWITCHES, kPerfHwCtxSwitches},
};
const EventSpec kGroup1[] = {
    {PERF_TYPE_HW_CACHE,
     PERF_COUNT_HW_CACHE_LL | (PERF_COUNT_HW_CACHE_OP_READ << 8) |
         (PERF_COUNT_HW_CACHE_RESULT_ACCESS << 16),
     kPerfLlcLoads},
    {PERF_TYPE_HW_CACHE,
     PERF_COUNT_HW_CACHE_LL | (PERF_COUNT_HW_CACHE_OP_READ << 8) |
         (PERF_COUNT_HW_CACHE_RESULT_MISS << 16),
     kPerfLlcMisses},
    {PERF_TYPE_HW_CACHE,
     PERF_COUNT_HW_CACHE_DTLB | (PERF_COUNT_HW_CACHE_OP_READ << 8) |
         (PERF_COUNT_HW_CACHE_RESULT_MISS << 16),
     kPerfDtlbMisses},
};

}  // namespace

struct PerfCounterGroup::Group {
  int leader_fd = -1;
  std::vector<int> fds;     // leader first
  std::vector<int> fields;  // PerfField per member, leader first
  std::vector<uint64_t> buf;

  ~Group() {
    for (int fd : fds) {
      if (fd >= 0) close(fd);
    }
  }

  // Opens leader + members; true when the whole group opened. `err`
  // receives the first errno on failure.
  bool Open(const EventSpec* specs, int n, int* err) {
    for (int i = 0; i < n; ++i) {
      struct perf_event_attr attr;
      memset(&attr, 0, sizeof(attr));
      attr.size = sizeof(attr);
      attr.type = specs[i].type;
      attr.config = specs[i].config;
      attr.disabled = (i == 0) ? 1 : 0;
      attr.exclude_kernel = 1;
      attr.exclude_hv = 1;
      attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_TOTAL_TIME_ENABLED |
                         PERF_FORMAT_TOTAL_TIME_RUNNING;
      int fd = PerfEventOpen(&attr, i == 0 ? -1 : leader_fd);
      if (fd < 0) {
        if (i == 0 || err == nullptr) {
          if (err != nullptr && *err == 0) *err = errno;
          return false;
        }
        // A member that failed to open (e.g. LLC events unsupported on
        // this micro-architecture) is skipped; the group stays useful.
        continue;
      }
      if (i == 0) leader_fd = fd;
      fds.push_back(fd);
      fields.push_back(specs[i].field);
    }
    if (leader_fd < 0) return false;
    // Layout: nr, time_enabled, time_running, value[nr].
    buf.resize(3 + fds.size());
    ioctl(leader_fd, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
    ioctl(leader_fd, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
    return true;
  }

  void ReadInto(PerfDelta* out) {
    ssize_t want = static_cast<ssize_t>(buf.size() * sizeof(uint64_t));
    ssize_t got = read(leader_fd, buf.data(), want);
    if (got < static_cast<ssize_t>(3 * sizeof(uint64_t))) return;
    uint64_t nr = buf[0];
    uint64_t enabled = buf[1];
    uint64_t running = buf[2];
    if (nr > fds.size()) nr = fds.size();
    // Multiplex scaling: the kernel rotated this group off the PMU for
    // part of the window; extrapolate counts to the full enabled time.
    double scale =
        (running > 0 && enabled > running)
            ? static_cast<double>(enabled) / static_cast<double>(running)
            : 1.0;
    for (uint64_t i = 0; i < nr; ++i) {
      out->v[fields[i]] +=
          static_cast<int64_t>(static_cast<double>(buf[3 + i]) * scale);
    }
    out->hw_valid = true;
  }
};

PerfCounterGroup::PerfCounterGroup(const PerfCounterConfig& config) {
  bool force_sw =
      config.force_software || std::getenv("SERIGRAPH_NO_PERF_HW") != nullptr;
  if (force_sw) {
    fallback_reason_ = "software fallback forced (config or SERIGRAPH_NO_PERF_HW)";
    return;
  }
  int err = 0;
  auto g0 = std::make_unique<Group>();
  if (g0->Open(kGroup0, sizeof(kGroup0) / sizeof(kGroup0[0]), &err)) {
    groups_[num_groups_++] = std::move(g0);
  }
  auto g1 = std::make_unique<Group>();
  if (g1->Open(kGroup1, sizeof(kGroup1) / sizeof(kGroup1[0]), &err)) {
    groups_[num_groups_++] = std::move(g1);
  }
  hw_available_ = num_groups_ > 0;
  if (!hw_available_) {
    char msg[160];
    snprintf(msg, sizeof(msg),
             "perf_event_open unavailable (%s); using getrusage/procfs "
             "software fallback",
             err != 0 ? strerror(err) : "unknown error");
    fallback_reason_ = msg;
  }
}

PerfCounterGroup::~PerfCounterGroup() = default;

PerfDelta PerfCounterGroup::ReadNow() {
  PerfDelta d;
  for (int i = 0; i < num_groups_; ++i) groups_[i]->ReadInto(&d);
  d.v[kPerfTaskClockNs] = ThreadCpuNs();
  RusageSample ru = ReadThreadRusage();
  d.v[kPerfMinorFaults] = ru.minor_faults;
  d.v[kPerfMajorFaults] = ru.major_faults;
  if (!d.hw_valid) d.v[kPerfHwCtxSwitches] = ru.ctx_switches;
  return d;
}

#else  // !SERIGRAPH_HAVE_PERF_EVENT

struct PerfCounterGroup::Group {};

PerfCounterGroup::PerfCounterGroup(const PerfCounterConfig&) {
  fallback_reason_ = "perf_event_open not supported on this platform";
}

PerfCounterGroup::~PerfCounterGroup() = default;

PerfDelta PerfCounterGroup::ReadNow() {
  PerfDelta d;
  d.v[kPerfTaskClockNs] = ThreadCpuNs();
  RusageSample ru = ReadThreadRusage();
  d.v[kPerfMinorFaults] = ru.minor_faults;
  d.v[kPerfMajorFaults] = ru.major_faults;
  d.v[kPerfHwCtxSwitches] = ru.ctx_switches;
  return d;
}

#endif  // SERIGRAPH_HAVE_PERF_EVENT

// ---------------------------------------------------------------------------
// PerfCounters (process-wide switch + thread-local groups)
// ---------------------------------------------------------------------------

std::atomic<bool> PerfCounters::enabled_{false};
std::atomic<uint64_t> PerfCounters::epoch_{0};

namespace {

sy::Mutex& PerfConfigMutex() {
  static sy::Mutex mu;
  return mu;
}

PerfCounterConfig& PerfConfigLocked() {
  static PerfCounterConfig config;
  return config;
}

bool g_probe_hw_available = false;
std::string& ProbeFallbackReason() {
  static std::string reason;
  return reason;
}

struct ThreadGroupSlot {
  std::unique_ptr<PerfCounterGroup> group;
  uint64_t epoch = 0;
};

ThreadGroupSlot& CurrentSlot() {
  static thread_local ThreadGroupSlot slot;
  return slot;
}

}  // namespace

bool PerfCounters::Enable(const PerfCounterConfig& config) {
  {
    sy::MutexLock lock(&PerfConfigMutex());
    PerfConfigLocked() = config;
    // Probe availability once on the enabling thread so callers can
    // report the fallback before any compute thread opens a group.
    PerfCounterGroup probe(config);
    g_probe_hw_available = probe.hw_available();
    ProbeFallbackReason() = probe.fallback_reason();
  }
  // mo: epoch tick; readers only compare
  epoch_.fetch_add(1, std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_release);
  return hw_available();
}

void PerfCounters::Disable() {
  enabled_.store(false, std::memory_order_release);
  // mo: epoch tick; readers only compare
  epoch_.fetch_add(1, std::memory_order_relaxed);
}

bool PerfCounters::hw_available() {
  sy::MutexLock lock(&PerfConfigMutex());
  return g_probe_hw_available;
}

std::string PerfCounters::fallback_reason() {
  sy::MutexLock lock(&PerfConfigMutex());
  return ProbeFallbackReason();
}

PerfCounterGroup* PerfCounters::CurrentThreadGroup() {
  if (!enabled()) return nullptr;
  ThreadGroupSlot& slot = CurrentSlot();
  // mo: epoch tick; readers only compare
  uint64_t epoch = epoch_.load(std::memory_order_relaxed);
  if (slot.group == nullptr || slot.epoch != epoch) {
    PerfCounterConfig config;
    {
      sy::MutexLock lock(&PerfConfigMutex());
      config = PerfConfigLocked();
    }
    slot.group = std::make_unique<PerfCounterGroup>(config);
    slot.epoch = epoch;
  }
  return slot.group.get();
}

}  // namespace serigraph
