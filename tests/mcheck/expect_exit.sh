#!/usr/bin/env bash
# expect_exit.sh <code> <cmd...> — succeeds iff the command exits <code>.
# The mcheck negative controls use this to assert that serichk finds a
# planted bug with the documented exit code (3 = property violation,
# 4 = deadlock), rather than merely "fails somehow".
want="$1"
shift
"$@"
got=$?
if [ "$got" -eq "$want" ]; then
  exit 0
fi
echo "expect_exit: wanted exit $want, got $got from: $*" >&2
exit 1
