// Section 3.1 replication analysis: the paper's formalism covers both
// replication styles — edge-cut (Pregel/Giraph: implicit replicas via
// message stores, one per boundary vertex per neighbor worker) and
// vertex-cut (GraphLab: explicit read-only replicas per edge worker).
// This bench quantifies both on the Table 1 stand-ins: how many replicas
// a write-all approach (condition C1) has to keep fresh under each
// design.

#include <iostream>

#include "gas/vertex_cut.h"
#include "graph/partitioning.h"
#include "graph/stats.h"
#include "harness/datasets.h"
#include "harness/table.h"

using namespace serigraph;

int main() {
  PrintHeader(std::cout,
              "Section 3.1: replication under edge-cut vs vertex-cut "
              "(16 workers)");
  TablePrinter table({"dataset", "m-boundary frac (edge-cut)",
                      "repl. factor (random v-cut)",
                      "repl. factor (greedy v-cut)", "edge imbalance"});
  for (const DatasetSpec& spec : StandInSpecs()) {
    Graph graph = MakeDataset(spec);
    Partitioning partitioning =
        Partitioning::Hash(graph.num_vertices(), 16, 16);
    BoundaryInfo boundaries(graph, partitioning);
    const int64_t* counts = boundaries.counts();
    const double boundary_fraction =
        static_cast<double>(
            counts[static_cast<int>(VertexLocality::kRemoteBoundary)] +
            counts[static_cast<int>(VertexLocality::kMixedBoundary)]) /
        static_cast<double>(graph.num_vertices());

    VertexCut random_cut = VertexCut::Random(graph, 16, 1);
    VertexCut greedy_cut = VertexCut::Greedy(graph, 16);

    char b[16], r[16], g[16], im[16];
    std::snprintf(b, sizeof(b), "%.1f%%", 100.0 * boundary_fraction);
    std::snprintf(r, sizeof(r), "%.2f", random_cut.ReplicationFactor());
    std::snprintf(g, sizeof(g), "%.2f", greedy_cut.ReplicationFactor());
    std::snprintf(im, sizeof(im), "%.2f", greedy_cut.EdgeImbalance());
    table.AddRow({spec.name, b, r, g, im});
  }
  table.Print(std::cout);
  std::cout << "\nEvery replica is state that condition C1's write-all "
               "approach must keep fresh\nbefore a neighbor executes; "
               "hash partitioning makes nearly every vertex\nm-boundary "
               "at this scale, which is why partition-level batching of "
               "replica\nupdates (Section 5.4) pays off.\n";
  return 0;
}
