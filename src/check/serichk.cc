#include "check/serichk.h"

#include <cinttypes>
#include <cstdio>

#include "algos/coloring.h"
#include "check/explorer.h"
#include "check/scheduler.h"
#include "common/logging.h"
#include "common/planted.h"
#include "graph/generators.h"
#include "obs/flightrec.h"
#include "pregel/engine.h"
#include "verify/history.h"

namespace serigraph {
namespace check {

namespace {

bool BuildEdgeList(const std::string& topology, int vertices,
                   EdgeList* out) {
  if (topology == "ring") {
    *out = Ring(vertices);
  } else if (topology == "clique") {
    *out = Complete(vertices);
  } else if (topology == "star") {
    *out = Star(vertices);
  } else {
    return false;
  }
  return true;
}

/// One engine execution under the installed scheduler; returns false on
/// any property violation, with the reason on stderr (the caller prints
/// the trail).
bool RunOnce(const SerichkConfig& cfg) {
  EdgeList el;
  BuildEdgeList(cfg.topology, cfg.vertices, &el);
  auto graph = Graph::FromEdgeList(el);
  if (!graph.ok()) {
    std::fprintf(stderr, "serichk: graph: %s\n",
                 graph.status().ToString().c_str());
    return false;
  }
  Graph g = graph->Undirected();

  EngineOptions opts;
  opts.model = cfg.technique == SyncMode::kConstrainedBspLocking
                   ? ComputationModel::kBsp
                   : ComputationModel::kAsync;
  opts.sync_mode = cfg.technique;
  opts.num_workers = cfg.workers;
  opts.partitions_per_worker = cfg.partitions_per_worker;
  opts.compute_threads_per_worker = 1;
  opts.record_history = true;
  opts.max_supersteps = 20000;
  Engine<GreedyColoring> engine(&g, opts);
  auto result = engine.Run(GreedyColoring());
  if (!result.ok()) {
    std::fprintf(stderr, "serichk: engine: %s\n",
                 result.status().ToString().c_str());
    return false;
  }
  if (!result->stats.converged) {
    std::fprintf(stderr, "serichk: run did not converge\n");
    return false;
  }
  if (!IsProperColoring(g, result->values)) {
    std::fprintf(stderr, "serichk: IMPROPER COLORING\n");
    return false;
  }
  HistoryCheck check = CheckHistory(g, result->history->TakeRecords());
  if (check.num_transactions <= 0) {
    std::fprintf(stderr, "serichk: empty history\n");
    return false;
  }
  if (!check.c1_fresh_reads) {
    std::fprintf(stderr, "serichk: C1 VIOLATION (%lld stale reads): %s\n",
                 static_cast<long long>(check.c1_violations),
                 check.violation_samples.empty()
                     ? "?"
                     : check.violation_samples[0].c_str());
    return false;
  }
  if (!check.c2_no_neighbor_overlap) {
    std::fprintf(stderr, "serichk: C2 VIOLATION (%lld overlaps)\n",
                 static_cast<long long>(check.c2_violations));
    return false;
  }
  if (!check.serializable) {
    std::fprintf(stderr, "serichk: NOT 1SR (serialization graph cyclic)\n");
    return false;
  }
  return true;
}

bool ParseTrail(const std::string& replay, std::vector<int>* out) {
  int value = 0;
  bool have = false;
  for (char c : replay) {
    if (c >= '0' && c <= '9') {
      value = value * 10 + (c - '0');
      have = true;
    } else if (c == ',') {
      if (!have) return false;
      out->push_back(value);
      value = 0;
      have = false;
    } else {
      return false;
    }
  }
  if (have) out->push_back(value);
  return !out->empty();
}

}  // namespace

int RunSerichk(const SerichkConfig& cfg) {
  EdgeList probe;
  if (!BuildEdgeList(cfg.topology, cfg.vertices, &probe)) {
    std::fprintf(stderr, "serichk: unknown topology '%s'\n",
                 cfg.topology.c_str());
    return 2;
  }
  if (cfg.workers < 1 || cfg.vertices < 2) {
    std::fprintf(stderr, "serichk: need >=1 workers, >=2 vertices\n");
    return 2;
  }

  // Schedule-point noise control: anything that takes an sy:: lock on the
  // worker threads becomes part of the explored state space. Demote
  // per-run INFO logging and the (default-on) flight recorder; metrics
  // counters are lock-free and stay.
  SetLogLevel(LogLevel::kError);
  FlightRecorder::Disable();

  Planted::Clear();
  if (!cfg.plant.empty()) {
    Planted::Enable(cfg.plant.c_str());
    std::printf("serichk: planted bug '%s' enabled\n", cfg.plant.c_str());
  }

  const int expected_threads = 2 * cfg.workers;  // compute + comm per worker

  if (!cfg.replay.empty()) {
    VirtualScheduler::Options sopts;
    sopts.expected_threads = expected_threads;
    if (!ParseTrail(cfg.replay, &sopts.trail)) {
      std::fprintf(stderr, "serichk: bad --replay trail\n");
      return 2;
    }
    sopts.object_por = cfg.object_por;
    sopts.max_steps = cfg.max_steps;
    VirtualScheduler sched(sopts);
    sy::InstallScheduler(&sched);
    const bool ok = RunOnce(cfg);
    sy::InstallScheduler(nullptr);
    std::printf(
        "serichk: replay technique=%s topology=%s n=%d w=%d decisions=%zu "
        "trace_hash=%016" PRIx64 " => %s\n",
        SyncModeName(cfg.technique), cfg.topology.c_str(), cfg.vertices,
        cfg.workers, sched.decisions().size(), sched.trace_hash(),
        ok ? "PASS" : "FAIL");
    if (!ok) {
      std::fprintf(stderr, "serichk: failing trail: %s\n",
                   VirtualScheduler::FormatTrail(sched.decisions()).c_str());
      return 3;
    }
    return 0;
  }

  ExploreOptions eopts;
  eopts.expected_threads = expected_threads;
  eopts.preemption_bound = cfg.preemption_bound;
  eopts.max_schedules = cfg.max_schedules;
  eopts.max_seconds = cfg.max_seconds;
  eopts.object_por = cfg.object_por;
  eopts.max_steps = cfg.max_steps;

  ExploreStats stats;
  std::string failing_trail;
  const bool ok = Explore(
      eopts, [&cfg](VirtualScheduler&) { return RunOnce(cfg); }, &stats,
      &failing_trail);
  std::printf(
      "serichk: technique=%s topology=%s n=%d w=%d preempt<=%d "
      "schedules=%lld pruned=%lld max_decisions=%d folded_hash=%016" PRIx64
      "%s%s => %s\n",
      SyncModeName(cfg.technique), cfg.topology.c_str(), cfg.vertices,
      cfg.workers, cfg.preemption_bound,
      static_cast<long long>(stats.schedules),
      static_cast<long long>(stats.pruned_by_budget), stats.max_decisions,
      stats.folded_hash, stats.hit_schedule_cap ? " (schedule cap)" : "",
      stats.hit_time_cap ? " (time cap)" : "", ok ? "PASS" : "FAIL");
  if (!ok) {
    std::fprintf(stderr, "serichk: failing trail: --replay %s\n",
                 failing_trail.c_str());
    return 3;
  }
  return 0;
}

}  // namespace check
}  // namespace serigraph
