#include "gas/gas_engine.h"

namespace serigraph {

const char* GasModeName(GasMode mode) {
  switch (mode) {
    case GasMode::kSync:
      return "sync-GAS";
    case GasMode::kAsync:
      return "async-GAS";
    case GasMode::kAsyncSerializable:
      return "async-GAS+serializable";
  }
  return "?";
}

}  // namespace serigraph
