// Tests for the word-packed frontier bitmap (PR 9): set/clear/popcount,
// set-bit iteration, union views, and concurrent word updates (the
// TSan-relevant case: many threads hammering bits that share words).

#include "common/bitmap.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

namespace serigraph {
namespace {

TEST(BitmapTest, StartsEmpty) {
  Bitmap b(130);
  EXPECT_EQ(b.size(), 130u);
  EXPECT_EQ(b.WordCount(), 3u);
  EXPECT_EQ(b.Popcount(), 0u);
  EXPECT_FALSE(b.AnySet());
  for (size_t i = 0; i < 130; ++i) EXPECT_FALSE(b.Test(i));
}

TEST(BitmapTest, SetClearTest) {
  Bitmap b(200);
  EXPECT_TRUE(b.Set(0));
  EXPECT_TRUE(b.Set(63));
  EXPECT_TRUE(b.Set(64));
  EXPECT_TRUE(b.Set(199));
  EXPECT_FALSE(b.Set(63)) << "second set of the same bit reports no change";
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(63));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(199));
  EXPECT_FALSE(b.Test(1));
  EXPECT_EQ(b.Popcount(), 4u);
  EXPECT_TRUE(b.AnySet());

  EXPECT_TRUE(b.Clear(63));
  EXPECT_FALSE(b.Clear(63)) << "second clear reports no change";
  EXPECT_FALSE(b.Test(63));
  EXPECT_EQ(b.Popcount(), 3u);
}

TEST(BitmapTest, SerialVariantsMatchAtomic) {
  Bitmap a(150), b(150);
  for (size_t i = 0; i < 150; i += 7) {
    a.Set(i);
    b.SetSerial(i);
  }
  a.Clear(14);
  b.ClearSerial(14);
  ASSERT_EQ(a.WordCount(), b.WordCount());
  for (size_t w = 0; w < a.WordCount(); ++w) EXPECT_EQ(a.word(w), b.word(w));
}

TEST(BitmapTest, SetAllRespectsTailBits) {
  Bitmap b(70);  // 6 trailing bits in the second word must stay clear
  b.SetAll();
  EXPECT_EQ(b.Popcount(), 70u);
  for (size_t i = 0; i < 70; ++i) EXPECT_TRUE(b.Test(i));
  b.ClearAll();
  EXPECT_EQ(b.Popcount(), 0u);
  EXPECT_FALSE(b.AnySet());
}

TEST(BitmapTest, SetAllExactWordBoundary) {
  Bitmap b(128);
  b.SetAll();
  EXPECT_EQ(b.Popcount(), 128u);
  EXPECT_EQ(b.word(1), ~uint64_t{0});
}

TEST(BitmapTest, ResetClearsAndResizes) {
  Bitmap b(64);
  b.SetAll();
  b.Reset(300);
  EXPECT_EQ(b.size(), 300u);
  EXPECT_EQ(b.Popcount(), 0u);
}

TEST(BitmapTest, ForEachSetBitAscendingAndComplete) {
  Bitmap b(513);
  std::vector<size_t> want = {0, 1, 62, 63, 64, 127, 128, 300, 511, 512};
  for (size_t i : want) b.Set(i);
  std::vector<size_t> got;
  b.ForEachSetBit([&](size_t i) { got.push_back(i); });
  EXPECT_EQ(got, want);
}

TEST(BitmapTest, ForEachSetBitSkipsEmpty) {
  Bitmap b(1 << 16);
  b.Set(40000);
  size_t calls = 0, where = 0;
  b.ForEachSetBit([&](size_t i) {
    ++calls;
    where = i;
  });
  EXPECT_EQ(calls, 1u);
  EXPECT_EQ(where, 40000u);
}

TEST(BitmapTest, UnionViews) {
  Bitmap a(130), b(130);
  a.Set(3);
  a.Set(64);
  b.Set(64);
  b.Set(129);
  EXPECT_EQ(a.PopcountUnion(b), 3u);
  std::vector<size_t> got;
  a.ForEachSetBitUnion(b, [&](size_t i) { got.push_back(i); });
  EXPECT_EQ(got, (std::vector<size_t>{3, 64, 129}));
}

// Many threads set interleaved bits that share words: under TSan this
// validates the relaxed fetch_or protocol, and the final popcount
// validates that no RMW was lost.
TEST(BitmapTest, ConcurrentSetSharedWords) {
  constexpr size_t kBits = 64 * 64;  // 64 words
  constexpr int kThreads = 8;
  Bitmap b(kBits);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&b, t] {
      // Thread t owns bits with i % kThreads == t: every word is written
      // by all threads.
      for (size_t i = static_cast<size_t>(t); i < kBits; i += kThreads) {
        b.Set(i);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(b.Popcount(), kBits);
  for (size_t i = 0; i < kBits; ++i) ASSERT_TRUE(b.Test(i));
}

TEST(BitmapTest, ConcurrentSetClearDisjointBits) {
  constexpr size_t kBits = 64 * 32;
  Bitmap b(kBits);
  b.SetAll();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&b, t] {
      // Clear even bits in this thread's quarter, then re-set half of them:
      // clears and sets race on shared words but never on the same bit.
      const size_t begin = kBits / 4 * static_cast<size_t>(t);
      const size_t end = begin + kBits / 4;
      for (size_t i = begin; i < end; i += 2) b.Clear(i);
      for (size_t i = begin; i < end; i += 4) b.Set(i);
    });
  }
  for (auto& th : threads) th.join();
  // Per quarter: odd bits stayed set (kBits/8), every 4th bit re-set
  // (kBits/16).
  EXPECT_EQ(b.Popcount(), kBits / 2 + kBits / 4);
}

TEST(FrontierTest, EligibleCountAndDensity) {
  Frontier f;
  f.Reset(1000);
  for (size_t i = 0; i < 100; ++i) f.active.SetSerial(i);
  for (size_t i = 50; i < 200; ++i) f.pending.SetSerial(i);
  EXPECT_EQ(f.EligibleCount(), 200u);  // union of [0,100) and [50,200)
  EXPECT_EQ(Frontier::DensityMilli(f.EligibleCount(), 1000), 200);
  EXPECT_EQ(Frontier::DensityMilli(0, 1000), 0);
  EXPECT_EQ(Frontier::DensityMilli(1000, 1000), 1000);
  EXPECT_EQ(Frontier::DensityMilli(5, 0), 0) << "empty graph guards div0";
}

}  // namespace
}  // namespace serigraph
