file(REMOVE_RECURSE
  "CMakeFiles/serigraph_common.dir/logging.cc.o"
  "CMakeFiles/serigraph_common.dir/logging.cc.o.d"
  "CMakeFiles/serigraph_common.dir/metrics.cc.o"
  "CMakeFiles/serigraph_common.dir/metrics.cc.o.d"
  "CMakeFiles/serigraph_common.dir/status.cc.o"
  "CMakeFiles/serigraph_common.dir/status.cc.o.d"
  "CMakeFiles/serigraph_common.dir/threading.cc.o"
  "CMakeFiles/serigraph_common.dir/threading.cc.o.d"
  "libserigraph_common.a"
  "libserigraph_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serigraph_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
