#ifndef SERIGRAPH_GAS_VERTEX_CUT_H_
#define SERIGRAPH_GAS_VERTEX_CUT_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace serigraph {

/// Vertex-cut partitioning as used by GraphLab/PowerGraph (paper Section
/// 2.3 / 3.1): *edges* are assigned to workers; a vertex is replicated on
/// every worker that owns one of its edges, with one replica designated
/// the primary (master) copy. The paper's formal framework treats
/// vertex-cut and edge-cut replication uniformly ("this distinction is
/// unimportant for our formalism as we care only about whether
/// replication occurs", Section 3.1) — this module makes the replication
/// structure concrete and measurable.
class VertexCut {
 public:
  /// Random vertex-cut: each edge goes to hash(edge) % workers.
  static VertexCut Random(const Graph& graph, int num_workers,
                          uint64_t seed = 0);

  /// PowerGraph-style greedy vertex-cut: place each edge on a worker that
  /// already holds replicas of both endpoints if possible, else of one
  /// (preferring the less loaded), else the least-loaded worker.
  static VertexCut Greedy(const Graph& graph, int num_workers);

  int num_workers() const { return num_workers_; }
  int64_t num_edges() const {
    return static_cast<int64_t>(edge_worker_.size());
  }

  /// Worker owning the i-th edge (in the graph's CSR edge order).
  WorkerId EdgeWorker(int64_t edge_index) const {
    return edge_worker_[edge_index];
  }

  /// Workers holding a replica of `v` (sorted). Empty for isolated
  /// vertices (they live only on their master).
  const std::vector<WorkerId>& ReplicasOf(VertexId v) const {
    return replicas_[v];
  }

  /// Primary copy of `v`: the worker holding most of v's edges (ties to
  /// the smaller worker id); its master worker for isolated vertices is
  /// hash-assigned.
  WorkerId MasterOf(VertexId v) const { return master_[v]; }

  /// Average number of replicas per vertex — THE vertex-cut quality
  /// metric (PowerGraph's replication factor). 1.0 = no replication.
  double ReplicationFactor() const;

  /// Max edges on any worker divided by the mean (balance; 1.0 = ideal).
  double EdgeImbalance() const;

 private:
  VertexCut() = default;
  void BuildReplicas(const Graph& graph);

  int num_workers_ = 0;
  std::vector<WorkerId> edge_worker_;
  std::vector<std::vector<WorkerId>> replicas_;
  std::vector<WorkerId> master_;
};

}  // namespace serigraph

#endif  // SERIGRAPH_GAS_VERTEX_CUT_H_
