file(REMOVE_RECURSE
  "CMakeFiles/replication_analysis.dir/replication_analysis.cc.o"
  "CMakeFiles/replication_analysis.dir/replication_analysis.cc.o.d"
  "replication_analysis"
  "replication_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replication_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
