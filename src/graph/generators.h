#ifndef SERIGRAPH_GRAPH_GENERATORS_H_
#define SERIGRAPH_GRAPH_GENERATORS_H_

#include <cstdint>

#include "graph/types.h"

namespace serigraph {

/// Deterministic synthetic graph generators. Every generator is a pure
/// function of its parameters and `seed`, so experiments are exactly
/// reproducible. Generators return directed edge lists; callers that need
/// undirected graphs (e.g. coloring) use Graph::Undirected().

/// G(n, m): `num_edges` directed edges sampled uniformly (no self loops;
/// duplicates collapse at Graph construction, so the realized count can be
/// slightly below num_edges on dense settings).
EdgeList ErdosRenyi(VertexId num_vertices, int64_t num_edges, uint64_t seed);

/// Chung–Lu power-law graph: vertex v gets expected degree proportional to
/// (v+1)^(-1/(gamma-1)) scaled so the mean degree is `avg_degree`. This is
/// the stand-in family for the paper's social/web graphs (Table 1), all of
/// which follow power-law degree distributions with very large max degree.
EdgeList PowerLawChungLu(VertexId num_vertices, double avg_degree,
                         double gamma, uint64_t seed);

/// R-MAT recursive-matrix graph (Chakrabarti et al.): 2^scale vertices,
/// edge_factor * 2^scale edges, quadrant probabilities (a, b, c, implicit
/// d = 1-a-b-c). Defaults mirror the Graph500 parameters.
EdgeList RMat(int scale, int edge_factor, uint64_t seed, double a = 0.57,
              double b = 0.19, double c = 0.19);

/// Cycle 0 -> 1 -> ... -> n-1 -> 0.
EdgeList Ring(VertexId num_vertices);

/// Undirected 2-D grid (edges in both directions), rows x cols vertices.
EdgeList Grid(VertexId rows, VertexId cols);

/// Complete directed graph on n vertices (all ordered pairs).
EdgeList Complete(VertexId num_vertices);

/// Star: center 0 connected (both directions) to all other vertices.
EdgeList Star(VertexId num_vertices);

/// Simple path 0 -> 1 -> ... -> n-1.
EdgeList Path(VertexId num_vertices);

/// The 4-vertex, 2-worker example graph from the paper's Figures 2-5:
/// undirected edges {v0-v1, v0-v2, v1-v3, v2-v3} (a 4-cycle).
EdgeList PaperExampleGraph();

}  // namespace serigraph

#endif  // SERIGRAPH_GRAPH_GENERATORS_H_
