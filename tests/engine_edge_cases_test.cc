// Engine robustness on degenerate inputs: empty graphs, isolated
// vertices, more workers than vertices, graphs with a single vertex, and
// checkpointing under asynchronous serializable execution.

#include <gtest/gtest.h>

#include <cstdio>

#include "algos/coloring.h"
#include "algos/pagerank.h"
#include "algos/sssp.h"
#include "graph/generators.h"
#include "pregel/engine.h"

namespace serigraph {
namespace {

Graph Make(const EdgeList& el) {
  auto g = Graph::FromEdgeList(el);
  EXPECT_TRUE(g.ok()) << g.status();
  return std::move(g).value();
}

TEST(EngineEdgeCasesTest, EmptyGraphTerminatesImmediately) {
  Graph g = Make({0, {}});
  for (SyncMode sync : {SyncMode::kNone, SyncMode::kPartitionLocking}) {
    EngineOptions opts;
    opts.sync_mode = sync;
    opts.num_workers = 3;
    Engine<Sssp> engine(&g, opts);
    auto result = engine.Run(Sssp(0));
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_TRUE(result->values.empty());
  }
}

TEST(EngineEdgeCasesTest, SingleVertexGraph) {
  Graph g = Make({1, {}});
  EngineOptions opts;
  opts.num_workers = 2;  // more workers than vertices
  Engine<Sssp> engine(&g, opts);
  auto result = engine.Run(Sssp(0));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->values, (std::vector<int64_t>{0}));
}

TEST(EngineEdgeCasesTest, IsolatedVerticesHaltWithoutTrouble) {
  // 10 vertices, only 0-1 connected; the rest never receive anything.
  EdgeList el{10, {{0, 1}, {1, 0}}};
  Graph g = Make(el);
  // kNone is excluded from the proper-coloring assertion: without a
  // technique the two connected vertices may race and pick the same
  // color — the exact failure the paper motivates with.
  for (SyncMode sync :
       {SyncMode::kSingleLayerToken, SyncMode::kDualLayerToken,
        SyncMode::kVertexLocking, SyncMode::kPartitionLocking}) {
    EngineOptions opts;
    opts.sync_mode = sync;
    opts.num_workers = 4;
    Engine<GreedyColoring> engine(&g, opts);
    auto result = engine.Run(GreedyColoring());
    ASSERT_TRUE(result.ok()) << SyncModeName(sync);
    EXPECT_TRUE(result->stats.converged) << SyncModeName(sync);
    EXPECT_TRUE(IsProperColoring(g, result->values)) << SyncModeName(sync);
    // Isolated vertices all take color 0.
    for (VertexId v = 2; v < 10; ++v) EXPECT_EQ(result->values[v], 0);
  }
}

TEST(EngineEdgeCasesTest, ManyMoreWorkersThanVertices) {
  Graph g = Make(Ring(6)).Undirected();
  EngineOptions opts;
  opts.sync_mode = SyncMode::kPartitionLocking;
  opts.num_workers = 12;
  Engine<GreedyColoring> engine(&g, opts);
  auto result = engine.Run(GreedyColoring());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(IsProperColoring(g, result->values));
}

TEST(EngineEdgeCasesTest, SourceOutsideComponent) {
  // Two components; SSSP from component A leaves B at infinity.
  EdgeList el = Ring(10);
  EdgeList other = Ring(10);
  for (Edge& e : other.edges) {
    e.src += 10;
    e.dst += 10;
  }
  el.edges.insert(el.edges.end(), other.edges.begin(), other.edges.end());
  el.num_vertices = 20;
  Graph g = Make(el);
  EngineOptions opts;
  opts.num_workers = 2;
  Engine<Sssp> engine(&g, opts);
  auto result = engine.Run(Sssp(0));
  ASSERT_TRUE(result.ok());
  for (VertexId v = 10; v < 20; ++v) {
    EXPECT_EQ(result->values[v], kInfiniteDistance);
  }
}

TEST(EngineEdgeCasesTest, ZeroLatencyAndHighLatencyAgree) {
  Graph g = Make(ErdosRenyi(120, 500, 2));
  auto reference = ReferenceSssp(g, 0);
  for (int64_t latency_us : {0, 2000}) {
    EngineOptions opts;
    opts.num_workers = 3;
    opts.network.one_way_latency_us = latency_us;
    Engine<Sssp> engine(&g, opts);
    auto result = engine.Run(Sssp(0));
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->values, reference) << "latency=" << latency_us;
  }
}

TEST(EngineEdgeCasesTest, TinyMessageBatchesStillCorrect) {
  Graph g = Make(ErdosRenyi(150, 700, 6));
  EngineOptions opts;
  opts.num_workers = 4;
  opts.message_batch_bytes = 1;  // flush every single message
  Engine<Sssp> engine(&g, opts);
  auto result = engine.Run(Sssp(0));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->values, ReferenceSssp(g, 0));
}

TEST(EngineEdgeCasesTest, CheckpointUnderAsyncPartitionLocking) {
  // Checkpoint/restore with pending messages in the stores: PageRank
  // under AP + partition locking checkpoints every superstep; a restore
  // from the last checkpoint must converge to (approximately) the same
  // fixpoint.
  Graph g = Make(PowerLawChungLu(300, 8, 2.3, 12));
  EngineOptions opts;
  opts.sync_mode = SyncMode::kPartitionLocking;
  opts.num_workers = 2;
  opts.checkpoint_every = 2;
  opts.checkpoint_dir = testing::TempDir();
  Engine<PageRank> writer(&g, opts);
  auto first = writer.Run(PageRank(1e-3));
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->stats.converged);
  ASSERT_FALSE(writer.last_checkpoint_path().empty());

  EngineOptions restore;
  restore.sync_mode = SyncMode::kPartitionLocking;
  restore.num_workers = 2;
  restore.restore_path = writer.last_checkpoint_path();
  Engine<PageRank> restored(&g, restore);
  auto resumed = restored.Run(PageRank(1e-3));
  ASSERT_TRUE(resumed.ok());
  EXPECT_TRUE(resumed->stats.converged);
  EXPECT_LT(MaxAbsDifference(resumed->values, first->values), 0.05);
  std::remove(writer.last_checkpoint_path().c_str());
}

}  // namespace
}  // namespace serigraph
