#include "pregel/checkpoint.h"

#include <cstdio>
#include <fstream>

namespace serigraph {

namespace {
constexpr uint32_t kMagic = 0x53474350;  // "SGCP"
constexpr uint32_t kVersion = 1;
}  // namespace

Status WriteCheckpoint(const std::string& path,
                       const CheckpointFrame& frame) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IoError("cannot open " + tmp);
    BufferWriter header;
    header.WriteU32(kMagic);
    header.WriteU32(kVersion);
    header.WriteU32(static_cast<uint32_t>(frame.superstep));
    header.WriteU64(frame.payload.size());
    out.write(reinterpret_cast<const char*>(header.data().data()),
              static_cast<std::streamsize>(header.size()));
    out.write(reinterpret_cast<const char*>(frame.payload.data()),
              static_cast<std::streamsize>(frame.payload.size()));
    if (!out) return Status::IoError("write failed for " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IoError("rename failed for " + path);
  }
  return Status::OK();
}

StatusOr<CheckpointFrame> ReadCheckpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  BufferReader reader(bytes);
  uint32_t magic, version, superstep;
  uint64_t payload_size;
  if (!reader.ReadU32(&magic) || magic != kMagic) {
    return Status::IoError(path + ": bad checkpoint magic");
  }
  if (!reader.ReadU32(&version) || version != kVersion) {
    return Status::IoError(path + ": unsupported checkpoint version");
  }
  if (!reader.ReadU32(&superstep) || !reader.ReadU64(&payload_size) ||
      payload_size != reader.Remaining()) {
    return Status::IoError(path + ": truncated checkpoint");
  }
  CheckpointFrame frame;
  frame.superstep = static_cast<int>(superstep);
  frame.payload.assign(bytes.begin() + reader.position(), bytes.end());
  return frame;
}

}  // namespace serigraph
