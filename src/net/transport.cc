#include "net/transport.h"

#include "common/logging.h"
#include "fault/fault.h"
#include "obs/trace.h"

namespace serigraph {

namespace {

/// Flow-arrow name for a tagged message kind; both the send ('s') and the
/// receive ('f') must pick the same literal for the viewer to pair them.
const char* FlowName(MessageKind kind) {
  return kind == MessageKind::kControl ? "sync.ctrl_flow" : "net.batch_flow";
}

}  // namespace

Transport::Transport(int num_workers, NetworkOptions options,
                     MetricRegistry* metrics)
    : options_(options),
      fast_path_(options.one_way_latency_us == 0 && options.per_kib_us == 0 &&
                 !FaultInjector::armed()) {
  SG_CHECK_GT(num_workers, 0);
  SG_CHECK(metrics != nullptr);
  inboxes_.reserve(num_workers);
  for (int i = 0; i < num_workers; ++i) {
    auto inbox = std::make_unique<Inbox>();
    inbox->last_ready_from.assign(num_workers, Clock::time_point::min());
    inbox->next_link_seq.assign(num_workers, 0);
    inbox->delivered_link_seq.assign(num_workers, 0);
    inboxes_.push_back(std::move(inbox));
  }
  wire_messages_ = metrics->GetCounter("net.wire_messages");
  wire_bytes_ = metrics->GetCounter("net.wire_bytes");
  control_messages_ = metrics->GetCounter("net.control_messages");
  data_batches_ = metrics->GetCounter("net.data_batches");
  local_messages_ = metrics->GetCounter("net.local_messages");
  fastpath_messages_ = metrics->GetCounter("net.fastpath_messages");
  dup_dropped_ = metrics->GetCounter("net.dup_dropped");
  seq_gaps_ = metrics->GetCounter("net.seq_gaps");
  fault_injected_ = metrics->GetCounter("net.fault_injected");
  batch_delay_hist_ = metrics->GetHistogram("net.batch_delay_us");
  batch_bytes_hist_ = metrics->GetHistogram("net.batch_bytes");
  peak_inbox_depth_ = metrics->GetGauge("net.peak_inbox_depth");
}

void Transport::Send(WireMessage msg) {
  SG_DCHECK(msg.src >= 0 && msg.src < num_workers());
  SG_DCHECK(msg.dst >= 0 && msg.dst < num_workers());
  const bool local = msg.src == msg.dst;
  const int64_t bytes = msg.BytesOnWire();

  wire_messages_->Increment();
  wire_bytes_->Add(bytes);
  if (local) {
    local_messages_->Increment();
  } else if (msg.kind == MessageKind::kControl) {
    control_messages_->Increment();
  } else if (msg.kind == MessageKind::kDataBatch) {
    data_batches_->Increment();
    batch_delay_hist_->Record(options_.DelayMicros(bytes));
    batch_bytes_hist_->Record(bytes);
  }

  // Causality tag: pair cross-worker fork/token and data-batch traffic
  // with its receive as a Chrome-trace flow arrow.
  if (!local && msg.span == 0 && Tracer::enabled() &&
      (msg.kind == MessageKind::kControl ||
       msg.kind == MessageKind::kDataBatch)) {
    msg.span = Tracer::NextFlowId();
    Tracer::Get().RecordFlow(FlowName(msg.kind), 's', msg.span);
  }

  // Armed wire faults are decided before any transport lock is taken
  // (tier fault.injector is standalone). A dropped message still consumes
  // its link sequence number, so the receiver observes a gap on the next
  // delivery from this sender and recovery can start promptly.
  bool duplicate = false;
  int64_t extra_delay_us = 0;
  if (FaultInjector::armed()) {
    const WireFaultDecision decision =
        FaultInjector::Get().OnWire(msg.src, msg.dst,
                                    static_cast<int>(msg.kind));
    if (decision.drop) {
      fault_injected_->Increment();
      Inbox& inbox = *inboxes_[msg.dst];
      sy::MutexLock lock(&inbox.mu);
      ++inbox.next_link_seq[msg.src];
      return;
    }
    if (decision.duplicate) {
      duplicate = true;
      fault_injected_->Increment();
    }
    if (decision.extra_delay_us > 0) {
      extra_delay_us = decision.extra_delay_us;
      fault_injected_->Increment();
    }
  }

  Inbox& inbox = *inboxes_[msg.dst];
  if (fast_path_) {
    // Zero-delay configuration: arrival order IS delivery order, so a
    // FIFO ring (which preserves total per-inbox order, a superset of
    // the per-(src,dst) guarantee) replaces the priority queue and the
    // per-sender deadline tracking. One waiter can make progress per
    // push, so NotifyOne suffices.
    fastpath_messages_->Increment();
    int64_t depth;
    {
      sy::MutexLock lock(&inbox.mu);
      msg.link_seq = ++inbox.next_link_seq[msg.src];
      if (duplicate) inbox.fifo.Push(msg);
      inbox.fifo.Push(std::move(msg));
      depth = static_cast<int64_t>(inbox.fifo.size());
    }
    peak_inbox_depth_->Observe(depth);
    inbox.cv.NotifyOne();
    return;
  }
  const auto now = Clock::now();
  auto ready = local ? now
                     : now + std::chrono::microseconds(
                                 options_.DelayMicros(bytes));
  if (extra_delay_us > 0) ready += std::chrono::microseconds(extra_delay_us);
  int64_t depth;
  {
    sy::MutexLock lock(&inbox.mu);
    // Preserve per-(src,dst) FIFO: never deliver before an earlier message
    // from the same sender (a large batch must not be overtaken by the
    // flush marker that follows it). An injected delay spike therefore
    // stalls the whole link, like real congestion would.
    auto& last = inbox.last_ready_from[msg.src];
    if (ready < last) ready = last;
    last = ready;
    // The global tie-break sequence is assigned under the inbox lock so
    // that for equal-ready items it agrees with the link sequence order.
    msg.link_seq = ++inbox.next_link_seq[msg.src];
    Item item;
    item.ready = ready;
    // mo: trace tag; never used for ordering
    item.seq = seq_.fetch_add(1, std::memory_order_relaxed);
    if (duplicate) {
      Item dup;
      dup.ready = ready;
      // mo: trace tag; never used for ordering
      dup.seq = seq_.fetch_add(1, std::memory_order_relaxed);
      dup.msg = msg;
      inbox.queue.push(std::move(dup));
    }
    item.msg = std::move(msg);
    inbox.queue.push(std::move(item));
    depth = static_cast<int64_t>(inbox.queue.size());
  }
  peak_inbox_depth_->Observe(depth);
  inbox.cv.NotifyAll();
}

std::optional<WireMessage> Transport::Receive(WorkerId worker) {
  Inbox& inbox = *inboxes_[worker];
  std::optional<WireMessage> msg;
  std::optional<GapInfo> gap;
  if (fast_path_) {
    sy::MutexLock lock(&inbox.mu);
    for (;;) {
      if (shutdown_.load(std::memory_order_acquire)) return std::nullopt;
      if (!inbox.fifo.empty()) {
        msg = inbox.fifo.Pop();
        // Duplicate tolerance: deliver each link sequence exactly once.
        uint64_t& last = inbox.delivered_link_seq[msg->src];
        if (msg->link_seq <= last) {
          dup_dropped_->Increment();
          msg.reset();
          continue;
        }
        if (msg->link_seq != last + 1 && !gap) {
          seq_gaps_->Increment();
          gap = GapInfo{msg->src, last + 1, msg->link_seq};
        }
        last = msg->link_seq;
        break;
      }
      inbox.cv.Wait(inbox.mu);
    }
  } else {
    sy::MutexLock lock(&inbox.mu);
    for (;;) {
      if (shutdown_.load(std::memory_order_acquire)) return std::nullopt;
      if (!inbox.queue.empty()) {
        const auto now = Clock::now();
        const Item& top = inbox.queue.top();
        if (top.ready <= now) {
          msg = std::move(const_cast<Item&>(top).msg);
          inbox.queue.pop();
          uint64_t& last = inbox.delivered_link_seq[msg->src];
          if (msg->link_seq <= last) {
            dup_dropped_->Increment();
            msg.reset();
            continue;
          }
          if (msg->link_seq != last + 1 && !gap) {
            seq_gaps_->Increment();
            gap = GapInfo{msg->src, last + 1, msg->link_seq};
          }
          last = msg->link_seq;
          break;
        }
        // Copy the deadline out of the queue node: WaitUntil releases
        // inbox.mu, so a concurrent Send() can reallocate the queue's
        // storage and leave a reference into it dangling (the cv re-reads
        // the deadline on spurious wakeup — ASan caught this as a
        // use-after-free).
        const Clock::time_point ready = top.ready;
        inbox.cv.WaitUntil(inbox.mu, ready);
      } else {
        inbox.cv.Wait(inbox.mu);
      }
    }
  }
  // Gap (loss) reports and flow arrows are recorded outside the inbox
  // critical section: the tracer takes its thread-registry lock on a
  // thread's first event, which must never nest under inbox.mu
  // (lock-order fix surfaced by the annotation pass; docs/LOCK_ORDER.md
  // keeps tracer locks leaf-only), and the loss callback takes engine
  // and supervisor locks.
  if (gap && loss_cb_) loss_cb_(gap->src, worker, gap->expected, gap->got);
  if (msg->span != 0 && Tracer::enabled()) {
    Tracer::Get().RecordFlow(FlowName(msg->kind), 'f', msg->span);
  }
  return msg;
}

std::optional<WireMessage> Transport::TryReceive(WorkerId worker) {
  Inbox& inbox = *inboxes_[worker];
  std::optional<WireMessage> msg;
  std::optional<GapInfo> gap;
  {
    sy::MutexLock lock(&inbox.mu);
    for (;;) {
      if (fast_path_) {
        if (inbox.fifo.empty()) return std::nullopt;
        msg = inbox.fifo.Pop();
      } else {
        if (inbox.queue.empty()) return std::nullopt;
        const Item& top = inbox.queue.top();
        if (top.ready > Clock::now()) return std::nullopt;
        msg = std::move(const_cast<Item&>(top).msg);
        inbox.queue.pop();
      }
      uint64_t& last = inbox.delivered_link_seq[msg->src];
      if (msg->link_seq <= last) {
        dup_dropped_->Increment();
        msg.reset();
        continue;
      }
      if (msg->link_seq != last + 1 && !gap) {
        seq_gaps_->Increment();
        gap = GapInfo{msg->src, last + 1, msg->link_seq};
      }
      last = msg->link_seq;
      break;
    }
  }
  // As in Receive: loss reports and flow recording stay outside the lock.
  if (gap && loss_cb_) loss_cb_(gap->src, worker, gap->expected, gap->got);
  if (msg->span != 0 && Tracer::enabled()) {
    Tracer::Get().RecordFlow(FlowName(msg->kind), 'f', msg->span);
  }
  return msg;
}

bool Transport::InboxEmpty(WorkerId worker) const {
  const Inbox& inbox = *inboxes_[worker];
  sy::MutexLock lock(&inbox.mu);
  return inbox.queue.empty() && inbox.fifo.empty();
}

int64_t Transport::InboxDepth(WorkerId worker) const {
  const Inbox& inbox = *inboxes_[worker];
  sy::MutexLock lock(&inbox.mu);
  return static_cast<int64_t>(inbox.queue.size() + inbox.fifo.size());
}

void Transport::Shutdown() {
  shutdown_.store(true, std::memory_order_release);
  for (auto& inbox : inboxes_) {
    sy::MutexLock lock(&inbox->mu);
    inbox->cv.NotifyAll();
  }
}

}  // namespace serigraph
