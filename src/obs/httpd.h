#ifndef SERIGRAPH_OBS_HTTPD_H_
#define SERIGRAPH_OBS_HTTPD_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace serigraph {

/// One parsed request line. Only the request line is interpreted;
/// headers are read and discarded (every handler is a GET endpoint).
struct HttpRequest {
  std::string method;
  std::string path;   ///< without the query string
  std::string query;  ///< raw text after '?', possibly empty
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Dependency-free HTTP/1.1 server: an accept thread feeds a bounded
/// connection queue drained by a small worker pool; every response is
/// `Connection: close`. Listens on 127.0.0.1 only — this is a local
/// observability plane, not a public service. Intended for low-rate
/// scrapes (Prometheus, curl, the obs-smoke CI job), not throughput.
class HttpServer {
 public:
  using Router = std::function<HttpResponse(const HttpRequest&)>;

  struct Options {
    /// TCP port; 0 picks an ephemeral port (read it back via port()).
    int port = 0;
    int num_threads = 2;
    /// Accepted-but-unserved connection cap; overflow is closed.
    size_t max_queue = 64;
  };

  /// Binds, listens, and starts the threads. The router is called from
  /// worker threads and must be thread-safe.
  static StatusOr<std::unique_ptr<HttpServer>> Start(const Options& options,
                                                     Router router);
  ~HttpServer();

  /// Stops accepting, drains the queue, joins all threads. Idempotent.
  void Stop();

  /// The actual bound port (after ephemeral resolution).
  int port() const { return port_; }

 private:
  HttpServer(const Options& options, Router router);
  Status Listen();
  void AcceptLoop();
  void WorkerLoop();
  void HandleConnection(int fd);

  const Options options_;
  const Router router_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread accept_thread_;
  std::vector<std::thread> workers_;

  sy::Mutex queue_mu_;
  sy::CondVar queue_cv_;
  std::deque<int> pending_ SY_GUARDED_BY(queue_mu_);
  bool stopping_ SY_GUARDED_BY(queue_mu_) = false;
};

/// The observability endpoint: an HttpServer wired to the telemetry
/// plane (TelemetryHub, HealthState, Introspector, FlightRecorder,
/// IncidentManager). Routes:
///   /metrics            typed Prometheus exposition (# HELP + # TYPE)
///   /healthz            liveness + readiness JSON; 503 when unhealthy
///   /statusz            run state, beacons, contention, arena, RSS
///   /incidentz          incident bundle index
///   /incidentz/trigger  write a bundle now (?reason=...)
/// While an ObsServer is live, TelemetryHub::serving() is true and the
/// engine keeps per-superstep arena/RSS gauges warm.
class ObsServer {
 public:
  struct Options {
    int port = 0;  ///< 0 = ephemeral
    int num_threads = 2;
  };

  static StatusOr<std::unique_ptr<ObsServer>> Start(const Options& options);
  ~ObsServer();

  void Stop();  ///< Idempotent; also flips TelemetryHub::serving() off.
  int port() const { return http_ != nullptr ? http_->port() : 0; }
  int64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);  // mo: stat counter
  }

 private:
  ObsServer() = default;
  HttpResponse Route(const HttpRequest& request);
  HttpResponse Metrics() const;
  HttpResponse Healthz() const;
  HttpResponse Statusz() const;
  HttpResponse Incidentz(const HttpRequest& request) const;

  std::unique_ptr<HttpServer> http_;
  std::atomic<int64_t> requests_{0};
};

}  // namespace serigraph

#endif  // SERIGRAPH_OBS_HTTPD_H_
