# Empty dependencies file for serigraph_graph.
# This may be replaced when dependencies are built.
