# Empty dependencies file for fig6a_coloring.
# This may be replaced when dependencies are built.
