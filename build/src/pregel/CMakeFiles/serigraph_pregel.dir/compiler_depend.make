# Empty compiler generated dependencies file for serigraph_pregel.
# This may be replaced when dependencies are built.
