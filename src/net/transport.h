#ifndef SERIGRAPH_NET_TRANSPORT_H_
#define SERIGRAPH_NET_TRANSPORT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <queue>
#include <vector>

#include "common/metrics.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "net/message.h"

namespace serigraph {

/// Parameters of the simulated network. The paper's evaluation runs on a
/// real EC2 cluster; here every cross-worker message pays a configurable
/// one-way latency plus a bandwidth term, so techniques that send many
/// small messages (vertex-based locking) or serialize execution behind a
/// token ring pay realistic costs while batched techniques amortize them.
/// Latencies are modelled as *delayed visibility* at the receiver — the
/// sender never blocks — so concurrent messages overlap exactly as they
/// would on a real network, even on a single-core host.
struct NetworkOptions {
  /// One-way delivery latency for any cross-worker message.
  int64_t one_way_latency_us = 0;
  /// Additional latency per KiB of payload (bandwidth term).
  int64_t per_kib_us = 0;

  /// Total simulated delay for a message of `bytes` size.
  int64_t DelayMicros(int64_t bytes) const {
    return one_way_latency_us + (bytes * per_kib_us) / 1024;
  }
};

/// In-process message fabric connecting `num_workers` workers. Each worker
/// owns one inbox; any thread may send to any worker. Per-(src,dst) FIFO
/// ordering is guaranteed even with size-dependent delays, which the
/// flush/ack protocol (condition C1's write-all) relies on.
///
/// Thread-safe. Receive blocks until a message's delivery time is reached;
/// Shutdown() unblocks all receivers with std::nullopt.
///
/// Every message carries a per-(src,dst) link sequence number assigned
/// under the destination inbox lock. Receivers drop already-delivered
/// sequences (`net.dup_dropped`) so injected duplicates cannot corrupt
/// fork/token protocol state, and report sequence gaps (`net.seq_gaps`)
/// — message loss — through the loss callback, which the engine feeds to
/// the recovery supervisor.
class Transport {
 public:
  /// Invoked outside any transport lock when a receiver observes a gap in
  /// the link sequence from `src` (messages lost in transit).
  using LossCallback = std::function<void(WorkerId src, WorkerId dst,
                                          uint64_t expected, uint64_t got)>;

  Transport(int num_workers, NetworkOptions options, MetricRegistry* metrics);

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  /// Sends `msg` (src/dst must be set). Never blocks. Messages to the
  /// sender's own worker are delivered with zero latency.
  void Send(WireMessage msg);

  /// Blocks until a message for `worker` is deliverable or Shutdown().
  /// Returns std::nullopt only after Shutdown.
  std::optional<WireMessage> Receive(WorkerId worker);

  /// Non-blocking variant; returns std::nullopt if nothing deliverable.
  std::optional<WireMessage> TryReceive(WorkerId worker);

  /// True if `worker`'s inbox has no messages at all (including ones whose
  /// delivery time has not yet arrived).
  bool InboxEmpty(WorkerId worker) const;

  /// Number of messages currently queued for `worker` (delivered or not);
  /// the watchdog's queue-depth probe.
  int64_t InboxDepth(WorkerId worker) const;

  /// Installs the loss callback. Must be called before any receiver
  /// thread is running (the engine sets it right after construction).
  void SetLossCallback(LossCallback cb) { loss_cb_ = std::move(cb); }

  /// Unblocks all receivers permanently.
  void Shutdown();

  int num_workers() const { return static_cast<int>(inboxes_.size()); }
  const NetworkOptions& options() const { return options_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Item {
    Clock::time_point ready;
    uint64_t seq;
    WireMessage msg;
    friend bool operator>(const Item& a, const Item& b) {
      if (a.ready != b.ready) return a.ready > b.ready;
      return a.seq > b.seq;
    }
  };

  struct Inbox {
    mutable sy::Mutex mu;
    sy::CondVar cv;
    std::priority_queue<Item, std::vector<Item>, std::greater<Item>> queue
        SY_GUARDED_BY(mu);
    /// Last assigned delivery time per sender, to preserve per-pair FIFO.
    std::vector<Clock::time_point> last_ready_from SY_GUARDED_BY(mu);
    /// Zero-delay fast path (fast_path_ only): every message is
    /// immediately deliverable, so a plain FIFO ring replaces the
    /// priority queue and the per-sender deadline bookkeeping.
    MessageRing fifo SY_GUARDED_BY(mu);
    /// Next link sequence number to assign per sender (sender side; the
    /// stamp happens under this inbox's lock so link order matches
    /// delivery order).
    std::vector<uint64_t> next_link_seq SY_GUARDED_BY(mu);
    /// Highest link sequence delivered per sender (receiver side).
    std::vector<uint64_t> delivered_link_seq SY_GUARDED_BY(mu);
  };

  /// A sequence gap observed while receiving; reported outside the lock.
  struct GapInfo {
    WorkerId src;
    uint64_t expected;
    uint64_t got;
  };

  NetworkOptions options_;
  /// True when the configured delay is identically zero (no base
  /// latency, no bandwidth term) — the common test/bench configuration —
  /// and no fault plan is armed (injected delays need the timed queue).
  const bool fast_path_;
  std::vector<std::unique_ptr<Inbox>> inboxes_;
  std::atomic<uint64_t> seq_{0};
  std::atomic<bool> shutdown_{false};
  LossCallback loss_cb_;

  // Traffic counters (owned by the caller's registry).
  Counter* wire_messages_;
  Counter* wire_bytes_;
  Counter* control_messages_;
  Counter* data_batches_;
  Counter* local_messages_;
  Counter* fastpath_messages_;
  Counter* dup_dropped_;
  Counter* seq_gaps_;
  Counter* fault_injected_;
  // Per-batch distributions: simulated wire delay and batch size of
  // cross-worker data batches.
  Histogram* batch_delay_hist_;
  Histogram* batch_bytes_hist_;
  /// Deepest any inbox got (memory-pressure signal: a worker falling
  /// behind its senders shows up here before it shows up in RSS).
  MaxGauge* peak_inbox_depth_;
};

}  // namespace serigraph

#endif  // SERIGRAPH_NET_TRANSPORT_H_
