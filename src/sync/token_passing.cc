#include "sync/token_passing.h"

#include "common/logging.h"
#include "common/planted.h"
#include "fault/fault.h"
#include "obs/introspect.h"
#include "obs/trace.h"

namespace serigraph {

Status SingleLayerTokenPassing::Init(const Context& ctx) {
  SG_CHECK(ctx.boundaries != nullptr);
  SG_CHECK(ctx.partitioning != nullptr);
  boundaries_ = ctx.boundaries;
  num_workers_ = ctx.partitioning->num_workers();
  handles_.assign(num_workers_, nullptr);
  token_passes_ = ctx.metrics->GetCounter("sync.global_token_passes");
  token_hold_hist_ = ctx.metrics->GetHistogram("sync.token_hold_us");
  hold_start_us_.assign(num_workers_, 0);
  return Status::OK();
}

void SingleLayerTokenPassing::OnSuperstepStart(WorkerId w, int superstep) {
  if (HolderOf(superstep) == w) hold_start_us_[w] = Tracer::NowMicros();
  if (Introspector::enabled()) {
    Introspector::Get().SetTokenHolder(w, HolderOf(superstep));
  }
}

void SingleLayerTokenPassing::BindWorker(WorkerId w, WorkerHandle* handle) {
  handles_[w] = handle;
}

bool SingleLayerTokenPassing::MayExecuteVertex(WorkerId w, int superstep,
                                               VertexId v) {
  // Negative control (serichk): treat every vertex as token-protected-
  // by-nobody — m-boundary vertices on two workers can then execute in
  // the same superstep and read each other's in-flight replicas (C1/C2).
  if (SG_PLANTED_BUG("token.ignore_boundary")) return true;
  // m-internal vertices are safe under the worker's single thread;
  // m-boundary vertices additionally need the global token.
  return boundaries_->IsMInternal(v) || HolderOf(superstep) == w;
}

void SingleLayerTokenPassing::OnSuperstepEnd(WorkerId w, int superstep) {
  if (HolderOf(superstep) == w) {
    const int64_t held_us = Tracer::NowMicros() - hold_start_us_[w];
    token_hold_hist_->Record(held_us);
    SG_TRACE_INTERVAL("token_hold", hold_start_us_[w], held_us);
  }
  if (num_workers_ < 2) return;
  if (HolderOf(superstep) != w) return;
  // The engine has already flushed and acked all remote messages for this
  // superstep (write-all, C1), so the token may move.
  // Injection point: a crash here models a worker dying while handing the
  // token on. The schedule is a deterministic function of the superstep,
  // so recovery recomputes it; the lost message only loses cost accounting.
  if (SG_FAULT_POINT("token.pass", w)) return;
  token_passes_->Increment();
  if (Introspector::enabled()) {
    Introspector::Get().SetTokenHolder(w, HolderOf(superstep + 1));
  }
  handles_[w]->SendControl(HolderOf(superstep + 1), kTokenTag, superstep, 0,
                           0);
}

void SingleLayerTokenPassing::HandleControl(WorkerId w,
                                            const WireMessage& msg) {
  // The handover schedule is deterministic; the message exists so that the
  // token's network cost is accounted for. Nothing to update.
  (void)w;
  (void)msg;
}

Status DualLayerTokenPassing::Init(const Context& ctx) {
  SG_CHECK(ctx.boundaries != nullptr);
  SG_CHECK(ctx.partitioning != nullptr);
  partitioning_ = ctx.partitioning;
  boundaries_ = ctx.boundaries;
  num_workers_ = partitioning_->num_workers();
  total_partitions_ = partitioning_->num_partitions();
  window_start_.assign(num_workers_, 0);
  int acc = 0;
  for (WorkerId w = 0; w < num_workers_; ++w) {
    window_start_[w] = acc;
    acc += static_cast<int>(partitioning_->PartitionsOfWorker(w).size());
  }
  SG_CHECK_EQ(acc, total_partitions_);
  handles_.assign(num_workers_, nullptr);
  global_token_passes_ = ctx.metrics->GetCounter("sync.global_token_passes");
  local_token_passes_ = ctx.metrics->GetCounter("sync.local_token_passes");
  token_hold_hist_ = ctx.metrics->GetHistogram("sync.token_hold_us");
  hold_start_us_.assign(num_workers_, 0);
  return Status::OK();
}

void DualLayerTokenPassing::OnSuperstepStart(WorkerId w, int superstep) {
  if (GlobalHolderOf(superstep) == w) {
    hold_start_us_[w] = Tracer::NowMicros();
  }
  if (Introspector::enabled()) {
    Introspector::Get().SetTokenHolder(w, GlobalHolderOf(superstep));
  }
}

void DualLayerTokenPassing::BindWorker(WorkerId w, WorkerHandle* handle) {
  handles_[w] = handle;
}

WorkerId DualLayerTokenPassing::GlobalHolderOf(int superstep) const {
  const int pos = superstep % total_partitions_;
  // Workers hold the token for a window equal to their partition count
  // (Section 5.3: "each worker must hold the global token for a number of
  // iterations equal to the number of partitions it owns").
  for (WorkerId w = num_workers_ - 1; w >= 0; --w) {
    if (pos >= window_start_[w]) return w;
  }
  return 0;
}

PartitionId DualLayerTokenPassing::LocalTokenPartition(WorkerId w,
                                                       int superstep) const {
  const auto& parts = partitioning_->PartitionsOfWorker(w);
  if (parts.empty()) return kInvalidPartition;
  return parts[superstep % parts.size()];
}

bool DualLayerTokenPassing::MayExecuteVertex(WorkerId w, int superstep,
                                             VertexId v) {
  switch (boundaries_->LocalityOf(v)) {
    case VertexLocality::kPInternal:
      return true;
    case VertexLocality::kLocalBoundary:
      return partitioning_->PartitionOf(v) ==
             LocalTokenPartition(w, superstep);
    case VertexLocality::kRemoteBoundary:
      return GlobalHolderOf(superstep) == w;
    case VertexLocality::kMixedBoundary:
      return GlobalHolderOf(superstep) == w &&
             partitioning_->PartitionOf(v) ==
                 LocalTokenPartition(w, superstep);
  }
  return false;
}

void DualLayerTokenPassing::OnSuperstepEnd(WorkerId w, int superstep) {
  // Local token rotation is in-worker bookkeeping (no wire traffic).
  if (partitioning_->PartitionsOfWorker(w).size() > 1) {
    local_token_passes_->Increment();
  }
  if (GlobalHolderOf(superstep) == w) {
    const int64_t held_us = Tracer::NowMicros() - hold_start_us_[w];
    token_hold_hist_->Record(held_us);
    SG_TRACE_INTERVAL("token_hold", hold_start_us_[w], held_us);
  }
  if (num_workers_ < 2) return;
  const WorkerId holder = GlobalHolderOf(superstep);
  const WorkerId next = GlobalHolderOf(superstep + 1);
  if (holder == w && next != w) {
    if (SG_FAULT_POINT("token.pass", w)) return;
    global_token_passes_->Increment();
    handles_[w]->SendControl(next, kTokenTag, superstep, 0, 0);
  }
}

void DualLayerTokenPassing::HandleControl(WorkerId w, const WireMessage& msg) {
  (void)w;
  (void)msg;
}

}  // namespace serigraph
